// Quickstart: synchronize a small collection between an in-process server
// and client, and print what it cost. Shows the functional-options API and
// context-based cancellation.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"msync"
)

func main() {
	// The server holds the current versions.
	serverFiles := map[string][]byte{
		"docs/readme.txt": []byte(strings.Repeat("All work and no play makes Jack a dull boy.\n", 200) +
			"THE END (revised edition)\n"),
		"docs/new.txt": []byte("This file did not exist at the client yet.\n"),
	}
	// The client holds an outdated copy.
	clientFiles := map[string][]byte{
		"docs/readme.txt": []byte(strings.Repeat("All work and no play makes Jack a dull boy.\n", 200) +
			"THE END\n"),
		"docs/stale.txt": []byte("This file was deleted on the server.\n"),
	}

	// Options bound the session: a stalled peer fails each round within
	// WithRoundTimeout, and the whole session within WithTimeout.
	srv, err := msync.NewServer(serverFiles, msync.DefaultConfig(),
		msync.WithTimeout(time.Minute),
		msync.WithRoundTimeout(10*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	serverEnd, clientEnd := msync.Pipe()
	go func() {
		defer serverEnd.Close()
		if _, err := srv.Serve(serverEnd); err != nil {
			log.Printf("server: %v", err)
		}
	}()

	// The context cancels the session at the next protocol round; pair it
	// with signal.NotifyContext for ctrl-C handling in real programs.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cli := msync.NewClient(clientFiles, msync.WithRoundTimeout(10*time.Second))
	res, err := cli.SyncContext(ctx, clientEnd)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("synchronized files:")
	for path, data := range res.Files {
		fmt.Printf("  %-18s %5d bytes\n", path, len(data))
	}
	fmt.Println("\ncost accounting:")
	fmt.Println(res.Costs.String())

	collectionSize := 0
	for _, d := range serverFiles {
		collectionSize += len(d)
	}
	fmt.Printf("\ntransferred %d bytes to update a %d-byte collection (%.1f%%)\n",
		res.Costs.Total(), collectionSize,
		100*float64(res.Costs.Total())/float64(collectionSize))
}
