// Adaptive: demonstrates the paper's §7 "future work" features implemented
// here — adaptive early stopping (give up on map construction when a file
// turns out to be unrelated) and choosing the round budget from the link
// characteristics (multi-round for slow links, one-shot for high-latency
// ones).
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"msync"
	"msync/internal/corpus"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// Two files of the same size: one lightly edited, one replaced outright.
	oldSimilar := corpus.SourceText(rng, 300_000)
	newSimilar := corpus.EditModel{BurstsPer32KB: 2, BurstEdits: 4, EditSize: 60, BurstSpread: 400}.
		Apply(rng, oldSimilar)
	oldReplaced := corpus.SourceText(rng, 300_000)
	newReplaced := corpus.RandomText(rng, 300_000)

	plain := msync.DefaultConfig()
	adaptive := msync.DefaultConfig()
	adaptive.Adaptive = true
	adaptive.AdaptiveMinBlock = 1024
	adaptive.AdaptiveFactor = 4

	fmt.Println("=== adaptive early stopping ===")
	fmt.Printf("%-22s %12s %8s %12s %8s\n", "file", "plain bytes", "rounds", "adapt bytes", "rounds")
	for _, tc := range []struct {
		name     string
		old, cur []byte
	}{
		{"lightly edited", oldSimilar, newSimilar},
		{"replaced outright", oldReplaced, newReplaced},
	} {
		rp, err := msync.SyncFile(tc.old, tc.cur, plain)
		if err != nil {
			log.Fatal(err)
		}
		ra, err := msync.SyncFile(tc.old, tc.cur, adaptive)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12d %8d %12d %8d\n", tc.name,
			rp.Costs.Total(), rp.Rounds, ra.Costs.Total(), ra.Rounds)
	}
	fmt.Println("\nadaptive mode abandons map construction on the unrelated file")
	fmt.Println("and pays (almost) nothing extra on the well-behaved one.")

	// Link-aware mode choice: estimate sync times for the edited file.
	fmt.Println("\n=== round budget vs link characteristics ===")
	links := []struct {
		name string
		l    msync.LinkModel
	}{
		{"DSL 1M/256k 80ms", msync.LinkModel{DownBps: 125_000, UpBps: 32_000, RTT: 80 * time.Millisecond}},
		{"SAT 10M 600ms", msync.LinkModel{DownBps: 1_250_000, UpBps: 1_250_000, RTT: 600 * time.Millisecond}},
	}
	modes := []struct {
		name string
		cfg  msync.Config
	}{
		{"multi-round (default)", msync.DefaultConfig()},
		{"one-shot b=512", msync.OneShotConfig(512)},
	}
	// Roundtrips amortize across a collection (every changed file shares
	// them), so evaluate both a single file and a 200-file collection.
	for _, scenario := range []struct {
		name  string
		files int
	}{
		{"single file", 1},
		{"200-file collection", 200},
	} {
		fmt.Printf("\n-- %s --\n", scenario.name)
		fmt.Printf("%-24s %12s %8s", "mode", "bytes", "rtrips")
		for _, lk := range links {
			fmt.Printf(" %18s", lk.name)
		}
		fmt.Println()
		for _, m := range modes {
			res, err := msync.SyncFile(oldSimilar, newSimilar, m.cfg)
			if err != nil {
				log.Fatal(err)
			}
			// Scale byte volume by the file count; the roundtrip count is a
			// property of the session, not of each file.
			costs := res.Costs
			for i := 1; i < scenario.files; i++ {
				costs.Merge(&res.Costs)
				costs.Roundtrips = res.Costs.Roundtrips
			}
			fmt.Printf("%-24s %12d %8d", m.name, costs.Total(), costs.Roundtrips)
			for _, lk := range links {
				fmt.Printf(" %17.2fs", lk.l.Duration(&costs).Seconds())
			}
			fmt.Println()
		}
	}
	fmt.Println("\nfor single small files the roundtrips dominate and one-shot wins;")
	fmt.Println("across a collection they amortize and multi-round's byte savings win —")
	fmt.Println("unless the link is so high-latency that one-shot stays ahead (paper §7).")
}
