// Crawler: the paper's "server-friendly web crawling" application (§1.1,
// scenario 3). A web server publishes a small static signature next to each
// resource; a crawler holding yesterday's copy downloads the signature,
// works out locally which blocks it already has, and issues byte-range
// requests for the rest — no per-client computation on the server at all.
//
//	go run ./examples/crawler
package main

import (
	"fmt"
	"log"

	"msync/internal/corpus"
	"msync/internal/pubsig"
)

func main() {
	// A small site that changes a little every night.
	web := corpus.NewWebCollection(corpus.DefaultWebProfile(0.06), 7)
	yesterday := web.Version(3).Map()
	today := web.Version(4).Map()

	var fullBytes, sigBytes, rangeBytes, pages, changed int
	for path, cur := range today {
		pages++
		old := yesterday[path]
		if string(old) == string(cur) {
			// A real crawler would skip via HTTP validators; the signature
			// fetch below would also reveal it. Count the content as seen.
			continue
		}
		changed++
		fullBytes += len(cur)

		// Server side, once per published version:
		sig := pubsig.Build(cur, pubsig.DefaultBlockSize)
		sigBytes += len(sig)

		// Crawler side: plan locally, fetch only missing ranges.
		plan, err := pubsig.NewPlan(old, sig)
		if err != nil {
			log.Fatal(err)
		}
		got, err := plan.Reconstruct(old, func(off, l int) ([]byte, error) {
			rangeBytes += l
			return cur[off : off+l], nil // stands in for an HTTP range request
		})
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		if string(got) != string(cur) {
			log.Fatalf("%s: reconstruction mismatch", path)
		}
	}

	fmt.Printf("recrawled %d pages, %d changed since yesterday\n\n", pages, changed)
	fmt.Printf("%-34s %10d bytes\n", "naive re-download of changed pages", fullBytes)
	fmt.Printf("%-34s %10d bytes\n", "signatures fetched", sigBytes)
	fmt.Printf("%-34s %10d bytes\n", "ranges fetched", rangeBytes)
	fmt.Printf("%-34s %10d bytes (%.1fx less)\n", "signature-based total",
		sigBytes+rangeBytes, float64(fullBytes)/float64(sigBytes+rangeBytes))
	fmt.Println("\nthe server computed nothing per crawler — it only served static")
	fmt.Println("signature files and byte ranges, the paper's requirement for")
	fmt.Println("synchronization support that web servers could realistically adopt.")
}
