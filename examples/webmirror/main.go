// Webmirror: the paper's motivating application (§6.3). A client maintains a
// mirror of a large, nightly-changing web page collection over a slow link,
// synchronizing every night and printing the bandwidth bill — including the
// estimated transfer time on a DSL-class link.
//
//	go run ./examples/webmirror [-pages 500] [-nights 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"msync"
	"msync/internal/corpus"
)

func main() {
	var (
		pages  = flag.Int("pages", 400, "number of pages in the collection")
		nights = flag.Int("nights", 5, "number of nightly syncs to simulate")
	)
	flag.Parse()

	profile := corpus.DefaultWebProfile(float64(*pages) / 1000)
	web := corpus.NewWebCollection(profile, 2026)

	// A DSL-class asymmetric link: 1 Mbit/s down, 256 kbit/s up, 80 ms RTT.
	link := msync.LinkModel{DownBps: 125_000, UpBps: 32_000, RTT: 80 * time.Millisecond}

	mirror := web.Version(0).Map()
	size := 0
	for _, d := range mirror {
		size += len(d)
	}
	fmt.Printf("mirroring %d pages (%.1f MB) nightly over simulated DSL\n\n",
		len(mirror), float64(size)/(1<<20))
	fmt.Printf("%-8s %12s %10s %10s %10s %12s\n",
		"night", "bytes", "%of coll", "files", "rtrips", "est. time")

	var cumulative int64
	for night := 1; night <= *nights; night++ {
		current := web.Version(night).Map()
		srv, err := msync.NewServer(current, msync.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		serverEnd, clientEnd := msync.Pipe()
		go func() {
			defer serverEnd.Close()
			if _, err := srv.Serve(serverEnd); err != nil {
				log.Printf("server: %v", err)
			}
		}()
		res, err := msync.NewClient(mirror).Sync(clientEnd)
		if err != nil {
			log.Fatal(err)
		}
		mirror = res.Files
		cumulative += res.Costs.Total()
		fmt.Printf("%-8d %12d %9.2f%% %10d %10d %12s\n",
			night, res.Costs.Total(),
			100*float64(res.Costs.Total())/float64(size),
			res.Costs.FilesSynced+res.Costs.FilesFull,
			res.Costs.Roundtrips,
			link.Duration(res.Costs).Truncate(10*time.Millisecond))
	}
	fmt.Printf("\ntotal over %d nights: %.1f KB (collection is %.1f KB)\n",
		*nights, float64(cumulative)/1024, float64(size)/1024)
}
