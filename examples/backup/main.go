// Backup: incremental backup of a source tree over real TCP, comparing the
// msync protocol's cost against the rsync baseline for the same update.
// Shows the server lifecycle (session hook, graceful Shutdown drain) and
// client-side retry with backoff.
//
//	go run ./examples/backup
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"msync"
	"msync/internal/corpus"
	"msync/internal/md4"
	"msync/internal/rsync"
)

func main() {
	// "Yesterday's backup" (v1) and today's working tree (v2).
	v1, v2 := corpus.GCCProfile(0.2).Generate(7)
	backup, today := v1.Map(), v2.Map()
	size := 0
	for _, d := range today {
		size += len(d)
	}

	// Serve today's tree over loopback TCP. The session hook observes every
	// session's outcome; round timeouts drop stalled peers.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("backup: listen: %v", err)
	}
	srv, err := msync.NewServer(today, msync.DefaultConfig(),
		msync.WithRoundTimeout(30*time.Second),
		msync.WithSessionHook(func(ev msync.SessionEvent) {
			if ev.Err != nil {
				log.Printf("backup: session %s failed: %v", ev.RemoteAddr, ev.Err)
			}
		}))
	if err != nil {
		log.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.ServeListener(l) }()

	// Update the backup replica; transient dial/handshake failures retry
	// with exponential backoff.
	cli := msync.NewClient(backup,
		msync.WithRoundTimeout(30*time.Second),
		msync.WithRetry(msync.DefaultRetryPolicy()))
	res, err := cli.SyncTCP(l.Addr().String())
	if err != nil {
		log.Fatalf("backup: sync: %v", err)
	}
	for path, want := range today {
		if md4.Sum(res.Files[path]) != md4.Sum(want) {
			log.Fatalf("backup: %s differs after sync", path)
		}
	}

	// Graceful shutdown: stop accepting dials, drain in-flight sessions.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("backup: forced shutdown: %v", err)
	}
	if err := <-serveDone; err != nil && err != msync.ErrServerClosed {
		log.Printf("backup: serve: %v", err)
	}

	fmt.Printf("backed up %d files (%.1f MB) over TCP\n\n", len(today), float64(size)/(1<<20))
	fmt.Println("msync cost:")
	fmt.Println(res.Costs.String())

	// The same update via the rsync algorithm, for comparison.
	var rsC2S, rsS2C int
	for path, cur := range today {
		old := backup[path]
		if old != nil && md4.Sum(old) == md4.Sum(cur) {
			continue
		}
		r := rsync.Sync(old, cur, rsync.DefaultBlockSize, rsync.DefaultStrongLen)
		rsC2S += r.C2S
		rsS2C += r.S2C
	}
	fmt.Printf("\nrsync for the same update: %d bytes (c2s %d + s2c %d)\n",
		rsC2S+rsS2C, rsC2S, rsS2C)
	fmt.Printf("msync saves %.1fx over rsync\n",
		float64(rsC2S+rsS2C)/float64(res.Costs.Total()))
}
