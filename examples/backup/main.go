// Backup: incremental backup of a source tree over real TCP, comparing the
// msync protocol's cost against the rsync baseline for the same update.
//
//	go run ./examples/backup
package main

import (
	"fmt"
	"log"
	"net"

	"msync"
	"msync/internal/corpus"
	"msync/internal/md4"
	"msync/internal/rsync"
)

func main() {
	// "Yesterday's backup" (v1) and today's working tree (v2).
	v1, v2 := corpus.GCCProfile(0.2).Generate(7)
	backup, today := v1.Map(), v2.Map()
	size := 0
	for _, d := range today {
		size += len(d)
	}

	// Serve today's tree over loopback TCP.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("backup: listen: %v", err)
	}
	defer l.Close()
	srv, err := msync.NewServer(today, msync.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	go srv.ServeListener(l)

	// Update the backup replica.
	res, err := msync.NewClient(backup).SyncTCP(l.Addr().String())
	if err != nil {
		log.Fatalf("backup: sync: %v", err)
	}
	for path, want := range today {
		if md4.Sum(res.Files[path]) != md4.Sum(want) {
			log.Fatalf("backup: %s differs after sync", path)
		}
	}

	fmt.Printf("backed up %d files (%.1f MB) over TCP\n\n", len(today), float64(size)/(1<<20))
	fmt.Println("msync cost:")
	fmt.Println(res.Costs.String())

	// The same update via the rsync algorithm, for comparison.
	var rsC2S, rsS2C int
	for path, cur := range today {
		old := backup[path]
		if old != nil && md4.Sum(old) == md4.Sum(cur) {
			continue
		}
		r := rsync.Sync(old, cur, rsync.DefaultBlockSize, rsync.DefaultStrongLen)
		rsC2S += r.C2S
		rsS2C += r.S2C
	}
	fmt.Printf("\nrsync for the same update: %d bytes (c2s %d + s2c %d)\n",
		rsC2S+rsS2C, rsC2S, rsS2C)
	fmt.Printf("msync saves %.1fx over rsync\n",
		float64(rsC2S+rsS2C)/float64(res.Costs.Total()))
}
