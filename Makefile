GO ?= go

.PHONY: all build test vet race check bench clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite — including the transport fault-injection tests
# (internal/transport), the collection-level stall/sever/cancellation tests
# (internal/collection) and the session-layer shutdown/retry acceptance
# tests (session_test.go) — under the race detector.
race:
	$(GO) test -race ./...

check: vet race

# bench runs the Go benchmarks once each, then regenerates BENCH_scan.json —
# the scan-scaling report (serial vs parallel client map-construction
# wall-clock and bytes on the wire; see internal/bench/parallel.go).
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
	$(GO) run ./cmd/msbench -scan-json BENCH_scan.json

clean:
	$(GO) clean ./...
