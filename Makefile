GO ?= go

# fuzz-smoke budget per fuzz target; raise for a longer local fuzzing pass.
FUZZTIME ?= 10s

# Packages holding native Fuzz* targets (decoders and frame parsers).
FUZZ_PKGS = ./internal/wire ./internal/delta ./internal/huffman \
	./internal/collection ./internal/rsync ./internal/vcdiff \
	./internal/merkle ./internal/pubsig ./internal/cdc

.PHONY: all build test vet race check fuzz-smoke bench bench-cache bench-store bench-mux bench-manifest bench-pub bench-cdc api api-check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite — including the transport fault-injection tests
# (internal/transport), the collection-level stall/sever/cancellation tests
# (internal/collection) and the session-layer shutdown/retry acceptance
# tests (session_test.go) — under the race detector.
race:
	$(GO) test -race ./...

# check additionally sweeps the signature-cache layers (sigcache, dirio,
# collection), the observability layer (obs: shared metrics registries and
# tracers must stay race-free) and the benchmark harness (bench: drives
# multiplexed sessions concurrently) under vet and the race detector on their
# own, so bugs there fail fast with a focused report before the full suite
# runs.
check: vet race fuzz-smoke api-check
	$(GO) vet ./internal/sigcache/ ./internal/dirio/ ./internal/collection/ ./internal/store/ ./internal/obs/ ./internal/bench/ ./internal/pubsig/ ./internal/cdc/ ./internal/corpus/
	$(GO) test -race ./internal/sigcache/ ./internal/dirio/ ./internal/collection/ ./internal/store/ ./internal/obs/ ./internal/bench/ ./internal/pubsig/ ./internal/cdc/ ./internal/corpus/

# api-check diffs the package's exported surface against the committed
# API.txt; regenerate with `make api` after an intentional API change.
api-check:
	$(GO) run ./cmd/apidiff -check API.txt

api:
	$(GO) run ./cmd/apidiff -write API.txt

# fuzz-smoke runs every native fuzz target for FUZZTIME each (the toolchain
# allows only one -fuzz pattern per invocation, hence the loop). The corpus
# seeds include the regression inputs for the varint and frame-decoder
# fixes, so this doubles as their regression gate.
fuzz-smoke:
	@set -e; for pkg in $(FUZZ_PKGS); do \
		for t in $$($(GO) test -list '^Fuzz' $$pkg | grep '^Fuzz'); do \
			echo "fuzz $$pkg $$t ($(FUZZTIME))"; \
			$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) $$pkg; \
		done; \
	done

# bench runs the Go benchmarks once each, then regenerates BENCH_scan.json —
# the scan-scaling report (serial vs parallel client map-construction
# wall-clock and bytes on the wire; see internal/bench/parallel.go) — plus
# BENCH_cache.json, BENCH_store.json and BENCH_mux.json via their targets.
# GOMAXPROCS is pinned to the host's CPU count (unless already set) so the
# scan sweep measures real parallelism rather than a clamped-to-1 runtime.
NPROC := $(shell nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)
bench: export GOMAXPROCS ?= $(NPROC)
bench: bench-cache bench-store bench-mux bench-manifest bench-pub bench-cdc
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
	$(GO) run ./cmd/msbench -scan-json BENCH_scan.json

# bench-cache regenerates BENCH_cache.json: repeat sync of an unchanged tree
# with the signature cache off, cold and warm — wall-clock, bytes hashed,
# allocations, and the wire-determinism check (see internal/bench/cache.go).
bench-cache:
	$(GO) run ./cmd/msbench -cache-json BENCH_cache.json

# bench-store regenerates BENCH_store.json: cold full sync versus
# journal-delta sync from one and five versions back on a 10k-file corpus
# (see internal/bench/store.go).
bench-store:
	$(GO) run ./cmd/msbench -store-json BENCH_store.json

# bench-manifest regenerates BENCH_manifest.json: flat manifest versus
# merkle-tree change detection (cold, and cached+speculative) at ~1% churn on
# a wide tiny-file corpus, plus a rename-heavy corpus without and with
# cross-file matching (see internal/bench/manifest.go).
bench-manifest:
	$(GO) run ./cmd/msbench -manifest-json BENCH_manifest.json

# bench-pub regenerates BENCH_pub.json: N readers synchronizing from one
# server — interactive protocol sessions versus published signature artifacts
# over HTTP (cold, behind a warm CDN-style cache, and riding the /since delta
# path), every reader converge-verified (see internal/bench/pub.go).
bench-pub:
	$(GO) run ./cmd/msbench -pub-json BENCH_pub.json

# bench-cdc regenerates BENCH_cdc.json: CDC map construction versus recursive
# halving over the adversarial boundary-shift corpora (append-heavy logs,
# database dumps, VM images, binary releases), total wire bytes per arm with
# every arm convergence-verified (see internal/bench/cdc.go).
bench-cdc:
	$(GO) run ./cmd/msbench -cdc-json BENCH_cdc.json

# bench-mux regenerates BENCH_mux.json: per-file sessions versus one lockstep
# session versus multiplexed streams at widths 4/16/64 over a 10k-small-file
# corpus, with wall-clock modeled at 50–200 ms RTT (see internal/bench/mux.go).
bench-mux:
	$(GO) run ./cmd/msbench -mux-json BENCH_mux.json

clean:
	$(GO) clean ./...
