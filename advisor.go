package msync

import (
	"bytes"
	"fmt"

	"msync/internal/cdc"
	"msync/internal/gtest"
)

// Advice is a recommended configuration plus the reasoning behind it.
type Advice struct {
	Config Config
	// Similarity is the estimated fraction of the new content already
	// present at the client (0..1), from a content-defined chunk overlap
	// probe.
	Similarity float64
	// Rationale explains the choice in one or two sentences.
	Rationale string
}

// Recommend picks protocol parameters from a sample of the data and the
// link characteristics — the adaptive tool the paper's conclusion calls for
// ("choose the best set of parameters and number of roundtrips based on the
// characteristics of the data set and communication link").
//
// sampleOld/sampleNew should be a representative old/new version pair (a
// typical changed file, or concatenated fragments). link describes the
// connection; a zero LinkModel means "bandwidth-bound, latency negligible".
func Recommend(sampleOld, sampleNew []byte, link LinkModel) Advice {
	sim := estimateSimilarity(sampleOld, sampleNew)
	// Shared content that no longer sits at its old offsets is the signature
	// of insert/delete-heavy edits: recursive halving's fixed power-of-two
	// grid misses it, content-defined boundaries follow it.
	shifted := sim > 0.2 && alignedSimilarity(sampleOld, sampleNew) < sim/2

	// How many bytes one roundtrip is worth on this link.
	bytesPerRTT := 0.0
	if link.RTT > 0 && link.DownBps > 0 {
		bytesPerRTT = link.DownBps * link.RTT.Seconds()
	}

	switch {
	case sim < 0.05:
		// Nothing shared: map construction is wasted work. Go single-shot
		// with adaptive stopping as a backstop for mixed collections.
		cfg := OneShotConfig(1024)
		cfg.Adaptive = true
		cfg.AdaptiveMinBlock = 1024
		cfg.AdaptiveFactor = 4
		return Advice{cfg, sim, fmt.Sprintf(
			"only %.0f%% of the new content is present at the client; "+
				"skip multi-round mapping and send deltas directly", sim*100)}

	case bytesPerRTT > 512<<10:
		// Extreme latency-bandwidth product (satellite-class): roundtrips
		// dominate any byte savings for moderate collections.
		cfg := OneShotConfig(512)
		return Advice{cfg, sim, fmt.Sprintf(
			"one roundtrip costs ~%.0f KB of link capacity; a single-shot "+
				"exchange beats multi-round mapping", bytesPerRTT/1024)}

	case bytesPerRTT > 64<<10:
		// High-latency link: keep the recursion but spend only one
		// verification batch per round.
		cfg := DefaultConfig()
		cfg.Verify = gtest.Config{Batches: 1, GroupSize: 2, TrustedGroupSize: 4, SplitFactor: 2}
		cfg.ContMinBlock = 32
		return Advice{cfg, sim, fmt.Sprintf(
			"latency is significant (~%.0f KB per roundtrip); multi-round "+
				"mapping with a single verification batch per round", bytesPerRTT/1024)}

	case sim > 0.6:
		// Highly similar versions on a bandwidth-bound link: recurse deep,
		// verify patiently — every saved byte counts.
		cfg := DefaultConfig()
		cfg.MinBlockSize = 64
		cfg.ContMinBlock = 8
		cfg.Verify = gtest.Config{Batches: 3, GroupSize: 6, TrustedGroupSize: 12, SplitFactor: 3, RetryAlternates: 1}
		if shifted {
			cfg.MapMode = MapCDC
			return Advice{cfg, sim, fmt.Sprintf(
				"~%.0f%% of the new content is already at the client but has "+
					"shifted off its old offsets; content-defined boundaries "+
					"(CDC map mode) follow the moved content", sim*100)}
		}
		return Advice{cfg, sim, fmt.Sprintf(
			"~%.0f%% of the new content is already at the client; deep "+
				"recursion and continuation probes pay for themselves", sim*100)}

	default:
		cfg := DefaultConfig()
		if shifted {
			cfg.MapMode = MapCDC
			return Advice{cfg, sim, fmt.Sprintf(
				"moderate similarity (%.0f%%) with the shared content shifted "+
					"off its old offsets; content-defined boundaries (CDC map "+
					"mode) follow the moved content", sim*100)}
		}
		return Advice{cfg, sim, fmt.Sprintf(
			"moderate similarity (%.0f%%) on a bandwidth-bound link; the "+
				"default multi-round settings apply", sim*100)}
	}
}

// estimateSimilarity measures chunk-level content overlap via
// content-defined chunking — cheap (two linear passes) and alignment-proof.
func estimateSimilarity(old, cur []byte) float64 {
	if len(cur) == 0 {
		return 1
	}
	if len(old) == 0 {
		return 0
	}
	n := min(len(old), len(cur))
	// Samples around the chunker's 48-byte rolling window degenerate into a
	// single whole-buffer chunk per side, so chunk overlap carries no signal
	// (two same-length unrelated samples would read as ~100% similar).
	// Compare the bytes directly instead.
	if n < 128 {
		if bytes.Equal(old, cur) {
			return 1
		}
		return 0
	}
	p := cdc.Params{Min: 64, Avg: 256, Max: 2048}
	if n < 4096 {
		// Short samples get finer chunks so the estimate still averages over
		// a few dozen of them instead of a handful.
		p = cdc.Params{Min: 64, Avg: 128, Max: 1024}
	}
	oldChunks, err := cdc.ChunksE(old, p)
	if err != nil {
		return 0
	}
	curChunks, err := cdc.ChunksE(cur, p)
	if err != nil {
		return 0
	}
	have := map[[16]byte]bool{}
	for _, c := range oldChunks {
		have[c.Sum] = true
	}
	sharedBytes := 0
	for _, c := range curChunks {
		if have[c.Sum] {
			sharedBytes += c.Len
		}
	}
	return float64(sharedBytes) / float64(len(cur))
}

// alignedSimilarity measures how much of cur matches old at the very same
// offsets, on the fixed 512-byte grid recursive halving's boundaries align
// to. High chunk overlap with low aligned overlap means the shared content
// survived but moved — the workload where CDC map construction wins.
func alignedSimilarity(old, cur []byte) float64 {
	const grid = 512
	n := min(len(old), len(cur))
	if n == 0 {
		if len(cur) == 0 {
			return 1
		}
		return 0
	}
	if n < grid {
		if bytes.Equal(old[:n], cur[:n]) {
			return 1
		}
		return 0
	}
	same, total := 0, 0
	for off := 0; off+grid <= n; off += grid {
		total++
		if bytes.Equal(old[off:off+grid], cur[off:off+grid]) {
			same++
		}
	}
	return float64(same) / float64(total)
}
