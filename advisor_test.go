package msync_test

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"msync"
	"msync/internal/corpus"
)

func TestRecommendUnrelatedGoesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	old := corpus.RandomText(rng, 50_000)
	cur := corpus.RandomText(rng, 50_000)
	adv := msync.Recommend(old, cur, msync.LinkModel{})
	if adv.Similarity > 0.1 {
		t.Fatalf("similarity %.2f for unrelated data", adv.Similarity)
	}
	if adv.Config.MaxBlockSize != adv.Config.MinBlockSize {
		t.Fatalf("expected a one-shot config, got %+v", adv.Config)
	}
	if !adv.Config.Adaptive {
		t.Fatal("adaptive backstop missing")
	}
	if adv.Config.Validate() != nil {
		t.Fatal("invalid recommendation")
	}
}

func TestRecommendSimilarGoesDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	old := corpus.SourceText(rng, 80_000)
	cur := corpus.EditModel{BurstsPer32KB: 1, BurstEdits: 3, EditSize: 30, BurstSpread: 200}.Apply(rng, old)
	adv := msync.Recommend(old, cur, msync.LinkModel{})
	if adv.Similarity < 0.6 {
		t.Fatalf("similarity %.2f for a lightly edited file", adv.Similarity)
	}
	def := msync.DefaultConfig()
	if adv.Config.MinBlockSize >= def.MinBlockSize && adv.Config.ContMinBlock >= def.ContMinBlock {
		t.Fatalf("expected deeper recursion than default: %+v", adv.Config)
	}
	if adv.Config.Validate() != nil {
		t.Fatal("invalid recommendation")
	}
}

func TestRecommendHighLatencyLimitsRoundtrips(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	old := corpus.SourceText(rng, 80_000)
	cur := corpus.EditModel{BurstsPer32KB: 2, BurstEdits: 3, EditSize: 30, BurstSpread: 200}.Apply(rng, old)

	sat := msync.LinkModel{DownBps: 1_250_000, UpBps: 1_250_000, RTT: 600 * time.Millisecond}
	adv := msync.Recommend(old, cur, sat)
	if adv.Config.MaxBlockSize != adv.Config.MinBlockSize {
		t.Fatalf("satellite link should get one-shot, got %+v", adv.Config)
	}

	moderate := msync.LinkModel{DownBps: 1_250_000, UpBps: 1_250_000, RTT: 80 * time.Millisecond}
	adv = msync.Recommend(old, cur, moderate)
	if adv.Config.Verify.Batches != 1 {
		t.Fatalf("moderate-latency link should cap verification batches, got %+v", adv.Config.Verify)
	}
}

// TestRecommendationsWork: every recommendation must produce a working sync
// and beat the worst-matched preset on its own scenario.
func TestRecommendationsWork(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	scenarios := []struct {
		name     string
		old, cur []byte
		link     msync.LinkModel
	}{
		{"unrelated", corpus.RandomText(rng, 60_000), corpus.RandomText(rng, 60_000), msync.LinkModel{}},
		{"similar-slow", nil, nil, msync.LinkModel{DownBps: 125_000, UpBps: 32_000, RTT: 80 * time.Millisecond}},
	}
	base := corpus.SourceText(rng, 60_000)
	scenarios[1].old = base
	scenarios[1].cur = corpus.EditModel{BurstsPer32KB: 1, BurstEdits: 3, EditSize: 30, BurstSpread: 200}.Apply(rng, base)

	for _, sc := range scenarios {
		adv := msync.Recommend(sc.old, sc.cur, sc.link)
		res, err := msync.SyncFile(sc.old, sc.cur, adv.Config)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		if !bytes.Equal(res.Data, sc.cur) {
			t.Fatalf("%s: reconstruction mismatch", sc.name)
		}
		if adv.Rationale == "" {
			t.Fatalf("%s: missing rationale", sc.name)
		}
		t.Logf("%s: sim=%.2f cost=%d rationale=%q", sc.name, adv.Similarity, res.Costs.Total(), adv.Rationale)
	}
}

func TestRecommendEdgeInputs(t *testing.T) {
	for _, tc := range [][2][]byte{
		{nil, nil},
		{nil, []byte("new")},
		{[]byte("old"), nil},
		{[]byte("tiny"), []byte("tiny")},
	} {
		adv := msync.Recommend(tc[0], tc[1], msync.LinkModel{})
		if err := adv.Config.Validate(); err != nil {
			t.Fatalf("edge input produced invalid config: %v", err)
		}
	}
}
