package msync_test

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"msync"
	"msync/internal/corpus"
)

func TestRecommendUnrelatedGoesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	old := corpus.RandomText(rng, 50_000)
	cur := corpus.RandomText(rng, 50_000)
	adv := msync.Recommend(old, cur, msync.LinkModel{})
	if adv.Similarity > 0.1 {
		t.Fatalf("similarity %.2f for unrelated data", adv.Similarity)
	}
	if adv.Config.MaxBlockSize != adv.Config.MinBlockSize {
		t.Fatalf("expected a one-shot config, got %+v", adv.Config)
	}
	if !adv.Config.Adaptive {
		t.Fatal("adaptive backstop missing")
	}
	if adv.Config.Validate() != nil {
		t.Fatal("invalid recommendation")
	}
}

func TestRecommendSimilarGoesDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	old := corpus.SourceText(rng, 80_000)
	cur := corpus.EditModel{BurstsPer32KB: 1, BurstEdits: 3, EditSize: 30, BurstSpread: 200}.Apply(rng, old)
	adv := msync.Recommend(old, cur, msync.LinkModel{})
	if adv.Similarity < 0.6 {
		t.Fatalf("similarity %.2f for a lightly edited file", adv.Similarity)
	}
	def := msync.DefaultConfig()
	if adv.Config.MinBlockSize >= def.MinBlockSize && adv.Config.ContMinBlock >= def.ContMinBlock {
		t.Fatalf("expected deeper recursion than default: %+v", adv.Config)
	}
	if adv.Config.Validate() != nil {
		t.Fatal("invalid recommendation")
	}
}

func TestRecommendHighLatencyLimitsRoundtrips(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	old := corpus.SourceText(rng, 80_000)
	cur := corpus.EditModel{BurstsPer32KB: 2, BurstEdits: 3, EditSize: 30, BurstSpread: 200}.Apply(rng, old)

	sat := msync.LinkModel{DownBps: 1_250_000, UpBps: 1_250_000, RTT: 600 * time.Millisecond}
	adv := msync.Recommend(old, cur, sat)
	if adv.Config.MaxBlockSize != adv.Config.MinBlockSize {
		t.Fatalf("satellite link should get one-shot, got %+v", adv.Config)
	}

	moderate := msync.LinkModel{DownBps: 1_250_000, UpBps: 1_250_000, RTT: 80 * time.Millisecond}
	adv = msync.Recommend(old, cur, moderate)
	if adv.Config.Verify.Batches != 1 {
		t.Fatalf("moderate-latency link should cap verification batches, got %+v", adv.Config.Verify)
	}
}

// TestRecommendationsWork: every recommendation must produce a working sync
// and beat the worst-matched preset on its own scenario.
func TestRecommendationsWork(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	scenarios := []struct {
		name     string
		old, cur []byte
		link     msync.LinkModel
	}{
		{"unrelated", corpus.RandomText(rng, 60_000), corpus.RandomText(rng, 60_000), msync.LinkModel{}},
		{"similar-slow", nil, nil, msync.LinkModel{DownBps: 125_000, UpBps: 32_000, RTT: 80 * time.Millisecond}},
	}
	base := corpus.SourceText(rng, 60_000)
	scenarios[1].old = base
	scenarios[1].cur = corpus.EditModel{BurstsPer32KB: 1, BurstEdits: 3, EditSize: 30, BurstSpread: 200}.Apply(rng, base)

	for _, sc := range scenarios {
		adv := msync.Recommend(sc.old, sc.cur, sc.link)
		res, err := msync.SyncFile(sc.old, sc.cur, adv.Config)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		if !bytes.Equal(res.Data, sc.cur) {
			t.Fatalf("%s: reconstruction mismatch", sc.name)
		}
		if adv.Rationale == "" {
			t.Fatalf("%s: missing rationale", sc.name)
		}
		t.Logf("%s: sim=%.2f cost=%d rationale=%q", sc.name, adv.Similarity, res.Costs.Total(), adv.Rationale)
	}
}

// TestRecommendShiftHeavyGoesCDC: a pair whose shared content survives but
// sits at different offsets (the rotated-log shape) must be answered with a
// CDC map-mode config, and that config must produce a working sync.
func TestRecommendShiftHeavyGoesCDC(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	old := corpus.SourceText(rng, 120_000)
	// Rotate away the head and prepend fresh content: every surviving byte
	// shifts, exactly what breaks fixed power-of-two boundaries.
	cur := append(corpus.SourceText(rng, 3_000), old[40_000:]...)
	adv := msync.Recommend(old, cur, msync.LinkModel{})
	if adv.Config.MapMode != msync.MapCDC {
		t.Fatalf("shift-heavy pair got mode %v (sim=%.2f): %s",
			adv.Config.MapMode, adv.Similarity, adv.Rationale)
	}
	if err := adv.Config.Validate(); err != nil {
		t.Fatalf("invalid recommendation: %v", err)
	}
	res, err := msync.SyncFile(old, cur, adv.Config)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, cur) {
		t.Fatal("reconstruction mismatch under recommended CDC config")
	}

	// In-place edits at stable offsets must NOT trigger the CDC mode.
	inPlace := append([]byte(nil), old...)
	for off := 1000; off+64 < len(inPlace); off += 16_000 {
		copy(inPlace[off:], corpus.RandomText(rng, 64))
	}
	adv = msync.Recommend(old, inPlace, msync.LinkModel{})
	if adv.Config.MapMode != msync.MapHalving {
		t.Fatalf("aligned in-place edits got mode %v: %s", adv.Config.MapMode, adv.Rationale)
	}
}

// TestRecommendShortSamples: samples too short for the chunker's rolling
// window must not report inflated similarity (the degenerate one-chunk bug).
func TestRecommendShortSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, tc := range []struct {
		name     string
		old, cur []byte
		lo, hi   float64
	}{
		{"both empty", nil, nil, 1, 1},
		{"new empty", []byte("x"), nil, 1, 1},
		{"old empty", nil, []byte("x"), 0, 0},
		{"tiny equal", []byte("same bytes"), []byte("same bytes"), 1, 1},
		{"tiny different", []byte("aaaaaaaaaa"), []byte("bbbbbbbbbb"), 0, 0},
		// Unrelated samples that straddle the 48-byte window: the old code
		// chunked each as one degenerate whole-buffer chunk and could only
		// answer 0 or 1; same-length unrelated buffers must read as 0.
		{"window-straddling unrelated", corpus.RandomText(rng, 60), corpus.RandomText(rng, 60), 0, 0},
		{"short unrelated", corpus.RandomText(rng, 500), corpus.RandomText(rng, 500), 0, 0.2},
		{"short identical", bytes.Repeat([]byte("abcdefgh"), 64), bytes.Repeat([]byte("abcdefgh"), 64), 0.9, 1},
	} {
		adv := msync.Recommend(tc.old, tc.cur, msync.LinkModel{})
		if adv.Similarity < tc.lo || adv.Similarity > tc.hi {
			t.Errorf("%s: similarity %.2f outside [%.2f, %.2f]", tc.name, adv.Similarity, tc.lo, tc.hi)
		}
		if err := adv.Config.Validate(); err != nil {
			t.Errorf("%s: invalid config: %v", tc.name, err)
		}
	}
}

func TestRecommendEdgeInputs(t *testing.T) {
	for _, tc := range [][2][]byte{
		{nil, nil},
		{nil, []byte("new")},
		{[]byte("old"), nil},
		{[]byte("tiny"), []byte("tiny")},
	} {
		adv := msync.Recommend(tc[0], tc[1], msync.LinkModel{})
		if err := adv.Config.Validate(); err != nil {
			t.Fatalf("edge input produced invalid config: %v", err)
		}
	}
}
