module msync

go 1.22
