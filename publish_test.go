package msync_test

// Tests of the publish-mode root API: PublishDir into a filesystem artifact
// store, PublishHandler as the HTTP surface, SyncPublished on the reader.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"msync"
	"msync/internal/dirio"
)

func TestPublishRoundTripAPI(t *testing.T) {
	srcDir, artifactDir, readerDir := t.TempDir(), t.TempDir(), t.TempDir()
	v1 := map[string][]byte{
		"a.txt":     bytes.Repeat([]byte("alpha content "), 300),
		"sub/b.txt": bytes.Repeat([]byte("beta content "), 200),
	}
	if err := dirio.Apply(srcDir, nil, v1); err != nil {
		t.Fatal(err)
	}

	store, err := msync.NewArtifactDir(artifactDir)
	if err != nil {
		t.Fatal(err)
	}
	v, created, err := msync.PublishDir(srcDir, store, 0)
	if err != nil || v != 1 || !created {
		t.Fatalf("publish: v=%d created=%v err=%v", v, created, err)
	}
	if v, created, err = msync.PublishDir(srcDir, store, 0); err != nil || v != 1 || created {
		t.Fatalf("re-publish unchanged: v=%d created=%v err=%v", v, created, err)
	}

	v2 := map[string][]byte{
		"a.txt":     append(append([]byte{}, v1["a.txt"]...), []byte("tail edit\n")...),
		"sub/b.txt": v1["sub/b.txt"],
		"c.txt":     []byte("new file\n"),
	}
	if err := dirio.Apply(srcDir, v1, v2); err != nil {
		t.Fatal(err)
	}
	if v, created, err = msync.PublishDir(srcDir, store, 0); err != nil || v != 2 || !created {
		t.Fatalf("publish v2: v=%d created=%v err=%v", v, created, err)
	}

	h, err := msync.PublishHandler(store)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	if err := dirio.Apply(readerDir, nil, v1); err != nil {
		t.Fatal(err)
	}
	res, err := msync.SyncPublished(context.Background(), srv.Client(), srv.URL, readerDir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || !res.DeltaPath {
		t.Fatalf("sync result: %+v", res)
	}
	got, err := dirio.Load(readerDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(v2) {
		t.Fatalf("reader has %d files, want %d", len(got), len(v2))
	}
	for k, want := range v2 {
		if !bytes.Equal(got[k], want) {
			t.Fatalf("file %q differs after publish sync", k)
		}
	}

	// PublishSyncer with DryRun reports without touching the tree.
	staleDir := t.TempDir()
	if err := dirio.Apply(staleDir, nil, v1); err != nil {
		t.Fatal(err)
	}
	sy := &msync.PublishSyncer{Client: srv.Client(), BaseURL: srv.URL, DryRun: true}
	dryRes, err := sy.Sync(context.Background(), staleDir)
	if err != nil {
		t.Fatal(err)
	}
	if dryRes.FilesSynced+dryRes.FilesFull == 0 {
		t.Fatalf("dry run found nothing to do: %+v", dryRes)
	}
	after, err := dirio.Load(staleDir)
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range v1 {
		if !bytes.Equal(after[k], want) {
			t.Fatalf("dry run modified %q", k)
		}
	}
}
