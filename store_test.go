package msync_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"msync"
	"msync/internal/obs"
)

// storeSyncOnce runs one sync between srv and cli over a pipe.
func storeSyncOnce(t *testing.T, srv *msync.Server, cli *msync.Client) (*msync.Result, *msync.Costs) {
	t.Helper()
	a, b := msync.Pipe()
	var serverCosts *msync.Costs
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		c, err := srv.Serve(a)
		if err != nil {
			t.Error(err)
		}
		serverCosts = c
	}()
	res, err := cli.Sync(b)
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	wg.Wait()
	return res, serverCosts
}

// TestStoreServerJournalSync drives the versioned public API end to end:
// snapshot, sync to learn the version, then — after the directory moved on
// and a restarted server (same store) cut a second version — a repeat sync
// announcing the learned version rides the journal fast path. The restart
// doubles as the store-persistence check.
func TestStoreServerJournalSync(t *testing.T) {
	serverDir, storeDir := t.TempDir(), t.TempDir()
	body := func(tag string, n int) string {
		return strings.Repeat("content for "+tag+"\n", n)
	}
	writeDirFile(t, serverDir, "same/a.txt", body("a", 200))
	writeDirFile(t, serverDir, "mod/b.txt", body("b", 300))
	writeDirFile(t, serverDir, "gone/c.txt", body("c", 50))

	srv, werrs, err := msync.NewStoreServer(serverDir, storeDir, msync.DefaultConfig())
	if err != nil || len(werrs) > 0 {
		t.Fatalf("NewStoreServer: %v %v", err, werrs)
	}
	if v, err := srv.Snapshot(); err != nil || v != 1 {
		t.Fatalf("snapshot = (%d, %v), want v1", v, err)
	}

	// Cold sync from empty, announcing "no known version" to learn one.
	cli := msync.NewClient(nil, msync.WithBaseVersion(0))
	res, _ := storeSyncOnce(t, srv, cli)
	if res.Version != 1 {
		t.Fatalf("first sync reported version %d, want 1", res.Version)
	}
	clientFiles := res.Files
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// The collection moves on: b.txt edited, c.txt deleted, d.txt added.
	// A restarted server over the same store picks up at v1 and cuts v2.
	writeDirFile(t, serverDir, "mod/b.txt", body("b", 290)+"edited tail\n")
	writeDirFile(t, serverDir, "new/d.txt", body("d", 40))
	if err := os.Remove(filepath.Join(serverDir, "gone", "c.txt")); err != nil {
		t.Fatal(err)
	}
	reg := msync.NewMetricsRegistry()
	srv2, werrs, err := msync.NewStoreServer(serverDir, storeDir, msync.DefaultConfig(),
		msync.WithMetrics(reg))
	if err != nil || len(werrs) > 0 {
		t.Fatalf("NewStoreServer (reopen): %v %v", err, werrs)
	}
	defer srv2.Close()
	if v, err := srv2.Snapshot(); err != nil || v != 2 {
		t.Fatalf("snapshot = (%d, %v), want v2", v, err)
	}

	// Repeat sync from the learned version: journal fast path.
	cli2 := msync.NewClient(clientFiles, msync.WithBaseVersion(res.Version))
	res2, serverCosts := storeSyncOnce(t, srv2, cli2)
	if serverCosts.JournalHits != 1 || serverCosts.JournalMisses != 0 {
		t.Fatalf("journal hits/misses = %d/%d, want 1/0", serverCosts.JournalHits, serverCosts.JournalMisses)
	}
	if res2.Version != 2 {
		t.Fatalf("repeat sync reported version %d, want 2", res2.Version)
	}
	if !bytes.Contains(res2.Files["mod/b.txt"], []byte("edited tail")) {
		t.Fatal("journal sync missed the edit")
	}
	if _, ok := res2.Files["gone/c.txt"]; ok {
		t.Fatal("journal sync kept a deleted file")
	}
	if !bytes.Equal(res2.Files["new/d.txt"], []byte(body("d", 40))) {
		t.Fatal("journal sync missed the added file")
	}

	// Store gauges and journal counters reached the registry.
	if got := reg.Gauge(obs.MetricStoreVersions).Value(); got != 2 {
		t.Fatalf("%s = %d, want 2", obs.MetricStoreVersions, got)
	}
	if reg.Gauge(obs.MetricStoreBytes).Value() <= 0 {
		t.Fatalf("%s not populated", obs.MetricStoreBytes)
	}
	if got := reg.Counter("msync_store_journal_hits_total").Value(); got != 1 {
		t.Fatalf("journal hit counter = %d, want 1", got)
	}
}

// TestSnapshotWithoutStore: Snapshot on a storeless server is a typed error.
func TestSnapshotWithoutStore(t *testing.T) {
	srv, err := msync.NewServer(map[string][]byte{"a": []byte("x")}, msync.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Snapshot(); !errors.Is(err, msync.ErrNotVersioned) {
		t.Fatalf("Snapshot without store = %v, want ErrNotVersioned", err)
	}
}

// TestOptionValidation: every invalid option surfaces as ErrBadOption from
// error-returning constructors, and NewClient ignores it.
func TestOptionValidation(t *testing.T) {
	bad := []struct {
		name string
		opt  msync.Option
	}{
		{"WithTimeout", msync.WithTimeout(-time.Second)},
		{"WithRoundTimeout", msync.WithRoundTimeout(-1)},
		{"WithDialTimeout", msync.WithDialTimeout(-1)},
		{"WithHandshakeTimeout", msync.WithHandshakeTimeout(-1)},
		{"WithBusyRetryAfter", msync.WithBusyRetryAfter(-1)},
		{"WithRetry", msync.WithRetry(msync.RetryPolicy{MaxAttempts: -1})},
		{"WithRetryJitter", msync.WithRetry(msync.RetryPolicy{Jitter: 1.5})},
		{"WithClock", msync.WithClock(nil)},
		{"WithSessionHook", msync.WithSessionHook(nil)},
		{"WithMaxSessions", msync.WithMaxSessions(-1)},
		{"WithMaxQueued", msync.WithMaxQueued(-1)},
		{"WithSignatureCache", msync.WithSignatureCache("", -1)},
		{"WithLogger", msync.WithLogger(nil)},
		{"WithTracer", msync.WithTracer(nil)},
		{"WithMetrics", msync.WithMetrics(nil)},
		{"WithWorkers", msync.WithWorkers(-1)},
		{"WithStore", msync.WithStore("")},
		{"WithStoreBudget", msync.WithStoreBudget(-1)},
	}
	files := map[string][]byte{"a": []byte("x")}
	for _, tc := range bad {
		if _, err := msync.NewClientE(files, tc.opt); !errors.Is(err, msync.ErrBadOption) {
			t.Errorf("NewClientE(%s) = %v, want ErrBadOption", tc.name, err)
		}
		if _, err := msync.NewServer(files, msync.DefaultConfig(), tc.opt); !errors.Is(err, msync.ErrBadOption) {
			t.Errorf("NewServer(%s) = %v, want ErrBadOption", tc.name, err)
		}
	}
	// NewClient is panic-free: invalid options are dropped, defaults kept.
	if cli := msync.NewClient(files, msync.WithWorkers(-1)); cli == nil {
		t.Fatal("NewClient with a bad option returned nil")
	}
	// And valid options still construct.
	if _, err := msync.NewClientE(files, msync.WithTreeManifest(), msync.WithTimeout(time.Minute)); err != nil {
		t.Fatalf("NewClientE with valid options: %v", err)
	}
}

// TestAnnounceVersionAgainstPlainServer: announcing to a storeless server is
// harmless and reports no version.
func TestAnnounceVersionAgainstPlainServer(t *testing.T) {
	srv, err := msync.NewServer(map[string][]byte{"a": []byte("server content")}, msync.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := msync.NewClient(nil, msync.WithBaseVersion(3))
	res, _ := storeSyncOnce(t, srv, cli)
	if res.Version != 0 {
		t.Fatalf("plain server reported version %d", res.Version)
	}
	if !bytes.Equal(res.Files["a"], []byte("server content")) {
		t.Fatal("sync did not converge")
	}
}
