package msync_test

// Benchmarks regenerating the paper's evaluation artifacts (one per table
// and figure; see DESIGN.md §3). Each benchmark runs the corresponding
// experiment at a reduced scale and reports the headline byte costs as
// custom metrics, so `go test -bench` doubles as a smoke-level reproduction
// run; cmd/msbench produces the full-scale tables.

import (
	"math/rand"
	"testing"

	"msync"
	"msync/internal/bench"
	"msync/internal/corpus"
	"msync/internal/delta"
	"msync/internal/rsync"
)

// benchOpts keeps benchmark corpora small enough for -bench=. runs.
var benchOpts = bench.Options{Scale: 0.1, Seed: 42}

// runExperiment executes one experiment per iteration and reports the first
// and last rows' totals (typically: our best setting vs the baseline).
func runExperiment(b *testing.B, id string) {
	b.Helper()
	var table *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.Run(id, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		table = t
	}
	if table != nil && len(table.Rows) > 0 {
		first := table.Rows[0]
		last := table.Rows[len(table.Rows)-1]
		b.ReportMetric(first.Values[len(first.Values)-2], "firstrow-KB")
		b.ReportMetric(last.Values[len(last.Values)-2], "lastrow-KB")
	}
}

func BenchmarkFig61(b *testing.B)   { runExperiment(b, "fig6.1") }
func BenchmarkFig62(b *testing.B)   { runExperiment(b, "fig6.2") }
func BenchmarkFig63(b *testing.B)   { runExperiment(b, "fig6.3") }
func BenchmarkFig64(b *testing.B)   { runExperiment(b, "fig6.4") }
func BenchmarkTable61(b *testing.B) { runExperiment(b, "table6.1") }
func BenchmarkTable62(b *testing.B) { runExperiment(b, "table6.2") }

func BenchmarkAblationDecomposable(b *testing.B) { runExperiment(b, "ablate.decomp") }
func BenchmarkAblationLocal(b *testing.B)        { runExperiment(b, "ablate.local") }
func BenchmarkAblationHashBits(b *testing.B)     { runExperiment(b, "ablate.bits") }
func BenchmarkAblationRounds(b *testing.B)       { runExperiment(b, "ablate.rounds") }

// --- micro-benchmarks of the three per-file engines on one workload ---

func benchPair(size int) (old, cur []byte) {
	rng := rand.New(rand.NewSource(77))
	old = corpus.SourceText(rng, size)
	em := corpus.EditModel{BurstsPer32KB: 2, BurstEdits: 4, EditSize: 50, BurstSpread: 300}
	return old, em.Apply(rng, old)
}

func BenchmarkSyncFileMsync(b *testing.B) {
	old, cur := benchPair(256 << 10)
	cfg := msync.DefaultConfig()
	b.SetBytes(int64(len(cur)))
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		res, err := msync.SyncFile(old, cur, cfg)
		if err != nil {
			b.Fatal(err)
		}
		total = res.Costs.Total()
	}
	b.ReportMetric(float64(total), "wire-bytes")
}

func BenchmarkSyncFileRsync(b *testing.B) {
	old, cur := benchPair(256 << 10)
	b.SetBytes(int64(len(cur)))
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		r := rsync.Sync(old, cur, rsync.DefaultBlockSize, rsync.DefaultStrongLen)
		total = r.C2S + r.S2C
	}
	b.ReportMetric(float64(total), "wire-bytes")
}

func BenchmarkSyncFileDeltaBound(b *testing.B) {
	old, cur := benchPair(256 << 10)
	b.SetBytes(int64(len(cur)))
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		total = delta.CompressedSize(old, cur)
	}
	b.ReportMetric(float64(total), "wire-bytes")
}

// BenchmarkCollectionSession measures the full networked protocol over an
// in-memory pipe.
func BenchmarkCollectionSession(b *testing.B) {
	v1, v2 := corpus.GCCProfile(0.1).Generate(42)
	serverFiles, clientFiles := v2.Map(), v1.Map()
	cfg := msync.DefaultConfig()
	b.SetBytes(int64(v2.TotalBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv, err := msync.NewServer(serverFiles, cfg)
		if err != nil {
			b.Fatal(err)
		}
		serverEnd, clientEnd := msync.Pipe()
		go func() {
			defer serverEnd.Close()
			srv.Serve(serverEnd)
		}()
		if _, err := msync.NewClient(clientFiles).Sync(clientEnd); err != nil {
			b.Fatal(err)
		}
		clientEnd.Close()
	}
}
