package msync_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"msync"
	"msync/internal/collection"
	"msync/internal/corpus"
)

// TestConcurrentSessions: one server, many clients with different outdated
// states synchronizing at once.
func TestConcurrentSessions(t *testing.T) {
	wc := corpus.NewWebCollection(corpus.DefaultWebProfile(0.05), 3)
	current := wc.Version(6).Map()
	srv, err := msync.NewServer(current, msync.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	const nClients = 8
	var wg sync.WaitGroup
	errs := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		day := i % 5
		wg.Add(1)
		go func(day, i int) {
			defer wg.Done()
			old := wc.Version(day).Map()
			serverEnd, clientEnd := msync.Pipe()
			go func() {
				defer serverEnd.Close()
				if _, err := srv.Serve(serverEnd); err != nil {
					errs <- fmt.Errorf("server session %d: %w", i, err)
				}
			}()
			var copts []msync.Option
			if i%2 == 1 {
				copts = append(copts, msync.WithTreeManifest())
			}
			cli := msync.NewClient(old, copts...)
			res, err := cli.Sync(clientEnd)
			clientEnd.Close()
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", i, err)
				return
			}
			if err := collection.VerifyAgainst(res.Files, current); err != nil {
				errs <- fmt.Errorf("client %d: %w", i, err)
			}
		}(day, i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRandomizedCollectionProperty: arbitrary collection mutations, random
// configurations and both manifest modes must always converge the client to
// the server state.
func TestRandomizedCollectionProperty(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(trial) * 977))
			nFiles := 3 + rng.Intn(25)
			serverFiles := map[string][]byte{}
			clientFiles := map[string][]byte{}
			for i := 0; i < nFiles; i++ {
				path := fmt.Sprintf("d%d/f%03d", i%3, i)
				size := 10 + rng.Intn(30_000)
				cur := corpus.SourceText(rng, size)
				serverFiles[path] = cur
				switch rng.Intn(5) {
				case 0: // client lacks it
				case 1: // identical
					clientFiles[path] = cur
				case 2: // heavily diverged
					clientFiles[path] = corpus.RandomText(rng, size/2+1)
				default: // lightly edited
					em := corpus.EditModel{BurstsPer32KB: 4, BurstEdits: 4, EditSize: 40, BurstSpread: 200}
					clientFiles[path] = em.Apply(rng, cur)
				}
			}
			// Some client-only files to delete.
			for i := 0; i < rng.Intn(4); i++ {
				clientFiles[fmt.Sprintf("stale/%d", i)] = corpus.SourceText(rng, 100+rng.Intn(1000))
			}

			cfg := msync.DefaultConfig()
			switch trial % 4 {
			case 1:
				cfg = msync.BasicConfig()
			case 2:
				cfg.HashFamily = "adler"
			case 3:
				cfg.Adaptive = true
				cfg.AdaptiveMinBlock = 512
				cfg.AdaptiveFactor = 3
			}
			srv, err := msync.NewServer(serverFiles, cfg)
			if err != nil {
				t.Fatal(err)
			}
			serverEnd, clientEnd := msync.Pipe()
			var serveErr error
			done := make(chan struct{})
			go func() {
				defer close(done)
				defer serverEnd.Close()
				_, serveErr = srv.Serve(serverEnd)
			}()
			var copts []msync.Option
			if trial%2 == 0 {
				copts = append(copts, msync.WithTreeManifest())
			}
			cli := msync.NewClient(clientFiles, copts...)
			res, err := cli.Sync(clientEnd)
			clientEnd.Close()
			<-done
			if err != nil {
				t.Fatalf("client: %v", err)
			}
			if serveErr != nil {
				t.Fatalf("server: %v", serveErr)
			}
			if err := collection.VerifyAgainst(res.Files, serverFiles); err != nil {
				t.Fatal(err)
			}
		})
	}
}
