package msync_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"msync"
	"msync/internal/dirio"
)

func writeDirFile(t *testing.T, dir, rel, content string) {
	t.Helper()
	path := filepath.Join(dir, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// dirSyncOnce runs one directory-to-directory sync with both endpoints
// backed by persistent signature caches, returning the client result and the
// server session costs.
func dirSyncOnce(t *testing.T, serverDir, clientDir, serverCache, clientCache string) (*msync.Result, *msync.Costs) {
	t.Helper()
	srv, werrs, err := msync.NewDirServer(serverDir, msync.DefaultConfig(),
		msync.WithSignatureCache(serverCache, 0))
	if err != nil || len(werrs) > 0 {
		t.Fatalf("NewDirServer: %v %v", err, werrs)
	}
	cli, werrs, err := msync.NewDirClient(clientDir,
		msync.WithSignatureCache(clientCache, 0), msync.WithLazyResult())
	if err != nil || len(werrs) > 0 {
		t.Fatalf("NewDirClient: %v %v", err, werrs)
	}

	a, b := msync.Pipe()
	var serverCosts *msync.Costs
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		c, err := srv.Serve(a)
		if err != nil {
			t.Error(err)
		}
		serverCosts = c
	}()
	res, err := cli.Sync(b)
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	wg.Wait()
	return res, serverCosts
}

// TestDirSyncEndToEnd drives the directory-backed API through a full cycle:
// sync an outdated tree, apply the lazy result in place, then sync again and
// verify the warm repeat costs no hashing at all — the signature caches
// answer every fingerprint and no engines run.
func TestDirSyncEndToEnd(t *testing.T) {
	serverDir, clientDir := t.TempDir(), t.TempDir()
	serverCache, clientCache := t.TempDir(), t.TempDir()
	body := func(tag string, n int) string {
		return strings.Repeat("line of content for "+tag+"\n", n)
	}
	writeDirFile(t, serverDir, "same/a.txt", body("a", 200))
	writeDirFile(t, clientDir, "same/a.txt", body("a", 200))
	writeDirFile(t, serverDir, "mod/b.txt", body("b", 300)+"changed tail\n")
	writeDirFile(t, clientDir, "mod/b.txt", body("b", 300))
	writeDirFile(t, serverDir, "new/c.txt", body("c", 50))
	writeDirFile(t, clientDir, "old/d.txt", body("d", 40))

	res, _ := dirSyncOnce(t, serverDir, clientDir, serverCache, clientCache)
	if len(res.Files) != 2 { // mod/b.txt rewritten, new/c.txt created
		t.Fatalf("Files = %v, want the two written paths", pathsOf(res.Files))
	}
	if len(res.Deleted) != 1 || res.Deleted[0] != "old/d.txt" {
		t.Fatalf("Deleted = %v", res.Deleted)
	}
	if len(res.Unchanged) != 1 || res.Unchanged[0] != "same/a.txt" {
		t.Fatalf("Unchanged = %v", res.Unchanged)
	}
	if err := res.Apply(clientDir); err != nil {
		t.Fatal(err)
	}
	assertDirsEqual(t, serverDir, clientDir)

	// The trees are now identical; a repeat sync with warm caches is answered
	// entirely by stat identity. Server side: every fingerprint a cache hit,
	// zero bytes hashed, zero block hashes (no engines run at all).
	res2, serverCosts := dirSyncOnce(t, serverDir, clientDir, serverCache, clientCache)
	if len(res2.Files) != 0 || len(res2.Deleted) != 0 || len(res2.Unchanged) != 3 {
		t.Fatalf("repeat sync not a no-op: %d written / %d deleted / %d unchanged",
			len(res2.Files), len(res2.Deleted), len(res2.Unchanged))
	}
	if serverCosts.CacheMisses != 0 || serverCosts.CacheHits == 0 {
		t.Fatalf("warm server: %d misses / %d hits", serverCosts.CacheMisses, serverCosts.CacheHits)
	}
	if serverCosts.BytesHashed != 0 || serverCosts.BlockHashesComputed != 0 {
		t.Fatalf("warm server hashed %d bytes / %d block hashes, want zero",
			serverCosts.BytesHashed, serverCosts.BlockHashesComputed)
	}
	// Client side: the files written by Apply have fresh mtimes (misses); the
	// untouched file must still hit.
	if res2.Costs.CacheHits == 0 {
		t.Fatal("warm client recorded no cache hits")
	}
}

func pathsOf(m map[string][]byte) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func assertDirsEqual(t *testing.T, wantDir, gotDir string) {
	t.Helper()
	want, err := dirio.Load(wantDir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dirio.Load(gotDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("trees differ: %v vs %v", pathsOf(want), pathsOf(got))
	}
	for rel, data := range want {
		if !bytes.Equal(got[rel], data) {
			t.Fatalf("content differs for %s", rel)
		}
	}
}

// TestDirServerMissingRoot: an unusable root is a hard error, not a silent
// empty collection.
func TestDirServerMissingRoot(t *testing.T) {
	absent := filepath.Join(t.TempDir(), "absent")
	if _, _, err := msync.NewDirServer(absent, msync.DefaultConfig()); err == nil {
		t.Fatal("missing server root accepted")
	}
	if _, _, err := msync.NewDirClient(absent); err == nil {
		t.Fatal("missing client root accepted")
	}
}
