package msync

import (
	"errors"
	"fmt"
	"log/slog"
	"time"

	"msync/internal/transport"
)

// ErrBadOption is wrapped by every constructor error caused by an invalid
// Option argument (negative duration, nil logger, ...). NewServer, NewClientE
// and the other error-returning constructors surface it; inspect with
// errors.Is. NewClient, which cannot return an error, ignores invalid options
// and keeps the defaults instead.
var ErrBadOption = errors.New("msync: bad option")

// Clock abstracts time for retry/backoff scheduling; inject a fake in tests
// via WithClock to exercise backoff without real sleeping.
type Clock = transport.Clock

// RetryPolicy describes the exponential-backoff schedule used by
// Client.SyncTCPContext for dial and handshake failures. See
// DefaultRetryPolicy for sensible values; the zero value disables retry.
type RetryPolicy = transport.BackoffPolicy

// DefaultRetryPolicy retries up to 4 attempts with 200 ms initial backoff,
// doubling to a 5 s cap, with ±50% jitter to decorrelate client storms.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   200 * time.Millisecond,
		MaxDelay:    5 * time.Second,
		Multiplier:  2,
		Jitter:      0.5,
	}
}

// SessionEvent reports the outcome of one server-side session to the
// observer installed with WithSessionHook.
type SessionEvent struct {
	// RemoteAddr is the peer address for TCP sessions, "" for in-process
	// connections.
	RemoteAddr string
	// Costs is the session's cost accounting (possibly partial on error).
	Costs *Costs
	// Err is the session error, nil on success.
	Err error
	// Duration is the session's wall-clock time.
	Duration time.Duration
}

// sessionOptions collects the knobs shared by NewClient and NewServer.
// Options that only apply to one side are silently ignored by the other.
type sessionOptions struct {
	treeManifest bool
	timeout      time.Duration // whole-session deadline
	roundTimeout time.Duration // per-round (frame-level I/O) deadline
	dialTimeout  time.Duration
	retry        RetryPolicy
	clock        Clock
	allowPush    bool
	onUpdate     func(map[string][]byte)
	hook         func(SessionEvent)
	workers      int
	muxStreams   int
	specDescent  bool
	crossFile    bool
	mapMode      MapMode

	maxSessions      int           // concurrent-session cap; 0 = unlimited
	maxQueued        int           // admission wait-queue depth; 0 = no queue
	handshakeTimeout time.Duration // server-side handshake phase deadline
	busyRetryAfter   time.Duration // retry-after hint carried by BUSY answers

	cacheEnabled  bool
	cacheDir      string
	cacheMem      int64
	cacheParanoid bool
	lazyResult    bool

	storeDir    string // version-store directory; "" = no store (server side)
	storeBudget int64  // GC byte budget for the store; 0 = unlimited
	announce    bool   // client announces a base version in its hello
	baseVersion uint64 // the version announced

	logger  *slog.Logger
	tracer  Tracer
	metrics *MetricsRegistry

	// err records the first invalid option; error-returning constructors
	// surface it wrapped in ErrBadOption, NewClient drops it.
	err error
}

// badf records the first option-validation failure, wrapped in ErrBadOption.
// The offending option leaves its field at the default.
func (o *sessionOptions) badf(format string, args ...any) {
	if o.err == nil {
		o.err = fmt.Errorf("%w: %s", ErrBadOption, fmt.Sprintf(format, args...))
	}
}

// Option configures a Client or Server at construction; see the With*
// functions. Every option validates its argument: error-returning
// constructors report the first invalid one wrapped in ErrBadOption, while
// NewClient ignores it and keeps the default.
type Option func(*sessionOptions)

// WithTreeManifest selects merkle-tree change detection instead of the flat
// per-file fingerprint manifest. With n files of which c changed, the
// manifest costs O(n) bytes while the tree costs O(c·log n) — prefer it for
// large, mostly-unchanged collections. Applies to a Client's pulls and a
// Server's pushes.
func WithTreeManifest() Option {
	return func(o *sessionOptions) { o.treeManifest = true }
}

// WithSpeculativeDescent makes a tree-manifest Client request speculative
// descent (hello extension 3): the server's answers carry several levels of
// merkle digests at once, finishing a typical descent in roughly half the
// roundtrips for the same total bytes. Servers that don't support the
// extension ignore it and the session runs the legacy one-level descent
// byte-identically. Implies nothing without WithTreeManifest; ignored by
// servers (they always grant it when asked).
func WithSpeculativeDescent() Option {
	return func(o *sessionOptions) { o.specDescent = true }
}

// WithCrossFileMatch makes a tree-manifest Client request cross-file
// matching (hello extension 3): wanted files whose exact content already
// exists locally under another path (pure renames) are copied locally with
// zero content bytes on the wire, and files new to the client are synced
// against their best alternate local basis (e.g. the old path of a
// moved-and-edited file) instead of from scratch. Servers that don't
// support the extension ignore it; the session then runs byte-identically
// to one without this option. Implies nothing without WithTreeManifest.
func WithCrossFileMatch() Option {
	return func(o *sessionOptions) { o.crossFile = true }
}

// WithTimeout bounds each whole synchronization session (handshake through
// final ack) by d. Zero means unbounded. On a Client it covers every Sync*
// call; on a Server, every accepted session.
func WithTimeout(d time.Duration) Option {
	return func(o *sessionOptions) {
		if d < 0 {
			o.badf("WithTimeout: negative duration %v", d)
			return
		}
		o.timeout = d
	}
}

// WithRoundTimeout bounds each protocol round (every frame-level read and
// write) by d, so a stalled peer fails fast instead of hanging the session.
// Effective on connections with deadline support (TCP, Pipe).
func WithRoundTimeout(d time.Duration) Option {
	return func(o *sessionOptions) {
		if d < 0 {
			o.badf("WithRoundTimeout: negative duration %v", d)
			return
		}
		o.roundTimeout = d
	}
}

// WithDialTimeout bounds each TCP dial attempt by d (client side).
func WithDialTimeout(d time.Duration) Option {
	return func(o *sessionOptions) {
		if d < 0 {
			o.badf("WithDialTimeout: negative duration %v", d)
			return
		}
		o.dialTimeout = d
	}
}

// WithRetry makes Client.SyncTCP / SyncTCPContext retry dial and handshake
// failures per the given backoff policy. Failures after the handshake
// (mid-transfer) are never retried automatically. Use DefaultRetryPolicy()
// as a starting point.
func WithRetry(p RetryPolicy) Option {
	return func(o *sessionOptions) {
		switch {
		case p.MaxAttempts < 0:
			o.badf("WithRetry: negative MaxAttempts %d", p.MaxAttempts)
		case p.BaseDelay < 0:
			o.badf("WithRetry: negative BaseDelay %v", p.BaseDelay)
		case p.MaxDelay < 0:
			o.badf("WithRetry: negative MaxDelay %v", p.MaxDelay)
		case p.Multiplier < 0:
			o.badf("WithRetry: negative Multiplier %g", p.Multiplier)
		case p.Jitter < 0 || p.Jitter > 1:
			o.badf("WithRetry: Jitter %g outside [0, 1]", p.Jitter)
		default:
			o.retry = p
		}
	}
}

// WithClock injects the clock used for retry backoff sleeps; tests pass a
// fake to assert schedules without real delays. Defaults to the system
// clock; passing nil is an error — omit the option instead.
func WithClock(c Clock) Option {
	return func(o *sessionOptions) {
		if c == nil {
			o.badf("WithClock: nil clock")
			return
		}
		o.clock = c
	}
}

// WithPush allows clients to push newer collections into a Server. onUpdate
// (optional, may be nil) receives the adopted collection after each push.
func WithPush(onUpdate func(map[string][]byte)) Option {
	return func(o *sessionOptions) {
		o.allowPush = true
		o.onUpdate = onUpdate
	}
}

// WithSessionHook installs an observer called after every server session
// (successful or not) with its outcome — the hook for connection accounting,
// logging and metrics. Passing nil is an error — omit the option instead.
func WithSessionHook(fn func(SessionEvent)) Option {
	return func(o *sessionOptions) {
		if fn == nil {
			o.badf("WithSessionHook: nil hook")
			return
		}
		o.hook = fn
	}
}

// WithMaxSessions caps the number of synchronization sessions a Server runs
// concurrently across all of its listeners. Connections arriving past the
// cap wait in the admission queue (see WithMaxQueued) and, when that is also
// full, are refused with a BUSY answer carrying a retry-after hint instead
// of being served. n = 0 (the default) leaves admission unlimited; negative
// n is an error.
//
// The cap bounds the serving path only — it never changes the bytes an
// admitted session exchanges. Clients built with WithRetry fold the BUSY
// hint into their backoff schedule automatically.
func WithMaxSessions(n int) Option {
	return func(o *sessionOptions) {
		if n < 0 {
			o.badf("WithMaxSessions: negative cap %d", n)
			return
		}
		o.maxSessions = n
	}
}

// WithMaxQueued bounds how many over-capacity connections may wait for a
// session slot before the server starts shedding with BUSY. The queue
// preserves work during short bursts without letting the backlog grow
// unboundedly. n = 0 (the default) disables queueing: every over-capacity
// connection is shed immediately; negative n is an error. Ignored unless
// WithMaxSessions is set.
func WithMaxQueued(n int) Option {
	return func(o *sessionOptions) {
		if n < 0 {
			o.badf("WithMaxQueued: negative depth %d", n)
			return
		}
		o.maxQueued = n
	}
}

// WithHandshakeTimeout bounds the server-side handshake phase of each
// admitted session: a connection that has not completed the opening
// exchange (through the verdicts for pulls, the hello for pushes) within d
// is dropped, so an idle or deliberately slow dial cannot pin a session
// slot that WithMaxSessions has made scarce. Zero (the default) leaves the
// handshake bounded only by WithTimeout/WithRoundTimeout.
func WithHandshakeTimeout(d time.Duration) Option {
	return func(o *sessionOptions) {
		if d < 0 {
			o.badf("WithHandshakeTimeout: negative duration %v", d)
			return
		}
		o.handshakeTimeout = d
	}
}

// WithBusyRetryAfter sets the retry-after hint a Server encodes into BUSY
// load-shedding answers. Retrying clients wait at least this long before
// the next attempt (their own jittered backoff still applies when longer).
// d = 0 (the default) uses one second; negative d is an error.
func WithBusyRetryAfter(d time.Duration) Option {
	return func(o *sessionOptions) {
		if d < 0 {
			o.badf("WithBusyRetryAfter: negative duration %v", d)
			return
		}
		o.busyRetryAfter = d
	}
}

// WithSignatureCache enables the persistent signature cache for a
// NewDirServer or NewDirClient endpoint: whole-file fingerprints and block
// hash tables are remembered across sessions, keyed by (path, size, mtime,
// ctime where the platform reports one, engine config), so repeat syncs of
// unchanged files cost a stat instead of a hash. dir is the on-disk store directory ("" keeps the cache in memory
// only); memBytes bounds the in-memory layer (0 selects a 64 MB default,
// negative is an error).
// The cache is purely a local accelerator — cached values are identical to
// freshly computed ones and nothing about it is ever serialized into the
// protocol, so the bytes on the wire are bit-identical with the cache on,
// off, cold or warm. Ignored by the map-backed NewClient/NewServer.
func WithSignatureCache(dir string, memBytes int64) Option {
	return func(o *sessionOptions) {
		if memBytes < 0 {
			o.badf("WithSignatureCache: negative memory bound %d", memBytes)
			return
		}
		o.cacheEnabled = true
		o.cacheDir = dir
		o.cacheMem = memBytes
	}
}

// WithParanoidCache re-verifies every signature-cache hit by re-reading the
// file, catching content changes the stat-identity key cannot see. On
// platforms with a stat ctime the key already catches restored-mtime
// rewrites, so this is mainly a backstop for filesystems without one (or
// for clock-skewed stats). It costs the streaming hash the cache was meant
// to avoid — use it when files are rewritten by tools that preserve
// timestamps.
func WithParanoidCache() Option {
	return func(o *sessionOptions) { o.cacheParanoid = true }
}

// WithLazyResult keeps unchanged files out of a directory-backed client's
// Result.Files: the result then holds only written content, with unchanged
// and deleted paths listed by name, so peak memory scales with the change
// set instead of the collection size. Ignored by map-backed clients, which
// have the collection in memory anyway.
func WithLazyResult() Option {
	return func(o *sessionOptions) { o.lazyResult = true }
}

// WithLogger attaches a structured logger to the endpoint: session starts,
// outcomes (bytes, roundtrips, wire and transport I/O counters) and retries
// are logged through it at debug/info/warn levels. Logging is disabled by
// default — there is no hidden output — and passing nil is an error: omit
// the option to keep it off.
func WithLogger(l *slog.Logger) Option {
	return func(o *sessionOptions) {
		if l == nil {
			o.badf("WithLogger: nil logger")
			return
		}
		o.logger = l
	}
}

// WithTracer attaches a Tracer receiving span-like events per protocol
// phase; see Tracer for the guarantees. Tracing is off by default at zero
// cost; passing nil is an error — omit the option instead.
func WithTracer(tr Tracer) Option {
	return func(o *sessionOptions) {
		if tr == nil {
			o.badf("WithTracer: nil tracer")
			return
		}
		o.tracer = tr
	}
}

// WithMetrics folds every session's outcome into the given registry:
// msync_sessions_total, msync_session_errors_total, the
// msync_sessions_active gauge, a session-duration histogram, retry counts,
// and the full per-direction/per-phase byte and technique counters mirrored
// from each session's Costs. One registry may be shared by any number of
// endpoints. Passing nil is an error — omit the option instead.
func WithMetrics(r *MetricsRegistry) Option {
	return func(o *sessionOptions) {
		if r == nil {
			o.badf("WithMetrics: nil registry")
			return
		}
		o.metrics = r
	}
}

// WithWorkers bounds this endpoint's local parallelism: per-file engine
// fan-out across synchronized files, sharded old-file scans, and batched
// verification hashing. n = 0 (the default) uses runtime.GOMAXPROCS(0);
// n = 1 runs fully serially; negative n is an error. The setting is local to
// each endpoint and never negotiated: the bytes on the wire are bit-identical
// for every value.
func WithWorkers(n int) Option {
	return func(o *sessionOptions) {
		if n < 0 {
			o.badf("WithWorkers: negative worker count %d", n)
			return
		}
		o.workers = n
	}
}

// WithMuxStreams enables stream multiplexing with up to n concurrent streams
// per session. On a Client it requests multiplexed pulls (hello extension 2):
// the server partitions the changed files into streams whose map rounds,
// deltas and fallbacks interleave on the one connection, so deep files no
// longer gate shallow ones and tiny files share roundtrips. On a Server it
// caps the width granted to requesting clients. Sessions where either side
// leaves this at 0 (the default), and every push session, run the legacy
// lockstep protocol byte-identically; the negotiated width never changes
// which bytes are synchronized, only their interleaving. Negative n is an
// error.
func WithMuxStreams(n int) Option {
	return func(o *sessionOptions) {
		if n < 0 {
			o.badf("WithMuxStreams: negative stream count %d", n)
			return
		}
		o.muxStreams = n
	}
}

// WithMapMode makes a Client request the given map-construction mode
// (hello extension 4). The server is authoritative: it grants the mode by
// running the session in it and echoing it in the session config, and
// servers that predate the extension — or refuse the mode — run recursive
// halving byte-identically to a legacy session, so the option is always safe
// to set. MapCDC derives block boundaries from content-defined chunk cuts,
// which keeps boundaries aligned with content across insertions and
// deletions; prefer it for shift-heavy data (append-and-rotate logs,
// database dumps, rebuilt archives). MapHalving (the default) requests
// nothing. Any other value is an error. Ignored by servers, which always
// honor usable client requests.
func WithMapMode(m MapMode) Option {
	return func(o *sessionOptions) {
		if m != MapHalving && m != MapCDC {
			o.badf("WithMapMode: unknown mode %d", int(m))
			return
		}
		o.mapMode = m
	}
}

// WithStore attaches a persistent version store to a Server: an append-only,
// checksummed local store at dir capturing immutable snapshots of the
// collection (cut with Server.Snapshot) with per-version change journals. A
// client that announces a stored version (WithBaseVersion) is answered with
// the precomputed journal delta instead of fresh map construction; unknown or
// garbage-collected versions fall back to the full protocol. Empty dir is an
// error. Ignored by clients.
func WithStore(dir string) Option {
	return func(o *sessionOptions) {
		if dir == "" {
			o.badf("WithStore: empty directory")
			return
		}
		o.storeDir = dir
	}
}

// WithStoreBudget bounds the version store's on-disk size: when segment bytes
// exceed n, oldest versions are garbage-collected (content still reachable
// from surviving versions is rescued first, and the latest version is never
// evicted). n = 0 (the default) disables GC; negative n is an error. Ignored
// without WithStore.
func WithStoreBudget(n int64) Option {
	return func(o *sessionOptions) {
		if n < 0 {
			o.badf("WithStoreBudget: negative budget %d", n)
			return
		}
		o.storeBudget = n
	}
}

// WithBaseVersion makes a Client announce v as the store version its local
// copy corresponds to. A server holding that version in its store answers
// with the precomputed journal delta — no map-construction rounds — and any
// server (versioned or not) that cannot honor the announcement simply runs
// the normal protocol. The session's Result.Version reports the server's
// current version for the next sync's announcement. v = 0 announces "no
// known version" (useful to just learn the server's current version).
func WithBaseVersion(v uint64) Option {
	return func(o *sessionOptions) {
		o.announce = true
		o.baseVersion = v
	}
}
