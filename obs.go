package msync

import (
	"io"

	"msync/internal/obs"
)

// Tracer receives span-like trace events as synchronization sessions run:
// one event per protocol phase (handshake, each map-construction round,
// group verification, delta transfer, full transfers) plus a session
// summary. Tracing is purely observational — it never changes the bytes on
// the wire — and the summed frame bytes of a session's spans equal its
// Costs wire totals exactly. Implementations must be safe for concurrent
// use; attach one with WithTracer.
type Tracer = obs.Tracer

// TraceEvent is one span emitted to a Tracer.
type TraceEvent = obs.Event

// RingTracer is a fixed-capacity in-memory Tracer that keeps the most
// recent events; the zero-allocation choice for tests and for sampling a
// live process.
type RingTracer = obs.Ring

// JSONLTracer appends events as JSON Lines to a writer or file.
type JSONLTracer = obs.JSONL

// NewRingTracer returns a Tracer retaining the last capacity events.
func NewRingTracer(capacity int) *RingTracer { return obs.NewRing(capacity) }

// NewJSONLTracer returns a Tracer writing one JSON object per event to w.
// Write errors are sticky and reported by Err, never by panicking mid-sync.
func NewJSONLTracer(w io.Writer) *JSONLTracer { return obs.NewJSONL(w) }

// OpenJSONLTracer creates (truncating) path and returns a JSONLTracer that
// owns the file; Close flushes and closes it.
func OpenJSONLTracer(path string) (*JSONLTracer, error) { return obs.OpenJSONL(path) }

// MetricsRegistry is a concurrency-safe registry of named counters, gauges
// and histograms. Share one registry across clients and servers with
// WithMetrics to aggregate their session and cost counters; expose it over
// HTTP with its Handler method or inspect it with Snapshot. A nil registry
// is valid everywhere and records nothing.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }
