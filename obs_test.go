package msync_test

// Integration tests for the observability layer: span/cost agreement, the
// "tracing never changes the wire" invariant, and metrics aggregation under
// concurrency (run with -race).

import (
	"bytes"
	"io"
	"reflect"
	"sync"
	"testing"

	"msync"
	"msync/internal/obs"
	"msync/internal/stats"
)

// obsCorpus builds a two-file collection pair with one edited file (big
// enough to need map rounds and a delta) and one unchanged file.
func obsCorpus() (oldFiles, newFiles map[string][]byte) {
	edited := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog; "), 400)
	old := append([]byte(nil), edited...)
	cur := append([]byte(nil), edited...)
	copy(cur[5000:], []byte("EDITED REGION HERE"))
	oldFiles = map[string][]byte{"changed.txt": old, "same.txt": []byte("stable content")}
	newFiles = map[string][]byte{"changed.txt": cur, "same.txt": []byte("stable content")}
	return oldFiles, newFiles
}

// runTracedSync synchronizes the obsCorpus pair over an in-process pipe with
// the given options attached to both endpoints.
func runTracedSync(t *testing.T, srvOpts, cliOpts []msync.Option) (*msync.Result, *msync.Costs) {
	t.Helper()
	oldFiles, newFiles := obsCorpus()
	srv, err := msync.NewServer(newFiles, msync.DefaultConfig(), srvOpts...)
	if err != nil {
		t.Fatal(err)
	}
	cl := msync.NewClient(oldFiles, cliOpts...)

	sEnd, cEnd := msync.Pipe()
	type serveDone struct {
		costs *msync.Costs
		err   error
	}
	done := make(chan serveDone, 1)
	go func() {
		defer sEnd.Close()
		costs, err := srv.Serve(sEnd)
		done <- serveDone{costs, err}
	}()
	res, err := cl.Sync(cEnd)
	cEnd.Close()
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	sd := <-done
	if sd.err != nil {
		t.Fatalf("server: %v", sd.err)
	}
	return res, sd.costs
}

// sideSums adds up the span bytes of one side's phase events, checking along
// the way that the closing session event repeats the same totals.
func sideSums(t *testing.T, events []msync.TraceEvent, side string) (up, down int64, phases map[string]int) {
	t.Helper()
	phases = map[string]int{}
	var sessUp, sessDown int64
	for _, e := range events {
		if e.Side != side {
			continue
		}
		phases[e.Phase]++
		if e.Phase == obs.PhaseSession {
			sessUp, sessDown = e.BytesUp, e.BytesDown
			continue
		}
		up += e.BytesUp
		down += e.BytesDown
	}
	if phases[obs.PhaseSession] != 1 {
		t.Fatalf("%s emitted %d session summaries, want 1 (%v)", side, phases[obs.PhaseSession], phases)
	}
	if sessUp != up || sessDown != down {
		t.Fatalf("%s session summary (%d up, %d down) disagrees with its spans (%d up, %d down)",
			side, sessUp, sessDown, up, down)
	}
	return up, down, phases
}

// TestTracedSyncSpansMatchCosts pins the core tracing guarantee: with a ring
// tracer attached to both sides of a two-file sync, each side's summed span
// bytes reproduce its stats.Costs wire totals exactly.
func TestTracedSyncSpansMatchCosts(t *testing.T) {
	ring := msync.NewRingTracer(128)
	res, srvCosts := runTracedSync(t,
		[]msync.Option{msync.WithTracer(ring)},
		[]msync.Option{msync.WithTracer(ring)})

	events := ring.Events()
	for side, costs := range map[string]*msync.Costs{"client": res.Costs, "server": srvCosts} {
		up, down, phases := sideSums(t, events, side)
		if want := costs.DirTotal(stats.C2S); up != want {
			t.Errorf("%s spans sum to %d bytes up, costs say %d", side, up, want)
		}
		if want := costs.DirTotal(stats.S2C); down != want {
			t.Errorf("%s spans sum to %d bytes down, costs say %d", side, down, want)
		}
		for _, phase := range []string{obs.PhaseHandshake, obs.PhaseRound, obs.PhaseDelta} {
			if phases[phase] == 0 {
				t.Errorf("%s emitted no %s span: %v", side, phase, phases)
			}
		}
	}
	if string(res.Files["changed.txt"]) == "" || !bytes.Equal(res.Files["same.txt"], []byte("stable content")) {
		t.Fatal("traced sync produced a wrong result")
	}
}

// recordRW copies everything written through one pipe end so two runs can be
// compared byte for byte.
type recordRW struct {
	io.ReadWriteCloser
	mu  sync.Mutex
	buf bytes.Buffer
}

func (r *recordRW) Write(p []byte) (int, error) {
	r.mu.Lock()
	r.buf.Write(p)
	r.mu.Unlock()
	return r.ReadWriteCloser.Write(p)
}

// TestTracingDoesNotChangeWireBytes runs the same sync untraced and fully
// instrumented (tracer + logger + metrics) and requires both directions'
// byte streams to match exactly.
func TestTracingDoesNotChangeWireBytes(t *testing.T) {
	record := func(opts []msync.Option) (c2s, s2c []byte) {
		t.Helper()
		oldFiles, newFiles := obsCorpus()
		srv, err := msync.NewServer(newFiles, msync.DefaultConfig(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		cl := msync.NewClient(oldFiles, opts...)
		sEnd, cEnd := msync.Pipe()
		sRec := &recordRW{ReadWriteCloser: sEnd.(io.ReadWriteCloser)}
		cRec := &recordRW{ReadWriteCloser: cEnd.(io.ReadWriteCloser)}
		errc := make(chan error, 1)
		go func() {
			defer sEnd.Close()
			_, err := srv.Serve(sRec)
			errc <- err
		}()
		if _, err := cl.Sync(cRec); err != nil {
			t.Fatalf("client: %v", err)
		}
		cEnd.Close()
		if err := <-errc; err != nil {
			t.Fatalf("server: %v", err)
		}
		return cRec.buf.Bytes(), sRec.buf.Bytes()
	}

	plainC2S, plainS2C := record(nil)
	tracedC2S, tracedS2C := record([]msync.Option{
		msync.WithTracer(msync.NewRingTracer(128)),
		msync.WithLogger(obs.NopLogger()),
		msync.WithMetrics(msync.NewMetricsRegistry()),
	})
	if !bytes.Equal(plainC2S, tracedC2S) {
		t.Errorf("client->server stream changed under tracing: %d vs %d bytes", len(plainC2S), len(tracedC2S))
	}
	if !bytes.Equal(plainS2C, tracedS2C) {
		t.Errorf("server->client stream changed under tracing: %d vs %d bytes", len(plainS2C), len(tracedS2C))
	}
}

// TestConcurrentSyncMetricsMatchSerial stresses the registry and ring tracer
// under -race: n identical collection syncs run serially and then in
// parallel, and every deterministic counter must come out the same.
func TestConcurrentSyncMetricsMatchSerial(t *testing.T) {
	const n = 8
	run := func(parallel bool) (*msync.MetricsRegistry, *msync.RingTracer) {
		t.Helper()
		reg := msync.NewMetricsRegistry()
		ring := msync.NewRingTracer(64 * n)
		opts := []msync.Option{msync.WithMetrics(reg), msync.WithTracer(ring)}
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			do := func() {
				defer wg.Done()
				runTracedSync(t, opts, opts)
			}
			wg.Add(1)
			if parallel {
				go do()
			} else {
				do()
			}
		}
		wg.Wait()
		return reg, ring
	}

	serialReg, serialRing := run(false)
	parReg, parRing := run(true)

	serial, par := serialReg.Snapshot(), parReg.Snapshot()
	if !reflect.DeepEqual(serial.Counters, par.Counters) {
		t.Errorf("counters diverge:\nserial: %v\nparallel: %v", serial.Counters, par.Counters)
	}
	if got := par.Counters[obs.MetricSessions]; got != 2*n {
		t.Errorf("%s = %d, want %d (client and server sessions)", obs.MetricSessions, got, 2*n)
	}
	if got := par.Gauges[obs.MetricSessionsActive]; got != 0 {
		t.Errorf("%s = %d after all sessions ended, want 0", obs.MetricSessionsActive, got)
	}
	if s, p := serialRing.Total(), parRing.Total(); s != p {
		t.Errorf("event counts diverge: serial %d, parallel %d", s, p)
	}
}
