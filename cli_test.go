package msync_test

// End-to-end test of the msync CLI: builds the binary, serves a directory
// over loopback TCP, and synchronizes an outdated replica directory.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"msync/internal/corpus"
	"msync/internal/dirio"
)

func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "msync-bin")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/msync")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Skipf("cannot build CLI (no toolchain?): %v\n%s", err, out)
	}
	return bin
}

func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func TestCLISyncDirectories(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the CLI")
	}
	bin := buildCLI(t)

	v1, v2 := corpus.GCCProfile(0.04).Generate(5)
	serverDir, clientDir := t.TempDir(), t.TempDir()
	if err := dirio.Apply(serverDir, nil, v2.Map()); err != nil {
		t.Fatal(err)
	}
	if err := dirio.Apply(clientDir, nil, v1.Map()); err != nil {
		t.Fatal(err)
	}

	addr := freePort(t)
	server := exec.Command(bin, "-serve", addr, "-dir", serverDir)
	var serverOut bytes.Buffer
	server.Stdout, server.Stderr = &serverOut, &serverOut
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		server.Process.Kill()
		server.Wait()
	}()

	// Wait for the listener.
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never listened: %s", serverOut.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	client := exec.Command(bin, "-connect", addr, "-dir", clientDir)
	out, err := client.CombinedOutput()
	if err != nil {
		t.Fatalf("client failed: %v\n%s", err, out)
	}

	got, err := dirio.Load(clientDir)
	if err != nil {
		t.Fatal(err)
	}
	want := v2.Map()
	if len(got) != len(want) {
		t.Fatalf("client has %d files, want %d\noutput:\n%s", len(got), len(want), out)
	}
	for path, data := range want {
		if !bytes.Equal(got[path], data) {
			t.Fatalf("content mismatch for %s", path)
		}
	}
	t.Logf("CLI sync output:\n%s", out)
}

func TestCLIDryRunLeavesDirUntouched(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the CLI")
	}
	bin := buildCLI(t)
	serverDir, clientDir := t.TempDir(), t.TempDir()
	if err := dirio.Apply(serverDir, nil, map[string][]byte{"f.txt": []byte("new version")}); err != nil {
		t.Fatal(err)
	}
	orig := map[string][]byte{"f.txt": []byte("old version"), "stale.txt": []byte("x")}
	if err := dirio.Apply(clientDir, nil, orig); err != nil {
		t.Fatal(err)
	}

	addr := freePort(t)
	server := exec.Command(bin, "-serve", addr, "-dir", serverDir)
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		server.Process.Kill()
		server.Wait()
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never listened")
		}
		time.Sleep(50 * time.Millisecond)
	}

	out, err := exec.Command(bin, "-connect", addr, "-dir", clientDir, "-dry").CombinedOutput()
	if err != nil {
		t.Fatalf("dry run failed: %v\n%s", err, out)
	}
	got, _ := dirio.Load(clientDir)
	if len(got) != 2 || string(got["f.txt"]) != "old version" {
		t.Fatalf("dry run modified the directory: %v", got)
	}
	if !bytes.Contains(out, []byte("total")) {
		t.Fatalf("dry run did not report costs:\n%s", out)
	}
}

// TestCLIFlagValidation pins the CLI's argument validation: bogus values
// must produce a one-line error and a non-zero exit before any network or
// disk work starts, never a hang or a silent reinterpretation.
func TestCLIFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the CLI")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	cases := []struct {
		name string
		args []string
		want string // substring the error line must contain
	}{
		{"negative workers", []string{"-workers", "-1"}, "-workers"},
		{"negative retry", []string{"-retry", "-2"}, "-retry"},
		{"negative cache-mem", []string{"-cache-mem", "-5"}, "-cache-mem"},
		{"malformed debug-addr", []string{"-debug-addr", "not an address"}, "-debug-addr"},
		{"unknown log-level", []string{"-log-level", "loud"}, "-log-level"},
		{"serve and connect", []string{"-serve", ":0", "-connect", "x:1"}, "mutually exclusive"},
		{"snapshot without store-dir", []string{"-snapshot"}, "-store-dir"},
		{"negative store-budget", []string{"-store-budget", "-3"}, "-store-budget"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			// -connect points nowhere; validation must reject the flags
			// before any dial is attempted.
			args := append([]string{"-connect", "127.0.0.1:1", "-dir", dir}, c.args...)
			if c.name == "serve and connect" {
				args = c.args
			}
			out, err := exec.Command(bin, args...).CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("err = %v, want non-zero exit\noutput: %s", err, out)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Fatalf("exit code = %d, want 2\noutput: %s", code, out)
			}
			msg := strings.TrimRight(string(out), "\n")
			if strings.Contains(msg, "\n") {
				t.Fatalf("error not a single line:\n%s", out)
			}
			if !strings.Contains(msg, c.want) {
				t.Fatalf("error %q does not mention %q", msg, c.want)
			}
		})
	}
}

// TestCLIObservability exercises the opt-in observability surface end to
// end: the server exposes /metrics and /debug/pprof via -debug-addr, and the
// client writes per-phase JSONL spans via -trace-out while logging through
// -log-level.
func TestCLIObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the CLI")
	}
	bin := buildCLI(t)
	serverDir, clientDir := t.TempDir(), t.TempDir()
	if err := dirio.Apply(serverDir, nil, map[string][]byte{"a.txt": bytes.Repeat([]byte("server data "), 400)}); err != nil {
		t.Fatal(err)
	}
	if err := dirio.Apply(clientDir, nil, map[string][]byte{"a.txt": bytes.Repeat([]byte("client data "), 390)}); err != nil {
		t.Fatal(err)
	}

	addr, dbgAddr := freePort(t), freePort(t)
	server := exec.Command(bin, "-serve", addr, "-dir", serverDir, "-debug-addr", dbgAddr, "-log-level", "debug")
	var serverOut bytes.Buffer
	server.Stdout, server.Stderr = &serverOut, &serverOut
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		server.Process.Kill()
		server.Wait()
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never listened: %s", serverOut.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	out, err := exec.Command(bin, "-connect", addr, "-dir", clientDir,
		"-trace-out", tracePath, "-log-level", "info").CombinedOutput()
	if err != nil {
		t.Fatalf("client failed: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("session done")) {
		t.Fatalf("client log missing session summary:\n%s", out)
	}

	// The trace file holds per-phase spans ending in a session summary.
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	phases := map[string]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev struct {
			Phase string `json:"phase"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("trace line not JSON: %v\n%s", err, sc.Text())
		}
		phases[ev.Phase]++
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	for _, want := range []string{"handshake", "session"} {
		if phases[want] == 0 {
			t.Fatalf("trace missing %q span: %v", want, phases)
		}
	}

	// The debug endpoint reports the completed session.
	resp, err := http.Get("http://" + dbgAddr + "/metrics")
	if err != nil {
		t.Fatalf("metrics endpoint: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var metrics map[string]any
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	if n, _ := metrics["msync_sessions_total"].(float64); n < 1 {
		t.Fatalf("msync_sessions_total = %v, want >= 1\n%s", metrics["msync_sessions_total"], body)
	}
	if resp, err := http.Get("http://" + dbgAddr + "/debug/pprof/cmdline"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof endpoint: %v (resp %v)", err, resp)
	} else {
		resp.Body.Close()
	}
}

func TestCLIPush(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the CLI")
	}
	bin := buildCLI(t)
	replicaDir, sourceDir := t.TempDir(), t.TempDir()
	if err := dirio.Apply(replicaDir, nil, map[string][]byte{"doc.txt": []byte(fmt.Sprint("v1 ", bytes.Repeat([]byte("x"), 2000)))}); err != nil {
		t.Fatal(err)
	}
	newContent := map[string][]byte{
		"doc.txt": append([]byte("v2 "), bytes.Repeat([]byte("x"), 2000)...),
		"new.txt": []byte("added"),
	}
	if err := dirio.Apply(sourceDir, nil, newContent); err != nil {
		t.Fatal(err)
	}

	addr := freePort(t)
	server := exec.Command(bin, "-serve", addr, "-dir", replicaDir, "-allow-push")
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		server.Process.Kill()
		server.Wait()
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never listened")
		}
		time.Sleep(50 * time.Millisecond)
	}

	out, err := exec.Command(bin, "-connect", addr, "-dir", sourceDir, "-push").CombinedOutput()
	if err != nil {
		t.Fatalf("push failed: %v\n%s", err, out)
	}
	// The server persists asynchronously after the session; poll briefly.
	deadline = time.Now().Add(5 * time.Second)
	for {
		got, _ := dirio.Load(replicaDir)
		if len(got) == 2 && bytes.Equal(got["doc.txt"], newContent["doc.txt"]) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica not updated: %v", got)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestCLIVersionedStore drives the -store-dir / -snapshot / -base-version
// flags end to end: an offline snapshot cuts v1, a serving process over an
// updated tree cuts v2 at startup, and an announcing client converges and is
// told the version to announce next time.
func TestCLIVersionedStore(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the CLI")
	}
	bin := buildCLI(t)
	serverDir, clientDir, storeDir := t.TempDir(), t.TempDir(), t.TempDir()
	oldTree := map[string][]byte{
		"keep.txt": bytes.Repeat([]byte("stable content "), 200),
		"mod.txt":  bytes.Repeat([]byte("version one body "), 150),
	}
	if err := dirio.Apply(serverDir, nil, oldTree); err != nil {
		t.Fatal(err)
	}
	if err := dirio.Apply(clientDir, nil, oldTree); err != nil {
		t.Fatal(err)
	}

	// Offline snapshot of the current tree: v1.
	out, err := exec.Command(bin, "-snapshot", "-dir", serverDir, "-store-dir", storeDir).CombinedOutput()
	if err != nil {
		t.Fatalf("-snapshot failed: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("v1")) {
		t.Fatalf("-snapshot did not report v1:\n%s", out)
	}

	// The tree moves on; a serving process cuts v2 at startup.
	newTree := map[string][]byte{
		"keep.txt": oldTree["keep.txt"],
		"mod.txt":  append(append([]byte{}, oldTree["mod.txt"]...), []byte("edited tail\n")...),
		"new.txt":  []byte("a brand new file\n"),
	}
	if err := dirio.Apply(serverDir, oldTree, newTree); err != nil {
		t.Fatal(err)
	}
	addr := freePort(t)
	server := exec.Command(bin, "-serve", addr, "-dir", serverDir, "-store-dir", storeDir)
	var serverOut bytes.Buffer
	server.Stdout, server.Stderr = &serverOut, &serverOut
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		server.Process.Kill()
		server.Wait()
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never listened: %s", serverOut.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The client holds v1 and announces it: the journal answers, the client
	// converges, and the report names v2 for next time.
	out, err = exec.Command(bin, "-connect", addr, "-dir", clientDir, "-base-version", "1").CombinedOutput()
	if err != nil {
		t.Fatalf("client failed: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("-base-version 2")) {
		t.Fatalf("client report missing the next base version:\n%s", out)
	}
	got, err := dirio.Load(clientDir)
	if err != nil {
		t.Fatal(err)
	}
	for path, want := range newTree {
		if !bytes.Equal(got[path], want) {
			t.Fatalf("content mismatch for %s after journal sync", path)
		}
	}
	if len(got) != len(newTree) {
		t.Fatalf("client has %d files, want %d", len(got), len(newTree))
	}

	// Announcing the now-current version again is a no-op sync.
	out, err = exec.Command(bin, "-connect", addr, "-dir", clientDir, "-base-version", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("repeat client failed: %v\n%s", err, out)
	}
}

func TestCLIPublishMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the CLI")
	}
	bin := buildCLI(t)
	serverDir, readerDir, artifactDir := t.TempDir(), t.TempDir(), t.TempDir()
	v1 := map[string][]byte{
		"keep.txt":    bytes.Repeat([]byte("stable content "), 200),
		"mod.txt":     bytes.Repeat([]byte("version one body "), 150),
		"sub/old.txt": []byte("will be deleted\n"),
	}
	if err := dirio.Apply(serverDir, nil, v1); err != nil {
		t.Fatal(err)
	}
	if err := dirio.Apply(readerDir, nil, v1); err != nil {
		t.Fatal(err)
	}

	// Publish v1 offline.
	out, err := exec.Command(bin, "-dir", serverDir, "-publish-dir", artifactDir).CombinedOutput()
	if err != nil {
		t.Fatalf("-publish-dir failed: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("v1")) {
		t.Fatalf("publish did not report v1:\n%s", out)
	}
	// Re-publishing the unchanged tree stays at v1.
	out, err = exec.Command(bin, "-dir", serverDir, "-publish-dir", artifactDir).CombinedOutput()
	if err != nil || !bytes.Contains(out, []byte("v1")) {
		t.Fatalf("idempotent re-publish: %v\n%s", err, out)
	}

	// The tree moves on; a publish-serve process cuts v2, then serves HTTP.
	v2 := map[string][]byte{
		"keep.txt": v1["keep.txt"],
		"mod.txt":  append(append([]byte{}, v1["mod.txt"]...), []byte("edited tail\n")...),
		"new.txt":  []byte("a brand new file\n"),
	}
	if err := dirio.Apply(serverDir, v1, v2); err != nil {
		t.Fatal(err)
	}
	addr := freePort(t)
	server := exec.Command(bin, "-serve", addr, "-dir", serverDir, "-publish-dir", artifactDir)
	var serverOut bytes.Buffer
	server.Stdout, server.Stderr = &serverOut, &serverOut
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		server.Process.Kill()
		server.Wait()
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/health")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("publish server never listened: %s", serverOut.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Reader at v1 announces its base and rides the delta path.
	out, err = exec.Command(bin, "-dir", readerDir, "-from-url", "http://"+addr, "-base-version", "1", "-json").CombinedOutput()
	if err != nil {
		t.Fatalf("-from-url failed: %v\n%s", err, out)
	}
	var res struct {
		Version   uint64 `json:"version"`
		DeltaPath bool   `json:"delta_path"`
	}
	line := out[:bytes.IndexByte(out, '\n')]
	if err := json.Unmarshal(line, &res); err != nil {
		t.Fatalf("bad -json output %q: %v", line, err)
	}
	if res.Version != 2 || !res.DeltaPath {
		t.Fatalf("reader result: %+v\n%s", res, out)
	}
	got, err := dirio.Load(readerDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(v2) {
		t.Fatalf("reader has %d files, want %d", len(got), len(v2))
	}
	for path, want := range v2 {
		if !bytes.Equal(got[path], want) {
			t.Fatalf("content mismatch for %s after publish sync", path)
		}
	}
}
