package msync_test

// End-to-end test of the msync CLI: builds the binary, serves a directory
// over loopback TCP, and synchronizes an outdated replica directory.

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"msync/internal/corpus"
	"msync/internal/dirio"
)

func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "msync-bin")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/msync")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Skipf("cannot build CLI (no toolchain?): %v\n%s", err, out)
	}
	return bin
}

func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func TestCLISyncDirectories(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the CLI")
	}
	bin := buildCLI(t)

	v1, v2 := corpus.GCCProfile(0.04).Generate(5)
	serverDir, clientDir := t.TempDir(), t.TempDir()
	if err := dirio.Apply(serverDir, nil, v2.Map()); err != nil {
		t.Fatal(err)
	}
	if err := dirio.Apply(clientDir, nil, v1.Map()); err != nil {
		t.Fatal(err)
	}

	addr := freePort(t)
	server := exec.Command(bin, "-serve", addr, "-dir", serverDir)
	var serverOut bytes.Buffer
	server.Stdout, server.Stderr = &serverOut, &serverOut
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		server.Process.Kill()
		server.Wait()
	}()

	// Wait for the listener.
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never listened: %s", serverOut.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	client := exec.Command(bin, "-connect", addr, "-dir", clientDir)
	out, err := client.CombinedOutput()
	if err != nil {
		t.Fatalf("client failed: %v\n%s", err, out)
	}

	got, err := dirio.Load(clientDir)
	if err != nil {
		t.Fatal(err)
	}
	want := v2.Map()
	if len(got) != len(want) {
		t.Fatalf("client has %d files, want %d\noutput:\n%s", len(got), len(want), out)
	}
	for path, data := range want {
		if !bytes.Equal(got[path], data) {
			t.Fatalf("content mismatch for %s", path)
		}
	}
	t.Logf("CLI sync output:\n%s", out)
}

func TestCLIDryRunLeavesDirUntouched(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the CLI")
	}
	bin := buildCLI(t)
	serverDir, clientDir := t.TempDir(), t.TempDir()
	if err := dirio.Apply(serverDir, nil, map[string][]byte{"f.txt": []byte("new version")}); err != nil {
		t.Fatal(err)
	}
	orig := map[string][]byte{"f.txt": []byte("old version"), "stale.txt": []byte("x")}
	if err := dirio.Apply(clientDir, nil, orig); err != nil {
		t.Fatal(err)
	}

	addr := freePort(t)
	server := exec.Command(bin, "-serve", addr, "-dir", serverDir)
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		server.Process.Kill()
		server.Wait()
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never listened")
		}
		time.Sleep(50 * time.Millisecond)
	}

	out, err := exec.Command(bin, "-connect", addr, "-dir", clientDir, "-dry").CombinedOutput()
	if err != nil {
		t.Fatalf("dry run failed: %v\n%s", err, out)
	}
	got, _ := dirio.Load(clientDir)
	if len(got) != 2 || string(got["f.txt"]) != "old version" {
		t.Fatalf("dry run modified the directory: %v", got)
	}
	if !bytes.Contains(out, []byte("total")) {
		t.Fatalf("dry run did not report costs:\n%s", out)
	}
}

func TestCLIPush(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the CLI")
	}
	bin := buildCLI(t)
	replicaDir, sourceDir := t.TempDir(), t.TempDir()
	if err := dirio.Apply(replicaDir, nil, map[string][]byte{"doc.txt": []byte(fmt.Sprint("v1 ", bytes.Repeat([]byte("x"), 2000)))}); err != nil {
		t.Fatal(err)
	}
	newContent := map[string][]byte{
		"doc.txt": append([]byte("v2 "), bytes.Repeat([]byte("x"), 2000)...),
		"new.txt": []byte("added"),
	}
	if err := dirio.Apply(sourceDir, nil, newContent); err != nil {
		t.Fatal(err)
	}

	addr := freePort(t)
	server := exec.Command(bin, "-serve", addr, "-dir", replicaDir, "-allow-push")
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		server.Process.Kill()
		server.Wait()
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never listened")
		}
		time.Sleep(50 * time.Millisecond)
	}

	out, err := exec.Command(bin, "-connect", addr, "-dir", sourceDir, "-push").CombinedOutput()
	if err != nil {
		t.Fatalf("push failed: %v\n%s", err, out)
	}
	// The server persists asynchronously after the session; poll briefly.
	deadline = time.Now().Add(5 * time.Second)
	for {
		got, _ := dirio.Load(replicaDir)
		if len(got) == 2 && bytes.Equal(got["doc.txt"], newContent["doc.txt"]) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica not updated: %v", got)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
