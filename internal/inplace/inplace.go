// Package inplace implements in-place file reconstruction in the style of
// Rasch and Burns, "In-Place Rsync: File Synchronization for Mobile and
// Wireless Devices" (USENIX ATC 2003), which the paper cites as the
// contemporaneous space-optimization of rsync-style patching.
//
// A patch is a set of operations writing disjoint ranges of the new file:
// copies (whose source is a range of the OLD file, which occupies the same
// buffer) and literals. Executing copies naively can destroy sources that
// later copies still need. This package orders the copies topologically on
// the "Y's write clobbers X's source" relation and, when cycles make a safe
// order impossible, buffers the cheapest remaining op's source bytes up
// front — the algorithm's only extra space.
package inplace

import (
	"errors"
	"fmt"
	"sort"
)

// Op is one patch operation. Exactly one of (Data) / (ReadOff, Len) is
// meaningful: a literal carries Data; a copy reads Len bytes at ReadOff of
// the old file.
type Op struct {
	WriteOff int
	// Copy fields.
	ReadOff int
	Len     int
	// Literal data (nil for copies).
	Data []byte
}

// IsCopy reports whether the op is a copy.
func (o *Op) IsCopy() bool { return o.Data == nil }

func (o *Op) writeLen() int {
	if o.IsCopy() {
		return o.Len
	}
	return len(o.Data)
}

// Stats reports what the planner had to do.
type Stats struct {
	// Copies and Literals count the input ops.
	Copies, Literals int
	// Buffered is the number of copies converted to buffered reads to break
	// dependency cycles; ExtraBytes is the temporary space they cost.
	Buffered   int
	ExtraBytes int
}

// ErrBadPatch reports overlapping writes or out-of-range operations.
var ErrBadPatch = errors.New("inplace: invalid patch")

// Apply reconstructs the new file in the old file's buffer, returning the
// (possibly re-sliced or grown) result. The ops' write ranges must tile
// exactly [0, newLen) without overlap.
func Apply(old []byte, ops []Op, newLen int) ([]byte, Stats, error) {
	var st Stats
	oldLen := len(old)

	// Validate: writes tile [0, newLen); copies read within the old file.
	sorted := make([]*Op, len(ops))
	for i := range ops {
		sorted[i] = &ops[i]
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].WriteOff < sorted[j].WriteOff })
	pos := 0
	for _, o := range sorted {
		if o.WriteOff != pos {
			return nil, st, fmt.Errorf("%w: write gap/overlap at %d (expected %d)", ErrBadPatch, o.WriteOff, pos)
		}
		pos += o.writeLen()
		if o.IsCopy() {
			st.Copies++
			if o.ReadOff < 0 || o.Len < 0 || o.ReadOff+o.Len > oldLen {
				return nil, st, fmt.Errorf("%w: copy source [%d,%d) outside old file", ErrBadPatch, o.ReadOff, o.ReadOff+o.Len)
			}
		} else {
			st.Literals++
		}
	}
	if pos != newLen {
		return nil, st, fmt.Errorf("%w: writes cover %d bytes, want %d", ErrBadPatch, pos, newLen)
	}

	// Collect copies and order them.
	var copies []*Op
	for _, o := range sorted {
		if o.IsCopy() && o.Len > 0 {
			copies = append(copies, o)
		}
	}
	order, buffered := planCopies(copies)

	// Grow the buffer to max(oldLen, newLen).
	buf := old
	if newLen > len(buf) {
		buf = append(buf, make([]byte, newLen-len(buf))...)
	}

	// Snapshot the sources of cycle-breaking ops before anything writes.
	bufferedData := make(map[*Op][]byte, len(buffered))
	for _, o := range buffered {
		bufferedData[o] = append([]byte(nil), buf[o.ReadOff:o.ReadOff+o.Len]...)
		st.Buffered++
		st.ExtraBytes += o.Len
	}

	// Execute copies in dependency order (copy() is memmove-safe for the
	// self-overlap case).
	for _, o := range order {
		if data, ok := bufferedData[o]; ok {
			copy(buf[o.WriteOff:], data)
			continue
		}
		copy(buf[o.WriteOff:o.WriteOff+o.Len], buf[o.ReadOff:o.ReadOff+o.Len])
	}
	// Literals last: their write ranges are disjoint from every copy's
	// write range, and copies no longer read.
	for _, o := range sorted {
		if !o.IsCopy() {
			copy(buf[o.WriteOff:], o.Data)
		}
	}
	return buf[:newLen], st, nil
}

// planCopies orders copies so that no op's source is clobbered before it
// runs, converting ops to buffered reads when cycles force it. Returns the
// execution order and the set of buffered ops.
func planCopies(copies []*Op) (order, buffered []*Op) {
	n := len(copies)
	if n == 0 {
		return nil, nil
	}
	// Sort an index of write intervals for overlap queries.
	byWrite := make([]int, n)
	for i := range byWrite {
		byWrite[i] = i
	}
	sort.Slice(byWrite, func(a, b int) bool {
		return copies[byWrite[a]].WriteOff < copies[byWrite[b]].WriteOff
	})
	writeStarts := make([]int, n)
	for i, idx := range byWrite {
		writeStarts[i] = copies[idx].WriteOff
	}

	// succ[x] lists ops whose writes overlap x's read: x must precede them.
	// indegree[y] counts ops that must precede y.
	succ := make([][]int32, n)
	indegree := make([]int, n)
	for x := 0; x < n; x++ {
		rs, re := copies[x].ReadOff, copies[x].ReadOff+copies[x].Len
		// Find write intervals intersecting [rs, re).
		i := sort.SearchInts(writeStarts, rs+1) - 1
		if i < 0 {
			i = 0
		}
		for ; i < n && writeStarts[i] < re; i++ {
			y := byWrite[i]
			o := copies[y]
			if o.WriteOff+o.Len <= rs || y == x {
				continue
			}
			succ[x] = append(succ[x], int32(y))
			indegree[y]++
		}
	}

	done := make([]bool, n)
	isBuffered := make([]bool, n)
	var queue []int
	for y, d := range indegree {
		if d == 0 {
			queue = append(queue, y)
		}
	}
	remaining := n
	for remaining > 0 {
		if len(queue) == 0 {
			// Deadlock: every remaining op waits on another. Buffer the
			// cheapest op that actually sits on a dependency cycle (found
			// via SCC) — buffering nodes merely *behind* a cycle would waste
			// space without unblocking anything.
			best := cheapestOnCycle(copies, succ, done, isBuffered)
			if best < 0 {
				// No detectable cycle among unbuffered nodes (all remaining
				// cycles pass through already-buffered ops whose indegree
				// has not drained yet): fall back to the cheapest remaining.
				for x := 0; x < n; x++ {
					if !done[x] && !isBuffered[x] && (best < 0 || copies[x].Len < copies[best].Len) {
						best = x
					}
				}
			}
			if best < 0 {
				panic("inplace: planner stuck with no candidates")
			}
			isBuffered[best] = true
			buffered = append(buffered, copies[best])
			for _, y := range succ[best] {
				indegree[y]--
				if indegree[y] == 0 && !done[y] {
					queue = append(queue, int(y))
				}
			}
			succ[best] = nil
			// A buffered op has no remaining read constraints of its own,
			// but others may still need to precede it (they read what it
			// writes), so it stays in the graph until its indegree drains.
			if indegree[best] == 0 {
				queue = append(queue, best)
			}
			continue
		}
		x := queue[0]
		queue = queue[1:]
		if done[x] {
			continue
		}
		done[x] = true
		remaining--
		order = append(order, copies[x])
		for _, y := range succ[x] {
			indegree[y]--
			if indegree[y] == 0 && !done[y] {
				queue = append(queue, int(y))
			}
		}
	}
	return order, buffered
}

// cheapestOnCycle returns the index of the cheapest not-done, not-buffered
// copy that lies on a dependency cycle, or -1. Cycles are the non-trivial
// strongly connected components of the remaining constraint graph
// (Tarjan's algorithm, iterative).
func cheapestOnCycle(copies []*Op, succ [][]int32, done, isBuffered []bool) int {
	n := len(copies)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var stack []int
	next := 0
	nComp := 0
	compSize := make(map[int]int)

	type frame struct {
		v  int
		ei int // next successor index to examine
	}
	skip := func(v int) bool { return done[v] }

	for start := 0; start < n; start++ {
		if skip(start) || index[start] != unvisited {
			continue
		}
		callStack := []frame{{start, 0}}
		index[start], low[start] = next, next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			if f.ei < len(succ[f.v]) {
				w := int(succ[f.v][f.ei])
				f.ei++
				if skip(w) {
					continue
				}
				if index[w] == unvisited {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Post-order: pop v.
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := &callStack[len(callStack)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					compSize[nComp]++
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}

	best := -1
	for x := 0; x < n; x++ {
		if done[x] || isBuffered[x] || comp[x] < 0 || compSize[comp[x]] < 2 {
			continue
		}
		if best < 0 || copies[x].Len < copies[best].Len {
			best = x
		}
	}
	return best
}
