package inplace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// applyReference executes a patch the easy way, into a fresh buffer.
func applyReference(old []byte, ops []Op, newLen int) []byte {
	out := make([]byte, newLen)
	for _, o := range ops {
		if o.IsCopy() {
			copy(out[o.WriteOff:], old[o.ReadOff:o.ReadOff+o.Len])
		} else {
			copy(out[o.WriteOff:], o.Data)
		}
	}
	return out
}

func TestApplySimple(t *testing.T) {
	old := []byte("AAAABBBBCCCC")
	// New file: CCCC + literal "xy" + AAAA.
	ops := []Op{
		{WriteOff: 0, ReadOff: 8, Len: 4},
		{WriteOff: 4, Data: []byte("xy")},
		{WriteOff: 6, ReadOff: 0, Len: 4},
	}
	want := applyReference(old, ops, 10)
	got, st, err := Apply(append([]byte(nil), old...), ops, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q want %q", got, want)
	}
	if st.Copies != 2 || st.Literals != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestSwapCycle: two copies exchanging places form a 2-cycle; exactly one
// must be buffered.
func TestSwapCycle(t *testing.T) {
	old := []byte("AAAABBBB")
	ops := []Op{
		{WriteOff: 0, ReadOff: 4, Len: 4}, // BBBB first
		{WriteOff: 4, ReadOff: 0, Len: 4}, // AAAA second
	}
	got, st, err := Apply(append([]byte(nil), old...), ops, 8)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "BBBBAAAA" {
		t.Fatalf("got %q", got)
	}
	if st.Buffered != 1 || st.ExtraBytes != 4 {
		t.Fatalf("stats %+v", st)
	}
}

// TestShiftChainNoBuffer: a left shift (everyone reads ahead of their
// write) needs no buffering at all when executed in the right order.
func TestShiftChainNoBuffer(t *testing.T) {
	old := []byte("0123456789")
	// new = old[2:] + "XY": one big overlapping copy plus a literal.
	ops := []Op{
		{WriteOff: 0, ReadOff: 2, Len: 8},
		{WriteOff: 8, Data: []byte("XY")},
	}
	got, st, err := Apply(append([]byte(nil), old...), ops, 10)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "23456789XY" {
		t.Fatalf("got %q", got)
	}
	if st.Buffered != 0 {
		t.Fatalf("unnecessary buffering: %+v", st)
	}
}

// TestRotation: a 3-cycle of block moves.
func TestRotation(t *testing.T) {
	old := []byte("AAAABBBBCCCC")
	ops := []Op{
		{WriteOff: 0, ReadOff: 4, Len: 4}, // B -> slot 0
		{WriteOff: 4, ReadOff: 8, Len: 4}, // C -> slot 1
		{WriteOff: 8, ReadOff: 0, Len: 4}, // A -> slot 2
	}
	got, st, err := Apply(append([]byte(nil), old...), ops, 12)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "BBBBCCCCAAAA" {
		t.Fatalf("got %q", got)
	}
	if st.Buffered != 1 {
		t.Fatalf("a 3-rotation needs exactly one buffer, got %+v", st)
	}
}

func TestGrowAndShrink(t *testing.T) {
	old := []byte("ABCD")
	// Grow: duplicate the content three times.
	ops := []Op{
		{WriteOff: 0, ReadOff: 0, Len: 4},
		{WriteOff: 4, ReadOff: 0, Len: 4},
		{WriteOff: 8, ReadOff: 0, Len: 4},
	}
	got, _, err := Apply(append([]byte(nil), old...), ops, 12)
	if err != nil || string(got) != "ABCDABCDABCD" {
		t.Fatalf("grow: %q err=%v", got, err)
	}
	// Shrink: keep the tail only.
	got, _, err = Apply([]byte("ABCDEFGH"), []Op{{WriteOff: 0, ReadOff: 6, Len: 2}}, 2)
	if err != nil || string(got) != "GH" {
		t.Fatalf("shrink: %q err=%v", got, err)
	}
}

func TestValidation(t *testing.T) {
	old := []byte("ABCDEFGH")
	cases := []struct {
		ops    []Op
		newLen int
	}{
		{[]Op{{WriteOff: 1, ReadOff: 0, Len: 4}}, 5},                                   // gap at 0
		{[]Op{{WriteOff: 0, ReadOff: 0, Len: 4}, {WriteOff: 2, Data: []byte("x")}}, 5}, // overlap
		{[]Op{{WriteOff: 0, ReadOff: 6, Len: 4}}, 4},                                   // read past end
		{[]Op{{WriteOff: 0, ReadOff: 0, Len: 4}}, 7},                                   // short cover
	}
	for i, c := range cases {
		if _, _, err := Apply(append([]byte(nil), old...), c.ops, c.newLen); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestQuickRandomPermutations: random block permutations with random
// literals sprinkled in must always reconstruct exactly, whatever the cycle
// structure.
func TestQuickRandomPermutations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		blockLen := 1 + rng.Intn(16)
		nBlocks := 1 + rng.Intn(20)
		old := make([]byte, blockLen*nBlocks+rng.Intn(8))
		rng.Read(old)

		perm := rng.Perm(nBlocks)
		var ops []Op
		pos := 0
		for _, b := range perm {
			if rng.Intn(4) == 0 {
				lit := make([]byte, rng.Intn(6))
				rng.Read(lit)
				ops = append(ops, Op{WriteOff: pos, Data: lit})
				pos += len(lit)
			}
			ops = append(ops, Op{WriteOff: pos, ReadOff: b * blockLen, Len: blockLen})
			pos += blockLen
		}
		want := applyReference(old, ops, pos)
		got, _, err := Apply(append([]byte(nil), old...), ops, pos)
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOverlappingReads: reads may overlap each other arbitrarily (many
// ops copying from the same source region).
func TestQuickOverlappingReads(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		old := make([]byte, 64+rng.Intn(200))
		rng.Read(old)
		var ops []Op
		pos := 0
		for i := 0; i < 1+rng.Intn(30); i++ {
			l := 1 + rng.Intn(20)
			off := rng.Intn(len(old) - l + 1)
			ops = append(ops, Op{WriteOff: pos, ReadOff: off, Len: l})
			pos += l
		}
		want := applyReference(old, ops, pos)
		got, _, err := Apply(append([]byte(nil), old...), ops, pos)
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyPatch(t *testing.T) {
	got, st, err := Apply([]byte("anything"), nil, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %q err=%v", got, err)
	}
	if st.Copies != 0 || st.Buffered != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCycleTargetedBuffering: a node that merely depends on a cycle (but is
// not on it) must never be the one buffered — the SCC-based selection should
// break the 2-cycle itself, even when a bystander op is cheaper.
func TestCycleTargetedBuffering(t *testing.T) {
	// Old layout: [A:8][B:8][cc:2][pppppp:6]. A and B swap (a 2-cycle); a
	// tiny 2-byte op reads from inside B's old range, so it must run before
	// the cycle's write into [8,16) — it depends on the cycle without being
	// on it, and is cheaper than either cycle member.
	old := []byte("AAAAAAAABBBBBBBBccpppppp")
	ops := []Op{
		{WriteOff: 0, ReadOff: 8, Len: 8},  // B -> slot 0 (reads B's old range)
		{WriteOff: 8, ReadOff: 0, Len: 8},  // A -> slot 1 (reads A's): 2-cycle
		{WriteOff: 16, ReadOff: 9, Len: 2}, // bystander: reads inside old B
		{WriteOff: 18, Data: []byte("zzzzzz")},
	}
	want := applyReference(old, ops, 24)
	got, st, err := Apply(append([]byte(nil), old...), ops, 24)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q want %q", got, want)
	}
	// Exactly one buffer, and it must be one of the two 8-byte cycle
	// members — not the cheap 2-byte bystander.
	if st.Buffered != 1 || st.ExtraBytes != 8 {
		t.Fatalf("expected one 8-byte buffer on the cycle, got %+v", st)
	}
}

// TestLongCycleChain: an N-rotation plus many bystanders still needs only
// one buffered op.
func TestLongCycleChain(t *testing.T) {
	const blocks = 12
	old := make([]byte, blocks*16)
	for i := range old {
		old[i] = byte('A' + i/16)
	}
	var ops []Op
	// Rotate all blocks by one position: a single big cycle.
	for i := 0; i < blocks; i++ {
		ops = append(ops, Op{WriteOff: i * 16, ReadOff: ((i + 1) % blocks) * 16, Len: 16})
	}
	want := applyReference(old, ops, len(old))
	got, st, err := Apply(append([]byte(nil), old...), ops, len(old))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("mismatch")
	}
	if st.Buffered != 1 {
		t.Fatalf("a single rotation cycle needs one buffer, got %d", st.Buffered)
	}
}
