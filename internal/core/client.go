package core

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"msync/internal/bitio"
	"msync/internal/cdc"
	"msync/internal/delta"
	"msync/internal/gtest"
	"msync/internal/md4"
	"msync/internal/pool"
	"msync/internal/rolling"
)

// ErrVerifyFailed is returned by ApplyDelta when the reconstructed file does
// not match the whole-file strong hash (a verification hash collision
// slipped a false match through). The caller should fall back to a full
// transfer.
var ErrVerifyFailed = errors.New("core: reconstructed file failed whole-file check")

// ClientFile is the per-file engine on the side holding the outdated version.
type ClientFile struct {
	state
	fOld []byte
	fam  rolling.Family

	// candOff and candAlts track, for each candidate (index into
	// candEntries), the currently chosen source offset in fOld and the
	// remaining alternatives.
	candOff  []int
	candAlts [][]int32
	altNext  []int

	awaitConfirm bool

	// CDCChunks counts content-defined chunks hashed in MapCDC rounds.
	CDCChunks int64

	// Round-scratch buffers reused across AbsorbHashes calls. candArena
	// backs every per-entry candidate slice (fixed stride, so concurrent
	// shard merges and later appends never reallocate); setPool recycles
	// the per-window-size search sets. All are dead between rounds — the
	// previous round's views of them are released in finalizeRound before
	// the next AbsorbHashes re-carves them.
	scratchVals  []uint64
	scratchCands [][]int32
	candArena    []int32
	setPool      []*searchSet
}

// searchSet is a small open-addressed set of the hash values received in
// one round, mapping each value to the plan entries that sent it. The
// client scans its old file once per window size, probing this
// cache-resident set at every position — far cheaper than indexing every
// position of the old file (which dominated CPU).
type searchSet struct {
	keys []uint64
	val  []int32
	mask uint64
	over map[uint64][]int32 // additional entries sharing a key (rare)
}

// emptySlot never collides with a real key: keys are truncated hashes of at
// most MaxHashBits (≤56) bits.
const emptySlot = ^uint64(0)

func newSearchSet(n int) *searchSet {
	ss := &searchSet{}
	ss.reset(n)
	return ss
}

// reset re-initializes the set for n expected keys, reusing the backing
// arrays when they are already large enough.
func (ss *searchSet) reset(n int) {
	size := 16
	for size < n*4 {
		size *= 2
	}
	if size < len(ss.keys) {
		size = len(ss.keys) // keep the larger table; clearing it is cheap
	}
	if size > len(ss.keys) {
		ss.keys = make([]uint64, size)
		ss.val = make([]int32, size)
	}
	ss.mask = uint64(size - 1)
	ss.over = nil
	for i := range ss.keys {
		ss.keys[i] = emptySlot
	}
}

// borrowSet takes a recycled search set sized for n keys (allocating on a
// cold pool); releaseSet returns it for the next round.
func (c *ClientFile) borrowSet(n int) *searchSet {
	if k := len(c.setPool); k > 0 {
		ss := c.setPool[k-1]
		c.setPool = c.setPool[:k-1]
		ss.reset(n)
		return ss
	}
	return newSearchSet(n)
}

func (c *ClientFile) releaseSet(ss *searchSet) { c.setPool = append(c.setPool, ss) }

func (ss *searchSet) slot(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> 1 & ss.mask
}

// add associates a plan entry index with a hash value.
func (ss *searchSet) add(key uint64, entry int32) {
	s := ss.slot(key)
	for {
		switch ss.keys[s] {
		case emptySlot:
			ss.keys[s] = key
			ss.val[s] = entry
			return
		case key:
			if ss.over == nil {
				ss.over = make(map[uint64][]int32)
			}
			ss.over[key] = append(ss.over[key], entry)
			return
		}
		s = (s + 1) & ss.mask
	}
}

// lookup returns the first entry for key (ok=false if absent); extras holds
// any further entries sharing the key.
func (ss *searchSet) lookup(key uint64) (first int32, extras []int32, ok bool) {
	s := ss.slot(key)
	for {
		switch ss.keys[s] {
		case emptySlot:
			return 0, nil, false
		case key:
			return ss.val[s], ss.over[key], true
		}
		s = (s + 1) & ss.mask
	}
}

// NewClientFile starts the client engine for one file. newLen is the length
// of the server's current version (learned from the collection manifest).
func NewClientFile(fOld []byte, newLen int, cfg *Config) (*ClientFile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &ClientFile{fOld: fOld, fam: cfg.hashFamily()}
	c.initState(cfg, newLen)
	return c, nil
}

// Active reports whether this file still participates in map rounds.
func (c *ClientFile) Active() bool { return !c.done }

// finalizePending absorbs the final confirm bits of the previous round from
// r and advances shared state. Called at the head of a new round's hash
// message and of the delta message.
func (c *ClientFile) finalizePending(r *bitio.Reader) error {
	if !c.awaitConfirm {
		return nil
	}
	groups := c.vplan.Groups()
	results := make([]bool, len(groups))
	for i := range results {
		bit, err := r.ReadBit()
		if err != nil {
			return fmt.Errorf("core: final confirm bits: %w", err)
		}
		results[i] = bit
	}
	c.noteBatch(len(groups))
	if c.vplan.Absorb(results) {
		return fmt.Errorf("%w: final confirm expected no further batches", ErrProtocol)
	}
	c.finalizeRound()
	c.awaitConfirm = false
	return nil
}

// finalizeRound applies the completed verification plan. The candidate
// views are truncated, not nil'd, so their backing arrays (and the arena
// slices candAlts points into) are recycled by the next round.
func (c *ClientFile) finalizeRound() {
	confirmed := c.vplan.Confirmed()
	offs := make([]int, len(confirmed))
	copy(offs, c.candOff)
	c.finishRound(confirmed, offs)
	c.candOff = c.candOff[:0]
	c.candAlts = c.candAlts[:0]
	c.altNext = c.altNext[:0]
}

// AbsorbHashes processes a round's hash section: it finalizes the previous
// round from the piggybacked confirm bits, derives the same plan as the
// server, reads the hashes, and searches fOld for candidates.
func (c *ClientFile) AbsorbHashes(payload []byte) error {
	if c.cfg.MapMode == MapCDC {
		return c.absorbHashesCDC(payload)
	}
	r := bitio.NewReader(payload)
	if err := c.finalizePending(r); err != nil {
		return err
	}
	if c.done {
		return fmt.Errorf("%w: hashes for a finished file", ErrProtocol)
	}
	c.plan = c.buildPlan()
	hb := c.cfg.hashBits(c.n, c.b)

	// Per-entry scratch: hash values, candidate-slice headers, and the
	// arena the candidate slices are carved from. The fixed per-entry
	// stride caps every slice's capacity, so appends (including the
	// sharded scan's merge) stay in place and rounds reuse one block.
	ne := len(c.plan.entries)
	maxAlt := c.cfg.MaxAlternates
	if maxAlt < 1 {
		maxAlt = 1
	}
	stride := maxAlt
	if stride < 2 {
		stride = 2 // continuation probes may record two predicted positions
	}
	if cap(c.scratchVals) < ne {
		c.scratchVals = make([]uint64, ne)
	}
	if cap(c.scratchCands) < ne {
		c.scratchCands = make([][]int32, ne)
	}
	if cap(c.candArena) < ne*stride {
		c.candArena = make([]int32, ne*stride)
	}
	vals := c.scratchVals[:ne]
	cands := c.scratchCands[:ne]
	arena := c.candArena[:ne*stride]
	candAt := func(i int) []int32 { return arena[i*stride : i*stride : i*stride+stride] }
	for i := range cands {
		cands[i] = nil
	}

	sizeCount := map[int]int{}
	for i := range c.plan.entries {
		e := &c.plan.entries[i]
		raw, err := r.ReadBits(uint(e.bits))
		if err != nil {
			return fmt.Errorf("core: round hashes: %w", err)
		}
		var full uint64
		var totalBits uint
		switch e.kind {
		case kTopUp:
			bl := &c.blocks[e.blockIdx]
			eff := uint(hb) - uint(e.bits)
			leftVal := vals[e.siblingIdx]
			low := c.fam.DeriveRight(bl.parentVal, eff, leftVal, e.size)
			full = raw<<eff | low
			totalBits = uint(hb)
		default:
			full = raw
			totalBits = uint(e.bits)
		}
		vals[i] = full
		if e.kind != kProbe {
			bl := &c.blocks[e.blockIdx]
			bl.hashBits = uint8(totalBits)
			bl.hashVal = full
		}
		switch e.kind {
		case kProbe:
			cands[i] = c.probeCandidates(e, full, candAt(i))
		case kLocal:
			cands[i] = c.localCandidates(e, full, candAt(i))
		default:
			if e.size > 0 && e.size <= len(c.fOld) {
				sizeCount[e.size]++
			}
		}
	}

	// Global/top-up entries: one old-file scan per window size against a
	// small set of this round's hash values.
	if len(sizeCount) > 0 {
		sets := make(map[int]*searchSet, len(sizeCount))
		for size, n := range sizeCount {
			sets[size] = c.borrowSet(n)
		}
		for i := range c.plan.entries {
			e := &c.plan.entries[i]
			if e.kind == kProbe || e.kind == kLocal || e.size <= 0 || e.size > len(c.fOld) {
				continue
			}
			sets[e.size].add(rolling.Truncate(vals[i], uint(hb)), int32(i))
			cands[i] = candAt(i)
		}
		for size, set := range sets {
			c.scanOld(size, uint(hb), set, cands, maxAlt)
		}
		for _, set := range sets {
			c.releaseSet(set)
		}
	}

	c.candEntries = c.candEntries[:0]
	c.candOff = c.candOff[:0]
	c.candAlts = c.candAlts[:0]
	for i := range c.plan.entries {
		if len(cands[i]) > 0 {
			c.candEntries = append(c.candEntries, i)
			c.candOff = append(c.candOff, int(cands[i][0]))
			c.candAlts = append(c.candAlts, cands[i])
		}
	}
	c.altNext = c.altNext[:0]
	for range c.candEntries {
		c.altNext = append(c.altNext, 0)
	}
	return nil
}

// absorbHashesCDC processes a CDC round's hash section (see emitHashesCDC
// for the layout): it derives the same probe plan and chunk regions from
// shared state, rebuilds the server's chunk entries from the transmitted
// lengths — validating that they tile each region exactly — then chunks its
// own old file at the same parameters and matches the received truncated
// hashes by exact (length, hash) lookup. Candidate offsets come out in
// ascending old-file order, so the reply is deterministic and the
// retry-alternate machinery works unchanged.
func (c *ClientFile) absorbHashesCDC(payload []byte) error {
	r := bitio.NewReader(payload)
	if err := c.finalizePending(r); err != nil {
		return err
	}
	if c.done {
		return fmt.Errorf("%w: hashes for a finished file", ErrProtocol)
	}
	p, regions := c.cdcPlanBase()
	nProbes := len(p.entries)
	params := c.cfg.cdcParams(c.b)
	lenBits := uint(bits.Len(uint(params.Max - params.Min)))
	hb := c.cfg.cdcHashBits(c.n, c.b)
	var mapBits int64
	for _, g := range regions {
		count := 1
		if cb := cdcCountBits(g.end-g.start, params.Min); cb > 0 {
			v, err := r.ReadBits(cb)
			if err != nil {
				return fmt.Errorf("core: cdc chunk count: %w", err)
			}
			count = int(v) + 1
			mapBits += int64(cb)
		}
		start := g.start
		for i := 0; i < count; i++ {
			l := g.end - start // a region's last chunk runs to its end
			if i < count-1 {
				v, err := r.ReadBits(lenBits)
				if err != nil {
					return fmt.Errorf("core: cdc chunk lengths: %w", err)
				}
				l = int(v) + params.Min
				mapBits += int64(lenBits)
			}
			if l <= 0 || l > params.Max || start+l > g.end {
				return fmt.Errorf("%w: cdc chunk length %d does not tile region [%d,%d)", ErrProtocol, l, g.start, g.end)
			}
			p.entries = append(p.entries, entry{
				kind: kGlobal, bits: uint8(hb),
				blockIdx: -1, off: start, size: l,
				matchIdx: -1, matchIdx2: -1,
			})
			start += l
		}
	}
	c.plan = p
	c.roundBits += mapBits + int64(len(p.entries)-nProbes)*int64(hb)

	// A region's first and last chunks start/end at confirmed cover edges —
	// positions the old-file chunking almost never cuts at — so exact chunk
	// lookup cannot find them. But the match adjacent to the enclosing gap
	// predicts where such an edge chunk continues in fOld, exactly like a
	// continuation probe. Candidate discovery is client-local (the server
	// only ever sees the bitmap), so this extra check costs no wire bytes
	// and keeps the plans identical on both sides.
	type edgePred struct{ mi1, mi2 int }
	preds := make(map[int]edgePred)
	{
		gs := c.gaps()
		gi := 0
		ei := nProbes
		for _, reg := range regions {
			for gi < len(gs) && gs[gi].end < reg.end {
				gi++
			}
			first, last := -1, -1
			for ; ei < len(p.entries) && p.entries[ei].off < reg.end; ei++ {
				if first < 0 {
					first = ei
				}
				last = ei
			}
			if first < 0 || gi >= len(gs) {
				continue
			}
			if mi := c.matchEndingAt(gs[gi].start); mi >= 0 {
				ep := preds[first]
				ep.mi1 = mi + 1 // store 1-based; zero value means "none"
				preds[first] = ep
			}
			if mi := c.matchStartingAt(gs[gi].end); mi >= 0 {
				ep := preds[last]
				ep.mi2 = mi + 1
				preds[last] = ep
			}
		}
	}

	// Index the old file's chunks at the same parameters by (length,
	// truncated hash). Offsets are appended in file order, so candidate
	// alternates are ascending — the same tie-break the halving scan uses.
	type ckey struct {
		size int
		hash uint64
	}
	var index map[ckey][]int32
	var cuts []int
	if len(c.fOld) > 0 && len(p.entries) > nProbes {
		var err error
		cuts, err = cdc.CutsE(c.fOld, params)
		if err != nil {
			panic("core: validated config yielded bad cdc params: " + err.Error())
		}
		index = make(map[ckey][]int32, len(cuts))
		start := 0
		for _, cut := range cuts {
			h := rolling.Truncate(c.fam.Hash(c.fOld[start:cut]), hb)
			index[ckey{cut - start, h}] = append(index[ckey{cut - start, h}], int32(start))
			start = cut
		}
		c.CDCChunks += int64(len(cuts))
	}

	// Candidate scratch, carved exactly like the halving path so rounds
	// reuse one arena block.
	ne := len(p.entries)
	maxAlt := c.cfg.MaxAlternates
	if maxAlt < 1 {
		maxAlt = 1
	}
	stride := maxAlt
	if stride < 2 {
		stride = 2 // continuation probes may record two predicted positions
	}
	if cap(c.scratchCands) < ne {
		c.scratchCands = make([][]int32, ne)
	}
	if cap(c.candArena) < ne*stride {
		c.candArena = make([]int32, ne*stride)
	}
	cands := c.scratchCands[:ne]
	arena := c.candArena[:ne*stride]
	for i := range cands {
		cands[i] = nil
	}
	for i := range p.entries {
		e := &p.entries[i]
		raw, err := r.ReadBits(uint(e.bits))
		if err != nil {
			return fmt.Errorf("core: cdc round hashes: %w", err)
		}
		dst := arena[i*stride : i*stride : i*stride+stride]
		if e.kind == kProbe {
			cands[i] = c.probeCandidates(e, raw, dst)
			continue
		}
		if ep, ok := preds[i]; ok {
			// Edge chunk: try the collinear continuation position(s) first —
			// they are the most likely source, so they get the first verify.
			// If an edit inside the adjacent probe range shifted the
			// continuation, the chunk still starts/ends at a content cut in
			// fOld, so also try cut-anchored positions near the prediction
			// (the CDC analog of local hashes).
			pe := *e
			pe.matchIdx, pe.matchIdx2 = ep.mi1-1, ep.mi2-1
			dst = c.probeCandidates(&pe, raw, dst)
			dst = c.cutAnchoredCandidates(&pe, raw, cuts, dst)
		}
		for _, a := range index[ckey{e.size, raw}] {
			if len(dst) >= maxAlt {
				break
			}
			dup := false
			for _, d := range dst {
				if d == a {
					dup = true
					break
				}
			}
			if !dup {
				dst = append(dst, a)
			}
		}
		if len(dst) > 0 {
			cands[i] = dst
		}
	}

	c.candEntries = c.candEntries[:0]
	c.candOff = c.candOff[:0]
	c.candAlts = c.candAlts[:0]
	for i := range p.entries {
		if len(cands[i]) > 0 {
			c.candEntries = append(c.candEntries, i)
			c.candOff = append(c.candOff, int(cands[i][0]))
			c.candAlts = append(c.candAlts, cands[i])
		}
	}
	c.altNext = c.altNext[:0]
	for range c.candEntries {
		c.altNext = append(c.altNext, 0)
	}
	return nil
}

// cutAnchoredCandidates tries cut-anchored source positions for a CDC
// region-edge chunk whose collinear prediction may be off by a small shift:
// a first chunk (matchIdx) ends at a content cut, so old-file cuts near the
// predicted end are tried as chunk ends; a last chunk (matchIdx2) starts at
// one, so cuts near the predicted start are tried as chunk starts. The
// neighborhood is LocalRadius, mirroring local hashes. Appends into the
// caller's arena-backed dst (bounded by its capacity), deduplicating.
func (c *ClientFile) cutAnchoredCandidates(e *entry, val uint64, cuts []int, dst []int32) []int32 {
	if len(cuts) == 0 {
		return dst
	}
	radius := c.cfg.LocalRadius
	if radius <= 0 {
		radius = 256
	}
	try := func(start int) {
		if start < 0 || start+e.size > len(c.fOld) || len(dst) == cap(dst) {
			return
		}
		for _, p := range dst {
			if int(p) == start {
				return
			}
		}
		if rolling.Truncate(c.fam.Hash(c.fOld[start:start+e.size]), uint(e.bits)) == val {
			dst = append(dst, int32(start))
		}
	}
	forCutsNear := func(target int, f func(cut int)) {
		lo := sort.SearchInts(cuts, target-radius)
		for j := lo; j < len(cuts) && cuts[j] <= target+radius; j++ {
			f(cuts[j])
		}
	}
	if mi := e.matchIdx; mi >= 0 {
		m := c.matches[mi]
		end := m.clientOff + (e.off - m.serverOff) + e.size
		forCutsNear(end, func(cut int) { try(cut - e.size) })
	}
	if mi := e.matchIdx2; mi >= 0 {
		m := c.matches[mi]
		start := m.clientOff + (e.off - m.serverOff)
		// Cut offsets are chunk ends, which are exactly the later chunks'
		// starts; offset 0 is a start too.
		if start-radius <= 0 && 0 <= start+radius {
			try(0)
		}
		forCutsNear(start, func(cut int) { try(cut) })
	}
	return dst
}

// scanMinShard is the floor on window positions per scan shard; below two
// shards' worth a scan stays serial. The effective minimum is size-adaptive
// (see scanShardMin): re-seeding a shard's rolling window via InitAt hashes
// `size` overlap bytes, so shards must grow with the window for that setup
// cost to stay amortized.
const scanMinShard = 1 << 15

// scanReseedFactor bounds the InitAt re-seed overhead: every shard rolls at
// least this many positions per window byte re-hashed at its start, keeping
// the per-shard setup under ~1/scanReseedFactor of the shard's rolling work.
const scanReseedFactor = 64

// scanShardMin returns the minimum shard width for a scan with the given
// window size: the static floor or the re-seed-amortizing width, whichever
// is larger.
func scanShardMin(size int) int {
	if m := size * scanReseedFactor; m > scanMinShard {
		return m
	}
	return scanMinShard
}

// scanOld slides a window of the given size across the old file, probing
// the round's hash set at every alignment and recording candidate source
// positions (at most maxAlt per entry). Large scans are sharded across the
// configured worker pool; the result is bit-identical to the serial scan.
func (c *ClientFile) scanOld(size int, bits uint, set *searchSet, cands [][]int32, maxAlt int) {
	positions := len(c.fOld) - size + 1
	if shards := pool.Shards(c.cfg.Workers, positions, scanShardMin(size)); shards > 1 {
		c.scanOldSharded(size, bits, set, cands, maxAlt, positions, shards)
		return
	}
	roller := c.fam.Roller(size)
	roller.Init(c.fOld)
	for pos := 0; ; pos++ {
		key := rolling.Truncate(roller.Sum(), bits)
		if first, extras, ok := set.lookup(key); ok {
			if len(cands[first]) < maxAlt {
				cands[first] = append(cands[first], int32(pos))
			}
			for _, ei := range extras {
				if len(cands[ei]) < maxAlt {
					cands[ei] = append(cands[ei], int32(pos))
				}
			}
		}
		if pos+size >= len(c.fOld) {
			break
		}
		roller.Roll(c.fOld[pos], c.fOld[pos+size])
	}
}

// scanHit is one (entry, position) match found by a scan shard.
type scanHit struct{ entry, pos int32 }

// scanOldSharded splits the alignment range into contiguous shards, one
// rolling window each (re-seeded at the shard start via InitAt, reading the
// size-1 overlap bytes from the previous shard's territory), and merges the
// per-shard hit lists by position.
//
// Determinism invariants (the wire stays bit-identical to Workers=1):
//   - shards partition the positions contiguously and in order;
//   - each shard records hits in scan order — position ascending, and at
//     one position the set's first entry before its extras, exactly like
//     the serial loop;
//   - each shard keeps at most maxAlt hits per entry (more can never
//     survive the merge), and the merge walks shards in shard order
//     re-applying the cap, so every entry ends with exactly the serial
//     scan's first maxAlt positions.
func (c *ClientFile) scanOldSharded(size int, bits uint, set *searchSet, cands [][]int32, maxAlt, positions, shards int) {
	hits := make([][]scanHit, shards)
	_ = pool.Do(c.cfg.Workers, shards, func(s int) error {
		lo := pool.Bound(positions, shards, s)
		hi := pool.Bound(positions, shards, s+1)
		var out []scanHit
		var seen map[int32]int // lazily built: hits are rare
		take := func(ei, pos int32) {
			if seen == nil {
				seen = make(map[int32]int, 8)
			}
			if seen[ei] < maxAlt {
				seen[ei]++
				out = append(out, scanHit{ei, pos})
			}
		}
		roller := c.fam.Roller(size)
		roller.InitAt(c.fOld, lo)
		for pos := lo; pos < hi; pos++ {
			key := rolling.Truncate(roller.Sum(), bits)
			if first, extras, ok := set.lookup(key); ok {
				take(first, int32(pos))
				for _, ei := range extras {
					take(ei, int32(pos))
				}
			}
			if pos+1 < hi {
				roller.Roll(c.fOld[pos], c.fOld[pos+size])
			}
		}
		hits[s] = out
		return nil
	})
	for _, hs := range hits {
		for _, h := range hs {
			if len(cands[h.entry]) < maxAlt {
				cands[h.entry] = append(cands[h.entry], h.pos)
			}
		}
	}
}

// probeCandidates checks the (at most two) predicted positions for a
// continuation probe, appending into the caller's (arena-backed) dst.
func (c *ClientFile) probeCandidates(e *entry, val uint64, dst []int32) []int32 {
	out := dst
	check := func(mi int) {
		if mi < 0 {
			return
		}
		m := c.matches[mi]
		pred := m.clientOff + (e.off - m.serverOff)
		if pred < 0 || pred+e.size > len(c.fOld) {
			return
		}
		h := rolling.Truncate(c.fam.Hash(c.fOld[pred:pred+e.size]), uint(e.bits))
		if h == val {
			for _, p := range out {
				if int(p) == pred {
					return
				}
			}
			out = append(out, int32(pred))
		}
	}
	check(e.matchIdx)
	check(e.matchIdx2)
	return out
}

// localCandidates scans a neighborhood of the predicted position, appending
// into the caller's (arena-backed) dst.
func (c *ClientFile) localCandidates(e *entry, val uint64, dst []int32) []int32 {
	m := c.matches[e.matchIdx]
	pred := m.clientOff + (e.off - m.serverOff)
	lo := pred - c.cfg.LocalRadius
	hi := pred + c.cfg.LocalRadius
	if lo < 0 {
		lo = 0
	}
	if hi > len(c.fOld)-e.size {
		hi = len(c.fOld) - e.size
	}
	if hi < lo || e.size == 0 || e.size > len(c.fOld) {
		return nil
	}
	maxAlt := c.cfg.MaxAlternates
	if maxAlt < 1 {
		maxAlt = 1
	}
	out := dst
	roller := c.fam.Roller(e.size)
	roller.Init(c.fOld[lo:])
	for pos := lo; ; pos++ {
		if rolling.Truncate(roller.Sum(), uint(e.bits)) == val {
			out = append(out, int32(pos))
			if len(out) >= maxAlt {
				break
			}
		}
		if pos >= hi || pos+e.size >= len(c.fOld) {
			break
		}
		roller.Roll(c.fOld[pos], c.fOld[pos+e.size])
	}
	return out
}

// EmitReply writes the candidate bitmap and the first verification batch.
func (c *ClientFile) EmitReply() []byte {
	w := bitio.NewWriter(64)
	ci := 0
	for i := range c.plan.entries {
		isCand := ci < len(c.candEntries) && c.candEntries[ci] == i
		w.WriteBit(isCand)
		if isCand {
			ci++
		}
	}
	c.noteReplyBitmap()
	c.vplan = gtest.NewPlan(c.candidateClasses(), c.cfg.Verify)
	c.emitBatchHashes(w)
	return w.Bytes()
}

// emitBatchHashes writes the current batch's test hashes. The strong-hash
// work fans out across the worker pool for large batches; the write order
// (and therefore the wire) is unchanged.
func (c *ClientFile) emitBatchHashes(w *bitio.Writer) {
	groups := c.vplan.Groups()
	sums := verifyGroupSums(c.cfg.Workers, c.cfg.VerifyBits, groups, func(cand int) []byte {
		e := &c.plan.entries[c.candEntries[cand]]
		off := c.candOff[cand]
		return c.fOld[off : off+e.size]
	})
	for _, s := range sums {
		w.WriteBits(s, c.cfg.VerifyBits)
	}
	if len(groups) == 0 {
		// Zero-candidate round: the verification plan is already complete.
		if c.vplan.Absorb(nil) {
			panic("core: empty verification plan demanded another batch")
		}
		c.finalizeRound()
		return
	}
	c.awaitConfirm = true
}

// AbsorbConfirm processes an intermediate confirm bitmap; the round is NOT
// final (the server will keep the final bitmap for piggybacking). It
// prepares retry candidates and returns true when the client must emit
// another batch.
func (c *ClientFile) AbsorbConfirm(payload []byte) (bool, error) {
	if !c.awaitConfirm {
		return false, fmt.Errorf("%w: unexpected confirm bitmap", ErrProtocol)
	}
	r := bitio.NewReader(payload)
	groups := c.vplan.Groups()
	results := make([]bool, len(groups))
	for i := range results {
		bit, err := r.ReadBit()
		if err != nil {
			return false, fmt.Errorf("core: confirm bitmap: %w", err)
		}
		results[i] = bit
	}
	c.noteBatch(len(groups))
	more := c.vplan.Absorb(results)
	if !more {
		// Shouldn't happen: intermediate confirms imply more batches.
		c.finalizeRound()
		c.awaitConfirm = false
		return false, nil
	}
	// Switch retry candidates to their next alternative source offset.
	for _, g := range c.vplan.Groups() {
		if !g.Retry {
			continue
		}
		cand := g.Members[0]
		alts := c.candAlts[cand]
		c.altNext[cand]++
		if c.altNext[cand] < len(alts) {
			c.candOff[cand] = int(alts[c.altNext[cand]])
		}
	}
	return true, nil
}

// EmitBatch writes the next verification batch.
func (c *ClientFile) EmitBatch() []byte {
	w := bitio.NewWriter(16)
	c.emitBatchHashes(w)
	return w.Bytes()
}

// ApplyDelta consumes the final delta section and reconstructs the current
// file. On ErrVerifyFailed the caller should arrange a full transfer.
func (c *ClientFile) ApplyDelta(payload []byte) ([]byte, error) {
	r := bitio.NewReader(payload)
	if err := c.finalizePending(r); err != nil {
		return nil, err
	}
	r.Align()
	wantSum, err := r.ReadBytes(md4.Size)
	if err != nil {
		return nil, fmt.Errorf("core: delta header: %w", err)
	}
	enc, err := r.ReadBytes(r.BitsRemaining() / 8)
	if err != nil {
		return nil, fmt.Errorf("core: delta payload: %w", err)
	}

	out := make([]byte, c.n)
	// Materialize known regions from the old file.
	for _, m := range c.matches {
		copy(out[m.serverOff:m.serverOff+m.length], c.fOld[m.clientOff:m.clientOff+m.length])
	}
	var ref []byte
	for _, iv := range c.coverIntervals() {
		ref = append(ref, out[iv.start:iv.end]...)
	}
	target, err := delta.Decode(ref, enc)
	if err != nil {
		return nil, fmt.Errorf("core: delta decode: %w", err)
	}
	pos := 0
	for _, g := range c.gaps() {
		gl := g.end - g.start
		if pos+gl > len(target) {
			return nil, fmt.Errorf("core: delta target too short")
		}
		copy(out[g.start:g.end], target[pos:pos+gl])
		pos += gl
	}
	if pos != len(target) {
		return nil, fmt.Errorf("core: delta target length mismatch")
	}
	got := md4.Sum(out)
	if string(got[:]) != string(wantSum) {
		return nil, ErrVerifyFailed
	}
	return out, nil
}
