package core

import (
	"errors"
	"fmt"

	"msync/internal/bitio"
	"msync/internal/delta"
	"msync/internal/gtest"
	"msync/internal/md4"
	"msync/internal/rolling"
)

// ErrVerifyFailed is returned by ApplyDelta when the reconstructed file does
// not match the whole-file strong hash (a verification hash collision
// slipped a false match through). The caller should fall back to a full
// transfer.
var ErrVerifyFailed = errors.New("core: reconstructed file failed whole-file check")

// ClientFile is the per-file engine on the side holding the outdated version.
type ClientFile struct {
	state
	fOld []byte
	fam  rolling.Family

	// candOff and candAlts track, for each candidate (index into
	// candEntries), the currently chosen source offset in fOld and the
	// remaining alternatives.
	candOff  []int
	candAlts [][]int32
	altNext  []int

	awaitConfirm bool
}

// searchSet is a small open-addressed set of the hash values received in
// one round, mapping each value to the plan entries that sent it. The
// client scans its old file once per window size, probing this
// cache-resident set at every position — far cheaper than indexing every
// position of the old file (which dominated CPU).
type searchSet struct {
	keys []uint64
	val  []int32
	mask uint64
	over map[uint64][]int32 // additional entries sharing a key (rare)
}

// emptySlot never collides with a real key: keys are truncated hashes of at
// most MaxHashBits (≤56) bits.
const emptySlot = ^uint64(0)

func newSearchSet(n int) *searchSet {
	size := 16
	for size < n*4 {
		size *= 2
	}
	ss := &searchSet{
		keys: make([]uint64, size),
		val:  make([]int32, size),
		mask: uint64(size - 1),
	}
	for i := range ss.keys {
		ss.keys[i] = emptySlot
	}
	return ss
}

func (ss *searchSet) slot(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> 1 & ss.mask
}

// add associates a plan entry index with a hash value.
func (ss *searchSet) add(key uint64, entry int32) {
	s := ss.slot(key)
	for {
		switch ss.keys[s] {
		case emptySlot:
			ss.keys[s] = key
			ss.val[s] = entry
			return
		case key:
			if ss.over == nil {
				ss.over = make(map[uint64][]int32)
			}
			ss.over[key] = append(ss.over[key], entry)
			return
		}
		s = (s + 1) & ss.mask
	}
}

// lookup returns the first entry for key (ok=false if absent); extras holds
// any further entries sharing the key.
func (ss *searchSet) lookup(key uint64) (first int32, extras []int32, ok bool) {
	s := ss.slot(key)
	for {
		switch ss.keys[s] {
		case emptySlot:
			return 0, nil, false
		case key:
			return ss.val[s], ss.over[key], true
		}
		s = (s + 1) & ss.mask
	}
}

// NewClientFile starts the client engine for one file. newLen is the length
// of the server's current version (learned from the collection manifest).
func NewClientFile(fOld []byte, newLen int, cfg *Config) (*ClientFile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &ClientFile{fOld: fOld, fam: cfg.hashFamily()}
	c.initState(cfg, newLen)
	return c, nil
}

// Active reports whether this file still participates in map rounds.
func (c *ClientFile) Active() bool { return !c.done }

// finalizePending absorbs the final confirm bits of the previous round from
// r and advances shared state. Called at the head of a new round's hash
// message and of the delta message.
func (c *ClientFile) finalizePending(r *bitio.Reader) error {
	if !c.awaitConfirm {
		return nil
	}
	groups := c.vplan.Groups()
	results := make([]bool, len(groups))
	for i := range results {
		bit, err := r.ReadBit()
		if err != nil {
			return fmt.Errorf("core: final confirm bits: %w", err)
		}
		results[i] = bit
	}
	c.noteBatch(len(groups))
	if c.vplan.Absorb(results) {
		return fmt.Errorf("%w: final confirm expected no further batches", ErrProtocol)
	}
	c.finalizeRound()
	c.awaitConfirm = false
	return nil
}

// finalizeRound applies the completed verification plan.
func (c *ClientFile) finalizeRound() {
	confirmed := c.vplan.Confirmed()
	offs := make([]int, len(confirmed))
	copy(offs, c.candOff)
	c.finishRound(confirmed, offs)
	c.candOff = nil
	c.candAlts = nil
	c.altNext = nil
}

// AbsorbHashes processes a round's hash section: it finalizes the previous
// round from the piggybacked confirm bits, derives the same plan as the
// server, reads the hashes, and searches fOld for candidates.
func (c *ClientFile) AbsorbHashes(payload []byte) error {
	r := bitio.NewReader(payload)
	if err := c.finalizePending(r); err != nil {
		return err
	}
	if c.done {
		return fmt.Errorf("%w: hashes for a finished file", ErrProtocol)
	}
	c.plan = c.buildPlan()
	hb := c.cfg.hashBits(c.n, c.b)

	vals := make([]uint64, len(c.plan.entries))
	cands := make([][]int32, len(c.plan.entries))
	sizeCount := map[int]int{}
	for i := range c.plan.entries {
		e := &c.plan.entries[i]
		raw, err := r.ReadBits(uint(e.bits))
		if err != nil {
			return fmt.Errorf("core: round hashes: %w", err)
		}
		var full uint64
		var totalBits uint
		switch e.kind {
		case kTopUp:
			bl := &c.blocks[e.blockIdx]
			eff := uint(hb) - uint(e.bits)
			leftVal := vals[e.siblingIdx]
			low := c.fam.DeriveRight(bl.parentVal, eff, leftVal, e.size)
			full = raw<<eff | low
			totalBits = uint(hb)
		default:
			full = raw
			totalBits = uint(e.bits)
		}
		vals[i] = full
		if e.kind != kProbe {
			bl := &c.blocks[e.blockIdx]
			bl.hashBits = uint8(totalBits)
			bl.hashVal = full
		}
		switch e.kind {
		case kProbe:
			cands[i] = c.probeCandidates(e, full)
		case kLocal:
			cands[i] = c.localCandidates(e, full)
		default:
			if e.size > 0 && e.size <= len(c.fOld) {
				sizeCount[e.size]++
			}
		}
	}

	// Global/top-up entries: one old-file scan per window size against a
	// small set of this round's hash values.
	if len(sizeCount) > 0 {
		sets := make(map[int]*searchSet, len(sizeCount))
		for size, n := range sizeCount {
			sets[size] = newSearchSet(n)
		}
		for i := range c.plan.entries {
			e := &c.plan.entries[i]
			if e.kind == kProbe || e.kind == kLocal || e.size <= 0 || e.size > len(c.fOld) {
				continue
			}
			sets[e.size].add(rolling.Truncate(vals[i], uint(hb)), int32(i))
		}
		for size, set := range sets {
			c.scanOld(size, uint(hb), set, cands)
		}
	}

	c.candEntries = c.candEntries[:0]
	c.candOff = c.candOff[:0]
	c.candAlts = c.candAlts[:0]
	for i := range c.plan.entries {
		if len(cands[i]) > 0 {
			c.candEntries = append(c.candEntries, i)
			c.candOff = append(c.candOff, int(cands[i][0]))
			c.candAlts = append(c.candAlts, cands[i])
		}
	}
	c.altNext = make([]int, len(c.candEntries))
	return nil
}

// scanOld slides a window of the given size across the old file, probing
// the round's hash set at every alignment and recording candidate source
// positions (at most MaxAlternates per entry).
func (c *ClientFile) scanOld(size int, bits uint, set *searchSet, cands [][]int32) {
	maxAlt := c.cfg.MaxAlternates
	if maxAlt < 1 {
		maxAlt = 1
	}
	roller := c.fam.Roller(size)
	roller.Init(c.fOld)
	for pos := 0; ; pos++ {
		key := rolling.Truncate(roller.Sum(), bits)
		if first, extras, ok := set.lookup(key); ok {
			if len(cands[first]) < maxAlt {
				cands[first] = append(cands[first], int32(pos))
			}
			for _, ei := range extras {
				if len(cands[ei]) < maxAlt {
					cands[ei] = append(cands[ei], int32(pos))
				}
			}
		}
		if pos+size >= len(c.fOld) {
			break
		}
		roller.Roll(c.fOld[pos], c.fOld[pos+size])
	}
}

// probeCandidates checks the (at most two) predicted positions for a
// continuation probe.
func (c *ClientFile) probeCandidates(e *entry, val uint64) []int32 {
	var out []int32
	check := func(mi int) {
		if mi < 0 {
			return
		}
		m := c.matches[mi]
		pred := m.clientOff + (e.off - m.serverOff)
		if pred < 0 || pred+e.size > len(c.fOld) {
			return
		}
		h := rolling.Truncate(c.fam.Hash(c.fOld[pred:pred+e.size]), uint(e.bits))
		if h == val {
			for _, p := range out {
				if int(p) == pred {
					return
				}
			}
			out = append(out, int32(pred))
		}
	}
	check(e.matchIdx)
	check(e.matchIdx2)
	return out
}

// localCandidates scans a neighborhood of the predicted position.
func (c *ClientFile) localCandidates(e *entry, val uint64) []int32 {
	m := c.matches[e.matchIdx]
	pred := m.clientOff + (e.off - m.serverOff)
	lo := pred - c.cfg.LocalRadius
	hi := pred + c.cfg.LocalRadius
	if lo < 0 {
		lo = 0
	}
	if hi > len(c.fOld)-e.size {
		hi = len(c.fOld) - e.size
	}
	if hi < lo || e.size == 0 || e.size > len(c.fOld) {
		return nil
	}
	maxAlt := c.cfg.MaxAlternates
	if maxAlt < 1 {
		maxAlt = 1
	}
	var out []int32
	roller := c.fam.Roller(e.size)
	roller.Init(c.fOld[lo:])
	for pos := lo; ; pos++ {
		if rolling.Truncate(roller.Sum(), uint(e.bits)) == val {
			out = append(out, int32(pos))
			if len(out) >= maxAlt {
				break
			}
		}
		if pos >= hi || pos+e.size >= len(c.fOld) {
			break
		}
		roller.Roll(c.fOld[pos], c.fOld[pos+e.size])
	}
	return out
}

// EmitReply writes the candidate bitmap and the first verification batch.
func (c *ClientFile) EmitReply() []byte {
	w := bitio.NewWriter(64)
	ci := 0
	for i := range c.plan.entries {
		isCand := ci < len(c.candEntries) && c.candEntries[ci] == i
		w.WriteBit(isCand)
		if isCand {
			ci++
		}
	}
	c.noteReplyBitmap()
	c.vplan = gtest.NewPlan(c.candidateClasses(), c.cfg.Verify)
	c.emitBatchHashes(w)
	return w.Bytes()
}

// emitBatchHashes writes the current batch's test hashes.
func (c *ClientFile) emitBatchHashes(w *bitio.Writer) {
	groups := c.vplan.Groups()
	for _, g := range groups {
		parts := make([][]byte, len(g.Members))
		for mi, cand := range g.Members {
			e := &c.plan.entries[c.candEntries[cand]]
			off := c.candOff[cand]
			parts[mi] = c.fOld[off : off+e.size]
		}
		w.WriteBits(verifyHash(c.cfg.VerifyBits, parts...), c.cfg.VerifyBits)
	}
	if len(groups) == 0 {
		// Zero-candidate round: the verification plan is already complete.
		if c.vplan.Absorb(nil) {
			panic("core: empty verification plan demanded another batch")
		}
		c.finalizeRound()
		return
	}
	c.awaitConfirm = true
}

// AbsorbConfirm processes an intermediate confirm bitmap; the round is NOT
// final (the server will keep the final bitmap for piggybacking). It
// prepares retry candidates and returns true when the client must emit
// another batch.
func (c *ClientFile) AbsorbConfirm(payload []byte) (bool, error) {
	if !c.awaitConfirm {
		return false, fmt.Errorf("%w: unexpected confirm bitmap", ErrProtocol)
	}
	r := bitio.NewReader(payload)
	groups := c.vplan.Groups()
	results := make([]bool, len(groups))
	for i := range results {
		bit, err := r.ReadBit()
		if err != nil {
			return false, fmt.Errorf("core: confirm bitmap: %w", err)
		}
		results[i] = bit
	}
	c.noteBatch(len(groups))
	more := c.vplan.Absorb(results)
	if !more {
		// Shouldn't happen: intermediate confirms imply more batches.
		c.finalizeRound()
		c.awaitConfirm = false
		return false, nil
	}
	// Switch retry candidates to their next alternative source offset.
	for _, g := range c.vplan.Groups() {
		if !g.Retry {
			continue
		}
		cand := g.Members[0]
		alts := c.candAlts[cand]
		c.altNext[cand]++
		if c.altNext[cand] < len(alts) {
			c.candOff[cand] = int(alts[c.altNext[cand]])
		}
	}
	return true, nil
}

// EmitBatch writes the next verification batch.
func (c *ClientFile) EmitBatch() []byte {
	w := bitio.NewWriter(16)
	c.emitBatchHashes(w)
	return w.Bytes()
}

// ApplyDelta consumes the final delta section and reconstructs the current
// file. On ErrVerifyFailed the caller should arrange a full transfer.
func (c *ClientFile) ApplyDelta(payload []byte) ([]byte, error) {
	r := bitio.NewReader(payload)
	if err := c.finalizePending(r); err != nil {
		return nil, err
	}
	r.Align()
	wantSum, err := r.ReadBytes(md4.Size)
	if err != nil {
		return nil, fmt.Errorf("core: delta header: %w", err)
	}
	enc, err := r.ReadBytes(r.BitsRemaining() / 8)
	if err != nil {
		return nil, fmt.Errorf("core: delta payload: %w", err)
	}

	out := make([]byte, c.n)
	// Materialize known regions from the old file.
	for _, m := range c.matches {
		copy(out[m.serverOff:m.serverOff+m.length], c.fOld[m.clientOff:m.clientOff+m.length])
	}
	var ref []byte
	for _, iv := range c.coverIntervals() {
		ref = append(ref, out[iv.start:iv.end]...)
	}
	target, err := delta.Decode(ref, enc)
	if err != nil {
		return nil, fmt.Errorf("core: delta decode: %w", err)
	}
	pos := 0
	for _, g := range c.gaps() {
		gl := g.end - g.start
		if pos+gl > len(target) {
			return nil, fmt.Errorf("core: delta target too short")
		}
		copy(out[g.start:g.end], target[pos:pos+gl])
		pos += gl
	}
	if pos != len(target) {
		return nil, fmt.Errorf("core: delta target length mismatch")
	}
	got := md4.Sum(out)
	if string(got[:]) != string(wantSum) {
		return nil, ErrVerifyFailed
	}
	return out, nil
}
