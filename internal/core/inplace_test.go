package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"msync/internal/corpus"
	"msync/internal/stats"
)

// syncLocalInPlace mirrors SyncLocal but applies the delta in place.
func syncLocalInPlace(fOld, fNew []byte, cfg Config) ([]byte, *stats.Costs, error) {
	srv, err := NewServerFile(fNew, &cfg)
	if err != nil {
		return nil, nil, err
	}
	cli, err := NewClientFile(append([]byte(nil), fOld...), len(fNew), &cfg)
	if err != nil {
		return nil, nil, err
	}
	costs := &stats.Costs{}
	for srv.Active() {
		hashes := srv.EmitHashes()
		if err := cli.AbsorbHashes(hashes); err != nil {
			return nil, nil, err
		}
		more, err := srv.AbsorbReply(cli.EmitReply())
		if err != nil {
			return nil, nil, err
		}
		for more {
			cliMore, err := cli.AbsorbConfirm(srv.EmitConfirm())
			if err != nil {
				return nil, nil, err
			}
			if !cliMore {
				break
			}
			more, err = srv.AbsorbBatch(cli.EmitBatch())
			if err != nil {
				return nil, nil, err
			}
		}
	}
	out, st, err := cli.ApplyDeltaInPlace(srv.EmitDelta())
	if err != nil {
		return nil, nil, err
	}
	costs.Add(stats.S2C, stats.PhaseMap, int(st.ExtraBytes)) // reuse field loosely for reporting
	return out, costs, nil
}

func TestApplyDeltaInPlaceMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 2000 + rng.Intn(40_000)
		old := corpus.SourceText(rng, size)
		em := corpus.EditModel{BurstsPer32KB: 4, BurstEdits: 4, EditSize: 50, BurstSpread: 300}
		cur := em.Apply(rng, old)
		out, _, err := syncLocalInPlace(old, cur, DefaultConfig())
		return err == nil && bytes.Equal(out, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDeltaInPlaceGrowShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := corpus.SourceText(rng, 20_000)
	bigger := append(append([]byte(nil), base...), corpus.SourceText(rng, 10_000)...)
	smaller := base[:8_000]
	for _, tc := range [][2][]byte{{base, bigger}, {bigger, smaller}, {smaller, base}} {
		out, _, err := syncLocalInPlace(tc[0], tc[1], DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, tc[1]) {
			t.Fatal("in-place mismatch on resize")
		}
	}
}

func TestApplyDeltaInPlaceReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	old := corpus.SourceText(rng, 50_000)
	cur := append([]byte(nil), old...)
	copy(cur[25_000:], []byte("one tiny edit"))

	cfg := DefaultConfig()
	srv, err := NewServerFile(cur, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	oldBuf := append([]byte(nil), old...)
	cli, err := NewClientFile(oldBuf, len(cur), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	for srv.Active() {
		if err := cli.AbsorbHashes(srv.EmitHashes()); err != nil {
			t.Fatal(err)
		}
		more, err := srv.AbsorbReply(cli.EmitReply())
		if err != nil {
			t.Fatal(err)
		}
		for more {
			cliMore, err := cli.AbsorbConfirm(srv.EmitConfirm())
			if err != nil {
				t.Fatal(err)
			}
			if !cliMore {
				break
			}
			if more, err = srv.AbsorbBatch(cli.EmitBatch()); err != nil {
				t.Fatal(err)
			}
		}
	}
	out, st, err := cli.ApplyDeltaInPlace(srv.EmitDelta())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, cur) {
		t.Fatal("mismatch")
	}
	// Same length: the result must live in the original backing array.
	if &out[0] != &oldBuf[0] {
		t.Fatal("in-place apply did not reuse the old buffer")
	}
	// Extra space should be a tiny fraction for an aligned edit.
	if st.ExtraBytes > len(cur)/10 {
		t.Fatalf("extra space %d for a single small edit", st.ExtraBytes)
	}
	t.Logf("in-place: %d copies, %d literals, %d buffered (%d extra bytes)",
		st.Copies, st.Literals, st.Buffered, st.ExtraBytes)
}
