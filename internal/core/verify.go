package core

import (
	"crypto/md5"
	"encoding/binary"

	"msync/internal/rolling"
)

// verifyHash computes a truncated-MD5 verification hash over the
// concatenation of parts. Verification hashes do not need the rolling or
// decomposable properties, so a strong conventional hash is used (the paper
// uses MD5 here too).
func verifyHash(bits uint, parts ...[]byte) uint64 {
	h := md5.New()
	for _, p := range parts {
		h.Write(p)
	}
	var sum [md5.Size]byte
	v := binary.BigEndian.Uint64(h.Sum(sum[:0])[:8])
	return rolling.Truncate(v, bits)
}

// noteReplyBitmap accounts the per-entry candidate bitmap in the shared
// bit-spend tally; called once per round on each side.
func (st *state) noteReplyBitmap() {
	st.roundBits += int64(len(st.plan.entries))
}

// noteBatch accounts one verification batch: vbits per test client→server
// plus one result bit per test server→client.
func (st *state) noteBatch(numTests int) {
	st.roundBits += int64(numTests) * int64(st.cfg.VerifyBits+1)
}
