package core

import (
	"crypto/md5"
	"encoding/binary"

	"msync/internal/gtest"
	"msync/internal/pool"
	"msync/internal/rolling"
)

// verifyHash computes a truncated-MD5 verification hash over the
// concatenation of parts. Verification hashes do not need the rolling or
// decomposable properties, so a strong conventional hash is used (the paper
// uses MD5 here too).
func verifyHash(bits uint, parts ...[]byte) uint64 {
	h := md5.New()
	for _, p := range parts {
		h.Write(p)
	}
	var sum [md5.Size]byte
	v := binary.BigEndian.Uint64(h.Sum(sum[:0])[:8])
	return rolling.Truncate(v, bits)
}

// minParallelGroups is the smallest verification batch worth fanning out;
// below it the per-goroutine handoff costs more than an MD5 of a few blocks.
const minParallelGroups = 16

// verifyGroupSums computes every group's verification hash for one batch —
// the strong-hash work of a verification exchange — fanning it across the
// worker pool when the batch is large enough to pay for the handoff. part
// returns candidate cand's byte range on the calling side (fOld on the
// client, fNew on the server). Each group's sum equals
// verifyHash(bits, parts of its members...), computed into its own slot, so
// the result is identical for any worker count.
func verifyGroupSums(workers int, bits uint, groups []gtest.Group, part func(cand int) []byte) []uint64 {
	if len(groups) == 0 {
		return nil
	}
	sums := make([]uint64, len(groups))
	one := func(gi int) error {
		h := md5.New()
		for _, cand := range groups[gi].Members {
			h.Write(part(cand))
		}
		var sum [md5.Size]byte
		sums[gi] = rolling.Truncate(binary.BigEndian.Uint64(h.Sum(sum[:0])[:8]), bits)
		return nil
	}
	if len(groups) < minParallelGroups {
		for gi := range sums {
			_ = one(gi)
		}
		return sums
	}
	_ = pool.Do(workers, len(sums), one)
	return sums
}

// noteReplyBitmap accounts the per-entry candidate bitmap in the shared
// bit-spend tally; called once per round on each side.
func (st *state) noteReplyBitmap() {
	st.roundBits += int64(len(st.plan.entries))
}

// noteBatch accounts one verification batch: vbits per test client→server
// plus one result bit per test server→client.
func (st *state) noteBatch(numTests int) {
	st.roundBits += int64(numTests) * int64(st.cfg.VerifyBits+1)
}
