package core

import (
	"bytes"
	"math/rand"
	"testing"

	"msync/internal/stats"
)

// mutate applies nEdits clustered random edits (insert/delete/replace) to a
// copy of data, the change model the paper's workloads exhibit.
func mutate(data []byte, nEdits, maxEdit int, rng *rand.Rand) []byte {
	out := append([]byte(nil), data...)
	for i := 0; i < nEdits; i++ {
		if len(out) == 0 {
			out = append(out, randBytes(rng, maxEdit)...)
			continue
		}
		pos := rng.Intn(len(out))
		l := 1 + rng.Intn(maxEdit)
		switch rng.Intn(3) {
		case 0: // insert
			ins := randBytes(rng, l)
			out = append(out[:pos], append(ins, out[pos:]...)...)
		case 1: // delete
			end := pos + l
			if end > len(out) {
				end = len(out)
			}
			out = append(out[:pos], out[end:]...)
		default: // replace
			end := pos + l
			if end > len(out) {
				end = len(out)
			}
			repl := randBytes(rng, end-pos)
			copy(out[pos:end], repl)
		}
	}
	return out
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// textLike produces compressible, structured data reminiscent of source code.
func textLike(rng *rand.Rand, n int) []byte {
	words := []string{"func", "return", "if", "err", "nil", "for", "range", "int",
		"string", "byte", "struct", "package", "import", "var", "const", "type"}
	var buf bytes.Buffer
	for buf.Len() < n {
		buf.WriteString(words[rng.Intn(len(words))])
		if rng.Intn(8) == 0 {
			buf.WriteByte('\n')
		} else {
			buf.WriteByte(' ')
		}
	}
	return buf.Bytes()[:n]
}

func TestSyncLocalBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	old := textLike(rng, 100_000)
	cur := mutate(old, 20, 50, rng)

	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"default", DefaultConfig()},
		{"basic", BasicConfig()},
		{"oneshot", OneShotConfig(256)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := SyncLocal(old, cur, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(res.Output, cur) {
				t.Fatalf("reconstruction mismatch")
			}
			total := res.Costs.Total()
			t.Logf("%s: %d bytes total (%.1f%% of file), %d roundtrips, harvest %.2f",
				tc.name, total, 100*float64(total)/float64(len(cur)),
				res.Costs.Roundtrips, res.Costs.HarvestRate())
			if total >= int64(len(cur)) {
				t.Errorf("sync cost %d not below file size %d", total, len(cur))
			}
		})
	}
}

func TestSyncLocalIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := textLike(rng, 50_000)
	res, err := SyncLocal(data, data, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Output, data) {
		t.Fatal("mismatch")
	}
	if res.Costs.Total() > 2000 {
		t.Errorf("identical files cost %d bytes; want near-zero", res.Costs.Total())
	}
	t.Logf("identical: %d bytes, map s2c %d c2s %d", res.Costs.Total(),
		res.Costs.Bytes(stats.S2C, stats.PhaseMap), res.Costs.Bytes(stats.C2S, stats.PhaseMap))
}

func TestSyncLocalEmptyAndTiny(t *testing.T) {
	cases := [][2][]byte{
		{nil, nil},
		{nil, []byte("hello")},
		{[]byte("hello"), nil},
		{[]byte("hello"), []byte("world")},
		{[]byte("abc"), bytes.Repeat([]byte("abc"), 1000)},
		{bytes.Repeat([]byte("xyz"), 1000), []byte("xy")},
	}
	for i, c := range cases {
		res, err := SyncLocal(c[0], c[1], DefaultConfig())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(res.Output, c[1]) {
			t.Fatalf("case %d: mismatch", i)
		}
	}
}
