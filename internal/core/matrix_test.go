package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"msync/internal/corpus"
	"msync/internal/gtest"
)

// TestConfigMatrix runs the full protocol over the cartesian product of the
// main technique toggles — every combination must reconstruct exactly.
func TestConfigMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	old := corpus.SourceText(rng, 60_000)
	em := corpus.EditModel{BurstsPer32KB: 4, BurstEdits: 4, EditSize: 50, BurstSpread: 300}
	cur := em.Apply(rng, old)

	for _, family := range []string{"poly", "adler"} {
		for _, decomp := range []bool{true, false} {
			for _, contMin := range []int{0, 16} {
				for _, batches := range []int{1, 3} {
					name := fmt.Sprintf("%s/decomp=%v/cont=%d/batches=%d", family, decomp, contMin, batches)
					t.Run(name, func(t *testing.T) {
						cfg := DefaultConfig()
						cfg.HashFamily = family
						cfg.Decomposable = decomp
						cfg.ContMinBlock = contMin
						cfg.TwoPhaseRounds = contMin > 0 && batches == 1 // exercise both
						cfg.Verify = gtest.Config{
							Batches: batches, GroupSize: 4, TrustedGroupSize: 8,
							SplitFactor: 2, RetryAlternates: 1,
						}
						res, err := SyncLocal(old, cur, cfg)
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(res.Output, cur) {
							t.Fatal("reconstruction mismatch")
						}
						if res.Costs.Total() >= int64(len(cur)) {
							t.Fatalf("cost %d not below file size", res.Costs.Total())
						}
					})
				}
			}
		}
	}
}

// TestEqualBlockBounds: MinBlockSize == MaxBlockSize degenerates to a
// single global round (plus continuation rounds if enabled).
func TestEqualBlockBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	old := corpus.SourceText(rng, 30_000)
	cur := corpus.EditModel{BurstsPer32KB: 3, BurstEdits: 3, EditSize: 40, BurstSpread: 200}.Apply(rng, old)

	cfg := DefaultConfig()
	cfg.MaxBlockSize = 512
	cfg.MinBlockSize = 512
	cfg.ContMinBlock = 64
	res, err := SyncLocal(old, cur, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Output, cur) {
		t.Fatal("mismatch")
	}
	if len(res.RoundDetails) == 0 || res.RoundDetails[0].BlockSize != 512 {
		t.Fatalf("unexpected rounds: %+v", res.RoundDetails)
	}
	// Later rounds must be continuation-only.
	for _, r := range res.RoundDetails[1:] {
		if r.Globals != 0 || r.TopUps != 0 {
			t.Fatalf("global hashes below MinBlockSize: %+v", r)
		}
	}
}

// TestOldLargerThanNew and vice versa: asymmetric sizes.
func TestAsymmetricSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	big := corpus.SourceText(rng, 100_000)
	small := big[20_000:30_000]
	for _, tc := range [][2][]byte{{big, small}, {small, big}} {
		res, err := SyncLocal(tc[0], tc[1], DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Output, tc[1]) {
			t.Fatal("mismatch")
		}
		// The content is shared, so the cost must be far below the target size.
		if res.Costs.Total() > int64(len(tc[1]))/2+2048 {
			t.Fatalf("cost %d too high for contained content (target %d)",
				res.Costs.Total(), len(tc[1]))
		}
	}
}

// TestVerifyHashProperties pins down the verification hash helper.
func TestVerifyHashProperties(t *testing.T) {
	a, b := []byte("part one"), []byte("part two")
	// Deterministic.
	if verifyHash(20, a, b) != verifyHash(20, a, b) {
		t.Fatal("nondeterministic")
	}
	// Part order matters (group tests concatenate in member order).
	if verifyHash(40, a, b) == verifyHash(40, b, a) {
		t.Fatal("order-insensitive")
	}
	// Truncation is a prefix relation on the low bits.
	full := verifyHash(64, a)
	if verifyHash(16, a) != full&0xFFFF {
		t.Fatal("truncation mismatch")
	}
	// Width respected.
	if verifyHash(8, a) > 0xFF {
		t.Fatal("width exceeded")
	}
}

// TestPresetProperties pins the exported presets' technique selections.
func TestPresetProperties(t *testing.T) {
	d := DefaultConfig()
	if d.ContMinBlock == 0 || !d.Decomposable || d.Verify.Batches < 2 {
		t.Fatalf("DefaultConfig lost techniques: %+v", d)
	}
	b := BasicConfig()
	if b.ContMinBlock != 0 || b.Verify.GroupSize != 1 || b.Verify.Batches != 1 {
		t.Fatalf("BasicConfig not basic: %+v", b)
	}
	o := OneShotConfig(512)
	if o.MaxBlockSize != 512 || o.MinBlockSize != 512 {
		t.Fatalf("OneShotConfig block sizes: %+v", o)
	}
	if o.Validate() != nil || b.Validate() != nil || d.Validate() != nil {
		t.Fatal("preset failed validation")
	}
	if d.minScheduleBlock() != d.ContMinBlock {
		t.Fatal("minScheduleBlock with continuation")
	}
	if b.minScheduleBlock() != b.MinBlockSize {
		t.Fatal("minScheduleBlock without continuation")
	}
}

// TestHashFamilyResolution: config resolves both families; unknown names
// are rejected at validation.
func TestHashFamilyResolution(t *testing.T) {
	for name, want := range map[string]string{"": "poly", "poly": "poly", "adler": "adler"} {
		cfg := DefaultConfig()
		cfg.HashFamily = name
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if got := cfg.hashFamily().Name(); got != want {
			t.Fatalf("%q resolved to %q", name, got)
		}
	}
	cfg := DefaultConfig()
	cfg.HashFamily = "md5"
	if cfg.Validate() == nil {
		t.Fatal("unknown family accepted")
	}
}

// TestAppendWorkload: pure appends are the friendliest case — cost must be
// close to the appended volume, far below rsync's per-block floor.
func TestAppendWorkload(t *testing.T) {
	v1, v2 := corpus.DefaultLogAppendProfile(0.2).Generate(5)
	m1 := v1.Map()
	var total, appended, cost int64
	for _, f := range v2.Files {
		old := m1[f.Path]
		res, err := SyncLocal(old, f.Data, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Output, f.Data) {
			t.Fatal("mismatch")
		}
		total += int64(len(f.Data))
		appended += int64(len(f.Data) - len(old))
		cost += res.Costs.Total()
	}
	t.Logf("append workload: %d bytes appended of %d total; sync cost %d (%.2fx of appended)",
		appended, total, cost, float64(cost)/float64(appended))
	if cost > appended {
		t.Fatalf("sync cost %d exceeds appended volume %d", cost, appended)
	}
}
