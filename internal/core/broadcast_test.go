package core

import (
	"bytes"
	"math/rand"
	"testing"

	"msync/internal/corpus"
)

func TestBroadcastSyncAllClientsConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	cur := corpus.SourceText(rng, 120_000)
	em := corpus.EditModel{BurstsPer32KB: 2, BurstEdits: 4, EditSize: 50, BurstSpread: 300}
	olds := [][]byte{
		em.Apply(rng, cur),                // lightly diverged
		em.Apply(rng, em.Apply(rng, cur)), // more diverged
		corpus.RandomText(rng, 50_000),    // unrelated
		nil,                               // empty
		append([]byte(nil), cur...),       // identical
	}

	res, err := BroadcastSync(cur, olds, OneShotConfig(512))
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range res.Outputs {
		if !bytes.Equal(out, cur) {
			t.Fatalf("client %d did not converge", i)
		}
	}
	if res.SharedBytes == 0 {
		t.Fatal("no shared payload")
	}
	// Broadcasting must beat repeating the hash stream per client.
	if res.Total() >= res.UnicastTotal() {
		t.Fatalf("broadcast total %d not below unicast %d", res.Total(), res.UnicastTotal())
	}
	saved := res.UnicastTotal() - res.Total()
	if saved != res.SharedBytes*int64(len(olds)-1) {
		t.Fatalf("saving %d != shared×(n-1) = %d", saved, res.SharedBytes*int64(len(olds)-1))
	}
	t.Logf("broadcast: shared %d B once for %d clients (unicast would cost %d, broadcast %d)",
		res.SharedBytes, len(olds), res.UnicastTotal(), res.Total())
}

func TestBroadcastRejectsMultiRoundConfigs(t *testing.T) {
	_, err := BroadcastSync([]byte("data"), [][]byte{nil}, DefaultConfig())
	if err == nil {
		t.Fatal("multi-round config accepted for broadcast")
	}
}

func TestBroadcastNoClients(t *testing.T) {
	res, err := BroadcastSync([]byte("content here that is long enough"), nil, OneShotConfig(256))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 0 {
		t.Fatal("unexpected outputs")
	}
}

func TestBroadcastSharedStreamDeterminism(t *testing.T) {
	// The guarantee broadcast rests on: fresh one-shot engines over the same
	// file emit byte-identical hash streams.
	rng := rand.New(rand.NewSource(82))
	cur := corpus.SourceText(rng, 60_000)
	cfg := OneShotConfig(512)
	a, err := NewServerFile(cur, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewServerFile(cur, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.EmitHashes(), b.EmitHashes()) {
		t.Fatal("one-shot hash streams diverged across engines")
	}
}
