package core

import (
	"math/rand"
	"testing"

	"msync/internal/corpus"
)

func BenchmarkSyncLocal1MB(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	old := corpus.SourceText(rng, 1<<20)
	em := corpus.EditModel{BurstsPer32KB: 2, BurstEdits: 4, EditSize: 50, BurstSpread: 300}
	cur := em.Apply(rng, old)
	cfg := DefaultConfig()
	b.SetBytes(int64(len(cur)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SyncLocal(old, cur, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
