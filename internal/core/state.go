package core

import (
	"sort"

	"msync/internal/gtest"
)

// match records one confirmed correspondence: the server block at
// [ServerOff, ServerOff+Len) equals the client substring at
// [ClientOff, ClientOff+Len). ClientOff is meaningful on the client side
// only; the server keeps it zero (it never needs it).
type match struct {
	serverOff int
	length    int
	clientOff int
}

// interval is a half-open server-space range.
type interval struct{ start, end int }

// blk is one unknown block of the recursive splitting tree.
// Structural fields (off, size, hashBits, parentBits) are maintained
// identically on both protocol sides; value fields (hashVal, parentVal) hold
// side-specific data (the client stores truncated received hashes, the
// server full hashes) and never enter shared derivations.
type blk struct {
	off, size  int
	hashBits   uint8  // bits of this block's hash the client holds (0 = none)
	hashVal    uint64 // side-specific hash value
	parentBits uint8  // bits the client holds of the parent block's hash
	parentVal  uint64 // side-specific parent hash value (client: truncated)
	parentLen  int    // parent block length (for decomposition exponent)
	isRight    bool   // right child of its parent split
}

// entry kinds in a round plan.
const (
	kGlobal = iota // full-width global hash
	kTopUp         // right sibling: only the bits not derivable
	kLocal         // local hash, neighborhood-limited comparison
	kProbe         // continuation hash at a predicted position
)

// entry is one planned hash transmission within a round.
type entry struct {
	kind     uint8
	bits     uint8
	blockIdx int // kGlobal/kTopUp/kLocal: index into state.blocks
	off      int
	size     int
	// probe prediction: candidate positions derive from these matches.
	matchIdx   int
	matchIdx2  int
	probeLeft  bool // probe extends a cover interval leftward
	edgeOff    int  // edge position for failure bookkeeping
	siblingIdx int  // kTopUp: plan index of the left sibling entry
}

// plan is the full derived structure of one round.
type plan struct {
	b       int
	entries []entry
	// phaseAOnly marks a two-phase round's probe-only first half: the next
	// wire round stays at the same block size and sends the globals.
	phaseAOnly bool
}

// RoundStats records what one map-construction round did, for diagnostics
// and experiment introspection. Both sides produce identical records.
type RoundStats struct {
	// Round is the 0-based round index; BlockSize its global block size.
	Round     int
	BlockSize int
	// Entry counts by kind.
	Globals, TopUps, Locals, Probes int
	// Candidates found by the client and matches confirmed.
	Candidates, Confirmed int
	// CoveredBytes is the cumulative covered total after the round;
	// NewBytes what this round added.
	CoveredBytes, NewBytes int
	// Bits is the map-phase wire bits this round consumed (hashes, bitmaps,
	// verification).
	Bits int64
}

// state is the per-file protocol state shared (structurally) by both sides.
type state struct {
	cfg     *Config
	n       int // length of the current (server) file
	round   int
	b       int // current block size
	blocks  []blk
	matches []match

	coverCache []interval // nil when dirty
	covered    int        // covered bytes (valid with coverCache)

	// edgeFailed maps a probe edge to the smallest probe size that failed
	// there; only strictly smaller probes are allowed later.
	edgeFailed map[int64]int

	done bool

	// Two-phase round tracking (Config.TwoPhaseRounds): phaseB marks the
	// global half; the two slices describe the preceding probe half.
	phaseB              bool
	lastProbeRanges     []interval
	lastPhaseAConfirmed []interval

	// CDC dead-zone pruning: cdcMiss holds the intervals of last round's
	// chunks that drew no candidate at all; cdcDead accumulates intervals
	// that missed at two consecutive levels — almost certainly new content —
	// which later rounds stop re-chunking (the delta phase ships them).
	// Both derive from the shared candidate bitmap, so the two sides agree.
	cdcMiss []interval
	cdcDead []interval

	// bitsSpent accumulates map-phase wire bits for this file, maintained
	// identically on both sides (used by the adaptive stop and reporting).
	bitsSpent      int64
	roundBits      int64
	coveredAtRound int

	plan  *plan
	vplan *gtest.Plan
	// candEntries maps candidate index -> plan entry index, in plan order.
	candEntries []int

	rounds []RoundStats
}

// initState prepares shared state for a file of length n.
func (st *state) initState(cfg *Config, n int) {
	st.cfg = cfg
	st.n = n
	st.b = cfg.initialBlockSize(n)
	st.edgeFailed = make(map[int64]int)
	if n == 0 {
		st.done = true
		return
	}
	if st.b < cfg.MinBlockSize || n < cfg.MinBlockSize {
		// Too small for map construction; straight to delta.
		st.done = true
		return
	}
	if cfg.MapMode == MapCDC {
		// CDC mode has no fixed splitting tree: st.b doubles as the round's
		// average chunk size, and boundaries are rediscovered from content
		// each round (emit/absorbHashesCDC). No blocks to prebuild.
		st.b = cfg.cdcInitialAvg(n)
		return
	}
	for off := 0; off < n; off += st.b {
		end := off + st.b
		if end > n {
			end = n
		}
		st.blocks = append(st.blocks, blk{off: off, size: end - off})
	}
}

func edgeKey(off int, left bool) int64 {
	k := int64(off) << 1
	if left {
		k |= 1
	}
	return k
}

// allowProbe reports whether a probe of this size at the edge is still
// worth trying (no failure recorded at this size or smaller).
func (st *state) allowProbe(edgeOff int, left bool, size int) bool {
	failed, ok := st.edgeFailed[edgeKey(edgeOff, left)]
	return !ok || size < failed
}

// coverIntervals returns the merged covered intervals, cached.
func (st *state) coverIntervals() []interval {
	if st.coverCache != nil {
		return st.coverCache
	}
	ivs := make([]interval, 0, len(st.matches))
	for _, m := range st.matches {
		ivs = append(ivs, interval{m.serverOff, m.serverOff + m.length})
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].end < ivs[j].end
	})
	merged := ivs[:0]
	for _, iv := range ivs {
		if len(merged) > 0 && iv.start <= merged[len(merged)-1].end {
			if iv.end > merged[len(merged)-1].end {
				merged[len(merged)-1].end = iv.end
			}
			continue
		}
		merged = append(merged, iv)
	}
	st.coverCache = merged
	st.covered = 0
	for _, iv := range merged {
		st.covered += iv.end - iv.start
	}
	return merged
}

// gaps returns the complement of the cover within [0, n).
func (st *state) gaps() []interval {
	cover := st.coverIntervals()
	var out []interval
	pos := 0
	for _, iv := range cover {
		if iv.start > pos {
			out = append(out, interval{pos, iv.start})
		}
		pos = iv.end
	}
	if pos < st.n {
		out = append(out, interval{pos, st.n})
	}
	return out
}

// coveredBytes reports total covered bytes.
func (st *state) coveredBytes() int {
	st.coverIntervals()
	return st.covered
}

// fullyCovered reports whether [off, off+size) lies inside the cover.
func (st *state) fullyCovered(off, size int) bool {
	cover := st.coverIntervals()
	i := sort.Search(len(cover), func(i int) bool { return cover[i].end > off })
	return i < len(cover) && cover[i].start <= off && off+size <= cover[i].end
}

// matchEndingAt returns the index of a match whose server range ends at off
// (latest added wins), or -1.
func (st *state) matchEndingAt(off int) int {
	for i := len(st.matches) - 1; i >= 0; i-- {
		m := st.matches[i]
		if m.serverOff+m.length == off {
			return i
		}
	}
	return -1
}

// matchStartingAt returns the index of a match whose server range starts at
// off (latest added wins), or -1.
func (st *state) matchStartingAt(off int) int {
	for i := len(st.matches) - 1; i >= 0; i-- {
		if st.matches[i].serverOff == off {
			return i
		}
	}
	return -1
}

// nearestMatch returns the index of the match whose server range is nearest
// to off, or -1. Used for local-hash position prediction.
func (st *state) nearestMatch(off int) int {
	best, bestDist := -1, 0
	for i, m := range st.matches {
		d := 0
		if off < m.serverOff {
			d = m.serverOff - off
		} else if off > m.serverOff+m.length {
			d = off - (m.serverOff + m.length)
		}
		if best < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// buildPlan derives the round plan from shared state. Both sides call this
// with identical state and must obtain identical plans.
func (st *state) buildPlan() *plan {
	p := &plan{b: st.b}

	// 1. Continuation probes at cover-interval edges (skipped in the global
	// half of a two-phase round — they went out in the probe half).
	probeRanges := make([]interval, 0, 8)
	if st.phaseB {
		probeRanges = append(probeRanges, st.lastProbeRanges...)
	}
	if !st.phaseB && st.cfg.ContMinBlock > 0 && st.b >= st.cfg.ContMinBlock && len(st.matches) > 0 {
		probeRanges = st.planProbes(p, probeRanges)
	}

	// Two-phase rounds: if this is the probe half and probes exist, stop
	// here; the globals follow in the next wire round at the same size.
	if !st.phaseB && st.cfg.TwoPhaseRounds && st.b >= st.cfg.MinBlockSize && len(p.entries) > 0 {
		p.phaseAOnly = true
		for _, e := range p.entries {
			st.roundBits += int64(e.bits)
		}
		return p
	}

	// 2. Global / local hashes for unknown blocks (only while b is at or
	// above the global minimum).
	if st.b >= st.cfg.MinBlockSize {
		hb := st.cfg.hashBits(st.n, st.b)
		lb := st.cfg.localBits()
		firstBlockEntry := len(p.entries)
		for bi := range st.blocks {
			blkRef := &st.blocks[bi]
			if st.fullyCovered(blkRef.off, blkRef.size) {
				continue
			}
			if overlapsAny(probeRanges, blkRef.off, blkRef.off+blkRef.size) {
				continue // probed this round; skip the global hash (paper §5.4)
			}
			if st.phaseB && st.siblingConfirmedInPhaseA(blkRef) {
				continue // sibling matched in the probe half (paper §5.4)
			}
			kind := uint8(kGlobal)
			bits := hb
			if st.cfg.EnableLocal && lb < hb {
				if mi := st.nearestMatch(blkRef.off); mi >= 0 {
					m := st.matches[mi]
					d := dist(blkRef.off, m.serverOff, m.serverOff+m.length)
					if d > 0 && d <= st.cfg.LocalRange {
						kind = kLocal
						bits = lb
						p.entries = append(p.entries, entry{
							kind: kind, bits: uint8(bits), blockIdx: bi,
							off: blkRef.off, size: blkRef.size, matchIdx: mi, matchIdx2: -1,
						})
						continue
					}
				}
			}
			p.entries = append(p.entries, entry{
				kind: kind, bits: uint8(bits), blockIdx: bi,
				off: blkRef.off, size: blkRef.size, matchIdx: -1, matchIdx2: -1,
			})
		}
		// 3. Decomposability: convert the right sibling of each adjacent
		// global pair into a top-up entry.
		if st.cfg.Decomposable {
			for i := firstBlockEntry + 1; i < len(p.entries); i++ {
				e := &p.entries[i]
				prev := &p.entries[i-1]
				if e.kind != kGlobal || prev.kind != kGlobal {
					continue
				}
				bl := &st.blocks[e.blockIdx]
				pl := &st.blocks[prev.blockIdx]
				if !bl.isRight || bl.parentBits == 0 {
					continue
				}
				// Must be true siblings: same parent => contiguous with
				// matching parent length.
				if pl.off+pl.size != bl.off || pl.size+bl.size != bl.parentLen || pl.parentLen != bl.parentLen || pl.isRight {
					continue
				}
				eff := uint(bl.parentBits)
				if eff > uint(e.bits) {
					eff = uint(e.bits)
				}
				e.kind = kTopUp
				e.siblingIdx = i - 1
				e.bits = uint8(uint(e.bits) - eff)
			}
		}
	}

	// Account the hash payload bits (identically on both sides).
	for _, e := range p.entries {
		st.roundBits += int64(e.bits)
	}
	return p
}

// planProbes appends continuation-probe entries at cover-interval edges to p
// and returns probeRanges extended with their server ranges. The logic is
// mode-agnostic: it derives purely from shared state (gaps, matches, failure
// bookkeeping), so both halving and CDC rounds reuse it and both sides derive
// identical probe plans.
func (st *state) planProbes(p *plan, probeRanges []interval) []interval {
	for _, g := range st.gaps() {
		glen := g.end - g.start
		size := st.b
		if size > glen {
			size = glen
		}
		wholeGap := size == glen
		// Right-extension probe of the region ending at g.start.
		if g.start > 0 {
			if mi := st.matchEndingAt(g.start); mi >= 0 && st.allowProbe(g.start, false, size) {
				e := entry{
					kind: kProbe, bits: uint8(st.cfg.ContBits),
					off: g.start, size: size,
					matchIdx: mi, matchIdx2: -1,
					probeLeft: false, edgeOff: g.start,
				}
				if wholeGap && g.end < st.n {
					if mi2 := st.matchStartingAt(g.end); mi2 >= 0 {
						e.matchIdx2 = mi2
					}
				}
				p.entries = append(p.entries, e)
				probeRanges = append(probeRanges, interval{e.off, e.off + e.size})
				if wholeGap {
					continue // one probe covers the whole gap
				}
			}
		}
		// Left-extension probe of the region starting at g.end.
		if g.end < st.n {
			if mi := st.matchStartingAt(g.end); mi >= 0 && st.allowProbe(g.end, true, size) {
				e := entry{
					kind: kProbe, bits: uint8(st.cfg.ContBits),
					off: g.end - size, size: size,
					matchIdx: mi, matchIdx2: -1,
					probeLeft: true, edgeOff: g.end,
				}
				if wholeGap && g.start > 0 {
					if mi2 := st.matchEndingAt(g.start); mi2 >= 0 {
						e.matchIdx2 = mi2
					}
				}
				p.entries = append(p.entries, e)
				probeRanges = append(probeRanges, interval{e.off, e.off + e.size})
			}
		}
	}
	return probeRanges
}

// cdcPlanBase starts a CDC round plan: continuation probes first (shared
// derivation, same as halving rounds), then the chunk regions — each gap minus
// the ranges probed this round. Chunk boundaries inside those regions are
// content-defined, so only the server can compute them; the caller fills in
// the chunk entries (server from fNew, client from the received lengths).
// Probe payload bits are accounted here; chunk bits by the caller.
func (st *state) cdcPlanBase() (*plan, []interval) {
	p := &plan{b: st.b}
	var probeRanges []interval
	if st.cfg.ContMinBlock > 0 && st.b >= st.cfg.ContMinBlock && len(st.matches) > 0 {
		probeRanges = st.planProbes(p, probeRanges)
	}
	for _, e := range p.entries {
		st.roundBits += int64(e.bits)
	}
	var regions []interval
	if st.b >= st.cfg.cdcFloor() {
		skip := probeRanges
		if len(st.cdcDead) > 0 {
			skip = append(append([]interval(nil), probeRanges...), st.cdcDead...)
		}
		for _, g := range st.gaps() {
			for _, r := range subtractIntervals(g, skip) {
				// Chunking a region shorter than two average chunks yields
				// one or two edge-bounded chunks that rarely match; the next
				// round's probes cover such remnants more cheaply.
				if r.end-r.start >= 2*st.b {
					regions = append(regions, r)
				}
			}
		}
	}
	return p, regions
}

// subtractIntervals returns the parts of g not covered by any of ivs.
// ivs need not be sorted or disjoint.
func subtractIntervals(g interval, ivs []interval) []interval {
	out := []interval{g}
	for _, iv := range ivs {
		var next []interval
		for _, o := range out {
			if iv.end <= o.start || o.end <= iv.start {
				next = append(next, o)
				continue
			}
			if o.start < iv.start {
				next = append(next, interval{o.start, iv.start})
			}
			if iv.end < o.end {
				next = append(next, interval{iv.end, o.end})
			}
		}
		out = next
	}
	return out
}

func overlapsAny(ivs []interval, start, end int) bool {
	for _, iv := range ivs {
		if start < iv.end && iv.start < end {
			return true
		}
	}
	return false
}

func dist(off, start, end int) int {
	if off < start {
		return start - off
	}
	if off > end {
		return off - end
	}
	return 0
}

// candidateClasses maps candidate entries to gtest classes.
func (st *state) candidateClasses() []gtest.Class {
	classes := make([]gtest.Class, len(st.candEntries))
	for i, ei := range st.candEntries {
		switch st.plan.entries[ei].kind {
		case kProbe:
			classes[i] = gtest.ClassContinuation
		case kLocal:
			classes[i] = gtest.ClassLocal
		default:
			classes[i] = gtest.ClassGlobal
		}
	}
	return classes
}

// totalHashBits returns hash width a block's hash ends at this round
// (used by the client to store reconstructed hashes).
func (st *state) entryTotalBits(e *entry) uint8 {
	if e.kind == kTopUp {
		return uint8(st.cfg.hashBits(st.n, st.b))
	}
	return e.bits
}

// finishRound applies verification outcomes and advances shared state to the
// next round. confirmedOff supplies, for each candidate index, the client
// offset (client side) or 0 (server side); confirmed flags which candidates
// verified. Both sides call it with identical structure.
func (st *state) finishRound(confirmed []bool, confirmedOff []int) {
	p := st.plan
	// Record probe failures (no candidate, or candidate dropped).
	probeConfirmed := make(map[int]bool, len(st.candEntries))
	for ci, ei := range st.candEntries {
		if confirmed[ci] {
			probeConfirmed[ei] = true
		}
	}
	candSet := make(map[int]int, len(st.candEntries))
	for ci, ei := range st.candEntries {
		candSet[ei] = ci
	}
	for ei := range p.entries {
		e := &p.entries[ei]
		if e.kind != kProbe || probeConfirmed[ei] {
			continue
		}
		key := edgeKey(e.edgeOff, e.probeLeft)
		if prev, ok := st.edgeFailed[key]; !ok || e.size < prev {
			st.edgeFailed[key] = e.size
		}
	}
	// Append confirmed matches.
	for ci, ei := range st.candEntries {
		if !confirmed[ci] {
			continue
		}
		e := &p.entries[ei]
		st.matches = append(st.matches, match{
			serverOff: e.off,
			length:    e.size,
			clientOff: confirmedOff[ci],
		})
	}
	if st.cfg.MapMode == MapCDC {
		// Dead-zone bookkeeping: coalesce this round's candidate-less chunks
		// (they tile regions, so adjacent ones merge into maximal runs); any
		// run fully inside a run that already missed last level is declared
		// dead. Chunk boundaries do not nest across levels, so the sub-level
		// containment check needs the merged runs, not individual chunks.
		var miss []interval
		for ei := range p.entries {
			e := &p.entries[ei]
			if e.kind != kGlobal {
				continue
			}
			if _, ok := candSet[ei]; ok {
				continue
			}
			iv := interval{e.off, e.off + e.size}
			if k := len(miss) - 1; k >= 0 && miss[k].end == iv.start {
				miss[k].end = iv.end
			} else {
				miss = append(miss, iv)
			}
		}
		for _, iv := range miss {
			// Only long runs qualify: a chunk holding a single edit misses at
			// every level until the level isolates the edit, so short misses
			// must keep descending. A run of >= 16 chunk-widths that missed at
			// two consecutive levels means dozens of independent chunk lookups
			// all failed — that is new content, not misalignment.
			if iv.end-iv.start < 12*st.b {
				continue
			}
			for _, prev := range st.cdcMiss {
				if prev.start <= iv.start && iv.end <= prev.end {
					st.cdcDead = append(st.cdcDead, iv)
					break
				}
			}
		}
		st.cdcMiss = miss
	}
	st.coverCache = nil // cover dirty

	// Adaptive early stop.
	newCovered := st.coveredBytes() - st.coveredAtRound
	if st.cfg.Adaptive && st.b <= st.cfg.AdaptiveMinBlock {
		if float64(st.roundBits)/8 > st.cfg.AdaptiveFactor*float64(newCovered)+1 {
			st.done = true
		}
	}

	// Record the round for diagnostics.
	rs := RoundStats{
		Round:        st.round,
		BlockSize:    st.b,
		Candidates:   len(st.candEntries),
		CoveredBytes: st.coveredBytes(),
		NewBytes:     newCovered,
		Bits:         st.roundBits,
	}
	for i := range p.entries {
		switch p.entries[i].kind {
		case kGlobal:
			rs.Globals++
		case kTopUp:
			rs.TopUps++
		case kLocal:
			rs.Locals++
		case kProbe:
			rs.Probes++
		}
	}
	for _, c := range confirmed {
		if c {
			rs.Confirmed++
		}
	}
	st.rounds = append(st.rounds, rs)

	st.bitsSpent += st.roundBits
	st.roundBits = 0
	st.coveredAtRound = st.coveredBytes()

	// Advance the schedule. A probe-only (phase A) round holds the block
	// size; the paired global round follows.
	st.round++
	if p.phaseAOnly {
		st.phaseB = true
		st.lastProbeRanges = st.lastProbeRanges[:0]
		st.lastPhaseAConfirmed = st.lastPhaseAConfirmed[:0]
		for ei := range p.entries {
			e := &p.entries[ei]
			st.lastProbeRanges = append(st.lastProbeRanges, interval{e.off, e.off + e.size})
			if probeConfirmed[ei] {
				st.lastPhaseAConfirmed = append(st.lastPhaseAConfirmed, interval{e.off, e.off + e.size})
			}
		}
	} else if st.cfg.MapMode == MapCDC {
		// CDC schedule: halve the average chunk size each round. Below the
		// chunking floor rounds continue probe-only (extending confirmed
		// regions byte-accurately) down to the continuation minimum, exactly
		// as halving does below MinBlockSize.
		st.b /= 2
		if st.b < st.cfg.cdcMinSchedule() {
			st.done = true
		}
	} else {
		st.phaseB = false
		st.lastProbeRanges = nil
		st.lastPhaseAConfirmed = nil
		nextB := st.b / 2
		if nextB >= st.cfg.MinBlockSize {
			st.splitBlocks(nextB)
		} else {
			st.blocks = nil
		}
		st.b = nextB
		if st.b < st.cfg.minScheduleBlock() {
			st.done = true
		}
	}
	if st.coveredBytes() == st.n {
		st.done = true
	}
	st.plan = nil
	st.vplan = nil
	st.candEntries = nil
}

// siblingConfirmedInPhaseA reports whether the block's split sibling lies
// entirely inside a range the preceding probe half confirmed.
func (st *state) siblingConfirmedInPhaseA(b *blk) bool {
	if len(st.lastPhaseAConfirmed) == 0 || b.parentLen <= b.size {
		return false
	}
	var sib interval
	if b.isRight {
		sib = interval{b.off - (b.parentLen - b.size), b.off}
	} else {
		sib = interval{b.off + b.size, b.off + b.parentLen - b.size + b.size}
	}
	for _, iv := range st.lastPhaseAConfirmed {
		if iv.start <= sib.start && sib.end <= iv.end {
			return true
		}
	}
	return false
}

// splitBlocks halves blocks larger than nextB and drops covered ones.
func (st *state) splitBlocks(nextB int) {
	out := make([]blk, 0, len(st.blocks)*2)
	for i := range st.blocks {
		b := &st.blocks[i]
		if st.fullyCovered(b.off, b.size) {
			continue
		}
		if b.size <= nextB {
			out = append(out, *b)
			continue
		}
		left := blk{
			off: b.off, size: nextB,
			parentBits: b.hashBits, parentVal: b.hashVal, parentLen: b.size,
		}
		right := blk{
			off: b.off + nextB, size: b.size - nextB,
			parentBits: b.hashBits, parentVal: b.hashVal, parentLen: b.size,
			isRight: true,
		}
		if !st.fullyCovered(left.off, left.size) {
			out = append(out, left)
		}
		if right.size > 0 && !st.fullyCovered(right.off, right.size) {
			out = append(out, right)
		}
	}
	st.blocks = out
}

// Done reports whether map construction has finished for this file.
func (st *state) Done() bool { return st.done }

// MapBits reports the total map-construction wire bits spent so far.
func (st *state) MapBits() int64 { return st.bitsSpent }

// Matches reports the number of confirmed matches.
func (st *state) Matches() int { return len(st.matches) }

// Covered reports the covered byte count.
func (st *state) Covered() int { return st.coveredBytes() }

// Rounds returns per-round diagnostics for the rounds completed so far.
// Server and client produce identical records.
func (st *state) Rounds() []RoundStats { return st.rounds }
