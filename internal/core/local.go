package core

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"msync/internal/delta"
	"msync/internal/obs"
	"msync/internal/stats"
)

// LocalResult reports the outcome of an in-process synchronization.
type LocalResult struct {
	// Costs holds exact per-phase wire costs (section payload bytes).
	Costs stats.Costs
	// Output is the reconstructed current file.
	Output []byte
	// Rounds is the number of map-construction rounds executed.
	Rounds int
	// RoundDetails holds per-round diagnostics (entry mix, candidates,
	// confirmations, coverage growth, bits spent).
	RoundDetails []RoundStats
	// FellBack reports that the whole-file check failed and the file was
	// (virtually) retransmitted in full.
	FellBack bool
}

// SyncLocal runs the complete per-file protocol with both engines in
// process, returning exact wire costs. This is the workhorse of the
// experiment harness: it produces the same byte counts as a networked run
// minus collection-level framing. It is SyncLocalContext with a background
// context.
func SyncLocal(fOld, fNew []byte, cfg Config) (*LocalResult, error) {
	return SyncLocalContext(context.Background(), fOld, fNew, cfg)
}

// SyncLocalContext is SyncLocal with a cancellation checkpoint at every
// protocol round, so long experiment sweeps over large corpora can be
// aborted promptly.
func SyncLocalContext(ctx context.Context, fOld, fNew []byte, cfg Config) (*LocalResult, error) {
	return syncLocal(ctx, fOld, fNew, cfg, nil)
}

// SyncLocalTraced is SyncLocalContext with per-round trace events: one
// obs.PhaseCoreRound event per map-construction round (bytes each way,
// candidate/confirmation deltas, wall time) plus one obs.PhaseDelta event for
// the delta/fallback transfer and a closing obs.PhaseSession summary. A nil
// tracer degrades to exactly SyncLocalContext.
func SyncLocalTraced(ctx context.Context, fOld, fNew []byte, cfg Config, tr obs.Tracer) (*LocalResult, error) {
	return syncLocal(ctx, fOld, fNew, cfg, tr)
}

func syncLocal(ctx context.Context, fOld, fNew []byte, cfg Config, tr obs.Tracer) (*LocalResult, error) {
	srv, err := NewServerFile(fNew, &cfg)
	if err != nil {
		return nil, err
	}
	cli, err := NewClientFile(fOld, len(fNew), &cfg)
	if err != nil {
		return nil, err
	}
	res := &LocalResult{}

	// Tracing state; untouched (and unallocated) when tr is nil.
	var sid uint64
	var sessStart time.Time
	var prevCand, prevConf int64
	dirTotal := func(c *stats.Costs, d stats.Direction) int64 {
		var n int64
		for _, p := range []stats.Phase{stats.PhaseControl, stats.PhaseMap, stats.PhaseDelta, stats.PhaseFull} {
			n += c.Bytes(d, p)
		}
		return n
	}
	emit := func(phase string, round int, c0 stats.Costs, t0 time.Time) {
		tr.Emit(obs.Event{
			Time:       time.Now(),
			Session:    sid,
			Side:       "core",
			Phase:      phase,
			Round:      round,
			BytesUp:    dirTotal(&res.Costs, stats.C2S) - dirTotal(&c0, stats.C2S),
			BytesDown:  dirTotal(&res.Costs, stats.S2C) - dirTotal(&c0, stats.S2C),
			Dur:        time.Since(t0),
			Candidates: srv.CandidatesSeen - prevCand,
			Confirmed:  srv.MatchesConfirmed - prevConf,
		})
		prevCand = srv.CandidatesSeen
		prevConf = srv.MatchesConfirmed
	}
	if tr != nil {
		sid = obs.NextSessionID()
		sessStart = time.Now()
	}

	for srv.Active() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: sync cancelled: %w", err)
		}
		if !cli.Active() {
			return nil, fmt.Errorf("core: engine desync: server active, client done")
		}
		var roundCosts stats.Costs
		var roundStart time.Time
		if tr != nil {
			roundCosts = res.Costs
			roundStart = time.Now()
		}
		hashes := srv.EmitHashes()
		res.Costs.Add(stats.S2C, stats.PhaseMap, len(hashes))
		if err := cli.AbsorbHashes(hashes); err != nil {
			return nil, err
		}
		reply := cli.EmitReply()
		res.Costs.Add(stats.C2S, stats.PhaseMap, len(reply))
		more, err := srv.AbsorbReply(reply)
		if err != nil {
			return nil, err
		}
		res.Costs.Roundtrips++
		res.Rounds++
		for more {
			confirm := srv.EmitConfirm()
			res.Costs.Add(stats.S2C, stats.PhaseMap, len(confirm))
			cliMore, err := cli.AbsorbConfirm(confirm)
			if err != nil {
				return nil, err
			}
			if !cliMore {
				return nil, fmt.Errorf("core: engine desync: server expects batch, client done")
			}
			batch := cli.EmitBatch()
			res.Costs.Add(stats.C2S, stats.PhaseMap, len(batch))
			more, err = srv.AbsorbBatch(batch)
			if err != nil {
				return nil, err
			}
			res.Costs.Roundtrips++
		}
		if tr != nil {
			emit(obs.PhaseCoreRound, res.Rounds, roundCosts, roundStart)
		}
	}

	var deltaCosts stats.Costs
	var deltaStart time.Time
	if tr != nil {
		deltaCosts = res.Costs
		deltaStart = time.Now()
	}
	dl := srv.EmitDelta()
	res.Costs.Add(stats.S2C, stats.PhaseDelta, len(dl))
	res.Costs.Roundtrips++
	out, err := cli.ApplyDelta(dl)
	if err == ErrVerifyFailed {
		full := delta.Compress(fNew)
		res.Costs.Add(stats.S2C, stats.PhaseFull, len(full))
		res.Costs.FilesFull++
		res.FellBack = true
		out, err = delta.Decompress(full)
	}
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(out, fNew) {
		return nil, fmt.Errorf("core: reconstruction mismatch (internal error)")
	}
	res.Output = out
	res.RoundDetails = srv.Rounds()
	res.Costs.FilesSynced = 1
	if cfg.MapMode == MapCDC {
		res.Costs.FilesCDC = 1
		res.Costs.CDCChunks = srv.CDCChunks + cli.CDCChunks
	}
	res.Costs.HashesSent = srv.HashesSent
	res.Costs.CandidatesFound = srv.CandidatesSeen
	res.Costs.MatchesConfirmed = srv.MatchesConfirmed
	res.Costs.FalseCandidates = srv.CandidatesSeen - srv.MatchesConfirmed
	if tr != nil {
		emit(obs.PhaseDelta, 0, deltaCosts, deltaStart)
		var zero stats.Costs
		prevCand, prevConf = 0, 0
		emit(obs.PhaseSession, res.Rounds, zero, sessStart)
	}
	return res, nil
}
