package core

import (
	"bytes"
	"math/rand"
	"testing"

	"msync/internal/corpus"
)

// TestPickBasisPrefersRelatedFile: among several candidate bases for the
// same incoming file, PickBasis must select the one sharing content with
// it, and the chosen engine must then drive the protocol to an exact
// reconstruction with a small delta.
func TestPickBasisPrefersRelatedFile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	related := corpus.SourceText(rng, 32_000)
	em := corpus.EditModel{BurstsPer32KB: 3, BurstEdits: 3, EditSize: 40, BurstSpread: 300}
	fNew := em.Apply(rng, related)
	junk := corpus.RandomText(rng, 32_000)

	cfg := DefaultConfig()
	srv, err := NewServerFile(fNew, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(basis []byte) *ClientFile {
		cf, err := NewClientFile(basis, len(fNew), &cfg)
		if err != nil {
			t.Fatal(err)
		}
		return cf
	}
	cands := []*ClientFile{mk(junk), mk(related), mk(nil)}

	hashes := srv.EmitHashes()
	cli, err := PickBasis(cands, hashes)
	if err != nil {
		t.Fatal(err)
	}
	if cli != cands[1] {
		t.Fatal("PickBasis did not choose the related basis")
	}

	// Finish the protocol with the winner: first round is already absorbed.
	deltaBytes := 0
	for {
		reply := cli.EmitReply()
		more, err := srv.AbsorbReply(reply)
		if err != nil {
			t.Fatal(err)
		}
		for more {
			cliMore, err := cli.AbsorbConfirm(srv.EmitConfirm())
			if err != nil {
				t.Fatal(err)
			}
			if !cliMore {
				t.Fatal("engine desync")
			}
			more, err = srv.AbsorbBatch(cli.EmitBatch())
			if err != nil {
				t.Fatal(err)
			}
		}
		if !srv.Active() {
			break
		}
		if err := cli.AbsorbHashes(srv.EmitHashes()); err != nil {
			t.Fatal(err)
		}
	}
	dl := srv.EmitDelta()
	deltaBytes = len(dl)
	out, err := cli.ApplyDelta(dl)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, fNew) {
		t.Fatal("reconstruction mismatch over alternate basis")
	}
	if deltaBytes > len(fNew)/4 {
		t.Fatalf("delta %d bytes over a related basis (file %d)", deltaBytes, len(fNew))
	}
}

// TestPickBasisDeterministicTies: identical candidates tie; the earliest
// must win every time.
func TestPickBasisDeterministicTies(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	fNew := corpus.SourceText(rng, 8_000)
	cfg := DefaultConfig()
	srv, err := NewServerFile(fNew, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	hashes := srv.EmitHashes()
	for trial := 0; trial < 3; trial++ {
		var cands []*ClientFile
		for i := 0; i < 3; i++ {
			cf, err := NewClientFile(fNew, len(fNew), &cfg)
			if err != nil {
				t.Fatal(err)
			}
			cands = append(cands, cf)
		}
		win, err := PickBasis(cands, hashes)
		if err != nil {
			t.Fatal(err)
		}
		if win != cands[0] {
			t.Fatalf("trial %d: tie broke away from the first candidate", trial)
		}
	}
}
