package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// cdcConfig is DefaultConfig in CDC map-construction mode.
func cdcConfig() Config {
	cfg := DefaultConfig()
	cfg.MapMode = MapCDC
	return cfg
}

func TestParseMapMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want MapMode
	}{{"", MapHalving}, {"halving", MapHalving}, {"cdc", MapCDC}} {
		got, err := ParseMapMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseMapMode(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseMapMode("bogus"); err == nil {
		t.Error("ParseMapMode(bogus): no error")
	}
	if MapCDC.String() != "cdc" || MapHalving.String() != "halving" {
		t.Errorf("String(): %q, %q", MapCDC, MapHalving)
	}
}

func TestConfigValidateMapMode(t *testing.T) {
	cfg := cdcConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("CDC default config invalid: %v", err)
	}
	cfg.MapMode = MapMode(7)
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown MapMode validated")
	}
}

func TestSyncLocalCDCConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	old := textLike(rng, 100_000)
	cur := mutate(old, 20, 50, rng)

	res, err := SyncLocal(old, cur, cdcConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Output, cur) {
		t.Fatal("reconstruction mismatch")
	}
	if res.Costs.FilesCDC != 1 {
		t.Errorf("FilesCDC = %d, want 1", res.Costs.FilesCDC)
	}
	if res.Costs.CDCChunks == 0 {
		t.Error("CDCChunks = 0, want > 0")
	}
	if total := res.Costs.Total(); total >= int64(len(cur)) {
		t.Errorf("sync cost %d not below file size %d", total, len(cur))
	}
	t.Logf("cdc: %d bytes total, %d rounds, %d chunks hashed",
		res.Costs.Total(), res.Rounds, res.Costs.CDCChunks)
}

func TestSyncLocalCDCEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	big := randBytes(rng, 60_000)
	cases := [][2][]byte{
		{nil, nil},
		{nil, []byte("hello")},
		{[]byte("hello"), nil},
		{[]byte("hello"), []byte("world")},
		{nil, big},       // no old file at all
		{big, big},       // identical
		{big[:100], big}, // tiny basis
		{big, append([]byte("prefix-shift"), big...)}, // pure prefix insert
	}
	for i, c := range cases {
		res, err := SyncLocal(c[0], c[1], cdcConfig())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(res.Output, c[1]) {
			t.Fatalf("case %d: mismatch", i)
		}
	}
}

// TestSyncLocalCDCDeterministic pins that a CDC session's wire output does
// not depend on the worker count or the run (the shared-state invariant the
// whole protocol rests on).
func TestSyncLocalCDCDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	old := randBytes(rng, 150_000)
	cur := mutate(old, 30, 200, rng)

	var ref *LocalResult
	for _, workers := range []int{1, 1, 4} {
		cfg := cdcConfig()
		cfg.Workers = workers
		res, err := SyncLocal(old, cur, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Costs.Total() != ref.Costs.Total() || res.Rounds != ref.Rounds {
			t.Fatalf("workers=%d: %d bytes / %d rounds, want %d / %d",
				workers, res.Costs.Total(), res.Rounds, ref.Costs.Total(), ref.Rounds)
		}
	}
}

// TestSyncLocalCDCShiftAdvantage demonstrates the point of the mode: under
// insertion-heavy edits (every fixed block boundary after the first insert
// shifts) CDC map construction transfers fewer total wire bytes than
// recursive halving.
func TestSyncLocalCDCShiftAdvantage(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	old := randBytes(rng, 256_000)
	// A handful of small insertions sprinkled through the file: almost all
	// content survives, but every fixed boundary downstream of the first
	// insertion is misaligned.
	cur := append([]byte(nil), old...)
	for i := 0; i < 8; i++ {
		pos := (i + 1) * len(cur) / 10
		ins := randBytes(rng, 3)
		cur = append(cur[:pos], append(ins, cur[pos:]...)...)
	}

	halving, err := SyncLocal(old, cur, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cdcRes, err := SyncLocal(old, cur, cdcConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("halving: %d bytes / %d rounds; cdc: %d bytes / %d rounds",
		halving.Costs.Total(), halving.Rounds, cdcRes.Costs.Total(), cdcRes.Rounds)
	if cdcRes.Costs.Total() >= halving.Costs.Total() {
		t.Errorf("cdc total %d not below halving total %d on shift-heavy edits",
			cdcRes.Costs.Total(), halving.Costs.Total())
	}
}
