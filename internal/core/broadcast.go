package core

import (
	"bytes"
	"fmt"

	"msync/internal/delta"
	"msync/internal/stats"
)

// BroadcastResult reports a one-to-many synchronization.
type BroadcastResult struct {
	// Outputs holds each client's reconstructed file.
	Outputs [][]byte
	// SharedBytes is the hash payload transmitted once for all clients
	// (broadcast/multicast); UnicastBytes sums the per-client replies and
	// deltas.
	SharedBytes, UnicastBytes int64
	// PerClient is each client's individual cost accounting, counting the
	// shared payload once per client (what a unicast fallback would pay).
	PerClient []stats.Costs
}

// Total reports broadcast bytes: the shared payload once plus all unicast
// traffic.
func (r *BroadcastResult) Total() int64 { return r.SharedBytes + r.UnicastBytes }

// UnicastTotal reports what the same transfers would cost without broadcast
// (the shared payload repeated per client).
func (r *BroadcastResult) UnicastTotal() int64 {
	return r.SharedBytes*int64(len(r.Outputs)) + r.UnicastBytes
}

// BroadcastSync synchronizes one current file to many clients holding
// different outdated versions, transmitting the hash payload once for all
// of them — the paper's §7 "asymmetric cases, e.g., in cases with server
// broadcast capability".
//
// The configuration must be single-round (OneShotConfig): with exactly one
// round and one verification batch, the server's hash stream does not
// depend on client feedback, so every client can consume the same bytes.
// Per-client traffic is reduced to the candidate/verification reply and the
// individual delta.
func BroadcastSync(fNew []byte, olds [][]byte, cfg Config) (*BroadcastResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxBlockSize != cfg.MinBlockSize || cfg.ContMinBlock != 0 || cfg.Verify.Batches != 1 {
		return nil, fmt.Errorf("core: broadcast requires a one-shot configuration " +
			"(single round, no continuation, one verification batch)")
	}
	res := &BroadcastResult{
		Outputs:   make([][]byte, len(olds)),
		PerClient: make([]stats.Costs, len(olds)),
	}

	// Per-client engine pairs. The emitted hash payload is deterministic in
	// (fNew, cfg), so engine 0's bytes serve every client; the remaining
	// engines' emissions are asserted identical.
	var shared []byte
	servers := make([]*ServerFile, len(olds))
	for i := range olds {
		srv, err := NewServerFile(fNew, &cfg)
		if err != nil {
			return nil, err
		}
		servers[i] = srv
		if !srv.Active() {
			continue
		}
		payload := srv.EmitHashes()
		if shared == nil {
			shared = payload
		} else if !bytes.Equal(shared, payload) {
			return nil, fmt.Errorf("core: broadcast hash streams diverged (internal error)")
		}
	}
	res.SharedBytes = int64(len(shared))

	for i, old := range olds {
		cli, err := NewClientFile(old, len(fNew), &cfg)
		if err != nil {
			return nil, err
		}
		costs := &res.PerClient[i]
		costs.Add(stats.S2C, stats.PhaseMap, len(shared))
		if servers[i].Active() {
			if err := cli.AbsorbHashes(shared); err != nil {
				return nil, fmt.Errorf("core: client %d: %w", i, err)
			}
			reply := cli.EmitReply()
			costs.Add(stats.C2S, stats.PhaseMap, len(reply))
			res.UnicastBytes += int64(len(reply))
			more, err := servers[i].AbsorbReply(reply)
			if err != nil {
				return nil, fmt.Errorf("core: client %d: %w", i, err)
			}
			if more {
				return nil, fmt.Errorf("core: broadcast verification demanded a second batch (internal error)")
			}
		}
		dl := servers[i].EmitDelta()
		costs.Add(stats.S2C, stats.PhaseDelta, len(dl))
		res.UnicastBytes += int64(len(dl))
		costs.Roundtrips = 2
		out, err := cli.ApplyDelta(dl)
		if err == ErrVerifyFailed {
			full := delta.Compress(fNew)
			costs.Add(stats.S2C, stats.PhaseFull, len(full))
			res.UnicastBytes += int64(len(full))
			out, err = delta.Decompress(full)
		}
		if err != nil {
			return nil, fmt.Errorf("core: client %d: %w", i, err)
		}
		res.Outputs[i] = out
	}
	return res, nil
}
