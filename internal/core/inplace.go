package core

import (
	"fmt"
	"sort"

	"msync/internal/bitio"
	"msync/internal/delta"
	"msync/internal/inplace"
	"msync/internal/md4"
)

// ApplyDeltaInPlace is ApplyDelta reconstructing the current file inside the
// old file's buffer (in the manner of Rasch/Burns in-place rsync, which the
// paper cites): confirmed matches become in-place copy operations, decoded
// gaps become literals, and the planner in internal/inplace orders them so
// no copy's source is clobbered early. The old buffer is consumed; the
// returned slice may alias it. Stats report the planner's extra space.
func (c *ClientFile) ApplyDeltaInPlace(payload []byte) ([]byte, inplace.Stats, error) {
	var st inplace.Stats
	r := bitio.NewReader(payload)
	if err := c.finalizePending(r); err != nil {
		return nil, st, err
	}
	r.Align()
	wantSum, err := r.ReadBytes(md4.Size)
	if err != nil {
		return nil, st, fmt.Errorf("core: delta header: %w", err)
	}
	enc, err := r.ReadBytes(r.BitsRemaining() / 8)
	if err != nil {
		return nil, st, fmt.Errorf("core: delta payload: %w", err)
	}

	// The reference must be assembled from the old file BEFORE any in-place
	// write happens.
	cover := c.coverIntervals()
	sorted := append([]match(nil), c.matches...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].serverOff < sorted[j].serverOff })

	// materialize yields (writeOff, readOff, len) pieces tiling [s, e).
	pieces := func(s, e int, emit func(w, rd, l int)) error {
		pos := s
		mi := sort.Search(len(sorted), func(i int) bool {
			return sorted[i].serverOff+sorted[i].length > pos
		})
		for pos < e {
			for mi < len(sorted) && sorted[mi].serverOff+sorted[mi].length <= pos {
				mi++
			}
			if mi >= len(sorted) || sorted[mi].serverOff > pos {
				return fmt.Errorf("core: cover gap at %d (internal error)", pos)
			}
			m := sorted[mi]
			l := m.serverOff + m.length - pos
			if pos+l > e {
				l = e - pos
			}
			emit(pos, m.clientOff+(pos-m.serverOff), l)
			pos += l
		}
		return nil
	}

	var ref []byte
	for _, iv := range cover {
		if err := pieces(iv.start, iv.end, func(_, rd, l int) {
			ref = append(ref, c.fOld[rd:rd+l]...)
		}); err != nil {
			return nil, st, err
		}
	}
	target, err := delta.Decode(ref, enc)
	if err != nil {
		return nil, st, fmt.Errorf("core: delta decode: %w", err)
	}

	// Build the in-place patch: copies for covered pieces, literals for gaps.
	var ops []inplace.Op
	for _, iv := range cover {
		if err := pieces(iv.start, iv.end, func(w, rd, l int) {
			ops = append(ops, inplace.Op{WriteOff: w, ReadOff: rd, Len: l})
		}); err != nil {
			return nil, st, err
		}
	}
	pos := 0
	for _, g := range c.gaps() {
		gl := g.end - g.start
		if pos+gl > len(target) {
			return nil, st, fmt.Errorf("core: delta target too short")
		}
		ops = append(ops, inplace.Op{WriteOff: g.start, Data: target[pos : pos+gl]})
		pos += gl
	}
	if pos != len(target) {
		return nil, st, fmt.Errorf("core: delta target length mismatch")
	}

	out, st, err := inplace.Apply(c.fOld, ops, c.n)
	if err != nil {
		return nil, st, err
	}
	c.fOld = nil // consumed
	got := md4.Sum(out)
	if string(got[:]) != string(wantSum) {
		return nil, st, ErrVerifyFailed
	}
	return out, st, nil
}
