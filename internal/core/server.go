package core

import (
	"errors"
	"fmt"
	"math/bits"

	"msync/internal/bitio"
	"msync/internal/cdc"
	"msync/internal/delta"
	"msync/internal/gtest"
	"msync/internal/md4"
	"msync/internal/rolling"
	"msync/internal/sigcache"
)

// ErrProtocol reports a malformed or out-of-order message.
var ErrProtocol = errors.New("core: protocol error")

// ServerFile is the per-file engine on the side holding the current version.
type ServerFile struct {
	state
	fNew []byte
	fam  rolling.Family

	// pendingConfirm holds the final batch's results, piggybacked onto the
	// next round's hash message (or the delta message).
	pendingConfirm []bool
	// lastResults holds intermediate batch results for EmitConfirm.
	lastResults []bool
	morePending bool

	// sig, when set, memoizes the whole-file sum and per-round block-hash
	// levels across sessions (see UseSignature).
	sig *sigcache.Sig

	// Counters for stats.
	HashesSent       int64
	CandidatesSeen   int64
	MatchesConfirmed int64
	// BlockHashesComputed counts block/probe hashes actually computed this
	// session (signature hits avoid them); BytesHashed the bytes fed through
	// the hash function for them.
	BlockHashesComputed int64
	BytesHashed         int64
	// CDCChunks counts content-defined chunks hashed in MapCDC rounds.
	CDCChunks int64
}

// NewServerFile starts the server engine for one file.
func NewServerFile(fNew []byte, cfg *Config) (*ServerFile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &ServerFile{fNew: fNew, fam: cfg.hashFamily()}
	s.initState(cfg, len(fNew))
	return s, nil
}

// Active reports whether this file still participates in map rounds.
func (s *ServerFile) Active() bool { return !s.done }

// UseSignature attaches a cached signature for fNew. The signature must have
// been computed over the same bytes (callers key it by path, size, mtime and
// config fingerprint); its memoized levels then replace block hashing, and
// its whole-file sum replaces the delta-phase MD4 pass. A nil sig is a no-op.
// Hash values served from the signature are identical to freshly computed
// ones, so wire output does not depend on whether a signature is attached.
func (s *ServerFile) UseSignature(sig *sigcache.Sig) {
	if sig == nil || int(sig.Len) != s.n {
		return
	}
	s.sig = sig
}

// computeLevel hashes every schedule block of size b: by the splitting
// invariant each non-probe plan entry at round b is exactly
// [k*b, min((k+1)*b, n)), so this one table serves global, top-up and local
// entries at any session's round b for this file.
func computeLevel(data []byte, fam rolling.Family, b int) []uint64 {
	n := len(data)
	count := (n + b - 1) / b
	out := make([]uint64, count)
	for k := 0; k < count; k++ {
		lo, hi := k*b, k*b+b
		if hi > n {
			hi = n
		}
		out[k] = fam.Hash(data[lo:hi])
	}
	return out
}

// levelForRound returns the memoized hash table for the current round's
// block size, or nil when no signature is attached.
func (s *ServerFile) levelForRound() []uint64 {
	if s.sig == nil || s.b <= 0 {
		return nil
	}
	return s.sig.Level(s.b, func() []uint64 {
		s.BlockHashesComputed += int64((s.n + s.b - 1) / s.b)
		s.BytesHashed += int64(s.n)
		return computeLevel(s.fNew, s.fam, s.b)
	})
}

// PrecomputeSignature builds a complete signature for data under cfg: the
// whole-file MD4 sum plus every global-round level table the schedule can
// ask for. Used to warm caches ahead of time (benchmarks, prefetchers);
// sessions built lazily via UseSignature converge to the same state.
func PrecomputeSignature(data []byte, cfg *Config) (*sigcache.Sig, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sig := sigcache.NewSig(int64(len(data)), md4.Sum(data))
	fam := cfg.hashFamily()
	for b := cfg.initialBlockSize(len(data)); b >= cfg.MinBlockSize; b /= 2 {
		blockSize := b
		sig.Level(blockSize, func() []uint64 { return computeLevel(data, fam, blockSize) })
	}
	return sig, nil
}

// EmitHashes builds the round plan and writes the round's hash section:
// pending confirm bits followed by one hash per planned entry.
func (s *ServerFile) EmitHashes() []byte {
	if s.cfg.MapMode == MapCDC {
		return s.emitHashesCDC()
	}
	w := bitio.NewWriter(64)
	for _, r := range s.pendingConfirm {
		w.WriteBit(r)
	}
	s.pendingConfirm = nil

	s.plan = s.buildPlan()
	hb := s.cfg.hashBits(s.n, s.b)
	var level []uint64
	if s.sig != nil {
		for i := range s.plan.entries {
			if s.plan.entries[i].kind != kProbe {
				level = s.levelForRound()
				break
			}
		}
	}
	for i := range s.plan.entries {
		e := &s.plan.entries[i]
		var full uint64
		if e.kind != kProbe && level != nil {
			full = level[e.off/s.b]
		} else {
			// Probes sit at session-dependent gap edges; always fresh.
			full = s.fam.Hash(s.fNew[e.off : e.off+e.size])
			s.BlockHashesComputed++
			s.BytesHashed += int64(e.size)
		}
		switch e.kind {
		case kTopUp:
			eff := uint(hb) - uint(e.bits)
			w.WriteBits(rolling.Truncate(full, uint(hb))>>eff, uint(e.bits))
		default:
			w.WriteBits(rolling.Truncate(full, uint(e.bits)), uint(e.bits))
		}
		if e.kind != kProbe {
			// Record what the client now knows about this block.
			bl := &s.blocks[e.blockIdx]
			bl.hashBits = s.entryTotalBits(e)
			bl.hashVal = full
		}
	}
	s.HashesSent += int64(len(s.plan.entries))
	return w.Bytes()
}

// emitHashesCDC writes a CDC round's hash section: pending confirm bits;
// then — per chunk region (uncovered gaps minus this round's probe ranges,
// in file order) — the content-defined chunk lengths of the region's bytes;
// then one truncated hash per plan entry (continuation probes at ContBits,
// chunks at the round's global width). Probes derive from shared state
// exactly as in halving rounds, but chunk boundaries depend on server
// content, so the chunk structure itself travels in the payload; the client
// rebuilds the identical plan from the lengths (absorbHashesCDC) and
// everything downstream — candidate bitmap, group-testing verification,
// retry alternates, delta — is shared code.
func (s *ServerFile) emitHashesCDC() []byte {
	w := bitio.NewWriter(64)
	for _, r := range s.pendingConfirm {
		w.WriteBit(r)
	}
	s.pendingConfirm = nil

	p, regions := s.cdcPlanBase()
	nProbes := len(p.entries)
	params := s.cfg.cdcParams(s.b)
	lenBits := uint(bits.Len(uint(params.Max - params.Min)))
	hb := s.cfg.cdcHashBits(s.n, s.b)
	var mapBits int64
	for _, g := range regions {
		cuts, err := cdc.CutsE(s.fNew[g.start:g.end], params)
		if err != nil {
			panic("core: validated config yielded bad cdc params: " + err.Error())
		}
		// Chunk lengths travel biased by Min (every chunk but a region's last
		// is at least Min long), and the last length not at all — it is
		// implied by the region end the client already knows, once the count
		// field says how many lengths to expect.
		if cb := cdcCountBits(g.end-g.start, params.Min); cb > 0 {
			w.WriteBits(uint64(len(cuts)-1), cb)
			mapBits += int64(cb)
		}
		start := g.start
		for i, cut := range cuts {
			end := g.start + cut
			if i < len(cuts)-1 {
				w.WriteBits(uint64(end-start-params.Min), lenBits)
				mapBits += int64(lenBits)
			}
			p.entries = append(p.entries, entry{
				kind: kGlobal, bits: uint8(hb),
				blockIdx: -1, off: start, size: end - start,
				matchIdx: -1, matchIdx2: -1,
			})
			start = end
		}
	}
	for i := range p.entries {
		e := &p.entries[i]
		full := s.fam.Hash(s.fNew[e.off : e.off+e.size])
		s.BlockHashesComputed++
		s.BytesHashed += int64(e.size)
		w.WriteBits(rolling.Truncate(full, uint(e.bits)), uint(e.bits))
	}
	nChunks := len(p.entries) - nProbes
	s.CDCChunks += int64(nChunks)
	s.HashesSent += int64(len(p.entries))
	s.roundBits += mapBits + int64(nChunks)*int64(hb)
	s.plan = p
	return w.Bytes()
}

// AbsorbReply processes the client's candidate bitmap and first verification
// batch. It returns true when more verification batches are pending.
func (s *ServerFile) AbsorbReply(payload []byte) (more bool, err error) {
	if s.plan == nil {
		return false, fmt.Errorf("%w: reply without a round in flight", ErrProtocol)
	}
	r := bitio.NewReader(payload)
	s.candEntries = s.candEntries[:0]
	for i := range s.plan.entries {
		bit, err := r.ReadBit()
		if err != nil {
			return false, fmt.Errorf("core: candidate bitmap: %w", err)
		}
		if bit {
			s.candEntries = append(s.candEntries, i)
		}
	}
	s.noteReplyBitmap()
	s.CandidatesSeen += int64(len(s.candEntries))
	s.vplan = gtest.NewPlan(s.candidateClasses(), s.cfg.Verify)
	return s.absorbBatchHashes(r)
}

// AbsorbBatch processes a subsequent verification batch.
func (s *ServerFile) AbsorbBatch(payload []byte) (more bool, err error) {
	if s.vplan == nil || !s.morePending {
		return false, fmt.Errorf("%w: unexpected verification batch", ErrProtocol)
	}
	return s.absorbBatchHashes(bitio.NewReader(payload))
}

// absorbBatchHashes reads and checks the current batch's test hashes. All
// bits are read serially first (the reader is a sequential bitstream), then
// the expected hashes are computed through the worker pool and compared.
func (s *ServerFile) absorbBatchHashes(r *bitio.Reader) (bool, error) {
	groups := s.vplan.Groups()
	got := make([]uint64, len(groups))
	for gi := range groups {
		v, err := r.ReadBits(s.cfg.VerifyBits)
		if err != nil {
			return false, fmt.Errorf("core: verification hashes: %w", err)
		}
		got[gi] = v
	}
	want := verifyGroupSums(s.cfg.Workers, s.cfg.VerifyBits, groups, func(cand int) []byte {
		e := &s.plan.entries[s.candEntries[cand]]
		return s.fNew[e.off : e.off+e.size]
	})
	results := make([]bool, len(groups))
	for gi := range groups {
		results[gi] = got[gi] == want[gi]
	}
	s.noteBatch(len(groups))
	more := s.vplan.Absorb(results)
	s.lastResults = results
	s.morePending = more
	if !more {
		s.finalizeRound()
	}
	return more, nil
}

// EmitConfirm writes the intermediate confirm bitmap for the last batch.
func (s *ServerFile) EmitConfirm() []byte {
	w := bitio.NewWriter(8)
	for _, r := range s.lastResults {
		w.WriteBit(r)
	}
	return w.Bytes()
}

// finalizeRound applies verification outcomes and advances shared state.
func (s *ServerFile) finalizeRound() {
	confirmed := s.vplan.Confirmed()
	offs := make([]int, len(confirmed)) // server never needs client offsets
	n := 0
	for _, c := range confirmed {
		if c {
			n++
		}
	}
	s.MatchesConfirmed += int64(n)
	s.pendingConfirm = s.lastResults
	s.lastResults = nil
	s.finishRound(confirmed, offs)
}

// EmitDelta produces the final per-file delta section: any pending confirm
// bits, the whole-file strong hash, and the delta of the unknown gaps
// encoded against the known (covered) bytes.
func (s *ServerFile) EmitDelta() []byte {
	w := bitio.NewWriter(256)
	for _, r := range s.pendingConfirm {
		w.WriteBit(r)
	}
	s.pendingConfirm = nil
	w.Align()

	var ref, target []byte
	for _, iv := range s.coverIntervals() {
		ref = append(ref, s.fNew[iv.start:iv.end]...)
	}
	for _, g := range s.gaps() {
		target = append(target, s.fNew[g.start:g.end]...)
	}
	var sum [md4.Size]byte
	if s.sig != nil {
		sum = s.sig.Sum
	} else {
		sum = md4.Sum(s.fNew)
		s.BytesHashed += int64(s.n)
	}
	w.WriteBytes(sum[:])
	w.WriteBytes(delta.Encode(ref, target))
	return w.Bytes()
}
