package core

// PickBasis chooses the best old-file basis among several candidate client
// engines for the same incoming file — the cross-file matching path, where
// a tree-mode client seeds a renamed-and-edited file's engine from
// alternate local files instead of the (missing) same-path content.
//
// Every candidate absorbs the identical first-round hash payload and is
// scored on its candidate block matches. First-round hashes are short, so
// a raw match count barely separates a related file from noise (random
// content weak-matches coarse hashes everywhere); the primary score is
// therefore ALIGNED matches — entries with a candidate source offset
// within one block of the entry's target offset, the diagonal a
// moved-then-edited file produces — with the raw count as tiebreak and
// remaining ties broken to the earliest candidate, so the choice is
// deterministic for any worker count.
//
// The winner has already absorbed the round and is ready to EmitReply;
// losers are simply dropped. The map protocol is basis-agnostic — the
// server never learns which basis the client chose — so the substitution
// is invisible on the wire beyond the better match rate.
func PickBasis(cands []*ClientFile, payload []byte) (*ClientFile, error) {
	best, bestAligned, bestTotal := -1, -1, -1
	var firstErr error
	for i, c := range cands {
		if err := c.AbsorbHashes(payload); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		aligned := 0
		for k, ei := range c.candEntries {
			e := &c.plan.entries[ei]
			tol := e.size
			if tol < 1 {
				tol = 1
			}
			for _, off := range c.candAlts[k] {
				if d := int(off) - e.off; d >= -tol && d <= tol {
					aligned++
					break
				}
			}
		}
		if total := len(c.candEntries); aligned > bestAligned ||
			(aligned == bestAligned && total > bestTotal) {
			best, bestAligned, bestTotal = i, aligned, total
		}
	}
	if best < 0 {
		return nil, firstErr
	}
	return cands[best], nil
}
