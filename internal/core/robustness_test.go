package core

import (
	"bytes"
	"math/rand"
	"testing"

	"msync/internal/corpus"
)

// TestPlanDeterminism: server and client must derive byte-identical round
// plans from shared state — the protocol's lockstep invariant. We verify by
// instrumenting both engines mid-protocol.
func TestPlanDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	old := corpus.SourceText(rng, 80_000)
	em := corpus.EditModel{BurstsPer32KB: 5, BurstEdits: 5, EditSize: 60, BurstSpread: 400}
	cur := em.Apply(rng, old)

	cfg := DefaultConfig()
	srv, err := NewServerFile(cur, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClientFile(old, len(cur), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	round := 0
	for srv.Active() {
		hashes := srv.EmitHashes()
		if err := cli.AbsorbHashes(hashes); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Both sides now hold this round's plan; compare structure.
		sp, cp := srv.plan, cli.plan
		if len(sp.entries) != len(cp.entries) {
			t.Fatalf("round %d: entry counts differ: %d vs %d", round, len(sp.entries), len(cp.entries))
		}
		for i := range sp.entries {
			se, ce := sp.entries[i], cp.entries[i]
			if se.kind != ce.kind || se.bits != ce.bits || se.off != ce.off || se.size != ce.size ||
				se.matchIdx != ce.matchIdx || se.matchIdx2 != ce.matchIdx2 || se.siblingIdx != ce.siblingIdx {
				t.Fatalf("round %d entry %d differs:\nserver %+v\nclient %+v", round, i, se, ce)
			}
		}
		if sp.b != cp.b {
			t.Fatalf("round %d: block sizes differ: %d vs %d", round, sp.b, cp.b)
		}
		more, err := srv.AbsorbReply(cli.EmitReply())
		if err != nil {
			t.Fatal(err)
		}
		for more {
			cliMore, err := cli.AbsorbConfirm(srv.EmitConfirm())
			if err != nil {
				t.Fatal(err)
			}
			if !cliMore {
				break
			}
			if more, err = srv.AbsorbBatch(cli.EmitBatch()); err != nil {
				t.Fatal(err)
			}
		}
		round++
	}
	out, err := cli.ApplyDelta(srv.EmitDelta())
	if err != nil || !bytes.Equal(out, cur) {
		t.Fatalf("final reconstruction: err=%v", err)
	}
	// After the client absorbs the final piggybacked confirms, the shared
	// bit accounting must agree exactly (the sides finalize at different
	// message boundaries, so only the final totals are comparable).
	if srv.bitsSpent != cli.bitsSpent {
		t.Fatalf("final bit accounting diverged: %d vs %d", srv.bitsSpent, cli.bitsSpent)
	}
	if len(srv.matches) != len(cli.matches) {
		t.Fatalf("match counts differ: %d vs %d", len(srv.matches), len(cli.matches))
	}
	for i := range srv.matches {
		if srv.matches[i].serverOff != cli.matches[i].serverOff ||
			srv.matches[i].length != cli.matches[i].length {
			t.Fatalf("match %d differs", i)
		}
	}
}

// TestGarbagePayloadsDoNotPanic feeds random bytes into every absorb entry
// point; errors are fine, panics are not.
func TestGarbagePayloadsDoNotPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	cfg := DefaultConfig()
	for trial := 0; trial < 200; trial++ {
		garbage := make([]byte, rng.Intn(200))
		rng.Read(garbage)

		cli, err := NewClientFile(corpus.SourceText(rng, 5000), 5000, &cfg)
		if err != nil {
			t.Fatal(err)
		}
		_ = cli.AbsorbHashes(garbage)

		srv, err := NewServerFile(corpus.SourceText(rng, 5000), &cfg)
		if err != nil {
			t.Fatal(err)
		}
		_ = srv.EmitHashes()
		_, _ = srv.AbsorbReply(garbage)

		cli2, err := NewClientFile(corpus.SourceText(rng, 5000), 5000, &cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cli2.ApplyDelta(garbage); err == nil {
			t.Fatal("garbage delta accepted")
		}
	}
}

// TestInterruptedSessionState: absorbing a valid round then garbage must
// error out, not corrupt the engine into a panic on further use.
func TestInterruptedSessionState(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	old := corpus.SourceText(rng, 20_000)
	cur := corpus.EditModel{BurstsPer32KB: 3, BurstEdits: 3, EditSize: 40, BurstSpread: 200}.Apply(rng, old)
	cfg := DefaultConfig()
	srv, _ := NewServerFile(cur, &cfg)
	cli, _ := NewClientFile(old, len(cur), &cfg)

	if err := cli.AbsorbHashes(srv.EmitHashes()); err != nil {
		t.Fatal(err)
	}
	reply := cli.EmitReply()
	// Corrupt the reply; the server must reject or mis-verify but not panic.
	bad := append([]byte(nil), reply...)
	if len(bad) > 0 {
		bad[len(bad)/2] ^= 0xFF
	}
	_, _ = srv.AbsorbReply(bad)
}

// TestZeroCandidateRounds: files with nothing in common still march through
// all rounds without candidates and fall back to pure delta.
func TestZeroCandidateRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	old := corpus.RandomText(rng, 30_000)
	cur := corpus.RandomText(rng, 30_000)
	res, err := SyncLocal(old, cur, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Output, cur) {
		t.Fatal("mismatch")
	}
	if res.Costs.MatchesConfirmed > 5 {
		t.Fatalf("%d spurious matches between random files", res.Costs.MatchesConfirmed)
	}
}

// TestManySmallEditsWorstCase: one edit per block is rsync's worst case
// (paper §2.3); msync should still reconstruct and not exceed the
// compressed full-transfer cost by much.
func TestManySmallEditsWorstCase(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	old := corpus.SourceText(rng, 100_000)
	cur := append([]byte(nil), old...)
	// Flip one byte in every 700-byte block.
	for i := 350; i < len(cur); i += 700 {
		cur[i] ^= 0x55
	}
	res, err := SyncLocal(old, cur, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Output, cur) {
		t.Fatal("mismatch")
	}
	t.Logf("scattered single-byte edits: %d bytes (%.1f%% of file)",
		res.Costs.Total(), 100*float64(res.Costs.Total())/float64(len(cur)))
	// Continuation probes should still recover much of the file.
	if res.Costs.Total() > int64(len(cur))/2 {
		t.Errorf("cost %d too close to full size", res.Costs.Total())
	}
}
