// Package core implements the paper's primary contribution: the two-phase
// file synchronization framework (map construction + delta compression) with
// recursive block splitting, optimized group-testing match verification,
// continuation and local hashes, and decomposable hash functions.
//
// The package exposes two per-file protocol engines, ServerFile (holds the
// current version) and ClientFile (holds the outdated version and wants the
// current one). The engines are message-level state machines: a driver — the
// collection layer for real connections, SyncLocal for experiments — moves
// byte sections between them in lockstep. Everything both sides must agree
// on (round plans, block splits, verification group structure) is derived
// from *shared* state by identical code paths in state.go, so the wire
// carries almost nothing but hash bits and bitmaps.
package core

import (
	"fmt"
	"math/bits"

	"msync/internal/cdc"
	"msync/internal/gtest"
	"msync/internal/rolling"
)

// MapMode selects the map-construction strategy of a session.
type MapMode int

const (
	// MapHalving is the paper's recursive halving: fixed power-of-two block
	// boundaries split in half each round. The default, and the only mode
	// legacy peers understand.
	MapHalving MapMode = 0
	// MapCDC derives block boundaries from content-defined chunk cuts
	// (internal/cdc) instead of fixed offsets. Insertions and deletions
	// perturb only nearby chunks, so shift-heavy edits keep matching;
	// the trade-off is that chunk lengths must travel with the hashes.
	MapCDC MapMode = 1
)

// String names the mode the way ParseMapMode accepts it.
func (m MapMode) String() string {
	switch m {
	case MapHalving:
		return "halving"
	case MapCDC:
		return "cdc"
	default:
		return fmt.Sprintf("mapmode(%d)", int(m))
	}
}

// ParseMapMode parses a mode name as accepted by the -map-mode flag:
// "halving" (or "") and "cdc".
func ParseMapMode(s string) (MapMode, error) {
	switch s {
	case "", "halving":
		return MapHalving, nil
	case "cdc":
		return MapCDC, nil
	default:
		return 0, fmt.Errorf("core: unknown map mode %q (want halving or cdc)", s)
	}
}

// Config tunes the synchronization protocol. The zero value is not valid;
// start from DefaultConfig or BasicConfig.
type Config struct {
	// MaxBlockSize is the initial (largest) block size; a power of two.
	MaxBlockSize int
	// MinBlockSize is the smallest block size for which global hashes are
	// sent; a power of two.
	MinBlockSize int
	// ContMinBlock is the smallest continuation (extension) probe size;
	// 0 disables continuation hashes. Probes keep halving after global
	// recursion stops, down to this size.
	ContMinBlock int
	// ContBits is the width of a continuation hash in bits.
	ContBits uint
	// SlackBits is added to the 2*log2(n/b) global-hash width (paper §5.3).
	SlackBits uint
	// MinHashBits/MaxHashBits clamp the global hash width.
	MinHashBits, MaxHashBits uint
	// VerifyBits is the width of a verification hash (truncated MD5).
	VerifyBits uint
	// Verify configures the group-testing verification strategy.
	Verify gtest.Config
	// Decomposable suppresses transmission of hash bits derivable from
	// parent and sibling hashes.
	Decomposable bool
	// TwoPhaseRounds splits each global round in two (paper §5.4): first a
	// roundtrip of continuation probes alone, then the global hashes —
	// omitting blocks probed in the first phase and blocks whose sibling
	// was confirmed by it. Costs one extra roundtrip per round for a
	// moderate byte saving.
	TwoPhaseRounds bool
	// EnableLocal turns on local hashes: blocks near (but not adjacent to)
	// confirmed regions are matched only within a neighborhood of the
	// predicted position, with fewer bits.
	EnableLocal bool
	// LocalRadius is the neighborhood half-width for local hashes, and
	// LocalRange the maximum server-space distance from a confirmed region
	// for a block to qualify.
	LocalRadius, LocalRange int
	// LocalSlack is added to log2(2*LocalRadius) for the local hash width.
	LocalSlack uint
	// MaxAlternates bounds how many alternative source offsets the client
	// remembers per candidate (for retry-on-failed-verification).
	MaxAlternates int
	// HashFamily selects the rolling/decomposable hash construction:
	// "poly" (default, Karp-Rabin style) or "adler" (the paper's modified
	// Adler checksum).
	HashFamily string
	// Adaptive enables the early-stopping heuristic (paper §7 future work):
	// once block sizes reach AdaptiveMinBlock, a file stops recursing when a
	// round's map-phase bits exceed AdaptiveFactor × 8 × newly covered bytes.
	Adaptive         bool
	AdaptiveMinBlock int
	AdaptiveFactor   float64
	// Workers bounds the parallelism of CPU-heavy engine work: sharded
	// old-file scans and batched verification hashing (and, at the
	// collection layer, per-file engine fan-out). 0 (the default) means
	// runtime.GOMAXPROCS(0); 1 selects the exact serial legacy path. This
	// is purely a local execution knob — wire output is bit-identical for
	// every value, and it is never serialized into the protocol config.
	Workers int
	// MapMode selects the map-construction strategy: MapHalving (default,
	// the paper's recursive halving) or MapCDC (content-defined chunk
	// boundaries). At the collection layer the mode is negotiated per
	// session via a hello extension; it is serialized into the protocol
	// config only when nonzero, so legacy sessions stay byte-identical.
	MapMode MapMode
}

// DefaultConfig enables all the paper's techniques with its best practical
// settings: continuation hashes down to 16 bytes, two verification batches
// with growing groups, decomposable hashes.
func DefaultConfig() Config {
	return Config{
		MaxBlockSize: 2048,
		MinBlockSize: 128,
		ContMinBlock: 16,
		ContBits:     8,
		SlackBits:    6,
		MinHashBits:  10,
		MaxHashBits:  40,
		VerifyBits:   20,
		Verify:       gtest.DefaultConfig(),
		Decomposable: true,

		MaxAlternates: 4,
		LocalRadius:   256,
		LocalRange:    4096,
		LocalSlack:    5,
	}
}

// BasicConfig is the paper's "basic protocol" (Figures 6.1/6.2): recursive
// halving, decomposable hashes, and a separate verification hash per
// candidate — continuation/local hashes and group testing disabled.
func BasicConfig() Config {
	c := DefaultConfig()
	c.ContMinBlock = 0
	c.EnableLocal = false
	c.Verify = gtest.TrivialConfig()
	c.VerifyBits = 16
	return c
}

// OneShotConfig is a single-roundtrip variant (paper §7): one round at a
// fixed block size with wider hashes, trivial verification folded into the
// same exchange.
func OneShotConfig(blockSize int) Config {
	c := BasicConfig()
	c.MaxBlockSize = blockSize
	c.MinBlockSize = blockSize
	c.SlackBits = 12
	return c
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.MaxBlockSize <= 0 || c.MaxBlockSize&(c.MaxBlockSize-1) != 0 {
		return fmt.Errorf("core: MaxBlockSize %d must be a positive power of two", c.MaxBlockSize)
	}
	if c.MinBlockSize <= 0 || c.MinBlockSize&(c.MinBlockSize-1) != 0 {
		return fmt.Errorf("core: MinBlockSize %d must be a positive power of two", c.MinBlockSize)
	}
	if c.MinBlockSize > c.MaxBlockSize {
		return fmt.Errorf("core: MinBlockSize %d > MaxBlockSize %d", c.MinBlockSize, c.MaxBlockSize)
	}
	if c.ContMinBlock < 0 {
		return fmt.Errorf("core: ContMinBlock %d negative", c.ContMinBlock)
	}
	if c.ContMinBlock > 0 {
		if c.ContMinBlock&(c.ContMinBlock-1) != 0 {
			return fmt.Errorf("core: ContMinBlock %d must be a power of two", c.ContMinBlock)
		}
		if c.ContBits == 0 || c.ContBits > 32 {
			return fmt.Errorf("core: ContBits %d out of range", c.ContBits)
		}
	}
	if c.VerifyBits == 0 || c.VerifyBits > 64 {
		return fmt.Errorf("core: VerifyBits %d out of range (1..64)", c.VerifyBits)
	}
	if c.MaxHashBits == 0 || c.MaxHashBits > 56 {
		return fmt.Errorf("core: MaxHashBits %d out of range (1..56)", c.MaxHashBits)
	}
	if c.MinHashBits == 0 || c.MinHashBits > c.MaxHashBits {
		return fmt.Errorf("core: MinHashBits %d out of range", c.MinHashBits)
	}
	if c.EnableLocal && (c.LocalRadius <= 0 || c.LocalRange <= 0) {
		return fmt.Errorf("core: local hashes enabled with non-positive radius/range")
	}
	if c.Adaptive && c.AdaptiveFactor <= 0 {
		return fmt.Errorf("core: Adaptive enabled with AdaptiveFactor %v", c.AdaptiveFactor)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers %d negative", c.Workers)
	}
	if _, err := rolling.FamilyByName(c.HashFamily); err != nil {
		return err
	}
	switch c.MapMode {
	case MapHalving:
	case MapCDC:
		// Probe the chunker with the largest and smallest scheduled chunk
		// sizes so an unusable derived Params surfaces here as the cdc
		// package's typed error (the negotiation path reports it verbatim).
		for _, avg := range []int{c.cdcInitialAvg(c.MaxBlockSize * 2), c.cdcFloor()} {
			if _, err := cdc.CutsE(nil, c.cdcParams(avg)); err != nil {
				return fmt.Errorf("core: MapCDC schedule unusable at avg %d: %w", avg, err)
			}
		}
	default:
		return fmt.Errorf("core: unknown MapMode %d", int(c.MapMode))
	}
	return nil
}

// cdcFloor is the smallest average chunk size the CDC schedule chunks at.
// Exact (length, hash) chunk lookup confines collisions to the ~n/avg old
// chunks of equal length — not the n window positions a halving-mode scan
// visits — so CDC can afford one level below the halving global floor
// (MinBlockSize/2). The hard limit is Avg = 64: the chunker needs
// Min > its 48-byte rolling window (Min is clamped to 49 at small averages).
// Below the floor, rounds continue probe-only down to ContMinBlock (see
// cdcMinSchedule), like halving below MinBlockSize.
func (c *Config) cdcFloor() int {
	f := c.MinBlockSize / 2
	if f < 64 {
		f = 64
	}
	return f
}

// cdcMinSchedule is the smallest per-round size the CDC schedule reaches:
// the chunking floor, or the continuation-probe minimum when that is smaller.
func (c *Config) cdcMinSchedule() int {
	if c.ContMinBlock > 0 && c.ContMinBlock < c.cdcFloor() {
		return c.ContMinBlock
	}
	return c.cdcFloor()
}

// cdcInitialAvg picks the starting average chunk size for a file of length
// n: the halving schedule's initial block size, clamped up to the CDC floor.
func (c *Config) cdcInitialAvg(n int) int {
	avg := c.initialBlockSize(n)
	if avg < c.cdcFloor() {
		avg = c.cdcFloor()
	}
	return avg
}

// cdcHashBits returns the width of a chunk hash for average chunk size avg in
// a file of length n. A chunk hash is compared only against old chunks of the
// exact same length — a handful out of the ~n/avg old chunks, spread across
// roughly avg distinct lengths — instead of the n sliding positions a
// halving-mode global hash must survive. That shrinks the collision domain by
// a factor of ~n/(n/avg/avg) and removes the need for most of the usual
// 2*log2(n/b)+slack width: log2(avg) for the position count, and ~8 more for
// the per-length spread. A rare false candidate is cheap — group-testing
// verification rejects it and the alternate list retries. The usual floor and
// ceiling still apply.
func (c *Config) cdcHashBits(n, avg int) uint {
	h := c.hashBits(n, avg)
	cut := uint(bits.Len(uint(avg))-1) + 8
	if h > cut && h-cut > c.MinHashBits {
		h -= cut
	} else {
		h = c.MinHashBits
	}
	return h
}

// cdcCountBits is the width of a region's chunk-count field. Every chunk but
// a region's last is at least min long, so a region of regionLen bytes splits
// into at most ceil(regionLen/min) chunks; count-1 is what travels. Both
// sides derive the width from the shared region geometry.
func cdcCountBits(regionLen, min int) uint {
	maxCount := (regionLen + min - 1) / min
	if maxCount <= 1 {
		return 0
	}
	return uint(bits.Len(uint(maxCount - 1)))
}

// cdcParams derives the chunker parameters for one CDC round from its
// average chunk size (a power of two >= cdcFloor). Min is Avg/4 but never at
// or below the chunker's 48-byte rolling window, which keeps small averages
// (64, 128) usable.
func (c *Config) cdcParams(avg int) cdc.Params {
	mn := avg / 4
	if mn <= 48 {
		mn = 49
	}
	return cdc.Params{Min: mn, Avg: avg, Max: avg * 4}
}

// hashFamily resolves the configured hash family (validated configs only).
func (c *Config) hashFamily() rolling.Family {
	f, err := rolling.FamilyByName(c.HashFamily)
	if err != nil {
		panic(err)
	}
	return f
}

// hashBits returns the width of a global hash for block size b in a file of
// length n (paper §5.3: 2*log2(n/b) plus slack, clamped).
func (c *Config) hashBits(n, b int) uint {
	if n < 2 {
		n = 2
	}
	if b < 1 {
		b = 1
	}
	ratio := n / b
	if ratio < 2 {
		ratio = 2
	}
	h := 2*uint(bits.Len(uint(ratio-1))) + c.SlackBits
	if h < c.MinHashBits {
		h = c.MinHashBits
	}
	if h > c.MaxHashBits {
		h = c.MaxHashBits
	}
	return h
}

// localBits returns the width of a local hash: enough to discriminate within
// a 2*LocalRadius+1 neighborhood plus slack.
func (c *Config) localBits() uint {
	h := uint(bits.Len(uint(2*c.LocalRadius))) + c.LocalSlack
	if h < 4 {
		h = 4
	}
	if h > c.MaxHashBits {
		h = c.MaxHashBits
	}
	return h
}

// initialBlockSize picks the starting block size for a file of length n:
// MaxBlockSize, halved until it is at most n/2 (but never below
// MinBlockSize).
func (c *Config) initialBlockSize(n int) int {
	b := c.MaxBlockSize
	for b > c.MinBlockSize && b > n/2 {
		b /= 2
	}
	return b
}

// minScheduleBlock is the smallest block size any round uses.
func (c *Config) minScheduleBlock() int {
	if c.ContMinBlock > 0 && c.ContMinBlock < c.MinBlockSize {
		return c.ContMinBlock
	}
	return c.MinBlockSize
}
