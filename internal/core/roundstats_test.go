package core

import (
	"math/rand"
	"testing"

	"msync/internal/corpus"
)

// TestRoundStatsConsistency: per-round diagnostics must be identical on
// both sides and internally coherent (coverage monotone, confirmations
// bounded by candidates, bits positive whenever hashes flowed).
func TestRoundStatsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	old := corpus.SourceText(rng, 120_000)
	em := corpus.EditModel{BurstsPer32KB: 3, BurstEdits: 4, EditSize: 60, BurstSpread: 300}
	cur := em.Apply(rng, old)

	cfg := DefaultConfig()
	srv, err := NewServerFile(cur, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClientFile(old, len(cur), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	for srv.Active() {
		if err := cli.AbsorbHashes(srv.EmitHashes()); err != nil {
			t.Fatal(err)
		}
		more, err := srv.AbsorbReply(cli.EmitReply())
		if err != nil {
			t.Fatal(err)
		}
		for more {
			cliMore, err := cli.AbsorbConfirm(srv.EmitConfirm())
			if err != nil {
				t.Fatal(err)
			}
			if !cliMore {
				break
			}
			if more, err = srv.AbsorbBatch(cli.EmitBatch()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := cli.ApplyDelta(srv.EmitDelta()); err != nil {
		t.Fatal(err)
	}

	sr, cr := srv.Rounds(), cli.Rounds()
	if len(sr) == 0 {
		t.Fatal("no round stats recorded")
	}
	if len(sr) != len(cr) {
		t.Fatalf("round counts differ: %d vs %d", len(sr), len(cr))
	}
	prevCovered := 0
	prevBlock := 1 << 30
	for i := range sr {
		if sr[i] != cr[i] {
			t.Fatalf("round %d stats differ:\nserver %+v\nclient %+v", i, sr[i], cr[i])
		}
		r := sr[i]
		if r.Round != i {
			t.Fatalf("round index %d at position %d", r.Round, i)
		}
		if r.BlockSize >= prevBlock {
			t.Fatalf("block size did not shrink: %d -> %d", prevBlock, r.BlockSize)
		}
		prevBlock = r.BlockSize
		if r.Confirmed > r.Candidates {
			t.Fatalf("round %d: %d confirmed > %d candidates", i, r.Confirmed, r.Candidates)
		}
		if r.CoveredBytes < prevCovered {
			t.Fatalf("coverage shrank at round %d", i)
		}
		if r.CoveredBytes-prevCovered != r.NewBytes {
			t.Fatalf("round %d: NewBytes %d inconsistent with coverage %d->%d",
				i, r.NewBytes, prevCovered, r.CoveredBytes)
		}
		prevCovered = r.CoveredBytes
		total := r.Globals + r.TopUps + r.Locals + r.Probes
		if total > 0 && r.Bits <= 0 {
			t.Fatalf("round %d: %d entries but %d bits", i, total, r.Bits)
		}
	}
	// Decomposability must actually be in play: some top-up entries after
	// round 0.
	topUps := 0
	for _, r := range sr[1:] {
		topUps += r.TopUps
	}
	if topUps == 0 {
		t.Fatal("no top-up entries recorded; decomposability inactive?")
	}
	t.Logf("rounds: %d; last: %+v", len(sr), sr[len(sr)-1])
}

// TestRoundDetailsExposedLocally: SyncLocal surfaces the records.
func TestRoundDetailsExposedLocally(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	old := corpus.SourceText(rng, 40_000)
	cur := corpus.EditModel{BurstsPer32KB: 3, BurstEdits: 3, EditSize: 40, BurstSpread: 200}.Apply(rng, old)
	res, err := SyncLocal(old, cur, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RoundDetails) != res.Rounds {
		t.Fatalf("RoundDetails %d != Rounds %d", len(res.RoundDetails), res.Rounds)
	}
}
