package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"msync/internal/corpus"
	"msync/internal/gtest"
)

// TestQuickProtocolReconstructs is the central correctness property: for
// arbitrary old/new pairs and all technique combinations, the protocol must
// reconstruct the new file exactly.
func TestQuickProtocolReconstructs(t *testing.T) {
	configs := map[string]Config{
		"default": DefaultConfig(),
		"basic":   BasicConfig(),
		"oneshot": OneShotConfig(256),
	}
	local := DefaultConfig()
	local.EnableLocal = true
	configs["local"] = local
	adaptive := DefaultConfig()
	adaptive.Adaptive = true
	adaptive.AdaptiveMinBlock = 256
	adaptive.AdaptiveFactor = 1.0
	configs["adaptive"] = adaptive
	deep := DefaultConfig()
	deep.Verify = gtest.Config{Batches: 4, GroupSize: 8, TrustedGroupSize: 16, SplitFactor: 2, RetryAlternates: 2}
	configs["deep-verify"] = deep
	nodecomp := DefaultConfig()
	nodecomp.Decomposable = false
	configs["no-decomp"] = nodecomp
	adler := DefaultConfig()
	adler.HashFamily = "adler"
	configs["adler-family"] = adler

	for name, cfg := range configs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			f := func(seed int64, kind uint8) bool {
				rng := rand.New(rand.NewSource(seed))
				size := 1000 + rng.Intn(60_000)
				var old, cur []byte
				switch kind % 4 {
				case 0: // edited text
					old = corpus.SourceText(rng, size)
					em := corpus.EditModel{BurstsPer32KB: 4, BurstEdits: 4, EditSize: 50, BurstSpread: 400}
					cur = em.Apply(rng, old)
				case 1: // unrelated files
					old = corpus.SourceText(rng, size)
					cur = corpus.RandomText(rng, size/2+1)
				case 2: // heavy repetition (adversarial for candidate search)
					unit := corpus.SourceText(rng, 64)
					old = bytes.Repeat(unit, size/64+1)
					cur = append(bytes.Repeat(unit, size/128+1), corpus.SourceText(rng, 100)...)
				default: // pure random both sides
					old = corpus.RandomText(rng, size)
					cur = corpus.RandomText(rng, size)
				}
				res, err := SyncLocal(old, cur, cfg)
				if err != nil {
					t.Logf("seed %d kind %d: %v", seed, kind, err)
					return false
				}
				return bytes.Equal(res.Output, cur)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWeakVerifyFallsBack: with 2-bit verification hashes, false matches
// slip through; the whole-file check must catch them and the fallback must
// still deliver the correct file.
func TestWeakVerifyFallsBack(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VerifyBits = 2
	cfg.SlackBits = 1
	cfg.MinHashBits = 10
	fellBack := 0
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		old := corpus.SourceText(rng, 30_000)
		cur := corpus.SourceText(rng, 30_000)
		res, err := SyncLocal(old, cur, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Output, cur) {
			t.Fatal("fallback did not restore correctness")
		}
		if res.FellBack {
			fellBack++
		}
	}
	if fellBack == 0 {
		t.Log("note: no fallback triggered in 12 seeds (weak hashes got lucky)")
	} else {
		t.Logf("fallback exercised in %d/12 runs", fellBack)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.MaxBlockSize = 0 },
		func(c *Config) { c.MaxBlockSize = 1000 }, // not a power of two
		func(c *Config) { c.MinBlockSize = 0 },
		func(c *Config) { c.MinBlockSize = 48 },
		func(c *Config) { c.MinBlockSize = c.MaxBlockSize * 2 },
		func(c *Config) { c.ContMinBlock = -1 },
		func(c *Config) { c.ContMinBlock = 24 },
		func(c *Config) { c.ContMinBlock = 16; c.ContBits = 0 },
		func(c *Config) { c.VerifyBits = 0 },
		func(c *Config) { c.VerifyBits = 65 },
		func(c *Config) { c.MaxHashBits = 60 },
		func(c *Config) { c.MinHashBits = 0 },
		func(c *Config) { c.MinHashBits = c.MaxHashBits + 1 },
		func(c *Config) { c.EnableLocal = true; c.LocalRadius = 0 },
		func(c *Config) { c.Adaptive = true; c.AdaptiveFactor = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	for _, cfg := range []Config{DefaultConfig(), BasicConfig(), OneShotConfig(512)} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("good config rejected: %v", err)
		}
	}
}

func TestHashBitsSchedule(t *testing.T) {
	cfg := DefaultConfig()
	// Bits grow as blocks shrink.
	prev := uint(0)
	for _, b := range []int{2048, 1024, 512, 256, 128} {
		h := cfg.hashBits(1<<20, b)
		if h < prev {
			t.Fatalf("hashBits(%d) = %d decreased", b, h)
		}
		prev = h
	}
	// Clamps hold.
	if cfg.hashBits(1<<30, 1) != cfg.MaxHashBits {
		t.Fatal("max clamp")
	}
	if cfg.hashBits(2, 2048) != cfg.MinHashBits {
		t.Fatal("min clamp")
	}
}

func TestInitialBlockSize(t *testing.T) {
	cfg := DefaultConfig() // max 2048, min 128
	if got := cfg.initialBlockSize(1 << 20); got != 2048 {
		t.Fatalf("large file: %d", got)
	}
	if got := cfg.initialBlockSize(1000); got != 256 {
		t.Fatalf("1000-byte file: %d (want 256)", got)
	}
	if got := cfg.initialBlockSize(10); got != cfg.MinBlockSize {
		t.Fatalf("tiny file: %d", got)
	}
}

func TestAdaptiveStopsEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Unrelated files: map construction is pure waste; adaptive should quit.
	old := corpus.RandomText(rng, 100_000)
	cur := corpus.RandomText(rng, 100_000)

	plain := DefaultConfig()
	resPlain, err := SyncLocal(old, cur, plain)
	if err != nil {
		t.Fatal(err)
	}
	ad := DefaultConfig()
	ad.Adaptive = true
	ad.AdaptiveMinBlock = 1024
	ad.AdaptiveFactor = 4
	resAd, err := SyncLocal(old, cur, ad)
	if err != nil {
		t.Fatal(err)
	}
	if resAd.Rounds >= resPlain.Rounds {
		t.Fatalf("adaptive rounds %d not fewer than plain %d", resAd.Rounds, resPlain.Rounds)
	}
	if resAd.Costs.Total() >= resPlain.Costs.Total() {
		t.Fatalf("adaptive cost %d not below plain %d on unrelated files",
			resAd.Costs.Total(), resPlain.Costs.Total())
	}
}

// TestCoverAndGaps exercises the interval algebra directly.
func TestCoverAndGaps(t *testing.T) {
	st := &state{n: 100}
	cfg := DefaultConfig()
	st.cfg = &cfg
	st.matches = []match{
		{serverOff: 10, length: 10},
		{serverOff: 20, length: 5}, // adjacent: merges
		{serverOff: 50, length: 10},
		{serverOff: 55, length: 10}, // overlapping: merges
	}
	cover := st.coverIntervals()
	want := []interval{{10, 25}, {50, 65}}
	if len(cover) != len(want) {
		t.Fatalf("cover = %v", cover)
	}
	for i := range want {
		if cover[i] != want[i] {
			t.Fatalf("cover[%d] = %v, want %v", i, cover[i], want[i])
		}
	}
	gaps := st.gaps()
	wantGaps := []interval{{0, 10}, {25, 50}, {65, 100}}
	for i := range wantGaps {
		if gaps[i] != wantGaps[i] {
			t.Fatalf("gaps[%d] = %v, want %v", i, gaps[i], wantGaps[i])
		}
	}
	if st.coveredBytes() != 30 {
		t.Fatalf("covered = %d", st.coveredBytes())
	}
	if !st.fullyCovered(12, 8) || st.fullyCovered(12, 20) || st.fullyCovered(0, 5) {
		t.Fatal("fullyCovered wrong")
	}
}

func TestMatchLookups(t *testing.T) {
	st := &state{n: 1000}
	cfg := DefaultConfig()
	st.cfg = &cfg
	st.matches = []match{
		{serverOff: 100, length: 50},
		{serverOff: 200, length: 50},
	}
	if st.matchEndingAt(150) != 0 || st.matchEndingAt(250) != 1 || st.matchEndingAt(999) != -1 {
		t.Fatal("matchEndingAt")
	}
	if st.matchStartingAt(100) != 0 || st.matchStartingAt(200) != 1 || st.matchStartingAt(1) != -1 {
		t.Fatal("matchStartingAt")
	}
	if st.nearestMatch(160) != 0 || st.nearestMatch(190) != 1 {
		t.Fatal("nearestMatch")
	}
}

func TestProtocolErrorPaths(t *testing.T) {
	cfg := DefaultConfig()
	srv, err := NewServerFile(make([]byte, 10_000), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Reply before any round.
	if _, err := srv.AbsorbReply([]byte{0xFF}); err == nil {
		t.Fatal("reply without round accepted")
	}
	// Batch without pending verification.
	if _, err := srv.AbsorbBatch(nil); err == nil {
		t.Fatal("unexpected batch accepted")
	}

	cli, err := NewClientFile(make([]byte, 10_000), 10_000, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Truncated hash payload.
	_ = srv.EmitHashes()
	if err := cli.AbsorbHashes([]byte{}); err == nil {
		t.Fatal("truncated hashes accepted")
	}
	// Confirm without awaiting.
	cli2, _ := NewClientFile(make([]byte, 10_000), 10_000, &cfg)
	if _, err := cli2.AbsorbConfirm(nil); err == nil {
		t.Fatal("unexpected confirm accepted")
	}
}

func TestTinyFileSkipsRounds(t *testing.T) {
	cfg := DefaultConfig()
	srv, err := NewServerFile([]byte("tiny"), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Active() {
		t.Fatal("tiny file should go straight to delta")
	}
	cli, err := NewClientFile([]byte("tony"), 4, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cli.ApplyDelta(srv.EmitDelta())
	if err != nil || string(out) != "tiny" {
		t.Fatalf("out=%q err=%v", out, err)
	}
}

// TestLargerFileManyRounds sanity-checks round counting and bit accounting.
func TestLargerFileManyRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	old := corpus.SourceText(rng, 500_000)
	em := corpus.EditModel{BurstsPer32KB: 1, BurstEdits: 3, EditSize: 60, BurstSpread: 500}
	cur := em.Apply(rng, old)
	res, err := SyncLocal(old, cur, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Output, cur) {
		t.Fatal("mismatch")
	}
	// 2048 → 128 global + 64,32,16 continuation = at least 8 rounds.
	if res.Rounds < 6 {
		t.Fatalf("only %d rounds", res.Rounds)
	}
	if res.Costs.HarvestRate() < 0.3 {
		t.Fatalf("harvest rate %.2f suspiciously low for a lightly-edited file",
			res.Costs.HarvestRate())
	}
	t.Logf("500k file: %d rounds, cost %d (%.2f%%), harvest %.2f",
		res.Rounds, res.Costs.Total(),
		100*float64(res.Costs.Total())/float64(len(cur)), res.Costs.HarvestRate())
}

// TestDecomposableSavesBits compares hash-payload traffic directly.
func TestDecomposableSavesBits(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	old := corpus.SourceText(rng, 150_000)
	em := corpus.EditModel{BurstsPer32KB: 6, BurstEdits: 6, EditSize: 80, BurstSpread: 500}
	cur := em.Apply(rng, old)

	on := BasicConfig()
	off := BasicConfig()
	off.Decomposable = false
	resOn, err := SyncLocal(old, cur, on)
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := SyncLocal(old, cur, off)
	if err != nil {
		t.Fatal(err)
	}
	if resOn.Costs.Total() >= resOff.Costs.Total() {
		t.Fatalf("decomposable on (%d) not cheaper than off (%d)",
			resOn.Costs.Total(), resOff.Costs.Total())
	}
	t.Logf("decomposable: %d vs %d bytes", resOn.Costs.Total(), resOff.Costs.Total())
}
