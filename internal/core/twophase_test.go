package core

import (
	"bytes"
	"math/rand"
	"testing"

	"msync/internal/corpus"
)

// TestTwoPhaseRoundStructure: with TwoPhaseRounds on, rounds alternate
// probe-only and global halves at the same block size once matches exist.
func TestTwoPhaseRoundStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	old := corpus.SourceText(rng, 80_000)
	cur := corpus.EditModel{BurstsPer32KB: 3, BurstEdits: 4, EditSize: 50, BurstSpread: 300}.Apply(rng, old)

	cfg := DefaultConfig()
	cfg.TwoPhaseRounds = true
	res, err := SyncLocal(old, cur, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Output, cur) {
		t.Fatal("mismatch")
	}

	sawPair := false
	for i := 0; i+1 < len(res.RoundDetails); i++ {
		a, b := res.RoundDetails[i], res.RoundDetails[i+1]
		if a.BlockSize == b.BlockSize {
			// Must be a probe-half followed by a global-half.
			if a.Globals+a.TopUps+a.Locals != 0 {
				t.Fatalf("round %d holds block size but sent globals: %+v", i, a)
			}
			if a.Probes == 0 {
				t.Fatalf("probe half without probes: %+v", a)
			}
			if b.Probes != 0 {
				t.Fatalf("global half resent probes: %+v", b)
			}
			sawPair = true
		}
	}
	if !sawPair {
		t.Fatal("no two-phase round pair observed")
	}
}

// TestTwoPhaseSavesOrMatchesBytes: the paper reports "moderate benefits";
// we require the two-phase mode to cost at most a few percent more and to
// send fewer global hashes.
func TestTwoPhaseSavesOrMatchesBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	old := corpus.SourceText(rng, 200_000)
	cur := corpus.EditModel{BurstsPer32KB: 2, BurstEdits: 4, EditSize: 50, BurstSpread: 300}.Apply(rng, old)

	plain := DefaultConfig()
	two := DefaultConfig()
	two.TwoPhaseRounds = true

	rp, err := SyncLocal(old, cur, plain)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := SyncLocal(old, cur, two)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rt.Output, cur) {
		t.Fatal("mismatch")
	}

	globals := func(rs []RoundStats) (n int) {
		for _, r := range rs {
			n += r.Globals + r.TopUps
		}
		return
	}
	gp, gt := globals(rp.RoundDetails), globals(rt.RoundDetails)
	if gt > gp {
		t.Fatalf("two-phase sent MORE global hashes: %d vs %d", gt, gp)
	}
	if rt.Costs.Total() > rp.Costs.Total()*110/100 {
		t.Fatalf("two-phase cost %d far above single-phase %d", rt.Costs.Total(), rp.Costs.Total())
	}
	if rt.Costs.Roundtrips <= rp.Costs.Roundtrips {
		t.Fatalf("two-phase should use more roundtrips: %d vs %d",
			rt.Costs.Roundtrips, rp.Costs.Roundtrips)
	}
	t.Logf("single-phase: %d bytes, %d globals, %d rtrips; two-phase: %d bytes, %d globals, %d rtrips",
		rp.Costs.Total(), gp, rp.Costs.Roundtrips, rt.Costs.Total(), gt, rt.Costs.Roundtrips)
}
