package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"msync/internal/corpus"
)

// transcriptSync drives both engines through a full session, recording every
// frame (both directions, in exchange order) so runs at different worker
// counts can be compared byte for byte.
func transcriptSync(t *testing.T, fOld, fNew []byte, cfg Config) (frames [][]byte, costs int64, out []byte) {
	t.Helper()
	srv, err := NewServerFile(fNew, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClientFile(fOld, len(fNew), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	record := func(frame []byte) {
		frames = append(frames, append([]byte(nil), frame...))
		costs += int64(len(frame))
	}
	for srv.Active() {
		hashes := srv.EmitHashes()
		record(hashes)
		if err := cli.AbsorbHashes(hashes); err != nil {
			t.Fatal(err)
		}
		reply := cli.EmitReply()
		record(reply)
		more, err := srv.AbsorbReply(reply)
		if err != nil {
			t.Fatal(err)
		}
		for more {
			confirm := srv.EmitConfirm()
			record(confirm)
			cliMore, err := cli.AbsorbConfirm(confirm)
			if err != nil {
				t.Fatal(err)
			}
			if !cliMore {
				t.Fatal("engine desync: server expects batch, client done")
			}
			batch := cli.EmitBatch()
			record(batch)
			more, err = srv.AbsorbBatch(batch)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	dl := srv.EmitDelta()
	record(dl)
	out, err = cli.ApplyDelta(dl)
	if err != nil {
		t.Fatal(err)
	}
	return frames, costs, out
}

// TestParallelWireDeterminism is the tentpole invariant: for Workers in
// {1, 2, 8}, every frame of the session must be byte-identical to the serial
// run, on files large enough that the sharded scan path actually engages
// (old file ≫ scanMinShard positions). Both hash families and both
// configurations are swept.
func TestParallelWireDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	old := corpus.SourceText(rng, 300_000)
	em := corpus.EditModel{BurstsPer32KB: 3, BurstEdits: 3, EditSize: 50, BurstSpread: 300}
	cur := em.Apply(rng, old)

	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"default-poly", DefaultConfig()},
		{"basic-poly", BasicConfig()},
		{"default-adler", func() Config { c := DefaultConfig(); c.HashFamily = "adler"; return c }()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Workers = 1
			refFrames, refCost, refOut := transcriptSync(t, old, cur, cfg)
			if !bytes.Equal(refOut, cur) {
				t.Fatal("serial reconstruction wrong")
			}
			for _, w := range []int{2, 8} {
				cfg.Workers = w
				frames, cost, out := transcriptSync(t, old, cur, cfg)
				if cost != refCost {
					t.Errorf("workers=%d: wire cost %d, serial %d", w, cost, refCost)
				}
				if len(frames) != len(refFrames) {
					t.Fatalf("workers=%d: %d frames, serial %d", w, len(frames), len(refFrames))
				}
				for i := range frames {
					if !bytes.Equal(frames[i], refFrames[i]) {
						t.Fatalf("workers=%d: frame %d differs from serial run", w, i)
					}
				}
				if !bytes.Equal(out, cur) {
					t.Errorf("workers=%d: reconstruction wrong", w)
				}
			}
		})
	}
}

// TestParallelCostsMatchSerial checks the full stats surface (not just byte
// totals) through the SyncLocal driver across the worker matrix.
func TestParallelCostsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	old := corpus.SourceText(rng, 200_000)
	cur := corpus.EditModel{BurstsPer32KB: 2, BurstEdits: 4, EditSize: 80, BurstSpread: 500}.Apply(rng, old)

	cfg := DefaultConfig()
	cfg.Workers = 1
	ref, err := SyncLocal(old, cur, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, 8} {
		cfg.Workers = w
		res, err := SyncLocal(old, cur, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if res.Costs != ref.Costs {
			t.Errorf("workers=%d: costs %+v\nserial %+v", w, res.Costs, ref.Costs)
		}
		if res.Rounds != ref.Rounds {
			t.Errorf("workers=%d: rounds %d, serial %d", w, res.Rounds, ref.Rounds)
		}
	}
}

// TestParallelEngineStress hammers many concurrent engine rounds at high
// worker counts — the shape the collection layer produces — so the race
// detector can observe the sharded scans and pooled verification hashing
// under real contention (run via go test -race).
func TestParallelEngineStress(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	cfg := DefaultConfig()
	cfg.Workers = 8

	type filePair struct{ old, cur []byte }
	pairs := make([]filePair, 6)
	for i := range pairs {
		old := corpus.SourceText(rng, 80_000+i*17_000)
		em := corpus.EditModel{BurstsPer32KB: float64(2 + i%3), BurstEdits: 3, EditSize: 40 + 10*i, BurstSpread: 250}
		pairs[i] = filePair{old, em.Apply(rng, old)}
	}
	done := make(chan error, len(pairs))
	for i := range pairs {
		go func(p filePair) {
			res, err := SyncLocal(p.old, p.cur, cfg)
			if err == nil && !bytes.Equal(res.Output, p.cur) {
				err = fmt.Errorf("reconstruction mismatch")
			}
			done <- err
		}(pairs[i])
	}
	for range pairs {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}
