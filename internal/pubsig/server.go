package pubsig

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"msync/internal/md4"
	"msync/internal/obs"
)

// Cache-control values of the two artifact classes. Versioned and
// content-addressed URLs never change meaning, so any HTTP cache may keep
// them forever; the two mutable endpoints (/latest, /since) must be
// revalidated, which their strong ETags make a cheap 304.
const (
	cacheImmutable = "public, max-age=31536000, immutable"
	cacheMutable   = "public, no-cache"
)

// Server is the read-side HTTP surface over an ArtifactStore:
//
//	GET /latest                 {"version":N} — newest published version
//	GET /v/<n>/manifest         manifest artifact (immutable)
//	GET /v/<n>/sig/<hex>        per-file signature blob (immutable)
//	GET /v/<n>/blob/<hex>       file content, Range-capable (immutable)
//	GET /since/<base>           composed delta base→latest
//	GET /health                 liveness + store stats
//
// Every artifact response carries a strong content-derived ETag and is
// served through http.ServeContent, so HEAD, Range, If-None-Match and
// If-Range work on all of them. The server performs no hashing or matching
// per request — replicas and CDNs pointed at the same artifacts serve
// byte-identical responses with identical validators.
type Server struct {
	store   ArtifactStore
	modTime time.Time
	metrics *obs.Registry

	// etags caches the content hash per artifact key: artifacts are
	// immutable, so each is hashed at most once per server lifetime and the
	// marginal cost of an additional reader is zero hashing.
	mu    sync.Mutex
	etags map[string]string
}

// ServerOption configures a Server.
type ServerOption func(*Server) error

// WithModTime sets the Last-Modified value for artifact responses. It is
// caller-supplied precisely so that replicas can agree on it (e.g. the
// publish commit time); the zero value omits the header entirely and
// leaves conditional requests to the content-derived ETags, which are
// stable across restarts by construction.
func WithModTime(t time.Time) ServerOption {
	return func(s *Server) error {
		s.modTime = t
		return nil
	}
}

// WithServerMetrics counts requests, artifact bytes served, and errors in
// the given registry.
func WithServerMetrics(r *obs.Registry) ServerOption {
	return func(s *Server) error {
		s.metrics = r
		return nil
	}
}

// NewServer returns the HTTP surface over an artifact store.
func NewServer(store ArtifactStore, opts ...ServerOption) (*Server, error) {
	s := &Server{store: store, etags: make(map[string]string)}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// countingWriter tracks body bytes actually written, so served-bytes
// counters reflect Range and 304 responses truthfully.
type countingWriter struct {
	http.ResponseWriter
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.ResponseWriter.Write(p)
	c.n += int64(n)
	return n, err
}

func (s *Server) count(name string, n int64) {
	if s.metrics != nil && n != 0 {
		s.metrics.Counter(name).Add(n)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	cw := &countingWriter{ResponseWriter: w}
	s.count("pubsig_http_requests", 1)
	path := r.URL.Path
	switch {
	case path == "/health":
		s.serveHealth(cw, r)
	case path == "/latest":
		s.serveLatest(cw, r)
	case strings.HasPrefix(path, "/v/"):
		s.serveVersioned(cw, r, strings.TrimPrefix(path, "/v/"))
	case strings.HasPrefix(path, "/since/"):
		s.serveSince(cw, r, strings.TrimPrefix(path, "/since/"))
	default:
		s.notFound(cw)
	}
	s.count("pubsig_http_bytes", cw.n)
}

func (s *Server) notFound(w http.ResponseWriter) {
	s.count("pubsig_http_not_found", 1)
	http.Error(w, "not found", http.StatusNotFound)
}

func (s *Server) fail(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrNoArtifact) {
		s.notFound(w)
		return
	}
	s.count("pubsig_http_errors", 1)
	http.Error(w, "internal error", http.StatusInternalServerError)
}

// serveVersioned routes /v/<n>/manifest, /v/<n>/sig/<hex>, /v/<n>/blob/<hex>.
func (s *Server) serveVersioned(w http.ResponseWriter, r *http.Request, rest string) {
	seg := strings.Split(rest, "/")
	version, err := strconv.ParseUint(seg[0], 10, 64)
	if err != nil || version == 0 {
		s.notFound(w)
		return
	}
	switch {
	case len(seg) == 2 && seg[1] == "manifest":
		s.count("pubsig_http_manifest_requests", 1)
		s.serveArtifact(w, r, manifestKey(version), "", cacheImmutable)
	case len(seg) == 3 && (seg[1] == "sig" || seg[1] == "blob"):
		sum, err := parseHash(seg[2])
		if err != nil {
			s.notFound(w)
			return
		}
		// Content-addressed artifacts carry their identity in the key: the
		// blob IS the content with that hash, and the signature over it is
		// deterministic. The key-derived ETag is therefore a strong
		// validator, and serving costs zero hashing regardless of how many
		// readers fan out.
		if seg[1] == "sig" {
			s.count("pubsig_http_sig_requests", 1)
			s.serveArtifact(w, r, sigKey(sum), `"sig-`+hex.EncodeToString(sum[:])+`"`, cacheImmutable)
		} else {
			s.count("pubsig_http_blob_requests", 1)
			s.serveArtifact(w, r, blobKey(sum), `"`+hex.EncodeToString(sum[:])+`"`, cacheImmutable)
		}
	default:
		s.notFound(w)
	}
}

func parseHash(hexSum string) (sum [md4.Size]byte, err error) {
	raw, err := hex.DecodeString(strings.ToLower(hexSum))
	if err != nil || len(raw) != md4.Size {
		return sum, ErrNoArtifact
	}
	copy(sum[:], raw)
	return sum, nil
}

// etagFor returns the strong ETag for an immutable artifact — the hex MD4
// of its bytes, so the same artifact gets the same validator from every
// replica and across every restart — hashing at most once per server
// lifetime.
func (s *Server) etagFor(key string, data []byte) string {
	s.mu.Lock()
	et, ok := s.etags[key]
	s.mu.Unlock()
	if ok {
		return et
	}
	sum := md4.Sum(data)
	et = `"` + hex.EncodeToString(sum[:]) + `"`
	s.count("pubsig_http_bytes_hashed", int64(len(data)))
	s.mu.Lock()
	s.etags[key] = et
	s.mu.Unlock()
	return et
}

// serveArtifact serves one stored blob. etag, when non-empty, is a
// key-derived strong validator (content-addressed artifacts); otherwise the
// content is hashed once per server lifetime via etagFor.
func (s *Server) serveArtifact(w http.ResponseWriter, r *http.Request, key, etag, cacheControl string) {
	data, err := s.store.Get(key)
	if err != nil {
		s.fail(w, err)
		return
	}
	if etag == "" {
		etag = s.etagFor(key, data)
	}
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", cacheControl)
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeContent(w, r, "", s.modTime, bytes.NewReader(data))
}

func (s *Server) serveLatest(w http.ResponseWriter, r *http.Request) {
	s.count("pubsig_http_latest_requests", 1)
	latest, err := LatestVersion(s.store)
	if err != nil {
		s.fail(w, err)
		return
	}
	if latest == 0 {
		s.notFound(w)
		return
	}
	s.serveJSON(w, r, cacheMutable, map[string]any{
		"version":  latest,
		"manifest": fmt.Sprintf("/v/%d/manifest", latest),
	})
}

// serveSince answers /since/<base> with the composed delta base→latest.
// 204 means "you are current"; 404 means the chain cannot be served (never
// published, or base unknown) and the reader must fall back to the full
// manifest. The response is mutable (latest moves), but deterministic for
// a given (base, latest) pair, so its strong ETag keeps revalidation cheap.
func (s *Server) serveSince(w http.ResponseWriter, r *http.Request, rest string) {
	s.count("pubsig_http_since_requests", 1)
	base, err := strconv.ParseUint(rest, 10, 64)
	if err != nil || base == 0 {
		s.notFound(w)
		return
	}
	latest, err := LatestVersion(s.store)
	if err != nil {
		s.fail(w, err)
		return
	}
	if base > latest {
		s.notFound(w)
		return
	}
	if base == latest {
		w.Header().Set("Cache-Control", cacheMutable)
		w.WriteHeader(http.StatusNoContent)
		return
	}
	d, err := ComposeDelta(s.store, base, latest)
	if err != nil {
		s.fail(w, err)
		return
	}
	data := EncodeDelta(d)
	// The composed delta is deterministic for a (base, latest) pair, so its
	// validator can be cached like the immutable artifacts'.
	w.Header().Set("ETag", s.etagFor(fmt.Sprintf("since/%d/%d", base, latest), data))
	w.Header().Set("Cache-Control", cacheMutable)
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeContent(w, r, "", s.modTime, bytes.NewReader(data))
}

func (s *Server) serveHealth(w http.ResponseWriter, r *http.Request) {
	s.count("pubsig_http_health_requests", 1)
	latest, err := LatestVersion(s.store)
	if err != nil {
		s.fail(w, err)
		return
	}
	versions, err := s.store.Keys("v/")
	if err != nil {
		s.fail(w, err)
		return
	}
	all, err := s.store.Keys("")
	if err != nil {
		s.fail(w, err)
		return
	}
	s.serveJSON(w, r, "no-cache", map[string]any{
		"status":    "ok",
		"latest":    latest,
		"versions":  len(versions),
		"artifacts": len(all),
	})
}

func (s *Server) serveJSON(w http.ResponseWriter, r *http.Request, cacheControl string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		s.fail(w, err)
		return
	}
	data = append(data, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", cacheControl)
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	if r.Method == http.MethodHead {
		return
	}
	w.Write(data)
}
