// Package pubsig implements published-signature synchronization: a server
// (e.g. a web server) publishes a small static signature of each file's
// CURRENT version; a client holding an outdated copy downloads the
// signature, determines locally which parts it already has, and fetches
// only the missing byte ranges (one roundtrip of range requests).
//
// This is the paper's "server-friendly web crawling" application (§1.1,
// scenario 3): synchronization support on plain web servers without
// per-client computation — the signature is computed once per version, and
// clients do all matching work themselves. (The same architecture later
// appeared in the zsync tool.) Roles are reversed relative to rsync: the
// signature describes the NEW file, and the rolling search runs over the
// client's OLD file.
package pubsig

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"msync/internal/md4"
	"msync/internal/rolling"
	"msync/internal/wire"
)

// DefaultBlockSize is the default signature block size.
const DefaultBlockSize = 1024

// strongLen is the truncated per-block MD4 length. The whole-file hash
// backstops collisions, as in rsync.
const strongLen = 4

// ErrBadSignature reports a malformed signature blob.
var ErrBadSignature = errors.New("pubsig: malformed signature")

// signature is the parsed form of a published signature.
type signature struct {
	fileLen   int
	blockSize int
	whole     [md4.Size]byte
	weak      []uint32
	strong    [][strongLen]byte
}

// Build produces the signature blob for the current version of a file.
// Publish it alongside the file; it is ~0.8% of the file at the default
// block size.
func Build(cur []byte, blockSize int) []byte {
	if blockSize <= 0 {
		panic("pubsig: block size must be positive")
	}
	b := wire.NewBuffer(len(cur)/blockSize*8 + 64)
	b.Uvarint(uint64(len(cur)))
	b.Uvarint(uint64(blockSize))
	whole := md4.Sum(cur)
	b.Raw(whole[:])
	for off := 0; off < len(cur); off += blockSize {
		end := off + blockSize
		if end > len(cur) {
			end = len(cur)
		}
		blk := cur[off:end]
		var w [4]byte
		weak := rolling.AdlerSum(blk)
		w[0], w[1], w[2], w[3] = byte(weak), byte(weak>>8), byte(weak>>16), byte(weak>>24)
		b.Raw(w[:])
		sum := md4.Sum(blk)
		b.Raw(sum[:strongLen])
	}
	return b.Build()
}

func parse(sig []byte) (*signature, error) {
	p := wire.NewParser(sig)
	fl, err := p.Uvarint()
	if err != nil {
		return nil, ErrBadSignature
	}
	bs, err := p.Uvarint()
	if err != nil || bs == 0 || fl > 1<<40 {
		return nil, ErrBadSignature
	}
	s := &signature{fileLen: int(fl), blockSize: int(bs)}
	raw, err := p.Raw(md4.Size)
	if err != nil {
		return nil, ErrBadSignature
	}
	copy(s.whole[:], raw)
	nBlocks := (s.fileLen + s.blockSize - 1) / s.blockSize
	for i := 0; i < nBlocks; i++ {
		wr, err := p.Raw(4)
		if err != nil {
			return nil, ErrBadSignature
		}
		s.weak = append(s.weak, uint32(wr[0])|uint32(wr[1])<<8|uint32(wr[2])<<16|uint32(wr[3])<<24)
		sr, err := p.Raw(strongLen)
		if err != nil {
			return nil, ErrBadSignature
		}
		var st [strongLen]byte
		copy(st[:], sr)
		s.strong = append(s.strong, st)
	}
	if p.Remaining() != 0 {
		return nil, ErrBadSignature
	}
	return s, nil
}

// Range is a byte range of the current file the client must fetch.
type Range struct{ Off, Len int }

// Plan is the client-side fetch plan: which new-file blocks are available
// locally (and where), and which byte ranges must be fetched.
type Plan struct {
	sig *signature
	// localOff[i] is the old-file offset holding new block i, or -1.
	localOff []int
	// Ranges are the coalesced byte ranges to fetch.
	Ranges []Range
}

// FetchBytes reports the total bytes the plan will fetch.
func (p *Plan) FetchBytes() int {
	n := 0
	for _, r := range p.Ranges {
		n += r.Len
	}
	return n
}

// BlocksLocal reports how many new-file blocks were found in the old file.
func (p *Plan) BlocksLocal() int {
	n := 0
	for _, off := range p.localOff {
		if off >= 0 {
			n++
		}
	}
	return n
}

// NewPlan matches the old file against a published signature: a rolling
// scan finds, for every block of the new file, whether its content already
// exists anywhere in old. Unmatched blocks become coalesced fetch ranges.
func NewPlan(old, sig []byte) (*Plan, error) {
	s, err := parse(sig)
	if err != nil {
		return nil, err
	}
	p := &Plan{sig: s, localOff: make([]int, len(s.weak))}
	for i := range p.localOff {
		p.localOff[i] = -1
	}

	// Index weak sums -> block indices (only full-size blocks scan; the
	// final short block is checked separately).
	bs := s.blockSize
	fullBlocks := s.fileLen / bs
	index := make(map[uint32][]int32, fullBlocks)
	for i := 0; i < fullBlocks; i++ {
		index[s.weak[i]] = append(index[s.weak[i]], int32(i))
	}
	if len(old) >= bs && fullBlocks > 0 {
		ad := rolling.NewAdler(bs)
		ad.Init(old)
		for pos := 0; ; pos++ {
			if cands, ok := index[ad.Sum()]; ok {
				var strong [strongLen]byte
				sum := md4.Sum(old[pos : pos+bs])
				copy(strong[:], sum[:strongLen])
				for _, bi := range cands {
					if p.localOff[bi] < 0 && s.strong[bi] == strong {
						p.localOff[bi] = pos
					}
				}
			}
			if pos+bs >= len(old) {
				break
			}
			ad.Roll(old[pos], old[pos+bs])
		}
	}
	// Final short block: compare only against the old file's tail.
	if tail := s.fileLen % bs; tail > 0 && len(old) >= tail {
		bi := len(s.weak) - 1
		cand := old[len(old)-tail:]
		if rolling.AdlerSum(cand) == s.weak[bi] {
			sum := md4.Sum(cand)
			var strong [strongLen]byte
			copy(strong[:], sum[:strongLen])
			if s.strong[bi] == strong {
				p.localOff[bi] = len(old) - tail
			}
		}
	}

	// Coalesce missing blocks into ranges.
	for i := 0; i < len(p.localOff); i++ {
		if p.localOff[i] >= 0 {
			continue
		}
		start := i * bs
		end := start + bs
		for i+1 < len(p.localOff) && p.localOff[i+1] < 0 {
			i++
			end += bs
		}
		if end > s.fileLen {
			end = s.fileLen
		}
		p.Ranges = append(p.Ranges, Range{Off: start, Len: end - start})
	}
	return p, nil
}

// Fetcher retrieves a byte range of the current file (e.g. an HTTP range
// request).
type Fetcher func(off, length int) ([]byte, error)

// ContextFetcher is a Fetcher that honors cancellation and deadlines.
type ContextFetcher func(ctx context.Context, off, length int) ([]byte, error)

// ErrVerifyFailed reports that the reconstructed file failed the whole-file
// check (stale signature or block-hash collision); re-fetch the whole file.
var ErrVerifyFailed = errors.New("pubsig: reconstructed file failed whole-file check")

// Reconstruct executes the plan: local blocks are copied from old, missing
// ranges fetched, and the result verified against the whole-file hash.
func (p *Plan) Reconstruct(old []byte, fetch Fetcher) ([]byte, error) {
	return p.ReconstructContext(context.Background(), old, func(_ context.Context, off, length int) ([]byte, error) {
		return fetch(off, length)
	})
}

// ReconstructContext is Reconstruct under a context: the context is checked
// between fetches and passed through to each one, so a canceled sync stops
// instead of draining the remaining ranges.
func (p *Plan) ReconstructContext(ctx context.Context, old []byte, fetch ContextFetcher) ([]byte, error) {
	s := p.sig
	out := make([]byte, s.fileLen)
	for i, off := range p.localOff {
		if off < 0 {
			continue
		}
		start := i * s.blockSize
		end := start + s.blockSize
		if end > s.fileLen {
			end = s.fileLen
		}
		copy(out[start:end], old[off:])
	}
	for _, r := range p.Ranges {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		data, err := fetch(ctx, r.Off, r.Len)
		if err != nil {
			return nil, fmt.Errorf("pubsig: fetching [%d,%d): %w", r.Off, r.Off+r.Len, err)
		}
		if len(data) != r.Len {
			return nil, fmt.Errorf("pubsig: short range fetch at %d", r.Off)
		}
		copy(out[r.Off:], data)
	}
	if md4.Sum(out) != s.whole {
		return nil, ErrVerifyFailed
	}
	return out, nil
}

// Sync runs the whole flow with both sides local, for cost measurement:
// returns the reconstructed file and the downstream cost (signature +
// fetched ranges).
func Sync(old, cur []byte, blockSize int) (out []byte, downBytes int, err error) {
	sig := Build(cur, blockSize)
	plan, err := NewPlan(old, sig)
	if err != nil {
		return nil, 0, err
	}
	out, err = plan.Reconstruct(old, func(off, length int) ([]byte, error) {
		return cur[off : off+length], nil
	})
	if errors.Is(err, ErrVerifyFailed) {
		// Collision fallback: whole file.
		return append([]byte(nil), cur...), len(sig) + plan.FetchBytes() + len(cur), nil
	}
	if err != nil {
		return nil, 0, err
	}
	if !bytes.Equal(out, cur) {
		return nil, 0, errors.New("pubsig: internal reconstruction error")
	}
	return out, len(sig) + plan.FetchBytes(), nil
}
