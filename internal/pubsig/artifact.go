package pubsig

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ArtifactStore holds published artifacts: write-once blobs under
// slash-separated keys. Artifacts are immutable by contract — putting the
// same key twice with identical bytes is a no-op (publish is idempotent and
// content-addressed blobs dedupe across versions), putting different bytes
// is a conflict and fails. Implementations must be safe for concurrent use:
// a Publisher writes while HTTP handlers read.
type ArtifactStore interface {
	// Put stores an immutable artifact under key.
	Put(key string, data []byte) error
	// Get returns the artifact bytes, or ErrNoArtifact when absent. The
	// returned slice must not be mutated by callers.
	Get(key string) ([]byte, error)
	// Keys returns every stored key with the given prefix, sorted.
	Keys(prefix string) ([]string, error)
}

// ErrNoArtifact reports a Get for a key that was never published (or whose
// backing file vanished).
var ErrNoArtifact = errors.New("pubsig: no such artifact")

// ErrArtifactConflict reports a Put that would overwrite an existing
// artifact with different bytes — a broken publisher or a corrupted store,
// never a legal state transition.
var ErrArtifactConflict = errors.New("pubsig: artifact exists with different content")

// checkKey rejects keys that could escape a filesystem store root or that
// would round-trip differently through a URL. Keys are the same namespace
// the HTTP surface exposes, so the rules are strict.
func checkKey(key string) error {
	if key == "" || strings.HasPrefix(key, "/") || strings.HasSuffix(key, "/") {
		return fmt.Errorf("pubsig: bad artifact key %q", key)
	}
	for _, seg := range strings.Split(key, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return fmt.Errorf("pubsig: bad artifact key %q", key)
		}
		if strings.ContainsAny(seg, "\\\x00") {
			return fmt.Errorf("pubsig: bad artifact key %q", key)
		}
	}
	return nil
}

// MemStore is an in-memory ArtifactStore, for tests, benchmarks, and
// ephemeral publishers fronting a CDN that is the real storage tier.
type MemStore struct {
	mu   sync.RWMutex
	blob map[string][]byte
}

// NewMemStore returns an empty in-memory artifact store.
func NewMemStore() *MemStore {
	return &MemStore{blob: make(map[string][]byte)}
}

// Put implements ArtifactStore.
func (m *MemStore) Put(key string, data []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.blob[key]; ok {
		if string(old) == string(data) {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrArtifactConflict, key)
	}
	m.blob[key] = append([]byte(nil), data...)
	return nil
}

// Get implements ArtifactStore.
func (m *MemStore) Get(key string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.blob[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoArtifact, key)
	}
	return data, nil
}

// Keys implements ArtifactStore.
func (m *MemStore) Keys(prefix string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.blob))
	for k := range m.blob {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out, nil
}

// DirStore is a filesystem ArtifactStore: each key is a file under the
// root directory, written atomically (temp file + rename, fsynced) so a
// crashed publish never leaves a torn artifact and two replicas pointed at
// the same directory serve identical bytes. Because artifacts are immutable
// and content- or version-addressed, the directory can be rsynced, served
// by any static file server, or pushed to object storage as-is.
type DirStore struct {
	dir string
}

// NewDirStore opens (creating if needed) a filesystem artifact store rooted
// at dir.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pubsig: artifact dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (d *DirStore) Dir() string { return d.dir }

func (d *DirStore) path(key string) string {
	return filepath.Join(d.dir, filepath.FromSlash(key))
}

// Put implements ArtifactStore.
func (d *DirStore) Put(key string, data []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	path := d.path(key)
	if old, err := os.ReadFile(path); err == nil {
		if string(old) == string(data) {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrArtifactConflict, key)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("pubsig: artifact mkdir: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".pub-*")
	if err != nil {
		return fmt.Errorf("pubsig: artifact temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("pubsig: artifact write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("pubsig: artifact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("pubsig: artifact close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("pubsig: artifact rename: %w", err)
	}
	return nil
}

// Get implements ArtifactStore.
func (d *DirStore) Get(key string) ([]byte, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(d.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNoArtifact, key)
	}
	if err != nil {
		return nil, fmt.Errorf("pubsig: artifact read: %w", err)
	}
	return data, nil
}

// Keys implements ArtifactStore.
func (d *DirStore) Keys(prefix string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(d.dir, func(path string, e fs.DirEntry, err error) error {
		if err != nil || e.IsDir() {
			return err
		}
		if strings.HasPrefix(e.Name(), ".pub-") {
			return nil // orphaned temp file from a crashed publish
		}
		rel, err := filepath.Rel(d.dir, path)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			out = append(out, key)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("pubsig: artifact walk: %w", err)
	}
	sort.Strings(out)
	return out, nil
}
