package pubsig

import (
	"bytes"
	"context"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"msync/internal/md4"
)

// SigSuffix is appended to a resource's path to address its signature.
const SigSuffix = ".msig"

// Handler serves a named resource and its signature over HTTP — what a
// sync-friendly web server needs to publish (paper §1.1, application 3):
//
//	GET /<name>        the content (stdlib Range support included)
//	GET /<name>.msig   the published signature
//
// The signature is computed once at construction; the server does no
// per-client synchronization work at all. Validators are derived from
// content (strong ETag = hex MD4), so two replicas serving the same version
// agree on them and a restart does not invalidate caches; Last-Modified is
// omitted unless supplied via HandlerModTime.
func Handler(name string, content []byte, blockSize int) http.Handler {
	return HandlerModTime(name, content, blockSize, time.Time{})
}

// HandlerModTime is Handler with a caller-supplied modification time (e.g.
// the file's real mtime), surfaced as Last-Modified. A zero modTime omits
// the header and leaves conditional requests to the ETags.
func HandlerModTime(name string, content []byte, blockSize int, modTime time.Time) http.Handler {
	sig := Build(content, blockSize)
	contentSum := md4.Sum(content)
	sigSum := md4.Sum(sig)
	contentTag := `"` + hex.EncodeToString(contentSum[:]) + `"`
	sigTag := `"` + hex.EncodeToString(sigSum[:]) + `"`
	mux := http.NewServeMux()
	mux.HandleFunc("/"+name, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("ETag", contentTag)
		http.ServeContent(w, r, name, modTime, bytes.NewReader(content))
	})
	mux.HandleFunc("/"+name+SigSuffix, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("ETag", sigTag)
		w.Header().Set("Content-Type", "application/octet-stream")
		http.ServeContent(w, r, "", modTime, bytes.NewReader(sig))
	})
	return mux
}

// parseContentRange parses a Content-Range header of the form
// "bytes <start>-<end>/<total>" (total may be "*"), returning total = -1
// when unknown.
func parseContentRange(h string) (start, end, total int64, ok bool) {
	rest, found := strings.CutPrefix(h, "bytes ")
	if !found {
		return 0, 0, 0, false
	}
	span, totalStr, found := strings.Cut(rest, "/")
	if !found {
		return 0, 0, 0, false
	}
	startStr, endStr, found := strings.Cut(span, "-")
	if !found {
		return 0, 0, 0, false
	}
	var err error
	if start, err = strconv.ParseInt(startStr, 10, 64); err != nil || start < 0 {
		return 0, 0, 0, false
	}
	if end, err = strconv.ParseInt(endStr, 10, 64); err != nil || end < start {
		return 0, 0, 0, false
	}
	if totalStr == "*" {
		return start, end, -1, true
	}
	if total, err = strconv.ParseInt(totalStr, 10, 64); err != nil || total <= end {
		return 0, 0, 0, false
	}
	return start, end, total, true
}

// HTTPRangeFetcher returns a ContextFetcher that retrieves byte ranges of
// url with HTTP Range requests. It never trusts the transport blindly:
//
//   - a 206 reply must carry a Content-Range that matches the requested
//     range exactly, and a body of exactly that length — middleboxes that
//     rewrite ranges surface as errors, not silent corruption;
//   - a 200 reply (the server ignored Range) is accepted only when the
//     full body covers the requested range, which is then sliced out;
//   - 416 and every other status fail with the status text;
//   - the request carries the caller's context, so a stalled server is a
//     cancellation/timeout, not a hang.
func HTTPRangeFetcher(client *http.Client, url string) ContextFetcher {
	if client == nil {
		client = http.DefaultClient
	}
	return func(ctx context.Context, off, length int) ([]byte, error) {
		if off < 0 || length <= 0 {
			return nil, fmt.Errorf("pubsig: bad range [%d,%d)", off, off+length)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+length-1))
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusPartialContent:
			start, end, total, ok := parseContentRange(resp.Header.Get("Content-Range"))
			if !ok {
				return nil, fmt.Errorf("pubsig: 206 with unusable Content-Range %q", resp.Header.Get("Content-Range"))
			}
			if start != int64(off) || end != int64(off+length-1) {
				return nil, fmt.Errorf("pubsig: asked for [%d,%d), server sent [%d,%d]", off, off+length, start, end)
			}
			if total >= 0 && total < int64(off+length) {
				return nil, fmt.Errorf("pubsig: range [%d,%d) beyond resource length %d", off, off+length, total)
			}
			data, err := io.ReadAll(io.LimitReader(resp.Body, int64(length)+1))
			if err != nil {
				return nil, err
			}
			if len(data) != length {
				return nil, fmt.Errorf("pubsig: got %d bytes, want %d", len(data), length)
			}
			return data, nil
		case http.StatusOK:
			// Server ignored the Range header; the body is the whole
			// resource. Check the advertised length before reading, then
			// slice the requested range out of the prefix we need.
			if resp.ContentLength >= 0 && resp.ContentLength < int64(off+length) {
				return nil, fmt.Errorf("pubsig: full response of %d bytes cannot cover [%d,%d)", resp.ContentLength, off, off+length)
			}
			data, err := io.ReadAll(io.LimitReader(resp.Body, int64(off+length)))
			if err != nil {
				return nil, err
			}
			if len(data) < off+length {
				return nil, fmt.Errorf("pubsig: short full response: %d bytes cannot cover [%d,%d)", len(data), off, off+length)
			}
			return data[off : off+length : off+length], nil
		case http.StatusRequestedRangeNotSatisfiable:
			return nil, fmt.Errorf("pubsig: range [%d,%d) not satisfiable (stale signature?)", off, off+length)
		default:
			return nil, fmt.Errorf("pubsig: range request: %s", resp.Status)
		}
	}
}

// HTTPFetcher is HTTPRangeFetcher without cancellation, kept for callers
// holding a plain Fetcher.
func HTTPFetcher(client *http.Client, url string) Fetcher {
	f := HTTPRangeFetcher(client, url)
	return func(off, length int) ([]byte, error) {
		return f(context.Background(), off, length)
	}
}

// SyncHTTP updates old to the current version of baseURL/name using the
// published signature and range requests, returning the new content and the
// total bytes downloaded (signature + ranges).
func SyncHTTP(client *http.Client, baseURL, name string, old []byte) ([]byte, int, error) {
	return SyncHTTPContext(context.Background(), client, baseURL, name, old)
}

// SyncHTTPContext is SyncHTTP under a context: both the signature fetch and
// every range request honor cancellation and deadlines.
func SyncHTTPContext(ctx context.Context, client *http.Client, baseURL, name string, old []byte) ([]byte, int, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/"+name+SigSuffix, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, 0, fmt.Errorf("pubsig: signature fetch: %s", resp.Status)
	}
	sig, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, 0, err
	}
	plan, err := NewPlan(old, sig)
	if err != nil {
		return nil, len(sig), err
	}
	down := len(sig)
	fetch := HTTPRangeFetcher(client, baseURL+"/"+name)
	out, err := plan.ReconstructContext(ctx, old, func(ctx context.Context, off, length int) ([]byte, error) {
		data, err := fetch(ctx, off, length)
		down += len(data)
		return data, err
	})
	if err != nil {
		return nil, down, err
	}
	return out, down, nil
}
