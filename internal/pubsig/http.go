package pubsig

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// SigSuffix is appended to a resource's path to address its signature.
const SigSuffix = ".msig"

// Handler serves a named resource and its signature over HTTP — what a
// sync-friendly web server needs to publish (paper §1.1, application 3):
//
//	GET /<name>        the content (stdlib Range support included)
//	GET /<name>.msig   the published signature
//
// The signature is computed once at construction; the server does no
// per-client synchronization work at all.
func Handler(name string, content []byte, blockSize int) http.Handler {
	sig := Build(content, blockSize)
	modTime := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/"+name, func(w http.ResponseWriter, r *http.Request) {
		http.ServeContent(w, r, name, modTime, strings.NewReader(string(content)))
	})
	mux.HandleFunc("/"+name+SigSuffix, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(sig)
	})
	return mux
}

// HTTPFetcher returns a Fetcher that retrieves byte ranges of url with HTTP
// Range requests.
func HTTPFetcher(client *http.Client, url string) Fetcher {
	return func(off, length int) ([]byte, error) {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+length-1))
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusPartialContent:
			data, err := io.ReadAll(io.LimitReader(resp.Body, int64(length)+1))
			if err != nil {
				return nil, err
			}
			if len(data) != length {
				return nil, fmt.Errorf("pubsig: got %d bytes, want %d", len(data), length)
			}
			return data, nil
		case http.StatusOK:
			// Server ignored the Range header; slice the full body.
			data, err := io.ReadAll(io.LimitReader(resp.Body, int64(off+length)+1))
			if err != nil {
				return nil, err
			}
			if off+length > len(data) {
				return nil, fmt.Errorf("pubsig: short full response")
			}
			return data[off : off+length], nil
		default:
			return nil, fmt.Errorf("pubsig: range request: %s", resp.Status)
		}
	}
}

// SyncHTTP updates old to the current version of baseURL/name using the
// published signature and range requests, returning the new content and the
// total bytes downloaded (signature + ranges).
func SyncHTTP(client *http.Client, baseURL, name string, old []byte) ([]byte, int, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(baseURL + "/" + name + SigSuffix)
	if err != nil {
		return nil, 0, err
	}
	sig, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("pubsig: signature fetch: %s", resp.Status)
	}
	plan, err := NewPlan(old, sig)
	if err != nil {
		return nil, len(sig), err
	}
	down := len(sig)
	fetch := HTTPFetcher(client, baseURL+"/"+name)
	out, err := plan.Reconstruct(old, func(off, length int) ([]byte, error) {
		data, err := fetch(off, length)
		down += len(data)
		return data, err
	})
	if err != nil {
		return nil, down, err
	}
	return out, down, nil
}
