package pubsig

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"msync/internal/corpus"
)

// FuzzSignature feeds arbitrary bytes to the published-signature parser and
// planner: malformed blobs must fail cleanly, and any blob that parses must
// plan and reconstruct without panicking — a reader consumes signatures
// from arbitrary HTTP servers, so this surface is adversarial by default.
func FuzzSignature(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	cur := corpus.SourceText(rng, 5_000)
	f.Add(Build(cur, 512), cur[:2_000])
	f.Add(Build(cur, 128), []byte{})
	f.Add(Build(nil, 64), cur[:64])
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}, []byte{})
	f.Fuzz(func(t *testing.T, sig, old []byte) {
		plan, err := NewPlan(old, sig)
		if err != nil {
			return
		}
		_ = plan.BlocksLocal()
		// With no old file nothing can match, so the plan's fetch volume
		// equals the declared file length; bound it before allocating.
		if len(old) == 0 && plan.FetchBytes() < 1<<20 {
			out, err := plan.Reconstruct(nil, func(off, length int) ([]byte, error) {
				return make([]byte, length), nil
			})
			if err == nil && len(out) != plan.FetchBytes() {
				t.Fatalf("reconstructed %d bytes, planned %d", len(out), plan.FetchBytes())
			}
		}
	})
}

// FuzzManifest checks the manifest artifact decoder: no panics, and every
// accepted manifest re-encodes canonically (encode∘parse is a fixpoint).
func FuzzManifest(f *testing.F) {
	s := NewMemStore()
	p, _ := NewPublisher(s)
	rng := rand.New(rand.NewSource(2))
	files := map[string][]byte{
		"a.txt":     corpus.SourceText(rng, 900),
		"dir/b.txt": corpus.SourceText(rng, 1_400),
	}
	p.Publish(files)
	seed, _ := s.Get(manifestKey(1))
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte("psm1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err != nil {
			return
		}
		enc := EncodeManifest(m)
		m2, err := ParseManifest(enc)
		if err != nil {
			t.Fatalf("canonical re-encoding rejected: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatal("manifest round trip drifted")
		}
	})
}

// FuzzDelta is FuzzManifest for the delta artifact decoder.
func FuzzDelta(f *testing.F) {
	s := NewMemStore()
	p, _ := NewPublisher(s)
	rng := rand.New(rand.NewSource(3))
	files := map[string][]byte{
		"a.txt": corpus.SourceText(rng, 900),
		"b.txt": corpus.SourceText(rng, 700),
	}
	p.Publish(files)
	next := map[string][]byte{
		"a.txt": corpus.SourceText(rng, 950),
		"c.txt": corpus.SourceText(rng, 300),
	}
	p.Publish(next)
	seed, _ := s.Get(deltaKey(1, 2))
	f.Add(seed)
	f.Add(seed[:len(seed)*2/3])
	f.Add([]byte("psd1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ParseDelta(data)
		if err != nil {
			return
		}
		enc := EncodeDelta(d)
		d2, err := ParseDelta(enc)
		if err != nil {
			t.Fatalf("canonical re-encoding rejected: %v", err)
		}
		if !reflect.DeepEqual(d, d2) {
			t.Fatal("delta round trip drifted")
		}
	})
}

// FuzzSyncRoundTrip drives the whole local pipeline on fuzzer-shaped
// content: build, plan, reconstruct, verify.
func FuzzSyncRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewSource(4))
	base := corpus.SourceText(rng, 3_000)
	f.Add(base, base[:1_500], 256)
	f.Add([]byte{}, []byte{1, 2, 3}, 64)
	f.Fuzz(func(t *testing.T, cur, old []byte, blockSize int) {
		if blockSize <= 0 || blockSize > 1<<16 || len(cur) > 1<<20 {
			return
		}
		out, _, err := Sync(old, cur, blockSize)
		if err != nil {
			t.Fatalf("sync failed: %v", err)
		}
		if !bytes.Equal(out, cur) {
			t.Fatal("sync did not converge")
		}
	})
}
