package pubsig

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"msync/internal/corpus"
	"msync/internal/md4"
	"msync/internal/rolling"
	"msync/internal/wire"
)

func TestQuickSyncReconstructs(t *testing.T) {
	f := func(seed int64, bsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		bs := []int{128, 512, 1024, 4096}[bsRaw%4]
		old := corpus.SourceText(rng, rng.Intn(50_000))
		em := corpus.EditModel{BurstsPer32KB: 4, BurstEdits: 4, EditSize: 50, BurstSpread: 300}
		cur := em.Apply(rng, old)
		out, _, err := Sync(old, cur, bs)
		return err == nil && bytes.Equal(out, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSignatureSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cur := corpus.SourceText(rng, 1<<20)
	sig := Build(cur, DefaultBlockSize)
	// 8 bytes per 1024-byte block plus header: under 1% of the file.
	if len(sig) > len(cur)/100 {
		t.Fatalf("signature %d bytes for a %d-byte file", len(sig), len(cur))
	}
}

func TestPlanFetchesOnlyChangedRegions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	old := corpus.SourceText(rng, 400_000)
	cur := append([]byte(nil), old...)
	copy(cur[200_000:], []byte("THE EDITED REGION IS RIGHT HERE"))

	sig := Build(cur, DefaultBlockSize)
	plan, err := NewPlan(old, sig)
	if err != nil {
		t.Fatal(err)
	}
	if plan.FetchBytes() > 4*DefaultBlockSize {
		t.Fatalf("plan fetches %d bytes for a one-block edit", plan.FetchBytes())
	}
	if len(plan.Ranges) != 1 {
		t.Fatalf("expected one coalesced range, got %v", plan.Ranges)
	}
	fetched := 0
	out, err := plan.Reconstruct(old, func(off, l int) ([]byte, error) {
		fetched += l
		return cur[off : off+l], nil
	})
	if err != nil || !bytes.Equal(out, cur) {
		t.Fatalf("reconstruct: %v", err)
	}
	if fetched != plan.FetchBytes() {
		t.Fatalf("fetched %d != planned %d", fetched, plan.FetchBytes())
	}
	t.Logf("signature %d B + fetched %d B for a %d B file (%.2f%%)",
		len(sig), fetched, len(cur), 100*float64(len(sig)+fetched)/float64(len(cur)))
}

func TestShiftedContentStillMatches(t *testing.T) {
	// An insertion at the front shifts everything; the rolling scan must
	// still find the blocks at their new (old-file) offsets.
	rng := rand.New(rand.NewSource(3))
	cur := corpus.SourceText(rng, 100_000)
	old := append([]byte("PREFIX INSERTED AT CLIENT "), cur...)

	sig := Build(cur, DefaultBlockSize)
	plan, err := NewPlan(old, sig)
	if err != nil {
		t.Fatal(err)
	}
	if plan.BlocksLocal() < len(plan.localOff)-1 {
		t.Fatalf("only %d/%d blocks found locally despite shift", plan.BlocksLocal(), len(plan.localOff))
	}
	if plan.FetchBytes() > DefaultBlockSize {
		t.Fatalf("fetching %d bytes for pure-shift content", plan.FetchBytes())
	}
}

func TestFetcherErrorPropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	old := corpus.SourceText(rng, 10_000)
	cur := corpus.SourceText(rng, 10_000)
	plan, err := NewPlan(old, Build(cur, 512))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("404")
	if _, err := plan.Reconstruct(old, func(off, l int) ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Short reads are rejected.
	if _, err := plan.Reconstruct(old, func(off, l int) ([]byte, error) { return cur[off : off+l-1], nil }); err == nil {
		t.Fatal("short fetch accepted")
	}
}

func TestStaleSignatureDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	old := corpus.SourceText(rng, 20_000)
	cur := corpus.SourceText(rng, 20_000)
	newer := corpus.SourceText(rng, 20_000) // server content moved on
	plan, err := NewPlan(old, Build(cur, 512))
	if err != nil {
		t.Fatal(err)
	}
	_, err = plan.Reconstruct(old, func(off, l int) ([]byte, error) {
		if off+l > len(newer) {
			l = len(newer) - off
		}
		out := make([]byte, l)
		copy(out, newer[off:])
		return out, nil
	})
	if err == nil {
		t.Fatal("stale signature went undetected")
	}
}

func TestBadSignatures(t *testing.T) {
	sig := Build([]byte("some content for the signature"), 8)
	for cut := 0; cut < len(sig); cut += 3 {
		if _, err := NewPlan(nil, sig[:cut]); err == nil {
			t.Fatalf("truncated signature (cut %d) accepted", cut)
		}
	}
	if _, err := NewPlan(nil, append(sig, 0xFF)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// forgeSignature builds a signature whose per-block hashes describe blocks,
// but whose whole-file hash is whole — modeling a weak-hash collision (all
// truncated block hashes agree, the file does not).
func forgeSignature(blocks []byte, bs int, whole [md4.Size]byte) []byte {
	b := wire.NewBuffer(64)
	b.Uvarint(uint64(len(blocks)))
	b.Uvarint(uint64(bs))
	b.Raw(whole[:])
	for off := 0; off < len(blocks); off += bs {
		end := off + bs
		if end > len(blocks) {
			end = len(blocks)
		}
		blk := blocks[off:end]
		var w [4]byte
		weak := rolling.AdlerSum(blk)
		w[0], w[1], w[2], w[3] = byte(weak), byte(weak>>8), byte(weak>>16), byte(weak>>24)
		b.Raw(w[:])
		sum := md4.Sum(blk)
		b.Raw(sum[:strongLen])
	}
	return b.Build()
}

// TestWholeFileHashBackstopsBlockCollisions: with 4-byte truncated block
// hashes, colliding blocks are possible; the whole-file hash must catch any
// reconstruction assembled from collided blocks. We simulate the collision
// directly: every block of A "matches", but the file-level hash is B's.
func TestWholeFileHashBackstopsBlockCollisions(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := corpus.SourceText(rng, 8_000)
	b := corpus.SourceText(rng, 8_000)

	sig := forgeSignature(a, 512, md4.Sum(b))
	plan, err := NewPlan(a, sig)
	if err != nil {
		t.Fatal(err)
	}
	if plan.FetchBytes() != 0 {
		t.Fatalf("collided blocks not matched locally: %d bytes to fetch", plan.FetchBytes())
	}
	_, err = plan.Reconstruct(a, func(off, l int) ([]byte, error) {
		t.Fatal("fetcher called for a fully-local plan")
		return nil, nil
	})
	if !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("collision slipped through: err = %v", err)
	}

	// Sanity: the honest signature over the same blocks verifies.
	plan, err = NewPlan(a, forgeSignature(a, 512, md4.Sum(a)))
	if err != nil {
		t.Fatal(err)
	}
	out, err := plan.Reconstruct(a, nil)
	if err != nil || !bytes.Equal(out, a) {
		t.Fatalf("honest signature rejected: %v", err)
	}
}

func TestSignatureRejectsOversizeHeader(t *testing.T) {
	// A declared file length over the 1<<40 bound must be refused before any
	// allocation is attempted.
	b := wire.NewBuffer(64)
	b.Uvarint(1 << 50)
	b.Uvarint(512)
	var whole [md4.Size]byte
	b.Raw(whole[:])
	if _, err := NewPlan(nil, b.Build()); err == nil {
		t.Fatal("absurd file length accepted")
	}
	// Zero block size likewise.
	b = wire.NewBuffer(64)
	b.Uvarint(100)
	b.Uvarint(0)
	b.Raw(whole[:])
	if _, err := NewPlan(nil, b.Build()); err == nil {
		t.Fatal("zero block size accepted")
	}
}

func TestEmptyFiles(t *testing.T) {
	out, down, err := Sync(nil, nil, 512)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty/empty: %v", err)
	}
	if down > 64 {
		t.Fatalf("empty sync cost %d", down)
	}
	out, _, err = Sync([]byte("had content"), nil, 512)
	if err != nil || len(out) != 0 {
		t.Fatalf("to-empty: %v", err)
	}
	cur := bytes.Repeat([]byte("z"), 3000)
	out, _, err = Sync(nil, cur, 512)
	if err != nil || !bytes.Equal(out, cur) {
		t.Fatalf("from-empty: %v", err)
	}
}
