package pubsig

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"msync/internal/dirio"
	"msync/internal/obs"
)

func writeTree(t *testing.T, files map[string][]byte) string {
	t.Helper()
	root := t.TempDir()
	if err := dirio.ApplyChanges(root, files, nil); err != nil {
		t.Fatal(err)
	}
	return root
}

func assertTreeEquals(t *testing.T, root string, want map[string][]byte) {
	t.Helper()
	got, err := dirio.Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("tree has %d files, want %d", len(got), len(want))
	}
	for k, v := range want {
		if !bytes.Equal(got[k], v) {
			t.Fatalf("file %q differs after sync", k)
		}
	}
}

func publishServer(t *testing.T, versions ...map[string][]byte) (*httptest.Server, ArtifactStore) {
	t.Helper()
	s := NewMemStore()
	p, err := NewPublisher(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, files := range versions {
		if _, _, err := p.Publish(files); err != nil {
			t.Fatal(err)
		}
	}
	h, err := NewServer(s)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, s
}

func TestSyncerFullManifestPath(t *testing.T) {
	v1 := testFiles(31, 8, 6_000)
	v2 := editSome(v1, 32)
	delete(v2, func() string {
		for k := range v2 {
			return k
		}
		return ""
	}())
	v2["added/file.txt"] = []byte("entirely new content here")
	srv, _ := publishServer(t, v1, v2)

	root := writeTree(t, v1)
	sy := &Syncer{Client: srv.Client(), BaseURL: srv.URL}
	res, err := sy.Sync(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	assertTreeEquals(t, root, v2)
	if res.Version != 2 || res.DeltaPath {
		t.Fatalf("result: %+v", res)
	}
	if res.FilesDeleted != 1 {
		t.Fatalf("deleted %d files, want 1", res.FilesDeleted)
	}
	if res.FilesUnchanged == 0 || res.FilesSynced == 0 {
		t.Fatalf("unchanged=%d synced=%d", res.FilesUnchanged, res.FilesSynced)
	}
	// Light edits must ride ranges, not whole blobs: the wire cost of the
	// changed files should be far below their total size.
	var changedBytes int64
	for k, v := range v2 {
		if !bytes.Equal(v1[k], v) {
			changedBytes += int64(len(v))
		}
	}
	if res.RangeBytes+res.BlobBytes >= changedBytes {
		t.Fatalf("fetched %d content bytes for %d bytes of changed files", res.RangeBytes+res.BlobBytes, changedBytes)
	}
	if res.BytesReusedLocal == 0 {
		t.Fatal("no local block reuse recorded")
	}
}

func TestSyncerDeltaPath(t *testing.T) {
	v1 := testFiles(33, 8, 6_000)
	v2 := editSome(v1, 34)
	srv, _ := publishServer(t, v1, v2)

	root := writeTree(t, v1)
	reg := obs.NewRegistry()
	sy := &Syncer{Client: srv.Client(), BaseURL: srv.URL, BaseVersion: 1, Metrics: reg}
	res, err := sy.Sync(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	assertTreeEquals(t, root, v2)
	if !res.DeltaPath || res.Version != 2 {
		t.Fatalf("delta path not taken: %+v", res)
	}
	if reg.Counter("pubsig_sync_delta_hits").Value() != 1 {
		t.Fatal("delta hit not counted")
	}

	// The delta path must not download the full manifest: its metadata
	// bytes are bounded by the change set, not the collection size.
	fullRes := func() *SyncResult {
		root2 := writeTree(t, v1)
		sy2 := &Syncer{Client: srv.Client(), BaseURL: srv.URL}
		r, err := sy2.Sync(context.Background(), root2)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}()
	if res.ManifestBytes >= fullRes.ManifestBytes {
		t.Fatalf("delta metadata %d >= full manifest %d", res.ManifestBytes, fullRes.ManifestBytes)
	}
}

func TestSyncerUpToDate(t *testing.T) {
	v1 := testFiles(35, 5, 4_000)
	srv, _ := publishServer(t, v1)
	root := writeTree(t, v1)

	// Announcing the current version costs two tiny requests and no work.
	sy := &Syncer{Client: srv.Client(), BaseURL: srv.URL, BaseVersion: 1}
	res, err := sy.Sync(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeltaPath || res.FilesSynced+res.FilesFull+res.FilesDeleted != 0 {
		t.Fatalf("up-to-date sync did work: %+v", res)
	}
	if res.SigBytes+res.RangeBytes+res.BlobBytes != 0 {
		t.Fatalf("up-to-date sync downloaded content: %+v", res)
	}
	assertTreeEquals(t, root, v1)
}

func TestSyncerUnknownBaseFallsBack(t *testing.T) {
	v1 := testFiles(36, 6, 5_000)
	v2 := editSome(v1, 37)
	srv, _ := publishServer(t, v1, v2)
	root := writeTree(t, v1)

	// Version 77 was never published: /since misses, the full manifest
	// path must still converge.
	sy := &Syncer{Client: srv.Client(), BaseURL: srv.URL, BaseVersion: 77}
	res, err := sy.Sync(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeltaPath {
		t.Fatal("rode a delta for an unknown base")
	}
	assertTreeEquals(t, root, v2)
}

func TestSyncerFromScratchAndTamper(t *testing.T) {
	v1 := testFiles(38, 5, 4_000)
	srv, _ := publishServer(t, v1)

	// Empty tree: every file arrives as a whole blob.
	root := t.TempDir()
	sy := &Syncer{Client: srv.Client(), BaseURL: srv.URL}
	res, err := sy.Sync(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	assertTreeEquals(t, root, v1)
	if res.FilesFull != len(v1) || res.FilesSynced != 0 {
		t.Fatalf("from-scratch: %+v", res)
	}

	// Tamper with one local file, keeping its size (mtime also changes,
	// but the full path hashes, so even a same-mtime tamper is caught).
	var victim string
	for k := range v1 {
		victim = k
		break
	}
	path := filepath.Join(root, filepath.FromSlash(victim))
	data := append([]byte(nil), v1[victim]...)
	for i := range data[:200] {
		data[i] ^= 0x5A
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err = sy.Sync(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	assertTreeEquals(t, root, v1)
	if res.FilesSynced != 1 {
		t.Fatalf("tampered file not repaired: %+v", res)
	}
}

func TestSyncerDryRun(t *testing.T) {
	v1 := testFiles(39, 6, 4_000)
	v2 := editSome(v1, 40)
	srv, _ := publishServer(t, v1, v2)
	root := writeTree(t, v1)

	sy := &Syncer{Client: srv.Client(), BaseURL: srv.URL, DryRun: true}
	res, err := sy.Sync(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	if res.FilesSynced == 0 {
		t.Fatal("dry run found nothing to do")
	}
	if res.SigBytes+res.RangeBytes+res.BlobBytes != 0 {
		t.Fatalf("dry run downloaded content: %+v", res)
	}
	assertTreeEquals(t, root, v1) // untouched
}

func TestSyncerCancellation(t *testing.T) {
	v1 := testFiles(41, 6, 5_000)
	srv, _ := publishServer(t, v1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sy := &Syncer{Client: srv.Client(), BaseURL: srv.URL}
	if _, err := sy.Sync(ctx, t.TempDir()); err == nil {
		t.Fatal("canceled sync succeeded")
	}
}

// TestSyncerRepeatedIsStable: syncing twice in a row converges then does
// nothing, and the second sync's announced base rides the 204 fast path.
func TestSyncerRepeatedIsStable(t *testing.T) {
	v1 := testFiles(42, 7, 5_000)
	v2 := editSome(v1, 43)
	srv, _ := publishServer(t, v1, v2)
	root := writeTree(t, v1)

	sy := &Syncer{Client: srv.Client(), BaseURL: srv.URL}
	res1, err := sy.Sync(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	sy.BaseVersion = res1.Version
	res2, err := sy.Sync(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	if res2.FilesSynced+res2.FilesFull+res2.FilesDeleted != 0 {
		t.Fatalf("second sync did work: %+v", res2)
	}
	assertTreeEquals(t, root, v2)
}
