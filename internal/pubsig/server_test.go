package pubsig

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func publishTwo(t *testing.T) (ArtifactStore, map[string][]byte, map[string][]byte) {
	t.Helper()
	s := NewMemStore()
	p, err := NewPublisher(s)
	if err != nil {
		t.Fatal(err)
	}
	v1 := testFiles(21, 6, 5_000)
	v2 := editSome(v1, 22)
	if _, _, err := p.Publish(v1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Publish(v2); err != nil {
		t.Fatal(err)
	}
	return s, v1, v2
}

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestServerEndpoints(t *testing.T) {
	store, _, _ := publishTwo(t)
	h, err := NewServer(store)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, body := get(t, srv, "/latest")
	if resp.StatusCode != 200 {
		t.Fatalf("/latest: %s", resp.Status)
	}
	var latest struct {
		Version  uint64 `json:"version"`
		Manifest string `json:"manifest"`
	}
	if err := json.Unmarshal(body, &latest); err != nil || latest.Version != 2 {
		t.Fatalf("/latest body %q: %v", body, err)
	}
	if cc := resp.Header.Get("Cache-Control"); strings.Contains(cc, "immutable") {
		t.Fatalf("/latest must not be immutable: %q", cc)
	}

	resp, body = get(t, srv, latest.Manifest)
	if resp.StatusCode != 200 {
		t.Fatalf("manifest: %s", resp.Status)
	}
	m, err := ParseManifest(body)
	if err != nil || m.Version != 2 {
		t.Fatalf("manifest parse: %v", err)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != cacheImmutable {
		t.Fatalf("manifest Cache-Control = %q", cc)
	}
	if et := resp.Header.Get("ETag"); et == "" || !strings.HasPrefix(et, `"`) {
		t.Fatalf("manifest ETag = %q", et)
	}
	if resp.Header.Get("Content-Length") == "" {
		t.Fatal("manifest has no Content-Length")
	}

	e := m.Entries[0]
	sigURL := fmt.Sprintf("/v/%d/sig/%x", m.Version, e.Sum)
	resp, body = get(t, srv, sigURL)
	if resp.StatusCode != 200 {
		t.Fatalf("sig: %s", resp.Status)
	}
	if _, err := NewPlan(nil, body); err != nil {
		t.Fatalf("served sig unparsable: %v", err)
	}
	resp, body = get(t, srv, fmt.Sprintf("/v/%d/blob/%x", m.Version, e.Sum))
	if resp.StatusCode != 200 || len(body) != e.Len {
		t.Fatalf("blob: %s, %d bytes want %d", resp.Status, len(body), e.Len)
	}

	resp, body = get(t, srv, "/health")
	if resp.StatusCode != 200 {
		t.Fatalf("/health: %s", resp.Status)
	}
	var health struct {
		Status   string `json:"status"`
		Latest   uint64 `json:"latest"`
		Versions int    `json:"versions"`
	}
	if err := json.Unmarshal(body, &health); err != nil || health.Status != "ok" || health.Latest != 2 || health.Versions != 2 {
		t.Fatalf("/health body %q: %v", body, err)
	}

	for _, missing := range []string{
		"/v/9/manifest", "/v/0/manifest", "/v/2/sig/feedfeed", "/v/2/sig/zz",
		"/since/0", "/since/9", "/nope", "/v/2/unknown",
	} {
		if resp, _ := get(t, srv, missing); resp.StatusCode != 404 {
			t.Errorf("%s: %s, want 404", missing, resp.Status)
		}
	}

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/latest", nil)
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST: %s", resp.Status)
	}
}

func TestServerSince(t *testing.T) {
	store, v1, v2 := publishTwo(t)
	h, _ := NewServer(store)
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, body := get(t, srv, "/since/1")
	if resp.StatusCode != 200 {
		t.Fatalf("/since/1: %s", resp.Status)
	}
	d, err := ParseDelta(body)
	if err != nil || d.Base != 1 || d.Current != 2 {
		t.Fatalf("delta: %+v, %v", d, err)
	}
	changed := 0
	for k := range v1 {
		if !bytes.Equal(v1[k], v2[k]) {
			changed++
		}
	}
	if len(d.Upserts) != changed {
		t.Fatalf("delta upserts = %d, want %d", len(d.Upserts), changed)
	}

	// A reader already at the latest version gets 204.
	resp, _ = get(t, srv, "/since/2")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("/since/latest: %s", resp.Status)
	}
}

// TestServerValidatorsStableAcrossRestarts pins the time.Now() fix at the
// REST surface: two server instances (a restart, or two replicas) over the
// same artifacts must serve identical ETags, and conditional requests made
// against one must revalidate against the other.
func TestServerValidatorsStableAcrossRestarts(t *testing.T) {
	store, _, _ := publishTwo(t)
	h1, _ := NewServer(store)
	srv1 := httptest.NewServer(h1)
	resp1, body1 := get(t, srv1, "/v/2/manifest")
	etag1 := resp1.Header.Get("ETag")
	lm1 := resp1.Header.Get("Last-Modified")
	srv1.Close()
	time.Sleep(10 * time.Millisecond) // a restart takes nonzero wall time

	h2, _ := NewServer(store)
	srv2 := httptest.NewServer(h2)
	defer srv2.Close()
	resp2, body2 := get(t, srv2, "/v/2/manifest")
	if etag2 := resp2.Header.Get("ETag"); etag2 != etag1 || etag1 == "" {
		t.Fatalf("ETag drifted across restart: %q vs %q", etag1, etag2)
	}
	if lm2 := resp2.Header.Get("Last-Modified"); lm2 != lm1 {
		t.Fatalf("Last-Modified drifted across restart: %q vs %q", lm1, lm2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("artifact bytes drifted across restart")
	}

	// A cached copy from the first server revalidates against the second.
	req, _ := http.NewRequest(http.MethodGet, srv2.URL+"/v/2/manifest", nil)
	req.Header.Set("If-None-Match", etag1)
	resp, err := srv2.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match across restart: %s, want 304", resp.Status)
	}
}

func TestServerBlobRangeAndHead(t *testing.T) {
	store, _, _ := publishTwo(t)
	h, _ := NewServer(store, WithModTime(time.Unix(1700000000, 0)))
	srv := httptest.NewServer(h)
	defer srv.Close()

	m, err := LoadManifest(store, 2)
	if err != nil {
		t.Fatal(err)
	}
	e := m.Entries[0]
	url := fmt.Sprintf("%s/v/2/blob/%x", srv.URL, e.Sum)

	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("Range", "bytes=100-199")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent || len(body) != 100 {
		t.Fatalf("range: %s, %d bytes", resp.Status, len(body))
	}
	if cr := resp.Header.Get("Content-Range"); !strings.HasPrefix(cr, "bytes 100-199/") {
		t.Fatalf("Content-Range = %q", cr)
	}
	full, _ := store.Get(blobKey(e.Sum))
	if !bytes.Equal(body, full[100:200]) {
		t.Fatal("range bytes wrong")
	}

	headReq, _ := http.NewRequest(http.MethodHead, url, nil)
	resp, err = srv.Client().Do(headReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("ETag") == "" || resp.ContentLength != int64(e.Len) {
		t.Fatalf("HEAD: %s, ETag %q, length %d", resp.Status, resp.Header.Get("ETag"), resp.ContentLength)
	}
	if resp.Header.Get("Last-Modified") == "" {
		t.Fatal("WithModTime set but no Last-Modified served")
	}
}
