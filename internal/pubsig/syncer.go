package pubsig

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"msync/internal/collection"
	"msync/internal/dirio"
	"msync/internal/md4"
	"msync/internal/obs"
)

// Syncer reconciles a local directory tree against a published artifact
// server (Server or any static host of the same layout). All matching work
// runs on the reader: the origin only serves immutable bytes, so a million
// Syncers cost it nothing but bandwidth — and behind a CDN, not even that.
//
// A Syncer announcing a BaseVersion first asks /since/<base> for the
// composed manifest delta and touches only the files that changed; any miss
// (unknown base, pruned chain) falls back to the full manifest, so the
// delta path is an optimization, never a correctness dependency.
type Syncer struct {
	// Client is the HTTP client to use (nil = http.DefaultClient).
	Client *http.Client
	// BaseURL is the artifact server root, e.g. "http://mirror:8080".
	BaseURL string
	// BaseVersion, when nonzero, is the published version this tree is
	// believed to hold; it rides the /since delta path. Readers learn it
	// from the previous SyncResult.Version.
	BaseVersion uint64
	// DryRun plans and fetches nothing beyond metadata: it reports which
	// files would change without writing or downloading content.
	DryRun bool
	// Metrics, when set, counts requests, bytes by artifact kind, and
	// per-file outcomes.
	Metrics *obs.Registry
	// Tracer, when set, receives one PhaseFetch span per reconciled file
	// and one PhaseSession span for the whole sync.
	Tracer obs.Tracer
}

// SyncResult reports what one Sync did.
type SyncResult struct {
	// Version is the published version the tree now matches; announce it
	// as BaseVersion next time.
	Version uint64 `json:"version"`
	// DeltaPath reports whether the /since fast path served this sync.
	DeltaPath bool `json:"delta_path"`
	// FilesTotal is the number of files in the target version (full path)
	// or mentioned by the delta (delta path).
	FilesTotal int `json:"files_total"`
	// FilesUnchanged were locally verified as already current.
	FilesUnchanged int `json:"files_unchanged"`
	// FilesSynced were updated through signature + range fetches.
	FilesSynced int `json:"files_synced"`
	// FilesFull were fetched whole (no local basis, or verify fallback).
	FilesFull int `json:"files_full"`
	// FilesDeleted were removed locally.
	FilesDeleted int `json:"files_deleted"`
	// RangesFetched counts HTTP range requests issued.
	RangesFetched int `json:"ranges_fetched"`
	// BytesDown is the total HTTP body bytes downloaded, the sum of the
	// per-kind counts below.
	BytesDown     int64 `json:"bytes_down"`
	ManifestBytes int64 `json:"manifest_bytes"` // /latest + manifest or delta
	SigBytes      int64 `json:"sig_bytes"`
	RangeBytes    int64 `json:"range_bytes"`
	BlobBytes     int64 `json:"blob_bytes"`
	// BytesReusedLocal counts new-file bytes materialized from local
	// blocks instead of the network.
	BytesReusedLocal int64 `json:"bytes_reused_local"`
	// BytesHashedLocal counts local hashing work (the reader's share of
	// the matching the origin no longer does).
	BytesHashedLocal int64 `json:"bytes_hashed_local"`
}

func (s *Syncer) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return http.DefaultClient
}

func (s *Syncer) count(name string, n int64) {
	if s.Metrics != nil && n != 0 {
		s.Metrics.Counter(name).Add(n)
	}
}

// get fetches one URL path, returning the body. A nil error means status
// 200; http.StatusNoContent and 404 surface as typed sentinel errors so
// callers can branch without string matching.
var (
	errUpToDate = errors.New("pubsig: up to date")
	errNotFound = errors.New("pubsig: not found")
)

func (s *Syncer) get(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimSuffix(s.BaseURL, "/")+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	s.count("pubsig_fetch_requests", 1)
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, fmt.Errorf("pubsig: reading %s: %w", path, err)
		}
		s.count("pubsig_fetch_bytes", int64(len(data)))
		return data, nil
	case http.StatusNoContent:
		return nil, errUpToDate
	case http.StatusNotFound:
		return nil, fmt.Errorf("%w: %s", errNotFound, path)
	default:
		return nil, fmt.Errorf("pubsig: GET %s: %s", path, resp.Status)
	}
}

// Sync brings root up to the latest published version.
func (s *Syncer) Sync(ctx context.Context, root string) (*SyncResult, error) {
	start := time.Now()
	res, err := s.sync(ctx, root)
	if s.Tracer != nil {
		ev := obs.Event{
			Time:    time.Now(),
			Session: obs.NextSessionID(),
			Side:    "client",
			Phase:   obs.PhaseSession,
			Dur:     time.Since(start),
		}
		if err != nil {
			ev.Err = err.Error()
		} else {
			ev.BytesDown = res.BytesDown
		}
		s.Tracer.Emit(ev)
	}
	return res, err
}

func (s *Syncer) sync(ctx context.Context, root string) (*SyncResult, error) {
	res := &SyncResult{}
	latestRaw, err := s.get(ctx, "/latest")
	if err != nil {
		return nil, fmt.Errorf("pubsig: resolving latest version: %w", err)
	}
	res.ManifestBytes += int64(len(latestRaw))
	var latest struct {
		Version uint64 `json:"version"`
	}
	if err := json.Unmarshal(latestRaw, &latest); err != nil || latest.Version == 0 {
		return nil, fmt.Errorf("pubsig: bad /latest response")
	}
	res.Version = latest.Version

	tree, _, err := dirio.OpenTree(root)
	if err != nil {
		return nil, err
	}
	local := make(map[string]dirio.FileInfo, len(tree.Files()))
	for _, fi := range tree.Files() {
		local[fi.Path] = fi
	}

	// Work list: either the /since delta (announced base, server still
	// holds the chain) or the full manifest.
	var upserts []collection.ManifestEntry
	var deleted []string
	if s.BaseVersion > 0 && s.BaseVersion <= latest.Version {
		data, err := s.get(ctx, fmt.Sprintf("/since/%d", s.BaseVersion))
		switch {
		case errors.Is(err, errUpToDate):
			res.DeltaPath = true
			return res, nil
		case err == nil:
			d, perr := ParseDelta(data)
			if perr == nil && d.Base == s.BaseVersion {
				res.ManifestBytes += int64(len(data))
				res.DeltaPath = true
				res.Version = d.Current
				upserts, deleted = d.Upserts, d.Deleted
				s.count("pubsig_sync_delta_hits", 1)
			}
		case errors.Is(err, errNotFound):
			// fall through to the full manifest
		default:
			return nil, err
		}
	}
	if !res.DeltaPath {
		s.count("pubsig_sync_delta_misses", 1)
		data, err := s.get(ctx, fmt.Sprintf("/v/%d/manifest", latest.Version))
		if err != nil {
			return nil, fmt.Errorf("pubsig: fetching manifest v%d: %w", latest.Version, err)
		}
		res.ManifestBytes += int64(len(data))
		m, err := ParseManifest(data)
		if err != nil {
			return nil, err
		}
		res.Version = m.Version
		upserts = m.Entries
		inManifest := make(map[string]bool, len(m.Entries))
		for _, e := range m.Entries {
			inManifest[e.Path] = true
		}
		for path := range local {
			if !inManifest[path] {
				deleted = append(deleted, path)
			}
		}
	}
	res.FilesTotal = len(upserts) + len(deleted)

	changed := make(map[string][]byte)
	for _, e := range upserts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fi, exists := local[e.Path]
		// A local file of the right size might already be current; only
		// hashing can tell (full-path verification; on the delta path the
		// entry is known-changed, but the cheap check still dedupes
		// repeated syncs of the same delta).
		if exists && int(fi.Size) == e.Len {
			sum, n, err := tree.HashFile(e.Path)
			if err == nil {
				res.BytesHashedLocal += n
				if sum == e.Sum {
					res.FilesUnchanged++
					continue
				}
			}
		}
		if s.DryRun {
			res.FilesSynced++
			continue
		}
		var old []byte
		if exists {
			if old, err = tree.Load(e.Path); err != nil {
				old = nil // unreadable basis: fetch whole
			}
		}
		out, err := s.syncFile(ctx, res, e, old)
		if err != nil {
			return nil, fmt.Errorf("pubsig: syncing %q: %w", e.Path, err)
		}
		changed[e.Path] = out
	}

	var deletions []string
	for _, path := range deleted {
		if _, exists := local[path]; exists {
			deletions = append(deletions, path)
			res.FilesDeleted++
		}
	}
	if !s.DryRun && (len(changed) > 0 || len(deletions) > 0) {
		if err := dirio.ApplyChanges(root, changed, deletions); err != nil {
			return nil, err
		}
	}
	res.BytesDown = res.ManifestBytes + res.SigBytes + res.RangeBytes + res.BlobBytes
	s.count("pubsig_sync_files_synced", int64(res.FilesSynced))
	s.count("pubsig_sync_files_full", int64(res.FilesFull))
	s.count("pubsig_sync_files_unchanged", int64(res.FilesUnchanged))
	s.count("pubsig_sync_bytes_down", res.BytesDown)
	return res, nil
}

// syncFile brings one file to the published state described by e: signature
// + range fetches when a local basis exists, whole blob otherwise, whole
// blob again if the reconstruction fails its whole-file check (stale cache
// or block-hash collision — the manifest fingerprint backstops both).
func (s *Syncer) syncFile(ctx context.Context, res *SyncResult, e collection.ManifestEntry, old []byte) ([]byte, error) {
	start := time.Now()
	var fetched int64
	defer func() {
		if s.Tracer != nil {
			s.Tracer.Emit(obs.Event{
				Time:      time.Now(),
				Side:      "client",
				Phase:     obs.PhaseFetch,
				BytesDown: fetched,
				Dur:       time.Since(start),
			})
		}
	}()
	if e.Len == 0 {
		res.FilesSynced++
		return []byte{}, nil
	}
	hash := hex.EncodeToString(e.Sum[:])
	blobPath := fmt.Sprintf("/v/%d/blob/%s", res.Version, hash)
	full := func() ([]byte, error) {
		data, err := s.get(ctx, blobPath)
		if err != nil {
			return nil, err
		}
		res.BlobBytes += int64(len(data))
		fetched += int64(len(data))
		if len(data) != e.Len || md4.Sum(data) != e.Sum {
			return nil, fmt.Errorf("pubsig: blob %s does not match its manifest entry", hash)
		}
		res.FilesFull++
		return data, nil
	}
	if len(old) == 0 {
		return full()
	}
	sig, err := s.get(ctx, fmt.Sprintf("/v/%d/sig/%s", res.Version, hash))
	if err != nil {
		return nil, err
	}
	res.SigBytes += int64(len(sig))
	fetched += int64(len(sig))
	plan, err := NewPlan(old, sig)
	if err != nil {
		return nil, err
	}
	res.BytesHashedLocal += int64(len(old)) // the rolling scan's work
	rangeStart := res.RangeBytes
	rangeFetch := HTTPRangeFetcher(s.client(), strings.TrimSuffix(s.BaseURL, "/")+blobPath)
	out, err := plan.ReconstructContext(ctx, old, func(ctx context.Context, off, length int) ([]byte, error) {
		data, err := rangeFetch(ctx, off, length)
		res.RangeBytes += int64(len(data))
		res.RangesFetched++
		fetched += int64(len(data))
		s.count("pubsig_fetch_ranges", 1)
		return data, err
	})
	if errors.Is(err, ErrVerifyFailed) {
		return full()
	}
	if err != nil {
		return nil, err
	}
	// The signature already verified out against its own whole-file hash;
	// pin it to the manifest fingerprint too, so a mislabeled artifact
	// cannot slip through.
	if md4.Sum(out) != e.Sum {
		return full()
	}
	res.BytesReusedLocal += int64(e.Len) - (res.RangeBytes - rangeStart)
	res.FilesSynced++
	return out, nil
}
