package pubsig

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"msync/internal/corpus"
	"msync/internal/md4"
	"msync/internal/obs"
)

func testFiles(seed int64, n, size int) map[string][]byte {
	rng := rand.New(rand.NewSource(seed))
	files := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		files[pathFor(i)] = corpus.SourceText(rng, size)
	}
	return files
}

func pathFor(i int) string {
	return string(rune('a'+i%3)) + "/" + string(rune('a'+i/3)) + ".txt"
}

func editSome(files map[string][]byte, seed int64) map[string][]byte {
	rng := rand.New(rand.NewSource(seed))
	em := corpus.EditModel{BurstsPer32KB: 4, BurstEdits: 4, EditSize: 40, BurstSpread: 200}
	next := make(map[string][]byte, len(files))
	i := 0
	for k, v := range files {
		next[k] = v
		if i%3 == 0 {
			next[k] = em.Apply(rng, v)
		}
		i++
	}
	return next
}

func TestPublishRoundTrip(t *testing.T) {
	s := NewMemStore()
	p, err := NewPublisher(s, WithBlockSize(512))
	if err != nil {
		t.Fatal(err)
	}
	files := testFiles(1, 9, 8_000)
	v, created, err := p.Publish(files)
	if err != nil || !created || v != 1 {
		t.Fatalf("publish: v=%d created=%v err=%v", v, created, err)
	}
	m, err := LoadManifest(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Entries) != len(files) || m.Version != 1 || m.BlockSize != 512 {
		t.Fatalf("manifest: %+v", m)
	}
	for _, e := range m.Entries {
		want := files[e.Path]
		if e.Len != len(want) || e.Sum != md4.Sum(want) {
			t.Fatalf("entry %q does not fingerprint its file", e.Path)
		}
		blob, err := s.Get(blobKey(e.Sum))
		if err != nil || !bytes.Equal(blob, want) {
			t.Fatalf("blob for %q: %v", e.Path, err)
		}
		sig, err := s.Get(sigKey(e.Sum))
		if err != nil {
			t.Fatalf("sig for %q: %v", e.Path, err)
		}
		if plan, err := NewPlan(want, sig); err != nil || plan.FetchBytes() != 0 {
			t.Fatalf("sig for %q does not describe its content: %v", e.Path, err)
		}
	}
}

func TestPublishIdempotentAndVersioned(t *testing.T) {
	s := NewMemStore()
	p, _ := NewPublisher(s)
	files := testFiles(2, 6, 4_000)
	if v, created, err := p.Publish(files); v != 1 || !created || err != nil {
		t.Fatalf("v1: %d %v %v", v, created, err)
	}
	// Unchanged collection: same version, nothing created.
	if v, created, err := p.Publish(files); v != 1 || created || err != nil {
		t.Fatalf("re-publish unchanged: %d %v %v", v, created, err)
	}
	next := editSome(files, 3)
	if v, created, err := p.Publish(next); v != 2 || !created || err != nil {
		t.Fatalf("v2: %d %v %v", v, created, err)
	}
	if p.Latest() != 2 {
		t.Fatalf("latest = %d", p.Latest())
	}
	// The delta artifact exists and lists exactly the changed paths.
	d, err := ComposeDelta(s, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range d.Upserts {
		if bytes.Equal(files[e.Path], next[e.Path]) {
			t.Fatalf("delta lists unchanged path %q", e.Path)
		}
	}
	changed := 0
	for k, v := range files {
		if !bytes.Equal(v, next[k]) {
			changed++
		}
	}
	if len(d.Upserts) != changed || len(d.Deleted) != 0 {
		t.Fatalf("delta upserts=%d deleted=%d, want %d/0", len(d.Upserts), len(d.Deleted), changed)
	}
}

// TestPublishDeterministicAcrossRestarts pins the acceptance criterion:
// the same collection version yields byte-identical artifacts no matter
// which publisher instance (or process lifetime) produced them.
func TestPublishDeterministicAcrossRestarts(t *testing.T) {
	files := testFiles(4, 8, 6_000)
	next := editSome(files, 5)

	build := func() ArtifactStore {
		s := NewMemStore()
		p, err := NewPublisher(s)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := p.Publish(files); err != nil {
			t.Fatal(err)
		}
		// "Restart": a fresh publisher recovers state from the artifacts
		// alone and continues the version sequence.
		p2, err := NewPublisher(s)
		if err != nil {
			t.Fatal(err)
		}
		if p2.Latest() != 1 {
			t.Fatalf("recovered latest = %d", p2.Latest())
		}
		if v, created, err := p2.Publish(next); v != 2 || !created || err != nil {
			t.Fatalf("post-restart publish: %d %v %v", v, created, err)
		}
		return s
	}

	a, b := build(), build()
	keysA, _ := a.Keys("")
	keysB, _ := b.Keys("")
	if !reflect.DeepEqual(keysA, keysB) {
		t.Fatalf("key sets differ:\n%v\n%v", keysA, keysB)
	}
	if len(keysA) == 0 {
		t.Fatal("no artifacts")
	}
	for _, k := range keysA {
		da, _ := a.Get(k)
		db, _ := b.Get(k)
		if !bytes.Equal(da, db) {
			t.Fatalf("artifact %s differs between publisher lifetimes", k)
		}
	}
}

func TestPublisherRejectsBlockSizeDrift(t *testing.T) {
	s := NewMemStore()
	p, _ := NewPublisher(s, WithBlockSize(512))
	if _, _, err := p.Publish(testFiles(6, 3, 2_000)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPublisher(s, WithBlockSize(1024)); err == nil {
		t.Fatal("block-size drift accepted")
	}
	if _, err := NewPublisher(s, WithBlockSize(512)); err != nil {
		t.Fatalf("same block size refused: %v", err)
	}
}

func TestPublishDeletionsAndComposedDeltas(t *testing.T) {
	s := NewMemStore()
	p, _ := NewPublisher(s)
	files := testFiles(7, 6, 3_000)
	if _, _, err := p.Publish(files); err != nil {
		t.Fatal(err)
	}
	v2 := editSome(files, 8)
	var dropped string
	for k := range v2 {
		dropped = k
		break
	}
	delete(v2, dropped)
	if _, _, err := p.Publish(v2); err != nil {
		t.Fatal(err)
	}
	v3 := make(map[string][]byte, len(v2)+1)
	for k, v := range v2 {
		v3[k] = v
	}
	v3["brand/new.txt"] = []byte("fresh content")
	if _, _, err := p.Publish(v3); err != nil {
		t.Fatal(err)
	}

	// Composed 1→3 delta must equal the direct manifest diff.
	d, err := ComposeDelta(s, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, path := range d.Deleted {
		if path == dropped {
			found = true
		}
		if _, stillThere := v3[path]; stillThere {
			t.Fatalf("delta deletes surviving path %q", path)
		}
	}
	if !found {
		t.Fatalf("composed delta misses deletion of %q (deleted: %v)", dropped, d.Deleted)
	}
	gotNew := false
	for _, e := range d.Upserts {
		if !bytes.Equal(v3[e.Path], nil) && e.Sum != md4.Sum(v3[e.Path]) {
			t.Fatalf("upsert %q has stale fingerprint", e.Path)
		}
		if e.Path == "brand/new.txt" {
			gotNew = true
		}
	}
	if !gotNew {
		t.Fatal("composed delta misses the added file")
	}
	// A re-added path must not linger in Deleted.
	for _, path := range d.Deleted {
		for _, e := range d.Upserts {
			if e.Path == path {
				t.Fatalf("path %q both deleted and upserted", path)
			}
		}
	}
}

func TestManifestAndDeltaParseRejectCorruption(t *testing.T) {
	s := NewMemStore()
	p, _ := NewPublisher(s)
	files := testFiles(9, 4, 2_000)
	p.Publish(files)
	p.Publish(editSome(files, 10))

	mRaw, _ := s.Get(manifestKey(1))
	if _, err := ParseManifest(mRaw); err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(mRaw); cut += 7 {
		if _, err := ParseManifest(mRaw[:cut]); err == nil {
			t.Fatalf("truncated manifest (cut %d) accepted", cut)
		}
	}
	if _, err := ParseManifest(append(append([]byte(nil), mRaw...), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	flipped := append([]byte(nil), mRaw...)
	flipped[len(flipped)-1] ^= 0xFF
	if _, err := ParseManifest(flipped); err == nil {
		t.Fatal("digest-breaking flip accepted")
	}

	dRaw, _ := s.Get(deltaKey(1, 2))
	if _, err := ParseDelta(dRaw); err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(dRaw); cut += 7 {
		if _, err := ParseDelta(dRaw[:cut]); err == nil {
			t.Fatalf("truncated delta (cut %d) accepted", cut)
		}
	}
	if _, err := ParseDelta(mRaw); err == nil {
		t.Fatal("manifest parsed as delta")
	}
}

func TestPublisherMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	p, _ := NewPublisher(NewMemStore(), WithPublisherMetrics(reg))
	files := testFiles(11, 5, 3_000)
	if _, _, err := p.Publish(files); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("pubsig_publish_versions").Value(); got != 1 {
		t.Fatalf("versions counter = %d", got)
	}
	if reg.Counter("pubsig_publish_bytes_hashed").Value() == 0 {
		t.Fatal("no hashing accounted")
	}
	// Publishing the identical collection again must cost no hashing.
	before := reg.Counter("pubsig_publish_bytes_hashed").Value()
	if _, created, _ := p.Publish(files); created {
		t.Fatal("identical publish created a version")
	}
	if got := reg.Counter("pubsig_publish_bytes_hashed").Value(); got != before {
		t.Fatalf("identical publish hashed %d extra bytes", got-before)
	}
}
