package pubsig

import (
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"msync/internal/collection"
	"msync/internal/dirio"
	"msync/internal/md4"
	"msync/internal/obs"
	"msync/internal/store"
	"msync/internal/wire"
)

// Artifact key layout inside an ArtifactStore. The HTTP surface mirrors it
// one-to-one (PROTOCOL.md "Published artifacts"), so a DirStore directory
// can be served verbatim by any static file server or object store.
//
//	v/<%08d>/manifest      versioned manifest (one per published version)
//	sig/<hex md4>          per-file signature blob, keyed by file content
//	blob/<hex md4>         full file content, keyed by file content
//	delta/<%08d>-<%08d>    manifest delta between consecutive versions
const (
	manifestKeyFmt = "v/%08d/manifest"
	deltaKeyFmt    = "delta/%08d-%08d"
	sigKeyPrefix   = "sig/"
	blobKeyPrefix  = "blob/"
)

func manifestKey(n uint64) string       { return fmt.Sprintf(manifestKeyFmt, n) }
func deltaKey(base, cur uint64) string  { return fmt.Sprintf(deltaKeyFmt, base, cur) }
func sigKey(sum [md4.Size]byte) string  { return sigKeyPrefix + hex.EncodeToString(sum[:]) }
func blobKey(sum [md4.Size]byte) string { return blobKeyPrefix + hex.EncodeToString(sum[:]) }

// Artifact format magics: four fixed bytes so a truncated or misrouted blob
// fails parsing immediately instead of decoding as garbage counts.
var (
	manifestMagic = [4]byte{'p', 's', 'm', '1'}
	deltaMagic    = [4]byte{'p', 's', 'd', '1'}
)

// Manifest is the parsed form of a published manifest artifact: one
// version's complete file list with the same per-file fingerprints the
// interactive protocol exchanges (collection.ManifestEntry), plus the
// manifest digest that names the collection state.
type Manifest struct {
	// Version is the published version number (1-based, consecutive).
	Version uint64
	// BlockSize is the signature block size every sig artifact of this
	// version was built with.
	BlockSize int
	// Digest is collection.ManifestDigest of Entries — the same fingerprint
	// a versioned interactive server uses to name this collection state.
	Digest [md4.Size]byte
	// Entries lists every file, sorted by path.
	Entries []collection.ManifestEntry
}

// EncodeManifest serializes a manifest artifact. Encoding is canonical
// (entries sorted by path, no timestamps), so the same collection state
// always produces byte-identical artifacts — the property that makes
// ETags stable across publisher restarts and replicas.
func EncodeManifest(m *Manifest) []byte {
	b := wire.NewBuffer(len(m.Entries)*32 + 64)
	b.Raw(manifestMagic[:])
	b.Uvarint(m.Version)
	b.Uvarint(uint64(m.BlockSize))
	b.Raw(m.Digest[:])
	b.Uvarint(uint64(len(m.Entries)))
	for _, e := range m.Entries {
		b.String(e.Path)
		b.Uvarint(uint64(e.Len))
		b.Raw(e.Sum[:])
	}
	return b.Build()
}

// ErrBadArtifact reports a malformed manifest or delta artifact.
var ErrBadArtifact = errors.New("pubsig: malformed artifact")

// ParseManifest parses a manifest artifact, validating framing, bounds and
// the embedded digest against the entries.
func ParseManifest(data []byte) (*Manifest, error) {
	p := wire.NewParser(data)
	magic, err := p.Raw(4)
	if err != nil || string(magic) != string(manifestMagic[:]) {
		return nil, ErrBadArtifact
	}
	m := &Manifest{}
	if m.Version, err = p.Uvarint(); err != nil || m.Version == 0 {
		return nil, ErrBadArtifact
	}
	bs, err := p.Uvarint()
	if err != nil || bs == 0 || bs > 1<<30 {
		return nil, ErrBadArtifact
	}
	m.BlockSize = int(bs)
	sum, err := p.Raw(md4.Size)
	if err != nil {
		return nil, ErrBadArtifact
	}
	copy(m.Digest[:], sum)
	n, err := p.Uvarint()
	// A serialized entry is at least 18 bytes; bounding the count by the
	// remaining payload keeps a forged header from forcing a huge alloc.
	if err != nil || n > uint64(p.Remaining())/18+1 {
		return nil, ErrBadArtifact
	}
	m.Entries = make([]collection.ManifestEntry, 0, n)
	prev := ""
	for i := uint64(0); i < n; i++ {
		var e collection.ManifestEntry
		if e.Path, err = p.String(); err != nil {
			return nil, ErrBadArtifact
		}
		if i > 0 && e.Path <= prev {
			return nil, ErrBadArtifact // must be strictly path-sorted
		}
		prev = e.Path
		l, err := p.Uvarint()
		if err != nil || l > 1<<40 {
			return nil, ErrBadArtifact
		}
		e.Len = int(l)
		sum, err := p.Raw(md4.Size)
		if err != nil {
			return nil, ErrBadArtifact
		}
		copy(e.Sum[:], sum)
		m.Entries = append(m.Entries, e)
	}
	if p.Remaining() != 0 {
		return nil, ErrBadArtifact
	}
	if collection.ManifestDigest(m.Entries) != m.Digest {
		return nil, ErrBadArtifact
	}
	return m, nil
}

// Delta is the parsed form of a published delta artifact: what changed
// between two versions, in manifest terms. Content still travels through
// the per-file signature + range mechanism; the delta only spares a reader
// the full manifest download and tells it which files to even look at.
type Delta struct {
	// Base and Current are the version pair the delta spans.
	Base, Current uint64
	// Digest is the Current manifest's digest.
	Digest [md4.Size]byte
	// Deleted lists paths removed since Base, sorted.
	Deleted []string
	// Upserts lists added or modified entries (current content), sorted by
	// path.
	Upserts []collection.ManifestEntry
}

// EncodeDelta serializes a delta artifact (canonical, like EncodeManifest).
func EncodeDelta(d *Delta) []byte {
	b := wire.NewBuffer(len(d.Upserts)*32 + len(d.Deleted)*16 + 64)
	b.Raw(deltaMagic[:])
	b.Uvarint(d.Base)
	b.Uvarint(d.Current)
	b.Raw(d.Digest[:])
	b.Uvarint(uint64(len(d.Deleted)))
	for _, p := range d.Deleted {
		b.String(p)
	}
	b.Uvarint(uint64(len(d.Upserts)))
	for _, e := range d.Upserts {
		b.String(e.Path)
		b.Uvarint(uint64(e.Len))
		b.Raw(e.Sum[:])
	}
	return b.Build()
}

// ParseDelta parses a delta artifact with the same strictness as
// ParseManifest.
func ParseDelta(data []byte) (*Delta, error) {
	p := wire.NewParser(data)
	magic, err := p.Raw(4)
	if err != nil || string(magic) != string(deltaMagic[:]) {
		return nil, ErrBadArtifact
	}
	d := &Delta{}
	if d.Base, err = p.Uvarint(); err != nil {
		return nil, ErrBadArtifact
	}
	if d.Current, err = p.Uvarint(); err != nil || d.Current <= d.Base {
		return nil, ErrBadArtifact
	}
	sum, err := p.Raw(md4.Size)
	if err != nil {
		return nil, ErrBadArtifact
	}
	copy(d.Digest[:], sum)
	nd, err := p.Uvarint()
	if err != nil || nd > uint64(p.Remaining()) {
		return nil, ErrBadArtifact
	}
	prev := ""
	for i := uint64(0); i < nd; i++ {
		path, err := p.String()
		if err != nil || (i > 0 && path <= prev) {
			return nil, ErrBadArtifact
		}
		prev = path
		d.Deleted = append(d.Deleted, path)
	}
	nu, err := p.Uvarint()
	if err != nil || nu > uint64(p.Remaining())/18+1 {
		return nil, ErrBadArtifact
	}
	prev = ""
	for i := uint64(0); i < nu; i++ {
		var e collection.ManifestEntry
		if e.Path, err = p.String(); err != nil || (i > 0 && e.Path <= prev) {
			return nil, ErrBadArtifact
		}
		prev = e.Path
		l, err := p.Uvarint()
		if err != nil || l > 1<<40 {
			return nil, ErrBadArtifact
		}
		e.Len = int(l)
		sum, err := p.Raw(md4.Size)
		if err != nil {
			return nil, ErrBadArtifact
		}
		copy(e.Sum[:], sum)
		d.Upserts = append(d.Upserts, e)
	}
	if p.Remaining() != 0 {
		return nil, ErrBadArtifact
	}
	return d, nil
}

// Publisher snapshots collection rounds into versioned, content-addressed
// artifacts inside an ArtifactStore. Publishing is the only computation the
// origin ever does: once the artifacts exist, any number of readers are
// served by dumb byte serving (Handler, a static file server, or a CDN in
// front of either) with zero per-reader hashing — the paper's
// server-friendly scenario (§1.1, application 3) at collection scale.
//
// Publish is idempotent: an unchanged collection produces no new version,
// and re-publishing the same state writes byte-identical artifacts (the
// store's immutability check enforces it).
type Publisher struct {
	store     ArtifactStore
	blockSize int
	metrics   *obs.Registry

	mu     sync.Mutex
	latest uint64
	prev   *Manifest // latest published manifest, nil when store is empty
}

// PublisherOption configures a Publisher.
type PublisherOption func(*Publisher) error

// WithBlockSize sets the signature block size (default DefaultBlockSize).
// All versions in one artifact store must share it: signature blobs are
// keyed by file content only, so mixing block sizes would conflict.
func WithBlockSize(n int) PublisherOption {
	return func(p *Publisher) error {
		if n <= 0 {
			return fmt.Errorf("pubsig: block size must be positive, got %d", n)
		}
		p.blockSize = n
		return nil
	}
}

// WithPublisherMetrics counts publish work (versions, files, bytes hashed,
// artifact bytes written) in the given registry.
func WithPublisherMetrics(r *obs.Registry) PublisherOption {
	return func(p *Publisher) error {
		p.metrics = r
		return nil
	}
}

// NewPublisher opens a publisher over the given artifact store, recovering
// the latest published version (if any) so publishing continues the version
// sequence across restarts.
func NewPublisher(s ArtifactStore, opts ...PublisherOption) (*Publisher, error) {
	p := &Publisher{store: s, blockSize: DefaultBlockSize}
	for _, opt := range opts {
		if err := opt(p); err != nil {
			return nil, err
		}
	}
	keys, err := s.Keys("v/")
	if err != nil {
		return nil, fmt.Errorf("pubsig: recovering versions: %w", err)
	}
	var latest uint64
	for _, k := range keys {
		var n uint64
		if _, err := fmt.Sscanf(k, manifestKeyFmt, &n); err == nil && n > latest {
			latest = n
		}
	}
	if latest > 0 {
		data, err := s.Get(manifestKey(latest))
		if err != nil {
			return nil, fmt.Errorf("pubsig: recovering manifest v%d: %w", latest, err)
		}
		m, err := ParseManifest(data)
		if err != nil {
			return nil, fmt.Errorf("pubsig: recovering manifest v%d: %w", latest, err)
		}
		if m.BlockSize != p.blockSize {
			return nil, fmt.Errorf("pubsig: store was published with block size %d, publisher configured with %d", m.BlockSize, p.blockSize)
		}
		p.latest, p.prev = latest, m
	}
	return p, nil
}

// Latest returns the newest published version (0 when none).
func (p *Publisher) Latest() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.latest
}

// Publish snapshots a path-keyed file set as the next version. It returns
// the resulting version and whether a new one was created — an unchanged
// collection returns the current version with created == false and writes
// nothing.
func (p *Publisher) Publish(files map[string][]byte) (version uint64, created bool, err error) {
	entries := collection.BuildManifest(files)
	return p.publish(entries, func(path string) ([]byte, error) {
		data, ok := files[path]
		if !ok {
			return nil, fmt.Errorf("pubsig: no content for %q", path)
		}
		return data, nil
	})
}

// PublishTree snapshots a directory tree (walked lazily via dirio: content
// is loaded per changed file, not held all at once).
func (p *Publisher) PublishTree(t *dirio.Tree) (uint64, bool, error) {
	files := t.Files()
	entries := make([]collection.ManifestEntry, 0, len(files))
	var hashed int64
	for _, fi := range files {
		sum, n, err := t.HashFile(fi.Path)
		if err != nil {
			return 0, false, fmt.Errorf("pubsig: hashing %q: %w", fi.Path, err)
		}
		hashed += n
		entries = append(entries, collection.ManifestEntry{Path: fi.Path, Len: int(n), Sum: sum})
	}
	p.count("pubsig_publish_bytes_hashed", hashed)
	return p.publish(entries, t.Load)
}

func (p *Publisher) count(name string, n int64) {
	if p.metrics != nil && n != 0 {
		p.metrics.Counter(name).Add(n)
	}
}

// publish commits entries (path-sorted) as the next version, loading
// changed content on demand. The diff against the previous version is
// computed with store.DiffManifests — the identical change semantics the
// interactive journal fast path commits — so the delta artifact and a
// versioned store agree about what "changed between versions" means.
func (p *Publisher) publish(entries []collection.ManifestEntry, load func(string) ([]byte, error)) (uint64, bool, error) {
	start := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()

	digest := collection.ManifestDigest(entries)
	var prevEntries []collection.ManifestEntry
	if p.prev != nil {
		if digest == p.prev.Digest {
			return p.latest, false, nil
		}
		prevEntries = p.prev.Entries
	}
	changes := store.DiffManifests(toStoreEntries(prevEntries), toStoreEntries(entries))

	next := &Manifest{
		Version:   p.latest + 1,
		BlockSize: p.blockSize,
		Digest:    digest,
		Entries:   entries,
	}
	delta := &Delta{Base: p.latest, Current: next.Version, Digest: digest}

	var hashed, artifactBytes, files int64
	written := make(map[[md4.Size]byte]bool)
	for _, ch := range changes {
		if ch.Op == store.OpDelete {
			delta.Deleted = append(delta.Deleted, ch.Old.Path)
			continue
		}
		e := collection.ManifestEntry{Path: ch.New.Path, Len: ch.New.Len, Sum: ch.New.Sum}
		delta.Upserts = append(delta.Upserts, e)
		files++
		if written[e.Sum] {
			continue // several paths with identical content share artifacts
		}
		written[e.Sum] = true
		data, err := load(e.Path)
		if err != nil {
			return 0, false, fmt.Errorf("pubsig: loading %q: %w", e.Path, err)
		}
		if len(data) != e.Len || md4.Sum(data) != e.Sum {
			return 0, false, fmt.Errorf("pubsig: %q changed during publish", e.Path)
		}
		hashed += int64(len(data)) * 2 // manifest hash + per-block signature pass
		sig := Build(data, p.blockSize)
		if err := p.store.Put(blobKey(e.Sum), data); err != nil {
			return 0, false, err
		}
		if err := p.store.Put(sigKey(e.Sum), sig); err != nil {
			return 0, false, err
		}
		artifactBytes += int64(len(data) + len(sig))
	}

	// The manifest record is the commit point: blobs and sigs land first,
	// so a reader never sees a manifest referencing missing artifacts.
	mBytes := EncodeManifest(next)
	if err := p.store.Put(manifestKey(next.Version), mBytes); err != nil {
		return 0, false, err
	}
	artifactBytes += int64(len(mBytes))
	if p.latest > 0 {
		dBytes := EncodeDelta(delta)
		if err := p.store.Put(deltaKey(delta.Base, delta.Current), dBytes); err != nil {
			return 0, false, err
		}
		artifactBytes += int64(len(dBytes))
	}

	p.latest, p.prev = next.Version, next
	p.count("pubsig_publish_versions", 1)
	p.count("pubsig_publish_files", files)
	p.count("pubsig_publish_bytes_hashed", hashed)
	p.count("pubsig_publish_artifact_bytes", artifactBytes)
	if p.metrics != nil {
		p.metrics.Histogram("pubsig_publish_seconds", nil).ObserveDuration(time.Since(start))
	}
	return next.Version, true, nil
}

func toStoreEntries(m []collection.ManifestEntry) []store.Entry {
	out := make([]store.Entry, len(m))
	for i, e := range m {
		out[i] = store.Entry{Path: e.Path, Len: e.Len, Sum: e.Sum}
	}
	return out
}

// LatestVersion inspects an artifact store directly (no Publisher state)
// and reports the newest published version, 0 when none. Read-side servers
// use it so replicas pointed at the same artifacts agree on /latest.
func LatestVersion(s ArtifactStore) (uint64, error) {
	keys, err := s.Keys("v/")
	if err != nil {
		return 0, err
	}
	var latest uint64
	for _, k := range keys {
		var n uint64
		if _, err := fmt.Sscanf(k, manifestKeyFmt, &n); err == nil && n > latest {
			latest = n
		}
	}
	return latest, nil
}

// LoadManifest fetches and parses one version's manifest artifact.
func LoadManifest(s ArtifactStore, version uint64) (*Manifest, error) {
	data, err := s.Get(manifestKey(version))
	if err != nil {
		return nil, err
	}
	return ParseManifest(data)
}

// ComposeDelta builds the delta from base to current by composing the
// stored consecutive version-to-version deltas. Composition is canonical
// (maps folded, output sorted), so every replica serves byte-identical
// /since responses. It fails with ErrNoArtifact when any link of the chain
// was never published or has been pruned.
func ComposeDelta(s ArtifactStore, base, current uint64) (*Delta, error) {
	if base >= current {
		return nil, fmt.Errorf("pubsig: bad delta span %d..%d", base, current)
	}
	upserts := make(map[string]collection.ManifestEntry)
	deleted := make(map[string]bool)
	var digest [md4.Size]byte
	for v := base; v < current; v++ {
		data, err := s.Get(deltaKey(v, v+1))
		if err != nil {
			return nil, err
		}
		d, err := ParseDelta(data)
		if err != nil {
			return nil, err
		}
		for _, path := range d.Deleted {
			delete(upserts, path)
			deleted[path] = true
		}
		for _, e := range d.Upserts {
			delete(deleted, e.Path)
			upserts[e.Path] = e
		}
		digest = d.Digest
	}
	out := &Delta{Base: base, Current: current, Digest: digest}
	for path := range deleted {
		out.Deleted = append(out.Deleted, path)
	}
	for _, e := range upserts {
		out.Upserts = append(out.Upserts, e)
	}
	sortDelta(out)
	return out, nil
}

func sortDelta(d *Delta) {
	sort.Strings(d.Deleted)
	sort.Slice(d.Upserts, func(i, j int) bool { return d.Upserts[i].Path < d.Upserts[j].Path })
}
