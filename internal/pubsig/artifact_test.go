package pubsig

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func stores(t *testing.T) map[string]ArtifactStore {
	t.Helper()
	dir, err := NewDirStore(filepath.Join(t.TempDir(), "artifacts"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]ArtifactStore{"mem": NewMemStore(), "dir": dir}
}

func TestArtifactStoreRoundTrip(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Get("sig/absent"); !errors.Is(err, ErrNoArtifact) {
				t.Fatalf("absent get: %v", err)
			}
			if err := s.Put("v/00000001/manifest", []byte("m1")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("sig/aa", []byte("s")); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get("v/00000001/manifest")
			if err != nil || string(got) != "m1" {
				t.Fatalf("get: %q, %v", got, err)
			}
			keys, err := s.Keys("v/")
			if err != nil || len(keys) != 1 || keys[0] != "v/00000001/manifest" {
				t.Fatalf("keys: %v, %v", keys, err)
			}
			all, err := s.Keys("")
			if err != nil || len(all) != 2 {
				t.Fatalf("all keys: %v, %v", all, err)
			}
		})
	}
}

func TestArtifactImmutability(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("blob/k", []byte("content")); err != nil {
				t.Fatal(err)
			}
			// Identical re-put is a no-op (idempotent publish).
			if err := s.Put("blob/k", []byte("content")); err != nil {
				t.Fatalf("identical re-put: %v", err)
			}
			// Different bytes under the same key must be refused.
			if err := s.Put("blob/k", []byte("DIFFERENT")); !errors.Is(err, ErrArtifactConflict) {
				t.Fatalf("conflicting put: %v", err)
			}
			got, _ := s.Get("blob/k")
			if string(got) != "content" {
				t.Fatalf("artifact mutated to %q", got)
			}
		})
	}
}

func TestArtifactKeyValidation(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			for _, bad := range []string{"", "/abs", "trail/", "a//b", "../escape", "v/../../etc", "a/./b", "nul\x00", "back\\slash"} {
				if err := s.Put(bad, []byte("x")); err == nil {
					t.Errorf("key %q accepted", bad)
				}
			}
		})
	}
}

func TestDirStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("v/00000001/manifest", []byte("m")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("sig/ff", []byte("s")); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get("v/00000001/manifest")
	if err != nil || string(got) != "m" {
		t.Fatalf("reopened get: %q, %v", got, err)
	}
	keys, err := s2.Keys("")
	if err != nil || len(keys) != 2 {
		t.Fatalf("reopened keys: %v, %v", keys, err)
	}
}

func TestDirStoreIgnoresOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("blob/aa", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-publish: a temp file left behind.
	if err := os.WriteFile(filepath.Join(dir, "blob", ".pub-123"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := s.Keys("")
	if err != nil || len(keys) != 1 || keys[0] != "blob/aa" {
		t.Fatalf("keys with orphan present: %v, %v", keys, err)
	}
}
