package pubsig

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"msync/internal/corpus"
)

func TestSyncHTTPEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cur := corpus.SourceText(rng, 200_000)
	old := append([]byte(nil), cur...)
	copy(old[120_000:], []byte("this region was different yesterday"))

	srv := httptest.NewServer(Handler("page.html", cur, DefaultBlockSize))
	defer srv.Close()

	got, down, err := SyncHTTP(srv.Client(), srv.URL, "page.html", old)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cur) {
		t.Fatal("mismatch")
	}
	if down >= len(cur)/4 {
		t.Fatalf("downloaded %d bytes for a one-region change in %d", down, len(cur))
	}
	t.Logf("HTTP sync: %d bytes for a %d-byte resource (%.1f%%)",
		down, len(cur), 100*float64(down)/float64(len(cur)))
}

func TestSyncHTTPFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cur := corpus.SourceText(rng, 30_000)
	srv := httptest.NewServer(Handler("doc", cur, 512))
	defer srv.Close()

	got, down, err := SyncHTTP(srv.Client(), srv.URL, "doc", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cur) {
		t.Fatal("mismatch")
	}
	// No old copy: everything is fetched, plus the signature.
	if down < len(cur) {
		t.Fatalf("downloaded %d < resource size %d", down, len(cur))
	}
}

func TestSyncHTTPMissingResource(t *testing.T) {
	srv := httptest.NewServer(Handler("exists", []byte("x"), 512))
	defer srv.Close()
	if _, _, err := SyncHTTP(srv.Client(), srv.URL, "absent", nil); err == nil {
		t.Fatal("missing resource accepted")
	}
}

// TestHTTPFetcherAgainstNonRangeServer: servers that ignore Range must
// still work (the fetcher slices the full body).
func TestHTTPFetcherAgainstNonRangeServer(t *testing.T) {
	content := []byte("0123456789abcdef")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(content) // 200, no Range handling
	}))
	defer srv.Close()
	fetch := HTTPFetcher(srv.Client(), srv.URL)
	got, err := fetch(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "456789" {
		t.Fatalf("got %q", got)
	}
	if _, err := fetch(10, 100); err == nil {
		t.Fatal("over-long range accepted")
	}
}

func TestHTTPFetcherServerError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusForbidden)
	}))
	defer srv.Close()
	if _, err := HTTPFetcher(srv.Client(), srv.URL)(0, 4); err == nil {
		t.Fatal("403 accepted")
	}
}

// rawResponder serves a fixed status/header/body combination, for modeling
// broken servers and middleboxes that the fetcher must not trust.
func rawResponder(status int, contentRange string, body []byte) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if contentRange != "" {
			w.Header().Set("Content-Range", contentRange)
		}
		w.Header().Set("Content-Length", fmt.Sprint(len(body)))
		w.WriteHeader(status)
		w.Write(body)
	})
}

// TestHTTPFetcherAdversarialResponses sweeps the fetcher across the
// response shapes a Range-ignoring or range-mangling server can produce:
// each must either yield exactly the requested bytes or a clean error,
// never silently-wrong data.
func TestHTTPFetcherAdversarialResponses(t *testing.T) {
	full := []byte("0123456789abcdefghij") // 20 bytes; we ask for [4,10)
	const off, length = 4, 6
	want := string(full[off : off+length])

	cases := []struct {
		name    string
		handler http.Handler
		want    string // "" = must error
	}{
		{"206 correct", rawResponder(206, "bytes 4-9/20", full[4:10]), want},
		{"206 unknown total", rawResponder(206, "bytes 4-9/*", full[4:10]), want},
		{"206 shifted range", rawResponder(206, "bytes 5-10/20", full[5:11]), ""},
		{"206 wrong length range", rawResponder(206, "bytes 4-10/20", full[4:11]), ""},
		{"206 missing Content-Range", rawResponder(206, "", full[4:10]), ""},
		{"206 garbage Content-Range", rawResponder(206, "bytes x-y/z", full[4:10]), ""},
		{"206 short body", rawResponder(206, "bytes 4-9/20", full[4:7]), ""},
		{"206 overlong body", rawResponder(206, "bytes 4-9/20", full[4:15]), ""},
		{"206 range beyond total", rawResponder(206, "bytes 4-9/8", full[4:10]), ""},
		{"200 full body sliced", rawResponder(200, "", full), want},
		{"200 short body", rawResponder(200, "", full[:6]), ""},
		{"200 empty body", rawResponder(200, "", nil), ""},
		{"416", rawResponder(416, "", nil), ""},
		{"500", rawResponder(500, "", nil), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(tc.handler)
			defer srv.Close()
			got, err := HTTPRangeFetcher(srv.Client(), srv.URL)(context.Background(), off, length)
			if tc.want == "" {
				if err == nil {
					t.Fatalf("accepted, returned %q", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != tc.want {
				t.Fatalf("got %q, want %q", got, tc.want)
			}
		})
	}
}

func TestHTTPFetcherRejectsBadRanges(t *testing.T) {
	f := HTTPRangeFetcher(nil, "http://unused.invalid")
	if _, err := f(context.Background(), -1, 5); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := f(context.Background(), 0, 0); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestHTTPFetcherHonorsContext(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // stall until the test ends
	}))
	defer srv.Close()
	defer close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := HTTPRangeFetcher(srv.Client(), srv.URL)(ctx, 0, 4)
	if err == nil {
		t.Fatal("stalled fetch succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("fetch did not respect the context deadline")
	}
}

// TestHandlerValidatorsStableAcrossRestarts pins the modTime = time.Now()
// fix: two Handler instances over the same content (a restart, or two
// replicas) must agree on validators, and a conditional request primed by
// one must revalidate against the other.
func TestHandlerValidatorsStableAcrossRestarts(t *testing.T) {
	content := []byte("stable published content, version 7")
	srv1 := httptest.NewServer(Handler("doc", content, 16))
	resp1, err := srv1.Client().Get(srv1.URL + "/doc")
	if err != nil {
		t.Fatal(err)
	}
	resp1.Body.Close()
	etag := resp1.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag served")
	}
	if lm := resp1.Header.Get("Last-Modified"); lm != "" {
		t.Fatalf("Last-Modified %q fabricated from server start time", lm)
	}
	srv1.Close()
	time.Sleep(10 * time.Millisecond)

	srv2 := httptest.NewServer(Handler("doc", content, 16))
	defer srv2.Close()
	req, _ := http.NewRequest(http.MethodGet, srv2.URL+"/doc", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := srv2.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("restarted replica answered %s to a valid If-None-Match, want 304", resp2.Status)
	}
}

// TestHandlerSignatureConditionalAndRange: the signature endpoint must get
// the same HTTP treatment as the content (Content-Length, HEAD, Range,
// If-None-Match) instead of a bare write.
func TestHandlerSignatureConditionalAndRange(t *testing.T) {
	content := []byte("some resource whose signature readers cache")
	srv := httptest.NewServer(Handler("doc", content, 8))
	defer srv.Close()
	url := srv.URL + "/doc" + SigSuffix

	resp, err := srv.Client().Get(url)
	if err != nil {
		t.Fatal(err)
	}
	sig, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.ContentLength != int64(len(sig)) || resp.ContentLength <= 0 {
		t.Fatalf("sig Content-Length = %d, body %d", resp.ContentLength, len(sig))
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("sig has no ETag")
	}
	if !bytes.Equal(sig, Build(content, 8)) {
		t.Fatal("served signature differs from Build")
	}

	req, _ := http.NewRequest(http.MethodHead, url, nil)
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || resp.ContentLength != int64(len(sig)) {
		t.Fatalf("HEAD sig: %s, length %d", resp.Status, resp.ContentLength)
	}

	req, _ = http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("sig If-None-Match: %s, want 304", resp.Status)
	}

	req, _ = http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("Range", "bytes=0-3")
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	part, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent || !bytes.Equal(part, sig[:4]) {
		t.Fatalf("sig range: %s, %q", resp.Status, part)
	}
}

func TestHandlerModTimeServed(t *testing.T) {
	mod := time.Unix(1700000000, 0).UTC()
	srv := httptest.NewServer(HandlerModTime("doc", []byte("content"), 8, mod))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/doc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if lm := resp.Header.Get("Last-Modified"); lm != mod.Format(http.TimeFormat) {
		t.Fatalf("Last-Modified = %q, want %q", lm, mod.Format(http.TimeFormat))
	}
}
