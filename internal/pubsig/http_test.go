package pubsig

import (
	"bytes"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"msync/internal/corpus"
)

func TestSyncHTTPEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cur := corpus.SourceText(rng, 200_000)
	old := append([]byte(nil), cur...)
	copy(old[120_000:], []byte("this region was different yesterday"))

	srv := httptest.NewServer(Handler("page.html", cur, DefaultBlockSize))
	defer srv.Close()

	got, down, err := SyncHTTP(srv.Client(), srv.URL, "page.html", old)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cur) {
		t.Fatal("mismatch")
	}
	if down >= len(cur)/4 {
		t.Fatalf("downloaded %d bytes for a one-region change in %d", down, len(cur))
	}
	t.Logf("HTTP sync: %d bytes for a %d-byte resource (%.1f%%)",
		down, len(cur), 100*float64(down)/float64(len(cur)))
}

func TestSyncHTTPFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cur := corpus.SourceText(rng, 30_000)
	srv := httptest.NewServer(Handler("doc", cur, 512))
	defer srv.Close()

	got, down, err := SyncHTTP(srv.Client(), srv.URL, "doc", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cur) {
		t.Fatal("mismatch")
	}
	// No old copy: everything is fetched, plus the signature.
	if down < len(cur) {
		t.Fatalf("downloaded %d < resource size %d", down, len(cur))
	}
}

func TestSyncHTTPMissingResource(t *testing.T) {
	srv := httptest.NewServer(Handler("exists", []byte("x"), 512))
	defer srv.Close()
	if _, _, err := SyncHTTP(srv.Client(), srv.URL, "absent", nil); err == nil {
		t.Fatal("missing resource accepted")
	}
}

// TestHTTPFetcherAgainstNonRangeServer: servers that ignore Range must
// still work (the fetcher slices the full body).
func TestHTTPFetcherAgainstNonRangeServer(t *testing.T) {
	content := []byte("0123456789abcdef")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(content) // 200, no Range handling
	}))
	defer srv.Close()
	fetch := HTTPFetcher(srv.Client(), srv.URL)
	got, err := fetch(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "456789" {
		t.Fatalf("got %q", got)
	}
	if _, err := fetch(10, 100); err == nil {
		t.Fatal("over-long range accepted")
	}
}

func TestHTTPFetcherServerError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusForbidden)
	}))
	defer srv.Close()
	if _, err := HTTPFetcher(srv.Client(), srv.URL)(0, 4); err == nil {
		t.Fatal("403 accepted")
	}
}
