package merkle

import (
	"math/rand"
	"testing"
)

// TestInitiatorAbsorbTruncation: truncated responder messages must error,
// not panic or silently complete.
func TestInitiatorAbsorbTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	local := makeEntries(rng, 64)
	remote := append([]Entry(nil), local...)
	remote[5] = entry(remote[5].Path, "changed")

	ini := NewInitiator(Build(local, 4))
	resp := NewResponder(remote)
	msg := ini.Next()
	reply, err := resp.Respond(msg)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(reply); cut++ {
		ini2 := NewInitiator(Build(local, 4))
		ini2.Next()
		if err := ini2.Absorb(reply[:cut]); err == nil && !ini2.Done() {
			// Either an error or a clean (equal-root) completion is fine;
			// silent partial progress is not.
			t.Fatalf("cut %d: truncated reply absorbed without error", cut)
		}
	}
}

// TestResponderGarbageAfterStart: node ids out of range are rejected.
func TestResponderGarbageAfterStart(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	remote := makeEntries(rng, 32)
	resp := NewResponder(remote)
	ini := NewInitiator(Build(makeEntries(rng, 32), 3))
	if _, err := resp.Respond(ini.Next()); err != nil {
		t.Fatal(err)
	}
	// Hand-crafted follow-up with an absurd node id.
	bad := []byte{1, 0xFF, 0xFF, 0x7F}
	if _, err := resp.Respond(bad); err == nil {
		t.Fatal("out-of-range node id accepted")
	}
}

// TestFuzzReconcileMessages: random corruption of the message stream must
// never panic either side.
func TestFuzzReconcileMessages(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	local := makeEntries(rng, 100)
	remote := append([]Entry(nil), local...)
	for i := 0; i < 10; i++ {
		remote[rng.Intn(len(remote))] = entry(remote[i].Path, "mutated")
	}
	for trial := 0; trial < 100; trial++ {
		ini := NewInitiator(Build(local, DepthFor(len(local))))
		resp := NewResponder(remote)
		for step := 0; !ini.Done() && step < 20; step++ {
			msg := ini.Next()
			if rng.Intn(3) == 0 && len(msg) > 0 {
				msg = append([]byte(nil), msg...)
				msg[rng.Intn(len(msg))] ^= 1 << uint(rng.Intn(8))
			}
			reply, err := resp.Respond(msg)
			if err != nil {
				break
			}
			if rng.Intn(3) == 0 && len(reply) > 0 {
				reply = append([]byte(nil), reply...)
				reply[rng.Intn(len(reply))] ^= 1 << uint(rng.Intn(8))
			}
			if err := ini.Absorb(reply); err != nil {
				break
			}
		}
	}
}

// TestDepthZeroReconcile: degenerate single-bucket trees still work.
func TestDepthZeroReconcile(t *testing.T) {
	a := []Entry{entry("x", "1"), entry("y", "2")}
	b := []Entry{entry("x", "1"), entry("y", "CHANGED"), entry("z", "3")}
	ini := NewInitiator(Build(a, 0))
	resp := NewResponder(b)
	for !ini.Done() {
		reply, err := resp.Respond(ini.Next())
		if err != nil {
			t.Fatal(err)
		}
		if err := ini.Absorb(reply); err != nil {
			t.Fatal(err)
		}
	}
	d := ini.Diff()
	if len(d.Changed) != 1 || len(d.OnlyRemote) != 1 || len(d.OnlyLocal) != 0 {
		t.Fatalf("diff = %+v", d)
	}
}
