package merkle

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"msync/internal/md4"
	"msync/internal/wire"
)

// Tree persistence: one file per depth in the signature-cache directory,
// holding the occupied leaf buckets (entries plus their leaf digest) and
// the manifest fingerprint the tree was built from. Internal digests are
// not stored — they are recomputed from the occupied leaves on load, which
// is O(occupied · depth) tiny hashes. A whole-file MD4 trailer guards
// against torn or corrupted writes; any mismatch reads as a miss and the
// file is removed, mirroring internal/sigcache's crash-safety posture.
//
// The file lives alongside sigcache's per-path ".sig" entries, which are
// only ever addressed by exact name — never scanned — so sharing the
// directory is safe.

const (
	treeMagic   = "MTRE"
	treeVersion = 1
)

func treeFileName(dir string, depth int) string {
	return filepath.Join(dir, fmt.Sprintf("mtree-d%02d.mt", depth))
}

// saveTree writes t to dir, tagged with the manifest fingerprint fp.
// Best-effort: persistence failures only cost a rebuild next time.
func saveTree(dir string, fp [md4.Size]byte, t *Tree) {
	b := wire.NewBuffer(4096)
	b.Raw([]byte(treeMagic))
	b.Uvarint(treeVersion)
	b.Uvarint(uint64(t.depth))
	b.Raw(fp[:])
	b.Uvarint(uint64(t.count))
	occupied := t.occupiedBuckets()
	b.Uvarint(uint64(len(occupied)))
	for _, i := range occupied {
		b.Uvarint(uint64(i))
		d := t.node((1 << t.depth) + i)
		b.Raw(d[:])
		encodeBucket(b, t.bucket(i))
	}
	body := b.Build()
	sum := md4.Sum(body)
	body = append(body, sum[:]...)

	tmp, err := os.CreateTemp(dir, "mtree-*.tmp")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, treeFileName(dir, t.depth)); err != nil {
		os.Remove(name)
	}
}

// loadTree reads the persisted tree for depth from dir, returning the tree
// and the fingerprint it was saved under. Any structural or checksum
// problem deletes the file and reports a miss.
func loadTree(dir string, depth int) (*Tree, [md4.Size]byte, bool) {
	var fp [md4.Size]byte
	name := treeFileName(dir, depth)
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, fp, false
	}
	t, fp, err := decodeTree(data, depth)
	if err != nil {
		os.Remove(name)
		return nil, fp, false
	}
	return t, fp, true
}

func decodeTree(data []byte, depth int) (*Tree, [md4.Size]byte, error) {
	var fp [md4.Size]byte
	if len(data) < md4.Size {
		return nil, fp, fmt.Errorf("merkle: tree file too short")
	}
	body, tail := data[:len(data)-md4.Size], data[len(data)-md4.Size:]
	if md4.Sum(body) != *(*[md4.Size]byte)(tail) {
		return nil, fp, fmt.Errorf("merkle: tree file checksum mismatch")
	}
	p := wire.NewParser(body)
	magic, err := p.Raw(len(treeMagic))
	if err != nil || string(magic) != treeMagic {
		return nil, fp, fmt.Errorf("merkle: bad tree file magic")
	}
	ver, err := p.Uvarint()
	if err != nil || ver != treeVersion {
		return nil, fp, fmt.Errorf("merkle: tree file version %d", ver)
	}
	d, err := p.Uvarint()
	if err != nil || int(d) != depth || d > MaxDepth {
		return nil, fp, fmt.Errorf("merkle: tree file depth %d", d)
	}
	raw, err := p.Raw(md4.Size)
	if err != nil {
		return nil, fp, err
	}
	copy(fp[:], raw)
	count, err := p.Uvarint()
	if err != nil {
		return nil, fp, err
	}
	nb, err := p.Uvarint()
	if err != nil || nb > uint64(1)<<uint(depth) {
		return nil, fp, fmt.Errorf("merkle: tree file bucket count %d", nb)
	}
	t := newTree(depth)
	t.fillEmpty()
	total := 0
	occupied := make([]int, 0, nb)
	prev := -1
	for k := uint64(0); k < nb; k++ {
		idx, err := p.Uvarint()
		if err != nil {
			return nil, fp, err
		}
		if int(idx) <= prev || idx >= uint64(1)<<uint(depth) {
			return nil, fp, fmt.Errorf("merkle: tree file bucket index %d", idx)
		}
		prev = int(idx)
		dig, err := p.Raw(md4.Size)
		if err != nil {
			return nil, fp, err
		}
		es, err := decodeBucket(p)
		if err != nil {
			return nil, fp, err
		}
		if len(es) == 0 {
			return nil, fp, fmt.Errorf("merkle: tree file empty bucket %d", idx)
		}
		t.setBucket(int(idx), es)
		t.setNode((1<<depth)+int(idx), *(*[md4.Size]byte)(dig))
		occupied = append(occupied, int(idx))
		total += len(es)
	}
	if p.Remaining() != 0 {
		return nil, fp, fmt.Errorf("merkle: tree file trailing bytes")
	}
	if total != int(count) {
		return nil, fp, fmt.Errorf("merkle: tree file entry count %d != %d", total, count)
	}
	t.count = total
	t.recomputeAncestors(occupied)
	return t, fp, nil
}

// occupiedBuckets lists the non-empty bucket indices in ascending order.
func (t *Tree) occupiedBuckets() []int {
	var out []int
	if t.buckets != nil {
		for i, b := range t.buckets {
			if len(b) > 0 {
				out = append(out, i)
			}
		}
		return out
	}
	out = make([]int, 0, len(t.sbuckets))
	for i := range t.sbuckets {
		out = append(out, int(i))
	}
	sort.Ints(out)
	return out
}

// fillEmpty seeds every dense node with the empty-subtree digest of its
// height, so a load only recomputes ancestors of occupied leaves. No-op
// for sparse trees (absence already means empty there).
func (t *Tree) fillEmpty() {
	if t.nodes == nil {
		return
	}
	for h := 0; h <= t.depth; h++ {
		d := emptyNode(h)
		lo := 1 << uint(t.depth-h)
		for id := lo; id < 2*lo; id++ {
			t.nodes[id] = d
		}
	}
}
