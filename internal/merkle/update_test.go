package merkle

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// applyDiff mirrors Update on a plain entry slice, as the oracle.
func applyDiff(entries []Entry, ups []Entry, dels []string) []Entry {
	m := make(map[string]Entry, len(entries))
	for _, e := range entries {
		m[e.Path] = e
	}
	for _, e := range ups {
		m[e.Path] = e
	}
	for _, p := range dels {
		delete(m, p)
	}
	out := make([]Entry, 0, len(m))
	for _, e := range m {
		out = append(out, e)
	}
	return out
}

// TestUpdateMatchesBuild: incremental update must be indistinguishable from
// a fresh build of the updated set — same root, same count, same entries.
func TestUpdateMatchesBuild(t *testing.T) {
	for _, depth := range []int{0, 3, 8} {
		rng := rand.New(rand.NewSource(int64(depth) + 11))
		entries := makeEntries(rng, 300)
		tr := Build(entries, depth)
		for round := 0; round < 5; round++ {
			var ups []Entry
			var dels []string
			for i := 0; i < 20; i++ {
				switch rng.Intn(3) {
				case 0: // edit an existing path
					e := entries[rng.Intn(len(entries))]
					ups = append(ups, entry(e.Path, fmt.Sprintf("edit-%d-%d", round, i)))
				case 1: // brand-new path
					ups = append(ups, entry(fmt.Sprintf("new/r%d/f%d", round, i), "fresh"))
				case 2:
					dels = append(dels, entries[rng.Intn(len(entries))].Path)
				}
			}
			tr.Update(ups, dels)
			entries = applyDiff(entries, ups, dels)
			want := Build(entries, depth)
			if tr.Root() != want.Root() {
				t.Fatalf("depth %d round %d: update root != build root", depth, round)
			}
			if tr.Count() != want.Count() || tr.Count() != len(entries) {
				t.Fatalf("depth %d round %d: count %d want %d", depth, round, tr.Count(), len(entries))
			}
		}
	}
}

// TestUpdateRedundantOps: upserting an identical entry or deleting a
// missing path must not corrupt digests.
func TestUpdateRedundantOps(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	entries := makeEntries(rng, 64)
	tr := Build(entries, 4)
	want := tr.Root()
	tr.Update([]Entry{entries[7]}, []string{"no/such/path"})
	if tr.Root() != want {
		t.Fatal("no-op update changed the root")
	}
	if tr.Count() != len(entries) {
		t.Fatalf("count drifted to %d", tr.Count())
	}
}

// forceSparse runs fn with the dense/sparse switch lowered so every depth
// uses the sparse layout.
func forceSparse(fn func()) {
	old := denseLimit
	denseLimit = -1
	defer func() { denseLimit = old }()
	fn()
}

// TestSparseDenseEquivalent: both layouts must produce identical digests
// and identical reconciliation wire bytes at the same depth.
func TestSparseDenseEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	local := makeEntries(rng, 400)
	remote := append([]Entry(nil), local...)
	remote[17] = entry(remote[17].Path, "CHANGED")
	remote = append(remote, entry("extra/file", "added"))

	dense := Build(remote, 6)
	var sparse *Tree
	forceSparse(func() { sparse = Build(remote, 6) })
	if dense.Root() != sparse.Root() {
		t.Fatal("sparse root differs from dense")
	}
	for id := 1; id < 2<<6; id++ {
		if dense.node(id) != sparse.node(id) {
			t.Fatalf("node %d differs between layouts", id)
		}
	}

	// Full exchanges against each layout must be byte-identical.
	transcript := func(resp *Responder) []byte {
		ini := NewInitiator(Build(local, 6))
		var all []byte
		for !ini.Done() {
			reply, err := resp.Respond(ini.Next())
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, reply...)
			if err := ini.Absorb(reply); err != nil {
				t.Fatal(err)
			}
		}
		return all
	}
	a := transcript(&Responder{t: dense})
	b := transcript(&Responder{t: sparse})
	if string(a) != string(b) {
		t.Fatal("sparse and dense responders produced different transcripts")
	}
}

// TestSparseUpdateMatchesBuild: incremental update on the sparse layout.
func TestSparseUpdateMatchesBuild(t *testing.T) {
	forceSparse(func() {
		rng := rand.New(rand.NewSource(41))
		entries := makeEntries(rng, 200)
		tr := Build(entries, 10)
		ups := []Entry{entry("a/new", "x"), entry(entries[3].Path, "edited")}
		dels := []string{entries[9].Path, entries[10].Path}
		tr.Update(ups, dels)
		entries = applyDiff(entries, ups, dels)
		if want := Build(entries, 10); tr.Root() != want.Root() {
			t.Fatal("sparse update root != build root")
		}
	})
}

// TestDeepSparseReconcile: the raised MaxDepth must be usable end to end —
// a depth-28 tree (268M buckets) over a modest entry set reconciles in
// O(changed · depth) without materializing the trie. This is the large-n
// audit for the old MaxDepth=20 cap: DepthFor now keeps buckets ~4 entries
// out to a billion files instead of saturating at 2^20 buckets.
func TestDeepSparseReconcile(t *testing.T) {
	if MaxDepth <= denseLimit {
		t.Fatalf("MaxDepth %d must exceed denseLimit %d", MaxDepth, denseLimit)
	}
	// DepthFor must climb past the old 2^20 cap for huge n…
	if d := DepthFor(1 << 30); d != MaxDepth {
		t.Fatalf("DepthFor(2^30) = %d, want %d", d, MaxDepth)
	}
	if d := DepthFor(100 << 20); d <= 20 {
		t.Fatalf("DepthFor(100M) = %d, still at the old cap", d)
	}
	rng := rand.New(rand.NewSource(51))
	local := makeEntries(rng, 2000)
	remote := append([]Entry(nil), local...)
	remote[100] = entry(remote[100].Path, "v2")
	remote[1500] = entry(remote[1500].Path, "v2")

	ini := NewInitiator(Build(local, MaxDepth))
	resp := NewResponder(remote)
	bytes := 0
	for !ini.Done() {
		msg := ini.Next()
		bytes += len(msg)
		reply, err := resp.Respond(msg)
		if err != nil {
			t.Fatal(err)
		}
		bytes += len(reply)
		if err := ini.Absorb(reply); err != nil {
			t.Fatal(err)
		}
	}
	d := ini.Diff()
	if len(d.Changed) != 2 || len(d.OnlyLocal) != 0 || len(d.OnlyRemote) != 0 {
		t.Fatalf("diff = %+v", d)
	}
	// 2 changes at depth 28: ~2 disputed paths × 28 levels × 2 digests.
	if bytes > 32*1024 {
		t.Fatalf("depth-%d reconcile cost %d bytes", MaxDepth, bytes)
	}
	t.Logf("2 changes among 2000 files at depth %d: %d bytes", MaxDepth, bytes)
}

// countingResponder tallies roundtrips for speculative-vs-legacy descent.
func runDescent(t *testing.T, local, remote []Entry, depth int, spec bool) (*Diff, int, int) {
	t.Helper()
	ini := NewInitiator(Build(local, depth))
	resp := NewResponder(remote)
	ini.Speculative = spec
	resp.Speculative = spec
	rounds, bytes := 0, 0
	for !ini.Done() {
		msg := ini.Next()
		reply, err := resp.Respond(msg)
		if err != nil {
			t.Fatal(err)
		}
		rounds++
		bytes += len(msg) + len(reply)
		if err := ini.Absorb(reply); err != nil {
			t.Fatal(err)
		}
	}
	return ini.Diff(), rounds, bytes
}

// TestSpeculativeSameDiff: speculative descent must discover exactly the
// diff legacy descent does, in strictly fewer roundtrips on a deep tree.
func TestSpeculativeSameDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	local := makeEntries(rng, 4000)
	remote := append([]Entry(nil), local...)
	for i := 0; i < 8; i++ {
		k := rng.Intn(len(remote))
		remote[k] = entry(remote[k].Path, fmt.Sprintf("spec-%d", i))
	}
	remote = append(remote, entry("brand/new", "n"))

	depth := DepthFor(len(local))
	legacy, legacyRounds, _ := runDescent(t, local, remote, depth, false)
	spec, specRounds, _ := runDescent(t, local, remote, depth, true)

	if legacy.Total() != spec.Total() ||
		len(legacy.Changed) != len(spec.Changed) ||
		len(legacy.OnlyRemote) != len(spec.OnlyRemote) ||
		len(legacy.OnlyLocal) != len(spec.OnlyLocal) {
		t.Fatalf("legacy diff %+v != speculative diff %+v", legacy, spec)
	}
	for i := range legacy.Changed {
		if legacy.Changed[i] != spec.Changed[i] {
			t.Fatalf("changed[%d] differs", i)
		}
	}
	if specRounds >= legacyRounds {
		t.Fatalf("speculative took %d rounds, legacy %d", specRounds, legacyRounds)
	}
	t.Logf("depth %d: legacy %d rounds, speculative %d", depth, legacyRounds, specRounds)
}

// TestSpeculativeLevelsBounded: responder speculation depth shrinks as the
// dispute set grows, keeping replies near the digest budget.
func TestSpeculativeLevelsBounded(t *testing.T) {
	if lv := specLevelsFor(1); lv != specMaxLevels {
		t.Fatalf("single dispute speculates %d levels", lv)
	}
	if lv := specLevelsFor(1000); lv != 1 {
		t.Fatalf("huge dispute set speculates %d levels", lv)
	}
	for m := 1; m < 2000; m *= 3 {
		lv := specLevelsFor(m)
		if cost := m * ((2 << uint(lv)) - 2); lv > 1 && cost > specDigestBudget {
			t.Fatalf("m=%d lv=%d costs %d digests", m, lv, cost)
		}
	}
}

// TestPersistRoundTrip: save, load, verify identical digests; a stale
// fingerprint comes back distinguishable.
func TestPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(71))
	entries := makeEntries(rng, 500)
	fp := md4OfEntries(entries)
	tr := Build(entries, 7)
	saveTree(dir, fp, tr)

	got, gotFP, ok := loadTree(dir, 7)
	if !ok {
		t.Fatal("load missed after save")
	}
	if gotFP != fp {
		t.Fatal("fingerprint mismatch after load")
	}
	if got.Root() != tr.Root() || got.Count() != tr.Count() {
		t.Fatal("loaded tree differs from saved")
	}
	for id := 1; id < 2<<7; id++ {
		if got.node(id) != tr.node(id) {
			t.Fatalf("node %d differs after reload", id)
		}
	}
	if _, _, ok := loadTree(dir, 9); ok {
		t.Fatal("load hit for a depth never saved")
	}
}

func md4OfEntries(entries []Entry) (out [16]byte) {
	return bucketDigest(entries)
}

// TestPersistCorruption: any flipped byte must read as a miss and remove
// the file, never a wrong tree.
func TestPersistCorruption(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(81))
	entries := makeEntries(rng, 100)
	tr := Build(entries, 5)
	saveTree(dir, md4OfEntries(entries), tr)
	name := treeFileName(dir, 5)
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, 5, len(data) / 2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[pos] ^= 0x40
		if err := os.WriteFile(name, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := loadTree(dir, 5); ok {
			t.Fatalf("corrupt byte at %d loaded successfully", pos)
		}
		if _, err := os.Stat(name); !os.IsNotExist(err) {
			t.Fatalf("corrupt file at %d not removed", pos)
		}
	}
	// Truncations likewise.
	if err := os.WriteFile(name, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := loadTree(dir, 5); ok {
		t.Fatal("truncated file loaded successfully")
	}
}

// TestTreeCachePersistAndRebase: a cache at a directory restores its tree
// across instances — verbatim on a fingerprint hit, incrementally on a
// stale one — and Rebase carries built trees to a new entry set without
// rebuilding.
func TestTreeCachePersistAndRebase(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(91))
	v1 := makeEntries(rng, 600)
	fp1 := md4OfEntries(v1)
	depth := DepthFor(len(v1))

	tc1 := NewTreeCacheAt(v1, fp1, dir)
	want := tc1.Tree(depth).Root()
	if _, err := os.Stat(treeFileName(dir, depth)); err != nil {
		t.Fatalf("tree not persisted: %v", err)
	}

	// Same fingerprint, fresh cache: disk hit, same root.
	tc2 := NewTreeCacheAt(v1, fp1, dir)
	if tc2.Tree(depth).Root() != want {
		t.Fatal("disk-restored tree differs")
	}

	// Changed entries, fresh cache: incremental update path, root matches
	// a from-scratch build.
	v2 := append([]Entry(nil), v1...)
	v2[10] = entry(v2[10].Path, "V2")
	v2 = append(v2, entry("added/one", "1"))
	fp2 := md4OfEntries(v2)
	tc3 := NewTreeCacheAt(v2, fp2, dir)
	if tc3.Tree(depth).Root() != Build(v2, depth).Root() {
		t.Fatal("incrementally-updated disk tree differs from rebuild")
	}

	// Rebase: carry the built tree forward in memory.
	v3 := append([]Entry(nil), v2...)
	v3[20] = entry(v3[20].Path, "V3")
	tc4 := tc3.Rebase(v3, md4OfEntries(v3))
	if tc4.Tree(depth).Root() != Build(v3, depth).Root() {
		t.Fatal("rebased tree differs from rebuild")
	}

	// A total rewrite falls back to rebuilding rather than updating.
	v4 := makeEntries(rand.New(rand.NewSource(92)), 600)
	tc5 := tc4.Rebase(v4, md4OfEntries(v4))
	if tc5.Tree(depth).Root() != Build(v4, depth).Root() {
		t.Fatal("rebase-after-rewrite differs from rebuild")
	}
}

// TestPersistSharesSigcacheDir: tree files must use a name shape that can
// never collide with sigcache's hex-named ".sig" entries.
func TestPersistSharesSigcacheDir(t *testing.T) {
	name := filepath.Base(treeFileName("x", 12))
	if filepath.Ext(name) == ".sig" {
		t.Fatalf("tree file %q collides with sigcache naming", name)
	}
}
