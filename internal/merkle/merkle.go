// Package merkle implements hash-tree change detection for replicated file
// collections: finding WHICH files differ with communication proportional
// to the number of changes rather than the collection size.
//
// The paper uses a flat per-file fingerprint manifest and points to the
// file-comparison literature (Metzner; Madej; Abdel-Ghaffar/El Abbadi) for
// doing better when almost everything is unchanged. This package is that
// substrate: both sides build a binary hash trie of fixed depth over the
// MD4 of each path (so differing file SETS still align), with per-file
// content fingerprints in the leaf buckets; a short multi-round exchange
// then locates the differing buckets.
//
// Wire shape (driven by the collection layer):
//
//	initiator → responder: tree depth + root digest
//	responder → initiator: "equal" | children digests of the root
//	initiator → responder: IDs of nodes whose digests differ locally
//	responder → initiator: children digests / leaf bucket contents
//	...until no internal nodes remain in dispute.
//
// When both sides enable speculative descent, internal-node answers carry
// several levels of descendant digests at once so a typical descent takes
// roughly half the roundtrips; see Responder.Speculative.
//
// After the exchange the initiator knows, exactly: paths changed, paths
// only at the responder, and paths only at itself.
package merkle

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"msync/internal/md4"
	"msync/internal/wire"
)

// Entry is one file fingerprint: the path and a strong hash of content
// (plus length, so the collection layer can size engine state).
type Entry struct {
	Path string
	Len  int
	Sum  [md4.Size]byte
}

// MaxDepth bounds the trie depth (2^MaxDepth leaf buckets). Depths above
// denseLimit switch to a sparse representation, so the cap can sit far past
// the point where a dense digest array (32 MB per depth step at 2^21) would
// hurt: 2^28 buckets keeps buckets at ~4 entries out to the billion-file
// range while a sparse tree only materializes the occupied spine.
const MaxDepth = 28

// denseLimit is the largest depth stored as flat arrays; deeper trees use
// hash maps keyed by node id. A variable so tests can force the sparse path
// at small depths and prove both representations hash identically.
var denseLimit = 20

// Tree is a fixed-depth binary hash trie over path hashes.
//
// Two storage layouts share one digest definition: dense trees (depth <=
// denseLimit) keep every bucket and node in flat slices; sparse trees keep
// only non-empty buckets and only nodes whose digest differs from the
// all-empty subtree of the same height. Both produce bit-identical wire
// messages at the same depth.
type Tree struct {
	depth int
	count int

	// Dense layout: 2^depth buckets (entries sorted by path) and
	// heap-ordered digests, 1-based, len 2^(depth+1).
	buckets [][]Entry
	nodes   [][md4.Size]byte

	// Sparse layout (nil when dense).
	sbuckets map[int32][]Entry
	snodes   map[int32][md4.Size]byte
}

// DepthFor picks a depth that yields small buckets (~4 entries).
func DepthFor(n int) int {
	d := 0
	for (n>>d) > 4 && d < MaxDepth {
		d++
	}
	return d
}

// bucketOf maps a path to its leaf index.
func bucketOf(path string, depth int) int {
	if depth == 0 {
		return 0
	}
	h := md4.Sum([]byte(path))
	v := binary.BigEndian.Uint32(h[:4])
	return int(v >> (32 - uint(depth)))
}

func newTree(depth int) *Tree {
	if depth < 0 || depth > MaxDepth {
		panic(fmt.Sprintf("merkle: depth %d out of range", depth))
	}
	t := &Tree{depth: depth}
	if depth <= denseLimit {
		t.buckets = make([][]Entry, 1<<depth)
		t.nodes = make([][md4.Size]byte, 2<<depth)
	} else {
		t.sbuckets = make(map[int32][]Entry)
		t.snodes = make(map[int32][md4.Size]byte)
	}
	return t
}

// Build constructs the tree for a set of entries at the given depth.
func Build(entries []Entry, depth int) *Tree {
	t := newTree(depth)
	t.count = len(entries)
	for _, e := range entries {
		b := bucketOf(e.Path, depth)
		t.setBucket(b, append(t.bucket(b), e))
	}
	if t.nodes != nil {
		for i := range t.buckets {
			sortBucket(t.buckets[i])
			t.nodes[(1<<depth)+i] = bucketDigest(t.buckets[i])
		}
		for i := (1 << depth) - 1; i >= 1; i-- {
			t.nodes[i] = joinDigest(t.nodes[2*i], t.nodes[2*i+1])
		}
		return t
	}
	dirty := make([]int, 0, len(t.sbuckets))
	for b, es := range t.sbuckets {
		sortBucket(es)
		dirty = append(dirty, int(b))
	}
	sort.Ints(dirty)
	for _, b := range dirty {
		t.setNode((1<<depth)+b, bucketDigest(t.bucket(b)))
	}
	t.recomputeAncestors(dirty)
	return t
}

func sortBucket(es []Entry) {
	sort.Slice(es, func(a, b int) bool { return es[a].Path < es[b].Path })
}

func bucketDigest(entries []Entry) [md4.Size]byte {
	h := md4.New()
	var lenBuf [binary.MaxVarintLen64]byte
	for _, e := range entries {
		h.Write([]byte(e.Path))
		h.Write([]byte{0})
		n := binary.PutUvarint(lenBuf[:], uint64(e.Len))
		h.Write(lenBuf[:n])
		h.Write(e.Sum[:])
	}
	var out [md4.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

func joinDigest(left, right [md4.Size]byte) [md4.Size]byte {
	h := md4.New()
	h.Write(left[:])
	h.Write(right[:])
	var out [md4.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// emptyNodes[h] is the digest of a complete subtree of height h containing
// no entries: the anchor that lets a sparse tree answer for any node it
// never stored. Computed once; identical across depths because the digest
// of an empty bucket doesn't depend on where it sits.
var (
	emptyOnce  sync.Once
	emptyNodes [MaxDepth + 1][md4.Size]byte
)

func emptyNode(height int) [md4.Size]byte {
	emptyOnce.Do(func() {
		emptyNodes[0] = bucketDigest(nil)
		for h := 1; h <= MaxDepth; h++ {
			emptyNodes[h] = joinDigest(emptyNodes[h-1], emptyNodes[h-1])
		}
	})
	return emptyNodes[height]
}

// height reports the subtree height below node id (0 for leaves).
func (t *Tree) height(id int) int {
	return t.depth - (bits.Len(uint(id)) - 1)
}

func (t *Tree) node(id int) [md4.Size]byte {
	if t.nodes != nil {
		return t.nodes[id]
	}
	if d, ok := t.snodes[int32(id)]; ok {
		return d
	}
	return emptyNode(t.height(id))
}

// setNode stores a digest; in the sparse layout a digest equal to the
// empty-subtree anchor is represented by absence, keeping the map canonical
// (two trees with equal content have equal maps).
func (t *Tree) setNode(id int, d [md4.Size]byte) {
	if t.nodes != nil {
		t.nodes[id] = d
		return
	}
	if d == emptyNode(t.height(id)) {
		delete(t.snodes, int32(id))
		return
	}
	t.snodes[int32(id)] = d
}

func (t *Tree) bucket(i int) []Entry {
	if t.buckets != nil {
		return t.buckets[i]
	}
	return t.sbuckets[int32(i)]
}

func (t *Tree) setBucket(i int, es []Entry) {
	if t.buckets != nil {
		t.buckets[i] = es
		return
	}
	if len(es) == 0 {
		delete(t.sbuckets, int32(i))
		return
	}
	t.sbuckets[int32(i)] = es
}

// Depth reports the tree depth.
func (t *Tree) Depth() int { return t.depth }

// Count reports the number of entries in the tree.
func (t *Tree) Count() int { return t.count }

// Root returns the root digest.
func (t *Tree) Root() [md4.Size]byte { return t.node(1) }

// AllEntries returns every entry in the tree, sorted by path.
func (t *Tree) AllEntries() []Entry {
	out := make([]Entry, 0, t.count)
	if t.buckets != nil {
		for _, b := range t.buckets {
			out = append(out, b...)
		}
	} else {
		for _, b := range t.sbuckets {
			out = append(out, b...)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Path < out[b].Path })
	return out
}

// Diff reports the exact difference between the initiator's entries and the
// responder's, as discovered by a completed reconciliation.
type Diff struct {
	// Changed lists responder entries whose path exists on both sides with
	// different content (length or hash).
	Changed []Entry
	// OnlyRemote lists responder entries whose path the initiator lacks.
	OnlyRemote []Entry
	// OnlyLocal lists initiator paths the responder lacks.
	OnlyLocal []string
}

// Total reports the number of differing paths.
func (d *Diff) Total() int { return len(d.Changed) + len(d.OnlyRemote) + len(d.OnlyLocal) }

// Initiator drives reconciliation against a remote Responder.
type Initiator struct {
	t        *Tree
	frontier []int32 // node IDs whose subtrees are in dispute, awaiting expansion
	started  bool
	done     bool
	diff     Diff

	// Speculative must be set (before the first Absorb) iff the responder
	// confirmed it will answer internal nodes with multi-level digest
	// blocks. The request messages are unchanged either way.
	Speculative bool
}

// NewInitiator starts a reconciliation for the local tree.
func NewInitiator(t *Tree) *Initiator { return &Initiator{t: t} }

// Done reports whether reconciliation has finished.
func (ini *Initiator) Done() bool { return ini.done }

// Diff returns the discovered difference (valid once Done).
func (ini *Initiator) Diff() *Diff { return &ini.diff }

// Next builds the next initiator→responder message.
func (ini *Initiator) Next() []byte {
	b := wire.NewBuffer(64)
	if !ini.started {
		ini.started = true
		b.Uvarint(uint64(ini.t.depth))
		root := ini.t.Root()
		b.Raw(root[:])
		return b.Build()
	}
	b.Uvarint(uint64(len(ini.frontier)))
	for _, id := range ini.frontier {
		b.Uvarint(uint64(id))
	}
	return b.Build()
}

// Absorb processes a responder→initiator message. The responder answers the
// previous message's nodes in order: for the first message the single root,
// afterwards each requested node. Internal nodes come back as two child
// digests (or a multi-level digest block under speculative descent); leaves
// as full bucket contents.
func (ini *Initiator) Absorb(payload []byte) error {
	p := wire.NewParser(payload)
	var asked []int32
	if len(ini.frontier) == 0 {
		// Response to the root announcement.
		eq, err := p.Bool()
		if err != nil {
			return err
		}
		if eq {
			ini.done = true
			return nil
		}
		asked = []int32{1}
	} else {
		asked = ini.frontier
	}
	ini.frontier = nil
	for _, id := range asked {
		if err := ini.absorbNode(p, int(id)); err != nil {
			return err
		}
	}
	if len(ini.frontier) == 0 {
		ini.done = true
	}
	return nil
}

// absorbNode processes the responder's answer for one disputed node.
func (ini *Initiator) absorbNode(p *wire.Parser, id int) error {
	if id >= 1<<ini.t.depth { // leaf: bucket contents follow
		remote, err := decodeBucket(p)
		if err != nil {
			return err
		}
		ini.compareBucket(id-(1<<ini.t.depth), remote)
		return nil
	}
	if ini.Speculative {
		return ini.absorbNodeSpec(p, id)
	}
	var remote [2][md4.Size]byte
	for c := 0; c < 2; c++ {
		raw, err := p.Raw(md4.Size)
		if err != nil {
			return err
		}
		copy(remote[c][:], raw)
	}
	for c := 0; c < 2; c++ {
		child := 2*id + c
		if ini.t.node(child) != remote[c] {
			ini.frontier = append(ini.frontier, int32(child))
		}
	}
	return nil
}

// absorbNodeSpec processes a speculative answer: a level count, then every
// descendant digest down to that relative level in heap order. Dispute is
// tracked level by level — a node is disputed iff its parent is and its
// digest differs locally — and only the deepest level's survivors join the
// frontier. All advertised digests are consumed even once the dispute set
// empties, keeping the stream aligned.
func (ini *Initiator) absorbNodeSpec(p *wire.Parser, id int) error {
	lv, err := p.Uvarint()
	if err != nil {
		return err
	}
	if lv < 1 || int(lv) > ini.t.height(id) {
		return fmt.Errorf("merkle: speculative depth %d out of range for node %d", lv, id)
	}
	disputed := map[int]bool{id: true}
	var deepest []int
	for l := 1; l <= int(lv); l++ {
		base := id << uint(l)
		next := make(map[int]bool)
		deepest = deepest[:0]
		for j := 0; j < 1<<uint(l); j++ {
			raw, err := p.Raw(md4.Size)
			if err != nil {
				return err
			}
			child := base + j
			if !disputed[child>>1] {
				continue
			}
			var d [md4.Size]byte
			copy(d[:], raw)
			if ini.t.node(child) != d {
				next[child] = true
				deepest = append(deepest, child)
			}
		}
		disputed = next
	}
	for _, child := range deepest {
		ini.frontier = append(ini.frontier, int32(child))
	}
	return nil
}

// compareBucket merges a remote bucket against the local one.
func (ini *Initiator) compareBucket(bucket int, remote []Entry) {
	local := ini.t.bucket(bucket)
	i, j := 0, 0
	for i < len(local) || j < len(remote) {
		switch {
		case j >= len(remote) || (i < len(local) && local[i].Path < remote[j].Path):
			ini.diff.OnlyLocal = append(ini.diff.OnlyLocal, local[i].Path)
			i++
		case i >= len(local) || local[i].Path > remote[j].Path:
			ini.diff.OnlyRemote = append(ini.diff.OnlyRemote, remote[j])
			j++
		default:
			if local[i].Len != remote[j].Len || local[i].Sum != remote[j].Sum {
				ini.diff.Changed = append(ini.diff.Changed, remote[j])
			}
			i++
			j++
		}
	}
}

// Responder answers reconciliation queries from its local tree.
type Responder struct {
	t       *Tree
	entries []Entry
	cache   *TreeCache
	started bool

	// Speculative makes internal-node answers carry several levels of
	// descendant digests (see specLevelsFor). Only set it when the
	// initiator negotiated the capability: the answer encoding changes.
	Speculative bool
}

// NewResponder creates a responder over the given entries. The tree is
// built lazily at the announced depth so both sides always agree.
func NewResponder(entries []Entry) *Responder {
	return &Responder{entries: entries}
}

// NewResponderCached creates a per-session responder whose tree comes from
// the shared cache. Responders themselves are stateful and single-session;
// only the built trees are shared.
func NewResponderCached(tc *TreeCache) *Responder {
	return &Responder{entries: tc.entries, cache: tc}
}

// Speculative-descent sizing: how many extra levels of descendant digests
// an internal-node answer includes. Deeper when the dispute set is small,
// so a reply stays near specDigestBudget digests (~8 KB) — about the size
// of one legacy round's worth of bucket payloads.
const (
	specMaxLevels    = 3
	specDigestBudget = 512
)

// specLevelsFor picks the per-node speculation depth when m internal nodes
// are in dispute. A node expanded to lv levels costs 2^(lv+1)-2 digests.
func specLevelsFor(m int) int {
	lv := 1
	for lv < specMaxLevels && m*((4<<uint(lv))-2) <= specDigestBudget {
		lv++
	}
	return lv
}

// Respond handles one initiator message.
func (r *Responder) Respond(payload []byte) ([]byte, error) {
	p := wire.NewParser(payload)
	out := wire.NewBuffer(256)
	if !r.started {
		r.started = true
		depth, err := p.Uvarint()
		if err != nil {
			return nil, err
		}
		if depth > MaxDepth {
			return nil, fmt.Errorf("merkle: depth %d too large", depth)
		}
		raw, err := p.Raw(md4.Size)
		if err != nil {
			return nil, err
		}
		if r.cache != nil {
			r.t = r.cache.Tree(int(depth))
		} else {
			r.t = Build(r.entries, int(depth))
		}
		var root [md4.Size]byte
		copy(root[:], raw)
		if root == r.t.Root() {
			out.Bool(true)
			return out.Build(), nil
		}
		out.Bool(false)
		r.answerNode(out, 1, specLevelsFor(1))
		return out.Build(), nil
	}
	n, err := p.Uvarint()
	if err != nil {
		return nil, err
	}
	// Every id costs at least one payload byte, so a count beyond the
	// remaining bytes is malformed — reject it before allocating.
	if n > uint64(p.Remaining()) {
		return nil, fmt.Errorf("merkle: node count %d exceeds payload", n)
	}
	ids := make([]int, 0, n)
	internal := 0
	for k := uint64(0); k < n; k++ {
		id, err := p.Uvarint()
		if err != nil {
			return nil, err
		}
		if id < 1 || id >= uint64(2)<<uint(r.t.depth) {
			return nil, fmt.Errorf("merkle: node id %d out of range", id)
		}
		ids = append(ids, int(id))
		if id < uint64(1)<<uint(r.t.depth) {
			internal++
		}
	}
	lv := specLevelsFor(internal)
	for _, id := range ids {
		r.answerNode(out, id, lv)
	}
	return out.Build(), nil
}

// answerNode writes either child digests or, at a leaf, the bucket. Under
// speculative descent an internal node's answer is a level count followed
// by all descendant digests down to that relative level, in heap order.
func (r *Responder) answerNode(out *wire.Buffer, id, specLv int) {
	if id >= 1<<r.t.depth {
		encodeBucket(out, r.t.bucket(id-(1<<r.t.depth)))
		return
	}
	if !r.Speculative {
		l := r.t.node(2 * id)
		rt := r.t.node(2*id + 1)
		out.Raw(l[:])
		out.Raw(rt[:])
		return
	}
	if h := r.t.height(id); specLv > h {
		specLv = h
	}
	out.Uvarint(uint64(specLv))
	for l := 1; l <= specLv; l++ {
		base := id << uint(l)
		for j := 0; j < 1<<uint(l); j++ {
			d := r.t.node(base + j)
			out.Raw(d[:])
		}
	}
}

func encodeBucket(out *wire.Buffer, entries []Entry) {
	out.Uvarint(uint64(len(entries)))
	for _, e := range entries {
		out.String(e.Path)
		out.Uvarint(uint64(e.Len))
		out.Raw(e.Sum[:])
	}
}

func decodeBucket(p *wire.Parser) ([]Entry, error) {
	n, err := p.Uvarint()
	if err != nil {
		return nil, err
	}
	// Each encoded entry is at least 18 bytes (path length, file length,
	// 16-byte digest); bound the allocation by what the payload can hold.
	if n > uint64(p.Remaining()) {
		return nil, fmt.Errorf("merkle: bucket count %d exceeds payload", n)
	}
	out := make([]Entry, 0, n)
	for k := uint64(0); k < n; k++ {
		var e Entry
		if e.Path, err = p.String(); err != nil {
			return nil, err
		}
		l, err := p.Uvarint()
		if err != nil {
			return nil, err
		}
		e.Len = int(l)
		raw, err := p.Raw(md4.Size)
		if err != nil {
			return nil, err
		}
		copy(e.Sum[:], raw)
		out = append(out, e)
	}
	return out, nil
}

// Reconcile runs a full reconciliation locally (for tests and library use
// without a connection), returning the diff and total bytes exchanged.
func Reconcile(local, remote []Entry) (*Diff, int, error) {
	ini := NewInitiator(Build(local, DepthFor(len(local)+len(remote))))
	resp := NewResponder(remote)
	bytes := 0
	for !ini.Done() {
		msg := ini.Next()
		bytes += len(msg)
		reply, err := resp.Respond(msg)
		if err != nil {
			return nil, bytes, err
		}
		bytes += len(reply)
		if err := ini.Absorb(reply); err != nil {
			return nil, bytes, err
		}
	}
	return ini.Diff(), bytes, nil
}
