// Package merkle implements hash-tree change detection for replicated file
// collections: finding WHICH files differ with communication proportional
// to the number of changes rather than the collection size.
//
// The paper uses a flat per-file fingerprint manifest and points to the
// file-comparison literature (Metzner; Madej; Abdel-Ghaffar/El Abbadi) for
// doing better when almost everything is unchanged. This package is that
// substrate: both sides build a binary hash trie of fixed depth over the
// MD4 of each path (so differing file SETS still align), with per-file
// content fingerprints in the leaf buckets; a short multi-round exchange
// then locates the differing buckets.
//
// Wire shape (driven by the collection layer):
//
//	initiator → responder: tree depth + root digest
//	responder → initiator: "equal" | children digests of the root
//	initiator → responder: IDs of nodes whose digests differ locally
//	responder → initiator: children digests / leaf bucket contents
//	...until no internal nodes remain in dispute.
//
// After the exchange the initiator knows, exactly: paths changed, paths
// only at the responder, and paths only at itself.
package merkle

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"msync/internal/md4"
	"msync/internal/wire"
)

// Entry is one file fingerprint: the path and a strong hash of content
// (plus length, so the collection layer can size engine state).
type Entry struct {
	Path string
	Len  int
	Sum  [md4.Size]byte
}

// MaxDepth bounds the trie depth (2^MaxDepth leaf buckets).
const MaxDepth = 20

// Tree is a fixed-depth binary hash trie over path hashes.
type Tree struct {
	depth   int
	buckets [][]Entry        // 2^depth buckets, entries sorted by path
	nodes   [][md4.Size]byte // heap-ordered digests, 1-based; len 2^(depth+1)
}

// DepthFor picks a depth that yields small buckets (~4 entries).
func DepthFor(n int) int {
	d := 0
	for (n>>d) > 4 && d < MaxDepth {
		d++
	}
	return d
}

// bucketOf maps a path to its leaf index.
func bucketOf(path string, depth int) int {
	if depth == 0 {
		return 0
	}
	h := md4.Sum([]byte(path))
	v := binary.BigEndian.Uint32(h[:4])
	return int(v >> (32 - uint(depth)))
}

// Build constructs the tree for a set of entries at the given depth.
func Build(entries []Entry, depth int) *Tree {
	if depth < 0 || depth > MaxDepth {
		panic(fmt.Sprintf("merkle: depth %d out of range", depth))
	}
	t := &Tree{
		depth:   depth,
		buckets: make([][]Entry, 1<<depth),
		nodes:   make([][md4.Size]byte, 2<<depth),
	}
	for _, e := range entries {
		b := bucketOf(e.Path, depth)
		t.buckets[b] = append(t.buckets[b], e)
	}
	for i := range t.buckets {
		sort.Slice(t.buckets[i], func(a, b int) bool {
			return t.buckets[i][a].Path < t.buckets[i][b].Path
		})
		t.nodes[(1<<depth)+i] = bucketDigest(t.buckets[i])
	}
	for i := (1 << depth) - 1; i >= 1; i-- {
		h := md4.New()
		h.Write(t.nodes[2*i][:])
		h.Write(t.nodes[2*i+1][:])
		copy(t.nodes[i][:], h.Sum(nil))
	}
	return t
}

func bucketDigest(entries []Entry) [md4.Size]byte {
	h := md4.New()
	var lenBuf [binary.MaxVarintLen64]byte
	for _, e := range entries {
		h.Write([]byte(e.Path))
		h.Write([]byte{0})
		n := binary.PutUvarint(lenBuf[:], uint64(e.Len))
		h.Write(lenBuf[:n])
		h.Write(e.Sum[:])
	}
	var out [md4.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Depth reports the tree depth.
func (t *Tree) Depth() int { return t.depth }

// Root returns the root digest.
func (t *Tree) Root() [md4.Size]byte { return t.nodes[1] }

// Diff reports the exact difference between the initiator's entries and the
// responder's, as discovered by a completed reconciliation.
type Diff struct {
	// Changed lists responder entries whose path exists on both sides with
	// different content (length or hash).
	Changed []Entry
	// OnlyRemote lists responder entries whose path the initiator lacks.
	OnlyRemote []Entry
	// OnlyLocal lists initiator paths the responder lacks.
	OnlyLocal []string
}

// Total reports the number of differing paths.
func (d *Diff) Total() int { return len(d.Changed) + len(d.OnlyRemote) + len(d.OnlyLocal) }

// Initiator drives reconciliation against a remote Responder.
type Initiator struct {
	t        *Tree
	frontier []int32 // node IDs whose subtrees are in dispute, awaiting expansion
	started  bool
	done     bool
	diff     Diff
}

// NewInitiator starts a reconciliation for the local tree.
func NewInitiator(t *Tree) *Initiator { return &Initiator{t: t} }

// Done reports whether reconciliation has finished.
func (ini *Initiator) Done() bool { return ini.done }

// Diff returns the discovered difference (valid once Done).
func (ini *Initiator) Diff() *Diff { return &ini.diff }

// Next builds the next initiator→responder message.
func (ini *Initiator) Next() []byte {
	b := wire.NewBuffer(64)
	if !ini.started {
		ini.started = true
		b.Uvarint(uint64(ini.t.depth))
		root := ini.t.Root()
		b.Raw(root[:])
		return b.Build()
	}
	b.Uvarint(uint64(len(ini.frontier)))
	for _, id := range ini.frontier {
		b.Uvarint(uint64(id))
	}
	return b.Build()
}

// Absorb processes a responder→initiator message. The responder answers the
// previous message's nodes in order: for the first message the single root,
// afterwards each requested node. Internal nodes come back as two child
// digests; leaves as full bucket contents.
func (ini *Initiator) Absorb(payload []byte) error {
	p := wire.NewParser(payload)
	var asked []int32
	if len(ini.frontier) == 0 {
		// Response to the root announcement.
		eq, err := p.Bool()
		if err != nil {
			return err
		}
		if eq {
			ini.done = true
			return nil
		}
		asked = []int32{1}
	} else {
		asked = ini.frontier
	}
	ini.frontier = nil
	for _, id := range asked {
		if err := ini.absorbNode(p, int(id)); err != nil {
			return err
		}
	}
	if len(ini.frontier) == 0 {
		ini.done = true
	}
	return nil
}

// absorbNode processes the responder's answer for one disputed node.
func (ini *Initiator) absorbNode(p *wire.Parser, id int) error {
	if id >= 1<<ini.t.depth { // leaf: bucket contents follow
		remote, err := decodeBucket(p)
		if err != nil {
			return err
		}
		ini.compareBucket(id-(1<<ini.t.depth), remote)
		return nil
	}
	var remote [2][md4.Size]byte
	for c := 0; c < 2; c++ {
		raw, err := p.Raw(md4.Size)
		if err != nil {
			return err
		}
		copy(remote[c][:], raw)
	}
	for c := 0; c < 2; c++ {
		child := 2*id + c
		if ini.t.nodes[child] != remote[c] {
			ini.frontier = append(ini.frontier, int32(child))
		}
	}
	return nil
}

// compareBucket merges a remote bucket against the local one.
func (ini *Initiator) compareBucket(bucket int, remote []Entry) {
	local := ini.t.buckets[bucket]
	i, j := 0, 0
	for i < len(local) || j < len(remote) {
		switch {
		case j >= len(remote) || (i < len(local) && local[i].Path < remote[j].Path):
			ini.diff.OnlyLocal = append(ini.diff.OnlyLocal, local[i].Path)
			i++
		case i >= len(local) || local[i].Path > remote[j].Path:
			ini.diff.OnlyRemote = append(ini.diff.OnlyRemote, remote[j])
			j++
		default:
			if local[i].Len != remote[j].Len || local[i].Sum != remote[j].Sum {
				ini.diff.Changed = append(ini.diff.Changed, remote[j])
			}
			i++
			j++
		}
	}
}

// Responder answers reconciliation queries from its local tree.
type Responder struct {
	t       *Tree
	entries []Entry
	cache   *TreeCache
	started bool
}

// NewResponder creates a responder over the given entries. The tree is
// built lazily at the announced depth so both sides always agree.
func NewResponder(entries []Entry) *Responder {
	return &Responder{entries: entries}
}

// TreeCache memoizes built trees per announced depth for one immutable
// entry set, so a server answering many reconciliation sessions hashes its
// collection into a trie once per depth instead of once per session. Safe
// for concurrent use.
type TreeCache struct {
	mu      sync.Mutex
	entries []Entry
	trees   map[int]*Tree
}

// NewTreeCache creates a cache over entries, which must not change afterwards.
func NewTreeCache(entries []Entry) *TreeCache {
	return &TreeCache{entries: entries, trees: make(map[int]*Tree)}
}

// Tree returns (building once) the tree at the given depth.
func (tc *TreeCache) Tree(depth int) *Tree {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if t, ok := tc.trees[depth]; ok {
		return t
	}
	t := Build(tc.entries, depth)
	tc.trees[depth] = t
	return t
}

// NewResponderCached creates a per-session responder whose tree comes from
// the shared cache. Responders themselves are stateful and single-session;
// only the built trees are shared.
func NewResponderCached(tc *TreeCache) *Responder {
	return &Responder{entries: tc.entries, cache: tc}
}

// Respond handles one initiator message.
func (r *Responder) Respond(payload []byte) ([]byte, error) {
	p := wire.NewParser(payload)
	out := wire.NewBuffer(256)
	if !r.started {
		r.started = true
		depth, err := p.Uvarint()
		if err != nil {
			return nil, err
		}
		if depth > MaxDepth {
			return nil, fmt.Errorf("merkle: depth %d too large", depth)
		}
		raw, err := p.Raw(md4.Size)
		if err != nil {
			return nil, err
		}
		if r.cache != nil {
			r.t = r.cache.Tree(int(depth))
		} else {
			r.t = Build(r.entries, int(depth))
		}
		var root [md4.Size]byte
		copy(root[:], raw)
		if root == r.t.Root() {
			out.Bool(true)
			return out.Build(), nil
		}
		out.Bool(false)
		r.answerNode(out, 1)
		return out.Build(), nil
	}
	n, err := p.Uvarint()
	if err != nil {
		return nil, err
	}
	for k := uint64(0); k < n; k++ {
		id, err := p.Uvarint()
		if err != nil {
			return nil, err
		}
		if id < 1 || id >= uint64(len(r.t.nodes)) {
			return nil, fmt.Errorf("merkle: node id %d out of range", id)
		}
		r.answerNode(out, int(id))
	}
	return out.Build(), nil
}

// answerNode writes either child digests or, at a leaf, the bucket.
func (r *Responder) answerNode(out *wire.Buffer, id int) {
	if id >= 1<<r.t.depth {
		encodeBucket(out, r.t.buckets[id-(1<<r.t.depth)])
		return
	}
	out.Raw(r.t.nodes[2*id][:])
	out.Raw(r.t.nodes[2*id+1][:])
}

func encodeBucket(out *wire.Buffer, entries []Entry) {
	out.Uvarint(uint64(len(entries)))
	for _, e := range entries {
		out.String(e.Path)
		out.Uvarint(uint64(e.Len))
		out.Raw(e.Sum[:])
	}
}

func decodeBucket(p *wire.Parser) ([]Entry, error) {
	n, err := p.Uvarint()
	if err != nil {
		return nil, err
	}
	out := make([]Entry, 0, n)
	for k := uint64(0); k < n; k++ {
		var e Entry
		if e.Path, err = p.String(); err != nil {
			return nil, err
		}
		l, err := p.Uvarint()
		if err != nil {
			return nil, err
		}
		e.Len = int(l)
		raw, err := p.Raw(md4.Size)
		if err != nil {
			return nil, err
		}
		copy(e.Sum[:], raw)
		out = append(out, e)
	}
	return out, nil
}

// Reconcile runs a full reconciliation locally (for tests and library use
// without a connection), returning the diff and total bytes exchanged.
func Reconcile(local, remote []Entry) (*Diff, int, error) {
	ini := NewInitiator(Build(local, DepthFor(len(local)+len(remote))))
	resp := NewResponder(remote)
	bytes := 0
	for !ini.Done() {
		msg := ini.Next()
		bytes += len(msg)
		reply, err := resp.Respond(msg)
		if err != nil {
			return nil, bytes, err
		}
		bytes += len(reply)
		if err := ini.Absorb(reply); err != nil {
			return nil, bytes, err
		}
	}
	return ini.Diff(), bytes, nil
}
