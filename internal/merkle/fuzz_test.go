package merkle

import (
	"math/rand"
	"testing"
)

// fuzzEntries is a small fixed entry set shared by the fuzz targets.
func fuzzEntries() []Entry {
	rng := rand.New(rand.NewSource(99))
	return makeEntries(rng, 48)
}

// FuzzResponderMessages: a responder fed arbitrary initiator messages (the
// depth+root announcement and node-id requests) must never panic or index
// out of range, in both legacy and speculative mode.
func FuzzResponderMessages(f *testing.F) {
	entries := fuzzEntries()
	ini := NewInitiator(Build(entries, 4))
	f.Add(ini.Next(), false)
	f.Add([]byte{4}, false)
	f.Add([]byte{1, 0xFF, 0xFF, 0x7F}, true)
	f.Add([]byte{2, 1, 9}, true)
	f.Fuzz(func(t *testing.T, msg []byte, spec bool) {
		r := NewResponder(entries)
		r.Speculative = spec
		first := NewInitiator(Build(entries, 3)).Next()
		if _, err := r.Respond(first); err != nil {
			t.Fatalf("valid first message rejected: %v", err)
		}
		r.Respond(msg)
	})
}

// FuzzInitiatorAbsorb: an initiator absorbing arbitrary responder replies
// must never panic, in both legacy and speculative mode.
func FuzzInitiatorAbsorb(f *testing.F) {
	entries := fuzzEntries()
	resp := NewResponder(append(entries[:40:40], entry("x/new", "n")))
	ini := NewInitiator(Build(entries, 4))
	reply, _ := resp.Respond(ini.Next())
	f.Add(reply, false)
	f.Add([]byte{0}, false)
	f.Add([]byte{0, 3}, true)
	f.Fuzz(func(t *testing.T, reply []byte, spec bool) {
		ini := NewInitiator(Build(entries, 4))
		ini.Speculative = spec
		ini.Next()
		ini.Absorb(reply)
		if !ini.Done() {
			ini.Next()
			ini.Absorb(reply)
		}
	})
}

// FuzzDecodeTree: the persisted-tree decoder must reject arbitrary bytes
// gracefully (the checksum makes accidental acceptance astronomically
// unlikely) and never panic.
func FuzzDecodeTree(f *testing.F) {
	dir := f.TempDir()
	tr := Build(fuzzEntries(), 5)
	saveTree(dir, bucketDigest(nil), tr)
	if _, _, ok := loadTree(dir, 5); !ok {
		f.Fatal("seed tree failed to load")
	}
	f.Add([]byte("MTRE"), 5)
	f.Add(make([]byte, 40), 0)
	f.Fuzz(func(t *testing.T, data []byte, depth int) {
		depth &= 0x1F
		if depth > MaxDepth {
			depth = MaxDepth
		}
		decodeTree(data, depth)
	})
}
