package merkle

import (
	"sync"

	"msync/internal/md4"
)

// TreeCache memoizes built trees per announced depth for one immutable
// entry set, so a side answering (or driving) many reconciliation sessions
// hashes its collection into a trie once per depth instead of once per
// session. Safe for concurrent use.
//
// A cache created with NewTreeCacheAt additionally persists each built tree
// to disk keyed by the manifest fingerprint, and on the next process start
// restores it — either verbatim (fingerprint match) or by incrementally
// updating the stale tree from the entry-set diff, which costs O(changed ·
// depth) hashes instead of an O(n) rebuild.
type TreeCache struct {
	mu      sync.Mutex
	entries []Entry
	fp      [md4.Size]byte
	dir     string
	trees   map[int]*Tree
}

// NewTreeCache creates an in-memory cache over entries, which must not
// change afterwards.
func NewTreeCache(entries []Entry) *TreeCache {
	return &TreeCache{entries: entries, trees: make(map[int]*Tree)}
}

// NewTreeCacheAt creates a cache over entries whose trees persist in dir
// (the signature-cache directory), keyed by fp — the digest of the manifest
// the entries came from. An empty dir disables persistence.
func NewTreeCacheAt(entries []Entry, fp [md4.Size]byte, dir string) *TreeCache {
	return &TreeCache{entries: entries, fp: fp, dir: dir, trees: make(map[int]*Tree)}
}

// Fingerprint reports the manifest fingerprint the cache was keyed with.
func (tc *TreeCache) Fingerprint() [md4.Size]byte { return tc.fp }

// rebuildCutoff decides whether a diff of nd changes against n entries is
// worth applying incrementally; past half the collection a fresh Build is
// cheaper and allocates tighter buckets.
func rebuildCutoff(nd, n int) bool { return nd > n/2 }

// Tree returns the tree at the given depth, building it at most once: from
// memory, from the persisted file (incrementally updated if it was saved
// under a different fingerprint), or from scratch.
func (tc *TreeCache) Tree(depth int) *Tree {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if t, ok := tc.trees[depth]; ok {
		return t
	}
	if tc.dir != "" {
		if t, diskFP, ok := loadTree(tc.dir, depth); ok {
			if diskFP == tc.fp {
				tc.trees[depth] = t
				return t
			}
			ups, dels := entriesDiff(t.AllEntries(), tc.entries)
			if !rebuildCutoff(len(ups)+len(dels), len(tc.entries)) {
				t.Update(ups, dels)
				saveTree(tc.dir, tc.fp, t)
				tc.trees[depth] = t
				return t
			}
		}
	}
	t := Build(tc.entries, depth)
	if tc.dir != "" {
		saveTree(tc.dir, tc.fp, t)
	}
	tc.trees[depth] = t
	return t
}

// Rebase carries the cache forward to a new entry set: every already-built
// tree is updated in place from the set difference (O(changed · depth)
// hashing) rather than rebuilt. The receiver must not be used afterwards —
// its trees now belong to the returned cache.
func (tc *TreeCache) Rebase(entries []Entry, fp [md4.Size]byte) *TreeCache {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	nc := &TreeCache{entries: entries, fp: fp, dir: tc.dir, trees: make(map[int]*Tree)}
	ups, dels := entriesDiff(tc.entries, entries)
	if rebuildCutoff(len(ups)+len(dels), len(entries)) {
		return nc
	}
	for d, t := range tc.trees {
		t.Update(ups, dels)
		nc.trees[d] = t
		if nc.dir != "" {
			saveTree(nc.dir, fp, t)
		}
	}
	tc.trees = make(map[int]*Tree)
	return nc
}
