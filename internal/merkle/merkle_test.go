package merkle

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"msync/internal/md4"
)

func entry(path, content string) Entry {
	return Entry{Path: path, Len: len(content), Sum: md4.Sum([]byte(content))}
}

func makeEntries(rng *rand.Rand, n int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		out[i] = entry(fmt.Sprintf("dir%d/file_%04d.txt", i%7, i), fmt.Sprintf("content-%d-%d", i, rng.Int()))
	}
	return out
}

func TestBuildDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	entries := makeEntries(rng, 100)
	a := Build(entries, 5)
	// Shuffled input produces the identical tree.
	shuffled := append([]Entry(nil), entries...)
	rand.New(rand.NewSource(2)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	b := Build(shuffled, 5)
	if a.Root() != b.Root() {
		t.Fatal("tree depends on input order")
	}
}

func TestIdenticalSetsOneRound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	entries := makeEntries(rng, 200)
	diff, bytes, err := Reconcile(entries, entries)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Total() != 0 {
		t.Fatalf("diff on identical sets: %+v", diff)
	}
	// Root exchange only: depth+digest one way, a bool back.
	if bytes > 64 {
		t.Fatalf("identical sets cost %d bytes", bytes)
	}
}

func TestDetectsSingleChange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	local := makeEntries(rng, 500)
	remote := append([]Entry(nil), local...)
	remote[123] = entry(remote[123].Path, "EDITED")
	diff, bytes, err := Reconcile(local, remote)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Changed) != 1 || diff.Changed[0].Path != local[123].Path {
		t.Fatalf("diff = %+v", diff)
	}
	if len(diff.OnlyLocal) != 0 || len(diff.OnlyRemote) != 0 {
		t.Fatalf("spurious adds/deletes: %+v", diff)
	}
	// Sublinear: far below a full 500-entry manifest (~18 KB).
	if bytes > 3000 {
		t.Fatalf("single change cost %d bytes", bytes)
	}
	t.Logf("1 change among 500 files found with %d bytes", bytes)
}

// TestQuickReconcileExact: reconciliation must discover the exact
// symmetric difference for arbitrary set mutations.
func TestQuickReconcileExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		local := makeEntries(rng, n)
		remote := append([]Entry(nil), local...)

		wantChanged := map[string]bool{}
		wantOnlyLocal := map[string]bool{}
		wantOnlyRemote := map[string]bool{}

		// Mutate: change some, delete some from remote, add some to remote.
		for i := 0; i < len(remote); i++ {
			switch rng.Intn(10) {
			case 0:
				remote[i] = entry(remote[i].Path, fmt.Sprintf("changed-%d", rng.Int()))
				wantChanged[remote[i].Path] = true
			case 1:
				wantOnlyLocal[remote[i].Path] = true
				remote = append(remote[:i], remote[i+1:]...)
				i--
			}
		}
		for i := 0; i < rng.Intn(10); i++ {
			e := entry(fmt.Sprintf("new/added_%d", i), "fresh")
			remote = append(remote, e)
			wantOnlyRemote[e.Path] = true
		}

		diff, _, err := Reconcile(local, remote)
		if err != nil {
			return false
		}
		if len(diff.Changed) != len(wantChanged) ||
			len(diff.OnlyLocal) != len(wantOnlyLocal) ||
			len(diff.OnlyRemote) != len(wantOnlyRemote) {
			return false
		}
		for _, e := range diff.Changed {
			if !wantChanged[e.Path] {
				return false
			}
		}
		for _, p := range diff.OnlyLocal {
			if !wantOnlyLocal[p] {
				return false
			}
		}
		for _, e := range diff.OnlyRemote {
			if !wantOnlyRemote[e.Path] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSublinearScaling: cost grows with changes, not collection size.
func TestSublinearScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	costs := map[int]int{}
	for _, n := range []int{200, 2000} {
		local := makeEntries(rng, n)
		remote := append([]Entry(nil), local...)
		for i := 0; i < 3; i++ {
			k := rng.Intn(len(remote))
			remote[k] = entry(remote[k].Path, fmt.Sprintf("v2-%d", i))
		}
		_, bytes, err := Reconcile(local, remote)
		if err != nil {
			t.Fatal(err)
		}
		costs[n] = bytes
	}
	// 10x the files should cost well under 10x the bytes for the same
	// number of changes (log factor only).
	if costs[2000] > costs[200]*4 {
		t.Fatalf("scaling looks linear: %v", costs)
	}
	t.Logf("3 changes: %d bytes among 200 files, %d among 2000", costs[200], costs[2000])
}

func TestDepthFor(t *testing.T) {
	if DepthFor(0) != 0 || DepthFor(4) != 0 {
		t.Fatal("small sets need depth 0")
	}
	if d := DepthFor(1 << 30); d != MaxDepth {
		t.Fatalf("huge set depth %d", d)
	}
	if DepthFor(100) < 3 {
		t.Fatalf("100 entries got depth %d", DepthFor(100))
	}
}

func TestBucketStability(t *testing.T) {
	// Paths land in deterministic buckets.
	if bucketOf("some/path", 8) != bucketOf("some/path", 8) {
		t.Fatal("non-deterministic bucket")
	}
	// Distribution sanity over many paths.
	counts := make([]int, 1<<6)
	for i := 0; i < 6400; i++ {
		counts[bucketOf(fmt.Sprintf("p/%d", i), 6)]++
	}
	sort.Ints(counts)
	if counts[len(counts)-1] > 100*3 {
		t.Fatalf("worst bucket %d of 6400/64", counts[len(counts)-1])
	}
}

func TestResponderErrors(t *testing.T) {
	r := NewResponder(nil)
	if _, err := r.Respond([]byte{}); err == nil {
		t.Fatal("empty first message accepted")
	}
	r2 := NewResponder(nil)
	// Excessive depth.
	msg := append([]byte{MaxDepth + 1}, make([]byte, md4.Size)...)
	if _, err := r2.Respond(msg); err == nil {
		t.Fatal("excessive depth accepted")
	}
}

func TestEmptySides(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	entries := makeEntries(rng, 50)
	diff, _, err := Reconcile(nil, entries)
	if err != nil || len(diff.OnlyRemote) != 50 {
		t.Fatalf("err=%v onlyRemote=%d", err, len(diff.OnlyRemote))
	}
	diff, _, err = Reconcile(entries, nil)
	if err != nil || len(diff.OnlyLocal) != 50 {
		t.Fatalf("err=%v onlyLocal=%d", err, len(diff.OnlyLocal))
	}
	diff, _, err = Reconcile(nil, nil)
	if err != nil || diff.Total() != 0 {
		t.Fatalf("empty/empty: %+v err=%v", diff, err)
	}
}
