package merkle

import "sort"

// Update applies a manifest change set in place: upserts insert new entries
// or replace same-path ones, deletes remove paths. Only the touched buckets
// and their ancestor digests are recomputed — O(changed · depth) hashing
// instead of a full O(n) rebuild — so a repeat sync of a huge
// mostly-unchanged collection refreshes its tree from the changed-path set
// in microseconds. The result is indistinguishable from Build on the
// updated entry set.
func (t *Tree) Update(upserts []Entry, deletes []string) {
	dirty := make(map[int]bool)
	for _, e := range upserts {
		b := bucketOf(e.Path, t.depth)
		es := t.bucket(b)
		i := sort.Search(len(es), func(k int) bool { return es[k].Path >= e.Path })
		if i < len(es) && es[i].Path == e.Path {
			es[i] = e
		} else {
			es = append(es, Entry{})
			copy(es[i+1:], es[i:])
			es[i] = e
			t.count++
		}
		t.setBucket(b, es)
		dirty[b] = true
	}
	for _, p := range deletes {
		b := bucketOf(p, t.depth)
		es := t.bucket(b)
		i := sort.Search(len(es), func(k int) bool { return es[k].Path >= p })
		if i < len(es) && es[i].Path == p {
			es = append(es[:i], es[i+1:]...)
			t.setBucket(b, es)
			t.count--
			dirty[b] = true
		}
	}
	if len(dirty) == 0 {
		return
	}
	bs := make([]int, 0, len(dirty))
	for b := range dirty {
		bs = append(bs, b)
	}
	sort.Ints(bs)
	for _, b := range bs {
		t.setNode((1<<t.depth)+b, bucketDigest(t.bucket(b)))
	}
	t.recomputeAncestors(bs)
}

// recomputeAncestors refreshes internal digests above the given (deduped)
// leaf bucket indices, level by level so shared ancestors hash once.
func (t *Tree) recomputeAncestors(buckets []int) {
	if t.depth == 0 {
		return
	}
	level := make(map[int]bool, len(buckets))
	for _, b := range buckets {
		level[((1<<t.depth)+b)>>1] = true
	}
	for len(level) > 0 {
		next := make(map[int]bool, len(level))
		for id := range level {
			t.setNode(id, joinDigest(t.node(2*id), t.node(2*id+1)))
			if id > 1 {
				next[id>>1] = true
			}
		}
		level = next
	}
}

// entriesDiff computes the change set turning old into new: entries to
// upsert (paths that are new or whose length/hash changed) and paths to
// delete. Pure map work, no hashing.
func entriesDiff(old, new []Entry) (upserts []Entry, deletes []string) {
	prev := make(map[string]Entry, len(old))
	for _, e := range old {
		prev[e.Path] = e
	}
	seen := make(map[string]bool, len(new))
	for _, e := range new {
		seen[e.Path] = true
		if o, ok := prev[e.Path]; !ok || o.Len != e.Len || o.Sum != e.Sum {
			upserts = append(upserts, e)
		}
	}
	for _, e := range old {
		if !seen[e.Path] {
			deletes = append(deletes, e.Path)
		}
	}
	return upserts, deletes
}
