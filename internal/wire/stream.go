package wire

import (
	"errors"
	"fmt"
)

// Stream multiplexing (hello extension 2) wraps the per-file phases of a
// collection session in stream-tagged frames so several groups of files can
// run their map-construction rounds, delta transfers and fallbacks
// interleaved on one connection. The layer is deliberately thin: a STREAM
// frame is an ordinary typed frame whose payload prefixes the inner frame
// with its stream id, and a CYCLE frame announces how many stream frames
// share the flush that follows it.

// MaxStreams bounds the stream count a session may negotiate. One stream per
// file group keeps this small in practice; the cap exists so a corrupt or
// hostile MUX_ACK cannot drive huge allocations.
const MaxStreams = 1 << 10

// ErrBadStream is returned for malformed stream framing: truncated headers,
// stream ids beyond the negotiated width, or overlong id encodings.
var ErrBadStream = errors.New("wire: malformed stream frame")

// StreamFrame is one demultiplexed frame of a multiplexed session.
type StreamFrame struct {
	// ID is the stream the frame belongs to (dense, 0-based).
	ID int
	// Type is the inner frame type (ROUND_HASHES, ROUND_REPLY, CONFIRM,
	// DELTA, ACK, FULL).
	Type byte
	// Payload is the inner frame payload; it aliases the outer frame's
	// buffer.
	Payload []byte
}

// AppendStreamFrame builds a STREAM frame payload into b: the stream id,
// the inner type, then the inner payload verbatim.
func AppendStreamFrame(b *Buffer, id int, innerType byte, payload []byte) {
	b.Uvarint(uint64(id))
	b.Byte(innerType)
	b.Raw(payload)
}

// ParseStreamFrame decodes a STREAM frame payload. width is the negotiated
// stream count; ids at or beyond it are rejected so a demuxer can index
// fixed-size stream tables safely.
func ParseStreamFrame(payload []byte, width int) (StreamFrame, error) {
	p := NewParser(payload)
	id, err := p.Uvarint()
	if err != nil {
		return StreamFrame{}, fmt.Errorf("%w: stream id: %v", ErrBadStream, err)
	}
	if id >= uint64(width) || id >= MaxStreams {
		return StreamFrame{}, fmt.Errorf("%w: stream id %d beyond width %d", ErrBadStream, id, width)
	}
	t, err := p.Byte()
	if err != nil {
		return StreamFrame{}, fmt.Errorf("%w: missing inner type", ErrBadStream)
	}
	inner, err := p.Raw(p.Remaining())
	if err != nil {
		return StreamFrame{}, err
	}
	return StreamFrame{ID: int(id), Type: t, Payload: inner}, nil
}

// EncodeCycle builds a CYCLE frame payload announcing n stream frames.
func EncodeCycle(n int) []byte {
	return AppendUvarint(nil, uint64(n))
}

// ParseCycle decodes a CYCLE frame payload. The count is bounded by
// MaxStreams: a cycle carries at most one frame per stream.
func ParseCycle(payload []byte) (int, error) {
	p := NewParser(payload)
	n, err := p.Uvarint()
	if err != nil {
		return 0, fmt.Errorf("%w: cycle count: %v", ErrBadStream, err)
	}
	if n > MaxStreams {
		return 0, fmt.Errorf("%w: cycle of %d frames exceeds stream cap", ErrBadStream, n)
	}
	if p.Remaining() != 0 {
		return 0, fmt.Errorf("%w: trailing bytes after cycle count", ErrBadStream)
	}
	return int(n), nil
}

// EncodeMuxAck builds the MUX_ACK payload: the stream count, then one
// engine count per stream (the contiguous partition of the session's sync
// files, in verdict order).
func EncodeMuxAck(counts []int) []byte {
	b := NewBuffer(2 + 2*len(counts))
	b.Uvarint(uint64(len(counts)))
	for _, c := range counts {
		b.Uvarint(uint64(c))
	}
	return b.Build()
}

// ParseMuxAck decodes a MUX_ACK payload. nEngines is the local count of sync
// files; the partition must cover exactly that many, so both sides always
// agree on stream membership.
func ParseMuxAck(payload []byte, nEngines int) ([]int, error) {
	p := NewParser(payload)
	n, err := p.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: stream count: %v", ErrBadStream, err)
	}
	if n == 0 || n > MaxStreams {
		return nil, fmt.Errorf("%w: %d streams", ErrBadStream, n)
	}
	counts := make([]int, n)
	total := 0
	for i := range counts {
		c, err := p.Uvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: stream %d count: %v", ErrBadStream, i, err)
		}
		if c == 0 || c > uint64(nEngines) {
			return nil, fmt.Errorf("%w: stream %d covers %d files", ErrBadStream, i, c)
		}
		counts[i] = int(c)
		total += int(c)
	}
	if total != nEngines {
		return nil, fmt.Errorf("%w: partition covers %d of %d files", ErrBadStream, total, nEngines)
	}
	if p.Remaining() != 0 {
		return nil, fmt.Errorf("%w: trailing bytes after partition", ErrBadStream)
	}
	return counts, nil
}
