package wire

import "msync/internal/bitio"

// Bitmap is a fixed-length sequence of bits exchanged in the verification
// steps of the protocol ("which hashes found a candidate", "which
// verification hashes were confirmed").
type Bitmap struct {
	bits []bool
}

// NewBitmap returns an all-false bitmap of length n.
func NewBitmap(n int) *Bitmap { return &Bitmap{bits: make([]bool, n)} }

// Len reports the number of bits.
func (b *Bitmap) Len() int { return len(b.bits) }

// Set sets bit i to v.
func (b *Bitmap) Set(i int, v bool) { b.bits[i] = v }

// Get reports bit i.
func (b *Bitmap) Get(i int) bool { return b.bits[i] }

// Count reports the number of true bits.
func (b *Bitmap) Count() int {
	n := 0
	for _, v := range b.bits {
		if v {
			n++
		}
	}
	return n
}

// Encode appends the bitmap to a bitio.Writer. The length is NOT encoded;
// both sides know it from protocol context.
func (b *Bitmap) Encode(w *bitio.Writer) {
	for _, v := range b.bits {
		w.WriteBit(v)
	}
}

// DecodeBitmap reads an n-bit bitmap from r.
func DecodeBitmap(r *bitio.Reader, n int) (*Bitmap, error) {
	b := NewBitmap(n)
	for i := 0; i < n; i++ {
		v, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		b.bits[i] = v
	}
	return b, nil
}

// EncodedBits reports the wire size in bits of a bitmap of length n.
func EncodedBits(n int) int { return n }
