package wire

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"msync/internal/bitio"
)

func TestBufferParserRoundTrip(t *testing.T) {
	b := NewBuffer(64)
	b.Uvarint(0)
	b.Uvarint(1 << 40)
	b.Varint(-12345)
	b.Byte(0xAB)
	b.Bool(true)
	b.Bool(false)
	b.Bytes([]byte("payload"))
	b.String("path/to/file")
	b.Raw([]byte{9, 9})

	p := NewParser(b.Build())
	if v, _ := p.Uvarint(); v != 0 {
		t.Fatal("uvarint 0")
	}
	if v, _ := p.Uvarint(); v != 1<<40 {
		t.Fatal("uvarint big")
	}
	if v, _ := p.Varint(); v != -12345 {
		t.Fatal("varint")
	}
	if v, _ := p.Byte(); v != 0xAB {
		t.Fatal("byte")
	}
	if v, _ := p.Bool(); !v {
		t.Fatal("bool true")
	}
	if v, _ := p.Bool(); v {
		t.Fatal("bool false")
	}
	if v, _ := p.Bytes(); string(v) != "payload" {
		t.Fatal("bytes")
	}
	if v, _ := p.String(); v != "path/to/file" {
		t.Fatal("string")
	}
	if v, _ := p.Raw(2); !bytes.Equal(v, []byte{9, 9}) {
		t.Fatal("raw")
	}
	if p.Remaining() != 0 {
		t.Fatalf("remaining %d", p.Remaining())
	}
}

func TestQuickVarints(t *testing.T) {
	f := func(u uint64, s int64) bool {
		b := NewBuffer(20)
		b.Uvarint(u)
		b.Varint(s)
		p := NewParser(b.Build())
		gu, err1 := p.Uvarint()
		gs, err2 := p.Varint()
		return err1 == nil && err2 == nil && gu == u && gs == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParserTruncation(t *testing.T) {
	b := NewBuffer(8)
	b.Bytes([]byte("hello"))
	raw := b.Build()
	for cut := 0; cut < len(raw); cut++ {
		p := NewParser(raw[:cut])
		if _, err := p.Bytes(); err == nil {
			t.Fatalf("cut=%d: no error", cut)
		}
	}
}

func TestParserEmptyReads(t *testing.T) {
	p := NewParser(nil)
	if _, err := p.Uvarint(); err == nil {
		t.Fatal("uvarint on empty")
	}
	if _, err := p.Byte(); err == nil {
		t.Fatal("byte on empty")
	}
	if _, err := p.Raw(1); err == nil {
		t.Fatal("raw on empty")
	}
	if _, err := p.Raw(-1); err == nil {
		t.Fatal("negative raw")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	payloads := [][]byte{nil, []byte("a"), bytes.Repeat([]byte("xyz"), 10000)}
	types := []byte{FrameHello, FrameDelta, FrameRoundHashes}
	for i, p := range payloads {
		if err := fw.WriteFrame(types[i], p); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	for i, p := range payloads {
		ft, got, err := fr.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if ft != types[i] || !bytes.Equal(got, p) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if _, _, err := fr.ReadFrame(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestExpectFrame(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	fw.WriteFrame(FrameAck, []byte("ok"))
	fw.WriteFrame(FrameError, []byte("boom"))
	fw.WriteFrame(FrameDone, nil)
	fw.Flush()
	fr := NewFrameReader(&buf)
	if p, err := fr.ExpectFrame(FrameAck); err != nil || string(p) != "ok" {
		t.Fatalf("p=%q err=%v", p, err)
	}
	// An error frame surfaces the remote message.
	if _, err := fr.ExpectFrame(FrameAck); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	// A wrong type is reported with both names.
	if _, err := fr.ExpectFrame(FrameDelta); err == nil || !strings.Contains(err.Error(), "DONE") {
		t.Fatalf("err = %v", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	// Craft a header declaring an absurd size.
	var buf bytes.Buffer
	buf.WriteByte(FrameDelta)
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	fr := NewFrameReader(&buf)
	if _, _, err := fr.ReadFrame(); err != ErrFrameTooLarge {
		t.Fatalf("err = %v", err)
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var full bytes.Buffer
	fw := NewFrameWriter(&full)
	fw.WriteFrame(FrameDelta, []byte("0123456789"))
	fw.Flush()
	raw := full.Bytes()
	fr := NewFrameReader(bytes.NewReader(raw[:len(raw)-3]))
	if _, _, err := fr.ReadFrame(); err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v", err)
	}
}

func TestFrameNames(t *testing.T) {
	for ft := byte(1); ft <= FrameAck; ft++ {
		if strings.HasPrefix(FrameName(ft), "UNKNOWN") {
			t.Errorf("frame %d has no name", ft)
		}
	}
	if !strings.HasPrefix(FrameName(200), "UNKNOWN") {
		t.Error("unknown frame should say so")
	}
}

func TestBitmapRoundTrip(t *testing.T) {
	f := func(bits []bool) bool {
		bm := NewBitmap(len(bits))
		for i, v := range bits {
			bm.Set(i, v)
		}
		w := &bitio.Writer{}
		bm.Encode(w)
		r := bitio.NewReader(w.Bytes())
		got, err := DecodeBitmap(r, len(bits))
		if err != nil {
			return false
		}
		for i, v := range bits {
			if got.Get(i) != v {
				return false
			}
		}
		return got.Count() == bm.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapDecodeShort(t *testing.T) {
	r := bitio.NewReader([]byte{0xFF})
	if _, err := DecodeBitmap(r, 9); err == nil {
		t.Fatal("no error for short input")
	}
}
