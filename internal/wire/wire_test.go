package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"msync/internal/bitio"
)

func TestBufferParserRoundTrip(t *testing.T) {
	b := NewBuffer(64)
	b.Uvarint(0)
	b.Uvarint(1 << 40)
	b.Varint(-12345)
	b.Byte(0xAB)
	b.Bool(true)
	b.Bool(false)
	b.Bytes([]byte("payload"))
	b.String("path/to/file")
	b.Raw([]byte{9, 9})

	p := NewParser(b.Build())
	if v, _ := p.Uvarint(); v != 0 {
		t.Fatal("uvarint 0")
	}
	if v, _ := p.Uvarint(); v != 1<<40 {
		t.Fatal("uvarint big")
	}
	if v, _ := p.Varint(); v != -12345 {
		t.Fatal("varint")
	}
	if v, _ := p.Byte(); v != 0xAB {
		t.Fatal("byte")
	}
	if v, _ := p.Bool(); !v {
		t.Fatal("bool true")
	}
	if v, _ := p.Bool(); v {
		t.Fatal("bool false")
	}
	if v, _ := p.Bytes(); string(v) != "payload" {
		t.Fatal("bytes")
	}
	if v, _ := p.String(); v != "path/to/file" {
		t.Fatal("string")
	}
	if v, _ := p.Raw(2); !bytes.Equal(v, []byte{9, 9}) {
		t.Fatal("raw")
	}
	if p.Remaining() != 0 {
		t.Fatalf("remaining %d", p.Remaining())
	}
}

func TestQuickVarints(t *testing.T) {
	f := func(u uint64, s int64) bool {
		b := NewBuffer(20)
		b.Uvarint(u)
		b.Varint(s)
		p := NewParser(b.Build())
		gu, err1 := p.Uvarint()
		gs, err2 := p.Varint()
		return err1 == nil && err2 == nil && gu == u && gs == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParserTruncation(t *testing.T) {
	b := NewBuffer(8)
	b.Bytes([]byte("hello"))
	raw := b.Build()
	for cut := 0; cut < len(raw); cut++ {
		p := NewParser(raw[:cut])
		if _, err := p.Bytes(); err == nil {
			t.Fatalf("cut=%d: no error", cut)
		}
	}
}

func TestParserEmptyReads(t *testing.T) {
	p := NewParser(nil)
	if _, err := p.Uvarint(); err == nil {
		t.Fatal("uvarint on empty")
	}
	if _, err := p.Byte(); err == nil {
		t.Fatal("byte on empty")
	}
	if _, err := p.Raw(1); err == nil {
		t.Fatal("raw on empty")
	}
	if _, err := p.Raw(-1); err == nil {
		t.Fatal("negative raw")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	payloads := [][]byte{nil, []byte("a"), bytes.Repeat([]byte("xyz"), 10000)}
	types := []byte{FrameHello, FrameDelta, FrameRoundHashes}
	for i, p := range payloads {
		if err := fw.WriteFrame(types[i], p); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	for i, p := range payloads {
		ft, got, err := fr.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if ft != types[i] || !bytes.Equal(got, p) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if _, _, err := fr.ReadFrame(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestExpectFrame(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	fw.WriteFrame(FrameAck, []byte("ok"))
	fw.WriteFrame(FrameError, []byte("boom"))
	fw.WriteFrame(FrameDone, nil)
	fw.Flush()
	fr := NewFrameReader(&buf)
	if p, err := fr.ExpectFrame(FrameAck); err != nil || string(p) != "ok" {
		t.Fatalf("p=%q err=%v", p, err)
	}
	// An error frame surfaces the remote message.
	if _, err := fr.ExpectFrame(FrameAck); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	// A wrong type is reported with both names.
	if _, err := fr.ExpectFrame(FrameDelta); err == nil || !strings.Contains(err.Error(), "DONE") {
		t.Fatalf("err = %v", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	// Craft a header declaring an absurd size.
	var buf bytes.Buffer
	buf.WriteByte(FrameDelta)
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	fr := NewFrameReader(&buf)
	if _, _, err := fr.ReadFrame(); err != ErrFrameTooLarge {
		t.Fatalf("err = %v", err)
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var full bytes.Buffer
	fw := NewFrameWriter(&full)
	fw.WriteFrame(FrameDelta, []byte("0123456789"))
	fw.Flush()
	raw := full.Bytes()
	fr := NewFrameReader(bytes.NewReader(raw[:len(raw)-3]))
	if _, _, err := fr.ReadFrame(); err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v", err)
	}
}

func TestFrameNames(t *testing.T) {
	for ft := byte(1); ft <= FrameAck; ft++ {
		if strings.HasPrefix(FrameName(ft), "UNKNOWN") {
			t.Errorf("frame %d has no name", ft)
		}
	}
	if !strings.HasPrefix(FrameName(200), "UNKNOWN") {
		t.Error("unknown frame should say so")
	}
}

func TestBitmapRoundTrip(t *testing.T) {
	f := func(bits []bool) bool {
		bm := NewBitmap(len(bits))
		for i, v := range bits {
			bm.Set(i, v)
		}
		w := &bitio.Writer{}
		bm.Encode(w)
		r := bitio.NewReader(w.Bytes())
		got, err := DecodeBitmap(r, len(bits))
		if err != nil {
			return false
		}
		for i, v := range bits {
			if got.Get(i) != v {
				return false
			}
		}
		return got.Count() == bm.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapDecodeShort(t *testing.T) {
	r := bitio.NewReader([]byte{0xFF})
	if _, err := DecodeBitmap(r, 9); err == nil {
		t.Fatal("no error for short input")
	}
}

// TestVarintTypedErrors: overlong and truncated varints are told apart by
// distinct typed errors instead of a shared "truncated" catch-all.
func TestVarintTypedErrors(t *testing.T) {
	overlong := bytes.Repeat([]byte{0x80}, 10)
	overlong = append(overlong, 0x01) // 11 bytes: past MaxVarintLen64
	if _, err := NewParser(overlong).Uvarint(); err != ErrVarintOverflow {
		t.Fatalf("overlong Uvarint error = %v, want ErrVarintOverflow", err)
	}
	if _, err := NewParser(overlong).Varint(); err != ErrVarintOverflow {
		t.Fatalf("overlong Varint error = %v, want ErrVarintOverflow", err)
	}
	// Tenth byte with more than one value bit: overflows uint64.
	hot := append(bytes.Repeat([]byte{0xFF}, 9), 0x7F)
	if _, err := NewParser(hot).Uvarint(); err != ErrVarintOverflow {
		t.Fatalf("hot-tail Uvarint error = %v, want ErrVarintOverflow", err)
	}
	truncated := []byte{0xFF, 0x90}
	if _, err := NewParser(truncated).Uvarint(); err != ErrTruncated {
		t.Fatalf("truncated Uvarint error = %v, want ErrTruncated", err)
	}
	if _, err := NewParser(truncated).Varint(); err != ErrTruncated {
		t.Fatalf("truncated Varint error = %v, want ErrTruncated", err)
	}
	if _, err := NewParser(nil).Uvarint(); err != ErrTruncated {
		t.Fatalf("empty Uvarint error = %v, want ErrTruncated", err)
	}
}

// TestFrameReaderVarintErrors: the frame length prefix gets the same
// treatment — overlong headers fail typed, truncated ones as unexpected EOF.
func TestFrameReaderVarintErrors(t *testing.T) {
	overlong := append([]byte{FrameHello}, bytes.Repeat([]byte{0x80}, 10)...)
	overlong = append(overlong, 0x01)
	if _, _, err := NewFrameReader(bytes.NewReader(overlong)).ReadFrame(); err != ErrVarintOverflow {
		t.Fatalf("overlong frame length error = %v, want ErrVarintOverflow", err)
	}
	hot := append([]byte{FrameHello}, bytes.Repeat([]byte{0xFF}, 9)...)
	hot = append(hot, 0x7F)
	if _, _, err := NewFrameReader(bytes.NewReader(hot)).ReadFrame(); err != ErrVarintOverflow {
		t.Fatalf("hot-tail frame length error = %v, want ErrVarintOverflow", err)
	}
	truncated := []byte{FrameHello, 0xFF}
	if _, _, err := NewFrameReader(bytes.NewReader(truncated)).ReadFrame(); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame length error = %v, want ErrUnexpectedEOF", err)
	}
	// A valid max-length encoding still decodes (counts must match too).
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WriteFrame(FrameAck, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	fw.Flush()
	fr := NewFrameReader(bytes.NewReader(buf.Bytes()))
	if _, payload, err := fr.ReadFrame(); err != nil || len(payload) != 3 {
		t.Fatalf("round-trip frame = (%v, %v)", payload, err)
	}
	if _, b := fr.Counts(); b != int64(buf.Len()) {
		t.Fatalf("reader counted %d bytes, wrote %d", b, buf.Len())
	}
}

// TestBusyRoundTrip: BUSY payload encoding, decoding and the ExpectFrame
// classification that turns it into a typed error.
func TestBusyRoundTrip(t *testing.T) {
	for _, d := range []time.Duration{0, time.Millisecond, 250 * time.Millisecond, 30 * time.Second} {
		got := DecodeBusy(EncodeBusy(d))
		if got.RetryAfter != d {
			t.Fatalf("busy round-trip %v -> %v", d, got.RetryAfter)
		}
	}
	// Sub-millisecond hints round up, never to zero.
	if got := DecodeBusy(EncodeBusy(100 * time.Microsecond)); got.RetryAfter != time.Millisecond {
		t.Fatalf("sub-ms hint decoded to %v, want 1ms", got.RetryAfter)
	}
	// Malformed payloads degrade to a zero hint.
	if got := DecodeBusy([]byte{0xFF}); got.RetryAfter != 0 {
		t.Fatalf("malformed busy payload decoded to %v", got.RetryAfter)
	}

	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WriteFrame(FrameBusy, EncodeBusy(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	fw.Flush()
	_, err := NewFrameReader(bytes.NewReader(buf.Bytes())).ExpectFrame(FrameVerdicts)
	var busy *BusyError
	if !errors.As(err, &busy) || busy.RetryAfter != 2*time.Second {
		t.Fatalf("ExpectFrame on BUSY = %v, want BusyError{2s}", err)
	}
	if FrameName(FrameBusy) != "BUSY" {
		t.Fatalf("FrameName(FrameBusy) = %q", FrameName(FrameBusy))
	}
}
