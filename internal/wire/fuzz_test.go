package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzFrameReader: arbitrary byte streams must never panic the frame layer
// or allocate absurd buffers.
func FuzzFrameReader(f *testing.F) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	fw.WriteFrame(FrameHello, []byte("hi"))
	fw.WriteFrame(FrameDelta, bytes.Repeat([]byte("x"), 300))
	fw.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{FrameRoundHashes, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		for {
			_, payload, err := fr.ReadFrame()
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF && err != ErrFrameTooLarge {
					// Any other error type is fine too; just never panic.
					_ = err
				}
				return
			}
			if len(payload) > MaxFrameSize {
				t.Fatal("oversized frame accepted")
			}
		}
	})
}

// FuzzParser: parser accessors on arbitrary bytes.
func FuzzParser(f *testing.F) {
	b := NewBuffer(32)
	b.Uvarint(7)
	b.String("hello")
	b.Bytes([]byte{1, 2, 3})
	f.Add(b.Build())
	f.Fuzz(func(t *testing.T, data []byte) {
		p := NewParser(data)
		p.Uvarint()
		p.Varint()
		p.Byte()
		p.Bool()
		p.Bytes()
		p.String()
		p.Raw(4)
	})
}
