package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzFrameReader: arbitrary byte streams must never panic the frame layer
// or allocate absurd buffers.
func FuzzFrameReader(f *testing.F) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	fw.WriteFrame(FrameHello, []byte("hi"))
	fw.WriteFrame(FrameDelta, bytes.Repeat([]byte("x"), 300))
	fw.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{FrameRoundHashes, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02})
	// Overlong length varint: 10 continuation bytes followed by more — must
	// fail with ErrVarintOverflow, not a bogus length.
	f.Add([]byte{FrameHello, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	// Tenth byte with more than one value bit set: also an overflow.
	f.Add([]byte{FrameHello, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	// Truncated mid-varint: stream ends inside the length prefix.
	f.Add([]byte{FrameDelta, 0xFF, 0x90})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		for {
			_, payload, err := fr.ReadFrame()
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF && err != ErrFrameTooLarge && err != ErrVarintOverflow {
					// Any other error type is fine too; just never panic.
					_ = err
				}
				return
			}
			if len(payload) > MaxFrameSize {
				t.Fatal("oversized frame accepted")
			}
		}
	})
}

// FuzzParser: parser accessors on arbitrary bytes.
func FuzzParser(f *testing.F) {
	b := NewBuffer(32)
	b.Uvarint(7)
	b.String("hello")
	b.Bytes([]byte{1, 2, 3})
	f.Add(b.Build())
	// Overlong varint (11 bytes of continuation) and a truncated one: both
	// must surface typed errors, never a misleading value.
	f.Add(bytes.Repeat([]byte{0xFF}, 11))
	f.Add([]byte{0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := NewParser(data)
		if _, err := p.Uvarint(); err != nil && err != ErrTruncated && err != ErrVarintOverflow {
			t.Fatalf("Uvarint error %v, want ErrTruncated or ErrVarintOverflow", err)
		}
		if _, err := p.Varint(); err != nil && err != ErrTruncated && err != ErrVarintOverflow {
			t.Fatalf("Varint error %v, want ErrTruncated or ErrVarintOverflow", err)
		}
		p.Byte()
		p.Bool()
		p.Bytes()
		p.String()
		p.Raw(4)
	})
}

// FuzzStreamFrame: the stream-frame demuxer on arbitrary bytes — truncated
// headers, interleaved garbage, and overlong stream-id varints must all
// surface typed errors, never panic or accept an out-of-range id.
func FuzzStreamFrame(f *testing.F) {
	b := NewBuffer(32)
	AppendStreamFrame(b, 3, FrameRoundHashes, []byte("section"))
	f.Add(b.Build())
	// Truncated: id only, no inner type.
	f.Add([]byte{0x03})
	// Overlong stream-id varint (ten continuation bytes).
	f.Add(append(bytes.Repeat([]byte{0xFF}, 10), 0x7F))
	// Id beyond any sane width.
	f.Add([]byte{0xFF, 0xFF, 0x7F, FrameDelta, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, width := range []int{1, 4, MaxStreams} {
			sf, err := ParseStreamFrame(data, width)
			if err != nil {
				continue
			}
			if sf.ID < 0 || sf.ID >= width {
				t.Fatalf("accepted stream id %d beyond width %d", sf.ID, width)
			}
		}
		if n, err := ParseCycle(data); err == nil && (n < 0 || n > MaxStreams) {
			t.Fatalf("accepted cycle count %d", n)
		}
		for _, nEngines := range []int{1, 16} {
			counts, err := ParseMuxAck(data, nEngines)
			if err != nil {
				continue
			}
			total := 0
			for _, c := range counts {
				if c <= 0 {
					t.Fatal("accepted non-positive stream width")
				}
				total += c
			}
			if total != nEngines {
				t.Fatalf("accepted partition covering %d of %d", total, nEngines)
			}
		}
	})
}
