// Package wire implements the low-level wire format shared by the msync
// protocol and its baselines: unsigned/signed varints, length-delimited
// frames, and a compact bitmap codec.
//
// Every byte that crosses a connection in this repository is produced by this
// package (directly or via bitio), so cost accounting in package stats can
// meter real encoded sizes rather than estimates.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// MaxFrameSize bounds a single frame payload. Frames carry per-round batches
// for whole collections, so the limit is generous; it exists to stop a
// corrupted length prefix from driving a huge allocation.
const MaxFrameSize = 1 << 30

// Frame type identifiers for the msync protocol. They ride in front of each
// frame so a reader can detect desynchronization early.
const (
	FrameHello byte = iota + 1
	FrameManifest
	FrameVerdicts
	FrameRoundHashes
	FrameRoundReply
	FrameConfirm
	FrameDelta
	FrameDone
	FrameError
	FrameFull
	FrameAck
	// FrameTree carries merkle-reconciliation messages (tree manifest mode).
	FrameTree
	// FrameWant lists the files a tree-mode client asks to receive.
	FrameWant
	// FrameBusy is the server's load-shedding answer to an over-capacity
	// dial: the session is refused before any state is exchanged and the
	// payload carries a retry-after hint. Appended after every pre-existing
	// type so admitted sessions stay byte-identical across versions.
	FrameBusy
	// FrameMuxAck accepts a client's stream-multiplexing request (hello
	// extension 2): it precedes the VERDICTS frame and carries the stream
	// partition of the session's sync files. Never sent unless the client
	// asked, so non-multiplexed sessions stay byte-identical.
	FrameMuxAck
	// FrameStream wraps one inner frame of a multiplexed session with its
	// stream id: `sid:uvarint innerType:byte innerPayload...`.
	FrameStream
	// FrameCycle delimits one batch of stream frames sharing a flush (and
	// therefore one half-roundtrip): its payload is the count of FrameStream
	// frames that follow.
	FrameCycle
	// FrameTreeAck grants a client's tree-descent extensions (hello
	// extension 3): its payload is the granted capability mask. Sent once,
	// before the server's first TREE reply in the same flush, and never
	// sent unless the client asked, so legacy tree sessions stay
	// byte-identical.
	FrameTreeAck
)

// FrameName returns a human-readable name for a frame type.
func FrameName(t byte) string {
	switch t {
	case FrameHello:
		return "HELLO"
	case FrameManifest:
		return "MANIFEST"
	case FrameVerdicts:
		return "VERDICTS"
	case FrameRoundHashes:
		return "ROUND_HASHES"
	case FrameRoundReply:
		return "ROUND_REPLY"
	case FrameConfirm:
		return "CONFIRM"
	case FrameDelta:
		return "DELTA"
	case FrameDone:
		return "DONE"
	case FrameError:
		return "ERROR"
	case FrameFull:
		return "FULL"
	case FrameAck:
		return "ACK"
	case FrameTree:
		return "TREE"
	case FrameWant:
		return "WANT"
	case FrameBusy:
		return "BUSY"
	case FrameMuxAck:
		return "MUX_ACK"
	case FrameStream:
		return "STREAM"
	case FrameCycle:
		return "CYCLE"
	case FrameTreeAck:
		return "TREE_ACK"
	default:
		return fmt.Sprintf("UNKNOWN(%d)", t)
	}
}

// ErrFrameTooLarge is returned when a frame header declares a payload larger
// than MaxFrameSize.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// ErrVarintOverflow is returned for overlong varints: encodings that run
// past the 10-byte maximum or whose tenth byte carries more than one value
// bit. encoding/binary reports these with a negative length that a naive
// caller can mistake for truncation; surfacing a distinct error keeps
// "corrupt stream" and "short stream" diagnosable apart.
var ErrVarintOverflow = errors.New("wire: varint overflows 64 bits")

// ErrTruncated is returned when a message ends in the middle of a value.
var ErrTruncated = errors.New("wire: truncated message")

// BusyError is the decoded form of a BUSY frame: the server refused the
// session at admission (over capacity) and suggests retrying after the
// embedded hint. It reaches callers as an error so retry loops can
// recognize it with errors.As and honor RetryAfter.
type BusyError struct {
	// RetryAfter is the server's backoff hint; 0 means "whenever".
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("wire: server busy, retry after %v", e.RetryAfter)
}

// EncodeBusy builds the BUSY frame payload: the retry-after hint in
// milliseconds as a uvarint. Sub-millisecond hints round up so a positive
// hint never encodes as zero.
func EncodeBusy(retryAfter time.Duration) []byte {
	ms := int64(0)
	if retryAfter > 0 {
		ms = int64((retryAfter + time.Millisecond - 1) / time.Millisecond)
	}
	return AppendUvarint(nil, uint64(ms))
}

// DecodeBusy parses a BUSY payload. A malformed payload degrades to a zero
// hint rather than failing: the session is refused either way.
func DecodeBusy(payload []byte) *BusyError {
	ms, n := binary.Uvarint(payload)
	if n <= 0 || ms > uint64(math.MaxInt64/int64(time.Millisecond)) {
		return &BusyError{}
	}
	return &BusyError{RetryAfter: time.Duration(ms) * time.Millisecond}
}

// AppendUvarint appends v to buf using the standard varint encoding.
func AppendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// AppendVarint appends a zigzag-encoded signed value.
func AppendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

// Buffer is an append-only message builder with varint helpers.
// The zero value is ready to use.
type Buffer struct {
	b []byte
}

// NewBuffer returns a Buffer with preallocated capacity.
func NewBuffer(sizeHint int) *Buffer { return &Buffer{b: make([]byte, 0, sizeHint)} }

// Uvarint appends an unsigned varint.
func (m *Buffer) Uvarint(v uint64) { m.b = binary.AppendUvarint(m.b, v) }

// Varint appends a signed (zigzag) varint.
func (m *Buffer) Varint(v int64) { m.b = binary.AppendVarint(m.b, v) }

// Byte appends a single byte.
func (m *Buffer) Byte(v byte) { m.b = append(m.b, v) }

// Bytes appends a length-prefixed byte string.
func (m *Buffer) Bytes(p []byte) {
	m.Uvarint(uint64(len(p)))
	m.b = append(m.b, p...)
}

// Raw appends bytes with no length prefix.
func (m *Buffer) Raw(p []byte) { m.b = append(m.b, p...) }

// String appends a length-prefixed string.
func (m *Buffer) String(s string) {
	m.Uvarint(uint64(len(s)))
	m.b = append(m.b, s...)
}

// Bool appends a boolean as one byte.
func (m *Buffer) Bool(v bool) {
	if v {
		m.b = append(m.b, 1)
	} else {
		m.b = append(m.b, 0)
	}
}

// Len reports the number of bytes built so far.
func (m *Buffer) Len() int { return len(m.b) }

// Build returns the accumulated bytes. The buffer remains usable.
func (m *Buffer) Build() []byte { return m.b }

// Reset clears the buffer for reuse.
func (m *Buffer) Reset() { m.b = m.b[:0] }

// Parser consumes a message produced by Buffer.
type Parser struct {
	b   []byte
	pos int
}

// NewParser returns a Parser over p (not copied).
func NewParser(p []byte) *Parser { return &Parser{b: p} }

// errShort is the generic truncation error.
var errShort = ErrTruncated

// Uvarint reads an unsigned varint. A buffer ending mid-varint returns
// ErrTruncated; an overlong encoding returns ErrVarintOverflow.
func (p *Parser) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.b[p.pos:])
	if n == 0 {
		return 0, errShort
	}
	if n < 0 {
		return 0, ErrVarintOverflow
	}
	p.pos += n
	return v, nil
}

// Varint reads a signed varint, with the same error split as Uvarint.
func (p *Parser) Varint() (int64, error) {
	v, n := binary.Varint(p.b[p.pos:])
	if n == 0 {
		return 0, errShort
	}
	if n < 0 {
		return 0, ErrVarintOverflow
	}
	p.pos += n
	return v, nil
}

// Byte reads a single byte.
func (p *Parser) Byte() (byte, error) {
	if p.pos >= len(p.b) {
		return 0, errShort
	}
	v := p.b[p.pos]
	p.pos++
	return v, nil
}

// Bool reads a boolean.
func (p *Parser) Bool() (bool, error) {
	v, err := p.Byte()
	return v != 0, err
}

// Bytes reads a length-prefixed byte string. The returned slice aliases the
// underlying buffer.
func (p *Parser) Bytes() ([]byte, error) {
	n, err := p.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(p.b)-p.pos) {
		return nil, errShort
	}
	out := p.b[p.pos : p.pos+int(n)]
	p.pos += int(n)
	return out, nil
}

// String reads a length-prefixed string.
func (p *Parser) String() (string, error) {
	b, err := p.Bytes()
	return string(b), err
}

// Raw reads n bytes with no length prefix.
func (p *Parser) Raw(n int) ([]byte, error) {
	if n < 0 || n > len(p.b)-p.pos {
		return nil, errShort
	}
	out := p.b[p.pos : p.pos+n]
	p.pos += n
	return out, nil
}

// Remaining reports the number of unread bytes.
func (p *Parser) Remaining() int { return len(p.b) - p.pos }

// A FrameWriter writes typed, length-delimited frames to an io.Writer.
// It counts the frames and bytes (headers included) it has written; the
// counters are plain fields because a frame writer, like the session that
// owns it, is single-goroutine by protocol design.
type FrameWriter struct {
	w       *bufio.Writer
	hdr     [binary.MaxVarintLen64 + 1]byte
	frames  int64
	bytes   int64
	flushes int64
}

// NewFrameWriter returns a FrameWriter wrapping w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: bufio.NewWriterSize(w, 64<<10)}
}

// WriteFrame writes a single frame of the given type.
func (fw *FrameWriter) WriteFrame(frameType byte, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	fw.hdr[0] = frameType
	n := binary.PutUvarint(fw.hdr[1:], uint64(len(payload)))
	if _, err := fw.w.Write(fw.hdr[:1+n]); err != nil {
		return err
	}
	_, err := fw.w.Write(payload)
	if err == nil {
		fw.frames++
		fw.bytes += int64(1+n) + int64(len(payload))
	}
	return err
}

// Counts reports the frames and bytes (headers included) written so far.
func (fw *FrameWriter) Counts() (frames, bytes int64) { return fw.frames, fw.bytes }

// ResetCounts zeroes the frame/byte/flush counters (pooled writers reset
// between sessions).
func (fw *FrameWriter) ResetCounts() { fw.frames, fw.bytes, fw.flushes = 0, 0, 0 }

// Flush flushes buffered frames to the underlying writer. Protocol code calls
// Flush exactly once per communication phase, which is what the transport
// layer counts as a half-roundtrip.
func (fw *FrameWriter) Flush() error {
	fw.flushes++
	return fw.w.Flush()
}

// Flushes reports how often Flush was called: the session's half-roundtrip
// count from this side's perspective, used by the latency benchmarks to
// convert a recorded session into wall-clock on a simulated link.
func (fw *FrameWriter) Flushes() int64 { return fw.flushes }

// A FrameReader reads typed, length-delimited frames from an io.Reader.
// Like FrameWriter it counts frames and bytes (headers included); plain
// fields, single-goroutine use.
type FrameReader struct {
	r      *bufio.Reader
	frames int64
	bytes  int64
}

// NewFrameReader returns a FrameReader wrapping r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReaderSize(r, 64<<10)}
}

// ReadFrame reads the next frame. The payload is freshly allocated. A
// length prefix with an overlong varint encoding fails with
// ErrVarintOverflow instead of desynchronizing the stream; a stream that
// ends inside the header or payload fails with io.ErrUnexpectedEOF.
func (fr *FrameReader) ReadFrame() (frameType byte, payload []byte, err error) {
	frameType, err = fr.r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	size, sizeLen, err := readUvarint(fr.r)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if size > MaxFrameSize {
		return 0, nil, ErrFrameTooLarge
	}
	payload = make([]byte, size)
	if _, err = io.ReadFull(fr.r, payload); err != nil {
		return 0, nil, err
	}
	fr.frames++
	fr.bytes += 1 + int64(sizeLen) + int64(size)
	return frameType, payload, nil
}

// readUvarint reads a varint byte-by-byte so overlong encodings surface as
// ErrVarintOverflow (binary.ReadUvarint reports them with a private error
// value that callers cannot test for). It also returns the encoded length.
func readUvarint(r *bufio.Reader) (uint64, int, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := r.ReadByte()
		if err != nil {
			return 0, 0, err
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, 0, ErrVarintOverflow
			}
			return x | uint64(b)<<s, i + 1, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, 0, ErrVarintOverflow
}

// Counts reports the frames and bytes (headers included) read so far.
func (fr *FrameReader) Counts() (frames, bytes int64) { return fr.frames, fr.bytes }

// ResetCounts zeroes the frame/byte counters (pooled readers reset between
// sessions).
func (fr *FrameReader) ResetCounts() { fr.frames, fr.bytes = 0, 0 }

// ExpectFrame reads the next frame and verifies its type. A BUSY answer in
// place of the expected frame decodes to a *BusyError so retry loops can
// recognize admission refusals wherever they land in the handshake.
func (fr *FrameReader) ExpectFrame(want byte) ([]byte, error) {
	got, payload, err := fr.ReadFrame()
	if err != nil {
		return nil, err
	}
	if got != want {
		if got == FrameError {
			return nil, fmt.Errorf("wire: remote error: %s", payload)
		}
		if got == FrameBusy {
			return nil, DecodeBusy(payload)
		}
		return nil, fmt.Errorf("wire: expected frame %s, got %s", FrameName(want), FrameName(got))
	}
	return payload, nil
}
