package wire

import (
	"io"
	"sync"
)

// maxPooledBuffer caps the capacity a Buffer may keep when returned to the
// pool: a session that built one giant delta frame should not pin that
// memory for the life of the process.
const maxPooledBuffer = 1 << 22

var bufferPool = sync.Pool{New: func() any { return new(Buffer) }}

// GetBuffer returns a pooled, reset Buffer with at least sizeHint capacity.
// Sessions reuse one such buffer for every frame they assemble; return it
// with PutBuffer when the session ends.
func GetBuffer(sizeHint int) *Buffer {
	m := bufferPool.Get().(*Buffer)
	m.Reset()
	if cap(m.b) < sizeHint {
		m.b = make([]byte, 0, sizeHint)
	}
	return m
}

// PutBuffer returns a Buffer to the pool. The caller must no longer hold
// slices from Build — frame writers copy the payload synchronously, so
// returning after the final WriteFrame/Flush is safe.
func PutBuffer(m *Buffer) {
	if m == nil || cap(m.b) > maxPooledBuffer {
		return
	}
	m.Reset()
	bufferPool.Put(m)
}

var (
	frameWriterPool = sync.Pool{New: func() any { return NewFrameWriter(io.Discard) }}
	frameReaderPool = sync.Pool{New: func() any { return NewFrameReader(emptyReader{}) }}
)

type emptyReader struct{}

func (emptyReader) Read([]byte) (int, error) { return 0, io.EOF }

// GetFrameWriter returns a pooled FrameWriter targeting w, reusing the 64 KB
// bufio scratch of an earlier session.
func GetFrameWriter(w io.Writer) *FrameWriter {
	fw := frameWriterPool.Get().(*FrameWriter)
	fw.w.Reset(w)
	fw.ResetCounts()
	return fw
}

// PutFrameWriter recycles fw. Unflushed bytes are discarded, so flush first
// if they matter; the writer must not be used afterwards.
func PutFrameWriter(fw *FrameWriter) {
	if fw == nil {
		return
	}
	fw.w.Reset(io.Discard)
	frameWriterPool.Put(fw)
}

// GetFrameReader returns a pooled FrameReader over r. Frame payloads are
// freshly allocated per frame, so recycling the reader never aliases them.
func GetFrameReader(r io.Reader) *FrameReader {
	fr := frameReaderPool.Get().(*FrameReader)
	fr.r.Reset(r)
	fr.ResetCounts()
	return fr
}

// PutFrameReader recycles fr; it must not be used afterwards.
func PutFrameReader(fr *FrameReader) {
	if fr == nil {
		return
	}
	fr.r.Reset(emptyReader{})
	frameReaderPool.Put(fr)
}
