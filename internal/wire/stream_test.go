package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestStreamFrameRoundTrip(t *testing.T) {
	payload := []byte("inner payload bytes")
	b := NewBuffer(32)
	AppendStreamFrame(b, 5, FrameRoundHashes, payload)
	sf, err := ParseStreamFrame(b.Build(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if sf.ID != 5 || sf.Type != FrameRoundHashes || !bytes.Equal(sf.Payload, payload) {
		t.Fatalf("round trip mismatch: %+v", sf)
	}
}

func TestStreamFrameEmptyPayload(t *testing.T) {
	b := NewBuffer(8)
	AppendStreamFrame(b, 0, FrameAck, nil)
	sf, err := ParseStreamFrame(b.Build(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if sf.ID != 0 || sf.Type != FrameAck || len(sf.Payload) != 0 {
		t.Fatalf("empty payload mismatch: %+v", sf)
	}
}

func TestStreamFrameRejects(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		width   int
	}{
		{"empty", nil, 4},
		{"id beyond width", func() []byte {
			b := NewBuffer(8)
			AppendStreamFrame(b, 4, FrameDelta, nil)
			return b.Build()
		}(), 4},
		{"overlong id varint", append(bytes.Repeat([]byte{0xFF}, 10), 0x7F, FrameDelta), 4},
		{"missing inner type", []byte{0x02}, 4},
		{"huge id", []byte{0xFF, 0xFF, 0x7F, FrameDelta}, MaxStreams + 1},
	}
	for _, tc := range cases {
		if _, err := ParseStreamFrame(tc.payload, tc.width); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !errors.Is(err, ErrBadStream) && !errors.Is(err, ErrTruncated) {
			t.Errorf("%s: error %v not ErrBadStream/ErrTruncated", tc.name, err)
		}
	}
}

func TestCycleRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, MaxStreams} {
		got, err := ParseCycle(EncodeCycle(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got != n {
			t.Fatalf("n=%d decoded as %d", n, got)
		}
	}
	if _, err := ParseCycle(EncodeCycle(MaxStreams + 1)); err == nil {
		t.Fatal("oversized cycle accepted")
	}
	if _, err := ParseCycle(append(EncodeCycle(1), 0x00)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := ParseCycle(nil); err == nil {
		t.Fatal("empty cycle accepted")
	}
}

func TestMuxAckRoundTrip(t *testing.T) {
	counts := []int{3, 1, 4, 2}
	got, err := ParseMuxAck(EncodeMuxAck(counts), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(counts) {
		t.Fatalf("stream count %d, want %d", len(got), len(counts))
	}
	for i := range counts {
		if got[i] != counts[i] {
			t.Fatalf("stream %d count %d, want %d", i, got[i], counts[i])
		}
	}
}

func TestMuxAckRejects(t *testing.T) {
	cases := []struct {
		name     string
		payload  []byte
		nEngines int
	}{
		{"empty", nil, 4},
		{"zero streams", EncodeMuxAck(nil), 4},
		{"partition short", EncodeMuxAck([]int{1, 2}), 4},
		{"partition long", EncodeMuxAck([]int{3, 2}), 4},
		{"zero-width stream", EncodeMuxAck([]int{4, 0}), 4},
		{"trailing bytes", append(EncodeMuxAck([]int{4}), 0x01), 4},
		{"truncated counts", EncodeMuxAck([]int{4})[:1], 4},
	}
	for _, tc := range cases {
		if _, err := ParseMuxAck(tc.payload, tc.nEngines); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestFrameWriterFlushes(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if fw.Flushes() != 0 {
		t.Fatal("fresh writer has flushes")
	}
	fw.WriteFrame(FrameHello, []byte("x"))
	fw.Flush()
	fw.WriteFrame(FrameDelta, []byte("y"))
	fw.Flush()
	if got := fw.Flushes(); got != 2 {
		t.Fatalf("flushes = %d, want 2", got)
	}
	fw.ResetCounts()
	if fw.Flushes() != 0 {
		t.Fatal("ResetCounts did not clear flushes")
	}
}
