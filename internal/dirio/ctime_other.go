//go:build !linux && !darwin

package dirio

import "io/fs"

// ctimeOf reports 0 on platforms whose stat does not expose an inode change
// time; the signature cache then falls back to the size+mtime key (with
// paranoid mode as the stale-hit backstop).
func ctimeOf(fs.FileInfo) int64 { return 0 }
