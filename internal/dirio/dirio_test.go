package dirio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, root, rel, content string) {
	t.Helper()
	path := filepath.Join(root, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadAndApplyRoundTrip(t *testing.T) {
	src := t.TempDir()
	write(t, src, "a.txt", "alpha")
	write(t, src, "sub/dir/b.txt", "beta")
	write(t, src, "sub/c.bin", string([]byte{0, 1, 2, 255}))

	files, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("loaded %d files", len(files))
	}
	if string(files["sub/dir/b.txt"]) != "beta" {
		t.Fatalf("content: %q", files["sub/dir/b.txt"])
	}

	dst := t.TempDir()
	if err := Apply(dst, map[string][]byte{}, files); err != nil {
		t.Fatal(err)
	}
	reloaded, err := Load(dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(reloaded) != len(files) {
		t.Fatalf("reloaded %d files", len(reloaded))
	}
	for rel, data := range files {
		if !bytes.Equal(reloaded[rel], data) {
			t.Fatalf("mismatch for %s", rel)
		}
	}
}

func TestApplyUpdatesAndDeletes(t *testing.T) {
	root := t.TempDir()
	write(t, root, "keep.txt", "same")
	write(t, root, "mod.txt", "old")
	write(t, root, "gone/deep/dead.txt", "bye")

	before, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	after := map[string][]byte{
		"keep.txt": []byte("same"),
		"mod.txt":  []byte("new content"),
		"new.txt":  []byte("hello"),
	}
	if err := Apply(root, before, after); err != nil {
		t.Fatal(err)
	}
	got, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d files: %v", len(got), keys(got))
	}
	if string(got["mod.txt"]) != "new content" || string(got["new.txt"]) != "hello" {
		t.Fatal("update/create failed")
	}
	// The emptied directory chain is pruned.
	if _, err := os.Stat(filepath.Join(root, "gone")); !os.IsNotExist(err) {
		t.Fatal("empty directory not pruned")
	}
}

func keys(m map[string][]byte) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestApplyRejectsTraversal(t *testing.T) {
	root := t.TempDir()
	for _, bad := range []string{"../escape", "a/../../b", "/abs", "a//b", ""} {
		err := Apply(root, nil, map[string][]byte{bad: []byte("evil")})
		if err == nil {
			t.Errorf("path %q accepted", bad)
		}
	}
}

func TestApplyIdempotent(t *testing.T) {
	root := t.TempDir()
	files := map[string][]byte{"x/y.txt": []byte("data")}
	if err := Apply(root, nil, files); err != nil {
		t.Fatal(err)
	}
	if err := Apply(root, files, files); err != nil {
		t.Fatal(err)
	}
	got, _ := Load(root)
	if string(got["x/y.txt"]) != "data" {
		t.Fatal("content lost")
	}
}

func TestLoadMissingRoot(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing root accepted")
	}
}

func TestLoadSkipsSymlinks(t *testing.T) {
	root := t.TempDir()
	write(t, root, "real.txt", "content")
	if err := os.Symlink("/etc", filepath.Join(root, "link")); err != nil {
		t.Skipf("symlinks unavailable: %v", err)
	}
	files, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("symlink not skipped: %v", keys(files))
	}
}
