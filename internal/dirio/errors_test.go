package dirio

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"msync/internal/md4"
)

// failReads makes readFile fail for paths whose base name matches, restoring
// the real implementation when the test ends. The suite runs as root, where
// permission bits don't deny anything, hence the injection.
func failReads(t *testing.T, base string) {
	t.Helper()
	orig := readFile
	readFile = func(path string) ([]byte, error) {
		if filepath.Base(path) == base {
			return nil, fs.ErrPermission
		}
		return orig(path)
	}
	t.Cleanup(func() { readFile = orig })
}

func TestLoadCollectsReadErrorsAndKeepsWalking(t *testing.T) {
	root := t.TempDir()
	write(t, root, "ok.txt", "fine")
	write(t, root, "sub/bad.txt", "unreadable")
	write(t, root, "sub/zz.txt", "also fine")
	failReads(t, "bad.txt")

	files, err := Load(root)
	if err == nil {
		t.Fatal("read failure not reported")
	}
	// The walk kept going: everything readable is present.
	if len(files) != 2 || string(files["sub/zz.txt"]) != "also fine" {
		t.Fatalf("partial load wrong: %v", keys(files))
	}
	var werrs WalkErrors
	if !errors.As(err, &werrs) || len(werrs) != 1 {
		t.Fatalf("err = %v, want one WalkErrors entry", err)
	}
	var fe *FileError
	if !errors.As(err, &fe) || fe.Path != "sub/bad.txt" {
		t.Fatalf("failure not wrapped with its path: %v", err)
	}
	if !errors.Is(fe, fs.ErrPermission) {
		t.Fatal("cause lost in wrapping")
	}
	if !strings.Contains(err.Error(), "sub/bad.txt") {
		t.Fatalf("message %q does not name the offending path", err.Error())
	}
}

func TestOpenTreeCollectsStatErrors(t *testing.T) {
	root := t.TempDir()
	write(t, root, "a.txt", "a")
	write(t, root, "sub/bad.txt", "b")
	orig := statEntry
	statEntry = func(d fs.DirEntry) (fs.FileInfo, error) {
		if d.Name() == "bad.txt" {
			return nil, fs.ErrPermission
		}
		return orig(d)
	}
	t.Cleanup(func() { statEntry = orig })

	tree, werrs, err := OpenTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(werrs) != 1 || werrs[0].Path != "sub/bad.txt" {
		t.Fatalf("werrs = %v, want the unstattable path", werrs)
	}
	if n := len(tree.Files()); n != 1 || tree.Files()[0].Path != "a.txt" {
		t.Fatalf("files = %v, want the stattable file only", tree.Files())
	}
}

// TestWalkErrorsSortedByPath pins the aggregate error ordering. WalkDir
// visits "a/y.txt" before "a.b/x.txt" (directory-entry order lists "a"
// before "a.b"), which is the reverse of lexical path order ('.' sorts
// before '/'), so without the explicit sort the failures would come back in
// walk order and error output would depend on tree shape.
func TestWalkErrorsSortedByPath(t *testing.T) {
	newRoot := func() string {
		root := t.TempDir()
		write(t, root, "a/y.txt", "1")
		write(t, root, "a.b/x.txt", "2")
		write(t, root, "ok.txt", "3")
		return root
	}
	wantPaths := func(werrs WalkErrors) {
		t.Helper()
		if len(werrs) != 2 || werrs[0].Path != "a.b/x.txt" || werrs[1].Path != "a/y.txt" {
			t.Fatalf("werrs = %v, want [a.b/x.txt a/y.txt]", werrs)
		}
	}

	// Load: multiple read failures.
	root := newRoot()
	origRead := readFile
	readFile = func(path string) ([]byte, error) {
		if filepath.Base(path) != "ok.txt" {
			return nil, fs.ErrPermission
		}
		return origRead(path)
	}
	t.Cleanup(func() { readFile = origRead })
	files, err := Load(root)
	if len(files) != 1 {
		t.Fatalf("files = %v, want the readable file only", keys(files))
	}
	var werrs WalkErrors
	if !errors.As(err, &werrs) {
		t.Fatalf("err = %v, want WalkErrors", err)
	}
	wantPaths(werrs)
	readFile = origRead

	// OpenTree: multiple stat failures.
	origStat := statEntry
	statEntry = func(d fs.DirEntry) (fs.FileInfo, error) {
		if d.Name() != "ok.txt" {
			return nil, fs.ErrPermission
		}
		return origStat(d)
	}
	t.Cleanup(func() { statEntry = origStat })
	tree, werrs, err := OpenTree(newRoot())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(tree.Files()); n != 1 {
		t.Fatalf("files = %v, want the stattable file only", tree.Files())
	}
	wantPaths(werrs)
}

func TestOpenTreeMissingRoot(t *testing.T) {
	if _, _, err := OpenTree(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing root accepted")
	}
}

func TestTreeLoadWrapsPath(t *testing.T) {
	root := t.TempDir()
	write(t, root, "present.txt", "x")
	tree, _, err := OpenTree(root)
	if err != nil {
		t.Fatal(err)
	}
	_, lerr := tree.Load("absent.txt")
	var fe *FileError
	if !errors.As(lerr, &fe) || fe.Path != "absent.txt" {
		t.Fatalf("err = %v, want FileError naming the path", lerr)
	}
	if !errors.Is(lerr, fs.ErrNotExist) {
		t.Fatal("missing file must satisfy fs.ErrNotExist for the verdict logic")
	}
}

func TestTreeLoadAndHashRejectTraversal(t *testing.T) {
	root := t.TempDir()
	write(t, root, "a.txt", "x")
	tree, _, err := OpenTree(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"../escape", "/abs", "a/../../b", ""} {
		if _, err := tree.Load(bad); err == nil {
			t.Errorf("Load accepted %q", bad)
		}
		if _, _, err := tree.HashFile(bad); err == nil {
			t.Errorf("HashFile accepted %q", bad)
		}
	}
}

func TestHashFileMatchesEagerSum(t *testing.T) {
	root := t.TempDir()
	content := strings.Repeat("stream me through the pooled buffer ", 20_000)
	write(t, root, "big.txt", content)
	tree, _, err := OpenTree(root)
	if err != nil {
		t.Fatal(err)
	}
	sum, n, err := tree.HashFile("big.txt")
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(content)) {
		t.Fatalf("hashed %d bytes, want %d", n, len(content))
	}
	if sum != md4.Sum([]byte(content)) {
		t.Fatal("streamed sum differs from eager sum")
	}
}

func TestTreeFilesSortedWithIdentity(t *testing.T) {
	root := t.TempDir()
	write(t, root, "b/two.txt", "22")
	write(t, root, "a/one.txt", "1")
	tree, _, err := OpenTree(root)
	if err != nil {
		t.Fatal(err)
	}
	files := tree.Files()
	if len(files) != 2 || files[0].Path != "a/one.txt" || files[1].Path != "b/two.txt" {
		t.Fatalf("files = %v, want sorted paths", files)
	}
	if files[0].Size != 1 || files[1].Size != 2 {
		t.Fatal("sizes wrong")
	}
	info, err := os.Stat(filepath.Join(root, "a", "one.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !files[0].MTime.Equal(info.ModTime()) {
		t.Fatal("mtime not captured")
	}
}

func TestApplyChangesWritesAndDeletes(t *testing.T) {
	root := t.TempDir()
	write(t, root, "mod.txt", "old")
	write(t, root, "keep.txt", "keep")
	write(t, root, "gone/deep/dead.txt", "bye")

	changed := map[string][]byte{
		"mod.txt":       []byte("new content"),
		"fresh/new.txt": []byte("hello"),
	}
	if err := ApplyChanges(root, changed, []string{"gone/deep/dead.txt"}); err != nil {
		t.Fatal(err)
	}
	got, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"mod.txt": "new content", "keep.txt": "keep", "fresh/new.txt": "hello"}
	if len(got) != len(want) {
		t.Fatalf("got %v", keys(got))
	}
	for rel, content := range want {
		if string(got[rel]) != content {
			t.Fatalf("%s = %q, want %q", rel, got[rel], content)
		}
	}
	if _, err := os.Stat(filepath.Join(root, "gone")); !os.IsNotExist(err) {
		t.Fatal("emptied directory chain not pruned")
	}
}

func TestApplyChangesRejectsTraversal(t *testing.T) {
	root := t.TempDir()
	if err := ApplyChanges(root, map[string][]byte{"../evil": []byte("x")}, nil); err == nil {
		t.Fatal("traversal write accepted")
	}
	if err := ApplyChanges(root, nil, []string{"../evil"}); err == nil {
		t.Fatal("traversal delete accepted")
	}
}

func TestApplyChangesDeleteMissingIsFine(t *testing.T) {
	root := t.TempDir()
	if err := ApplyChanges(root, nil, []string{"never/was.txt"}); err != nil {
		t.Fatal(err)
	}
}
