//go:build linux

package dirio

import (
	"io/fs"
	"syscall"
)

// ctimeOf extracts the inode change time (ctime) in Unix nanoseconds from
// the platform stat, 0 when the info does not carry one. Unlike mtime,
// ctime cannot be set from userspace, so it survives tools that restore
// timestamps after a rewrite.
func ctimeOf(info fs.FileInfo) int64 {
	if st, ok := info.Sys().(*syscall.Stat_t); ok {
		return st.Ctim.Sec*1_000_000_000 + st.Ctim.Nsec
	}
	return 0
}
