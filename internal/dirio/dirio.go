// Package dirio loads directory trees into the path-keyed maps the
// synchronization API works on, and applies synchronized results back to
// disk. It is the filesystem boundary of the msync CLI.
package dirio

import (
	"bytes"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Load reads every regular file under root, keyed by slash-separated
// relative path. Symlinks are skipped (following them could escape root).
func Load(root string) (map[string][]byte, error) {
	files := make(map[string][]byte)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !d.Type().IsRegular() {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		files[filepath.ToSlash(rel)] = data
		return nil
	})
	if err != nil {
		return nil, err
	}
	return files, nil
}

// Apply writes the synchronized file set to root: files present in after
// are written when their content differs from before; files absent from
// after are removed. Empty directories left behind are pruned.
func Apply(root string, before, after map[string][]byte) error {
	for rel, data := range after {
		if err := checkPath(rel); err != nil {
			return err
		}
		if old, ok := before[rel]; ok && bytes.Equal(old, data) {
			continue
		}
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
	}
	for rel := range before {
		if _, ok := after[rel]; ok {
			continue
		}
		if err := checkPath(rel); err != nil {
			return err
		}
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return err
		}
		pruneEmptyParents(root, filepath.Dir(path))
	}
	return nil
}

// checkPath rejects path traversal and absolute paths from the wire.
func checkPath(rel string) error {
	if rel == "" || strings.HasPrefix(rel, "/") || strings.HasPrefix(rel, "\\") {
		return fmt.Errorf("dirio: refusing path %q", rel)
	}
	for _, part := range strings.Split(rel, "/") {
		if part == ".." || part == "" {
			return fmt.Errorf("dirio: refusing path %q", rel)
		}
	}
	if filepath.IsAbs(rel) || (len(rel) > 1 && rel[1] == ':') {
		return fmt.Errorf("dirio: refusing path %q", rel)
	}
	return nil
}

// pruneEmptyParents removes now-empty directories up to (not including) root.
func pruneEmptyParents(root, dir string) {
	rootAbs, err := filepath.Abs(root)
	if err != nil {
		return
	}
	for {
		dirAbs, err := filepath.Abs(dir)
		if err != nil || dirAbs == rootAbs || !strings.HasPrefix(dirAbs, rootAbs+string(filepath.Separator)) {
			return
		}
		if err := os.Remove(dir); err != nil {
			return // not empty or gone
		}
		dir = filepath.Dir(dir)
	}
}
