// Package dirio is the filesystem boundary of the msync CLI. It offers two
// views of a directory tree: the legacy eager Load (whole tree into a
// path-keyed map) and the lazy Tree (a stat-only walk whose file contents are
// opened, hashed through a pooled buffer, and released on demand), so peak
// memory no longer scales with collection size. Both keep walking past
// unreadable files, collecting per-file errors instead of aborting.
package dirio

import (
	"bytes"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"msync/internal/md4"
)

// FileError wraps a per-file stat/read failure with the offending path.
type FileError struct {
	Path string // slash-relative when under the walk root, else as reported
	Err  error
}

// Error implements error.
func (e *FileError) Error() string { return fmt.Sprintf("dirio: %s: %v", e.Path, e.Err) }

// Unwrap returns the underlying cause.
func (e *FileError) Unwrap() error { return e.Err }

// WalkErrors aggregates the per-file failures of one tree walk or load,
// sorted by path. The walk does not stop on them; callers that can tolerate
// a partial tree (the CLI warns and continues) inspect the slice, strict
// callers treat the aggregate as fatal. The ordering is deterministic even
// when walk-level and read/stat-level failures interleave, so error output
// and tests are stable across runs.
type WalkErrors []*FileError

// sortByPath orders w by path (ties keep insertion order) so aggregated
// failures from different collection stages report deterministically.
func (w WalkErrors) sortByPath() {
	sort.SliceStable(w, func(i, j int) bool { return w[i].Path < w[j].Path })
}

// Error implements error.
func (w WalkErrors) Error() string {
	if len(w) == 1 {
		return w[0].Error()
	}
	return fmt.Sprintf("%v (and %d more)", w[0], len(w)-1)
}

// Unwrap exposes the individual failures to errors.Is and errors.As.
func (w WalkErrors) Unwrap() []error {
	errs := make([]error, len(w))
	for i, e := range w {
		errs[i] = e
	}
	return errs
}

// readFile and statEntry are indirection points for tests to inject per-file
// failures (the suite runs as root, where permission bits don't bite).
var (
	readFile  = os.ReadFile
	statEntry = func(d fs.DirEntry) (fs.FileInfo, error) { return d.Info() }
)

// walk visits every regular file under root in sorted order, collecting
// per-entry errors and continuing. Symlinks are skipped (following them could
// escape root).
func walk(root string, visit func(rel, path string, d fs.DirEntry)) WalkErrors {
	var werrs WalkErrors
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			rel := path
			if r, rerr := filepath.Rel(root, path); rerr == nil {
				rel = filepath.ToSlash(r)
			}
			werrs = append(werrs, &FileError{Path: rel, Err: err})
			return nil // keep walking siblings
		}
		if d.IsDir() || !d.Type().IsRegular() {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			werrs = append(werrs, &FileError{Path: path, Err: err})
			return nil
		}
		visit(filepath.ToSlash(rel), path, d)
		return nil
	})
	return werrs
}

// Load reads every regular file under root, keyed by slash-separated
// relative path. Unreadable files are skipped and reported together as a
// WalkErrors; the returned map always holds everything that could be read.
func Load(root string) (map[string][]byte, error) {
	files := make(map[string][]byte)
	var readErrs WalkErrors
	werrs := walk(root, func(rel, path string, d fs.DirEntry) {
		data, err := readFile(path)
		if err != nil {
			readErrs = append(readErrs, &FileError{Path: rel, Err: err})
			return
		}
		files[rel] = data
	})
	return files, werrsOrNil(append(werrs, readErrs...))
}

// werrsOrNil converts an empty WalkErrors to a nil error (a non-nil
// interface holding an empty slice would read as a failure) and sorts a
// non-empty one by path.
func werrsOrNil(w WalkErrors) error {
	if len(w) == 0 {
		return nil
	}
	w.sortByPath()
	return w
}

// FileInfo is one regular file found by a Tree walk: identity only, no
// content.
type FileInfo struct {
	// Path is the slash-separated path relative to the tree root.
	Path string
	// Size is the length in bytes at walk time.
	Size int64
	// MTime is the modification time at walk time.
	MTime time.Time
	// CTime is the inode change time in Unix nanoseconds at walk time, 0
	// when the platform does not report one. Unlike MTime it cannot be set
	// from userspace, so a rewrite that restores size and mtime (archive
	// extraction, timestamp-preserving editors) still moves it.
	CTime int64
}

// Tree is the lazy view of a directory: a snapshot of file identities taken
// by OpenTree, with content loaded (or stream-hashed) per file on demand and
// released after use. Safe for concurrent use.
type Tree struct {
	root  string
	files []FileInfo // sorted by Path
}

// OpenTree walks root collecting file identities without reading any
// content. Files whose metadata cannot be read are skipped and reported in
// the WalkErrors; err is non-nil only when root itself is unusable.
func OpenTree(root string) (t *Tree, werrs WalkErrors, err error) {
	if _, err := os.Stat(root); err != nil {
		return nil, nil, err
	}
	t = &Tree{root: root}
	var statErrs WalkErrors
	werrs = walk(root, func(rel, path string, d fs.DirEntry) {
		info, err := statEntry(d)
		if err != nil {
			statErrs = append(statErrs, &FileError{Path: rel, Err: err})
			return
		}
		t.files = append(t.files, FileInfo{Path: rel, Size: info.Size(), MTime: info.ModTime(), CTime: ctimeOf(info)})
	})
	werrs = append(werrs, statErrs...)
	werrs.sortByPath()
	sort.Slice(t.files, func(i, j int) bool { return t.files[i].Path < t.files[j].Path })
	return t, werrs, nil
}

// Root returns the tree's root directory.
func (t *Tree) Root() string { return t.root }

// Files returns the walked file identities, sorted by path. The slice is
// shared; callers must not mutate it.
func (t *Tree) Files() []FileInfo { return t.files }

// Load reads one file's content. The path is validated against traversal
// like everything else that touches disk on behalf of the protocol.
func (t *Tree) Load(rel string) ([]byte, error) {
	if err := checkPath(rel); err != nil {
		return nil, err
	}
	data, err := readFile(filepath.Join(t.root, filepath.FromSlash(rel)))
	if err != nil {
		return nil, &FileError{Path: rel, Err: err}
	}
	return data, nil
}

// hashBufPool bounds streamed hashing scratch: every concurrent HashFile
// borrows one fixed-size buffer, so hashing memory is (concurrency ×
// hashBufSize) regardless of file sizes.
const hashBufSize = 256 << 10

var hashBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, hashBufSize)
		return &b
	},
}

// HashFile streams one file through MD4 without holding its content: open,
// hash through a pooled buffer, release. It returns the sum and the number
// of bytes hashed.
func (t *Tree) HashFile(rel string) (sum [md4.Size]byte, n int64, err error) {
	if err := checkPath(rel); err != nil {
		return sum, 0, err
	}
	f, err := os.Open(filepath.Join(t.root, filepath.FromSlash(rel)))
	if err != nil {
		return sum, 0, &FileError{Path: rel, Err: err}
	}
	defer f.Close()
	h := md4.New()
	bufp := hashBufPool.Get().(*[]byte)
	n, err = io.CopyBuffer(h, f, *bufp)
	hashBufPool.Put(bufp)
	if err != nil {
		return sum, n, &FileError{Path: rel, Err: err}
	}
	h.Sum(sum[:0])
	return sum, n, nil
}

// Apply writes the synchronized file set to root: files present in after
// are written when their content differs from before; files absent from
// after are removed. Empty directories left behind are pruned.
func Apply(root string, before, after map[string][]byte) error {
	for rel, data := range after {
		if err := checkPath(rel); err != nil {
			return err
		}
		if old, ok := before[rel]; ok && bytes.Equal(old, data) {
			continue
		}
		if err := writeFile(root, rel, data); err != nil {
			return err
		}
	}
	for rel := range before {
		if _, ok := after[rel]; ok {
			continue
		}
		if err := removeFile(root, rel); err != nil {
			return err
		}
	}
	return nil
}

// ApplyChanges applies a lazy sync result: changed holds only the files
// whose content was written by the session, deleted the paths to remove.
// Unlike Apply it needs no before-map of the whole tree. Written files are
// fsynced and so are the touched directories up to root, so an applied sync
// survives power loss.
func ApplyChanges(root string, changed map[string][]byte, deleted []string) error {
	dirs := make(map[string]struct{})
	for rel, data := range changed {
		if err := checkPath(rel); err != nil {
			return err
		}
		if err := writeFileDurable(root, rel, data); err != nil {
			return err
		}
		markParents(dirs, root, rel)
	}
	for _, rel := range deleted {
		if err := removeFile(root, rel); err != nil {
			return err
		}
		markParents(dirs, root, rel)
	}
	for dir := range dirs {
		if err := syncDir(dir); err != nil {
			return err
		}
	}
	return nil
}

// writeFile creates rel under root, making parent directories as needed.
func writeFile(root, rel string, data []byte) error {
	path := filepath.Join(root, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// writeFileDurable is writeFile plus an fsync before close, so the content
// is on stable storage when it returns. Directory entries still need their
// own sync — see syncDir.
func writeFileDurable(root, rel string, data []byte) error {
	path := filepath.Join(root, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// markParents records every ancestor directory of rel, up to and including
// root, for a post-apply fsync pass. checkPath has already confined rel to
// the tree.
func markParents(dirs map[string]struct{}, root, rel string) {
	rootClean := filepath.Clean(root)
	dir := filepath.Dir(filepath.Join(root, filepath.FromSlash(rel)))
	for {
		dirs[dir] = struct{}{}
		if filepath.Clean(dir) == rootClean {
			return
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return
		}
		dir = parent
	}
}

// syncDir fsyncs a directory so entry creations and removals inside it are
// durable. Directories pruned since the apply pass are skipped, and sync
// errors are ignored — some platforms and filesystems refuse directory
// fsync, which must not fail the apply.
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	_ = d.Sync()
	return d.Close()
}

// removeFile deletes rel under root and prunes emptied parent directories.
func removeFile(root, rel string) error {
	if err := checkPath(rel); err != nil {
		return err
	}
	path := filepath.Join(root, filepath.FromSlash(rel))
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	pruneEmptyParents(root, filepath.Dir(path))
	return nil
}

// checkPath rejects path traversal and absolute paths from the wire.
func checkPath(rel string) error {
	if rel == "" || strings.HasPrefix(rel, "/") || strings.HasPrefix(rel, "\\") {
		return fmt.Errorf("dirio: refusing path %q", rel)
	}
	for _, part := range strings.Split(rel, "/") {
		if part == ".." || part == "" {
			return fmt.Errorf("dirio: refusing path %q", rel)
		}
	}
	if filepath.IsAbs(rel) || (len(rel) > 1 && rel[1] == ':') {
		return fmt.Errorf("dirio: refusing path %q", rel)
	}
	return nil
}

// pruneEmptyParents removes now-empty directories up to (not including) root.
func pruneEmptyParents(root, dir string) {
	rootAbs, err := filepath.Abs(root)
	if err != nil {
		return
	}
	for {
		dirAbs, err := filepath.Abs(dir)
		if err != nil || dirAbs == rootAbs || !strings.HasPrefix(dirAbs, rootAbs+string(filepath.Separator)) {
			return
		}
		if err := os.Remove(dir); err != nil {
			return // not empty or gone
		}
		dir = filepath.Dir(dir)
	}
}
