package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Span phases emitted by the protocol layers. Collection sessions emit one
// handshake span (hello, change detection, verdicts), one span per
// map-construction round, one per group-verification pass, one delta span,
// an optional full-transfer span, and a closing session summary. The
// in-process core driver emits per-round engine events under PhaseCoreRound.
const (
	PhaseHandshake = "handshake"
	PhaseRound     = "round"
	PhaseVerify    = "verify"
	PhaseDelta     = "delta"
	PhaseFull      = "full"
	PhaseSession   = "session"
	PhaseCoreRound = "core-round"
	// PhaseTree covers one merkle-descent roundtrip of tree-manifest
	// change detection (the Event.Round field carries the descent round).
	PhaseTree = "tree"
	// PhasePublish covers one publish-mode snapshot (internal/pubsig): the
	// origin's once-per-version artifact computation.
	PhasePublish = "publish"
	// PhaseFetch covers one published file's reconciliation on a
	// publish-mode reader: signature download, local matching and range
	// fetches (or a whole-blob fallback).
	PhaseFetch = "fetch"
	// PhaseStream summarizes one multiplexed stream's whole traffic; the
	// Event.Stream field carries its 1-based id. A multiplexed session
	// emits one such span per stream in place of per-round spans for the
	// stream-tagged traffic, so spans still sum to the session totals.
	PhaseStream = "stream"
)

// Event is one span-like trace record: a protocol phase with its frame and
// byte counts and wall time. BytesUp is traffic sent toward the data holder
// (the client→server direction of a pull), BytesDown traffic from it; both
// include frame headers, so summing a session's spans reproduces the
// stats.Costs wire totals exactly.
type Event struct {
	// Time is when the span ended (events are emitted on completion).
	Time time.Time `json:"t"`
	// Session correlates the spans of one sync session (NextSessionID).
	Session uint64 `json:"session"`
	// Side is the emitting role: "client", "server", or "core" for the
	// in-process driver.
	Side string `json:"side,omitempty"`
	// Phase is one of the Phase* constants.
	Phase string `json:"phase"`
	// Round numbers map-construction rounds (1-based); 0 for phases that
	// are not per-round.
	Round int `json:"round,omitempty"`
	// Stream numbers the multiplexed stream a span belongs to (1-based, so
	// 0 still means "whole session" for non-multiplexed spans). Summing the
	// per-stream spans of one phase reproduces that phase's session totals.
	Stream int `json:"stream,omitempty"`
	// Frames counts wire frames exchanged during the span (both directions).
	Frames int `json:"frames,omitempty"`
	// BytesUp and BytesDown are the span's wire bytes including framing.
	BytesUp   int64 `json:"bytes_up,omitempty"`
	BytesDown int64 `json:"bytes_down,omitempty"`
	// Dur is the span's wall time.
	Dur time.Duration `json:"dur_ns,omitempty"`
	// Mode names the session's map-construction mode ("cdc"); empty for
	// the default recursive halving.
	Mode string `json:"mode,omitempty"`
	// Err carries the session error on a failed PhaseSession event.
	Err string `json:"err,omitempty"`
	// Candidates and Confirmed carry per-round engine diagnostics on
	// PhaseCoreRound events.
	Candidates int64 `json:"candidates,omitempty"`
	Confirmed  int64 `json:"confirmed,omitempty"`
}

// Tracer receives protocol span events. Implementations must be safe for
// concurrent use: parallel sessions may share one Tracer.
type Tracer interface {
	Emit(Event)
}

// sessionIDs is the process-wide session counter behind NextSessionID.
var sessionIDs atomic.Uint64

// NextSessionID returns a process-unique id for correlating the events of
// one sync session.
func NextSessionID() uint64 { return sessionIDs.Add(1) }

// Ring is an in-memory Tracer keeping the most recent events in a fixed
// ring buffer — the test and debugging tracer.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total int
}

// NewRing returns a ring tracer holding up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Emit implements Tracer.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total reports how many events were ever emitted (retained or not).
func (r *Ring) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Reset clears the ring.
func (r *Ring) Reset() {
	r.mu.Lock()
	r.buf = r.buf[:0]
	r.next = 0
	r.total = 0
	r.mu.Unlock()
}

// JSONL is a Tracer writing one JSON object per event to a stream — the
// CLI's -trace-out format. Write errors are sticky and inspectable via Err;
// emission never fails the session.
type JSONL struct {
	mu  sync.Mutex
	w   io.Writer
	c   io.Closer // nil when the writer is not owned
	err error
}

// NewJSONL returns a JSONL tracer over w. The caller keeps ownership of w.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{w: w} }

// OpenJSONL creates (or truncates) path and returns a JSONL tracer that owns
// the file; Close releases it.
func OpenJSONL(path string) (*JSONL, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &JSONL{w: f, c: f}, nil
}

// Emit implements Tracer.
func (t *JSONL) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		t.err = err
		return
	}
	b = append(b, '\n')
	if _, err := t.w.Write(b); err != nil {
		t.err = err
	}
}

// Err reports the first write/encode error, if any.
func (t *JSONL) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close closes the underlying file when the tracer owns one.
func (t *JSONL) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.c == nil {
		return t.err
	}
	cerr := t.c.Close()
	t.c = nil
	if t.err != nil {
		return t.err
	}
	return cerr
}
