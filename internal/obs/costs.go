package obs

import (
	"fmt"

	"msync/internal/stats"
)

// Session-level metric names. Byte counters are named
// "msync_bytes_<direction>_<phase>_total" per (direction, phase) cell of the
// stats.Costs matrix.
const (
	MetricSessions       = "msync_sessions_total"
	MetricSessionErrors  = "msync_session_errors_total"
	MetricSessionsActive = "msync_sessions_active"
	MetricSessionSeconds = "msync_session_duration_ns"
	MetricRetries        = "msync_retries_total"
)

// Stream-multiplexing metric names (hello extension 2). Server side.
const (
	// MetricStreamsActive gauges multiplexed streams currently in flight
	// across all sessions.
	MetricStreamsActive = "msync_streams_active"
	// MetricRoundsBatched counts map-construction rounds that shared a
	// cycle (and therefore a flush/roundtrip) with at least one other
	// stream's round — the work multiplexing saved from paying its own RTT.
	MetricRoundsBatched = "msync_rounds_batched"
)

// Version-store gauge names (see internal/store): updated by the msync layer
// after store opens and snapshots.
const (
	// MetricStoreVersions gauges the number of retained store versions.
	MetricStoreVersions = "msync_store_versions"
	// MetricStoreBytes gauges total store bytes on disk (segments + journal).
	MetricStoreBytes = "msync_store_bytes"
)

// Admission-control and accept-loop metric names (server side unless noted).
// The invariant dashboards lean on: conns_accepted == sessions_admitted +
// sessions_shed once the accept path has quiesced.
const (
	// MetricConnsAccepted counts connections the accept loop handed to the
	// admission layer.
	MetricConnsAccepted = "msync_conns_accepted_total"
	// MetricSessionsAdmitted counts connections that won a session slot.
	MetricSessionsAdmitted = "msync_sessions_admitted_total"
	// MetricSessionsShed counts connections refused with a BUSY answer
	// (queue full, or queued when shutdown began).
	MetricSessionsShed = "msync_sessions_shed_total"
	// MetricSessionsQueued gauges connections waiting for a session slot.
	MetricSessionsQueued = "msync_sessions_queued"
	// MetricAcceptRetries counts transient Accept failures survived via
	// backoff (EMFILE, ECONNABORTED, ...).
	MetricAcceptRetries = "msync_accept_retries_total"
	// MetricClientAborts counts sessions that died to a peer hang-up or
	// reset; MetricSessionFailures counts the server-side remainder.
	MetricClientAborts    = "msync_session_client_aborts_total"
	MetricSessionFailures = "msync_session_server_errors_total"
	// MetricBusyResponses counts BUSY answers observed by a client's
	// SyncTCP retry loop (client side).
	MetricBusyResponses = "msync_busy_responses_total"
)

// costCounters maps the scalar stats.Costs fields onto counter names.
var costCounters = []struct {
	name string
	get  func(*stats.Costs) int64
	set  func(*stats.Costs, int64)
}{
	{"msync_roundtrips_total", func(c *stats.Costs) int64 { return int64(c.Roundtrips) }, func(c *stats.Costs, v int64) { c.Roundtrips = int(v) }},
	{"msync_files_synced_total", func(c *stats.Costs) int64 { return int64(c.FilesSynced) }, func(c *stats.Costs, v int64) { c.FilesSynced = int(v) }},
	{"msync_files_unchanged_total", func(c *stats.Costs) int64 { return int64(c.FilesUnchanged) }, func(c *stats.Costs, v int64) { c.FilesUnchanged = int(v) }},
	{"msync_files_full_total", func(c *stats.Costs) int64 { return int64(c.FilesFull) }, func(c *stats.Costs, v int64) { c.FilesFull = int(v) }},
	{"msync_files_journal_total", func(c *stats.Costs) int64 { return int64(c.FilesJournal) }, func(c *stats.Costs, v int64) { c.FilesJournal = int(v) }},
	{"msync_store_journal_hits_total", func(c *stats.Costs) int64 { return c.JournalHits }, func(c *stats.Costs, v int64) { c.JournalHits = v }},
	{"msync_store_journal_misses_total", func(c *stats.Costs) int64 { return c.JournalMisses }, func(c *stats.Costs, v int64) { c.JournalMisses = v }},
	{"msync_hashes_sent_total", func(c *stats.Costs) int64 { return c.HashesSent }, func(c *stats.Costs, v int64) { c.HashesSent = v }},
	{"msync_candidates_found_total", func(c *stats.Costs) int64 { return c.CandidatesFound }, func(c *stats.Costs, v int64) { c.CandidatesFound = v }},
	{"msync_matches_confirmed_total", func(c *stats.Costs) int64 { return c.MatchesConfirmed }, func(c *stats.Costs, v int64) { c.MatchesConfirmed = v }},
	{"msync_false_candidates_total", func(c *stats.Costs) int64 { return c.FalseCandidates }, func(c *stats.Costs, v int64) { c.FalseCandidates = v }},
	{"msync_continuation_hashes_total", func(c *stats.Costs) int64 { return c.ContinuationHashes }, func(c *stats.Costs, v int64) { c.ContinuationHashes = v }},
	{"msync_block_hashes_computed_total", func(c *stats.Costs) int64 { return c.BlockHashesComputed }, func(c *stats.Costs, v int64) { c.BlockHashesComputed = v }},
	{"msync_bytes_hashed_total", func(c *stats.Costs) int64 { return c.BytesHashed }, func(c *stats.Costs, v int64) { c.BytesHashed = v }},
	{"msync_cache_hits_total", func(c *stats.Costs) int64 { return c.CacheHits }, func(c *stats.Costs, v int64) { c.CacheHits = v }},
	{"msync_cache_misses_total", func(c *stats.Costs) int64 { return c.CacheMisses }, func(c *stats.Costs, v int64) { c.CacheMisses = v }},
	{"msync_cache_evictions_total", func(c *stats.Costs) int64 { return c.CacheEvictions }, func(c *stats.Costs, v int64) { c.CacheEvictions = v }},
}

// byteCounterName returns the counter name for one cell of the byte matrix.
func byteCounterName(d stats.Direction, p stats.Phase) string {
	return fmt.Sprintf("msync_bytes_%s_%s_total", d, p)
}

// directions and phases enumerate the cost matrix for RecordCosts/CostsView.
var (
	directions = []stats.Direction{stats.C2S, stats.S2C}
	phases     = []stats.Phase{stats.PhaseControl, stats.PhaseMap, stats.PhaseDelta, stats.PhaseFull}
)

// RecordCosts folds one finished session's cost accounting into the
// registry's instrumented counters. Sessions keep their private stats.Costs
// (single-goroutine, allocation-free) during the run; this is the bridge
// that turns them into live metrics afterwards. Safe on a nil registry.
func RecordCosts(r *Registry, c *stats.Costs) {
	if r == nil || c == nil {
		return
	}
	for _, d := range directions {
		for _, p := range phases {
			r.Counter(byteCounterName(d, p)).Add(c.Bytes(d, p))
		}
	}
	for _, cc := range costCounters {
		r.Counter(cc.name).Add(cc.get(c))
	}
}

// CostsView reconstructs an aggregate stats.Costs from the registry's
// counters: the compatible snapshot view over everything recorded so far.
// Code written against Costs keeps working unmodified on live metrics.
func CostsView(r *Registry) stats.Costs {
	var c stats.Costs
	if r == nil {
		return c
	}
	for _, d := range directions {
		for _, p := range phases {
			c.Add(d, p, int(r.Counter(byteCounterName(d, p)).Value()))
		}
	}
	for _, cc := range costCounters {
		cc.set(&c, r.Counter(cc.name).Value())
	}
	return c
}
