package obs

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
)

// discardHandler is a slog.Handler that drops everything. (The stdlib gained
// slog.DiscardHandler in Go 1.24; this module still declares go 1.22, so we
// carry our own.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// NopLogger returns a logger that discards every record. Protocol code that
// accepts an optional *slog.Logger normalizes nil to this, so call sites can
// log unconditionally.
func NopLogger() *slog.Logger { return slog.New(discardHandler{}) }

// OrNop returns l, or the nop logger when l is nil.
func OrNop(l *slog.Logger) *slog.Logger {
	if l == nil {
		return NopLogger()
	}
	return l
}

// ParseLevel maps the CLI's -log-level values onto slog levels. Accepted:
// debug, info, warn, error (case-insensitive).
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
	}
}
