// Package obs is the repository's dependency-light observability layer: an
// atomic metrics registry (counters, gauges, fixed-bucket histograms) with
// expvar-style JSON and text export, a protocol tracer emitting span-like
// per-phase events, and log/slog helpers shared by the library and the CLIs.
//
// Everything here is optional and injectable. A nil *Registry, nil Tracer and
// nil *slog.Logger are valid everywhere they are accepted: the sync stack
// then does no extra work, allocates nothing for observability, and — the
// invariant the tests pin down — produces byte-identical traffic on the wire.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (negative n is ignored: counters only go
// up, and a buggy negative delta must not corrupt rate computations).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (e.g. active sessions). The zero
// value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc and Dec move the gauge by ±1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets (upper bounds, ascending,
// with an implicit +Inf bucket) and tracks count and sum. Observations and
// snapshots are lock-free.
type Histogram struct {
	bounds []int64 // immutable after construction
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

// newHistogram builds a histogram over the given bucket upper bounds. Bounds
// are copied and sorted; an empty layout degenerates to a single +Inf bucket.
func newHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistogramSnapshot is a consistent-enough copy of a histogram for export.
// (Per-bucket loads are individually atomic; a snapshot taken during
// concurrent observation may be off by in-flight increments, which is the
// standard contract for lock-free histograms.)
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra entry for
	// the +Inf bucket.
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// snapshot copies the histogram state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Fixed bucket layouts. Durations are in nanoseconds (1ms … 100s), sizes in
// bytes (64B … 1GB); both cover the protocol's realistic range in roughly
// decade steps so dashboards stay comparable across runs.
var (
	DurationBuckets = []int64{
		int64(time.Millisecond), int64(10 * time.Millisecond),
		int64(100 * time.Millisecond), int64(time.Second),
		int64(10 * time.Second), int64(100 * time.Second),
	}
	SizeBuckets = []int64{64, 1 << 10, 16 << 10, 256 << 10, 4 << 20, 64 << 20, 1 << 30}
)

// Registry is a concurrency-safe collection of named metrics. Metrics are
// created on first use and live for the registry's lifetime; lookup takes the
// registry lock but increments touch only the metric's own atomics, so hot
// paths should hold on to the returned metric. A nil *Registry is inert:
// every method returns a usable metric that is simply not exported.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return new(Counter)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use. Later calls return the existing histogram regardless
// of bounds, so one name always has one layout.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies all current metric values. Safe against concurrent
// registration and updates.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.snapshot()
	}
	return s
}

// WriteJSON renders the registry expvar-style: one flat JSON object with
// scalar values for counters and gauges and nested objects for histograms.
func (r *Registry) WriteJSON(w io.Writer) error {
	s := r.Snapshot()
	flat := make(map[string]any, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for k, v := range s.Counters {
		flat[k] = v
	}
	for k, v := range s.Gauges {
		flat[k] = v
	}
	for k, v := range s.Histograms {
		flat[k] = v
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(flat)
}

// WriteText renders the registry in a Prometheus-flavoured text format:
// "name value" lines, histograms expanded into cumulative le-labelled
// buckets plus _sum and _count. Names are sorted for deterministic output.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	var b strings.Builder
	names := make([]string, 0, len(s.Counters)+len(s.Gauges))
	for k := range s.Counters {
		names = append(names, k)
	}
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		v, ok := s.Counters[k]
		if !ok {
			v = s.Gauges[k]
		}
		fmt.Fprintf(&b, "%s %d\n", k, v)
	}
	hnames := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		hnames = append(hnames, k)
	}
	sort.Strings(hnames)
	for _, k := range hnames {
		h := s.Histograms[k]
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", k, bound, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", k, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n", k, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", k, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry over HTTP: JSON by default, the text format
// with ?format=text.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = r.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

// DebugMux builds the CLI's -debug-addr endpoint: the metrics registry at
// /metrics (and expvar-style at /debug/vars) plus the standard pprof
// handlers under /debug/pprof/.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
