package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"msync/internal/stats"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	c.Add(-7) // counters never go down
	if got := r.Counter("c").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Dec()
	g.Add(-3)
	if got := r.Gauge("g").Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 4 || s.Sum != 1022 {
		t.Fatalf("count/sum = %d/%d, want 4/1022", s.Count, s.Sum)
	}
	// Buckets: ≤10 gets {1, 10}; ≤100 gets {11}; +Inf gets {1000}.
	want := []int64{2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	// Same name returns the same histogram regardless of bounds.
	if r.Histogram("h", []int64{5}) != h {
		t.Fatal("histogram identity not stable per name")
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(3)
	r.Histogram("z", SizeBuckets).Observe(1)
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry exported metrics: %+v", s)
	}
	RecordCosts(nil, &stats.Costs{Roundtrips: 1})
	if c := CostsView(nil); c.Roundtrips != 0 {
		t.Fatal("nil registry CostsView not zero")
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("msync_a_total").Add(7)
	r.Gauge("msync_active").Set(2)
	h := r.Histogram("msync_dur", []int64{10})
	h.Observe(5)
	h.Observe(50)

	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"msync_a_total 7\n",
		"msync_active 2\n",
		"msync_dur_bucket{le=\"10\"} 1\n",
		"msync_dur_bucket{le=\"+Inf\"} 2\n",
		"msync_dur_sum 55\n",
		"msync_dur_count 2\n",
	} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text output missing %q:\n%s", want, text.String())
		}
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var flat map[string]any
	if err := json.Unmarshal(buf.Bytes(), &flat); err != nil {
		t.Fatalf("JSON export not parseable: %v\n%s", err, buf.String())
	}
	if flat["msync_a_total"].(float64) != 7 {
		t.Fatalf("JSON counter = %v", flat["msync_a_total"])
	}
}

func TestDebugMuxServesMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("msync_x_total").Inc()
	mux := DebugMux(r)
	for _, path := range []string{"/metrics", "/debug/vars"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 || !strings.Contains(rec.Body.String(), "msync_x_total") {
			t.Fatalf("%s: code %d body %q", path, rec.Code, rec.Body.String())
		}
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=text", nil))
	if !strings.Contains(rec.Body.String(), "msync_x_total 1") {
		t.Fatalf("text format: %q", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Fatalf("pprof endpoint: code %d", rec.Code)
	}
}

func TestRecordCostsRoundTrip(t *testing.T) {
	var c stats.Costs
	c.Add(stats.C2S, stats.PhaseControl, 10)
	c.Add(stats.S2C, stats.PhaseMap, 20)
	c.Add(stats.S2C, stats.PhaseDelta, 30)
	c.Add(stats.S2C, stats.PhaseFull, 40)
	c.Roundtrips = 3
	c.FilesSynced = 2
	c.FilesUnchanged = 5
	c.FilesFull = 1
	c.HashesSent = 100
	c.CandidatesFound = 50
	c.MatchesConfirmed = 40
	c.FalseCandidates = 10
	c.ContinuationHashes = 7
	c.BlockHashesComputed = 11
	c.BytesHashed = 1 << 20
	c.CacheHits = 4
	c.CacheMisses = 2
	c.CacheEvictions = 1

	r := NewRegistry()
	RecordCosts(r, &c)
	RecordCosts(r, &c)
	got := CostsView(r)
	want := c
	want.Merge(&c)
	if got != want {
		t.Fatalf("CostsView = %+v, want doubled %+v", got, want)
	}
	if got.Total() != 2*c.Total() {
		t.Fatalf("total = %d, want %d", got.Total(), 2*c.Total())
	}
}

func TestRingTracerWrapsAndOrders(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Emit(Event{Round: i})
	}
	evs := r.Events()
	if len(evs) != 3 || r.Total() != 5 {
		t.Fatalf("len=%d total=%d, want 3/5", len(evs), r.Total())
	}
	for i, want := range []int{3, 4, 5} {
		if evs[i].Round != want {
			t.Fatalf("events = %+v, want rounds 3,4,5 oldest first", evs)
		}
	}
	r.Reset()
	if len(r.Events()) != 0 || r.Total() != 0 {
		t.Fatal("reset did not clear the ring")
	}
}

func TestJSONLTracerWritesOneObjectPerLine(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf)
	tr.Emit(Event{Phase: PhaseRound, Round: 1, BytesUp: 10})
	tr.Emit(Event{Phase: PhaseSession, Dur: time.Second})
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("wrote %d lines, want 2", lines)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]string{
		"debug": "DEBUG", "info": "INFO", "WARN": "WARN", "warning": "WARN", "Error": "ERROR",
	} {
		lvl, err := ParseLevel(in)
		if err != nil || lvl.String() != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %s", in, lvl, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	l := NopLogger()
	l.Info("dropped", "k", "v") // must not panic
	if OrNop(nil) == nil || OrNop(l) != l {
		t.Fatal("OrNop wrong")
	}
}

// TestConcurrentRegistryAndTracer hammers one registry, ring and JSONL
// tracer from many goroutines (run under -race via make check) and checks
// the totals equal a serial run.
func TestConcurrentRegistryAndTracer(t *testing.T) {
	const workers, perWorker = 8, 500
	r := NewRegistry()
	ring := NewRing(64)
	jl := NewJSONL(&bytes.Buffer{})
	h := r.Histogram("h", DurationBuckets)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				h.Observe(int64(i))
				ev := Event{Session: NextSessionID(), Phase: PhaseRound, BytesUp: 1}
				ring.Emit(ev)
				jl.Emit(ev)
				RecordCosts(r, &stats.Costs{Roundtrips: 1})
			}
		}()
	}
	wg.Wait()
	total := int64(workers * perWorker)
	if got := r.Counter("c").Value(); got != total {
		t.Fatalf("counter = %d, want %d", got, total)
	}
	if got := h.Count(); got != total {
		t.Fatalf("histogram count = %d, want %d", got, total)
	}
	if got := ring.Total(); int64(got) != total {
		t.Fatalf("ring total = %d, want %d", got, total)
	}
	if got := CostsView(r).Roundtrips; int64(got) != total {
		t.Fatalf("roundtrips = %d, want %d", got, total)
	}
	if err := jl.Err(); err != nil {
		t.Fatal(err)
	}
}
