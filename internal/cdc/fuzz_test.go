package cdc

import (
	"errors"
	"testing"
)

// FuzzChunks checks the splitter's boundary invariants on arbitrary input:
// chunks tile the data exactly, every chunk length lies in [Min, Max] (the
// final chunk may undershoot Min at end-of-data), chunking is deterministic,
// and appending a suffix perturbs only chunks within Max of the splice —
// the concatenation's chunking must reproduce the prefix's chunking exactly
// up to the prefix's final chunk, which is the only chunk the splice may
// touch (chunk length is capped at Max, so it starts within Max of it).
func FuzzChunks(f *testing.F) {
	f.Add([]byte("hello, content-defined world"), uint8(11), uint8(2), 7)
	f.Add([]byte{}, uint8(6), uint8(1), 0)
	f.Add(make([]byte, 4096), uint8(8), uint8(8), 100)
	f.Fuzz(func(t *testing.T, data []byte, avgShift, maxFactor uint8, split int) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		// Derive valid params from the fuzz ints: Avg a power of two in
		// [64, 16384], Min just above the rolling window, Max a small
		// multiple of Avg.
		shift := 6 + int(avgShift)%9
		p := Params{Avg: 1 << shift}
		p.Min = p.Avg / 4
		if p.Min <= windowSize {
			p.Min = windowSize + 1
		}
		p.Max = p.Avg * (1 + int(maxFactor)%8)
		if !p.Valid() {
			t.Fatalf("derived invalid params %+v", p)
		}

		chunks, err := ChunksE(data, p)
		if err != nil {
			t.Fatalf("ChunksE(valid params): %v", err)
		}
		pos := 0
		for i, c := range chunks {
			if c.Off != pos {
				t.Fatalf("chunk %d at %d, want %d", i, c.Off, pos)
			}
			if c.Len <= 0 || c.Len > p.Max {
				t.Fatalf("chunk %d len %d outside (0, %d]", i, c.Len, p.Max)
			}
			if c.Len < p.Min && i != len(chunks)-1 {
				t.Fatalf("non-final chunk %d len %d < min %d", i, c.Len, p.Min)
			}
			pos += c.Len
		}
		if pos != len(data) {
			t.Fatalf("chunks cover %d of %d bytes", pos, len(data))
		}

		// Identical data ⇒ identical cuts.
		again, _ := ChunksE(data, p)
		if len(again) != len(chunks) {
			t.Fatalf("nondeterministic: %d vs %d chunks", len(again), len(chunks))
		}
		for i := range again {
			if again[i] != chunks[i] {
				t.Fatalf("nondeterministic chunk %d", i)
			}
		}

		// Splice locality: chunk a prefix alone, then the whole input. The
		// full input's chunking must begin with every prefix chunk except
		// the prefix's last (whose cut may have been forced by end-of-data).
		if len(data) < 2 {
			return
		}
		cut := split % len(data)
		if cut < 0 {
			cut = -cut % len(data)
		}
		prefix, _ := ChunksE(data[:cut], p)
		if len(prefix) < 2 {
			return
		}
		stable := prefix[:len(prefix)-1]
		if len(chunks) < len(stable) {
			t.Fatalf("concat has %d chunks, prefix has %d stable", len(chunks), len(stable))
		}
		for i, c := range stable {
			if chunks[i] != c {
				t.Fatalf("splice at %d perturbed chunk %d (off %d, %d from splice, max %d)",
					cut, i, c.Off, cut-c.Off, p.Max)
			}
		}
	})
}

func TestChunksETypedError(t *testing.T) {
	bad := []Params{
		{},
		{Min: 0, Avg: 1024, Max: 4096},
		{Min: 256, Avg: 1000, Max: 4096}, // avg not a power of two
		{Min: 4096, Avg: 8192, Max: 1024},
		{Min: 16, Avg: 64, Max: 128}, // min <= window
	}
	for i, p := range bad {
		if _, err := ChunksE([]byte("data"), p); !errors.Is(err, ErrBadParams) {
			t.Errorf("params %d: err = %v, want ErrBadParams", i, err)
		}
	}
	if got, err := ChunksE([]byte("data"), DefaultParams()); err != nil || len(got) != 1 {
		t.Fatalf("valid params: %d chunks, err %v", len(got), err)
	}
}
