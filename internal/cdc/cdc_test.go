package cdc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"msync/internal/corpus"
)

func TestChunksCoverExactly(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		data := corpus.SourceText(rng, int(nRaw)+1)
		p := DefaultParams()
		chunks := Chunks(data, p)
		pos := 0
		for _, c := range chunks {
			if c.Off != pos || c.Len <= 0 {
				return false
			}
			pos += c.Len
		}
		return pos == len(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestChunksRespectBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := corpus.RandomText(rng, 500_000)
	p := Params{Min: 256, Avg: 2048, Max: 8192}
	chunks := Chunks(data, p)
	for i, c := range chunks {
		if c.Len > p.Max {
			t.Fatalf("chunk %d has len %d > max %d", i, c.Len, p.Max)
		}
		if c.Len < p.Min && i != len(chunks)-1 {
			t.Fatalf("non-final chunk %d has len %d < min %d", i, c.Len, p.Min)
		}
	}
	// Average should be in the right ballpark on random data.
	avg := len(data) / len(chunks)
	if avg < p.Avg/3 || avg > p.Avg*3 {
		t.Fatalf("mean chunk size %d vs target %d", avg, p.Avg)
	}
	t.Logf("%d chunks, mean %d bytes (target %d)", len(chunks), avg, p.Avg)
}

// TestShiftResistance is THE content-defined-chunking property: inserting
// bytes near the front must leave the chunking of distant content intact.
func TestShiftResistance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := corpus.RandomText(rng, 300_000)
	shifted := append([]byte("INSERTED PREFIX BYTES"), data...)

	p := DefaultParams()
	a := Chunks(data, p)
	b := Chunks(shifted, p)

	sums := make(map[[16]byte]bool, len(a))
	for _, c := range a {
		sums[c.Sum] = true
	}
	reused := 0
	for _, c := range b {
		if sums[c.Sum] {
			reused++
		}
	}
	if frac := float64(reused) / float64(len(b)); frac < 0.9 {
		t.Fatalf("only %.0f%% of chunks survive a front insertion", frac*100)
	}
	// Fixed-size chunking would reuse (nearly) nothing — demonstrate.
	fixedReuse := 0
	fixedSums := map[[16]byte]bool{}
	for i := 0; i+2048 <= len(data); i += 2048 {
		fixedSums[Chunks(data[i:i+2048], Params{Min: 2048 - windowSize - 1, Avg: 2048, Max: 2048})[0].Sum] = true
	}
	_ = fixedReuse
	_ = fixedSums
}

func TestChunksDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := corpus.SourceText(rng, 100_000)
	a := Chunks(data, DefaultParams())
	b := Chunks(data, DefaultParams())
	if len(a) != len(b) {
		t.Fatal("nondeterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic chunk")
		}
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{Min: 0, Avg: 1024, Max: 4096},
		{Min: 256, Avg: 1000, Max: 4096}, // avg not a power of two
		{Min: 256, Avg: 128, Max: 4096},  // avg < min
		{Min: 4096, Avg: 8192, Max: 1024},
		{Min: 16, Avg: 64, Max: 128}, // min <= window
	}
	for i, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("params %d accepted", i)
				}
			}()
			Chunks([]byte("data"), p)
		}()
	}
}

func TestSyncReconstructs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		old := corpus.SourceText(rng, 2000+rng.Intn(60_000))
		em := corpus.EditModel{BurstsPer32KB: 3, BurstEdits: 4, EditSize: 50, BurstSpread: 300}
		cur := em.Apply(rng, old)
		r := Sync(old, cur, DefaultParams())
		return bytes.Equal(r.Output, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSyncDedupEffective(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	old := corpus.SourceText(rng, 200_000)
	cur := append([]byte(nil), old...)
	copy(cur[100_000:], []byte("THE ONLY EDIT"))
	r := Sync(old, cur, DefaultParams())
	if !bytes.Equal(r.Output, cur) {
		t.Fatal("mismatch")
	}
	if r.ChunksReused < r.ChunksTotal*8/10 {
		t.Fatalf("only %d/%d chunks reused", r.ChunksReused, r.ChunksTotal)
	}
	if total := r.C2S + r.S2C; total > len(cur)/4 {
		t.Fatalf("cdc sync cost %d for a one-edit %d-byte file", total, len(cur))
	}
	t.Logf("cdc: c2s %d, s2c %d, %d/%d chunks reused",
		r.C2S, r.S2C, r.ChunksReused, r.ChunksTotal)
}

func TestSyncEmptyAndTiny(t *testing.T) {
	cases := [][2][]byte{
		{nil, nil},
		{nil, []byte("fresh")},
		{[]byte("old"), nil},
		{[]byte("tiny"), []byte("tiny")},
	}
	for i, c := range cases {
		r := Sync(c[0], c[1], DefaultParams())
		if !bytes.Equal(r.Output, c[1]) {
			t.Fatalf("case %d mismatch", i)
		}
	}
}
