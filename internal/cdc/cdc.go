// Package cdc implements content-defined chunking and an LBFS-style
// deduplicating synchronization baseline.
//
// The paper's related work (§4) covers systems — LBFS, value-based web
// caching, protocol-independent duplicate suppression — that use Karp-Rabin
// fingerprints to split a byte stream into chunks at content-determined
// boundaries, so that both sides of a link chunk identical data identically
// regardless of insertions and deletions elsewhere. Exchanging chunk hashes
// then deduplicates transfers in a single roundtrip.
//
// This package provides that family as a comparison baseline: Chunks for
// the splitter and Sync for a one-roundtrip chunk-dedup file transfer.
package cdc

import (
	"bytes"
	"errors"
	"fmt"

	"msync/internal/delta"
	"msync/internal/md4"
	"msync/internal/rolling"
	"msync/internal/wire"
)

// Params controls the chunker. Avg must be a power of two; boundaries are
// declared where the rolling fingerprint's low log2(Avg) bits match a fixed
// pattern, giving Avg-byte chunks in expectation, clamped to [Min, Max].
type Params struct {
	Min, Avg, Max int
}

// DefaultParams mirrors LBFS's 2K/8K/64K choices scaled down for the
// smaller files in this repository's experiments.
func DefaultParams() Params { return Params{Min: 256, Avg: 2048, Max: 16384} }

// Valid reports whether the parameters are usable.
func (p Params) Valid() bool {
	return p.Min > 0 && p.Max >= p.Min && p.Avg >= p.Min && p.Avg <= p.Max &&
		p.Avg&(p.Avg-1) == 0 && p.Min > windowSize
}

// windowSize is the rolling fingerprint window for boundary detection.
const windowSize = 48

// boundaryMagic is the pattern the fingerprint's low bits must equal at a
// chunk boundary. Any constant works; both sides must agree.
const boundaryMagic = 0x1D3F

// Chunk is one content-defined chunk of a byte stream.
type Chunk struct {
	Off, Len int
	Sum      [md4.Size]byte
}

// ErrBadParams is wrapped by ChunksE (and by the map-mode negotiation path
// built on it) when the chunking parameters are unusable.
var ErrBadParams = errors.New("cdc: invalid params")

// Chunks splits data into content-defined chunks. The split points depend
// only on local content (within Max bytes), so an insertion or deletion
// perturbs only nearby chunks — the property that makes chunk hashes
// comparable across file versions.
//
// Chunks panics on invalid Params; callers handling untrusted or
// user-supplied parameters should use ChunksE instead.
func Chunks(data []byte, p Params) []Chunk {
	out, err := ChunksE(data, p)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// ChunksE is Chunks with parameter validation reported as an error instead
// of a panic: invalid Params return an error wrapping ErrBadParams. This is
// the entry point for configuration paths (CLI flags, mode negotiation)
// where a bad value must surface as a diagnostic, never a crash.
func ChunksE(data []byte, p Params) ([]Chunk, error) {
	cuts, err := CutsE(data, p)
	if err != nil {
		return nil, err
	}
	out := make([]Chunk, len(cuts))
	start := 0
	for i, cut := range cuts {
		out[i] = Chunk{Off: start, Len: cut - start, Sum: md4.Sum(data[start:cut])}
		start = cut
	}
	return out, nil
}

// CutsE returns the content-defined chunk end offsets of data (the last cut
// is always len(data)) without hashing the chunks — the boundary scan alone.
// Map-construction callers that hash chunks with their own hash family use
// this to avoid a wasted strong hash per chunk. Invalid Params return an
// error wrapping ErrBadParams.
func CutsE(data []byte, p Params) ([]int, error) {
	if !p.Valid() {
		return nil, fmt.Errorf("%w: min=%d avg=%d max=%d (need 0 < %d < min <= avg <= max, avg a power of two)",
			ErrBadParams, p.Min, p.Avg, p.Max, windowSize)
	}
	var out []int
	mask := uint64(p.Avg - 1)
	magic := uint64(boundaryMagic) & mask
	poly := rolling.Default()
	// The polynomial family's diffusion table holds odd values, so bit 0 of
	// a fixed-window hash is the window parity — constant. Judge boundaries
	// on bits [1, log2(Avg)+1) instead.
	sum := func(r *rolling.Roller) uint64 { return (r.Sum() >> 1) & mask }

	start := 0
	for start < len(data) {
		end := start + p.Max
		if end > len(data) {
			end = len(data)
		}
		cut := end
		if end-start > p.Min {
			roller := poly.NewRoller(windowSize)
			// Begin scanning at Min; the window covers the preceding bytes.
			pos := start + p.Min
			roller.Init(data[pos-windowSize:])
			for pos < end {
				if sum(roller) == magic {
					cut = pos
					break
				}
				if pos+1 >= end {
					break
				}
				roller.Roll(data[pos-windowSize], data[pos])
				pos++
			}
		}
		out = append(out, cut)
		start = cut
	}
	return out, nil
}

// Result reports one LBFS-style transfer.
type Result struct {
	// C2S is the client→server cost: one hash per old-file chunk.
	C2S int
	// S2C is the server→client cost: the chunk reference/literal stream.
	S2C int
	// Output is the reconstructed file.
	Output []byte
	// ChunksTotal and ChunksReused count the server-side chunks.
	ChunksTotal, ChunksReused int
}

// HashLen is the truncated chunk-hash length sent over the wire. 8 bytes
// keeps collision probability negligible at these chunk counts.
const HashLen = 8

// Sync runs the one-roundtrip chunk-dedup protocol with both sides local:
// the client announces the hashes of its old file's chunks, the server
// replies with a stream of chunk references and compressed literals.
func Sync(old, cur []byte, p Params) Result {
	oldChunks := Chunks(old, p)
	res := Result{C2S: 8 + len(oldChunks)*HashLen}

	have := make(map[[HashLen]byte]int, len(oldChunks))
	for i, c := range oldChunks {
		var k [HashLen]byte
		copy(k[:], c.Sum[:HashLen])
		have[k] = i
	}

	// Server side: chunk the current file, emit refs or literals.
	stream := wire.NewBuffer(1024)
	curChunks := Chunks(cur, p)
	var litBuf []byte
	for _, c := range curChunks {
		res.ChunksTotal++
		var k [HashLen]byte
		copy(k[:], c.Sum[:HashLen])
		if idx, ok := have[k]; ok {
			res.ChunksReused++
			stream.Uvarint(uint64(idx) + 1)
			continue
		}
		stream.Uvarint(0)
		stream.Uvarint(uint64(c.Len))
		litBuf = append(litBuf, cur[c.Off:c.Off+c.Len]...)
	}
	comp := delta.Compress(litBuf)
	res.S2C = stream.Len() + len(comp) + md4.Size

	// Client side: reconstruct.
	lits, err := delta.Decompress(comp)
	if err != nil {
		panic("cdc: internal compression error: " + err.Error())
	}
	parser := wire.NewParser(stream.Build())
	var out []byte
	litPos := 0
	for range curChunks {
		v, err := parser.Uvarint()
		if err != nil {
			panic("cdc: internal stream error")
		}
		if v > 0 {
			oc := oldChunks[v-1]
			out = append(out, old[oc.Off:oc.Off+oc.Len]...)
			continue
		}
		l, err := parser.Uvarint()
		if err != nil {
			panic("cdc: internal stream error")
		}
		out = append(out, lits[litPos:litPos+int(l)]...)
		litPos += int(l)
	}
	// The whole-file check (counted in S2C above) guards hash collisions.
	if !bytes.Equal(out, cur) {
		res.S2C += len(delta.Compress(cur))
		out = append([]byte(nil), cur...)
	}
	res.Output = out
	return res
}
