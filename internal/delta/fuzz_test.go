package delta

import (
	"bytes"
	"testing"
)

// FuzzDecode: arbitrary bytes must never panic the decoder, and valid
// encodings must round-trip.
func FuzzDecode(f *testing.F) {
	ref := []byte("the reference content with some repeated repeated text")
	f.Add(ref, Encode(ref, []byte("the reference content, edited with repeated text")))
	f.Add([]byte{}, Encode(nil, []byte("self-compressed payload payload payload")))
	f.Add(ref, []byte{})
	f.Add(ref, []byte{0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, refIn, enc []byte) {
		out, err := Decode(refIn, enc)
		if err == nil && len(out) > 1<<24 {
			t.Fatalf("implausible output size %d", len(out))
		}
	})
}

// FuzzEncodeDecode: every (ref, target) pair must round-trip exactly.
func FuzzEncodeDecode(f *testing.F) {
	f.Add([]byte("reference"), []byte("target based on reference"))
	f.Add([]byte{}, []byte{})
	f.Add([]byte("aaaa"), bytes.Repeat([]byte("a"), 300))
	f.Fuzz(func(t *testing.T, ref, target []byte) {
		if len(ref) > 1<<16 || len(target) > 1<<16 {
			t.Skip()
		}
		got, err := Decode(ref, Encode(ref, target))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !bytes.Equal(got, target) {
			t.Fatal("round trip mismatch")
		}
	})
}
