// Package delta implements a reference-based delta compressor and
// decompressor — this repository's stand-in for the zdelta/vcdiff tools the
// paper uses (see DESIGN.md, substitutions table).
//
// Encode(ref, target) produces a compact encoding of target that Decode can
// reconstruct given the same ref. The encoder runs an LZ77-style greedy parse
// (with one-step lazy matching) over a hash-chain index covering both the
// reference and the already-emitted target prefix, then entropy-codes the
// resulting copy/literal operations with canonical Huffman codes
// (internal/huffman).
//
// Reference copies use zdelta-style relative addressing: the position of a
// reference copy is encoded as a signed delta from the byte just past the
// previous reference copy, which makes long runs of in-order matches (the
// dominant pattern between file versions) nearly free to address.
//
// With an empty reference, Encode degrades to a plain self-referential
// compressor, which the rsync baseline uses to compress its literal stream
// (standing in for rsync's gzip pass).
package delta

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"msync/internal/bitio"
	"msync/internal/huffman"
)

const (
	// MinMatch is the shortest copy the encoder will emit.
	MinMatch = 4
	// maxMatch caps a single copy op; longer matches span several ops.
	maxMatch = 1 << 20
	// hashBits sizes the seed hash table.
	hashBits = 17
	// maxChain bounds hash-chain traversal per position.
	maxChain = 64
	// symEOB terminates the op stream.
	symEOB = 256
	// symLenBase is the first length-code symbol.
	symLenBase = 257
	// numLenCodes: lengths d = L-MinMatch; d<8 direct, then bucketed by bit
	// length up to 35 bits (values to ~34 GB, far beyond any single file).
	numLenCodes = 8 + 32
	// mainAlphabet is literals + EOB + length codes.
	mainAlphabet = symLenBase + numLenCodes
	// numOffCodes: same bucketing for offsets/deltas.
	numOffCodes = 8 + 32
)

// ErrCorrupt is returned by Decode when the delta stream is malformed.
var ErrCorrupt = errors.New("delta: corrupt stream")

// Op is one parsed operation, exposed so alternative encoders (e.g. the
// VCDIFF format in internal/vcdiff) can reuse the parser.
type Op struct {
	// Literal is non-nil for literal runs.
	Literal []byte
	// Length is the copy length.
	Length int
	// FromRef selects the copy source: the reference (true) or the already
	// produced target prefix (false).
	FromRef bool
	// RefPos is the absolute reference position of a reference copy.
	RefPos int
	// Dist is the distance back into the target of a self copy.
	Dist int
}

// bucket maps a non-negative value to (code, extraBits, extraVal).
func bucket(v int) (code int, extraBits uint, extraVal uint64) {
	if v < 8 {
		return v, 0, 0
	}
	nb := bits.Len(uint(v)) // >= 4
	return 8 + nb - 4, uint(nb - 1), uint64(v) - 1<<(nb-1)
}

// unbucket reverses bucket given the code and a bit reader for extras.
func unbucket(code int, r *bitio.Reader) (int, error) {
	if code < 8 {
		return code, nil
	}
	nb := code - 8 + 4
	extra, err := r.ReadBits(uint(nb - 1))
	if err != nil {
		return 0, err
	}
	return 1<<(nb-1) + int(extra), nil
}

// zigzag encodes a signed int as unsigned.
func zigzag(v int) int {
	if v < 0 {
		return -2*v - 1
	}
	return 2 * v
}

func unzigzag(v int) int {
	if v&1 == 1 {
		return -(v + 1) / 2
	}
	return v / 2
}

func seedHash(p []byte) uint32 {
	v := binary.LittleEndian.Uint32(p)
	return (v * 2654435761) >> (32 - hashBits)
}

// index is a hash-chain match index over a virtual address space:
// positions [0, len(ref)) are reference bytes, positions >= len(ref) are
// target bytes (at pos-len(ref)).
type index struct {
	ref, target []byte
	head        []int32
	prev        []int32 // chains for target positions only
	refPrev     []int32 // chains for ref positions
}

func newIndex(ref, target []byte) *index {
	ix := &index{
		ref:    ref,
		target: target,
		head:   make([]int32, 1<<hashBits),
	}
	for i := range ix.head {
		ix.head[i] = -1
	}
	if len(ref) >= MinMatch {
		ix.refPrev = make([]int32, len(ref))
		for i := 0; i+MinMatch <= len(ref); i++ {
			h := seedHash(ref[i:])
			ix.refPrev[i] = ix.head[h]
			ix.head[h] = int32(i)
		}
	}
	ix.prev = make([]int32, len(target))
	return ix
}

// insert adds target position q to the index.
func (ix *index) insert(q int) {
	if q+MinMatch > len(ix.target) {
		return
	}
	h := seedHash(ix.target[q:])
	ix.prev[q] = ix.head[h]
	ix.head[h] = int32(len(ix.ref) + q)
}

// at returns the byte slice starting at virtual position p.
func (ix *index) at(p int) []byte {
	if p < len(ix.ref) {
		return ix.ref[p:]
	}
	return ix.target[p-len(ix.ref):]
}

// chainNext follows the hash chain from virtual position p.
func (ix *index) chainNext(p int) int32 {
	if p < len(ix.ref) {
		return ix.refPrev[p]
	}
	return ix.prev[p-len(ix.ref)]
}

func matchLen(a, b []byte, max int) int {
	if len(a) < max {
		max = len(a)
	}
	if len(b) < max {
		max = len(b)
	}
	i := 0
	for i+8 <= max {
		x := binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:])
		if x != 0 {
			return i + bits.TrailingZeros64(x)/8
		}
		i += 8
	}
	for i < max && a[i] == b[i] {
		i++
	}
	return i
}

// bestMatch finds the longest match for target[i:] in the index.
// lastRef biases tie-breaks toward cheap-to-address ref positions.
func (ix *index) bestMatch(i, lastRef int) (length int, fromRef bool, srcPos int) {
	t := ix.target
	if i+MinMatch > len(t) {
		return 0, false, 0
	}
	h := seedHash(t[i:])
	limit := len(t) - i
	if limit > maxMatch {
		limit = maxMatch
	}
	bestLen := 0
	bestPos := -1
	tries := maxChain
	for p := ix.head[h]; p >= 0 && tries > 0; p = ix.chainNext(int(p)) {
		tries--
		pos := int(p)
		var l int
		if pos >= len(ix.ref) {
			// Target self-copy: source must be strictly before i.
			q := pos - len(ix.ref)
			if q >= i {
				continue
			}
			l = matchLen(t[q:], t[i:], limit)
		} else {
			l = matchLen(ix.ref[pos:], t[i:], limit)
		}
		if l > bestLen || (l == bestLen && bestPos >= 0 && cheaper(pos, bestPos, lastRef, i, len(ix.ref))) {
			bestLen, bestPos = l, pos
		}
		if bestLen >= limit {
			break
		}
	}
	if bestLen < MinMatch {
		return 0, false, 0
	}
	if bestPos < len(ix.ref) {
		return bestLen, true, bestPos
	}
	return bestLen, false, bestPos - len(ix.ref)
}

// cheaper reports whether virtual position a is cheaper to address than b.
func cheaper(a, b, lastRef, i, refLen int) bool {
	return addrCost(a, lastRef, i, refLen) < addrCost(b, lastRef, i, refLen)
}

func addrCost(p, lastRef, i, refLen int) int {
	if p < refLen {
		return bits.Len(uint(zigzag(p - lastRef)))
	}
	return bits.Len(uint(i - (p - refLen)))
}

// Parse produces the operation stream encoding target relative to ref:
// a greedy LZ parse (with one-step lazy matching) over a hash-chain index
// of the reference and the emitted target prefix.
func Parse(ref, target []byte) []Op {
	var ops []Op
	ix := newIndex(ref, target)
	lastRef := 0
	litStart := 0
	i := 0
	flushLit := func(end int) {
		if end > litStart {
			ops = append(ops, Op{Literal: target[litStart:end]})
		}
	}
	for i < len(target) {
		l, fromRef, pos := ix.bestMatch(i, lastRef)
		if l >= MinMatch {
			// One-step lazy: a longer match starting at i+1 wins.
			if i+1 < len(target) {
				l2, fr2, pos2 := ix.bestMatch(i+1, lastRef)
				if l2 > l+1 {
					ix.insert(i)
					i++
					l, fromRef, pos = l2, fr2, pos2
				}
			}
			flushLit(i)
			ops = append(ops, Op{Length: l, FromRef: fromRef, RefPos: pos, Dist: i - pos})
			// Index a sample of positions inside the match. Indexing every
			// position is O(n) anyway and improves later matches.
			end := i + l
			for q := i; q < end; q++ {
				ix.insert(q)
			}
			if fromRef {
				lastRef = pos + l
			}
			i = end
			litStart = i
			continue
		}
		ix.insert(i)
		i++
	}
	flushLit(len(target))
	return ops
}

// Encode produces a delta of target relative to ref.
func Encode(ref, target []byte) []byte {
	ops := Parse(ref, target)

	// Pass 1: frequencies.
	mainFreq := make([]int64, mainAlphabet)
	offFreq := make([]int64, numOffCodes)
	mainFreq[symEOB]++
	for _, o := range ops {
		if o.Literal != nil {
			for _, b := range o.Literal {
				mainFreq[b]++
			}
			continue
		}
		c, _, _ := bucket(o.Length - MinMatch)
		mainFreq[symLenBase+c]++
	}
	// Offsets need the same lastRef walk as emission; do it once here.
	lastRef := 0
	for _, o := range ops {
		if o.Literal != nil {
			continue
		}
		var v int
		if o.FromRef {
			v = zigzag(o.RefPos - lastRef)
			lastRef = o.RefPos + o.Length
		} else {
			v = o.Dist
		}
		c, _, _ := bucket(v)
		offFreq[c]++
	}

	mainCode, err := huffman.Build(mainFreq)
	if err != nil {
		panic(err) // alphabet sizes are compile-time constants well under limits
	}
	offCode, err := huffman.Build(offFreq)
	if err != nil {
		panic(err)
	}

	// Pass 2: emit.
	w := bitio.NewWriter(len(target)/2 + 64)
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(target)))
	w.WriteBytes(hdr[:n])
	w.WriteBytes([]byte{modeHuffman})
	mainCode.WriteTable(w)
	offCode.WriteTable(w)

	lastRef = 0
	for _, o := range ops {
		if o.Literal != nil {
			for _, b := range o.Literal {
				mustEncode(mainCode, w, int(b))
			}
			continue
		}
		c, nb, ev := bucket(o.Length - MinMatch)
		mustEncode(mainCode, w, symLenBase+c)
		w.WriteBits(ev, nb)
		w.WriteBit(o.FromRef)
		var v int
		if o.FromRef {
			v = zigzag(o.RefPos - lastRef)
			lastRef = o.RefPos + o.Length
		} else {
			v = o.Dist
		}
		oc, onb, oev := bucket(v)
		mustEncodeOff(offCode, w, oc)
		w.WriteBits(oev, onb)
	}
	mustEncode(mainCode, w, symEOB)
	out := w.Bytes()
	// Stored fallback: incompressible targets (or tiny ones dominated by
	// table overhead) are shipped raw, bounding expansion to the header.
	if len(out) >= len(target)+storedOverhead(len(target)) {
		raw := make([]byte, 0, len(target)+storedOverhead(len(target)))
		raw = binary.AppendUvarint(raw, uint64(len(target)))
		raw = append(raw, modeStored)
		return append(raw, target...)
	}
	return out
}

// Encoding modes: the byte after the target-length varint.
const (
	modeHuffman byte = 0
	modeStored  byte = 1
)

// storedOverhead is the header size of a stored-mode delta.
func storedOverhead(targetLen int) int {
	var tmp [binary.MaxVarintLen64]byte
	return binary.PutUvarint(tmp[:], uint64(targetLen)) + 1
}

func mustEncode(c *huffman.Code, w *bitio.Writer, sym int) {
	if err := c.Encode(w, sym); err != nil {
		panic(fmt.Sprintf("delta: encode %d: %v", sym, err))
	}
}

func mustEncodeOff(c *huffman.Code, w *bitio.Writer, sym int) {
	if err := c.Encode(w, sym); err != nil {
		panic(fmt.Sprintf("delta: encode offset %d: %v", sym, err))
	}
}

// Decode reconstructs the target from ref and a delta produced by Encode.
func Decode(ref, enc []byte) ([]byte, error) {
	targetLen, n := binary.Uvarint(enc)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	if targetLen > 1<<32 {
		return nil, fmt.Errorf("delta: implausible target length %d", targetLen)
	}
	if len(enc) <= n {
		return nil, ErrCorrupt
	}
	switch enc[n] {
	case modeStored:
		body := enc[n+1:]
		if uint64(len(body)) != targetLen {
			return nil, ErrCorrupt
		}
		return append([]byte(nil), body...), nil
	case modeHuffman:
		// fall through to the entropy-coded path
	default:
		return nil, fmt.Errorf("delta: unknown mode %d", enc[n])
	}
	r := bitio.NewReader(enc[n+1:])
	mainDec, err := huffman.ReadTable(r)
	if err != nil {
		return nil, fmt.Errorf("delta: main table: %w", err)
	}
	offDec, err := huffman.ReadTable(r)
	if err != nil {
		return nil, fmt.Errorf("delta: offset table: %w", err)
	}
	out := make([]byte, 0, targetLen)
	lastRef := 0
	for uint64(len(out)) < targetLen {
		sym, err := mainDec.Decode(r)
		if err != nil {
			return nil, fmt.Errorf("delta: %w", err)
		}
		switch {
		case sym < 256:
			out = append(out, byte(sym))
		case sym == symEOB:
			return nil, ErrCorrupt // premature EOB
		default:
			d, err := unbucket(sym-symLenBase, r)
			if err != nil {
				return nil, err
			}
			length := d + MinMatch
			fromRef, err := r.ReadBit()
			if err != nil {
				return nil, err
			}
			oc, err := offDec.Decode(r)
			if err != nil {
				return nil, err
			}
			v, err := unbucket(oc, r)
			if err != nil {
				return nil, err
			}
			if uint64(len(out))+uint64(length) > targetLen {
				return nil, ErrCorrupt
			}
			if fromRef {
				pos := lastRef + unzigzag(v)
				if pos < 0 || pos+length > len(ref) {
					return nil, ErrCorrupt
				}
				out = append(out, ref[pos:pos+length]...)
				lastRef = pos + length
			} else {
				start := len(out) - v
				if start < 0 || v == 0 {
					return nil, ErrCorrupt
				}
				// Byte-wise copy: overlapping self-copies are legal.
				for k := 0; k < length; k++ {
					out = append(out, out[start+k])
				}
			}
		}
	}
	sym, err := mainDec.Decode(r)
	if err != nil || sym != symEOB {
		return nil, ErrCorrupt
	}
	return out, nil
}

// CompressedSize returns the encoded size of target against ref without
// retaining the encoding. Used by cost-model experiments.
func CompressedSize(ref, target []byte) int {
	return len(Encode(ref, target))
}

// Compress is self-referential compression (no external reference).
func Compress(data []byte) []byte { return Encode(nil, data) }

// Decompress reverses Compress.
func Decompress(enc []byte) ([]byte, error) { return Decode(nil, enc) }
