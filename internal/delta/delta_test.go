package delta

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"msync/internal/bitio"
	"msync/internal/corpus"
)

func checkRoundTrip(t *testing.T, ref, target []byte) {
	t.Helper()
	enc := Encode(ref, target)
	got, err := Decode(ref, enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got, target) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(target))
	}
}

func TestRoundTripBasics(t *testing.T) {
	cases := []struct{ ref, target string }{
		{"", ""},
		{"", "hello"},
		{"hello", ""},
		{"hello world", "hello world"},
		{"hello world", "hello brave new world"},
		{"abcabcabc", "abcabcabcabcabc"},
		{"x", "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"}, // overlapping self-copy
		{"the quick brown fox", "the quick red fox jumped"},
	}
	for i, c := range cases {
		t.Run("", func(t *testing.T) {
			checkRoundTrip(t, []byte(c.ref), []byte(c.target))
			_ = i
		})
	}
}

func TestQuickRoundTripRandom(t *testing.T) {
	f := func(ref, target []byte) bool {
		enc := Encode(ref, target)
		got, err := Decode(ref, enc)
		return err == nil && bytes.Equal(got, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRoundTripSimilar exercises the realistic case: target is an
// edited version of ref.
func TestQuickRoundTripSimilar(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := corpus.SourceText(rng, 2000+rng.Intn(8000))
		em := corpus.EditModel{BurstsPer32KB: 8, BurstEdits: 4, EditSize: 30, BurstSpread: 200}
		target := em.Apply(rng, ref)
		enc := Encode(ref, target)
		got, err := Decode(ref, enc)
		return err == nil && bytes.Equal(got, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCompressionEffective: a small edit to a large file must produce a
// delta far smaller than the file.
func TestCompressionEffective(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := corpus.SourceText(rng, 100_000)
	target := append([]byte(nil), ref...)
	copy(target[50_000:], []byte("THIS PART WAS EDITED"))
	enc := Encode(ref, target)
	if len(enc) > 600 {
		t.Fatalf("delta of a 20-byte edit is %d bytes", len(enc))
	}
	// Self-compression of structured text should also beat raw size.
	comp := Compress(ref)
	if len(comp) > len(ref)/2 {
		t.Fatalf("self-compression: %d of %d bytes", len(comp), len(ref))
	}
}

// TestDeltaBeatsSelfCompression: with a similar reference available, the
// delta must be much smaller than compressing the target alone.
func TestDeltaBeatsSelfCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := corpus.SourceText(rng, 60_000)
	em := corpus.EditModel{BurstsPer32KB: 2, BurstEdits: 3, EditSize: 40, BurstSpread: 200}
	target := em.Apply(rng, ref)
	d := len(Encode(ref, target))
	s := len(Compress(target))
	if d*5 > s {
		t.Fatalf("delta %d not clearly smaller than self-compression %d", d, s)
	}
}

// TestStoredFallbackBoundsExpansion: random (incompressible) data must not
// expand beyond the stored-mode header.
func TestStoredFallbackBoundsExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 10, 1000, 100_000} {
		data := corpus.RandomText(rng, n)
		enc := Compress(data)
		if len(enc) > n+12 {
			t.Fatalf("size %d: compressed to %d (expansion beyond header)", n, len(enc))
		}
		got, err := Decompress(enc)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("size %d: round trip failed: %v", n, err)
		}
	}
}

func TestDecodeRejectsUnknownMode(t *testing.T) {
	bad := []byte{5, 99, 1, 2, 3, 4, 5} // len 5, mode 99
	if _, err := Decode(nil, bad); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := Decode(nil, []byte{5}); err == nil {
		t.Fatal("missing mode byte accepted")
	}
}

func TestCompressDecompress(t *testing.T) {
	f := func(data []byte) bool {
		got, err := Decompress(Compress(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptionDetected: random corruption must error, never return wrong
// data silently... except payload-only bit flips that survive decoding; we
// only require no panics and (mostly) errors.
func TestCorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := corpus.SourceText(rng, 5000)
	target := corpus.SourceText(rng, 5000)
	enc := Encode(ref, target)
	errors := 0
	for trial := 0; trial < 200; trial++ {
		bad := append([]byte(nil), enc...)
		switch trial % 3 {
		case 0: // truncate
			bad = bad[:rng.Intn(len(bad))]
		case 1: // flip a bit
			bad[rng.Intn(len(bad))] ^= 1 << uint(rng.Intn(8))
		default: // garbage tail
			bad = append(bad, byte(rng.Intn(256)))
		}
		got, err := Decode(ref, bad)
		if err != nil {
			errors++
			continue
		}
		// Silent success must at least not corrupt memory; equality to the
		// target is possible for the appended-garbage case.
		_ = got
	}
	if errors < 100 {
		t.Fatalf("only %d/200 corruptions detected", errors)
	}
}

func TestDecodeRejectsBadRefCopies(t *testing.T) {
	// Deltas against a different (shorter) reference must fail cleanly.
	rng := rand.New(rand.NewSource(6))
	ref := corpus.SourceText(rng, 8000)
	target := append(append([]byte(nil), ref[:4000]...), corpus.SourceText(rng, 100)...)
	enc := Encode(ref, target)
	if _, err := Decode(ref[:100], enc); err == nil {
		t.Fatal("decode against truncated reference succeeded")
	}
}

func TestImplausibleLength(t *testing.T) {
	// A corrupt header with an absurd target length must be rejected before
	// allocation.
	bad := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := Decode(nil, bad); err == nil {
		t.Fatal("implausible length accepted")
	}
}

func TestBucketRoundTrip(t *testing.T) {
	for _, v := range []int{0, 1, 7, 8, 9, 15, 16, 100, 1000, 1 << 20, 1<<30 + 12345} {
		code, nb, ev := bucket(v)
		w := &bitio.Writer{}
		w.WriteBits(ev, nb)
		r := bitio.NewReader(w.Bytes())
		got, err := unbucket(code, r)
		if err != nil || got != v {
			t.Fatalf("bucket(%d): got %d err %v", v, got, err)
		}
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int{0, 1, -1, 2, -2, 1 << 30, -(1 << 30)} {
		if unzigzag(zigzag(v)) != v {
			t.Fatalf("zigzag(%d)", v)
		}
		if zigzag(v) < 0 {
			t.Fatalf("zigzag(%d) negative", v)
		}
	}
}

func TestMatchLen(t *testing.T) {
	a := []byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaab")
	b := []byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")
	if got := matchLen(a, b, 100); got != 30 {
		t.Fatalf("matchLen = %d, want 30", got)
	}
	if got := matchLen(a, b, 10); got != 10 {
		t.Fatalf("capped matchLen = %d, want 10", got)
	}
	if got := matchLen(nil, b, 10); got != 0 {
		t.Fatalf("empty matchLen = %d", got)
	}
}

func BenchmarkEncodeSimilar64K(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	ref := corpus.SourceText(rng, 64<<10)
	em := corpus.EditModel{BurstsPer32KB: 2, BurstEdits: 4, EditSize: 50, BurstSpread: 300}
	target := em.Apply(rng, ref)
	b.SetBytes(int64(len(target)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(ref, target)
	}
}

func BenchmarkDecode64K(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	ref := corpus.SourceText(rng, 64<<10)
	em := corpus.EditModel{BurstsPer32KB: 2, BurstEdits: 4, EditSize: 50, BurstSpread: 300}
	target := em.Apply(rng, ref)
	enc := Encode(ref, target)
	b.SetBytes(int64(len(target)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(ref, enc); err != nil {
			b.Fatal(err)
		}
	}
}
