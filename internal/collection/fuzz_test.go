package collection

import (
	"testing"

	"msync/internal/core"
)

// FuzzManifestDecode: arbitrary manifest bytes must never panic.
func FuzzManifestDecode(f *testing.F) {
	f.Add(encodeManifest(BuildManifest(map[string][]byte{"a/b": []byte("x")})))
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err == nil && len(m) > 1<<20 {
			t.Fatal("implausible manifest size")
		}
	})
}

// FuzzConfigDecode: arbitrary config bytes must never panic and only yield
// validated configurations.
func FuzzConfigDecode(f *testing.F) {
	cfg := core.DefaultConfig()
	f.Add(encodeConfig(&cfg))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := decodeConfig(data)
		if err == nil {
			if verr := c.Validate(); verr != nil {
				t.Fatalf("decode accepted invalid config: %v", verr)
			}
		}
	})
}
