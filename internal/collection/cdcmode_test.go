package collection

import (
	"testing"

	"msync/internal/core"
	"msync/internal/corpus"
	"msync/internal/obs"
)

// cdcSession runs one sync with the client requesting CDC map construction
// (hello extension 4) and returns both sides' results.
func cdcSession(t *testing.T, serverFiles, clientFiles map[string][]byte, tune func(*Server, *Client)) (*Result, *Result) {
	t.Helper()
	cfg := core.DefaultConfig()
	res, serverCosts := func() (*Result, *Result) {
		r, sc := muxSession(t, serverFiles, clientFiles, cfg, 0, 1, func(s *Server, c *Client) {
			c.MapMode = core.MapCDC
			if tune != nil {
				tune(s, c)
			}
		})
		return r, &Result{Costs: sc}
	}()
	return res, serverCosts
}

// TestCDCModeRoundTrip: a client-requested CDC session converges, both sides
// account CDC work, and the legacy session on the same pair accounts none.
func TestCDCModeRoundTrip(t *testing.T) {
	v1, v2 := corpus.DefaultDBDumpProfile(0.25).Generate(3)
	ring := obs.NewRing(256)
	res, srv := cdcSession(t, v2.Map(), v1.Map(), func(s *Server, c *Client) {
		c.Tracer = ring
	})
	if err := VerifyAgainst(res.Files, v2.Map()); err != nil {
		t.Fatalf("cdc session diverged: %v", err)
	}
	if res.Costs.FilesCDC == 0 || res.Costs.CDCChunks == 0 {
		t.Fatalf("client CDC accounting empty: %+v", res.Costs)
	}
	if srv.Costs.FilesCDC != res.Costs.FilesCDC {
		t.Fatalf("FilesCDC disagree: server %d client %d", srv.Costs.FilesCDC, res.Costs.FilesCDC)
	}
	if srv.Costs.CDCChunks == 0 {
		t.Fatalf("server CDC chunk count empty: %+v", srv.Costs)
	}
	mode := 0
	for _, e := range ring.Events() {
		if e.Mode == "cdc" {
			mode++
		}
	}
	if mode == 0 {
		t.Fatalf("no trace event carries mode=cdc among %d events", ring.Total())
	}

	// The same pair without the extension must account zero CDC work.
	legacy, legacyCosts := session(t, v2.Map(), v1.Map(), core.DefaultConfig())
	if legacy.Costs.FilesCDC != 0 || legacy.Costs.CDCChunks != 0 || legacyCosts.FilesCDC != 0 {
		t.Fatalf("legacy session accounted CDC work: client %+v server %+v", legacy.Costs, legacyCosts)
	}
}

// TestCDCModeMux: CDC composes with stream multiplexing — the per-stream
// engine merges still pick up the chunk counters.
func TestCDCModeMux(t *testing.T) {
	v1, v2 := corpus.DefaultHeavyLogProfile(0.3).Generate(7)
	res, srv := cdcSession(t, v2.Map(), v1.Map(), func(s *Server, c *Client) {
		s.MuxStreams = 4
		c.MuxStreams = 4
	})
	if err := VerifyAgainst(res.Files, v2.Map()); err != nil {
		t.Fatalf("cdc mux session diverged: %v", err)
	}
	if res.Costs.FilesCDC == 0 || res.Costs.CDCChunks == 0 {
		t.Fatalf("client CDC accounting empty under mux: %+v", res.Costs)
	}
	if srv.Costs.CDCChunks == 0 || srv.Costs.FilesCDC == 0 {
		t.Fatalf("server CDC accounting empty under mux: %+v", srv.Costs)
	}
}

// TestCDCModeUnusableDegrades: a server that cannot validate the requested
// mode (here: one it has never heard of) refuses the grant and the session
// completes in halving mode instead of failing.
func TestCDCModeUnusableDegrades(t *testing.T) {
	v1, v2 := corpus.DefaultHeavyLogProfile(0.15).Generate(11)
	res, srvCosts := muxSession(t, v2.Map(), v1.Map(), core.DefaultConfig(), 0, 1, func(s *Server, c *Client) {
		c.MapMode = core.MapMode(7)
	})
	if err := VerifyAgainst(res.Files, v2.Map()); err != nil {
		t.Fatalf("degraded session diverged: %v", err)
	}
	if res.Costs.FilesCDC != 0 || res.Costs.CDCChunks != 0 || srvCosts.FilesCDC != 0 {
		t.Fatalf("refused CDC grant still accounted CDC work: client %+v server %+v", res.Costs, srvCosts)
	}
}

// TestConfigRoundTripMapMode: the mode rides as an optional trailing config
// field — absent (and byte-identical to the legacy encoding) for halving.
func TestConfigRoundTripMapMode(t *testing.T) {
	halving := core.DefaultConfig()
	cdc := core.DefaultConfig()
	cdc.MapMode = core.MapCDC

	got, err := decodeConfig(encodeConfig(&cdc))
	if err != nil {
		t.Fatal(err)
	}
	if got.MapMode != core.MapCDC {
		t.Fatalf("MapMode lost in round trip: %+v", got)
	}
	h := encodeConfig(&halving)
	c := encodeConfig(&cdc)
	if len(c) != len(h)+1 {
		t.Fatalf("cdc config should add exactly one trailing byte: %d vs %d", len(c), len(h))
	}
	if string(c[:len(h)]) != string(h) {
		t.Fatalf("trailing mode field changed the legacy prefix")
	}
}
