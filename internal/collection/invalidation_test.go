package collection

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"msync/internal/core"
	"msync/internal/dirio"
	"msync/internal/md4"
	"msync/internal/sigcache"
)

// manifestDelta opens dir as a fresh TreeSource (as a new process run would),
// builds its manifest, and returns it with the cache-stat delta and the bytes
// this source streamed through MD4.
func manifestDelta(t *testing.T, dir string, cache *sigcache.Cache, fp uint64, paranoid bool) ([]ManifestEntry, sigcache.Stats, int64) {
	t.Helper()
	tree, werrs, err := dirio.OpenTree(dir)
	if err != nil || len(werrs) > 0 {
		t.Fatalf("OpenTree: %v %v", err, werrs)
	}
	src := NewTreeSource(tree, cache, fp, paranoid)
	before := cache.Stats()
	m, err := src.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	return m, cache.Stats().Sub(before), src.HashedBytes()
}

// TestCacheInvalidationMatrix pins down exactly which stat changes invalidate
// a cached signature: mtime alone, size alone, and a config-fingerprint
// change each force a miss; a content change that restores both size and
// mtime is caught by the ctime-widened key where the platform reports one,
// and remains the documented stale-hit limitation (paranoid mode as the
// backstop) where it doesn't.
func TestCacheInvalidationMatrix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.txt")
	setFile := func(content string, mtime time.Time) {
		t.Helper()
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(path, mtime, mtime); err != nil {
			t.Fatal(err)
		}
	}
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	later := base.Add(time.Second)
	v1 := "file contents, version one"

	cfg := core.DefaultConfig()
	fp := ConfigFingerprint(&cfg)
	cache := sigcache.New(sigcache.Options{})

	// Cold: the first manifest streams the file and stores its signature.
	setFile(v1, base)
	m, d, hashed := manifestDelta(t, dir, cache, fp, false)
	if d.Misses != 1 || d.Hits != 0 {
		t.Fatalf("cold: %+v, want a pure miss", d)
	}
	if hashed != int64(len(v1)) || m[0].Sum != md4.Sum([]byte(v1)) {
		t.Fatal("cold: wrong bytes hashed or wrong sum")
	}

	// Unchanged: stat identity answers; nothing is hashed.
	m, d, hashed = manifestDelta(t, dir, cache, fp, false)
	if d.Hits != 1 || d.Misses != 0 || hashed != 0 {
		t.Fatalf("unchanged: %+v hashed=%d, want a free hit", d, hashed)
	}
	if m[0].Sum != md4.Sum([]byte(v1)) {
		t.Fatal("unchanged: sum drifted")
	}

	// Nanosecond-only mtime change, identical content: the cache keys on
	// Unix nanoseconds, so even a same-second rewrite (common on filesystems
	// with sub-second timestamps) is a miss, never a stale hit.
	setFile(v1, base.Add(time.Nanosecond))
	_, d, hashed = manifestDelta(t, dir, cache, fp, false)
	if d.Misses != 1 || d.Hits != 0 || hashed != int64(len(v1)) {
		t.Fatalf("mtime-nanosecond: %+v hashed=%d, want a recomputing miss", d, hashed)
	}

	// mtime-only change, identical content: the key no longer matches, so
	// the file is re-hashed (to the same sum).
	setFile(v1, later)
	m, d, hashed = manifestDelta(t, dir, cache, fp, false)
	if d.Misses != 1 || d.Hits != 0 || hashed != int64(len(v1)) {
		t.Fatalf("mtime-only: %+v hashed=%d, want a recomputing miss", d, hashed)
	}
	if m[0].Sum != md4.Sum([]byte(v1)) {
		t.Fatal("mtime-only: content did not change, sum must not either")
	}

	// Size-only change (mtime held at the cached value): still a miss.
	v2 := v1 + "!"
	setFile(v2, later)
	m, d, _ = manifestDelta(t, dir, cache, fp, false)
	if d.Misses != 1 || d.Hits != 0 {
		t.Fatalf("size-only: %+v, want a miss", d)
	}
	if m[0].Sum != md4.Sum([]byte(v2)) {
		t.Fatal("size-only: sum not refreshed")
	}

	// Content change with size AND mtime restored. Where the platform
	// reports a stat ctime the rewrite still moved it — userspace cannot put
	// it back — so the widened key catches what size+mtime alone missed.
	// Platforms without ctime keep the documented stale hit, with paranoid
	// mode as the backstop.
	v3 := v2[:len(v2)-1] + "?" // same length, different content
	setFile(v3, later)
	tree, _, err := dirio.OpenTree(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctimeAware := tree.Files()[0].CTime != 0
	m, d, hashed = manifestDelta(t, dir, cache, fp, false)
	if ctimeAware {
		if d.Misses != 1 || d.Hits != 0 || hashed != int64(len(v3)) {
			t.Fatalf("restored-mtime: %+v hashed=%d, want a ctime-keyed miss", d, hashed)
		}
		if m[0].Sum != md4.Sum([]byte(v3)) {
			t.Fatal("restored-mtime: sum not refreshed after ctime-keyed miss")
		}
	} else {
		if d.Hits != 1 || d.Misses != 0 || hashed != 0 {
			t.Fatalf("restored-mtime: %+v hashed=%d, want the (stale) hit", d, hashed)
		}
		if m[0].Sum != md4.Sum([]byte(v2)) || m[0].Sum == md4.Sum([]byte(v3)) {
			t.Fatal("restored-mtime: expected the stale cached sum")
		}
	}

	// Paranoid mode streams the file on every hit. With a ctime-aware key
	// the entry is already fresh, so the verify stream confirms it; without
	// one this is where the stale entry is rejected, recomputed and replaced.
	m, d, hashed = manifestDelta(t, dir, cache, fp, true)
	if ctimeAware {
		if d.Hits != 1 || d.Misses != 0 {
			t.Fatalf("paranoid: %+v, want a verified hit", d)
		}
		if hashed != int64(len(v3)) { // one verify stream, no recompute
			t.Fatalf("paranoid: hashed %d bytes, want %d", hashed, len(v3))
		}
	} else {
		if d.Misses != 1 || d.Hits != 0 {
			t.Fatalf("paranoid: %+v, want the stale entry rejected", d)
		}
		if hashed != 2*int64(len(v3)) { // one verify stream + one recompute
			t.Fatalf("paranoid: hashed %d bytes, want %d", hashed, 2*len(v3))
		}
	}
	if m[0].Sum != md4.Sum([]byte(v3)) {
		t.Fatal("paranoid: sum not corrected")
	}

	// The corrected entry now serves plain lookups.
	m, d, _ = manifestDelta(t, dir, cache, fp, false)
	if d.Hits != 1 || m[0].Sum != md4.Sum([]byte(v3)) {
		t.Fatalf("post-paranoid: %+v, want a correct hit", d)
	}

	// A config-fingerprint change invalidates everything, file untouched.
	_, d, _ = manifestDelta(t, dir, cache, fp+1, false)
	if d.Misses != 1 || d.Hits != 0 {
		t.Fatalf("fingerprint: %+v, want a miss", d)
	}
}

// TestConfigFingerprint: protocol-affecting fields move the fingerprint,
// Workers (pure local parallelism) does not.
func TestConfigFingerprint(t *testing.T) {
	cfg := core.DefaultConfig()
	fp := ConfigFingerprint(&cfg)

	same := core.DefaultConfig()
	if ConfigFingerprint(&same) != fp {
		t.Fatal("identical configs fingerprint differently")
	}

	workers := core.DefaultConfig()
	workers.Workers = 17
	if ConfigFingerprint(&workers) != fp {
		t.Fatal("Workers must not disturb the cache key: it cannot change hash values")
	}

	blocks := core.DefaultConfig()
	blocks.MinBlockSize *= 2
	if ConfigFingerprint(&blocks) == fp {
		t.Fatal("block-schedule change kept the fingerprint")
	}

	family := core.DefaultConfig()
	family.HashFamily = "xxh3"
	if ConfigFingerprint(&family) == fp {
		t.Fatal("hash-family change kept the fingerprint")
	}
}
