package collection

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"path"
	"sort"
	"sync"
	"time"

	"msync/internal/core"
	"msync/internal/delta"
	"msync/internal/md4"
	"msync/internal/merkle"
	"msync/internal/obs"
	"msync/internal/stats"
	"msync/internal/transport"
	"msync/internal/wire"
)

// ErrHandshake marks session failures that happened before any file content
// was exchanged (dialing aside: hello, change detection, verdicts). Such
// failures are safe to retry — neither side has committed to anything.
// Test with errors.Is.
var ErrHandshake = errors.New("collection: handshake failed")

// handshakeError wraps an error so errors.Is(err, ErrHandshake) holds while
// the underlying cause (deadline, EOF, ...) stays inspectable via Unwrap.
type handshakeError struct{ err error }

func (e *handshakeError) Error() string        { return "collection: handshake: " + e.err.Error() }
func (e *handshakeError) Unwrap() error        { return e.err }
func (e *handshakeError) Is(target error) bool { return target == ErrHandshake }

// asHandshake tags err as a handshake-phase failure (nil stays nil).
func asHandshake(err error) error {
	if err == nil {
		return nil
	}
	return &handshakeError{err: err}
}

// Client synchronizes a local collection copy against a Server.
type Client struct {
	src Source
	// LazyResult, for sources that can re-read their own files (TreeSource),
	// keeps unchanged files out of Result.Files: the result then holds only
	// written content, with unchanged and deleted paths listed by name, so
	// peak memory scales with the change set instead of the collection.
	LazyResult bool
	// TreeManifest switches change detection from the flat fingerprint
	// manifest to merkle-tree reconciliation, which costs O(changed·log n)
	// instead of O(n) — the right choice when almost nothing changed.
	TreeManifest bool
	// SpeculativeDescent requests (hello extension 3) that tree-mode
	// descent answers carry several levels of digests at once, finishing
	// a typical descent in roughly half the roundtrips. Ignored by
	// servers that don't support it; the session then runs the legacy
	// one-level descent byte-identically.
	SpeculativeDescent bool
	// CrossFileMatch requests (hello extension 3) cross-file matching in
	// tree mode: files the server has under a new path are first matched
	// against the whole local collection by content fingerprint (a pure
	// rename then costs zero content bytes — the client copies its local
	// file), and unmatched new files may be synced against an alternate
	// local basis named in the WANT exchange instead of transferred in
	// full.
	CrossFileMatch bool
	// trees carries the client's built merkle trees across sessions (and,
	// when the source has a signature-cache directory, across processes),
	// so a repeat tree-mode sync updates its tree incrementally from the
	// manifest diff instead of rebuilding O(n) nodes.
	trees treeState
	// RoundTimeout, if positive, bounds each frame-level read/write of a
	// session (and therefore each protocol round), so a stalled server
	// fails the session instead of hanging it. Requires a connection with
	// deadline support (net.Conn, transport.PipeEnd) to interrupt blocked
	// I/O.
	RoundTimeout time.Duration
	// Workers bounds the client's local parallelism: per-file engine
	// fan-out plus the engines' internal sharded scans and batched
	// verification hashing. 0 means runtime.GOMAXPROCS(0); 1 is fully
	// serial. Purely an execution knob — the wire output is bit-identical
	// for every value.
	Workers int
	// AnnounceVersion adds the optional version extension to the hello:
	// the client announces BaseVersion (0 = none known) and a versioned
	// server may answer with a precomputed journal delta instead of map
	// construction. Servers without a store ignore the extension; the
	// session is unchanged beyond the few extension bytes. The server's
	// current version is reported back in Result.Version.
	AnnounceVersion bool
	// BaseVersion is the stored version this client's collection matches,
	// as learned from a previous Result.Version.
	BaseVersion uint64
	// MuxStreams, if positive, requests stream multiplexing (hello
	// extension 2) with up to that many concurrent streams: the server
	// partitions the sync files into streams whose map rounds, deltas and
	// fallbacks interleave on the one connection, so slow files no longer
	// gate fast ones and tiny files share roundtrips. Servers that don't
	// multiplex (or sessions with nothing to sync) ignore the request and
	// the session runs the legacy lockstep protocol unchanged.
	MuxStreams int
	// MapMode requests a map-construction mode (hello extension 4):
	// core.MapCDC asks the server to derive block boundaries from
	// content-defined chunk cuts instead of recursive halving. The server
	// is authoritative — it grants the mode by echoing it in the session
	// config it ships with the verdicts, and servers that predate the
	// extension ignore it, so the session falls back to halving
	// byte-identically. The zero value never emits the extension.
	MapMode core.MapMode
	// Tracer, if set, receives span-like events per protocol phase; the
	// summed frame bytes of a session's spans equal its Costs wire totals.
	// Tracing never changes what goes on the wire.
	Tracer obs.Tracer
	// Logger, if set, receives structured session lifecycle logs. nil
	// disables logging entirely.
	Logger *slog.Logger
}

// NewClient creates a client over the local (path → content) collection.
func NewClient(files map[string][]byte) *Client {
	return &Client{src: MapSource(files)}
}

// NewClientSource creates a client over an arbitrary collection source.
func NewClientSource(src Source) *Client {
	return &Client{src: src}
}

// clientFile pairs a path with its per-file client engine. For cross-file
// matched files, tryout holds candidate engines over alternate local bases;
// the first map round picks the best-matching one (core.PickBasis) and it
// becomes the engine.
type clientFile struct {
	path   string
	engine *core.ClientFile
	tryout []*core.ClientFile
}

// Result is the outcome of one synchronization session.
type Result struct {
	// Files is the updated collection. Under Client.LazyResult it holds only
	// the files the session wrote (synced, full, new); combined with
	// Unchanged and Deleted it still describes the complete outcome.
	Files map[string][]byte
	// Unchanged lists paths the session left untouched.
	Unchanged []string
	// Deleted lists local paths the server no longer has.
	Deleted []string
	// Costs is the session's cost accounting from the client's perspective.
	Costs *stats.Costs
	// PerFile attributes payload bytes to individual synchronized files
	// (map-construction sections, deltas and full transfers; shared framing
	// and control traffic are not attributed).
	PerFile map[string]int64
	// Version is the server's current store version, reported when the
	// client announced one (Client.AnnounceVersion) and the server is
	// versioned; 0 otherwise. Announce it as BaseVersion on the next sync
	// of the updated collection to receive a journal delta.
	Version uint64
}

// Sync runs one session over conn and returns the updated collection.
// It is SyncContext with a background context.
func (c *Client) Sync(conn io.ReadWriter) (*Result, error) {
	return c.SyncContext(context.Background(), conn)
}

// SyncContext runs one session over conn under ctx: cancellation or a
// context deadline aborts the session at the next frame boundary (and
// interrupts blocked I/O when conn supports deadlines), and RoundTimeout
// bounds every individual round.
func (c *Client) SyncContext(ctx context.Context, conn io.ReadWriter) (*Result, error) {
	sess := transport.NewSession(ctx, conn, c.RoundTimeout)
	defer sess.Release()
	costs := &stats.Costs{}
	fr := wire.GetFrameReader(sess)
	defer wire.PutFrameReader(fr)
	fw := wire.GetFrameWriter(sess)
	defer wire.PutFrameWriter(fw)
	acct := beginAccounting(c.src)
	defer acct.finish(costs)
	st := newSessTrace(c.Tracer, c.Logger, "client")

	res, err := func() (*Result, error) {
		// HELLO.
		hb := wire.NewBuffer(8)
		hb.Uvarint(protocolVersion)
		hb.Byte(rolePull)
		if c.TreeManifest {
			hb.Byte(modeTree)
		} else {
			hb.Byte(modeManifest)
		}
		var treeCaps byte
		if c.TreeManifest {
			if c.SpeculativeDescent {
				treeCaps |= treeCapSpec
			}
			if c.CrossFileMatch {
				treeCaps |= treeCapCross
			}
		}
		nExt := 0
		if c.AnnounceVersion {
			nExt++
		}
		if c.MuxStreams > 0 {
			nExt++
		}
		if treeCaps != 0 {
			nExt++
		}
		if c.MapMode != core.MapHalving {
			nExt++
		}
		if nExt > 0 {
			hb.Uvarint(uint64(nExt))
			if c.AnnounceVersion {
				ext := wire.NewBuffer(8)
				ext.Uvarint(c.BaseVersion)
				hb.Uvarint(helloExtVersion)
				hb.Bytes(ext.Build())
			}
			if c.MuxStreams > 0 {
				ext := wire.NewBuffer(8)
				ext.Uvarint(uint64(c.MuxStreams))
				hb.Uvarint(helloExtMux)
				hb.Bytes(ext.Build())
			}
			if treeCaps != 0 {
				ext := wire.NewBuffer(8)
				ext.Uvarint(uint64(treeCaps))
				hb.Uvarint(helloExtTree)
				hb.Bytes(ext.Build())
			}
			if c.MapMode != core.MapHalving {
				ext := wire.NewBuffer(8)
				ext.Uvarint(uint64(c.MapMode))
				hb.Uvarint(helloExtMapMode)
				hb.Bytes(ext.Build())
			}
		}
		if err := fw.WriteFrame(wire.FrameHello, hb.Build()); err != nil {
			return nil, asHandshake(err)
		}
		st.cost(costs, stats.C2S, stats.PhaseControl, hb.Len())
		return consume(ctx, fr, fw, costs, c.src, c.LazyResult, c.TreeManifest, c.AnnounceVersion, c.Workers, c.MuxStreams, treeCaps, &c.trees, st)
	}()
	st.end(costs, err, fr, fw, sess.Stats())
	return res, err
}

// consume runs the receiving role of a session (after any handshake
// header): announce local state, answer map-construction rounds, apply
// deltas. It is shared by the pulling client and by a server accepting a
// push. In the returned Costs, C2S is traffic from the data receiver to the
// data holder. Failures up to and including the verdict exchange are tagged
// with ErrHandshake (retry-safe); ctx is checked at every round boundary.
// workers is the receiver's own parallelism budget — never the remote's: the
// protocol config arrives over the wire, but Workers is deliberately not
// serialized, so each side applies its local setting.
//
// With lazy set (sources that can re-read their own files), unchanged
// content is never materialized: the result lists unchanged and deleted
// paths by name and Files holds only what the session wrote.
//
// announced reports whether this side's hello carried the version
// extension: only then are journal verdicts and the trailing version in the
// verdict frame expected. muxWidth is the requested stream width (0: none);
// only when positive is a MUX_ACK before the verdicts accepted, switching the
// per-file phases to the stream-multiplexed consumer.
//
// treeCaps is the tree-extension capability mask this side's hello asked
// for (0: none — legacy bytes throughout) and trees the cross-session tree
// cache; both only matter under treeManifest.
func consume(ctx context.Context, fr *wire.FrameReader, fw *wire.FrameWriter, costs *stats.Costs, src Source, lazy, treeManifest, announced bool, workers, muxWidth int, treeCaps byte, trees *treeState, st *sessTrace) (*Result, error) {
	sbuf := wire.GetBuffer(1024) // session scratch for every frame we assemble
	defer wire.PutBuffer(sbuf)

	manifest, err := src.Manifest()
	if err != nil {
		return nil, asHandshake(err)
	}

	// Change detection: determine the paths under discussion (in verdict
	// order) and the initial contents of the result set.
	res := &Result{Costs: costs}
	out := make(map[string][]byte)
	res.Files = out
	var verdictPaths []string
	var tr *treeResult
	if treeManifest {
		tr, err = treeDetect(fr, fw, costs, manifest, treeCaps, trees, treeDir(src), st)
		if err != nil {
			return nil, asHandshake(err)
		}
		verdictPaths = tr.verdictPaths
		res.Deleted = tr.deleted
		handled := make(map[string]bool, len(verdictPaths)+len(tr.localCopy))
		for _, p := range verdictPaths {
			handled[p] = true
		}
		for p := range tr.localCopy {
			handled[p] = true
		}
		for _, p := range tr.kept {
			if handled[p] {
				continue // changed: decided by its verdict or local copy below
			}
			if lazy {
				res.Unchanged = append(res.Unchanged, p)
				continue
			}
			data, err := src.Load(p)
			if err != nil {
				return nil, asHandshake(err)
			}
			out[p] = data
		}
		// Cross-file renames: wanted content that already exists locally
		// under another path is copied, not transferred — zero wire bytes.
		if len(tr.localCopy) > 0 {
			paths := make([]string, 0, len(tr.localCopy))
			for p := range tr.localCopy {
				paths = append(paths, p)
			}
			sort.Strings(paths)
			for _, p := range paths {
				data, err := src.Load(tr.localCopy[p])
				if err != nil {
					return nil, asHandshake(err)
				}
				out[p] = data
				costs.FilesRenamed++
				costs.RenameBytesSaved += int64(len(data))
			}
		}
	} else {
		sbuf.Reset()
		encodeManifestInto(sbuf, manifest)
		if err := fw.WriteFrame(wire.FrameManifest, sbuf.Build()); err != nil {
			return nil, asHandshake(err)
		}
		st.cost(costs, stats.C2S, stats.PhaseControl, sbuf.Len())
		for _, e := range manifest {
			verdictPaths = append(verdictPaths, e.Path)
		}
	}
	if err := fw.Flush(); err != nil {
		return nil, asHandshake(err)
	}

	// Verdicts, optionally preceded by a MUX_ACK when we requested
	// multiplexing and the server granted it.
	var muxRaw []byte
	ft, vraw, err := fr.ReadFrame()
	if err != nil {
		return nil, asHandshake(err)
	}
	if ft == wire.FrameMuxAck && muxWidth > 0 {
		muxRaw = vraw
		st.cost(costs, stats.S2C, stats.PhaseControl, len(muxRaw))
		vraw, err = fr.ExpectFrame(wire.FrameVerdicts)
		if err != nil {
			return nil, asHandshake(err)
		}
	} else if ft != wire.FrameVerdicts {
		// Mirror ExpectFrame's special-casing so error and BUSY answers
		// surface identically to the legacy path.
		switch ft {
		case wire.FrameError:
			return nil, asHandshake(fmt.Errorf("wire: remote error: %s", vraw))
		case wire.FrameBusy:
			return nil, asHandshake(wire.DecodeBusy(vraw))
		default:
			return nil, asHandshake(fmt.Errorf("wire: expected frame %s, got %s", wire.FrameName(wire.FrameVerdicts), wire.FrameName(ft)))
		}
	}
	costs.Roundtrips++
	vp := wire.NewParser(vraw)
	cfgRaw, err := vp.Bytes()
	if err != nil {
		return nil, err
	}
	cfg, err := decodeConfig(cfgRaw)
	if err != nil {
		return nil, err
	}
	cfg.Workers = workers
	st.setMode(cfg.MapMode)
	nv, err := vp.Uvarint()
	if err != nil || int(nv) != len(verdictPaths) {
		return nil, fmt.Errorf("collection: verdict count mismatch")
	}

	var engines []clientFile
	var jfiles []journalFile // verdictJournal entries, in verdict order
	var jfailed []int        // journal ordinals whose delta did not apply
	jbytes := make(map[string]int64)
	fullBytes := 0
	deltaBytes := 0
	for _, path := range verdictPaths {
		verdict, err := vp.Byte()
		if err != nil {
			return nil, err
		}
		switch verdict {
		case verdictUnchanged:
			if lazy {
				res.Unchanged = append(res.Unchanged, path)
			} else {
				data, err := src.Load(path)
				if err != nil {
					return nil, err
				}
				out[path] = data
			}
			costs.FilesUnchanged++
		case verdictDelete:
			delete(out, path)
			res.Deleted = append(res.Deleted, path)
		case verdictFull:
			comp, err := vp.Bytes()
			if err != nil {
				return nil, err
			}
			fullBytes += len(comp)
			data, err := delta.Decompress(comp)
			if err != nil {
				return nil, fmt.Errorf("collection: full file %q: %w", path, err)
			}
			out[path] = data
			costs.FilesFull++
		case verdictSync:
			newLen, err := vp.Uvarint()
			if err != nil {
				return nil, err
			}
			var alts []string
			if tr != nil {
				alts = tr.altBases[path]
			}
			if len(alts) > 0 {
				// Cross-file near-match: build one candidate engine per
				// alternate local basis; the first map round picks the
				// best (see respond / core.PickBasis).
				cf := clientFile{path: path}
				for _, ap := range alts {
					old, err := src.Load(ap)
					if err != nil {
						continue // basis vanished: try the rest
					}
					eng, err := core.NewClientFile(old, int(newLen), &cfg)
					if err != nil {
						return nil, err
					}
					cf.tryout = append(cf.tryout, eng)
				}
				if len(cf.tryout) == 0 {
					eng, err := core.NewClientFile(nil, int(newLen), &cfg)
					if err != nil {
						return nil, err
					}
					cf.tryout = append(cf.tryout, eng)
				}
				cf.engine = cf.tryout[0]
				engines = append(engines, cf)
				costs.FilesSynced++
				costs.FilesRebased++
				continue
			}
			old, err := src.Load(path)
			if err != nil {
				return nil, err
			}
			eng, err := core.NewClientFile(old, int(newLen), &cfg)
			if err != nil {
				return nil, err
			}
			engines = append(engines, clientFile{path: path, engine: eng})
			costs.FilesSynced++
			if cfg.MapMode == core.MapCDC {
				costs.FilesCDC++
			}
		case verdictJournal:
			newLen, err := vp.Uvarint()
			if err != nil {
				return nil, err
			}
			sumRaw, err := vp.Raw(md4.Size)
			if err != nil {
				return nil, err
			}
			payload, err := vp.Bytes()
			if err != nil {
				return nil, err
			}
			var sum [md4.Size]byte
			copy(sum[:], sumRaw)
			deltaBytes += len(payload)
			jbytes[path] = int64(len(payload))
			// Apply the precomputed delta against the local copy; any
			// failure (missing file, corrupt payload, content drift) lands
			// on the ack list for a whole-file fallback, exactly like a
			// failed engine verification.
			applied := false
			if old, err := src.Load(path); err == nil {
				if data, err := delta.Decode(old, payload); err == nil &&
					len(data) == int(newLen) && md4.Sum(data) == sum {
					out[path] = data
					applied = true
				}
			}
			if !applied {
				jfailed = append(jfailed, len(jfiles))
			}
			jfiles = append(jfiles, journalFile{path, int(newLen), sum})
			costs.FilesJournal++
		default:
			return nil, fmt.Errorf("collection: unknown verdict %d", verdict)
		}
	}
	if len(engines) > 0 && len(jfiles) > 0 {
		// Journal sessions never run engines; a server mixing the two would
		// make ack indexes ambiguous.
		return nil, fmt.Errorf("collection: mixed journal and sync verdicts")
	}
	nNew, err := vp.Uvarint()
	if err != nil {
		return nil, err
	}
	for k := uint64(0); k < nNew; k++ {
		path, err := vp.String()
		if err != nil {
			return nil, err
		}
		comp, err := vp.Bytes()
		if err != nil {
			return nil, err
		}
		fullBytes += len(comp)
		data, err := delta.Decompress(comp)
		if err != nil {
			return nil, fmt.Errorf("collection: new file %q: %w", path, err)
		}
		out[path] = data
		costs.FilesFull++
	}
	if announced && !treeManifest && vp.Remaining() > 0 {
		// Versioned servers append their current version for announcing
		// clients; its absence just means the server has no store.
		if v, err := vp.Uvarint(); err == nil {
			res.Version = v
		}
	}
	st.cost(costs, stats.S2C, stats.PhaseControl, len(vraw)-fullBytes-deltaBytes)
	st.raw(costs, stats.S2C, stats.PhaseFull, fullBytes)
	if deltaBytes > 0 {
		st.raw(costs, stats.S2C, stats.PhaseDelta, deltaBytes)
	}

	perEngine := make([]int64, len(engines))

	var muxCounts []int
	if muxRaw != nil {
		if len(engines) == 0 || len(jfiles) > 0 {
			// The server only grants multiplexing to sessions running sync
			// engines; anything else is a protocol violation.
			return nil, fmt.Errorf("collection: unexpected mux ack")
		}
		muxCounts, err = wire.ParseMuxAck(muxRaw, len(engines))
		if err != nil {
			return nil, err
		}
	}
	if muxCounts != nil {
		// Stream-multiplexed per-file phases replace the lockstep loop.
		if err := consumeStreams(ctx, fr, fw, costs, engines, muxCounts, workers, perEngine, out, st); err != nil {
			return nil, err
		}
	} else {

		// Map-construction rounds: respond to whatever the server sends until
		// the delta frame arrives.
		var deltaPayload []byte
		rounds := 0
		for deltaPayload == nil {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("collection: session cancelled: %w", err)
			}
			ft, payload, err := fr.ReadFrame()
			if err != nil {
				return nil, err
			}
			switch ft {
			case wire.FrameRoundHashes, wire.FrameConfirm:
				if ft == wire.FrameRoundHashes {
					rounds++
					st.begin(obs.PhaseRound, rounds)
				} else {
					st.begin(obs.PhaseVerify, rounds)
				}
				st.cost(costs, stats.S2C, stats.PhaseMap, len(payload))
				reply, err := respond(workers, engines, ft, payload, perEngine, sbuf)
				if err != nil {
					return nil, err
				}
				if err := fw.WriteFrame(wire.FrameRoundReply, reply); err != nil {
					return nil, err
				}
				if err := fw.Flush(); err != nil {
					return nil, err
				}
				st.cost(costs, stats.C2S, stats.PhaseMap, len(reply))
				costs.Roundtrips++
			case wire.FrameDelta:
				st.begin(obs.PhaseDelta, 0)
				st.cost(costs, stats.S2C, stats.PhaseDelta, len(payload))
				deltaPayload = payload
			case wire.FrameError:
				return nil, fmt.Errorf("collection: server error: %s", payload)
			default:
				return nil, fmt.Errorf("collection: unexpected frame %s", wire.FrameName(ft))
			}
		}

		// Apply deltas; collect whole-file-check failures.
		dp := wire.NewParser(deltaPayload)
		nd, err := dp.Uvarint()
		if err != nil || int(nd) != len(engines) {
			return nil, fmt.Errorf("collection: delta count mismatch")
		}
		deltaSections := make([][]byte, len(engines))
		for i := range engines {
			section, err := dp.Bytes()
			if err != nil {
				return nil, err
			}
			deltaSections[i] = section
			perEngine[i] += int64(len(section))
		}
		results := make([][]byte, len(engines))
		verifyFailed := make([]bool, len(engines))
		err = parallelFiles(workers, len(engines), func(i int) error {
			data, err := engines[i].engine.ApplyDelta(deltaSections[i])
			switch {
			case err == nil:
				results[i] = data
			case errors.Is(err, core.ErrVerifyFailed):
				verifyFailed[i] = true
			default:
				return fmt.Errorf("collection: file %q: %w", engines[i].path, err)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		var failed []int
		for i := range engines {
			if verifyFailed[i] {
				failed = append(failed, i)
			} else {
				out[engines[i].path] = results[i]
			}
		}
		if len(jfiles) > 0 {
			// Journal session: ack indexes are ordinals into the journal-file
			// list (there are no engines to index).
			failed = jfailed
		}
		sbuf.Reset()
		sbuf.Uvarint(uint64(len(failed)))
		for _, i := range failed {
			sbuf.Uvarint(uint64(i))
		}
		if err := fw.WriteFrame(wire.FrameAck, sbuf.Build()); err != nil {
			return nil, err
		}
		if err := fw.Flush(); err != nil {
			return nil, err
		}
		st.cost(costs, stats.C2S, stats.PhaseControl, sbuf.Len())
		costs.Roundtrips++ // delta → ack

		if len(failed) > 0 {
			st.begin(obs.PhaseFull, 0)
			fraw, err := fr.ExpectFrame(wire.FrameFull)
			if err != nil {
				return nil, err
			}
			st.cost(costs, stats.S2C, stats.PhaseFull, len(fraw))
			costs.Roundtrips++
			fp := wire.NewParser(fraw)
			nf, err := fp.Uvarint()
			if err != nil || int(nf) != len(failed) {
				return nil, fmt.Errorf("collection: full-transfer count mismatch")
			}
			nIdx := len(engines)
			if len(jfiles) > 0 {
				nIdx = len(jfiles)
			}
			for k := uint64(0); k < nf; k++ {
				idx, err := fp.Uvarint()
				if err != nil || int(idx) >= nIdx {
					return nil, fmt.Errorf("collection: bad full index")
				}
				comp, err := fp.Bytes()
				if err != nil {
					return nil, err
				}
				data, err := delta.Decompress(comp)
				if err != nil {
					return nil, err
				}
				if len(jfiles) > 0 {
					out[jfiles[idx].path] = data
					jbytes[jfiles[idx].path] += int64(len(comp))
				} else {
					out[engines[idx].path] = data
					perEngine[idx] += int64(len(comp))
				}
				costs.FilesFull++
			}
		}
	} // end legacy lockstep path
	perFile := make(map[string]int64, len(engines)+len(jfiles))
	for i := range engines {
		costs.CDCChunks += engines[i].engine.CDCChunks
		perFile[engines[i].path] = perEngine[i]
	}
	for path, n := range jbytes {
		perFile[path] = n
	}
	res.PerFile = perFile
	return res, nil
}

// treeState carries a client's merkle tree cache across sessions, so a
// repeat sync rebases the built tree from the manifest diff (O(changed ·
// depth) hashing) instead of rebuilding it.
type treeState struct {
	mu    sync.Mutex
	cache *merkle.TreeCache
}

// acquire returns the tree cache for the given manifest state, reusing or
// rebasing the previous sessions' trees when possible. A nil receiver (the
// push path, which has no cross-session home) builds a fresh cache.
func (ts *treeState) acquire(entries []merkle.Entry, fp [md4.Size]byte, dir string) *merkle.TreeCache {
	if ts == nil {
		return merkle.NewTreeCacheAt(entries, fp, dir)
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	switch {
	case ts.cache != nil && ts.cache.Fingerprint() == fp:
		// Same collection state as last session: reuse as-is.
	case ts.cache != nil:
		ts.cache = ts.cache.Rebase(entries, fp)
	default:
		ts.cache = merkle.NewTreeCacheAt(entries, fp, dir)
	}
	return ts.cache
}

// treeDir returns the directory where merkle trees may persist for src: the
// signature cache's disk directory, when there is one. "" disables
// persistence (trees then live only as long as the Client).
func treeDir(src Source) string {
	if cb, ok := src.(cacheBacked); ok {
		if c := cb.Cache(); c != nil {
			return c.Dir()
		}
	}
	return ""
}

// treeResult is what tree-mode change detection hands back to consume.
type treeResult struct {
	verdictPaths []string // paths the server will answer with verdicts, in order
	kept         []string // local paths the server still has (incl. changed)
	deleted      []string // local paths the server no longer has
	// localCopy maps a wanted path to an identical-content local path
	// (cross-file rename match): materialized locally, never transferred.
	localCopy map[string]string
	// altBases maps a wanted path to alternate local basis candidates for
	// its sync engine (cross-file near-match), best-first.
	altBases map[string][]string
}

// maxAltBases bounds how many alternate local bases a client tries per
// wanted file; each candidate costs one engine's worth of memory and one
// first-round scan.
const maxAltBases = 3

// altBasisCandidates proposes alternate local bases for files that exist
// only on the server: orphaned local paths (paths the server no longer has
// — the likely sources of a rename) with matching basenames first, then
// the remaining orphans in path order. Deterministic by construction.
func altBasisCandidates(wanted []merkle.Entry, orphans []string) map[string][]string {
	if len(orphans) == 0 {
		return nil
	}
	sorted := append([]string(nil), orphans...)
	sort.Strings(sorted)
	byBase := make(map[string][]string, len(sorted))
	for _, p := range sorted {
		b := path.Base(p)
		byBase[b] = append(byBase[b], p)
	}
	out := make(map[string][]string, len(wanted))
	for _, e := range wanted {
		cands := make([]string, 0, maxAltBases)
		seen := make(map[string]bool, maxAltBases)
		for _, p := range byBase[path.Base(e.Path)] {
			if len(cands) == maxAltBases {
				break
			}
			cands = append(cands, p)
			seen[p] = true
		}
		for _, p := range sorted {
			if len(cands) == maxAltBases {
				break
			}
			if !seen[p] {
				cands = append(cands, p)
			}
		}
		out[e.Path] = cands
	}
	return out
}

// treeDetect runs merkle reconciliation against the server and asks for the
// differing files. caps is the capability mask this side's hello requested
// (treeCapSpec/treeCapCross); the server's TREE_ACK — sent only when it
// grants something — arrives before its first TREE reply. With caps == 0
// the exchange is byte-identical to the legacy descent.
func treeDetect(fr *wire.FrameReader, fw *wire.FrameWriter, costs *stats.Costs, manifest []ManifestEntry, caps byte, trees *treeState, dir string, st *sessTrace) (*treeResult, error) {
	entries := make([]merkle.Entry, len(manifest))
	for i, e := range manifest {
		entries[i] = merkle.Entry{Path: e.Path, Len: e.Len, Sum: e.Sum}
	}
	tc := trees.acquire(entries, ManifestDigest(manifest), dir)
	ini := merkle.NewInitiator(tc.Tree(merkle.DepthFor(len(entries))))
	var granted byte
	first := true
	round := 0
	for !ini.Done() {
		round++
		st.begin(obs.PhaseTree, round)
		msg := ini.Next()
		if err := fw.WriteFrame(wire.FrameTree, msg); err != nil {
			return nil, err
		}
		if err := fw.Flush(); err != nil {
			return nil, err
		}
		st.cost(costs, stats.C2S, stats.PhaseControl, len(msg))
		var payload []byte
		if first && caps != 0 {
			// The server may grant extensions with a TREE_ACK before its
			// first TREE reply (same flush: no extra roundtrip). Errors
			// mirror ExpectFrame's special cases.
			ft, raw, err := fr.ReadFrame()
			if err != nil {
				return nil, err
			}
			if ft == wire.FrameTreeAck {
				st.cost(costs, stats.S2C, stats.PhaseControl, len(raw))
				g, err := wire.NewParser(raw).Uvarint()
				if err != nil {
					return nil, err
				}
				granted = byte(g) & caps
				ini.Speculative = granted&treeCapSpec != 0
				ft, raw, err = fr.ReadFrame()
				if err != nil {
					return nil, err
				}
			}
			switch ft {
			case wire.FrameTree:
				payload = raw
			case wire.FrameError:
				return nil, fmt.Errorf("wire: remote error: %s", raw)
			case wire.FrameBusy:
				return nil, wire.DecodeBusy(raw)
			default:
				return nil, fmt.Errorf("wire: expected frame %s, got %s", wire.FrameName(wire.FrameTree), wire.FrameName(ft))
			}
		} else {
			var err error
			payload, err = fr.ExpectFrame(wire.FrameTree)
			if err != nil {
				return nil, err
			}
		}
		first = false
		st.cost(costs, stats.S2C, stats.PhaseControl, len(payload))
		costs.Roundtrips++
		costs.TreeRounds++
		if err := ini.Absorb(payload); err != nil {
			return nil, err
		}
	}
	diff := ini.Diff()
	st.begin(obs.PhaseHandshake, 0)

	tr := &treeResult{deleted: diff.OnlyLocal}
	deleted := make(map[string]bool, len(diff.OnlyLocal))
	for _, p := range diff.OnlyLocal {
		deleted[p] = true
	}
	for _, e := range manifest {
		if !deleted[e.Path] {
			tr.kept = append(tr.kept, e.Path)
		}
	}
	costs.FilesUnchanged += len(manifest) - len(deleted) - len(diff.Changed)

	wantsChanged, wantsRemote := diff.Changed, diff.OnlyRemote
	if granted&treeCapCross != 0 {
		// Cross-file matching: wanted content that already exists locally
		// under some other path (same length and fingerprint) is a rename
		// — drop it from the WANT and copy locally. The rest of the
		// server-only files get alternate-basis hints.
		tr.localCopy = make(map[string]string)
		type ckey struct {
			len int
			sum [md4.Size]byte
		}
		byContent := make(map[ckey]string, len(manifest))
		for i := len(manifest) - 1; i >= 0; i-- {
			// Reverse iteration so the lowest path wins for duplicates.
			e := manifest[i]
			byContent[ckey{e.Len, e.Sum}] = e.Path
		}
		filter := func(es []merkle.Entry) []merkle.Entry {
			out := make([]merkle.Entry, 0, len(es))
			for _, e := range es {
				if p, ok := byContent[ckey{e.Len, e.Sum}]; ok {
					tr.localCopy[e.Path] = p
					continue
				}
				out = append(out, e)
			}
			return out
		}
		wantsChanged = filter(wantsChanged)
		wantsRemote = filter(wantsRemote)
		tr.altBases = altBasisCandidates(wantsRemote, diff.OnlyLocal)
	}

	type wantEntry struct {
		path string
		have byte
	}
	wants := make([]wantEntry, 0, len(wantsChanged)+len(wantsRemote))
	for _, e := range wantsChanged {
		wants = append(wants, wantEntry{e.Path, wantHave})
	}
	for _, e := range wantsRemote {
		h := wantAbsent
		if _, ok := tr.altBases[e.Path]; ok {
			h = wantAltBasis
		}
		wants = append(wants, wantEntry{e.Path, h})
	}
	sort.Slice(wants, func(i, j int) bool { return wants[i].path < wants[j].path })

	wb := wire.NewBuffer(64)
	wb.Uvarint(uint64(len(wants)))
	for _, w := range wants {
		wb.String(w.path)
		wb.Byte(w.have)
		tr.verdictPaths = append(tr.verdictPaths, w.path)
	}
	if err := fw.WriteFrame(wire.FrameWant, wb.Build()); err != nil {
		return nil, err
	}
	st.cost(costs, stats.C2S, stats.PhaseControl, wb.Len())
	return tr, nil
}

// respond handles one round-hashes or confirm frame and builds the reply
// into rb (the session's pooled scratch buffer — the returned bytes are only
// valid until rb's next reset). Engine work fans out across workers; replies
// are gathered into index-addressed slots and written in job order, so the
// reply frame is byte-identical for every worker count.
func respond(workers int, engines []clientFile, frameType byte, payload []byte, perEngine []int64, rb *wire.Buffer) ([]byte, error) {
	pr := wire.NewParser(payload)
	n, err := pr.Uvarint()
	if err != nil {
		return nil, err
	}
	type job struct {
		idx     uint64
		section []byte
	}
	jobs := make([]job, 0, n)
	for k := uint64(0); k < n; k++ {
		idx, err := pr.Uvarint()
		if err != nil {
			return nil, err
		}
		if int(idx) >= len(engines) {
			return nil, fmt.Errorf("collection: bad file index %d", idx)
		}
		section, err := pr.Bytes()
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, job{idx, section})
		perEngine[idx] += int64(len(section))
	}
	replies := make([][]byte, len(jobs)) // nil = no reply for this file
	err = parallelFiles(workers, len(jobs), func(k int) error {
		cf := &engines[jobs[k].idx]
		eng := cf.engine
		if frameType == wire.FrameRoundHashes {
			if len(cf.tryout) > 0 {
				// Alternate-basis candidates race on the first hash round;
				// the best-matching one becomes the engine for good.
				eng, err := core.PickBasis(cf.tryout, jobs[k].section)
				if err != nil {
					return fmt.Errorf("collection: file %q: %w", cf.path, err)
				}
				cf.engine, cf.tryout = eng, nil
				replies[k] = eng.EmitReply()
				return nil
			}
			if err := eng.AbsorbHashes(jobs[k].section); err != nil {
				return fmt.Errorf("collection: file %q: %w", cf.path, err)
			}
			replies[k] = eng.EmitReply()
			return nil
		}
		more, err := eng.AbsorbConfirm(jobs[k].section)
		if err != nil {
			return fmt.Errorf("collection: file %q: %w", engines[jobs[k].idx].path, err)
		}
		if more {
			replies[k] = eng.EmitBatch()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	count := 0
	for _, r := range replies {
		if r != nil {
			count++
		}
	}
	rb.Reset()
	rb.Uvarint(uint64(count))
	for k, r := range replies {
		if r != nil {
			rb.Uvarint(jobs[k].idx)
			rb.Bytes(r)
			perEngine[jobs[k].idx] += int64(len(r))
		}
	}
	return rb.Build(), nil
}

// VerifyAgainst checks that every file in result matches the expected
// content; a helper for tests and the CLI's --check mode.
func VerifyAgainst(result, want map[string][]byte) error {
	if len(result) != len(want) {
		return fmt.Errorf("collection: file count %d, want %d", len(result), len(want))
	}
	for path, data := range want {
		got, ok := result[path]
		if !ok {
			return fmt.Errorf("collection: missing %q", path)
		}
		if md4.Sum(got) != md4.Sum(data) {
			return fmt.Errorf("collection: content mismatch for %q", path)
		}
	}
	return nil
}
