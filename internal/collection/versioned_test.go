package collection

import (
	"bytes"
	"sort"
	"sync"
	"testing"

	"msync/internal/core"
	"msync/internal/delta"
	"msync/internal/md4"
	"msync/internal/sigcache"
	"msync/internal/stats"
	"msync/internal/store"
	"msync/internal/transport"
)

// versionedTrees builds two collection versions exercising every journal op:
// an unchanged file, a modified file large enough to matter, a deleted file
// and a new file.
func versionedTrees() (v1, v2 map[string][]byte) {
	keep := bytes.Repeat([]byte("unchanged content stays put. "), 50)
	oldMod := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 120)
	newMod := append(append([]byte{}, oldMod[:2000]...), oldMod[2500:]...)
	newMod = append(newMod, []byte("fresh trailing edit for version two")...)
	v1 = map[string][]byte{
		"keep.txt": keep,
		"mod.txt":  oldMod,
		"gone.txt": []byte("this file is deleted in v2"),
	}
	v2 = map[string][]byte{
		"keep.txt": keep,
		"mod.txt":  newMod,
		"new.txt":  bytes.Repeat([]byte("a brand new file "), 30),
	}
	return v1, v2
}

// versionedServer builds a store-backed server holding tree2 with tree1 and
// tree2 snapshotted as versions 1 and 2.
func versionedServer(t *testing.T, tree1, tree2 map[string][]byte, cfg core.Config) *Server {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, err := NewServerSource(NewStoreSource(MapSource(tree1), st), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := srv.Snapshot(); err != nil || v != 1 {
		t.Fatalf("snapshot v1 = (%d, %v)", v, err)
	}
	// Push-adoption path doubles as the collection swap: the StoreSource
	// wrapper must survive it.
	srv.setFiles(tree2)
	if v, err := srv.Snapshot(); err != nil || v != 2 {
		t.Fatalf("snapshot v2 = (%d, %v)", v, err)
	}
	return srv
}

// runVersioned syncs cli against srv over a pipe and returns the client
// result and server costs.
func runVersioned(t *testing.T, srv *Server, cli *Client) (*Result, *stats.Costs) {
	t.Helper()
	a, b := transport.Pipe()
	var serverCosts *stats.Costs
	var serverErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		serverCosts, serverErr = srv.Serve(a)
	}()
	res, err := cli.Sync(b)
	b.Close()
	wg.Wait()
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	if serverErr != nil {
		t.Fatalf("server: %v", serverErr)
	}
	return res, serverCosts
}

// TestJournalFastPath: an announcing client at a known version receives the
// precomputed journal delta — no map-construction rounds — and converges to
// exactly the tree a cold full sync produces, at workers 1 and 8.
func TestJournalFastPath(t *testing.T) {
	tree1, tree2 := versionedTrees()
	cold, _ := session(t, tree2, tree1, core.DefaultConfig())
	if err := VerifyAgainst(cold.Files, tree2); err != nil {
		t.Fatalf("cold sync: %v", err)
	}
	for _, workers := range []int{1, 8} {
		cfg := core.DefaultConfig()
		cfg.Workers = workers
		srv := versionedServer(t, tree1, tree2, cfg)

		cli := NewClient(tree1)
		cli.Workers = workers
		cli.AnnounceVersion = true
		cli.BaseVersion = 1
		res, serverCosts := runVersioned(t, srv, cli)

		if serverCosts.JournalHits != 1 || serverCosts.JournalMisses != 0 {
			t.Fatalf("workers=%d: journal hits/misses = %d/%d, want 1/0",
				workers, serverCosts.JournalHits, serverCosts.JournalMisses)
		}
		if serverCosts.FilesJournal == 0 {
			t.Fatalf("workers=%d: no journal files counted", workers)
		}
		if got := serverCosts.Bytes(stats.S2C, stats.PhaseMap) + serverCosts.Bytes(stats.C2S, stats.PhaseMap); got != 0 {
			t.Fatalf("workers=%d: journal session spent %d map bytes", workers, got)
		}
		if res.Version != 2 {
			t.Fatalf("workers=%d: result version = %d, want 2", workers, res.Version)
		}
		if err := VerifyAgainst(res.Files, tree2); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Byte-identical convergence with the cold full sync.
		for path, want := range cold.Files {
			if !bytes.Equal(res.Files[path], want) {
				t.Fatalf("workers=%d: %q differs from cold sync result", workers, path)
			}
		}
		if len(res.Files) != len(cold.Files) {
			t.Fatalf("workers=%d: file count %d vs cold %d", workers, len(res.Files), len(cold.Files))
		}
		// Both sides account the same totals on the journal path too.
		if res.Costs.Total() != serverCosts.Total() {
			t.Fatalf("workers=%d: cost totals disagree: %d vs %d",
				workers, res.Costs.Total(), serverCosts.Total())
		}
	}
}

// TestJournalUnknownVersionFallsBack: an unknown (or GC'd) announced version
// runs the full protocol and still teaches the client the current version.
func TestJournalUnknownVersionFallsBack(t *testing.T) {
	tree1, tree2 := versionedTrees()
	srv := versionedServer(t, tree1, tree2, core.DefaultConfig())
	cli := NewClient(tree1)
	cli.AnnounceVersion = true
	cli.BaseVersion = 99
	res, serverCosts := runVersioned(t, srv, cli)
	if serverCosts.JournalHits != 0 || serverCosts.JournalMisses != 1 {
		t.Fatalf("journal hits/misses = %d/%d, want 0/1", serverCosts.JournalHits, serverCosts.JournalMisses)
	}
	if serverCosts.FilesJournal != 0 {
		t.Fatal("fallback session must not use journal verdicts")
	}
	if res.Version != 2 {
		t.Fatalf("fallback must still report the current version, got %d", res.Version)
	}
	if err := VerifyAgainst(res.Files, tree2); err != nil {
		t.Fatal(err)
	}
}

// TestJournalDriftedManifestFallsBack: announcing a stored version while
// holding different content (digest mismatch) must miss, not desynchronize.
func TestJournalDriftedManifestFallsBack(t *testing.T) {
	tree1, tree2 := versionedTrees()
	srv := versionedServer(t, tree1, tree2, core.DefaultConfig())
	drifted := map[string][]byte{}
	for p, d := range tree1 {
		drifted[p] = d
	}
	drifted["mod.txt"] = []byte("locally drifted content, not what v1 recorded")
	cli := NewClient(drifted)
	cli.AnnounceVersion = true
	cli.BaseVersion = 1
	res, serverCosts := runVersioned(t, srv, cli)
	if serverCosts.JournalMisses != 1 {
		t.Fatalf("drifted manifest should miss, got %d misses", serverCosts.JournalMisses)
	}
	if err := VerifyAgainst(res.Files, tree2); err != nil {
		t.Fatal(err)
	}
}

// recordWriter wraps a pipe end, recording every byte written (the
// server-to-client stream) for wire-identity comparisons.
type recordWriter struct {
	*transport.PipeEnd
	mu  sync.Mutex
	buf bytes.Buffer
}

func (r *recordWriter) Write(p []byte) (int, error) {
	r.mu.Lock()
	r.buf.Write(p)
	r.mu.Unlock()
	return r.PipeEnd.Write(p)
}

func (r *recordWriter) bytes() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]byte(nil), r.buf.Bytes()...)
}

// serveRecorded runs one sync against srv, recording the server's output.
func serveRecorded(t *testing.T, srv *Server, cli *Client) ([]byte, *Result) {
	t.Helper()
	a, b := transport.Pipe()
	rec := &recordWriter{PipeEnd: a}
	var serverErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		_, serverErr = srv.Serve(rec)
	}()
	res, err := cli.Sync(b)
	b.Close()
	wg.Wait()
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	if serverErr != nil {
		t.Fatalf("server: %v", serverErr)
	}
	return rec.bytes(), res
}

// TestVersionedServerWireIdentityWithoutAnnouncement: when the client does
// not announce, a store-backed server's output stream is byte-identical to a
// plain server's — the versioned path changes nothing unless asked for.
func TestVersionedServerWireIdentityWithoutAnnouncement(t *testing.T) {
	tree1, tree2 := versionedTrees()
	cfg := core.DefaultConfig()

	plain, err := NewServer(tree2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plainStream, plainRes := serveRecorded(t, plain, NewClient(tree1))

	versioned := versionedServer(t, tree1, tree2, cfg)
	vstream, vres := serveRecorded(t, versioned, NewClient(tree1))

	if !bytes.Equal(plainStream, vstream) {
		t.Fatalf("server streams differ without announcement: %d vs %d bytes",
			len(plainStream), len(vstream))
	}
	if plainRes.Version != 0 || vres.Version != 0 {
		t.Fatal("non-announcing clients must not receive a version")
	}
}

// corruptVersioned is a VersionedSource whose modify payloads are garbage:
// the client-side verification must fail and fall back to whole files from
// VersionContent, converging anyway. Adds and deletes stay valid.
type corruptVersioned struct {
	MapSource
	base   map[string][]byte
	target map[string][]byte
}

func (c *corruptVersioned) CurrentVersion() uint64    { return 2 }
func (c *corruptVersioned) Snapshot() (uint64, error) { return 2, nil }

func (c *corruptVersioned) VersionDelta(base uint64, baseDigest, currentDigest [md4.Size]byte) (*store.Delta, bool) {
	d := &store.Delta{Base: base, Current: 2, Changes: map[string]*store.Change{}}
	for path, data := range c.target {
		old, held := c.base[path]
		switch {
		case held && bytes.Equal(old, data):
			continue
		case held:
			d.Changes[path] = &store.Change{
				Op:      store.OpModify,
				Len:     len(data),
				Sum:     md4.Sum(data),
				Payload: []byte("definitely not a valid delta stream"),
			}
		default:
			d.Changes[path] = &store.Change{
				Op:      store.OpAdd,
				Len:     len(data),
				Sum:     md4.Sum(data),
				Payload: delta.Compress(data),
			}
			d.Added = append(d.Added, path)
		}
	}
	for path := range c.base {
		if _, held := c.target[path]; !held {
			d.Changes[path] = &store.Change{Op: store.OpDelete}
		}
	}
	sort.Strings(d.Added)
	return d, true
}

func (c *corruptVersioned) VersionContent(sum [md4.Size]byte) ([]byte, error) {
	for _, data := range c.target {
		if md4.Sum(data) == sum {
			return data, nil
		}
	}
	return nil, store.ErrUnknownContent
}

func (c *corruptVersioned) Signature(string) *sigcache.Sig { return nil }

// TestJournalCorruptPayloadFallsBackToFull: a journal payload that fails to
// apply is acked like a failed engine and answered with the whole file.
func TestJournalCorruptPayloadFallsBackToFull(t *testing.T) {
	tree1, tree2 := versionedTrees()
	// Serve tree2's content but with corrupt delta payloads. The client
	// holds tree1 (mod.txt differs; gone.txt and new.txt churn too).
	src := &corruptVersioned{MapSource: MapSource(tree2), base: tree1, target: tree2}
	srv, err := NewServerSource(src, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(tree1)
	cli.AnnounceVersion = true
	cli.BaseVersion = 1
	res, serverCosts := runVersioned(t, srv, cli)
	if serverCosts.JournalHits != 1 {
		t.Fatalf("journal hits = %d, want 1", serverCosts.JournalHits)
	}
	if res.Costs.FilesFull == 0 {
		t.Fatal("corrupt journal payloads must fall back to full transfers")
	}
	if err := VerifyAgainst(res.Files, tree2); err != nil {
		t.Fatal(err)
	}
}

// TestAnnounceAgainstPlainServer: announcing to a server without a store is
// harmless — the session runs the normal protocol, Version stays 0.
func TestAnnounceAgainstPlainServer(t *testing.T) {
	tree1, tree2 := versionedTrees()
	srv, err := NewServer(tree2, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(tree1)
	cli.AnnounceVersion = true
	cli.BaseVersion = 7
	res, serverCosts := runVersioned(t, srv, cli)
	if serverCosts.JournalHits != 0 || serverCosts.JournalMisses != 0 {
		t.Fatal("plain server must not count journal outcomes")
	}
	if res.Version != 0 {
		t.Fatalf("plain server reported version %d", res.Version)
	}
	if err := VerifyAgainst(res.Files, tree2); err != nil {
		t.Fatal(err)
	}
}

// TestAnnounceTreeMode: the version extension is ignored in tree mode.
func TestAnnounceTreeMode(t *testing.T) {
	tree1, tree2 := versionedTrees()
	srv := versionedServer(t, tree1, tree2, core.DefaultConfig())
	cli := NewClient(tree1)
	cli.TreeManifest = true
	cli.AnnounceVersion = true
	cli.BaseVersion = 1
	res, serverCosts := runVersioned(t, srv, cli)
	if serverCosts.JournalHits != 0 {
		t.Fatal("tree mode must not take the journal path")
	}
	if res.Version != 0 {
		t.Fatalf("tree mode reported version %d", res.Version)
	}
	if err := VerifyAgainst(res.Files, tree2); err != nil {
		t.Fatal(err)
	}
}

// TestJournalEmptyDelta: announcing the current version yields an empty
// journal session — everything unchanged, nothing transferred but control.
func TestJournalEmptyDelta(t *testing.T) {
	tree1, tree2 := versionedTrees()
	srv := versionedServer(t, tree1, tree2, core.DefaultConfig())
	cli := NewClient(tree2)
	cli.AnnounceVersion = true
	cli.BaseVersion = 2
	res, serverCosts := runVersioned(t, srv, cli)
	if serverCosts.JournalHits != 1 {
		t.Fatalf("journal hits = %d, want 1", serverCosts.JournalHits)
	}
	if got := res.Costs.PhaseTotal(stats.PhaseFull); got != 0 {
		t.Fatalf("empty delta session transferred %d full-file bytes", got)
	}
	// Only the empty FrameDelta frame (its zero count byte) may land in the
	// delta phase; actual payload would be far larger.
	if got := res.Costs.PhaseTotal(stats.PhaseDelta); got > 4 {
		t.Fatalf("empty delta session transferred %d delta bytes", got)
	}
	if serverCosts.FilesJournal != 0 || res.Costs.FilesSynced != 0 {
		t.Fatal("empty delta session must not transfer any files")
	}
	if err := VerifyAgainst(res.Files, tree2); err != nil {
		t.Fatal(err)
	}
}
