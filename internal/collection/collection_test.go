package collection

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"msync/internal/core"
	"msync/internal/corpus"
	"msync/internal/gtest"
	"msync/internal/stats"
	"msync/internal/transport"
	"msync/internal/wire"
)

func TestManifestRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		files := map[string][]byte{}
		for i := 0; i < int(n%20); i++ {
			files[corpusPath(rng, i)] = corpus.RandomText(rng, rng.Intn(100))
		}
		m := BuildManifest(files)
		got, err := decodeManifest(encodeManifest(m))
		if err != nil || len(got) != len(m) {
			return false
		}
		for i := range m {
			if got[i] != m[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func corpusPath(rng *rand.Rand, i int) string {
	dirs := []string{"src", "doc", "web", "a/b"}
	return dirs[rng.Intn(len(dirs))] + "/" + string(rune('a'+i%26)) + ".txt"
}

func TestManifestSorted(t *testing.T) {
	m := BuildManifest(map[string][]byte{"z": nil, "a": nil, "m": nil})
	if m[0].Path != "a" || m[1].Path != "m" || m[2].Path != "z" {
		t.Fatalf("not sorted: %v", m)
	}
}

func TestManifestDecodeErrors(t *testing.T) {
	m := BuildManifest(map[string][]byte{"hello": []byte("world")})
	raw := encodeManifest(m)
	for cut := 1; cut < len(raw); cut += 3 {
		if _, err := decodeManifest(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestConfigRoundTrip(t *testing.T) {
	configs := []core.Config{
		core.DefaultConfig(),
		core.BasicConfig(),
		core.OneShotConfig(512),
	}
	adaptive := core.DefaultConfig()
	adaptive.Adaptive = true
	adaptive.AdaptiveMinBlock = 512
	adaptive.AdaptiveFactor = 2.5
	adaptive.EnableLocal = true
	configs = append(configs, adaptive)
	adler := core.DefaultConfig()
	adler.HashFamily = "adler"
	configs = append(configs, adler)
	twoPhase := core.DefaultConfig()
	twoPhase.TwoPhaseRounds = true
	configs = append(configs, twoPhase)
	for i, cfg := range configs {
		got, err := decodeConfig(encodeConfig(&cfg))
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if got != cfg {
			t.Fatalf("config %d: got %+v want %+v", i, got, cfg)
		}
	}
}

func TestConfigDecodeTruncation(t *testing.T) {
	cfg := core.DefaultConfig()
	raw := encodeConfig(&cfg)
	for cut := 0; cut < len(raw); cut++ {
		if _, err := decodeConfig(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// session runs one full sync over a pipe and returns both sides' costs.
func session(t *testing.T, serverFiles, clientFiles map[string][]byte, cfg core.Config) (*Result, *stats.Costs) {
	t.Helper()
	srv, err := NewServer(serverFiles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.Pipe()
	var serverCosts *stats.Costs
	var serverErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		serverCosts, serverErr = srv.Serve(a)
	}()
	res, err := NewClient(clientFiles).Sync(b)
	b.Close()
	wg.Wait()
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	if serverErr != nil {
		t.Fatalf("server: %v", serverErr)
	}
	return res, serverCosts
}

// TestCostsAgreeBetweenSides: both endpoints account identical totals.
func TestCostsAgreeBetweenSides(t *testing.T) {
	v1, v2 := corpus.EmacsProfile(0.08).Generate(5)
	res, serverCosts := session(t, v2.Map(), v1.Map(), core.DefaultConfig())
	if err := VerifyAgainst(res.Files, v2.Map()); err != nil {
		t.Fatal(err)
	}
	if res.Costs.Total() != serverCosts.Total() {
		t.Fatalf("client total %d != server total %d", res.Costs.Total(), serverCosts.Total())
	}
	for _, d := range []stats.Direction{stats.C2S, stats.S2C} {
		if res.Costs.DirTotal(d) != serverCosts.DirTotal(d) {
			t.Fatalf("direction %v disagrees: %d vs %d",
				d, res.Costs.DirTotal(d), serverCosts.DirTotal(d))
		}
	}
	if res.Costs.Roundtrips != serverCosts.Roundtrips {
		t.Fatalf("roundtrips disagree: %d vs %d", res.Costs.Roundtrips, serverCosts.Roundtrips)
	}
}

// TestDeepVerificationBatches drives the multi-batch confirm/batch frames.
func TestDeepVerificationBatches(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Verify = gtest.Config{Batches: 4, GroupSize: 16, TrustedGroupSize: 16, SplitFactor: 2, RetryAlternates: 1}
	v1, v2 := corpus.GCCProfile(0.05).Generate(8)
	res, _ := session(t, v2.Map(), v1.Map(), cfg)
	if err := VerifyAgainst(res.Files, v2.Map()); err != nil {
		t.Fatal(err)
	}
}

// TestServerErrorFrame: a client speaking a wrong version gets a clean
// error, not a hang.
func TestServerErrorFrame(t *testing.T) {
	srv, err := NewServer(map[string][]byte{"a": []byte("data")}, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		srv.Serve(a)
	}()
	fw := wire.NewFrameWriter(b)
	hb := wire.NewBuffer(4)
	hb.Uvarint(999) // unsupported version
	fw.WriteFrame(wire.FrameHello, hb.Build())
	fw.WriteFrame(wire.FrameManifest, encodeManifest(nil))
	fw.Flush()
	fr := wire.NewFrameReader(b)
	ft, payload, err := fr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if ft != wire.FrameError {
		t.Fatalf("got frame %s (%q), want ERROR", wire.FrameName(ft), payload)
	}
	b.Close()
	wg.Wait()
}

// TestConnectionCutMidSession: severing the link must surface errors on
// both sides without hanging.
func TestConnectionCutMidSession(t *testing.T) {
	v1, v2 := corpus.GCCProfile(0.05).Generate(12)
	srv, err := NewServer(v2.Map(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.Pipe()
	// The server's writes die after 200 bytes (mid-verdicts/rounds).
	faulty := transport.NewFaultyEnd(a, 200, errors.New("carrier lost"))
	var wg sync.WaitGroup
	var serverErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		_, serverErr = srv.Serve(faulty)
	}()
	_, clientErr := NewClient(v1.Map()).Sync(b)
	b.Close()
	wg.Wait()
	if serverErr == nil && clientErr == nil {
		t.Fatal("neither side noticed the dead link")
	}
}

// TestUnchangedCollectionIsNearlyFree: fingerprints must keep the cost to
// the manifest exchange.
func TestUnchangedCollectionIsNearlyFree(t *testing.T) {
	v1, _ := corpus.GCCProfile(0.1).Generate(3)
	res, _ := session(t, v1.Map(), v1.Map(), core.DefaultConfig())
	if err := VerifyAgainst(res.Files, v1.Map()); err != nil {
		t.Fatal(err)
	}
	perFile := float64(res.Costs.Total()) / float64(len(v1.Files))
	if perFile > 80 {
		t.Fatalf("unchanged collection costs %.1f bytes/file", perFile)
	}
	if res.Costs.FilesUnchanged != len(v1.Files) {
		t.Fatalf("FilesUnchanged = %d, want %d", res.Costs.FilesUnchanged, len(v1.Files))
	}
}

func TestVerifyAgainst(t *testing.T) {
	a := map[string][]byte{"x": []byte("1"), "y": []byte("2")}
	if err := VerifyAgainst(a, a); err != nil {
		t.Fatal(err)
	}
	if err := VerifyAgainst(map[string][]byte{"x": []byte("1")}, a); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := VerifyAgainst(map[string][]byte{"x": []byte("1"), "y": []byte("!")}, a); err == nil {
		t.Fatal("wrong content accepted")
	}
	if err := VerifyAgainst(map[string][]byte{"x": []byte("1"), "z": []byte("2")}, a); err == nil {
		t.Fatal("renamed file accepted")
	}
}

func TestSelfTest(t *testing.T) {
	srv, err := NewServer(map[string][]byte{"a": corpus.SourceText(rand.New(rand.NewSource(1)), 5000)}, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SelfTest(); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryContent: collections are byte sets, not text.
func TestBinaryContent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	old := corpus.RandomText(rng, 40_000)
	cur := append([]byte(nil), old...)
	copy(cur[20_000:], corpus.RandomText(rng, 500))
	res, _ := session(t, map[string][]byte{"bin": cur}, map[string][]byte{"bin": old}, core.DefaultConfig())
	if !bytes.Equal(res.Files["bin"], cur) {
		t.Fatal("binary mismatch")
	}
}

func TestFrameOverheadCounts(t *testing.T) {
	if frameOverhead(0) != 2 {
		t.Fatal("empty frame")
	}
	if frameOverhead(127) != 2 || frameOverhead(128) != 3 || frameOverhead(1<<14) != 4 {
		t.Fatal("varint sizing")
	}
}

// TestPerFileAttribution: per-file byte attribution covers the synced files
// and stays below the session total.
func TestPerFileAttribution(t *testing.T) {
	v1, v2 := corpus.GCCProfile(0.08).Generate(61)
	res, _ := session(t, v2.Map(), v1.Map(), core.DefaultConfig())
	if len(res.PerFile) != res.Costs.FilesSynced {
		t.Fatalf("PerFile has %d entries, %d files synced", len(res.PerFile), res.Costs.FilesSynced)
	}
	var sum int64
	for path, n := range res.PerFile {
		if n <= 0 {
			t.Fatalf("%s attributed %d bytes", path, n)
		}
		sum += n
	}
	if sum > res.Costs.Total() {
		t.Fatalf("attributed %d > session total %d", sum, res.Costs.Total())
	}
	t.Logf("attributed %d of %d total bytes across %d files", sum, res.Costs.Total(), len(res.PerFile))
}
