package collection

import (
	"log/slog"
	"time"

	"msync/internal/core"
	"msync/internal/obs"
	"msync/internal/stats"
	"msync/internal/transport"
	"msync/internal/wire"
)

// sessTrace threads the optional observability hooks through one session:
// span-like trace events per protocol phase and a structured log line at
// session end. It shadows the session's cost accounting — every call that
// adds bytes to stats.Costs goes through it — so a session's emitted spans
// sum exactly to the Costs wire totals, by construction.
//
// A nil *sessTrace is the disabled state: every method is nil-receiver safe
// and falls through to plain cost accounting, so sessions without a tracer
// or logger allocate nothing and behave identically.
type sessTrace struct {
	tr   obs.Tracer
	log  *slog.Logger
	sid  uint64
	side string // "client" or "server"
	mode core.MapMode

	// Current span.
	phase  string
	round  int
	start  time.Time
	frames int
	up     int64 // toward the data holder (stats.C2S)
	down   int64 // from the data holder (stats.S2C)

	// Session totals.
	sessStart time.Time
	totFrames int
	totUp     int64
	totDown   int64
}

// newSessTrace starts tracing one session, or returns nil when neither a
// tracer nor a logger is configured.
func newSessTrace(tr obs.Tracer, log *slog.Logger, side string) *sessTrace {
	if tr == nil && log == nil {
		return nil
	}
	now := time.Now()
	st := &sessTrace{
		tr:        tr,
		log:       obs.OrNop(log),
		sid:       obs.NextSessionID(),
		side:      side,
		phase:     obs.PhaseHandshake,
		start:     now,
		sessStart: now,
	}
	st.log.Debug("msync: session start", "session", st.sid, "side", side)
	return st
}

// begin switches to a new span, flushing the current one. Re-entering the
// same (phase, round) is a no-op, so loops may call it per iteration and
// still produce one span per phase.
func (t *sessTrace) begin(phase string, round int) {
	if t == nil || (t.phase == phase && t.round == round) {
		return
	}
	t.flush()
	t.phase = phase
	t.round = round
	t.start = time.Now()
}

// flush emits the current span if it carried any traffic.
func (t *sessTrace) flush() {
	if t.frames == 0 && t.up == 0 && t.down == 0 {
		return
	}
	t.emit(obs.Event{
		Phase:     t.phase,
		Round:     t.round,
		Frames:    t.frames,
		BytesUp:   t.up,
		BytesDown: t.down,
		Dur:       time.Since(t.start),
	})
	t.frames = 0
	t.up = 0
	t.down = 0
}

// setMode records the session's negotiated map-construction mode; spans
// emitted from then on carry it. Nil-receiver safe like every other method.
func (t *sessTrace) setMode(m core.MapMode) {
	if t == nil {
		return
	}
	t.mode = m
}

// emit stamps and sends one event.
func (t *sessTrace) emit(e obs.Event) {
	if t.tr == nil {
		return
	}
	e.Time = time.Now()
	e.Session = t.sid
	e.Side = t.side
	if t.mode != core.MapHalving {
		e.Mode = t.mode.String()
	}
	t.tr.Emit(e)
}

// cost accounts one frame: payload plus framing into costs (exactly what
// the plain addCost helper does) and into the current span.
func (t *sessTrace) cost(c *stats.Costs, d stats.Direction, p stats.Phase, payload int) {
	addCost(c, d, p, payload)
	if t == nil {
		return
	}
	t.frames++
	t.totFrames++
	t.addBytes(d, int64(payload+frameOverhead(payload)))
}

// raw accounts bytes that are part of an already-counted frame (the
// full-phase slice of a split verdict frame): no framing, no frame count.
func (t *sessTrace) raw(c *stats.Costs, d stats.Direction, p stats.Phase, n int) {
	c.Add(d, p, n)
	if t == nil {
		return
	}
	t.addBytes(d, int64(n))
}

func (t *sessTrace) addBytes(d stats.Direction, n int64) {
	if d == stats.C2S {
		t.up += n
		t.totUp += n
	} else {
		t.down += n
		t.totDown += n
	}
}

// stream folds one closed multiplexed stream's traffic into the session
// totals and emits its span. Called from the session's scheduler goroutine
// only, after the stream's (possibly concurrent) handler has finished, so
// the accumulators are quiescent and the trace state is never shared.
func (t *sessTrace) stream(id, frames int, up, down int64, start time.Time) {
	if t == nil {
		return
	}
	t.totFrames += frames
	t.totUp += up
	t.totDown += down
	t.emit(obs.Event{
		Phase:     obs.PhaseStream,
		Stream:    id + 1,
		Frames:    frames,
		BytesUp:   up,
		BytesDown: down,
		Dur:       time.Since(start),
	})
}

// end closes the session: flushes the last span, emits the session summary
// event, and writes the structured session log line with the transport- and
// wire-level counters.
func (t *sessTrace) end(costs *stats.Costs, err error, fr *wire.FrameReader, fw *wire.FrameWriter, ios transport.IOStats) {
	if t == nil {
		return
	}
	t.flush()
	ev := obs.Event{
		Phase:     obs.PhaseSession,
		Frames:    t.totFrames,
		BytesUp:   t.totUp,
		BytesDown: t.totDown,
		Dur:       time.Since(t.sessStart),
	}
	if err != nil {
		ev.Err = err.Error()
	}
	t.emit(ev)

	framesRead, bytesRead := fr.Counts()
	framesWritten, bytesWritten := fw.Counts()
	attrs := []any{
		"session", t.sid,
		"side", t.side,
		"bytes", costs.Total(),
		"roundtrips", costs.Roundtrips,
		"dur", time.Since(t.sessStart),
		"frames_read", framesRead,
		"frames_written", framesWritten,
		"wire_bytes_read", bytesRead,
		"wire_bytes_written", bytesWritten,
		"io_reads", ios.Reads,
		"io_writes", ios.Writes,
	}
	if err != nil {
		t.log.Warn("msync: session failed", append(attrs, "err", err)...)
		return
	}
	t.log.Info("msync: session done", attrs...)
}
