package collection

import (
	"bytes"
	"context"
	"errors"
	"os"
	"testing"
	"time"

	"msync/internal/core"
	"msync/internal/transport"
	"msync/internal/wire"
)

// sessionTestFiles returns a server/client pair with one changed file large
// enough to run the multi-round sync engine and to need a sizeable delta
// (several KB of novel content), so sessions cannot complete within a small
// fault budget.
func sessionTestFiles() (serverFiles, clientFiles map[string][]byte) {
	old := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 200)
	novel := make([]byte, 4096)
	for i := range novel {
		novel[i] = byte(i*7 + i>>3)
	}
	cur := append(append(append([]byte{}, old[:3000]...), novel...), old[5000:]...)
	return map[string][]byte{"f.txt": cur}, map[string][]byte{"f.txt": old}
}

// TestStalledServerRoundDeadline: a client whose peer never answers must
// fail the round with a deadline error within the configured round timeout,
// and the failure must be tagged retry-safe (handshake phase).
func TestStalledServerRoundDeadline(t *testing.T) {
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	_, clientFiles := sessionTestFiles()
	c := NewClient(clientFiles)
	c.RoundTimeout = 100 * time.Millisecond

	start := time.Now()
	_, err := c.SyncContext(context.Background(), b)
	elapsed := time.Since(start)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want deadline error from stalled peer, got %v", err)
	}
	if !errors.Is(err, ErrHandshake) {
		t.Fatalf("pre-verdict stall must be retry-safe (ErrHandshake), got %v", err)
	}
	if elapsed < 90*time.Millisecond {
		t.Fatalf("deadline fired after only %v, before the 100ms round timeout", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
}

// TestStalledMidSessionRoundDeadline: the server's link silently drops all
// output after a budget (a stall, not an error), so the client blocks
// mid-session until its round deadline fires.
func TestStalledMidSessionRoundDeadline(t *testing.T) {
	serverFiles, clientFiles := sessionTestFiles()
	srv, err := NewServer(serverFiles, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.Pipe()
	faulty := transport.NewFaultConn(a).DropAfter(250)
	srvDone := make(chan error, 1)
	go func() {
		_, err := srv.Serve(faulty)
		srvDone <- err
	}()

	c := NewClient(clientFiles)
	c.RoundTimeout = 100 * time.Millisecond
	start := time.Now()
	_, err = c.SyncContext(context.Background(), b)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want deadline error through the stalled link, got %v", err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("client needed %v to notice the stall", el)
	}
	// The client gives up; closing its end reaps the server session too.
	b.Close()
	a.Close()
	select {
	case <-srvDone:
	case <-time.After(10 * time.Second):
		t.Fatal("server session leaked after client abandoned the sync")
	}
}

// TestSeveredMidFrame: the connection dies partway through a frame. Both
// sides must return errors promptly — no hang, no partial adoption.
func TestSeveredMidFrame(t *testing.T) {
	serverFiles, clientFiles := sessionTestFiles()
	srv, err := NewServer(serverFiles, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.Pipe()
	// 100 bytes lands inside the verdicts frame (config alone is ~60).
	faulty := transport.NewFaultConn(a).SeverAfter(100)
	srvDone := make(chan error, 1)
	go func() {
		_, err := srv.Serve(faulty)
		srvDone <- err
	}()

	cliDone := make(chan error, 1)
	go func() {
		_, err := NewClient(clientFiles).Sync(b)
		cliDone <- err
	}()

	for i := 0; i < 2; i++ {
		select {
		case err := <-cliDone:
			if err == nil {
				t.Fatal("client succeeded over a severed connection")
			}
		case err := <-srvDone:
			if err == nil {
				t.Fatal("server succeeded over a severed connection")
			}
		case <-time.After(10 * time.Second):
			t.Fatal("severed session hung")
		}
	}
}

// TestClientCancellation: cancelling the context unblocks a client that is
// waiting on a silent peer, even with no round timeout configured.
func TestClientCancellation(t *testing.T) {
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	_, clientFiles := sessionTestFiles()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := NewClient(clientFiles).SyncContext(ctx, b)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancellation took %v to take effect", el)
	}
}

// TestServerRoundDeadline: a server must not pin a goroutine on a client
// that handshakes and then goes silent.
func TestServerRoundDeadline(t *testing.T) {
	serverFiles, _ := sessionTestFiles()
	srv, err := NewServer(serverFiles, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.RoundTimeout = 100 * time.Millisecond
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()

	// A client that says hello and then stalls.
	fw := wire.NewFrameWriter(b)
	hb := wire.NewBuffer(8)
	hb.Uvarint(protocolVersion)
	hb.Byte(rolePull)
	hb.Byte(modeManifest)
	if err := fw.WriteFrame(wire.FrameHello, hb.Build()); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, err = srv.ServeContext(context.Background(), a)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want deadline error from silent client, got %v", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("server needed %v to drop the silent client", el)
	}
}

// TestContextVariantsDelegate: the legacy entry points and their *Context
// twins produce identical results on a healthy link.
func TestContextVariantsDelegate(t *testing.T) {
	serverFiles, clientFiles := sessionTestFiles()
	for _, useCtx := range []bool{false, true} {
		srv, err := NewServer(serverFiles, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		a, b := transport.Pipe()
		go func() {
			defer a.Close()
			if useCtx {
				srv.ServeContext(context.Background(), a)
			} else {
				srv.Serve(a)
			}
		}()
		c := NewClient(clientFiles)
		var res *Result
		if useCtx {
			res, err = c.SyncContext(context.Background(), b)
		} else {
			res, err = c.Sync(b)
		}
		b.Close()
		if err != nil {
			t.Fatalf("useCtx=%v: %v", useCtx, err)
		}
		if err := VerifyAgainst(res.Files, serverFiles); err != nil {
			t.Fatalf("useCtx=%v: %v", useCtx, err)
		}
	}
}

// TestHandshakeDeadlineUnpinsIdleDial: a dial that connects and never sends
// HELLO must fail the server session once the handshake deadline fires —
// even with no round timeout configured — so admission slots cannot be
// pinned by slow-loris peers.
func TestHandshakeDeadlineUnpinsIdleDial(t *testing.T) {
	serverFiles, _ := sessionTestFiles()
	srv, err := NewServer(serverFiles, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.HandshakeTimeout = 150 * time.Millisecond

	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close() // the "client": connected, forever silent

	start := time.Now()
	_, err = srv.ServeContext(context.Background(), a)
	elapsed := time.Since(start)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want deadline error from silent dial, got %v", err)
	}
	if elapsed < 140*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("handshake deadline fired after %v, configured 150ms", elapsed)
	}
}

// TestHandshakeDeadlineLiftedAfterVerdicts: once the handshake completes,
// the deadline must not abort a session whose transfer legitimately
// outlives it. The client is throttled so each round takes real time and
// the whole session comfortably exceeds the handshake budget.
func TestHandshakeDeadlineLiftedAfterVerdicts(t *testing.T) {
	serverFiles, clientFiles := sessionTestFiles()
	srv, err := NewServer(serverFiles, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.HandshakeTimeout = 250 * time.Millisecond

	a, b := transport.Pipe()
	srvDone := make(chan error, 1)
	go func() {
		_, err := srv.ServeContext(context.Background(), a)
		a.Close()
		srvDone <- err
	}()

	c := NewClient(clientFiles)
	res, err := c.SyncContext(context.Background(), &throttledConn{PipeEnd: b, delay: 60 * time.Millisecond})
	b.Close()
	if err != nil {
		t.Fatalf("throttled sync failed: %v", err)
	}
	if err := <-srvDone; err != nil {
		t.Fatalf("server session failed after handshake: %v", err)
	}
	if err := VerifyAgainst(res.Files, serverFiles); err != nil {
		t.Fatal(err)
	}
}

// throttledConn delays every write, stretching the session without ever
// stalling it.
type throttledConn struct {
	*transport.PipeEnd
	delay time.Duration
}

func (c *throttledConn) Write(p []byte) (int, error) {
	time.Sleep(c.delay)
	return c.PipeEnd.Write(p)
}

// TestBusyAnswerIsTypedAndRetrySafe: a client whose dial is answered with
// BUSY gets a *wire.BusyError carrying the retry-after hint, tagged as a
// handshake-phase (retry-safe) failure.
func TestBusyAnswerIsTypedAndRetrySafe(t *testing.T) {
	a, b := transport.Pipe()
	defer a.Close()
	go func() {
		fw := wire.NewFrameWriter(a)
		_ = fw.WriteFrame(wire.FrameBusy, wire.EncodeBusy(750*time.Millisecond))
		_ = fw.Flush()
	}()

	_, clientFiles := sessionTestFiles()
	_, err := NewClient(clientFiles).SyncContext(context.Background(), b)
	b.Close()
	var busy *wire.BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("want BusyError, got %v", err)
	}
	if busy.RetryAfter != 750*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 750ms", busy.RetryAfter)
	}
	if !errors.Is(err, ErrHandshake) {
		t.Fatalf("busy refusal must be retry-safe (ErrHandshake), got %v", err)
	}
}

// TestBusyAnswerTreeMode: the same classification holds for tree-manifest
// clients, whose first expected frame is TREE rather than VERDICTS.
func TestBusyAnswerTreeMode(t *testing.T) {
	a, b := transport.Pipe()
	defer a.Close()
	go func() {
		fw := wire.NewFrameWriter(a)
		_ = fw.WriteFrame(wire.FrameBusy, wire.EncodeBusy(time.Second))
		_ = fw.Flush()
	}()

	_, clientFiles := sessionTestFiles()
	c := NewClient(clientFiles)
	c.TreeManifest = true
	_, err := c.SyncContext(context.Background(), b)
	b.Close()
	var busy *wire.BusyError
	if !errors.As(err, &busy) || busy.RetryAfter != time.Second {
		t.Fatalf("tree-mode busy = %v, want BusyError{1s}", err)
	}
	if !errors.Is(err, ErrHandshake) {
		t.Fatalf("tree-mode busy must be ErrHandshake, got %v", err)
	}
}
