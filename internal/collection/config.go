package collection

import (
	"fmt"
	"math"

	"msync/internal/core"
	"msync/internal/gtest"
	"msync/internal/wire"
)

// protocolVersion guards wire compatibility.
const protocolVersion = 1

// encodeConfig serializes the protocol configuration. The server is
// authoritative: it ships its config in the verdicts message and the client
// builds its engines from it, so both sides always plan identically.
func encodeConfig(c *core.Config) []byte {
	b := wire.NewBuffer(64)
	b.Uvarint(uint64(c.MaxBlockSize))
	b.Uvarint(uint64(c.MinBlockSize))
	b.Uvarint(uint64(c.ContMinBlock))
	b.Uvarint(uint64(c.ContBits))
	b.Uvarint(uint64(c.SlackBits))
	b.Uvarint(uint64(c.MinHashBits))
	b.Uvarint(uint64(c.MaxHashBits))
	b.Uvarint(uint64(c.VerifyBits))
	b.Uvarint(uint64(c.Verify.Batches))
	b.Uvarint(uint64(c.Verify.GroupSize))
	b.Uvarint(uint64(c.Verify.TrustedGroupSize))
	b.Uvarint(uint64(c.Verify.SplitFactor))
	b.Uvarint(uint64(c.Verify.RetryAlternates))
	b.Bool(c.Decomposable)
	b.Bool(c.TwoPhaseRounds)
	b.Bool(c.EnableLocal)
	b.Uvarint(uint64(c.LocalRadius))
	b.Uvarint(uint64(c.LocalRange))
	b.Uvarint(uint64(c.LocalSlack))
	b.Uvarint(uint64(c.MaxAlternates))
	b.Bool(c.Adaptive)
	b.Uvarint(uint64(c.AdaptiveMinBlock))
	b.Uvarint(math.Float64bits(c.AdaptiveFactor))
	b.String(c.HashFamily)
	// The map mode rides as an optional trailing field: sessions that
	// negotiated CDC (hello extension 4) append it; halving sessions end
	// the config here, byte-identical to pre-CDC servers.
	if c.MapMode != core.MapHalving {
		b.Uvarint(uint64(c.MapMode))
	}
	return b.Build()
}

// decodeConfig parses a configuration.
func decodeConfig(p []byte) (core.Config, error) {
	pr := wire.NewParser(p)
	var c core.Config
	var v gtest.Config
	fields := []*int{
		&c.MaxBlockSize, &c.MinBlockSize, &c.ContMinBlock,
	}
	for _, f := range fields {
		x, err := pr.Uvarint()
		if err != nil {
			return c, fmt.Errorf("collection: config: %w", err)
		}
		*f = int(x)
	}
	ufields := []*uint{&c.ContBits, &c.SlackBits, &c.MinHashBits, &c.MaxHashBits, &c.VerifyBits}
	for _, f := range ufields {
		x, err := pr.Uvarint()
		if err != nil {
			return c, fmt.Errorf("collection: config: %w", err)
		}
		*f = uint(x)
	}
	vfields := []*int{&v.Batches, &v.GroupSize, &v.TrustedGroupSize, &v.SplitFactor, &v.RetryAlternates}
	for _, f := range vfields {
		x, err := pr.Uvarint()
		if err != nil {
			return c, fmt.Errorf("collection: config: %w", err)
		}
		*f = int(x)
	}
	c.Verify = v
	var err error
	if c.Decomposable, err = pr.Bool(); err != nil {
		return c, err
	}
	if c.TwoPhaseRounds, err = pr.Bool(); err != nil {
		return c, err
	}
	if c.EnableLocal, err = pr.Bool(); err != nil {
		return c, err
	}
	tail := []*int{&c.LocalRadius, &c.LocalRange}
	for _, f := range tail {
		x, err := pr.Uvarint()
		if err != nil {
			return c, err
		}
		*f = int(x)
	}
	ls, err := pr.Uvarint()
	if err != nil {
		return c, err
	}
	c.LocalSlack = uint(ls)
	ma, err := pr.Uvarint()
	if err != nil {
		return c, err
	}
	c.MaxAlternates = int(ma)
	if c.Adaptive, err = pr.Bool(); err != nil {
		return c, err
	}
	amb, err := pr.Uvarint()
	if err != nil {
		return c, err
	}
	c.AdaptiveMinBlock = int(amb)
	af, err := pr.Uvarint()
	if err != nil {
		return c, err
	}
	c.AdaptiveFactor = math.Float64frombits(af)
	if c.HashFamily, err = pr.String(); err != nil {
		return c, err
	}
	if pr.Remaining() > 0 {
		mm, err := pr.Uvarint()
		if err != nil {
			return c, err
		}
		c.MapMode = core.MapMode(mm)
	}
	return c, c.Validate()
}
