package collection

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"msync/internal/core"
	"msync/internal/corpus"
	"msync/internal/stats"
	"msync/internal/transport"
)

// extSession runs one tree-mode sync with the given client configuration
// and returns both sides' costs.
func extSession(t *testing.T, serverFiles, clientFiles map[string][]byte, tune func(*Client)) (*Result, *stats.Costs, *stats.Costs) {
	t.Helper()
	srv, err := NewServer(serverFiles, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.Pipe()
	var serverCosts *stats.Costs
	var serverErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		serverCosts, serverErr = srv.Serve(a)
	}()
	cli := NewClient(clientFiles)
	cli.TreeManifest = true
	if tune != nil {
		tune(cli)
	}
	res, err := cli.Sync(b)
	b.Close()
	wg.Wait()
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	if serverErr != nil {
		t.Fatalf("server: %v", serverErr)
	}
	if res.Costs.Total() != serverCosts.Total() {
		t.Fatalf("cost disagreement: client %d vs server %d", res.Costs.Total(), serverCosts.Total())
	}
	return res, res.Costs, serverCosts
}

// TestCrossFileRename: a pure rename (same content, new path) must be
// materialized by a local copy, with zero content bytes on the wire.
func TestCrossFileRename(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	moved := corpus.RandomText(rng, 50_000) // incompressible: a full send would show
	keep := corpus.SourceText(rng, 2_000)
	serverFiles := map[string][]byte{"docs/renamed.bin": moved, "keep": keep}
	clientFiles := map[string][]byte{"docs/original.bin": moved, "keep": keep}

	res, cc, sc := extSession(t, serverFiles, clientFiles, func(c *Client) {
		c.CrossFileMatch = true
	})
	if err := VerifyAgainst(res.Files, serverFiles); err != nil {
		t.Fatal(err)
	}
	if cc.FilesRenamed != 1 {
		t.Fatalf("FilesRenamed = %d, want 1", cc.FilesRenamed)
	}
	if cc.RenameBytesSaved != int64(len(moved)) {
		t.Fatalf("RenameBytesSaved = %d, want %d", cc.RenameBytesSaved, len(moved))
	}
	if got := cc.PhaseTotal(stats.PhaseFull) + cc.PhaseTotal(stats.PhaseDelta); got > 64 {
		t.Fatalf("rename moved %d content bytes; want ~0", got)
	}
	if cc.Total() > 2_000 {
		t.Fatalf("rename session cost %d bytes for a %d-byte file", cc.Total(), len(moved))
	}
	_ = sc
	t.Logf("pure rename of %d bytes cost %d wire bytes", len(moved), cc.Total())
}

// TestCrossFileRenameDisabled: the same workload without the extension pays
// the full transfer — the control arm for TestCrossFileRename.
func TestCrossFileRenameDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	moved := corpus.RandomText(rng, 50_000)
	serverFiles := map[string][]byte{"docs/renamed.bin": moved}
	clientFiles := map[string][]byte{"docs/original.bin": moved}

	res, cc, _ := extSession(t, serverFiles, clientFiles, nil)
	if err := VerifyAgainst(res.Files, serverFiles); err != nil {
		t.Fatal(err)
	}
	if cc.FilesRenamed != 0 {
		t.Fatalf("FilesRenamed = %d without the extension", cc.FilesRenamed)
	}
	if cc.Total() < int64(len(moved)) {
		t.Fatalf("expected a full transfer without cross-file matching, got %d bytes", cc.Total())
	}
}

// TestCrossFileAltBasis: a moved-and-edited file must sync against its old
// path as an alternate basis, costing a small delta instead of a full send.
func TestCrossFileAltBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	orig := corpus.SourceText(rng, 40_000)
	em := corpus.EditModel{BurstsPer32KB: 3, BurstEdits: 3, EditSize: 40, BurstSpread: 300}
	edited := em.Apply(rng, orig)
	serverFiles := map[string][]byte{"src/lib/engine.go": edited}
	clientFiles := map[string][]byte{"src/engine.go": orig}

	res, cc, sc := extSession(t, serverFiles, clientFiles, func(c *Client) {
		c.CrossFileMatch = true
	})
	if err := VerifyAgainst(res.Files, serverFiles); err != nil {
		t.Fatal(err)
	}
	if cc.FilesRebased != 1 {
		t.Fatalf("client FilesRebased = %d, want 1", cc.FilesRebased)
	}
	if sc.FilesRebased != 1 {
		t.Fatalf("server FilesRebased = %d, want 1", sc.FilesRebased)
	}

	// Control arm: without the extension the file arrives whole.
	_, flat, _ := extSession(t, serverFiles, clientFiles, nil)
	if cc.Total()*2 > flat.Total() {
		t.Fatalf("alt-basis sync cost %d, full transfer %d: no win", cc.Total(), flat.Total())
	}
	t.Logf("moved-and-edited %d bytes: alt-basis %d vs full %d wire bytes",
		len(edited), cc.Total(), flat.Total())
}

// TestCrossFileAltBasisPrefersRelated: with several orphans available the
// engine must still converge and pick a working basis (the junk orphan
// cannot break correctness).
func TestCrossFileAltBasisPrefersRelated(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	orig := corpus.SourceText(rng, 32_000)
	junk := corpus.RandomText(rng, 32_000)
	em := corpus.EditModel{BurstsPer32KB: 2, BurstEdits: 3, EditSize: 30, BurstSpread: 200}
	edited := em.Apply(rng, orig)
	serverFiles := map[string][]byte{"pkg/engine.go": edited}
	clientFiles := map[string][]byte{"old/engine.go": orig, "old/junk.bin": junk}

	res, cc, _ := extSession(t, serverFiles, clientFiles, func(c *Client) {
		c.CrossFileMatch = true
	})
	if err := VerifyAgainst(res.Files, serverFiles); err != nil {
		t.Fatal(err)
	}
	if cc.FilesRebased != 1 {
		t.Fatalf("FilesRebased = %d, want 1", cc.FilesRebased)
	}
	// A related basis keeps the delta small; picking the junk one would
	// cost roughly the whole file.
	if cc.Total() > int64(len(edited))/2 {
		t.Fatalf("alt-basis race cost %d bytes for a %d-byte file", cc.Total(), len(edited))
	}
}

// TestSpeculativeDescentFewerRounds: speculative descent must reach the
// same outcome in fewer descent roundtrips.
func TestSpeculativeDescentFewerRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	files := map[string][]byte{}
	for i := 0; i < 2000; i++ {
		files[fmt.Sprintf("src/%02d/f%04d.go", i%37, i)] = corpus.SourceText(rng, 400)
	}
	serverFiles := make(map[string][]byte, len(files))
	for k, v := range files {
		serverFiles[k] = v
	}
	serverFiles["src/03/f0123.go"] = corpus.SourceText(rng, 900)
	serverFiles["src/19/f1040.go"] = corpus.SourceText(rng, 900)
	serverFiles["src/11/new.go"] = corpus.SourceText(rng, 700)

	resLegacy, legacy, _ := extSession(t, serverFiles, files, nil)
	resSpec, spec, specSrv := extSession(t, serverFiles, files, func(c *Client) {
		c.SpeculativeDescent = true
	})
	for _, r := range []*Result{resLegacy, resSpec} {
		if err := VerifyAgainst(r.Files, serverFiles); err != nil {
			t.Fatal(err)
		}
	}
	if legacy.TreeRounds == 0 || spec.TreeRounds == 0 {
		t.Fatalf("TreeRounds not counted: legacy %d, spec %d", legacy.TreeRounds, spec.TreeRounds)
	}
	if spec.TreeRounds >= legacy.TreeRounds {
		t.Fatalf("speculative descent used %d rounds, legacy %d", spec.TreeRounds, legacy.TreeRounds)
	}
	if spec.TreeRounds != specSrv.TreeRounds {
		t.Fatalf("descent round disagreement: client %d, server %d", spec.TreeRounds, specSrv.TreeRounds)
	}
	t.Logf("descent rounds: legacy %d, speculative %d", legacy.TreeRounds, spec.TreeRounds)
}

// TestTreeExtWorkerInvariance: the wire bytes of a session with both
// extensions must be identical for every worker count — alternate-basis
// racing happens locally and deterministically.
func TestTreeExtWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	orig := corpus.SourceText(rng, 30_000)
	em := corpus.EditModel{BurstsPer32KB: 3, BurstEdits: 2, EditSize: 50, BurstSpread: 400}
	serverFiles := map[string][]byte{
		"a/moved.txt": em.Apply(rng, orig),
		"same.bin":    corpus.RandomText(rng, 20_000),
		"edit.txt":    corpus.SourceText(rng, 15_000),
	}
	clientFiles := map[string][]byte{
		"b/moved.txt": orig,
		"rename.bin":  serverFiles["same.bin"],
		"edit.txt":    em.Apply(rng, serverFiles["edit.txt"]),
	}
	var base *stats.Costs
	for _, workers := range []int{1, 8} {
		res, cc, _ := extSession(t, serverFiles, clientFiles, func(c *Client) {
			c.SpeculativeDescent = true
			c.CrossFileMatch = true
			c.Workers = workers
		})
		if err := VerifyAgainst(res.Files, serverFiles); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = cc
			continue
		}
		for d := stats.Direction(0); d < 2; d++ {
			for p := stats.Phase(0); p < 4; p++ {
				if cc.Bytes(d, p) != base.Bytes(d, p) {
					t.Fatalf("workers=%d: %s/%s bytes %d != %d",
						workers, d, p, cc.Bytes(d, p), base.Bytes(d, p))
				}
			}
		}
	}
}

// TestTreeInteropMatrix pins how tree mode composes with the version
// announcement (PR 6) and stream multiplexing (PR 7) extensions: every
// combination converges, mux is honored in tree mode, and the version
// trailer is a flat-manifest feature — tree sessions never report one.
func TestTreeInteropMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	files := map[string][]byte{}
	for i := 0; i < 60; i++ {
		files[fmt.Sprintf("d/%02d.txt", i)] = corpus.SourceText(rng, 4_000)
	}
	serverFiles := make(map[string][]byte, len(files))
	for k, v := range files {
		serverFiles[k] = v
	}
	em := corpus.EditModel{BurstsPer32KB: 2, BurstEdits: 2, EditSize: 40, BurstSpread: 200}
	for i := 0; i < 8; i++ {
		p := fmt.Sprintf("d/%02d.txt", i*7)
		serverFiles[p] = em.Apply(rng, serverFiles[p])
	}

	for _, announce := range []bool{false, true} {
		for _, mux := range []int{0, 4} {
			for _, caps := range []bool{false, true} {
				name := fmt.Sprintf("announce=%v/mux=%d/ext=%v", announce, mux, caps)
				t.Run(name, func(t *testing.T) {
					srv, err := NewServer(serverFiles, core.DefaultConfig())
					if err != nil {
						t.Fatal(err)
					}
					srv.MuxStreams = mux
					a, b := transport.Pipe()
					var serverCosts *stats.Costs
					var serverErr error
					var wg sync.WaitGroup
					wg.Add(1)
					go func() {
						defer wg.Done()
						defer a.Close()
						serverCosts, serverErr = srv.Serve(a)
					}()
					cli := NewClient(files)
					cli.TreeManifest = true
					cli.AnnounceVersion = announce
					cli.MuxStreams = mux
					cli.SpeculativeDescent = caps
					cli.CrossFileMatch = caps
					res, err := cli.Sync(b)
					b.Close()
					wg.Wait()
					if err != nil {
						t.Fatalf("client: %v", err)
					}
					if serverErr != nil {
						t.Fatalf("server: %v", serverErr)
					}
					if err := VerifyAgainst(res.Files, serverFiles); err != nil {
						t.Fatal(err)
					}
					if res.Costs.Total() != serverCosts.Total() {
						t.Fatalf("cost disagreement: %d vs %d", res.Costs.Total(), serverCosts.Total())
					}
					// The journal/version trailer belongs to the flat
					// manifest; tree sessions never carry it.
					if res.Version != 0 {
						t.Fatalf("tree session reported version %d", res.Version)
					}
					if res.Costs.TreeRounds == 0 {
						t.Fatal("tree session counted no descent rounds")
					}
				})
			}
		}
	}
}

// TestTreeClientCacheReuse: one Client syncing repeatedly keeps its merkle
// trees across sessions (rebased from the manifest diff) — repeat syncs
// must stay correct as the collection evolves on both ends.
func TestTreeClientCacheReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	files := map[string][]byte{}
	for i := 0; i < 300; i++ {
		files[fmt.Sprintf("f/%03d", i)] = corpus.SourceText(rng, 600)
	}
	cli := NewClient(files)
	cli.TreeManifest = true
	cli.SpeculativeDescent = true

	current := files
	for round := 0; round < 3; round++ {
		serverFiles := make(map[string][]byte, len(current))
		for k, v := range current {
			serverFiles[k] = v
		}
		serverFiles[fmt.Sprintf("f/%03d", round*3)] = corpus.SourceText(rng, 800)
		serverFiles[fmt.Sprintf("g/new%d", round)] = corpus.SourceText(rng, 500)

		srv, err := NewServer(serverFiles, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		a, b := transport.Pipe()
		var serverErr error
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer a.Close()
			_, serverErr = srv.Serve(a)
		}()
		res, err := cli.Sync(b)
		b.Close()
		wg.Wait()
		if err != nil || serverErr != nil {
			t.Fatalf("round %d: client=%v server=%v", round, err, serverErr)
		}
		if err := VerifyAgainst(res.Files, serverFiles); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// The next round's client state is the synced result.
		cli.src = MapSource(res.Files)
		current = serverFiles
	}
}
