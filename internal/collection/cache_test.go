package collection

import (
	"sync"
	"testing"

	"msync/internal/core"
	"msync/internal/corpus"
	"msync/internal/transport"
)

// TestManifestCacheReused: repeated sessions reuse the cached manifest
// (pointer identity), and a push invalidates it.
func TestManifestCacheReused(t *testing.T) {
	v1, v2 := corpus.GCCProfile(0.05).Generate(51)
	srv, err := NewServer(v1.Map(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.AllowPush = true

	m1 := cachedManifest(t, srv)
	m2 := cachedManifest(t, srv)
	if &m1[0] != &m2[0] {
		t.Fatal("manifest rebuilt despite no change")
	}

	// Serve a session; cache must survive.
	runOneSession(t, srv, v1.Map())
	m3 := cachedManifest(t, srv)
	if &m1[0] != &m3[0] {
		t.Fatal("manifest invalidated by a read-only session")
	}

	// Push new content; cache must refresh.
	pusher, err := NewServer(v2.Map(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		srv.Serve(a)
	}()
	if _, err := pusher.Push(b); err != nil {
		t.Fatal(err)
	}
	b.Close()
	wg.Wait()

	m4 := cachedManifest(t, srv)
	if len(m4) == len(m1) && &m4[0] == &m1[0] {
		t.Fatal("manifest cache stale after push")
	}
	if err := VerifyAgainst(map[string][]byte(srv.source().(MapSource)), v2.Map()); err != nil {
		t.Fatal(err)
	}
}

// cachedManifest fetches the server's (cached) manifest via sessionState.
func cachedManifest(t *testing.T, srv *Server) []ManifestEntry {
	t.Helper()
	_, m, _, err := srv.sessionState()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func runOneSession(t *testing.T, srv *Server, clientFiles map[string][]byte) {
	t.Helper()
	a, b := transport.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		if _, err := srv.Serve(a); err != nil {
			t.Error(err)
		}
	}()
	if _, err := NewClient(clientFiles).Sync(b); err != nil {
		t.Error(err)
	}
	b.Close()
	wg.Wait()
}

// TestConcurrentServesShareCache: parallel sessions on one server must not
// race on the manifest cache (run with -race in CI).
func TestConcurrentServesShareCache(t *testing.T) {
	v1, _ := corpus.GCCProfile(0.05).Generate(52)
	srv, err := NewServer(v1.Map(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runOneSession(t, srv, map[string][]byte{})
		}()
	}
	wg.Wait()
}
