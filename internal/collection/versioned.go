package collection

import (
	"errors"

	"msync/internal/md4"
	"msync/internal/sigcache"
	"msync/internal/store"
)

// VersionedSource extends Source with a persistent version history: immutable
// snapshots of the collection, each identified by a version number and a
// manifest digest, with precomputed journal deltas between a stored version
// and the latest one. A Server whose source implements VersionedSource can
// answer a client that announces a known version with the journal delta
// instead of running fresh map construction; any miss (unknown or GC'd
// version, digest drift, unreadable history) falls back to the full protocol.
type VersionedSource interface {
	Source
	// CurrentVersion reports the latest committed version, 0 when none.
	CurrentVersion() uint64
	// Snapshot commits the source's current manifest as a new version
	// (idempotent when nothing changed) and returns its number.
	Snapshot() (uint64, error)
	// VersionDelta returns the precomputed journal delta from base to the
	// latest version, or a miss. baseDigest is the digest of the client's
	// announced manifest and currentDigest of the server's live one; both
	// must match the stored versions exactly for a hit.
	VersionDelta(base uint64, baseDigest, currentDigest [md4.Size]byte) (*store.Delta, bool)
	// VersionContent reconstructs stored content by whole-file checksum,
	// for full-transfer fallbacks on journal files.
	VersionContent(sum [md4.Size]byte) ([]byte, error)
}

// ErrNotVersioned is returned by Server.Snapshot when the server's source
// carries no version store.
var ErrNotVersioned = errors.New("collection: server has no version store")

// ManifestDigest fingerprints a manifest by hashing its wire encoding — the
// same bytes a client sends in its manifest frame, so the digest of a stored
// version can be compared directly against md4.Sum of a received manifest.
func ManifestDigest(m []ManifestEntry) [md4.Size]byte {
	return md4.Sum(encodeManifest(m))
}

// StoreSource wraps an inner Source with a version store, implementing
// VersionedSource. The inner source stays the live view; the store only
// captures history at Snapshot time.
type StoreSource struct {
	Source
	st *store.Store
}

// NewStoreSource wraps inner with the given store.
func NewStoreSource(inner Source, st *store.Store) *StoreSource {
	return &StoreSource{Source: inner, st: st}
}

// Store exposes the backing version store (for stats and tests).
func (s *StoreSource) Store() *store.Store { return s.st }

// WithInner returns a StoreSource over the same store but a new live source;
// used when push adoption replaces the collection under a versioned server.
func (s *StoreSource) WithInner(inner Source) *StoreSource {
	return &StoreSource{Source: inner, st: s.st}
}

// CurrentVersion implements VersionedSource.
func (s *StoreSource) CurrentVersion() uint64 { return s.st.LatestVersion() }

// Snapshot implements VersionedSource: it fingerprints the live source and
// commits the result as a new store version, loading changed content through
// the source.
func (s *StoreSource) Snapshot() (uint64, error) {
	m, err := s.Source.Manifest()
	if err != nil {
		return 0, err
	}
	entries := make([]store.Entry, len(m))
	for i, e := range m {
		entries[i] = store.Entry{Path: e.Path, Len: e.Len, Sum: e.Sum}
	}
	v, _, err := s.st.Snapshot(entries, ManifestDigest(m), s.Source.Load)
	return v, err
}

// VersionDelta implements VersionedSource.
func (s *StoreSource) VersionDelta(base uint64, baseDigest, currentDigest [md4.Size]byte) (*store.Delta, bool) {
	return s.st.Delta(base, baseDigest, currentDigest)
}

// VersionContent implements VersionedSource.
func (s *StoreSource) VersionContent(sum [md4.Size]byte) ([]byte, error) {
	return s.st.Content(sum)
}

// Cache forwards the inner source's signature cache, keeping session
// accounting intact through the wrapper (interface embedding does not
// promote optional interfaces).
func (s *StoreSource) Cache() *sigcache.Cache {
	if cb, ok := s.Source.(cacheBacked); ok {
		return cb.Cache()
	}
	return nil
}

// HashedBytes forwards the inner source's hashing meter.
func (s *StoreSource) HashedBytes() int64 {
	if h, ok := s.Source.(hashAccounting); ok {
		return h.HashedBytes()
	}
	return 0
}

// Snapshot cuts a new store version from the server's current collection.
// It returns ErrNotVersioned when the server was built without a store.
func (s *Server) Snapshot() (uint64, error) {
	vs, ok := s.source().(VersionedSource)
	if !ok {
		return 0, ErrNotVersioned
	}
	return vs.Snapshot()
}
