package collection

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"msync/internal/core"
	"msync/internal/delta"
	"msync/internal/merkle"
	"msync/internal/pool"
	"msync/internal/stats"
	"msync/internal/transport"
	"msync/internal/wire"
)

// Server serves one version of a collection to synchronizing clients, and
// can also push its collection to a remote replica (paper §7's asymmetric
// scenario: the data holder initiates).
type Server struct {
	cfg core.Config

	mu    sync.RWMutex
	files map[string][]byte
	// manifest caches BuildManifest(files); hashing the whole collection
	// per session is wasteful when serving many clients. Invalidated when
	// the collection changes (push adoption).
	manifest []ManifestEntry

	// AllowPush lets clients push updated collections into this server.
	AllowPush bool
	// TreeManifest selects merkle change detection when this server pushes.
	TreeManifest bool
	// OnUpdate, if set, is called with the new collection after a received
	// push (e.g. to persist it).
	OnUpdate func(map[string][]byte)
	// RoundTimeout, if positive, bounds each frame-level read/write of a
	// session so a stalled client fails the session instead of pinning a
	// server goroutine forever. Requires a connection with deadline
	// support (net.Conn, transport.PipeEnd) to interrupt blocked I/O.
	RoundTimeout time.Duration
}

// NewServer creates a server over the given (path → content) collection.
func NewServer(files map[string][]byte, cfg core.Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, files: files}, nil
}

// snapshot returns the current collection under the read lock.
func (s *Server) snapshot() map[string][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.files
}

// cachedManifest returns (building once) the manifest of the collection.
func (s *Server) cachedManifest() []ManifestEntry {
	s.mu.RLock()
	m := s.manifest
	s.mu.RUnlock()
	if m != nil {
		return m
	}
	built := BuildManifest(s.snapshot())
	s.mu.Lock()
	if s.manifest == nil {
		s.manifest = built
	}
	m = s.manifest
	s.mu.Unlock()
	return m
}

// setFiles replaces the collection and invalidates the manifest cache.
func (s *Server) setFiles(files map[string][]byte) {
	s.mu.Lock()
	s.files = files
	s.manifest = nil
	s.mu.Unlock()
}

// frameOverhead is the wire cost of a frame header for an n-byte payload.
func frameOverhead(n int) int {
	o := 2 // type byte + at least one length byte
	for n >= 0x80 {
		o++
		n >>= 7
	}
	return o
}

func addCost(c *stats.Costs, d stats.Direction, p stats.Phase, payload int) {
	c.Add(d, p, payload+frameOverhead(payload))
}

// syncFile pairs a path with its per-file server engine.
type syncFile struct {
	path   string
	engine *core.ServerFile
}

// Serve runs one synchronization session over conn. It returns the session's
// cost accounting (from the server's perspective; the client computes an
// identical view). It is ServeContext with a background context.
func (s *Server) Serve(conn io.ReadWriter) (*stats.Costs, error) {
	return s.ServeContext(context.Background(), conn)
}

// ServeContext runs one synchronization session over conn under ctx:
// cancellation or a context deadline aborts the session at the next frame
// boundary (interrupting blocked I/O when conn supports deadlines), and
// RoundTimeout bounds every individual round.
func (s *Server) ServeContext(ctx context.Context, conn io.ReadWriter) (*stats.Costs, error) {
	sess := transport.NewSession(ctx, conn, s.RoundTimeout)
	defer sess.Release()
	costs := &stats.Costs{}
	fr := wire.NewFrameReader(sess)
	fw := wire.NewFrameWriter(sess)

	fail := func(err error) (*stats.Costs, error) {
		_ = fw.WriteFrame(wire.FrameError, []byte(err.Error()))
		_ = fw.Flush()
		return costs, err
	}

	// HELLO.
	hello, err := fr.ExpectFrame(wire.FrameHello)
	if err != nil {
		return costs, err
	}
	addCost(costs, stats.C2S, stats.PhaseControl, len(hello))
	hp := wire.NewParser(hello)
	ver, err := hp.Uvarint()
	if err != nil || ver != protocolVersion {
		return fail(fmt.Errorf("collection: unsupported protocol version"))
	}
	role, err := hp.Byte()
	if err != nil {
		return fail(fmt.Errorf("collection: missing role"))
	}
	mode, err := hp.Byte()
	if err != nil {
		return fail(fmt.Errorf("collection: missing manifest mode"))
	}
	if role == rolePush {
		// The remote side holds the newer data and plays the serving role;
		// we consume the session and adopt the result.
		if !s.AllowPush {
			return fail(fmt.Errorf("collection: push not allowed"))
		}
		res, err := consume(ctx, fr, fw, costs, s.snapshot(), mode == modeTree, s.cfg.Workers)
		if err != nil {
			return costs, err
		}
		s.setFiles(res.Files)
		if s.OnUpdate != nil {
			s.OnUpdate(res.Files)
		}
		return costs, nil
	}
	if role != rolePull {
		return fail(fmt.Errorf("collection: unknown role %d", role))
	}
	return s.serveSession(ctx, fr, fw, costs, fail, mode)
}

// serveSession runs the serving role after the handshake header, checking
// ctx at every round boundary.
func (s *Server) serveSession(ctx context.Context, fr *wire.FrameReader, fw *wire.FrameWriter, costs *stats.Costs, fail func(error) (*stats.Costs, error), mode byte) (*stats.Costs, error) {
	serverManifest := s.cachedManifest()
	var engines []syncFile
	var err error
	switch mode {
	case modeManifest:
		engines, err = s.manifestHandshake(fr, fw, costs, serverManifest)
	case modeTree:
		engines, err = s.treeHandshake(fr, fw, costs, serverManifest)
	default:
		err = fmt.Errorf("collection: unknown manifest mode %d", mode)
	}
	if err != nil {
		return fail(err)
	}

	// Map-construction rounds, multiplexed across all sync files.
	for {
		if err := ctx.Err(); err != nil {
			return costs, fmt.Errorf("collection: session cancelled: %w", err)
		}
		var active []int
		for i := range engines {
			if engines[i].engine.Active() {
				active = append(active, i)
			}
		}
		if len(active) == 0 {
			break
		}
		sections := make([][]byte, len(active))
		parallelFiles(s.cfg.Workers, len(active), func(k int) error {
			sections[k] = engines[active[k]].engine.EmitHashes()
			return nil
		})
		rb := wire.NewBuffer(1024)
		rb.Uvarint(uint64(len(active)))
		for k, i := range active {
			rb.Uvarint(uint64(i))
			rb.Bytes(sections[k])
		}
		payload := rb.Build()
		if err := fw.WriteFrame(wire.FrameRoundHashes, payload); err != nil {
			return costs, err
		}
		if err := fw.Flush(); err != nil {
			return costs, err
		}
		addCost(costs, stats.S2C, stats.PhaseMap, len(payload))

		reply, err := fr.ExpectFrame(wire.FrameRoundReply)
		if err != nil {
			return costs, err
		}
		addCost(costs, stats.C2S, stats.PhaseMap, len(reply))
		costs.Roundtrips++
		pending, err := s.absorbReplies(engines, reply, true)
		if err != nil {
			return fail(err)
		}

		for len(pending) > 0 {
			cb := wire.NewBuffer(256)
			cb.Uvarint(uint64(len(pending)))
			for _, i := range pending {
				cb.Uvarint(uint64(i))
				cb.Bytes(engines[i].engine.EmitConfirm())
			}
			cp := cb.Build()
			if err := fw.WriteFrame(wire.FrameConfirm, cp); err != nil {
				return costs, err
			}
			if err := fw.Flush(); err != nil {
				return costs, err
			}
			addCost(costs, stats.S2C, stats.PhaseMap, len(cp))

			batch, err := fr.ExpectFrame(wire.FrameRoundReply)
			if err != nil {
				return costs, err
			}
			addCost(costs, stats.C2S, stats.PhaseMap, len(batch))
			costs.Roundtrips++
			pending, err = s.absorbReplies(engines, batch, false)
			if err != nil {
				return fail(err)
			}
		}
	}

	// Delta phase: one section per sync file.
	deltaSections := make([][]byte, len(engines))
	parallelFiles(s.cfg.Workers, len(engines), func(i int) error {
		deltaSections[i] = engines[i].engine.EmitDelta()
		return nil
	})
	db := wire.NewBuffer(4096)
	db.Uvarint(uint64(len(engines)))
	for i := range engines {
		db.Bytes(deltaSections[i])
	}
	dp := db.Build()
	if err := fw.WriteFrame(wire.FrameDelta, dp); err != nil {
		return costs, err
	}
	if err := fw.Flush(); err != nil {
		return costs, err
	}
	addCost(costs, stats.S2C, stats.PhaseDelta, len(dp))

	// ACK lists files whose whole-file check failed; send them in full.
	ack, err := fr.ExpectFrame(wire.FrameAck)
	if err != nil {
		return costs, err
	}
	addCost(costs, stats.C2S, stats.PhaseControl, len(ack))
	costs.Roundtrips++
	ap := wire.NewParser(ack)
	nFail, err := ap.Uvarint()
	if err != nil {
		return fail(err)
	}
	if nFail > 0 {
		fb := wire.NewBuffer(1024)
		fb.Uvarint(nFail)
		for k := uint64(0); k < nFail; k++ {
			idx, err := ap.Uvarint()
			if err != nil || int(idx) >= len(engines) {
				return fail(fmt.Errorf("collection: bad ack index"))
			}
			fb.Uvarint(idx)
			fb.Bytes(delta.Compress(s.snapshot()[engines[idx].path]))
			costs.FilesFull++
		}
		fp := fb.Build()
		if err := fw.WriteFrame(wire.FrameFull, fp); err != nil {
			return costs, err
		}
		if err := fw.Flush(); err != nil {
			return costs, err
		}
		addCost(costs, stats.S2C, stats.PhaseFull, len(fp))
		costs.Roundtrips++
	}

	for i := range engines {
		e := engines[i].engine
		costs.HashesSent += e.HashesSent
		costs.CandidatesFound += e.CandidatesSeen
		costs.MatchesConfirmed += e.MatchesConfirmed
	}
	costs.FalseCandidates = costs.CandidatesFound - costs.MatchesConfirmed
	return costs, nil
}

// Push updates a remote replica over conn with this server's (newer)
// collection: the inverse transfer direction of Serve, for replicas that
// cannot dial out or for backup-style workflows. The remote end must be a
// Server with AllowPush set. It is PushContext with a background context.
func (s *Server) Push(conn io.ReadWriter) (*stats.Costs, error) {
	return s.PushContext(context.Background(), conn)
}

// PushContext runs Push under ctx, with the same cancellation and
// round-timeout semantics as ServeContext.
func (s *Server) PushContext(ctx context.Context, conn io.ReadWriter) (*stats.Costs, error) {
	sess := transport.NewSession(ctx, conn, s.RoundTimeout)
	defer sess.Release()
	costs := &stats.Costs{}
	fr := wire.NewFrameReader(sess)
	fw := wire.NewFrameWriter(sess)

	hb := wire.NewBuffer(8)
	hb.Uvarint(protocolVersion)
	hb.Byte(rolePush)
	mode := byte(modeManifest)
	if s.TreeManifest {
		mode = modeTree
	}
	hb.Byte(mode)
	if err := fw.WriteFrame(wire.FrameHello, hb.Build()); err != nil {
		return costs, err
	}
	if err := fw.Flush(); err != nil {
		return costs, err
	}
	addCost(costs, stats.C2S, stats.PhaseControl, hb.Len())

	fail := func(err error) (*stats.Costs, error) {
		_ = fw.WriteFrame(wire.FrameError, []byte(err.Error()))
		_ = fw.Flush()
		return costs, err
	}
	return s.serveSession(ctx, fr, fw, costs, fail, mode)
}

// manifestHandshake runs the flat-manifest handshake: read the client's
// full manifest, reply with per-file verdicts plus new files.
func (s *Server) manifestHandshake(fr *wire.FrameReader, fw *wire.FrameWriter, costs *stats.Costs, serverManifest []ManifestEntry) ([]syncFile, error) {
	manifestRaw, err := fr.ExpectFrame(wire.FrameManifest)
	if err != nil {
		return nil, err
	}
	addCost(costs, stats.C2S, stats.PhaseControl, len(manifestRaw))
	manifest, err := decodeManifest(manifestRaw)
	if err != nil {
		return nil, err
	}

	serverByPath := make(map[string]int, len(serverManifest))
	for i, e := range serverManifest {
		serverByPath[e.Path] = i
	}
	vb := wire.NewBuffer(len(manifest)*2 + 256)
	vb.Bytes(encodeConfig(&s.cfg))
	vb.Uvarint(uint64(len(manifest)))
	var engines []syncFile
	seen := make(map[string]bool, len(manifest))
	fullBytes := 0
	for _, e := range manifest {
		seen[e.Path] = true
		si, ok := serverByPath[e.Path]
		if !ok {
			vb.Byte(verdictDelete)
			continue
		}
		se := serverManifest[si]
		if se.Len == e.Len && se.Sum == e.Sum {
			vb.Byte(verdictUnchanged)
			costs.FilesUnchanged++
			continue
		}
		eng, err := s.emitChangedVerdict(vb, e.Path, se.Len, costs, &fullBytes)
		if err != nil {
			return nil, err
		}
		if eng != nil {
			engines = append(engines, syncFile{e.Path, eng})
		}
	}
	// New files (on the server, absent at the client), sorted manifest order.
	var newFiles []ManifestEntry
	for _, e := range serverManifest {
		if !seen[e.Path] {
			newFiles = append(newFiles, e)
		}
	}
	vb.Uvarint(uint64(len(newFiles)))
	for _, e := range newFiles {
		vb.String(e.Path)
		comp := delta.Compress(s.snapshot()[e.Path])
		vb.Bytes(comp)
		fullBytes += len(comp)
		costs.FilesFull++
	}
	if err := s.sendVerdicts(fw, costs, vb.Build(), fullBytes); err != nil {
		return nil, err
	}
	return engines, nil
}

// treeHandshake runs merkle reconciliation, then answers the client's WANT
// list with verdicts for exactly those files.
func (s *Server) treeHandshake(fr *wire.FrameReader, fw *wire.FrameWriter, costs *stats.Costs, serverManifest []ManifestEntry) ([]syncFile, error) {
	entries := make([]merkle.Entry, len(serverManifest))
	for i, e := range serverManifest {
		entries[i] = merkle.Entry{Path: e.Path, Len: e.Len, Sum: e.Sum}
	}
	resp := merkle.NewResponder(entries)

	var want []byte
	for want == nil {
		ft, payload, err := fr.ReadFrame()
		if err != nil {
			return nil, err
		}
		switch ft {
		case wire.FrameTree:
			addCost(costs, stats.C2S, stats.PhaseControl, len(payload))
			reply, err := resp.Respond(payload)
			if err != nil {
				return nil, err
			}
			if err := fw.WriteFrame(wire.FrameTree, reply); err != nil {
				return nil, err
			}
			if err := fw.Flush(); err != nil {
				return nil, err
			}
			addCost(costs, stats.S2C, stats.PhaseControl, len(reply))
			costs.Roundtrips++
		case wire.FrameWant:
			addCost(costs, stats.C2S, stats.PhaseControl, len(payload))
			want = payload
		default:
			return nil, fmt.Errorf("collection: unexpected frame %s during reconciliation", wire.FrameName(ft))
		}
	}

	wp := wire.NewParser(want)
	n, err := wp.Uvarint()
	if err != nil {
		return nil, err
	}
	vb := wire.NewBuffer(256)
	vb.Bytes(encodeConfig(&s.cfg))
	vb.Uvarint(n)
	var engines []syncFile
	fullBytes := 0
	for k := uint64(0); k < n; k++ {
		path, err := wp.String()
		if err != nil {
			return nil, err
		}
		have, err := wp.Bool()
		if err != nil {
			return nil, err
		}
		data, ok := s.snapshot()[path]
		if !ok {
			vb.Byte(verdictDelete)
			continue
		}
		if !have {
			vb.Byte(verdictFull)
			comp := delta.Compress(data)
			vb.Bytes(comp)
			fullBytes += len(comp)
			costs.FilesFull++
			continue
		}
		eng, err := s.emitChangedVerdict(vb, path, len(data), costs, &fullBytes)
		if err != nil {
			return nil, err
		}
		if eng != nil {
			engines = append(engines, syncFile{path, eng})
		}
	}
	vb.Uvarint(0) // no trailing new-file section in tree mode
	if err := s.sendVerdicts(fw, costs, vb.Build(), fullBytes); err != nil {
		return nil, err
	}
	return engines, nil
}

// emitChangedVerdict writes the verdict for a changed file the client holds:
// small files go whole, larger ones get a sync engine.
func (s *Server) emitChangedVerdict(vb *wire.Buffer, path string, newLen int, costs *stats.Costs, fullBytes *int) (*core.ServerFile, error) {
	if newLen < s.cfg.MinBlockSize*2 {
		vb.Byte(verdictFull)
		comp := delta.Compress(s.snapshot()[path])
		vb.Bytes(comp)
		*fullBytes += len(comp)
		costs.FilesFull++
		return nil, nil
	}
	vb.Byte(verdictSync)
	vb.Uvarint(uint64(newLen))
	eng, err := core.NewServerFile(s.files[path], &s.cfg)
	if err != nil {
		return nil, err
	}
	costs.FilesSynced++
	return eng, nil
}

// sendVerdicts flushes the verdict frame with split cost attribution.
func (s *Server) sendVerdicts(fw *wire.FrameWriter, costs *stats.Costs, verdicts []byte, fullBytes int) error {
	if err := fw.WriteFrame(wire.FrameVerdicts, verdicts); err != nil {
		return err
	}
	if err := fw.Flush(); err != nil {
		return err
	}
	addCost(costs, stats.S2C, stats.PhaseControl, len(verdicts)-fullBytes)
	costs.Add(stats.S2C, stats.PhaseFull, fullBytes)
	costs.Roundtrips++
	return nil
}

// parallelFiles runs fn(0..n-1) across the session's worker budget; per-file
// engines are independent, so their CPU-heavy work parallelizes freely. The
// first error wins. Results are always gathered into index-addressed slots by
// the callers, so reply and section ordering is identical for every worker
// count.
func parallelFiles(workers, n int, fn func(i int) error) error {
	return pool.Do(workers, n, fn)
}

// absorbReplies processes one client reply frame (initial replies or
// subsequent batches) and returns the files that still need another batch.
func (s *Server) absorbReplies(engines []syncFile, payload []byte, first bool) ([]int, error) {
	pr := wire.NewParser(payload)
	n, err := pr.Uvarint()
	if err != nil {
		return nil, err
	}
	type job struct {
		idx     int
		section []byte
	}
	jobs := make([]job, 0, n)
	for k := uint64(0); k < n; k++ {
		idx, err := pr.Uvarint()
		if err != nil {
			return nil, err
		}
		if int(idx) >= len(engines) {
			return nil, fmt.Errorf("collection: bad file index %d", idx)
		}
		section, err := pr.Bytes()
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, job{int(idx), section})
	}
	mores := make([]bool, len(jobs))
	err = parallelFiles(s.cfg.Workers, len(jobs), func(k int) error {
		var more bool
		var err error
		if first {
			more, err = engines[jobs[k].idx].engine.AbsorbReply(jobs[k].section)
		} else {
			more, err = engines[jobs[k].idx].engine.AbsorbBatch(jobs[k].section)
		}
		if err != nil {
			return fmt.Errorf("collection: file %q: %w", engines[jobs[k].idx].path, err)
		}
		mores[k] = more
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pending []int
	for k, more := range mores {
		if more {
			pending = append(pending, jobs[k].idx)
		}
	}
	return pending, nil
}

// SelfTest verifies that the server's collection round-trips through a
// compression cycle; used by integration tests and the CLI's --check mode.
func (s *Server) SelfTest() error {
	for path, data := range s.snapshot() {
		dec, err := delta.Decompress(delta.Compress(data))
		if err != nil || !bytes.Equal(dec, data) {
			return fmt.Errorf("collection: self-test failed for %q", path)
		}
	}
	return nil
}
