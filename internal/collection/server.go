package collection

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"sync"
	"time"

	"msync/internal/core"
	"msync/internal/delta"
	"msync/internal/md4"
	"msync/internal/merkle"
	"msync/internal/obs"
	"msync/internal/pool"
	"msync/internal/stats"
	"msync/internal/store"
	"msync/internal/transport"
	"msync/internal/wire"
)

// Server serves one version of a collection to synchronizing clients, and
// can also push its collection to a remote replica (paper §7's asymmetric
// scenario: the data holder initiates).
type Server struct {
	cfg core.Config

	mu  sync.RWMutex
	src Source
	// manifest caches src.Manifest(); hashing the whole collection per
	// session is wasteful when serving many clients. mtree memoizes the
	// merkle trees built over it for tree-mode reconciliation. Both are
	// invalidated when the collection changes (push adoption); prevTree
	// keeps the outgoing tree cache so the next session rebases it from
	// the manifest diff instead of rebuilding.
	manifest []ManifestEntry
	mtree    *merkle.TreeCache
	prevTree *merkle.TreeCache

	// AllowPush lets clients push updated collections into this server.
	AllowPush bool
	// TreeManifest selects merkle change detection when this server pushes.
	TreeManifest bool
	// OnUpdate, if set, is called with the new collection after a received
	// push (e.g. to persist it).
	OnUpdate func(map[string][]byte)
	// RoundTimeout, if positive, bounds each frame-level read/write of a
	// session so a stalled client fails the session instead of pinning a
	// server goroutine forever. Requires a connection with deadline
	// support (net.Conn, transport.PipeEnd) to interrupt blocked I/O.
	RoundTimeout time.Duration
	// HandshakeTimeout, if positive, bounds the whole handshake phase
	// (HELLO through the verdict exchange) with one absolute deadline, so
	// an idle or deliberately slow dial cannot pin a session slot the way
	// it could under the per-operation RoundTimeout alone. Cleared once
	// per-file transfer begins. Requires deadline support on the
	// connection, like RoundTimeout.
	HandshakeTimeout time.Duration
	// Tracer, if set, receives span-like events per protocol phase; the
	// summed frame bytes of a session's spans equal its Costs wire totals.
	// Tracing never changes what goes on the wire.
	Tracer obs.Tracer
	// Logger, if set, receives structured session lifecycle logs. nil
	// disables logging entirely.
	Logger *slog.Logger
	// MuxStreams caps the stream width granted to clients requesting
	// multiplexed sessions (hello extension 2). 0 refuses multiplexing:
	// requests are ignored and every session runs the legacy lockstep
	// protocol. The grant is further bounded by the session's sync-file
	// count and the protocol cap.
	MuxStreams int
	// Metrics, if set, receives the server's live multiplexing gauges and
	// counters (streams active, rounds batched). nil disables them.
	Metrics *obs.Registry
}

// NewServer creates a server over the given (path → content) collection.
func NewServer(files map[string][]byte, cfg core.Config) (*Server, error) {
	return NewServerSource(MapSource(files), cfg)
}

// NewServerSource creates a server over an arbitrary collection source
// (e.g. a lazily streamed directory tree with a signature cache).
func NewServerSource(src Source, cfg core.Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, src: src}, nil
}

// source returns the current collection source under the read lock.
func (s *Server) source() Source {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.src
}

// sessionState captures one consistent view of the collection for a session:
// the source, its manifest (built once and cached) and the merkle tree cache
// over it. A concurrent push adoption swaps all three together, so a session
// never mixes the old manifest with new content.
func (s *Server) sessionState() (Source, []ManifestEntry, *merkle.TreeCache, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.manifest == nil {
		m, err := s.src.Manifest()
		if err != nil {
			return nil, nil, nil, err
		}
		entries := make([]merkle.Entry, len(m))
		for i, e := range m {
			entries[i] = merkle.Entry{Path: e.Path, Len: e.Len, Sum: e.Sum}
		}
		s.manifest = m
		fp := ManifestDigest(m)
		if s.prevTree != nil {
			s.mtree = s.prevTree.Rebase(entries, fp)
			s.prevTree = nil
		} else {
			s.mtree = merkle.NewTreeCacheAt(entries, fp, treeDir(s.src))
		}
	}
	return s.src, s.manifest, s.mtree, nil
}

// setFiles replaces the collection and invalidates the manifest cache. A
// version store wrapped around the old source carries over to the new one,
// so push adoption keeps the server versioned.
func (s *Server) setFiles(files map[string][]byte) {
	s.mu.Lock()
	if ss, ok := s.src.(*StoreSource); ok {
		s.src = ss.WithInner(MapSource(files))
	} else {
		s.src = MapSource(files)
	}
	s.manifest = nil
	if s.mtree != nil {
		// Keep the built trees: the next session rebases them from the
		// manifest diff, which is cheap when a push changed few files.
		s.prevTree = s.mtree
	}
	s.mtree = nil
	s.mu.Unlock()
}

// frameOverhead is the wire cost of a frame header for an n-byte payload.
func frameOverhead(n int) int {
	o := 2 // type byte + at least one length byte
	for n >= 0x80 {
		o++
		n >>= 7
	}
	return o
}

func addCost(c *stats.Costs, d stats.Direction, p stats.Phase, payload int) {
	c.Add(d, p, payload+frameOverhead(payload))
}

// syncFile pairs a path with its per-file server engine and the content
// snapshot the engine was built over (used for full-transfer fallbacks).
type syncFile struct {
	path   string
	engine *core.ServerFile
	data   []byte
}

// Serve runs one synchronization session over conn. It returns the session's
// cost accounting (from the server's perspective; the client computes an
// identical view). It is ServeContext with a background context.
func (s *Server) Serve(conn io.ReadWriter) (*stats.Costs, error) {
	return s.ServeContext(context.Background(), conn)
}

// ServeContext runs one synchronization session over conn under ctx:
// cancellation or a context deadline aborts the session at the next frame
// boundary (interrupting blocked I/O when conn supports deadlines), and
// RoundTimeout bounds every individual round.
func (s *Server) ServeContext(ctx context.Context, conn io.ReadWriter) (*stats.Costs, error) {
	sess := transport.NewSession(ctx, conn, s.RoundTimeout)
	defer sess.Release()
	if s.HandshakeTimeout > 0 {
		sess.SetPhaseDeadline(time.Now().Add(s.HandshakeTimeout))
	}
	costs := &stats.Costs{}
	fr := wire.GetFrameReader(sess)
	defer wire.PutFrameReader(fr)
	fw := wire.GetFrameWriter(sess)
	defer wire.PutFrameWriter(fw)
	st := newSessTrace(s.Tracer, s.Logger, "server")

	res, err := s.serveConn(ctx, sess, fr, fw, costs, st)
	st.end(costs, err, fr, fw, sess.Stats())
	return res, err
}

// serveConn runs the session body of ServeContext: handshake, role dispatch,
// then serving (or consuming, for a push) the collection. sess carries the
// handshake-phase deadline, lifted once the handshake is over.
func (s *Server) serveConn(ctx context.Context, sess *transport.Session, fr *wire.FrameReader, fw *wire.FrameWriter, costs *stats.Costs, st *sessTrace) (*stats.Costs, error) {
	fail := func(err error) (*stats.Costs, error) {
		_ = fw.WriteFrame(wire.FrameError, []byte(err.Error()))
		_ = fw.Flush()
		return costs, err
	}

	// HELLO.
	hello, err := fr.ExpectFrame(wire.FrameHello)
	if err != nil {
		return costs, err
	}
	st.cost(costs, stats.C2S, stats.PhaseControl, len(hello))
	hp := wire.NewParser(hello)
	ver, err := hp.Uvarint()
	if err != nil || ver != protocolVersion {
		return fail(fmt.Errorf("collection: unsupported protocol version"))
	}
	role, err := hp.Byte()
	if err != nil {
		return fail(fmt.Errorf("collection: missing role"))
	}
	mode, err := hp.Byte()
	if err != nil {
		return fail(fmt.Errorf("collection: missing manifest mode"))
	}
	announce, muxReq, treeCaps, mapMode := parseHelloExtensions(hp)
	if role == rolePush {
		// The remote side holds the newer data and plays the serving role;
		// we consume the session and adopt the result.
		if !s.AllowPush {
			return fail(fmt.Errorf("collection: push not allowed"))
		}
		// The pusher has identified itself and committed to a transfer; the
		// anti-loris guard has done its job.
		sess.SetPhaseDeadline(time.Time{})
		src := s.source()
		acct := beginAccounting(src)
		res, err := consume(ctx, fr, fw, costs, src, false, mode == modeTree, false, s.cfg.Workers, 0, 0, nil, st)
		acct.finish(costs)
		if err != nil {
			return costs, err
		}
		s.setFiles(res.Files)
		if s.OnUpdate != nil {
			s.OnUpdate(res.Files)
		}
		return costs, nil
	}
	if role != rolePull {
		return fail(fmt.Errorf("collection: unknown role %d", role))
	}
	if muxReq > s.MuxStreams {
		muxReq = s.MuxStreams // 0 when the server refuses multiplexing
	}
	return s.serveSession(ctx, sess, fr, fw, costs, fail, mode, announce, muxReq, treeCaps, mapMode, st)
}

// parseHelloExtensions reads the optional extension trailer after the mode
// byte and returns the announced version (-1: none), the requested mux
// stream width (0: none), the requested tree capabilities (masked to the
// bits this server implements), and the requested map-construction mode
// (MapHalving: none). A malformed trailer is treated as absent —
// extensions are an optimization hint, never a reason to fail a session.
func parseHelloExtensions(hp *wire.Parser) (announce int64, mux int, treeCaps byte, mapMode core.MapMode) {
	announce = int64(-1)
	if hp.Remaining() == 0 {
		return announce, 0, 0, core.MapHalving
	}
	n, err := hp.Uvarint()
	if err != nil {
		return announce, 0, 0, core.MapHalving
	}
	for i := uint64(0); i < n; i++ {
		id, err := hp.Uvarint()
		if err != nil {
			return announce, mux, treeCaps, mapMode
		}
		ext, err := hp.Bytes()
		if err != nil {
			return announce, mux, treeCaps, mapMode
		}
		switch id {
		case helloExtVersion:
			if v, err := wire.NewParser(ext).Uvarint(); err == nil {
				announce = int64(v)
			}
		case helloExtMux:
			if v, err := wire.NewParser(ext).Uvarint(); err == nil && v > 0 {
				if v > wire.MaxStreams {
					v = wire.MaxStreams
				}
				mux = int(v)
			}
		case helloExtTree:
			if v, err := wire.NewParser(ext).Uvarint(); err == nil {
				treeCaps = byte(v) & (treeCapSpec | treeCapCross)
			}
		case helloExtMapMode:
			if v, err := wire.NewParser(ext).Uvarint(); err == nil {
				mapMode = core.MapMode(v)
			}
		}
	}
	return announce, mux, treeCaps, mapMode
}

// serveSession runs the serving role after the handshake header, checking
// ctx at every round boundary. sess may be nil (outbound push: no admission
// guard to lift). announce is the client's hello-announced store version
// (-1: absent); it only matters when the source is versioned. mux is the
// granted stream width (0: legacy lockstep session); a journal hit or a
// session without sync engines falls back to legacy regardless. treeCaps is
// the client's requested tree-mode capability mask (already limited to what
// this server implements). mapMode is the client's requested
// map-construction mode; granting it is this server's call, made here by
// building the session config the engines (and the shipped config) use.
func (s *Server) serveSession(ctx context.Context, sess *transport.Session, fr *wire.FrameReader, fw *wire.FrameWriter, costs *stats.Costs, fail func(error) (*stats.Costs, error), mode byte, announce int64, mux int, treeCaps byte, mapMode core.MapMode, st *sessTrace) (*stats.Costs, error) {
	// The session config starts from the server's: a granted map mode is
	// the only per-session deviation, and an unusable request (unknown
	// mode, or chunker parameters the config cannot support) degrades to
	// halving rather than failing the session.
	sessCfg := s.cfg
	if mapMode != core.MapHalving {
		sessCfg.MapMode = mapMode
		if sessCfg.Validate() != nil {
			sessCfg.MapMode = core.MapHalving
		}
	}
	st.setMode(sessCfg.MapMode)
	// Accounting must start before sessionState so a first session's
	// manifest build (cache misses, streamed hashing) is attributed to it.
	acct := beginAccounting(s.source())
	defer acct.finish(costs)
	src, serverManifest, mtree, err := s.sessionState()
	if err != nil {
		return fail(err)
	}
	sbuf := wire.GetBuffer(4096) // session scratch for every frame we assemble
	defer wire.PutBuffer(sbuf)

	var engines []syncFile
	var jfiles []journalFile
	var muxCounts []int
	switch mode {
	case modeManifest:
		engines, jfiles, muxCounts, err = s.manifestHandshake(fr, fw, costs, &sessCfg, src, serverManifest, sbuf, announce, mux, st)
	case modeTree:
		engines, muxCounts, err = s.treeHandshake(fr, fw, costs, &sessCfg, src, mtree, sbuf, mux, treeCaps, st)
	default:
		err = fmt.Errorf("collection: unknown manifest mode %d", mode)
	}
	if err != nil {
		return fail(err)
	}
	if sess != nil {
		// Verdicts are out: the client is real and transfer has begun, so
		// the handshake deadline no longer applies.
		sess.SetPhaseDeadline(time.Time{})
	}
	if sessCfg.MapMode == core.MapCDC {
		costs.FilesCDC += len(engines)
	}
	if len(muxCounts) > 0 {
		// The MUX_ACK went out with the verdicts: stream-multiplexed phases
		// replace the lockstep loop below.
		return s.serveMux(ctx, sess, fr, fw, costs, fail, engines, muxCounts, st)
	}

	// Map-construction rounds, multiplexed across all sync files.
	round := 0
	for {
		if err := ctx.Err(); err != nil {
			return costs, fmt.Errorf("collection: session cancelled: %w", err)
		}
		var active []int
		for i := range engines {
			if engines[i].engine.Active() {
				active = append(active, i)
			}
		}
		if len(active) == 0 {
			break
		}
		round++
		st.begin(obs.PhaseRound, round)
		sections := make([][]byte, len(active))
		parallelFiles(s.cfg.Workers, len(active), func(k int) error {
			sections[k] = engines[active[k]].engine.EmitHashes()
			return nil
		})
		sbuf.Reset()
		sbuf.Uvarint(uint64(len(active)))
		for k, i := range active {
			sbuf.Uvarint(uint64(i))
			sbuf.Bytes(sections[k])
		}
		payload := sbuf.Build()
		if err := fw.WriteFrame(wire.FrameRoundHashes, payload); err != nil {
			return costs, err
		}
		if err := fw.Flush(); err != nil {
			return costs, err
		}
		st.cost(costs, stats.S2C, stats.PhaseMap, len(payload))

		reply, err := fr.ExpectFrame(wire.FrameRoundReply)
		if err != nil {
			return costs, err
		}
		st.cost(costs, stats.C2S, stats.PhaseMap, len(reply))
		costs.Roundtrips++
		pending, err := s.absorbReplies(engines, reply, true)
		if err != nil {
			return fail(err)
		}

		for len(pending) > 0 {
			st.begin(obs.PhaseVerify, round)
			sbuf.Reset()
			sbuf.Uvarint(uint64(len(pending)))
			for _, i := range pending {
				sbuf.Uvarint(uint64(i))
				sbuf.Bytes(engines[i].engine.EmitConfirm())
			}
			cp := sbuf.Build()
			if err := fw.WriteFrame(wire.FrameConfirm, cp); err != nil {
				return costs, err
			}
			if err := fw.Flush(); err != nil {
				return costs, err
			}
			st.cost(costs, stats.S2C, stats.PhaseMap, len(cp))

			batch, err := fr.ExpectFrame(wire.FrameRoundReply)
			if err != nil {
				return costs, err
			}
			st.cost(costs, stats.C2S, stats.PhaseMap, len(batch))
			costs.Roundtrips++
			pending, err = s.absorbReplies(engines, batch, false)
			if err != nil {
				return fail(err)
			}
		}
	}

	// Delta phase: one section per sync file.
	st.begin(obs.PhaseDelta, 0)
	deltaSections := make([][]byte, len(engines))
	parallelFiles(s.cfg.Workers, len(engines), func(i int) error {
		deltaSections[i] = engines[i].engine.EmitDelta()
		return nil
	})
	sbuf.Reset()
	sbuf.Uvarint(uint64(len(engines)))
	for i := range engines {
		sbuf.Bytes(deltaSections[i])
	}
	dp := sbuf.Build()
	if err := fw.WriteFrame(wire.FrameDelta, dp); err != nil {
		return costs, err
	}
	if err := fw.Flush(); err != nil {
		return costs, err
	}
	st.cost(costs, stats.S2C, stats.PhaseDelta, len(dp))

	// ACK lists files whose whole-file check failed; send them in full.
	ack, err := fr.ExpectFrame(wire.FrameAck)
	if err != nil {
		return costs, err
	}
	st.cost(costs, stats.C2S, stats.PhaseControl, len(ack))
	costs.Roundtrips++
	ap := wire.NewParser(ack)
	nFail, err := ap.Uvarint()
	if err != nil {
		return fail(err)
	}
	if nFail > 0 {
		st.begin(obs.PhaseFull, 0)
		nAcked := len(engines)
		if len(jfiles) > 0 {
			// Journal sessions run no engines: ack indexes are ordinals into
			// the journal-file list, answered from stored version content.
			nAcked = len(jfiles)
		}
		vs, _ := src.(VersionedSource)
		sbuf.Reset()
		sbuf.Uvarint(nFail)
		for k := uint64(0); k < nFail; k++ {
			idx, err := ap.Uvarint()
			if err != nil || int(idx) >= nAcked {
				return fail(fmt.Errorf("collection: bad ack index"))
			}
			sbuf.Uvarint(idx)
			if len(jfiles) > 0 {
				data, err := vs.VersionContent(jfiles[idx].sum)
				if err != nil {
					return fail(fmt.Errorf("collection: journal fallback %q: %w", jfiles[idx].path, err))
				}
				sbuf.Bytes(delta.Compress(data))
			} else {
				// Send the exact bytes the engine synced from, so a fallback
				// is always consistent with the session even if the source
				// changed.
				sbuf.Bytes(delta.Compress(engines[idx].data))
			}
			costs.FilesFull++
		}
		fp := sbuf.Build()
		if err := fw.WriteFrame(wire.FrameFull, fp); err != nil {
			return costs, err
		}
		if err := fw.Flush(); err != nil {
			return costs, err
		}
		st.cost(costs, stats.S2C, stats.PhaseFull, len(fp))
		costs.Roundtrips++
	}

	for i := range engines {
		e := engines[i].engine
		costs.HashesSent += e.HashesSent
		costs.CandidatesFound += e.CandidatesSeen
		costs.MatchesConfirmed += e.MatchesConfirmed
		costs.BlockHashesComputed += e.BlockHashesComputed
		costs.BytesHashed += e.BytesHashed
		costs.CDCChunks += e.CDCChunks
	}
	costs.FalseCandidates = costs.CandidatesFound - costs.MatchesConfirmed
	return costs, nil
}

// Push updates a remote replica over conn with this server's (newer)
// collection: the inverse transfer direction of Serve, for replicas that
// cannot dial out or for backup-style workflows. The remote end must be a
// Server with AllowPush set. It is PushContext with a background context.
func (s *Server) Push(conn io.ReadWriter) (*stats.Costs, error) {
	return s.PushContext(context.Background(), conn)
}

// PushContext runs Push under ctx, with the same cancellation and
// round-timeout semantics as ServeContext.
func (s *Server) PushContext(ctx context.Context, conn io.ReadWriter) (*stats.Costs, error) {
	sess := transport.NewSession(ctx, conn, s.RoundTimeout)
	defer sess.Release()
	costs := &stats.Costs{}
	fr := wire.NewFrameReader(sess)
	fw := wire.NewFrameWriter(sess)
	st := newSessTrace(s.Tracer, s.Logger, "server")

	res, err := func() (*stats.Costs, error) {
		hb := wire.NewBuffer(8)
		hb.Uvarint(protocolVersion)
		hb.Byte(rolePush)
		mode := byte(modeManifest)
		if s.TreeManifest {
			mode = modeTree
		}
		hb.Byte(mode)
		if err := fw.WriteFrame(wire.FrameHello, hb.Build()); err != nil {
			return costs, err
		}
		if err := fw.Flush(); err != nil {
			return costs, err
		}
		st.cost(costs, stats.C2S, stats.PhaseControl, hb.Len())

		fail := func(err error) (*stats.Costs, error) {
			_ = fw.WriteFrame(wire.FrameError, []byte(err.Error()))
			_ = fw.Flush()
			return costs, err
		}
		// Push receivers never request multiplexing or tree extensions, so
		// none are granted.
		return s.serveSession(ctx, nil, fr, fw, costs, fail, mode, -1, 0, 0, core.MapHalving, st)
	}()
	st.end(costs, err, fr, fw, sess.Stats())
	return res, err
}

// journalFile is one verdictJournal entry of a journal session, in verdict
// order: ack indexes and full-transfer fallbacks reference this list the way
// a normal session references its engines.
type journalFile struct {
	path string
	len  int
	sum  [16]byte
}

// manifestHandshake runs the flat-manifest handshake: read the client's
// full manifest, reply with per-file verdicts plus new files. When the
// client announced a stored version and the source is versioned, a
// precomputed journal delta replaces map construction entirely (journal
// verdicts carry the payloads inline); any miss falls back to the normal
// path and only appends the server's current version to the verdict frame.
func (s *Server) manifestHandshake(fr *wire.FrameReader, fw *wire.FrameWriter, costs *stats.Costs, cfg *core.Config, src Source, serverManifest []ManifestEntry, vb *wire.Buffer, announce int64, mux int, st *sessTrace) ([]syncFile, []journalFile, []int, error) {
	manifestRaw, err := fr.ExpectFrame(wire.FrameManifest)
	if err != nil {
		return nil, nil, nil, err
	}
	st.cost(costs, stats.C2S, stats.PhaseControl, len(manifestRaw))
	manifest, err := decodeManifest(manifestRaw)
	if err != nil {
		return nil, nil, nil, err
	}

	vs, versioned := src.(VersionedSource)
	if announce >= 0 && versioned {
		if vd, ok := vs.VersionDelta(uint64(announce), md4.Sum(manifestRaw), ManifestDigest(serverManifest)); ok {
			// A journal hit runs no engines, so there is nothing to
			// multiplex: no MUX_ACK, legacy session shape.
			costs.JournalHits++
			jfiles, err := s.journalVerdicts(fw, costs, cfg, manifest, vd, vb, st)
			return nil, jfiles, nil, err
		}
		costs.JournalMisses++
	}

	serverByPath := make(map[string]int, len(serverManifest))
	for i, e := range serverManifest {
		serverByPath[e.Path] = i
	}
	vb.Reset()
	vb.Bytes(encodeConfig(cfg))
	vb.Uvarint(uint64(len(manifest)))
	var engines []syncFile
	seen := make(map[string]bool, len(manifest))
	fullBytes := 0
	for _, e := range manifest {
		seen[e.Path] = true
		si, ok := serverByPath[e.Path]
		if !ok {
			vb.Byte(verdictDelete)
			continue
		}
		se := serverManifest[si]
		if se.Len == e.Len && se.Sum == e.Sum {
			vb.Byte(verdictUnchanged)
			costs.FilesUnchanged++
			continue
		}
		data, err := src.Load(e.Path)
		if errors.Is(err, fs.ErrNotExist) {
			// Vanished since the manifest was built; treat as deleted.
			vb.Byte(verdictDelete)
			continue
		}
		if err != nil {
			return nil, nil, nil, err
		}
		eng, err := s.emitChangedVerdict(vb, cfg, src, e.Path, data, costs, &fullBytes)
		if err != nil {
			return nil, nil, nil, err
		}
		if eng != nil {
			engines = append(engines, syncFile{e.Path, eng, data})
		}
	}
	// New files (on the server, absent at the client), sorted manifest order.
	var newPaths []string
	var newComp [][]byte
	for _, e := range serverManifest {
		if seen[e.Path] {
			continue
		}
		data, err := src.Load(e.Path)
		if errors.Is(err, fs.ErrNotExist) {
			continue // vanished since the manifest was built
		}
		if err != nil {
			return nil, nil, nil, err
		}
		newPaths = append(newPaths, e.Path)
		newComp = append(newComp, delta.Compress(data))
	}
	vb.Uvarint(uint64(len(newPaths)))
	for i, p := range newPaths {
		vb.String(p)
		vb.Bytes(newComp[i])
		fullBytes += len(newComp[i])
		costs.FilesFull++
	}
	if announce >= 0 && versioned {
		// The announcing client learns the server's current version even on
		// a journal miss, so its next sync can announce something useful.
		vb.Uvarint(vs.CurrentVersion())
	}
	muxCounts := muxPartition(engines, mux)
	if err := s.sendVerdicts(fw, costs, vb.Build(), fullBytes, 0, muxCounts, st); err != nil {
		return nil, nil, nil, err
	}
	return engines, nil, muxCounts, nil
}

// journalVerdicts answers an announced client from a precomputed journal
// delta: every client-manifest entry gets unchanged/delete/journal verdicts
// (the journal verdict carries the delta payload inline), adds ride in the
// new-files trailer, and the current version is appended. No engines run —
// the whole transfer happens in this one frame plus the empty delta round.
func (s *Server) journalVerdicts(fw *wire.FrameWriter, costs *stats.Costs, cfg *core.Config, clientManifest []ManifestEntry, vd *store.Delta, vb *wire.Buffer, st *sessTrace) ([]journalFile, error) {
	vb.Reset()
	vb.Bytes(encodeConfig(cfg))
	vb.Uvarint(uint64(len(clientManifest)))
	var jfiles []journalFile
	fullBytes, deltaBytes := 0, 0
	for _, e := range clientManifest {
		ch, ok := vd.Changes[e.Path]
		if !ok {
			vb.Byte(verdictUnchanged)
			costs.FilesUnchanged++
			continue
		}
		switch ch.Op {
		case store.OpDelete:
			vb.Byte(verdictDelete)
		case store.OpModify:
			vb.Byte(verdictJournal)
			vb.Uvarint(uint64(ch.Len))
			vb.Raw(ch.Sum[:])
			vb.Bytes(ch.Payload)
			deltaBytes += len(ch.Payload)
			jfiles = append(jfiles, journalFile{e.Path, ch.Len, ch.Sum})
			costs.FilesJournal++
		default:
			// An add for a path the client's digest-matched manifest already
			// holds cannot happen; fail loudly rather than desynchronize.
			return nil, fmt.Errorf("collection: journal delta inconsistent at %q", e.Path)
		}
	}
	vb.Uvarint(uint64(len(vd.Added)))
	for _, p := range vd.Added {
		ch := vd.Changes[p]
		vb.String(p)
		vb.Bytes(ch.Payload)
		fullBytes += len(ch.Payload)
		costs.FilesFull++
	}
	vb.Uvarint(vd.Current)
	if err := s.sendVerdicts(fw, costs, vb.Build(), fullBytes, deltaBytes, nil, st); err != nil {
		return nil, err
	}
	return jfiles, nil
}

// treeHandshake runs merkle reconciliation, then answers the client's WANT
// list with verdicts for exactly those files. caps is the client's requested
// tree capability mask; anything we grant is announced with a TREE_ACK sent
// before the first TREE reply (same flush, no extra roundtrip). With caps ==
// 0 the exchange is byte-identical to a pre-extension session.
func (s *Server) treeHandshake(fr *wire.FrameReader, fw *wire.FrameWriter, costs *stats.Costs, cfg *core.Config, src Source, mtree *merkle.TreeCache, vb *wire.Buffer, mux int, caps byte, st *sessTrace) ([]syncFile, []int, error) {
	resp := merkle.NewResponderCached(mtree)
	granted := caps & (treeCapSpec | treeCapCross)
	resp.Speculative = granted&treeCapSpec != 0
	ackPending := granted != 0

	var want []byte
	round := 0
	for want == nil {
		ft, payload, err := fr.ReadFrame()
		if err != nil {
			return nil, nil, err
		}
		switch ft {
		case wire.FrameTree:
			round++
			st.begin(obs.PhaseTree, round)
			st.cost(costs, stats.C2S, stats.PhaseControl, len(payload))
			reply, err := resp.Respond(payload)
			if err != nil {
				return nil, nil, err
			}
			if ackPending {
				ackPending = false
				ab := wire.NewBuffer(2)
				ab.Uvarint(uint64(granted))
				if err := fw.WriteFrame(wire.FrameTreeAck, ab.Build()); err != nil {
					return nil, nil, err
				}
				st.cost(costs, stats.S2C, stats.PhaseControl, ab.Len())
			}
			if err := fw.WriteFrame(wire.FrameTree, reply); err != nil {
				return nil, nil, err
			}
			if err := fw.Flush(); err != nil {
				return nil, nil, err
			}
			st.cost(costs, stats.S2C, stats.PhaseControl, len(reply))
			costs.Roundtrips++
			costs.TreeRounds++
		case wire.FrameWant:
			st.cost(costs, stats.C2S, stats.PhaseControl, len(payload))
			want = payload
		default:
			return nil, nil, fmt.Errorf("collection: unexpected frame %s during reconciliation", wire.FrameName(ft))
		}
	}
	st.begin(obs.PhaseHandshake, 0)

	wp := wire.NewParser(want)
	n, err := wp.Uvarint()
	if err != nil {
		return nil, nil, err
	}
	vb.Reset()
	vb.Bytes(encodeConfig(cfg))
	vb.Uvarint(n)
	var engines []syncFile
	fullBytes := 0
	for k := uint64(0); k < n; k++ {
		path, err := wp.String()
		if err != nil {
			return nil, nil, err
		}
		have, err := wp.Byte()
		if err != nil {
			return nil, nil, err
		}
		data, err := src.Load(path)
		if errors.Is(err, fs.ErrNotExist) {
			vb.Byte(verdictDelete)
			continue
		}
		if err != nil {
			return nil, nil, err
		}
		if have == wantAbsent {
			vb.Byte(verdictFull)
			comp := delta.Compress(data)
			vb.Bytes(comp)
			fullBytes += len(comp)
			costs.FilesFull++
			continue
		}
		if have == wantAltBasis {
			// The client syncs against an alternate local basis; the map
			// protocol is basis-agnostic, so the serving side is unchanged.
			costs.FilesRebased++
		}
		eng, err := s.emitChangedVerdict(vb, cfg, src, path, data, costs, &fullBytes)
		if err != nil {
			return nil, nil, err
		}
		if eng != nil {
			engines = append(engines, syncFile{path, eng, data})
		}
	}
	vb.Uvarint(0) // no trailing new-file section in tree mode
	muxCounts := muxPartition(engines, mux)
	if err := s.sendVerdicts(fw, costs, vb.Build(), fullBytes, 0, muxCounts, st); err != nil {
		return nil, nil, err
	}
	return engines, muxCounts, nil
}

// emitChangedVerdict writes the verdict for a changed file the client holds:
// small files go whole, larger ones get a sync engine. The announced length
// and the engine both come from the same data snapshot, so the two sides can
// never disagree even if the underlying file mutates mid-session.
func (s *Server) emitChangedVerdict(vb *wire.Buffer, cfg *core.Config, src Source, path string, data []byte, costs *stats.Costs, fullBytes *int) (*core.ServerFile, error) {
	if len(data) < s.cfg.MinBlockSize*2 {
		vb.Byte(verdictFull)
		comp := delta.Compress(data)
		vb.Bytes(comp)
		*fullBytes += len(comp)
		costs.FilesFull++
		return nil, nil
	}
	vb.Byte(verdictSync)
	vb.Uvarint(uint64(len(data)))
	eng, err := core.NewServerFile(data, cfg)
	if err != nil {
		return nil, err
	}
	eng.UseSignature(src.Signature(path))
	costs.FilesSynced++
	return eng, nil
}

// sendVerdicts flushes the verdict frame with split cost attribution:
// full payloads count as PhaseFull, journal delta payloads as PhaseDelta,
// and the remainder (verdict bytes, lengths, framing) as control. A non-nil
// muxCounts grants stream multiplexing: the MUX_ACK precedes the verdicts in
// the same flush, so granting costs no extra roundtrip.
func (s *Server) sendVerdicts(fw *wire.FrameWriter, costs *stats.Costs, verdicts []byte, fullBytes, deltaBytes int, muxCounts []int, st *sessTrace) error {
	if len(muxCounts) > 0 {
		ack := wire.EncodeMuxAck(muxCounts)
		if err := fw.WriteFrame(wire.FrameMuxAck, ack); err != nil {
			return err
		}
		st.cost(costs, stats.S2C, stats.PhaseControl, len(ack))
	}
	if err := fw.WriteFrame(wire.FrameVerdicts, verdicts); err != nil {
		return err
	}
	if err := fw.Flush(); err != nil {
		return err
	}
	st.cost(costs, stats.S2C, stats.PhaseControl, len(verdicts)-fullBytes-deltaBytes)
	st.raw(costs, stats.S2C, stats.PhaseFull, fullBytes)
	if deltaBytes > 0 {
		st.raw(costs, stats.S2C, stats.PhaseDelta, deltaBytes)
	}
	costs.Roundtrips++
	return nil
}

// parallelFiles runs fn(0..n-1) across the session's worker budget; per-file
// engines are independent, so their CPU-heavy work parallelizes freely. The
// first error wins. Results are always gathered into index-addressed slots by
// the callers, so reply and section ordering is identical for every worker
// count.
func parallelFiles(workers, n int, fn func(i int) error) error {
	return pool.Do(workers, n, fn)
}

// absorbReplies processes one client reply frame (initial replies or
// subsequent batches) and returns the files that still need another batch.
func (s *Server) absorbReplies(engines []syncFile, payload []byte, first bool) ([]int, error) {
	pr := wire.NewParser(payload)
	n, err := pr.Uvarint()
	if err != nil {
		return nil, err
	}
	type job struct {
		idx     int
		section []byte
	}
	jobs := make([]job, 0, n)
	for k := uint64(0); k < n; k++ {
		idx, err := pr.Uvarint()
		if err != nil {
			return nil, err
		}
		if int(idx) >= len(engines) {
			return nil, fmt.Errorf("collection: bad file index %d", idx)
		}
		section, err := pr.Bytes()
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, job{int(idx), section})
	}
	mores := make([]bool, len(jobs))
	err = parallelFiles(s.cfg.Workers, len(jobs), func(k int) error {
		var more bool
		var err error
		if first {
			more, err = engines[jobs[k].idx].engine.AbsorbReply(jobs[k].section)
		} else {
			more, err = engines[jobs[k].idx].engine.AbsorbBatch(jobs[k].section)
		}
		if err != nil {
			return fmt.Errorf("collection: file %q: %w", engines[jobs[k].idx].path, err)
		}
		mores[k] = more
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pending []int
	for k, more := range mores {
		if more {
			pending = append(pending, jobs[k].idx)
		}
	}
	return pending, nil
}

// SelfTest verifies that the server's collection round-trips through a
// compression cycle; used by integration tests and the CLI's --check mode.
func (s *Server) SelfTest() error {
	src, manifest, _, err := s.sessionState()
	if err != nil {
		return err
	}
	for _, e := range manifest {
		data, err := src.Load(e.Path)
		if err != nil {
			return fmt.Errorf("collection: self-test failed for %q: %w", e.Path, err)
		}
		dec, err := delta.Decompress(delta.Compress(data))
		if err != nil || !bytes.Equal(dec, data) {
			return fmt.Errorf("collection: self-test failed for %q", e.Path)
		}
	}
	return nil
}
