// Package collection implements the collection-level synchronization
// protocol: manifest exchange with per-file fingerprints, multiplexing of
// every changed file's map-construction rounds into shared roundtrips (the
// paper's amortization argument), the delta phase, and full-transfer
// fallbacks for new files and whole-file-check failures.
package collection

import (
	"sort"

	"msync/internal/md4"
	"msync/internal/wire"
)

// ManifestEntry fingerprints one client file: the paper's "very strong
// 16-byte hash value for each file" used both to detect unchanged files and
// to backstop per-file failures.
type ManifestEntry struct {
	Path string
	Len  int
	Sum  [md4.Size]byte
}

// BuildManifest fingerprints a path-keyed file set, sorted by path.
func BuildManifest(files map[string][]byte) []ManifestEntry {
	out := make([]ManifestEntry, 0, len(files))
	for path, data := range files {
		out = append(out, ManifestEntry{Path: path, Len: len(data), Sum: md4.Sum(data)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// encodeManifestInto serializes a manifest into b (not reset first).
func encodeManifestInto(b *wire.Buffer, m []ManifestEntry) {
	b.Uvarint(uint64(len(m)))
	for _, e := range m {
		b.String(e.Path)
		b.Uvarint(uint64(e.Len))
		b.Raw(e.Sum[:])
	}
}

// encodeManifest serializes a manifest into a fresh buffer.
func encodeManifest(m []ManifestEntry) []byte {
	b := wire.NewBuffer(len(m) * 32)
	encodeManifestInto(b, m)
	return b.Build()
}

// decodeManifest parses a manifest.
func decodeManifest(p []byte) ([]ManifestEntry, error) {
	pr := wire.NewParser(p)
	n, err := pr.Uvarint()
	if err != nil {
		return nil, err
	}
	out := make([]ManifestEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		var e ManifestEntry
		if e.Path, err = pr.String(); err != nil {
			return nil, err
		}
		l, err := pr.Uvarint()
		if err != nil {
			return nil, err
		}
		e.Len = int(l)
		sum, err := pr.Raw(md4.Size)
		if err != nil {
			return nil, err
		}
		copy(e.Sum[:], sum)
		out = append(out, e)
	}
	return out, nil
}

// Session roles carried in the HELLO frame.
const (
	// rolePull: the initiator holds the outdated copy and wants updates.
	rolePull byte = 0
	// rolePush: the initiator holds the newer data and updates the remote
	// replica (the paper §7 asymmetric scenario).
	rolePush byte = 1
)

// Manifest exchange modes carried in the HELLO frame.
const (
	// modeManifest sends the full flat fingerprint manifest (paper §6.1).
	modeManifest byte = 0
	// modeTree locates changed files by merkle reconciliation first
	// (sublinear in collection size when few files change).
	modeTree byte = 1
)

// Verdicts for each client-manifest entry plus trailing new files.
const (
	verdictUnchanged byte = iota
	verdictSync           // changed: run the map+delta protocol
	verdictDelete         // no longer on the server
	verdictFull           // changed but too small to bother mapping; sent full
	verdictJournal        // changed: precomputed journal delta attached inline
)

// Hello extensions: an optional trailer after the mode byte, encoded as
// uvarint count followed by (uvarint id, length-prefixed payload) pairs.
// Servers ignore unknown extensions and pre-extension servers ignore the
// trailer entirely, so the hello stays backward- and forward-compatible.
const (
	// helloExtVersion announces the client's stored collection version as a
	// uvarint (0 = none known). A versioned server answers with journal
	// verdicts when it can serve the announced version's delta, and appends
	// its current version to the verdict frame either way.
	helloExtVersion = 1
	// helloExtMux requests stream multiplexing: the payload is the uvarint
	// stream width the client is willing to run. A server that grants it
	// (bounded by its own cap and the sync-file count) answers MUX_ACK
	// before the verdict frame; otherwise the session proceeds unchanged,
	// byte-identical to a legacy one past the extension bytes.
	helloExtMux = 2
	// helloExtTree advertises tree-mode capabilities as a uvarint bitmask
	// (treeCap* below). Only meaningful with modeTree. A server that grants
	// any of them answers TREE_ACK (the granted mask) before its first TREE
	// reply; otherwise — or with a zero request — the descent runs
	// byte-identically to a pre-extension session.
	helloExtTree = 3
	// helloExtMapMode requests a map-construction mode as a uvarint
	// core.MapMode. The server is authoritative: it grants the request by
	// running the session's engines in that mode and shipping the mode in
	// the session config (an optional trailing config field), which is how
	// the client learns the grant. Servers that predate the extension, or
	// that refuse the mode, run recursive halving and ship the config
	// without the trailing field — byte-identical to a legacy session.
	helloExtMapMode = 4
)

// Tree-mode capability bits carried in helloExtTree and TREE_ACK.
const (
	// treeCapSpec: speculative descent — internal-node TREE answers carry
	// several levels of descendant digests at once.
	treeCapSpec byte = 1 << 0
	// treeCapCross: cross-file matching — the client may omit renamed files
	// from its WANT (it copies them locally) and may tag wanted files with
	// an alternate-basis hint (wantAltBasis) it will sync against.
	treeCapCross byte = 1 << 1
)

// WANT-entry "have" byte. Legacy sessions encoded a bool (0/1); the values
// are chosen so those encodings are unchanged, with wantAltBasis only ever
// sent under a granted treeCapCross.
const (
	// wantAbsent: the client has no local basis; expect a full transfer.
	wantAbsent byte = 0
	// wantHave: the client has the same-path file as basis; run map+delta.
	wantHave byte = 1
	// wantAltBasis: the client has no same-path file but will sync against
	// an alternate local basis; the server treats it exactly like wantHave.
	wantAltBasis byte = 2
)
