package collection

import (
	"context"
	"errors"
	"fmt"
	"time"

	"msync/internal/core"
	"msync/internal/delta"
	"msync/internal/obs"
	"msync/internal/stats"
	"msync/internal/transport"
	"msync/internal/wire"
)

// Stream multiplexing (hello extension 2) interleaves the per-file phases of
// one session on one connection: the sync files are partitioned into streams,
// and every roundtrip — a server CYCLE and its client reply CYCLE — advances
// all streams at once. A stream that finished its map rounds ships its delta
// (and any full-transfer fallback) while slower streams are still mapping, so
// the session's wall clock is governed by the deepest file's round count, not
// the sum of phase tails, and tiny files batch their single rounds into
// roundtrips they'd otherwise each pay for.
//
// The cycle protocol is strict alternation. The server sends CYCLE(n) followed
// by n STREAM frames — exactly one per unfinished stream, carrying that
// stream's next legacy frame (ROUND_HASHES, CONFIRM, DELTA, or FULL) with
// engine indexes local to the stream's contiguous file range. The client
// replies CYCLE(m) + m STREAM frames (ROUND_REPLY or ACK); FULL frames get no
// reply, so a final all-FULL cycle goes unanswered. Inside a stream the frame
// sequence is byte-identical to a legacy session over that stream's files,
// which is why both sides reuse the legacy respond/absorb logic unchanged.

// muxSessionCap bounds the granted stream count per session. The wire cap
// (wire.MaxStreams) guards parsing; this is the scheduling policy: past a few
// dozen streams the per-cycle framing overhead outweighs any extra overlap.
const muxSessionCap = 64

// muxPhase maps an inner frame type to the cost phase its stream-frame bytes
// are accounted under, mirroring the legacy session's attribution.
func muxPhase(inner byte) stats.Phase {
	switch inner {
	case wire.FrameDelta:
		return stats.PhaseDelta
	case wire.FrameFull:
		return stats.PhaseFull
	case wire.FrameAck:
		return stats.PhaseControl
	default: // ROUND_HASHES, CONFIRM, ROUND_REPLY
		return stats.PhaseMap
	}
}

// muxPartition splits the sync files into at most `width` contiguous streams,
// balanced by content size so no stream dominates the session's cycle count.
// Returns nil (no multiplexing) when width < 1 or there are no files.
func muxPartition(files []syncFile, width int) []int {
	if width < 1 || len(files) == 0 {
		return nil
	}
	s := width
	if s > muxSessionCap {
		s = muxSessionCap
	}
	if s > len(files) {
		s = len(files)
	}
	total := 0
	for i := range files {
		total += len(files[i].data)
	}
	counts := make([]int, s)
	i, cum := 0, 0
	for k := 0; k < s; k++ {
		maxEnd := len(files) - (s - 1 - k) // leave one file per later stream
		end := i
		thresh := total * (k + 1) / s
		for end < maxEnd && (end == i || cum < thresh) {
			cum += len(files[end].data)
			end++
		}
		counts[k] = end - i
		i = end
	}
	counts[s-1] += len(files) - i
	return counts
}

// streamAcct accumulates one stream's wire accounting. During a session each
// stream's handler is the only writer of its own accumulator (on the client
// the handlers run concurrently — on different streams); the scheduler
// goroutine merges the result into the session Costs once the stream closes,
// so the shared Costs is never touched concurrently.
type streamAcct struct {
	costs    stats.Costs
	frames   int
	up, down int64
	start    time.Time
}

// add accounts one stream frame (payload plus framing, like addCost).
func (a *streamAcct) add(d stats.Direction, p stats.Phase, payload int) {
	addCost(&a.costs, d, p, payload)
	a.frames++
	n := int64(payload + frameOverhead(payload))
	if d == stats.C2S {
		a.up += n
	} else {
		a.down += n
	}
}

// Server-side stream states. A stream always has exactly one frame to send
// per server cycle until it is done, and every transition happens either
// while building a cycle (srRounds→delta emission, srFull→done) or while
// absorbing the client's reply cycle (everything else), so no stream is ever
// left in srAwaitAck when the next cycle is built.
const (
	srRounds   = iota // emitting map-construction rounds
	srConfirm         // emitting verification batches
	srAwaitAck        // delta sent, waiting for the stream's ACK
	srFull            // ACK reported failures; send full transfers next cycle
	srDone
)

// serverStream is one stream of a multiplexed serving session: a contiguous
// slice of the session's sync files plus the state machine walking them
// through the legacy phase sequence.
type serverStream struct {
	streamAcct
	id      int
	files   []syncFile
	state   int
	pending []int    // stream-local indexes awaiting verification batches
	failed  []uint64 // stream-local ack indexes needing full transfers
}

// parseAck decodes an ACK payload into stream-local failed indexes, bounds-
// checked against the stream's file count.
func parseAck(payload []byte, nFiles int) ([]uint64, error) {
	p := wire.NewParser(payload)
	nf, err := p.Uvarint()
	if err != nil {
		return nil, err
	}
	out := make([]uint64, 0, nf)
	for k := uint64(0); k < nf; k++ {
		idx, err := p.Uvarint()
		if err != nil || int(idx) >= nFiles {
			return nil, fmt.Errorf("collection: bad ack index")
		}
		out = append(out, idx)
	}
	return out, nil
}

// serveMux runs the multiplexed replacement for the legacy round/delta/ack
// loop: the engines are already partitioned into counts (as acknowledged to
// the client in MUX_ACK), and the session ends when every stream has closed.
func (s *Server) serveMux(ctx context.Context, sess *transport.Session, fr *wire.FrameReader, fw *wire.FrameWriter, costs *stats.Costs, fail func(error) (*stats.Costs, error), engines []syncFile, counts []int, st *sessTrace) (*stats.Costs, error) {
	streams := make([]*serverStream, len(counts))
	now := time.Now()
	off := 0
	for k, c := range counts {
		streams[k] = &serverStream{id: k, files: engines[off : off+c]}
		streams[k].start = now
		off += c
	}
	live := len(streams)
	gauge := s.Metrics.Gauge(obs.MetricStreamsActive)
	gauge.Add(int64(live))
	defer func() { gauge.Add(-int64(live)) }()

	var sd *transport.StreamDeadlines
	if sess != nil && s.RoundTimeout > 0 {
		sd = transport.NewStreamDeadlines()
		defer sess.SetPhaseDeadline(time.Time{})
	}

	// closeStream harvests the stream's engine counters, merges its private
	// Costs into the session's, and emits its span. Scheduler goroutine only.
	closeStream := func(stm *serverStream) {
		for i := range stm.files {
			e := stm.files[i].engine
			stm.costs.HashesSent += e.HashesSent
			stm.costs.CandidatesFound += e.CandidatesSeen
			stm.costs.MatchesConfirmed += e.MatchesConfirmed
			stm.costs.BlockHashesComputed += e.BlockHashesComputed
			stm.costs.BytesHashed += e.BytesHashed
			stm.costs.CDCChunks += e.CDCChunks
		}
		stm.costs.FalseCandidates = stm.costs.CandidatesFound - stm.costs.MatchesConfirmed
		costs.Merge(&stm.costs)
		st.stream(stm.id, stm.frames, stm.up, stm.down, stm.start)
		stm.state = srDone
		if sd != nil {
			sd.Drop(stm.id)
		}
		gauge.Dec()
		live--
	}

	type outFrame struct {
		stm     *serverStream
		inner   byte
		payload []byte
	}
	sfb := wire.GetBuffer(4096)
	defer wire.PutBuffer(sfb)
	cycle := 0
	for live > 0 {
		if err := ctx.Err(); err != nil {
			return costs, fmt.Errorf("collection: session cancelled: %w", err)
		}
		cycle++
		st.begin(obs.PhaseRound, cycle)

		// Build this cycle: one frame per unfinished stream.
		var outs []outFrame
		expect := 0 // frames that will be answered in the client's reply cycle
		roundsInCycle := 0
		for _, stm := range streams {
			switch stm.state {
			case srDone:
			case srRounds:
				var active []int
				for i := range stm.files {
					if stm.files[i].engine.Active() {
						active = append(active, i)
					}
				}
				if len(active) == 0 {
					// Every map is built: this stream moves on to its delta
					// while other streams keep running rounds in the same
					// cycle — the overlap multiplexing exists for.
					sections := make([][]byte, len(stm.files))
					parallelFiles(s.cfg.Workers, len(stm.files), func(i int) error {
						sections[i] = stm.files[i].engine.EmitDelta()
						return nil
					})
					b := wire.NewBuffer(1024)
					b.Uvarint(uint64(len(stm.files)))
					for i := range sections {
						b.Bytes(sections[i])
					}
					stm.state = srAwaitAck
					outs = append(outs, outFrame{stm, wire.FrameDelta, b.Build()})
					expect++
					continue
				}
				sections := make([][]byte, len(active))
				parallelFiles(s.cfg.Workers, len(active), func(k int) error {
					sections[k] = stm.files[active[k]].engine.EmitHashes()
					return nil
				})
				b := wire.NewBuffer(1024)
				b.Uvarint(uint64(len(active)))
				for k, i := range active {
					b.Uvarint(uint64(i))
					b.Bytes(sections[k])
				}
				outs = append(outs, outFrame{stm, wire.FrameRoundHashes, b.Build()})
				expect++
				roundsInCycle++
			case srConfirm:
				b := wire.NewBuffer(1024)
				b.Uvarint(uint64(len(stm.pending)))
				for _, i := range stm.pending {
					b.Uvarint(uint64(i))
					b.Bytes(stm.files[i].engine.EmitConfirm())
				}
				outs = append(outs, outFrame{stm, wire.FrameConfirm, b.Build()})
				expect++
				roundsInCycle++
			case srFull:
				b := wire.NewBuffer(1024)
				b.Uvarint(uint64(len(stm.failed)))
				for _, idx := range stm.failed {
					b.Uvarint(idx)
					// The exact bytes the engine synced from, as in the
					// legacy fallback, so a full transfer is consistent with
					// the session even if the source changed underneath.
					b.Bytes(delta.Compress(stm.files[idx].data))
					stm.costs.FilesFull++
				}
				outs = append(outs, outFrame{stm, wire.FrameFull, b.Build()})
			}
		}

		cp := wire.EncodeCycle(len(outs))
		if err := fw.WriteFrame(wire.FrameCycle, cp); err != nil {
			return costs, err
		}
		st.cost(costs, stats.S2C, stats.PhaseControl, len(cp))
		fullCycle := false
		for _, of := range outs {
			sfb.Reset()
			wire.AppendStreamFrame(sfb, of.stm.id, of.inner, of.payload)
			sp := sfb.Build()
			if err := fw.WriteFrame(wire.FrameStream, sp); err != nil {
				return costs, err
			}
			of.stm.add(stats.S2C, muxPhase(of.inner), len(sp))
			if of.inner == wire.FrameFull {
				fullCycle = true
				closeStream(of.stm) // FULL is the stream's last frame
			}
		}
		if err := fw.Flush(); err != nil {
			return costs, err
		}
		if fullCycle {
			costs.Roundtrips++
		}
		if roundsInCycle >= 2 {
			// Rounds that shared this cycle's flush instead of each paying
			// their own roundtrip.
			s.Metrics.Counter(obs.MetricRoundsBatched).Add(int64(roundsInCycle))
		}
		if expect == 0 {
			continue // all-FULL cycle: unanswered; live is now 0
		}

		// Every reply-expecting stream gets a fresh round budget; the session
		// blocks on the earliest so one stalled stream fails it in time.
		if sd != nil {
			dl := time.Now().Add(s.RoundTimeout)
			for _, of := range outs {
				if of.inner != wire.FrameFull {
					sd.Touch(of.stm.id, dl)
				}
			}
			sess.SetPhaseDeadline(sd.Earliest())
		}

		reply, err := fr.ExpectFrame(wire.FrameCycle)
		if err != nil {
			return costs, err
		}
		m, err := wire.ParseCycle(reply)
		if err != nil {
			return fail(err)
		}
		st.cost(costs, stats.C2S, stats.PhaseControl, len(reply))
		costs.Roundtrips++
		if m != expect {
			return fail(fmt.Errorf("collection: reply cycle of %d frames, want %d", m, expect))
		}
		seen := make(map[int]bool, m)
		for k := 0; k < m; k++ {
			sp, err := fr.ExpectFrame(wire.FrameStream)
			if err != nil {
				return costs, err
			}
			sf, err := wire.ParseStreamFrame(sp, len(streams))
			if err != nil {
				return fail(err)
			}
			if seen[sf.ID] {
				return fail(fmt.Errorf("collection: duplicate reply for stream %d", sf.ID))
			}
			seen[sf.ID] = true
			stm := streams[sf.ID]
			stm.add(stats.C2S, muxPhase(sf.Type), len(sp))
			if sd != nil {
				sd.Touch(sf.ID, time.Now().Add(s.RoundTimeout))
				sess.SetPhaseDeadline(sd.Earliest())
			}
			switch {
			case sf.Type == wire.FrameRoundReply && stm.state == srRounds:
				pending, err := s.absorbReplies(stm.files, sf.Payload, true)
				if err != nil {
					return fail(err)
				}
				if len(pending) > 0 {
					stm.pending = pending
					stm.state = srConfirm
				}
			case sf.Type == wire.FrameRoundReply && stm.state == srConfirm:
				pending, err := s.absorbReplies(stm.files, sf.Payload, false)
				if err != nil {
					return fail(err)
				}
				stm.pending = pending
				if len(pending) == 0 {
					stm.state = srRounds
				}
			case sf.Type == wire.FrameAck && stm.state == srAwaitAck:
				failed, err := parseAck(sf.Payload, len(stm.files))
				if err != nil {
					return fail(err)
				}
				if len(failed) == 0 {
					closeStream(stm)
				} else {
					stm.failed = failed
					stm.state = srFull
				}
			default:
				return fail(fmt.Errorf("collection: unexpected %s for stream %d", wire.FrameName(sf.Type), sf.ID))
			}
		}
	}
	return costs, nil
}

// clientStream is one stream of a multiplexed pull: the contiguous slice of
// the session's engines assigned by MUX_ACK plus everything the stream's
// handler needs to run without touching shared state. files, perEngine, buf
// and the accumulator are private to the stream, which is what lets the
// cycle's handlers run concurrently under the race detector.
type clientStream struct {
	streamAcct
	id        int
	files     []clientFile
	perEngine []int64 // stream-local slice of the session's perEngine array
	buf       *wire.Buffer

	// Delta outcome, committed single-threaded by the scheduler.
	results      [][]byte
	verifyFailed []int
	fullIdxs     []uint64
	fullDatas    [][]byte
	awaitingFull bool
	done         bool

	// reply is the frame the handler built for the current cycle; inner == 0
	// means no reply (a FULL was received).
	reply struct {
		inner   byte
		payload []byte
	}
}

// handle processes one received stream frame. It runs concurrently with other
// streams' handlers and touches only this stream's state; rawLen is the full
// STREAM frame payload length for cost accounting.
func (cs *clientStream) handle(sf wire.StreamFrame, rawLen int) error {
	cs.reply.inner = 0
	cs.reply.payload = nil
	switch sf.Type {
	case wire.FrameRoundHashes, wire.FrameConfirm:
		cs.add(stats.S2C, stats.PhaseMap, rawLen)
		// Engine fan-out is across streams here, so within the stream the
		// legacy respond runs serially; its reply bytes are identical for
		// every worker split.
		reply, err := respond(1, cs.files, sf.Type, sf.Payload, cs.perEngine, cs.buf)
		if err != nil {
			return err
		}
		cs.reply.inner = wire.FrameRoundReply
		cs.reply.payload = reply
	case wire.FrameDelta:
		cs.add(stats.S2C, stats.PhaseDelta, rawLen)
		dp := wire.NewParser(sf.Payload)
		nd, err := dp.Uvarint()
		if err != nil || int(nd) != len(cs.files) {
			return fmt.Errorf("collection: delta count mismatch")
		}
		sections := make([][]byte, len(cs.files))
		for i := range cs.files {
			section, err := dp.Bytes()
			if err != nil {
				return err
			}
			sections[i] = section
			cs.perEngine[i] += int64(len(section))
		}
		cs.results = make([][]byte, len(cs.files))
		for i := range cs.files {
			data, err := cs.files[i].engine.ApplyDelta(sections[i])
			switch {
			case err == nil:
				cs.results[i] = data
			case errors.Is(err, core.ErrVerifyFailed):
				cs.verifyFailed = append(cs.verifyFailed, i)
			default:
				return fmt.Errorf("collection: file %q: %w", cs.files[i].path, err)
			}
		}
		cs.buf.Reset()
		cs.buf.Uvarint(uint64(len(cs.verifyFailed)))
		for _, i := range cs.verifyFailed {
			cs.buf.Uvarint(uint64(i))
		}
		cs.reply.inner = wire.FrameAck
		cs.reply.payload = cs.buf.Build()
		cs.awaitingFull = len(cs.verifyFailed) > 0
	case wire.FrameFull:
		if !cs.awaitingFull {
			return fmt.Errorf("collection: unexpected FULL for stream %d", cs.id)
		}
		cs.add(stats.S2C, stats.PhaseFull, rawLen)
		fp := wire.NewParser(sf.Payload)
		nf, err := fp.Uvarint()
		if err != nil || int(nf) != len(cs.verifyFailed) {
			return fmt.Errorf("collection: full-transfer count mismatch")
		}
		for k := uint64(0); k < nf; k++ {
			idx, err := fp.Uvarint()
			if err != nil || int(idx) >= len(cs.files) {
				return fmt.Errorf("collection: bad full index")
			}
			comp, err := fp.Bytes()
			if err != nil {
				return err
			}
			data, err := delta.Decompress(comp)
			if err != nil {
				return err
			}
			cs.fullIdxs = append(cs.fullIdxs, idx)
			cs.fullDatas = append(cs.fullDatas, data)
			cs.perEngine[idx] += int64(len(comp))
			cs.costs.FilesFull++
		}
	default:
		return fmt.Errorf("collection: unexpected frame %s in stream %d", wire.FrameName(sf.Type), cs.id)
	}
	return nil
}

// commit writes the stream's outcome into the session's result set. Scheduler
// goroutine only: the result map is shared across streams.
func (cs *clientStream) commit(out map[string][]byte) {
	failed := make(map[int]bool, len(cs.verifyFailed))
	for _, i := range cs.verifyFailed {
		failed[i] = true
	}
	for i := range cs.files {
		if !failed[i] {
			out[cs.files[i].path] = cs.results[i]
		}
	}
	for k, idx := range cs.fullIdxs {
		out[cs.files[idx].path] = cs.fullDatas[k]
	}
}

// consumeStreams runs the client half of a multiplexed session, replacing the
// legacy round/delta/ack loop once MUX_ACK arrived: read each server cycle,
// handle its stream frames concurrently, then reply and commit in cycle
// order. perEngine is the session's per-engine byte attribution; each stream
// writes only its own contiguous slice of it.
func consumeStreams(ctx context.Context, fr *wire.FrameReader, fw *wire.FrameWriter, costs *stats.Costs, engines []clientFile, counts []int, workers int, perEngine []int64, out map[string][]byte, st *sessTrace) error {
	streams := make([]*clientStream, len(counts))
	now := time.Now()
	off := 0
	for k, c := range counts {
		streams[k] = &clientStream{
			id:        k,
			files:     engines[off : off+c],
			perEngine: perEngine[off : off+c],
			buf:       wire.NewBuffer(1024),
		}
		streams[k].start = now
		off += c
	}
	live := len(streams)
	sfb := wire.GetBuffer(4096)
	defer wire.PutBuffer(sfb)

	closeStream := func(cs *clientStream) {
		cs.done = true
		costs.Merge(&cs.costs)
		st.stream(cs.id, cs.frames, cs.up, cs.down, cs.start)
		live--
	}

	cycle := 0
	for live > 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("collection: session cancelled: %w", err)
		}
		cycle++
		st.begin(obs.PhaseRound, cycle)

		cp, err := fr.ExpectFrame(wire.FrameCycle)
		if err != nil {
			return err
		}
		n, err := wire.ParseCycle(cp)
		if err != nil {
			return err
		}
		st.cost(costs, stats.S2C, stats.PhaseControl, len(cp))
		if n == 0 || n > live {
			return fmt.Errorf("collection: cycle of %d frames with %d live streams", n, live)
		}
		frames := make([]wire.StreamFrame, n)
		rawLens := make([]int, n)
		seen := make(map[int]bool, n)
		for k := 0; k < n; k++ {
			sp, err := fr.ExpectFrame(wire.FrameStream)
			if err != nil {
				return err
			}
			sf, err := wire.ParseStreamFrame(sp, len(streams))
			if err != nil {
				return err
			}
			if seen[sf.ID] || streams[sf.ID].done {
				return fmt.Errorf("collection: unexpected frame for stream %d", sf.ID)
			}
			seen[sf.ID] = true
			frames[k] = sf
			rawLens[k] = len(sp)
		}

		// Handle all received frames concurrently; each handler owns its
		// stream's engines, byte attribution and cost accumulator.
		if err := parallelFiles(workers, n, func(k int) error {
			return streams[frames[k].ID].handle(frames[k], rawLens[k])
		}); err != nil {
			return err
		}

		// Reply in cycle order (the order the server sent, so the reply
		// bytes are deterministic for every worker count).
		var outs []*clientStream
		fullCycle := false
		for k := 0; k < n; k++ {
			stm := streams[frames[k].ID]
			if stm.reply.inner != 0 {
				outs = append(outs, stm)
			}
			if frames[k].Type == wire.FrameFull {
				fullCycle = true
			}
		}
		if len(outs) > 0 {
			ccp := wire.EncodeCycle(len(outs))
			if err := fw.WriteFrame(wire.FrameCycle, ccp); err != nil {
				return err
			}
			st.cost(costs, stats.C2S, stats.PhaseControl, len(ccp))
			for _, stm := range outs {
				sfb.Reset()
				wire.AppendStreamFrame(sfb, stm.id, stm.reply.inner, stm.reply.payload)
				sp := sfb.Build()
				if err := fw.WriteFrame(wire.FrameStream, sp); err != nil {
					return err
				}
				stm.add(stats.C2S, muxPhase(stm.reply.inner), len(sp))
			}
			if err := fw.Flush(); err != nil {
				return err
			}
			costs.Roundtrips++
		}
		if fullCycle {
			costs.Roundtrips++
		}

		// Commit finished streams single-threaded: a stream is done after a
		// clean ACK went out, or after its FULL fallback arrived.
		for k := 0; k < n; k++ {
			stm := streams[frames[k].ID]
			switch frames[k].Type {
			case wire.FrameDelta:
				if !stm.awaitingFull {
					stm.commit(out)
					closeStream(stm)
				}
			case wire.FrameFull:
				stm.commit(out)
				closeStream(stm)
			}
		}
	}
	return nil
}
