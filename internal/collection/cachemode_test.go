package collection

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"msync/internal/core"
	"msync/internal/dirio"
	"msync/internal/sigcache"
	"msync/internal/stats"
	"msync/internal/transport"
)

// wireRecorder mirrors everything one endpoint writes into a buffer, so two
// sessions can be compared byte for byte.
type wireRecorder struct {
	io.ReadWriteCloser
	mu  *sync.Mutex
	buf *bytes.Buffer
}

func (w wireRecorder) Write(p []byte) (int, error) {
	w.mu.Lock()
	w.buf.Write(p)
	w.mu.Unlock()
	return w.ReadWriteCloser.Write(p)
}

// makeCacheModeTrees writes a server tree and an outdated client copy:
// an unchanged file, two modified ones, a server-only (new) file and a
// client-only (to-be-deleted) file.
func makeCacheModeTrees(t *testing.T) (serverDir, clientDir string) {
	t.Helper()
	serverDir, clientDir = t.TempDir(), t.TempDir()
	block := func(tag string, n int) string {
		return strings.Repeat("synthetic source line for "+tag+"\n", n)
	}
	write := func(dir, rel, content string) {
		t.Helper()
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	same := block("same", 400)
	oldB, newB := block("b", 1200), block("b", 600)+"edited\n"+block("b", 599)
	oldE, newE := block("e", 800), "prepended\n"+block("e", 800)
	write(serverDir, "same/a.txt", same)
	write(clientDir, "same/a.txt", same)
	write(serverDir, "mod/b.txt", newB)
	write(clientDir, "mod/b.txt", oldB)
	write(serverDir, "mod/e.txt", newE)
	write(clientDir, "mod/e.txt", oldE)
	write(serverDir, "new/c.txt", block("c", 300))
	write(clientDir, "old/d.txt", block("d", 100))
	return serverDir, clientDir
}

// runCacheModeSession syncs clientDir against serverDir through fresh
// TreeSources over the given caches, recording both directions of the wire.
func runCacheModeSession(t *testing.T, serverDir, clientDir string, sCache, cCache *sigcache.Cache, paranoid bool) (serverBytes, clientBytes []byte, res *Result, serverCosts *stats.Costs) {
	t.Helper()
	cfg := core.DefaultConfig()
	sTree, werrs, err := dirio.OpenTree(serverDir)
	if err != nil || len(werrs) > 0 {
		t.Fatalf("server tree: %v %v", err, werrs)
	}
	cTree, werrs, err := dirio.OpenTree(clientDir)
	if err != nil || len(werrs) > 0 {
		t.Fatalf("client tree: %v %v", err, werrs)
	}
	srv, err := NewServerSource(NewTreeSource(sTree, sCache, ConfigFingerprint(&cfg), paranoid), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClientSource(NewTreeSource(cTree, cCache, 0, paranoid))
	cli.LazyResult = true

	a, b := transport.Pipe()
	var mu sync.Mutex
	var sb, cb bytes.Buffer
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		c, err := srv.Serve(wireRecorder{a, &mu, &sb})
		if err != nil {
			t.Error(err)
		}
		serverCosts = c
	}()
	res, err = cli.Sync(wireRecorder{b, &mu, &cb})
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	wg.Wait()
	return sb.Bytes(), cb.Bytes(), res, serverCosts
}

// TestCacheModesWireIdentical runs the same changed-tree sync with the cache
// off, cold, warm and warm+paranoid, and demands byte-identical traffic in
// both directions plus identical results — the invariant that the cache only
// ever changes who computes a hash, never its value.
func TestCacheModesWireIdentical(t *testing.T) {
	serverDir, clientDir := makeCacheModeTrees(t)
	want, err := dirio.Load(serverDir)
	if err != nil {
		t.Fatal(err)
	}

	checkResult := func(mode string, res *Result) {
		t.Helper()
		if len(res.Deleted) != 1 || res.Deleted[0] != "old/d.txt" {
			t.Fatalf("%s: Deleted = %v", mode, res.Deleted)
		}
		for path, data := range res.Files {
			if !bytes.Equal(data, want[path]) {
				t.Fatalf("%s: wrong content for %s", mode, path)
			}
		}
		if len(res.Files)+len(res.Unchanged) != len(want) {
			t.Fatalf("%s: %d written + %d unchanged, want %d total",
				mode, len(res.Files), len(res.Unchanged), len(want))
		}
	}

	offS, offC, res, _ := runCacheModeSession(t, serverDir, clientDir, nil, nil, false)
	checkResult("off", res)

	sCache := sigcache.New(sigcache.Options{})
	cCache := sigcache.New(sigcache.Options{})
	coldS, coldC, res, coldCosts := runCacheModeSession(t, serverDir, clientDir, sCache, cCache, false)
	checkResult("cold", res)
	if coldCosts.CacheMisses == 0 {
		t.Fatal("cold run recorded no misses")
	}

	warmS, warmC, res, warmCosts := runCacheModeSession(t, serverDir, clientDir, sCache, cCache, false)
	checkResult("warm", res)
	if warmCosts.CacheMisses != 0 || warmCosts.CacheHits == 0 {
		t.Fatalf("warm server cache: %d misses / %d hits", warmCosts.CacheMisses, warmCosts.CacheHits)
	}
	// The cold session's engines deposited their level tables into the shared
	// signatures, so the warm session recomputes only session-dependent probe
	// hashes.
	if warmCosts.BlockHashesComputed >= coldCosts.BlockHashesComputed {
		t.Fatalf("warm engines hashed %d blocks, cold %d — levels not reused",
			warmCosts.BlockHashesComputed, coldCosts.BlockHashesComputed)
	}

	paraS, paraC, res, _ := runCacheModeSession(t, serverDir, clientDir, sCache, cCache, true)
	checkResult("paranoid", res)

	for mode, got := range map[string][2][]byte{
		"cold":     {coldS, coldC},
		"warm":     {warmS, warmC},
		"paranoid": {paraS, paraC},
	} {
		if !bytes.Equal(got[0], offS) {
			t.Errorf("%s: server→client bytes differ from cache-off run", mode)
		}
		if !bytes.Equal(got[1], offC) {
			t.Errorf("%s: client→server bytes differ from cache-off run", mode)
		}
	}
}

// TestRepeatedServeReusesEngineLevels: one server (no disk cache, just the
// per-source signature memo) serving the same outdated client twice computes
// strictly fewer block hashes the second time, with identical wire traffic.
func TestRepeatedServeReusesEngineLevels(t *testing.T) {
	serverDir, clientDir := makeCacheModeTrees(t)
	cfg := core.DefaultConfig()
	sTree, werrs, err := dirio.OpenTree(serverDir)
	if err != nil || len(werrs) > 0 {
		t.Fatalf("server tree: %v %v", err, werrs)
	}
	srv, err := NewServerSource(NewTreeSource(sTree, nil, ConfigFingerprint(&cfg), false), cfg)
	if err != nil {
		t.Fatal(err)
	}

	serveOnce := func() (wire []byte, costs *stats.Costs) {
		t.Helper()
		cTree, werrs, err := dirio.OpenTree(clientDir)
		if err != nil || len(werrs) > 0 {
			t.Fatalf("client tree: %v %v", err, werrs)
		}
		cli := NewClientSource(NewTreeSource(cTree, nil, 0, false))
		cli.LazyResult = true
		a, b := transport.Pipe()
		var mu sync.Mutex
		var sb bytes.Buffer
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer a.Close()
			c, err := srv.Serve(wireRecorder{a, &mu, &sb})
			if err != nil {
				t.Error(err)
			}
			costs = c
		}()
		if _, err := cli.Sync(b); err != nil {
			t.Fatal(err)
		}
		b.Close()
		wg.Wait()
		return sb.Bytes(), costs
	}

	wire1, costs1 := serveOnce()
	wire2, costs2 := serveOnce()
	if costs1.BlockHashesComputed == 0 {
		t.Fatal("first session computed no block hashes — trees too small for the test")
	}
	if costs2.BlockHashesComputed >= costs1.BlockHashesComputed {
		t.Fatalf("second session computed %d block hashes, first %d — memoized levels unused",
			costs2.BlockHashesComputed, costs1.BlockHashesComputed)
	}
	if !bytes.Equal(wire1, wire2) {
		t.Fatal("level reuse changed the bytes on the wire")
	}
}
