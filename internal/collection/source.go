package collection

import (
	"encoding/binary"
	"io/fs"
	"sync"
	"sync/atomic"

	"msync/internal/core"
	"msync/internal/dirio"
	"msync/internal/md4"
	"msync/internal/sigcache"
	"msync/internal/stats"
)

// Source abstracts where a collection's bytes come from. The legacy
// path-keyed map is one implementation (MapSource); TreeSource streams a
// directory lazily, so neither endpoint needs the whole collection in
// memory, and consults a signature cache so unchanged files cost a stat
// instead of a hash.
type Source interface {
	// Manifest fingerprints the collection, sorted by path.
	Manifest() ([]ManifestEntry, error)
	// Load returns one file's content. Missing files report an error
	// satisfying errors.Is(err, fs.ErrNotExist).
	Load(path string) ([]byte, error)
	// Signature returns the cached signature for path, or nil. Engines use
	// it to skip block hashing; the values served are identical to freshly
	// computed ones, so wire output never depends on it.
	Signature(path string) *sigcache.Sig
}

// MapSource adapts a path-keyed content map to the Source interface.
type MapSource map[string][]byte

// Manifest implements Source.
func (m MapSource) Manifest() ([]ManifestEntry, error) { return BuildManifest(m), nil }

// Load implements Source.
func (m MapSource) Load(path string) ([]byte, error) {
	data, ok := m[path]
	if !ok {
		return nil, &fs.PathError{Op: "load", Path: path, Err: fs.ErrNotExist}
	}
	return data, nil
}

// Signature implements Source; maps carry no cached signatures.
func (m MapSource) Signature(string) *sigcache.Sig { return nil }

// ConfigFingerprint condenses the wire serialization of a protocol config
// into the signature-cache key component: any change that alters the block
// schedule or hash family changes the fingerprint and invalidates cached
// signatures. Workers is deliberately absent from the serialization (it
// cannot affect hash values), so it does not disturb the cache.
func ConfigFingerprint(cfg *core.Config) uint64 {
	sum := md4.Sum(encodeConfig(cfg))
	return binary.LittleEndian.Uint64(sum[:8])
}

// TreeSource serves a collection from a lazily walked directory tree,
// optionally backed by a signature cache. The manifest is computed once (a
// stat-backed cache lookup per file; only misses stream the file through
// MD4) and reused by every session, mirroring the server's manifest cache.
type TreeSource struct {
	tree     *dirio.Tree
	cache    *sigcache.Cache // nil: no cross-session caching
	fp       uint64          // engine config fingerprint for cache keys
	paranoid bool

	mu       sync.Mutex
	manifest []ManifestEntry
	sigs     map[string]*sigcache.Sig

	bytesHashed atomic.Int64
}

// NewTreeSource creates a source over tree. cache may be nil; fingerprint
// keys cached signatures to the engine config (use ConfigFingerprint on the
// serving side, 0 on a pulling client, which caches only whole-file sums).
// With paranoid set, every cache hit is re-verified by streaming the file —
// catching content changes that restored size and mtime, at the cost of the
// hashing the cache was meant to avoid.
func NewTreeSource(tree *dirio.Tree, cache *sigcache.Cache, fingerprint uint64, paranoid bool) *TreeSource {
	return &TreeSource{tree: tree, cache: cache, fp: fingerprint, paranoid: paranoid}
}

// Cache returns the backing signature cache (nil when uncached).
func (s *TreeSource) Cache() *sigcache.Cache { return s.cache }

// HashedBytes reports how many bytes this source has streamed through MD4
// for manifest fingerprints (cache misses and paranoid re-verification).
func (s *TreeSource) HashedBytes() int64 { return s.bytesHashed.Load() }

// Manifest implements Source.
func (s *TreeSource) Manifest() ([]ManifestEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.manifest != nil {
		return s.manifest, nil
	}
	files := s.tree.Files()
	manifest := make([]ManifestEntry, 0, len(files))
	sigs := make(map[string]*sigcache.Sig, len(files))
	for _, fi := range files {
		sig, err := s.signatureFor(fi)
		if err != nil {
			return nil, err
		}
		manifest = append(manifest, ManifestEntry{Path: fi.Path, Len: int(fi.Size), Sum: sig.Sum})
		sigs[fi.Path] = sig
	}
	s.manifest = manifest
	s.sigs = sigs
	return manifest, nil
}

// signatureFor resolves one file's signature: cache hit (optionally
// re-verified), or a streamed hash that is then cached.
func (s *TreeSource) signatureFor(fi dirio.FileInfo) (*sigcache.Sig, error) {
	var hashErr error
	if s.cache != nil {
		key := sigcache.Key{Path: fi.Path, Size: fi.Size, MTime: fi.MTime.UnixNano(), CTime: fi.CTime, Fingerprint: s.fp}
		var verify func(*sigcache.Sig) bool
		if s.paranoid {
			verify = func(sig *sigcache.Sig) bool {
				sum, n, err := s.tree.HashFile(fi.Path)
				if err != nil {
					hashErr = err
					return false
				}
				s.bytesHashed.Add(n)
				return sum == sig.Sum && n == sig.Len
			}
		}
		if sig, ok := s.cache.Get(key, verify); ok {
			return sig, nil
		}
		if hashErr != nil {
			return nil, hashErr
		}
		sig, err := s.hashSignature(fi)
		if err != nil {
			return nil, err
		}
		s.cache.Put(key, sig)
		return sig, nil
	}
	return s.hashSignature(fi)
}

// hashSignature streams the file and builds a fresh signature.
func (s *TreeSource) hashSignature(fi dirio.FileInfo) (*sigcache.Sig, error) {
	sum, n, err := s.tree.HashFile(fi.Path)
	if err != nil {
		return nil, err
	}
	s.bytesHashed.Add(n)
	return sigcache.NewSig(n, sum), nil
}

// Load implements Source.
func (s *TreeSource) Load(path string) ([]byte, error) { return s.tree.Load(path) }

// Signature implements Source.
func (s *TreeSource) Signature(path string) *sigcache.Sig {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sigs[path]
}

// cacheBacked lets the session layer discover a source's signature cache
// without depending on the concrete type.
type cacheBacked interface{ Cache() *sigcache.Cache }

// hashAccounting lets the session layer meter a source's streamed hashing.
type hashAccounting interface{ HashedBytes() int64 }

// accounting snapshots a source's cache and hashing counters at session
// start so their deltas can be attributed to one session's Costs.
type accounting struct {
	cache  *sigcache.Cache
	cache0 sigcache.Stats
	hasher hashAccounting
	bytes0 int64
}

// beginAccounting snapshots src's counters.
func beginAccounting(src Source) *accounting {
	a := &accounting{}
	if cb, ok := src.(cacheBacked); ok && cb.Cache() != nil {
		a.cache = cb.Cache()
		a.cache0 = a.cache.Stats()
	}
	if h, ok := src.(hashAccounting); ok {
		a.hasher = h
		a.bytes0 = h.HashedBytes()
	}
	return a
}

// finish folds the counter deltas into costs and flushes dirty signatures
// (engines add levels during the session) to the cache's disk store.
func (a *accounting) finish(costs *stats.Costs) {
	if a.hasher != nil {
		costs.BytesHashed += a.hasher.HashedBytes() - a.bytes0
	}
	if a.cache == nil {
		return
	}
	d := a.cache.Stats().Sub(a.cache0)
	costs.CacheHits += d.Hits
	costs.CacheMisses += d.Misses
	costs.CacheEvictions += d.Evictions
	a.cache.Flush()
}
