package collection

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"msync/internal/core"
	"msync/internal/corpus"
	"msync/internal/transport"
)

// -update regenerates the recorded legacy wire streams in testdata/. Only do
// this for an intentional, documented protocol change: the goldens are the
// compatibility contract that sessions without hello extensions stay
// byte-identical across versions (PROTOCOL.md "Hello extensions").
var updateGoldens = flag.Bool("update", false, "rewrite recorded wire streams in testdata/")

// recordConn wraps the client end of a pipe and captures both directions of
// the session: everything the client writes (c2s) and reads (s2c).
type recordConn struct {
	rw       io.ReadWriter
	c2s, s2c bytes.Buffer
}

func (r *recordConn) Read(p []byte) (int, error) {
	n, err := r.rw.Read(p)
	r.s2c.Write(p[:n])
	return n, err
}

func (r *recordConn) Write(p []byte) (int, error) {
	n, err := r.rw.Write(p)
	r.c2s.Write(p[:n])
	return n, err
}

// encodeStreams serializes the two directions as length-prefixed blobs.
func encodeStreams(c2s, s2c []byte) []byte {
	var out bytes.Buffer
	for _, b := range [][]byte{c2s, s2c} {
		var hdr [8]byte
		binary.LittleEndian.PutUint64(hdr[:], uint64(len(b)))
		out.Write(hdr[:])
		out.Write(b)
	}
	return out.Bytes()
}

// legacyScenario runs one client/server session pair over a pipe with the
// client end recorded and returns the serialized transcript.
type legacyScenario struct {
	name string
	run  func(t *testing.T) (c2s, s2c []byte)
}

// runRecorded drives client against server over a recorded pipe.
func runRecorded(t *testing.T, srv *Server, cli *Client) (c2s, s2c []byte) {
	t.Helper()
	a, b := transport.Pipe()
	rec := &recordConn{rw: b}
	var wg sync.WaitGroup
	var serverErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		_, serverErr = srv.Serve(a)
	}()
	_, err := cli.Sync(rec)
	b.Close()
	wg.Wait()
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	if serverErr != nil {
		t.Fatalf("server: %v", serverErr)
	}
	return rec.c2s.Bytes(), rec.s2c.Bytes()
}

func legacyScenarios() []legacyScenario {
	return []legacyScenario{
		{name: "manifest_pull", run: func(t *testing.T) ([]byte, []byte) {
			v1, v2 := corpus.EmacsProfile(0.08).Generate(5)
			srv, err := NewServer(v2.Map(), core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			return runRecorded(t, srv, NewClient(v1.Map()))
		}},
		{name: "tree_pull", run: func(t *testing.T) ([]byte, []byte) {
			v1, v2 := corpus.GCCProfile(0.05).Generate(9)
			srv, err := NewServer(v2.Map(), core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			cli := NewClient(v1.Map())
			cli.TreeManifest = true
			return runRecorded(t, srv, cli)
		}},
		{name: "push", run: func(t *testing.T) ([]byte, []byte) {
			v1, v2 := corpus.EmacsProfile(0.06).Generate(11)
			pusher, err := NewServer(v2.Map(), core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			receiver, err := NewServer(v1.Map(), core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			receiver.AllowPush = true
			a, b := transport.Pipe()
			rec := &recordConn{rw: b}
			var wg sync.WaitGroup
			var srvErr error
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer a.Close()
				_, srvErr = receiver.Serve(a)
			}()
			_, err = pusher.Push(rec)
			b.Close()
			wg.Wait()
			if err != nil {
				t.Fatalf("pusher: %v", err)
			}
			if srvErr != nil {
				t.Fatalf("receiver: %v", srvErr)
			}
			return rec.c2s.Bytes(), rec.s2c.Bytes()
		}},
		{name: "tree_pull_spec", run: func(t *testing.T) ([]byte, []byte) {
			// Tree pull with the tree-extension hello (speculative descent):
			// TREE_ACK plus multi-level answers, pinned so the negotiated
			// exchange cannot drift silently.
			v1, v2 := corpus.GCCProfile(0.05).Generate(9)
			srv, err := NewServer(v2.Map(), core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			cli := NewClient(v1.Map())
			cli.TreeManifest = true
			cli.SpeculativeDescent = true
			return runRecorded(t, srv, cli)
		}},
		{name: "tree_pull_cross", run: func(t *testing.T) ([]byte, []byte) {
			// Tree pull with cross-file matching: a pure rename leaves the
			// WANT, an alternate-basis hint tags a moved-and-edited file.
			v1, _ := corpus.GCCProfile(0.0).Generate(17)
			serverFiles := map[string][]byte{}
			clientFiles := v1.Map()
			paths := make([]string, 0, len(clientFiles))
			for p := range clientFiles {
				paths = append(paths, p)
			}
			sort.Strings(paths)
			for i, p := range paths {
				data := clientFiles[p]
				switch i % 7 {
				case 0:
					serverFiles["moved/"+p] = data // pure rename
				case 1:
					edited := append(append([]byte{}, data...), []byte(" // moved and edited")...)
					serverFiles["edited/"+p] = edited
				default:
					serverFiles[p] = data
				}
			}
			srv, err := NewServer(serverFiles, core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			cli := NewClient(clientFiles)
			cli.TreeManifest = true
			cli.CrossFileMatch = true
			return runRecorded(t, srv, cli)
		}},
		{name: "announce_unversioned", run: func(t *testing.T) ([]byte, []byte) {
			// The version-announcement extension against a server without a
			// store: the extension rides in the hello and is ignored.
			v1, v2 := corpus.EmacsProfile(0.08).Generate(5)
			srv, err := NewServer(v2.Map(), core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			cli := NewClient(v1.Map())
			cli.AnnounceVersion = true
			cli.BaseVersion = 3
			return runRecorded(t, srv, cli)
		}},
	}
}

// TestLegacyWireRecorded pins the exact byte streams of representative
// sessions. The multiplexing extension (hello extension 2) must leave every
// session that does not negotiate it byte-identical; any diff here is a wire
// compatibility break.
func TestLegacyWireRecorded(t *testing.T) {
	for _, sc := range legacyScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			c2s, s2c := sc.run(t)
			got := encodeStreams(c2s, s2c)
			path := filepath.Join("testdata", fmt.Sprintf("legacy_%s.bin", sc.name))
			if *updateGoldens {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden %s (run go test -run TestLegacyWireRecorded -update ./internal/collection): %v", path, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("recorded wire stream for %s diverged from golden (%d bytes vs %d): "+
					"non-extension sessions must stay byte-identical", sc.name, len(got), len(want))
			}
		})
	}
}

// TestLegacyWireDeterministic guards the goldens themselves: two runs of the
// same scenario must produce identical bytes, otherwise the recorded-stream
// comparison would be meaningless.
func TestLegacyWireDeterministic(t *testing.T) {
	sc := legacyScenarios()[0]
	a1, b1 := sc.run(t)
	a2, b2 := sc.run(t)
	if !bytes.Equal(a1, a2) || !bytes.Equal(b1, b2) {
		t.Fatal("legacy session transcript is nondeterministic")
	}
}
