package collection

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"msync/internal/core"
	"msync/internal/corpus"
	"msync/internal/obs"
	"msync/internal/pool"
	"msync/internal/stats"
	"msync/internal/transport"
)

func TestMuxPartition(t *testing.T) {
	mk := func(sizes ...int) []syncFile {
		out := make([]syncFile, len(sizes))
		for i, n := range sizes {
			out[i] = syncFile{data: make([]byte, n)}
		}
		return out
	}
	if got := muxPartition(nil, 8); got != nil {
		t.Fatalf("no files: got %v", got)
	}
	if got := muxPartition(mk(10, 10), 0); got != nil {
		t.Fatalf("width 0: got %v", got)
	}

	check := func(name string, files []syncFile, width, wantStreams int) []int {
		t.Helper()
		counts := muxPartition(files, width)
		if len(counts) != wantStreams {
			t.Fatalf("%s: %d streams, want %d", name, len(counts), wantStreams)
		}
		sum := 0
		for k, c := range counts {
			if c < 1 {
				t.Fatalf("%s: stream %d got %d files", name, k, c)
			}
			sum += c
		}
		if sum != len(files) {
			t.Fatalf("%s: partition covers %d of %d files", name, sum, len(files))
		}
		return counts
	}

	even := make([]int, 10)
	for i := range even {
		even[i] = 100
	}
	counts := check("even", mk(even...), 4, 4)
	for k, c := range counts {
		if c < 2 || c > 3 {
			t.Fatalf("even: stream %d got %d files, want 2-3: %v", k, c, counts)
		}
	}
	check("width over files", mk(1, 2, 3), 16, 3)

	many := make([]int, 300)
	for i := range many {
		many[i] = 10
	}
	check("session cap", mk(many...), 200, muxSessionCap)

	// One dominating file must not drag small files into its stream.
	skew := append([]int{1 << 20}, make([]int, 9)...)
	for i := 1; i < len(skew); i++ {
		skew[i] = 1
	}
	counts = check("skew", mk(skew...), 4, 4)
	if counts[0] != 1 {
		t.Fatalf("skew: huge file shares stream 0 with %d others: %v", counts[0]-1, counts)
	}
}

// muxSession runs one sync over a pipe with both sides opted in to `width`
// multiplexed streams and `workers`-wide parallelism; tune may adjust either
// side before the session starts.
func muxSession(t *testing.T, serverFiles, clientFiles map[string][]byte, cfg core.Config, width, workers int, tune func(*Server, *Client)) (*Result, *stats.Costs) {
	t.Helper()
	cfg.Workers = workers
	srv, err := NewServer(serverFiles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.MuxStreams = width
	cli := NewClient(clientFiles)
	cli.MuxStreams = width
	cli.Workers = workers
	if tune != nil {
		tune(srv, cli)
	}
	a, b := transport.Pipe()
	var serverCosts *stats.Costs
	var serverErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		serverCosts, serverErr = srv.Serve(a)
	}()
	res, err := cli.Sync(b)
	b.Close()
	wg.Wait()
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	if serverErr != nil {
		t.Fatalf("server: %v", serverErr)
	}
	return res, serverCosts
}

// streamSpans counts the per-stream summary spans a ring tracer captured.
func streamSpans(r *obs.Ring) int {
	n := 0
	for _, e := range r.Events() {
		if e.Phase == obs.PhaseStream {
			n++
		}
	}
	return n
}

// TestMuxMatrixDeterminism: multiplexed sessions converge at every stream
// width, both sides account identical costs, and for a fixed width the wire
// costs are bit-identical for every worker count — parallelism is purely an
// execution knob under multiplexing too.
func TestMuxMatrixDeterminism(t *testing.T) {
	pool.SetParallelism(8)
	defer pool.SetParallelism(0)
	v1, v2 := corpus.EmacsProfile(0.06).Generate(11)
	want := v2.Map()
	for _, width := range []int{1, 4, 16} {
		var base *stats.Costs
		for _, workers := range []int{1, 8} {
			ring := obs.NewRing(8192)
			res, serverCosts := muxSession(t, v2.Map(), v1.Map(), core.DefaultConfig(), width, workers,
				func(s *Server, c *Client) { s.Tracer = ring })
			if err := VerifyAgainst(res.Files, want); err != nil {
				t.Fatalf("width=%d workers=%d: %v", width, workers, err)
			}
			if streamSpans(ring) == 0 {
				t.Fatalf("width=%d workers=%d: no stream spans — mux path not taken", width, workers)
			}
			if res.Costs.Total() != serverCosts.Total() {
				t.Fatalf("width=%d workers=%d: client total %d != server total %d",
					width, workers, res.Costs.Total(), serverCosts.Total())
			}
			for _, d := range []stats.Direction{stats.C2S, stats.S2C} {
				if res.Costs.DirTotal(d) != serverCosts.DirTotal(d) {
					t.Fatalf("width=%d workers=%d: direction %v disagrees: %d vs %d",
						width, workers, d, res.Costs.DirTotal(d), serverCosts.DirTotal(d))
				}
			}
			if res.Costs.Roundtrips != serverCosts.Roundtrips {
				t.Fatalf("width=%d workers=%d: roundtrips disagree: %d vs %d",
					width, workers, res.Costs.Roundtrips, serverCosts.Roundtrips)
			}
			if base == nil {
				base = serverCosts
				continue
			}
			if serverCosts.Total() != base.Total() ||
				serverCosts.DirTotal(stats.C2S) != base.DirTotal(stats.C2S) ||
				serverCosts.DirTotal(stats.S2C) != base.DirTotal(stats.S2C) ||
				serverCosts.Roundtrips != base.Roundtrips {
				t.Fatalf("width=%d: workers=%d changed the wire: total %d/%d roundtrips %d/%d",
					width, workers, serverCosts.Total(), base.Total(),
					serverCosts.Roundtrips, base.Roundtrips)
			}
		}
	}
}

// TestMuxSpansSumToCosts: with per-stream cost accounting running
// concurrently, the emitted spans of a multiplexed session still sum exactly
// to the session's Costs wire totals on both sides, and the per-stream spans
// carry their 1-based stream ids. Run under -race this also pins down that
// the concurrent handlers never share an accumulator.
func TestMuxSpansSumToCosts(t *testing.T) {
	pool.SetParallelism(8)
	defer pool.SetParallelism(0)
	v1, v2 := corpus.GCCProfile(0.05).Generate(8)
	srvRing := obs.NewRing(8192)
	cliRing := obs.NewRing(8192)
	res, serverCosts := muxSession(t, v2.Map(), v1.Map(), core.DefaultConfig(), 8, 8,
		func(s *Server, c *Client) {
			s.Tracer = srvRing
			c.Tracer = cliRing
		})
	if err := VerifyAgainst(res.Files, v2.Map()); err != nil {
		t.Fatal(err)
	}
	for _, side := range []struct {
		name  string
		ring  *obs.Ring
		costs *stats.Costs
	}{
		{"server", srvRing, serverCosts},
		{"client", cliRing, res.Costs},
	} {
		var up, down int64
		streams := 0
		for _, e := range side.ring.Events() {
			if e.Phase == obs.PhaseSession || e.Phase == obs.PhaseCoreRound {
				continue
			}
			up += e.BytesUp
			down += e.BytesDown
			if e.Phase == obs.PhaseStream {
				streams++
				if e.Stream < 1 {
					t.Fatalf("%s: stream span without stream id: %+v", side.name, e)
				}
			} else if e.Stream != 0 {
				t.Fatalf("%s: non-stream span tagged with stream %d", side.name, e.Stream)
			}
		}
		if streams == 0 {
			t.Fatalf("%s: no stream spans emitted", side.name)
		}
		if up != side.costs.DirTotal(stats.C2S) {
			t.Fatalf("%s: span bytes up %d != costs C2S %d", side.name, up, side.costs.DirTotal(stats.C2S))
		}
		if down != side.costs.DirTotal(stats.S2C) {
			t.Fatalf("%s: span bytes down %d != costs S2C %d", side.name, down, side.costs.DirTotal(stats.S2C))
		}
	}
}

// tinyTrees builds n small-but-mappable changed files: the corpus for the
// round-batching and metrics assertions.
func tinyTrees(n int) (v1, v2 map[string][]byte) {
	rng := rand.New(rand.NewSource(42))
	v1 = make(map[string][]byte, n)
	v2 = make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("dir/f%03d.txt", i)
		old := corpus.SourceText(rng, 3000+rng.Intn(2000))
		edited := append(append([]byte{}, old[:500]...), old[700:]...)
		edited = append(edited, corpus.SourceText(rng, 200)...)
		v1[path] = old
		v2[path] = edited
	}
	return v1, v2
}

// TestMuxMetrics: many tiny files across streams batch their rounds into
// shared cycles (the batched-rounds counter moves) and the active-streams
// gauge returns to zero once the session closed every stream.
func TestMuxMetrics(t *testing.T) {
	v1, v2 := tinyTrees(24)
	reg := obs.NewRegistry()
	res, _ := muxSession(t, v2, v1, core.DefaultConfig(), 8, 1,
		func(s *Server, c *Client) { s.Metrics = reg })
	if err := VerifyAgainst(res.Files, v2); err != nil {
		t.Fatal(err)
	}
	if g := reg.Gauge(obs.MetricStreamsActive).Value(); g != 0 {
		t.Fatalf("streams-active gauge = %d after session end", g)
	}
	if c := reg.Counter(obs.MetricRoundsBatched).Value(); c == 0 {
		t.Fatal("no batched rounds counted across 8 streams of tiny files")
	}
}

// muxByteProbe measures the exact wire bytes one side of a clean multiplexed
// session writes, so fault triggers can be planted near the end of the
// session — deep inside the stream phase.
func muxByteProbe(t *testing.T, serverFiles, clientFiles map[string][]byte, width int) (server, client int) {
	t.Helper()
	srv, err := NewServer(serverFiles, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.MuxStreams = width
	cli := NewClient(clientFiles)
	cli.MuxStreams = width
	a, b := transport.Pipe()
	sp := transport.NewFaultConn(a) // no faults armed: pure byte counters
	cp := transport.NewFaultConn(b)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		if _, err := srv.Serve(sp); err != nil {
			t.Errorf("probe server: %v", err)
		}
	}()
	if _, err := cli.Sync(cp); err != nil {
		t.Fatalf("probe client: %v", err)
	}
	b.Close()
	wg.Wait()
	return sp.Written(), cp.Written()
}

// TestMuxSevered: the link dies inside the last flush of the server's stream
// cycles. Both sides must return errors promptly — no hang, no partial
// success — and the serving goroutine must be reaped.
func TestMuxSevered(t *testing.T) {
	v1, v2 := tinyTrees(12)
	serverBytes, _ := muxByteProbe(t, v2, v1, 8)

	srv, err := NewServer(v2, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.MuxStreams = 8
	cli := NewClient(v1)
	cli.MuxStreams = 8
	a, b := transport.Pipe()
	faulty := transport.NewFaultConn(a).SeverAfter(serverBytes - 10)
	srvDone := make(chan error, 1)
	go func() {
		_, err := srv.Serve(faulty)
		srvDone <- err
	}()
	cliDone := make(chan error, 1)
	go func() {
		_, err := cli.Sync(b)
		cliDone <- err
	}()
	for i := 0; i < 2; i++ {
		select {
		case err := <-cliDone:
			if err == nil {
				t.Fatal("client succeeded over a severed multiplexed session")
			}
		case err := <-srvDone:
			if err == nil {
				t.Fatal("server succeeded over a severed multiplexed session")
			}
		case <-time.After(10 * time.Second):
			t.Fatal("severed multiplexed session hung")
		}
	}
}

// TestMuxStalledClient: a client that silently stops sending mid-stream
// (writes dropped inside its final reply cycle) fails the serving session via
// the per-stream round deadlines instead of pinning it forever.
func TestMuxStalledClient(t *testing.T) {
	v1, v2 := tinyTrees(12)
	_, clientBytes := muxByteProbe(t, v2, v1, 8)

	srv, err := NewServer(v2, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.MuxStreams = 8
	srv.RoundTimeout = 150 * time.Millisecond
	cli := NewClient(v1)
	cli.MuxStreams = 8
	a, b := transport.Pipe()
	faulty := transport.NewFaultConn(b).DropAfter(clientBytes - 10)
	srvDone := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := srv.Serve(a)
		a.Close() // reaps the abandoned client
		srvDone <- err
	}()
	cliDone := make(chan error, 1)
	go func() {
		_, err := cli.Sync(faulty)
		cliDone <- err
	}()
	select {
	case err := <-srvDone:
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("want deadline error from the stalled stream, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never noticed the stalled stream")
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("server needed %v to fail the stalled session", el)
	}
	select {
	case <-cliDone:
	case <-time.After(10 * time.Second):
		t.Fatal("client goroutine leaked after the server gave up")
	}
}

// TestMuxJournalInterop: multiplexing and version announcement compose. A
// journal hit bypasses map construction entirely, so the mux request is
// ignored (no MUX_ACK — the session keeps the legacy shape); a journal miss
// falls back to map rounds and multiplexes them.
func TestMuxJournalInterop(t *testing.T) {
	tree1, tree2 := versionedTrees()

	// Hit: announced version is served from the journal; no streams.
	srv := versionedServer(t, tree1, tree2, core.DefaultConfig())
	srv.MuxStreams = 16
	ring := obs.NewRing(1024)
	srv.Tracer = ring
	cli := NewClient(tree1)
	cli.MuxStreams = 16
	cli.AnnounceVersion = true
	cli.BaseVersion = 1
	res, serverCosts := runVersioned(t, srv, cli)
	if serverCosts.JournalHits != 1 || serverCosts.JournalMisses != 0 {
		t.Fatalf("journal hits/misses = %d/%d, want 1/0", serverCosts.JournalHits, serverCosts.JournalMisses)
	}
	if err := VerifyAgainst(res.Files, tree2); err != nil {
		t.Fatal(err)
	}
	if n := streamSpans(ring); n != 0 {
		t.Fatalf("journal hit opened %d mux streams", n)
	}
	if res.Costs.Total() != serverCosts.Total() {
		t.Fatalf("client total %d != server total %d", res.Costs.Total(), serverCosts.Total())
	}

	// Miss: unknown base version falls back to map rounds, multiplexed.
	srv = versionedServer(t, tree1, tree2, core.DefaultConfig())
	srv.MuxStreams = 16
	ring = obs.NewRing(1024)
	srv.Tracer = ring
	cli = NewClient(tree1)
	cli.MuxStreams = 16
	cli.AnnounceVersion = true
	cli.BaseVersion = 99
	res, serverCosts = runVersioned(t, srv, cli)
	if serverCosts.JournalMisses != 1 {
		t.Fatalf("journal misses = %d, want 1", serverCosts.JournalMisses)
	}
	if err := VerifyAgainst(res.Files, tree2); err != nil {
		t.Fatal(err)
	}
	if n := streamSpans(ring); n == 0 {
		t.Fatal("journal miss did not multiplex the fallback map rounds")
	}
	if res.Costs.Total() != serverCosts.Total() {
		t.Fatalf("client total %d != server total %d", res.Costs.Total(), serverCosts.Total())
	}
}

// TestMuxRefused: a server with multiplexing disabled ignores the request and
// the session runs the legacy lockstep protocol — converged, costs agreed,
// no stream spans.
func TestMuxRefused(t *testing.T) {
	v1, v2 := corpus.EmacsProfile(0.05).Generate(3)
	ring := obs.NewRing(4096)
	res, serverCosts := muxSession(t, v2.Map(), v1.Map(), core.DefaultConfig(), 16, 1,
		func(s *Server, c *Client) {
			s.MuxStreams = 0
			s.Tracer = ring
		})
	if err := VerifyAgainst(res.Files, v2.Map()); err != nil {
		t.Fatal(err)
	}
	if n := streamSpans(ring); n != 0 {
		t.Fatalf("refusing server still opened %d streams", n)
	}
	if res.Costs.Total() != serverCosts.Total() {
		t.Fatalf("client total %d != server total %d", res.Costs.Total(), serverCosts.Total())
	}
	if res.Costs.Roundtrips != serverCosts.Roundtrips {
		t.Fatalf("roundtrips disagree: %d vs %d", res.Costs.Roundtrips, serverCosts.Roundtrips)
	}
}
