package collection

import (
	"sync"
	"testing"

	"msync/internal/core"
	"msync/internal/corpus"
	"msync/internal/stats"
	"msync/internal/transport"
)

// pushSession pushes srcFiles into a replica holding dstFiles.
func pushSession(t *testing.T, srcFiles, dstFiles map[string][]byte, tree bool) (adopted map[string][]byte, pushCosts *stats.Costs) {
	t.Helper()
	replica, err := NewServer(dstFiles, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	replica.AllowPush = true
	var got map[string][]byte
	replica.OnUpdate = func(files map[string][]byte) { got = files }

	pusher, err := NewServer(srcFiles, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pusher.TreeManifest = tree

	a, b := transport.Pipe()
	var wg sync.WaitGroup
	var replicaErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		_, replicaErr = replica.Serve(a)
	}()
	costs, err := pusher.Push(b)
	b.Close()
	wg.Wait()
	if err != nil {
		t.Fatalf("push: %v", err)
	}
	if replicaErr != nil {
		t.Fatalf("replica: %v", replicaErr)
	}
	return got, costs
}

func TestPushEndToEnd(t *testing.T) {
	v1, v2 := corpus.GCCProfile(0.1).Generate(31)
	adopted, costs := pushSession(t, v2.Map(), v1.Map(), false)
	if err := VerifyAgainst(adopted, v2.Map()); err != nil {
		t.Fatal(err)
	}
	if costs.Total() >= int64(v2.TotalBytes()) {
		t.Fatalf("push cost %d not below full size %d", costs.Total(), v2.TotalBytes())
	}
	t.Logf("push: %d bytes for %d-byte corpus", costs.Total(), v2.TotalBytes())
}

func TestPushTreeMode(t *testing.T) {
	v1, v2 := corpus.EmacsProfile(0.06).Generate(8)
	adopted, _ := pushSession(t, v2.Map(), v1.Map(), true)
	if err := VerifyAgainst(adopted, v2.Map()); err != nil {
		t.Fatal(err)
	}
}

func TestPushRejectedWhenDisallowed(t *testing.T) {
	replica, err := NewServer(map[string][]byte{"a": []byte("old")}, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pusher, err := NewServer(map[string][]byte{"a": []byte("new")}, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		replica.Serve(a)
	}()
	_, pushErr := pusher.Push(b)
	b.Close()
	wg.Wait()
	if pushErr == nil {
		t.Fatal("push accepted by a server without AllowPush")
	}
}

// TestPushThenServe: after adopting a push, the server serves the new data.
func TestPushThenServe(t *testing.T) {
	v1, v2 := corpus.GCCProfile(0.05).Generate(77)
	replica, err := NewServer(v1.Map(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	replica.AllowPush = true
	pusher, err := NewServer(v2.Map(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	a, b := transport.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		replica.Serve(a)
	}()
	if _, err := pusher.Push(b); err != nil {
		t.Fatal(err)
	}
	b.Close()
	wg.Wait()

	// Now a fresh puller should receive v2 from the replica.
	c, d := transport.Pipe()
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer c.Close()
		replica.Serve(c)
	}()
	res, err := NewClient(map[string][]byte{}).Sync(d)
	d.Close()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAgainst(res.Files, v2.Map()); err != nil {
		t.Fatal(err)
	}
}
