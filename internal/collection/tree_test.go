package collection

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"msync/internal/core"
	"msync/internal/corpus"
	"msync/internal/stats"
	"msync/internal/transport"
)

// treeSession runs one sync with tree-manifest change detection.
func treeSession(t *testing.T, serverFiles, clientFiles map[string][]byte) (*Result, *stats.Costs) {
	t.Helper()
	srv, err := NewServer(serverFiles, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.Pipe()
	var serverCosts *stats.Costs
	var serverErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		serverCosts, serverErr = srv.Serve(a)
	}()
	cli := NewClient(clientFiles)
	cli.TreeManifest = true
	res, err := cli.Sync(b)
	b.Close()
	wg.Wait()
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	if serverErr != nil {
		t.Fatalf("server: %v", serverErr)
	}
	return res, serverCosts
}

func TestTreeModeEndToEnd(t *testing.T) {
	v1, v2 := corpus.GCCProfile(0.15).Generate(99)
	res, serverCosts := treeSession(t, v2.Map(), v1.Map())
	if err := VerifyAgainst(res.Files, v2.Map()); err != nil {
		t.Fatal(err)
	}
	if res.Costs.Total() != serverCosts.Total() {
		t.Fatalf("cost disagreement: %d vs %d", res.Costs.Total(), serverCosts.Total())
	}
}

func TestTreeModeNewAndDeleted(t *testing.T) {
	serverFiles := map[string][]byte{
		"keep":   bytes.Repeat([]byte("same "), 200),
		"new":    bytes.Repeat([]byte("fresh "), 300),
		"change": bytes.Repeat([]byte("v2 data "), 400),
	}
	clientFiles := map[string][]byte{
		"keep":   serverFiles["keep"],
		"gone":   []byte("deleted on server"),
		"change": bytes.Repeat([]byte("v1 data "), 400),
	}
	res, _ := treeSession(t, serverFiles, clientFiles)
	if err := VerifyAgainst(res.Files, serverFiles); err != nil {
		t.Fatal(err)
	}
}

// TestTreeModeSublinearControl: with few changes in a large collection, the
// tree handshake must cost far less than the flat manifest.
func TestTreeModeSublinearControl(t *testing.T) {
	files := map[string][]byte{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1500; i++ {
		files[fmt.Sprintf("f/%04d", i)] = corpus.SourceText(rng, 300)
	}
	serverFiles := make(map[string][]byte, len(files))
	for k, v := range files {
		serverFiles[k] = v
	}
	serverFiles["f/0042"] = corpus.SourceText(rng, 3000)
	serverFiles["f/0907"] = corpus.SourceText(rng, 3000)

	_, manifestCosts := sessionWithMode(t, serverFiles, files, false)
	_, treeCosts := sessionWithMode(t, serverFiles, files, true)

	mc := manifestCosts.PhaseTotal(stats.PhaseControl)
	tc := treeCosts.PhaseTotal(stats.PhaseControl)
	if tc*4 > mc {
		t.Fatalf("tree control bytes %d not clearly below manifest %d", tc, mc)
	}
	t.Logf("control bytes: manifest %d, tree %d (%.1fx better)", mc, tc, float64(mc)/float64(tc))
}

func sessionWithMode(t *testing.T, serverFiles, clientFiles map[string][]byte, tree bool) (*Result, *stats.Costs) {
	t.Helper()
	srv, err := NewServer(serverFiles, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.Pipe()
	var wg sync.WaitGroup
	var serverCosts *stats.Costs
	var serverErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		serverCosts, serverErr = srv.Serve(a)
	}()
	cli := NewClient(clientFiles)
	cli.TreeManifest = tree
	res, err := cli.Sync(b)
	b.Close()
	wg.Wait()
	if err != nil || serverErr != nil {
		t.Fatalf("client=%v server=%v", err, serverErr)
	}
	if err := VerifyAgainst(res.Files, serverFiles); err != nil {
		t.Fatal(err)
	}
	return res, serverCosts
}

func TestTreeModeIdenticalCollections(t *testing.T) {
	v1, _ := corpus.GCCProfile(0.1).Generate(7)
	res, _ := treeSession(t, v1.Map(), v1.Map())
	if err := VerifyAgainst(res.Files, v1.Map()); err != nil {
		t.Fatal(err)
	}
	// Root digests match: the whole exchange is a few dozen bytes.
	if res.Costs.Total() > 200 {
		t.Fatalf("identical collections cost %d bytes in tree mode", res.Costs.Total())
	}
	t.Logf("identical collections: %d bytes total", res.Costs.Total())
}

func TestTreeModeEmptyClient(t *testing.T) {
	v1, _ := corpus.GCCProfile(0.05).Generate(13)
	res, _ := treeSession(t, v1.Map(), map[string][]byte{})
	if err := VerifyAgainst(res.Files, v1.Map()); err != nil {
		t.Fatal(err)
	}
}
