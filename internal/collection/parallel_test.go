package collection

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"msync/internal/core"
	"msync/internal/corpus"
	"msync/internal/stats"
	"msync/internal/transport"
)

// recordingConn taps an io.ReadWriter, capturing both directions so whole
// sessions can be compared byte for byte across worker counts.
type recordingConn struct {
	inner io.ReadWriter
	rd    bytes.Buffer
	wr    bytes.Buffer
}

func (c *recordingConn) Read(p []byte) (int, error) {
	n, err := c.inner.Read(p)
	c.rd.Write(p[:n])
	return n, err
}

func (c *recordingConn) Write(p []byte) (int, error) {
	c.wr.Write(p)
	return c.inner.Write(p)
}

// parallelSession runs one full sync with both endpoints at the given worker
// count, returning the client's byte streams and both results.
func parallelSession(t *testing.T, serverFiles, clientFiles map[string][]byte, cfg core.Config, workers int) (rd, wr []byte, res *Result, serverCosts *stats.Costs) {
	t.Helper()
	cfg.Workers = workers
	srv, err := NewServer(serverFiles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.Pipe()
	var serverErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		serverCosts, serverErr = srv.Serve(a)
	}()
	cli := NewClient(clientFiles)
	cli.Workers = workers
	rec := &recordingConn{inner: b}
	res, err = cli.Sync(rec)
	b.Close()
	wg.Wait()
	if err != nil {
		t.Fatalf("client (workers=%d): %v", workers, err)
	}
	if serverErr != nil {
		t.Fatalf("server (workers=%d): %v", workers, serverErr)
	}
	return rec.rd.Bytes(), rec.wr.Bytes(), res, serverCosts
}

// TestCollectionWireDeterminism runs whole collection sessions at Workers 1,
// 2 and 8 and asserts that both directions of the connection carry exactly
// the same bytes, and that every cost counter matches — the collection-level
// face of the determinism invariant.
func TestCollectionWireDeterminism(t *testing.T) {
	v1, v2 := corpus.GCCProfile(0.12).Generate(11)
	clientFiles, serverFiles := v1.Map(), v2.Map()
	cfg := core.DefaultConfig()

	refRd, refWr, refRes, refSrv := parallelSession(t, serverFiles, clientFiles, cfg, 1)
	if err := VerifyAgainst(refRes.Files, serverFiles); err != nil {
		t.Fatalf("serial run wrong: %v", err)
	}
	for _, w := range []int{2, 8} {
		rd, wr, res, srv := parallelSession(t, serverFiles, clientFiles, cfg, w)
		if !bytes.Equal(rd, refRd) {
			t.Errorf("workers=%d: server→client stream differs from serial (%d vs %d bytes)", w, len(rd), len(refRd))
		}
		if !bytes.Equal(wr, refWr) {
			t.Errorf("workers=%d: client→server stream differs from serial (%d vs %d bytes)", w, len(wr), len(refWr))
		}
		if *res.Costs != *refRes.Costs {
			t.Errorf("workers=%d: client costs differ:\n%+v\n%+v", w, res.Costs, refRes.Costs)
		}
		if *srv != *refSrv {
			t.Errorf("workers=%d: server costs differ:\n%+v\n%+v", w, srv, refSrv)
		}
		if err := VerifyAgainst(res.Files, serverFiles); err != nil {
			t.Errorf("workers=%d: %v", w, err)
		}
	}
}

// TestCollectionParallelStress runs a larger many-file session at a high
// worker count so the race detector can watch per-file engine fan-out,
// sharded scans and pooled verification under contention (go test -race).
func TestCollectionParallelStress(t *testing.T) {
	v1, v2 := corpus.EmacsProfile(0.25).Generate(29)
	cfg := core.DefaultConfig()
	_, _, res, _ := parallelSession(t, v2.Map(), v1.Map(), cfg, 8)
	if err := VerifyAgainst(res.Files, v2.Map()); err != nil {
		t.Fatal(err)
	}
}
