package bench

import (
	"fmt"
	"math/rand"

	"msync/internal/cdc"
	"msync/internal/collection"
	"msync/internal/core"
	"msync/internal/corpus"
	"msync/internal/gtest"
	"msync/internal/stats"
	"msync/internal/transport"
)

// figMinBlocks is the minimum-block-size sweep of Figures 6.1/6.2.
var figMinBlocks = []int{1024, 512, 256, 128, 64, 32}

// figBasic runs the basic-protocol sweep on one corpus profile.
func figBasic(title string, profile corpus.SourceTreeProfile, opts Options) *Table {
	v1, v2 := corpusPair(profile, opts.Seed)
	pairs, unchanged, total := changedPairs(v1, v2)
	t := &Table{
		Title:   title,
		Columns: costColumns,
		Notes: []string{fmt.Sprintf("%d files, %d changed, %d unchanged, %.1f MB corpus",
			total, len(pairs), unchanged, float64(v2.TotalBytes())/(1<<20))},
	}
	for _, bmin := range figMinBlocks {
		cfg := core.BasicConfig()
		cfg.MinBlockSize = bmin
		if cfg.MaxBlockSize < bmin {
			cfg.MaxBlockSize = bmin
		}
		c := msyncCosts(pairs, cfg)
		t.Rows = append(t.Rows, costRow(fmt.Sprintf("basic bmin=%d", bmin), c))
	}
	t.Rows = append(t.Rows, costRow("rsync default(700)", rsyncCosts(pairs, 700)))
	t.Rows = append(t.Rows, costRow("rsync best-block", rsyncBestCosts(pairs)))
	t.Rows = append(t.Rows, costRow("delta bound (zdelta-sub)", deltaCosts(pairs)))
	return t
}

// Fig61 regenerates Figure 6.1: the basic protocol on the gcc corpus with
// different minimum block sizes, vs rsync and the delta bound.
func Fig61(opts Options) *Table {
	return figBasic("Figure 6.1 — basic protocol vs min block size (gcc)",
		corpus.GCCProfile(opts.Scale), opts)
}

// Fig62 regenerates Figure 6.2: the same on the emacs corpus.
func Fig62(opts Options) *Table {
	return figBasic("Figure 6.2 — basic protocol vs min block size (emacs)",
		corpus.EmacsProfile(opts.Scale), opts)
}

// Fig63 regenerates Figure 6.3: continuation hashes with various minimum
// continuation block sizes; leftmost row is group verification without
// continuation hashes.
func Fig63(opts Options) *Table {
	v1, v2 := corpusPair(corpus.GCCProfile(opts.Scale), opts.Seed)
	pairs, _, _ := changedPairs(v1, v2)
	t := &Table{
		Title:   "Figure 6.3 — continuation hashes (gcc)",
		Columns: costColumns,
	}
	for _, cmin := range []int{0, 64, 32, 16, 8} {
		cfg := core.DefaultConfig()
		cfg.ContMinBlock = cmin
		name := "group verify, no continuation"
		if cmin > 0 {
			name = fmt.Sprintf("continuation down to %d B", cmin)
		}
		t.Rows = append(t.Rows, costRow(name, msyncCosts(pairs, cfg)))
	}
	t.Notes = append(t.Notes,
		"paper: continuation hashes profit down to ~8-16 byte blocks; harvest rate is high")
	return t
}

// Fig64 regenerates Figure 6.4: match-verification strategies.
func Fig64(opts Options) *Table {
	v1, v2 := corpusPair(corpus.GCCProfile(opts.Scale), opts.Seed)
	pairs, _, _ := changedPairs(v1, v2)
	t := &Table{
		Title:   "Figure 6.4 — match verification strategies (gcc)",
		Columns: costColumns,
	}
	strategies := []struct {
		name string
		v    gtest.Config
	}{
		{"trivial (per-candidate)", gtest.TrivialConfig()},
		{"groups, 1 roundtrip", gtest.Config{Batches: 1, GroupSize: 4, TrustedGroupSize: 8, SplitFactor: 2}},
		{"groups, 2 roundtrips", gtest.Config{Batches: 2, GroupSize: 4, TrustedGroupSize: 8, SplitFactor: 2, RetryAlternates: 1}},
		{"groups, 3 roundtrips", gtest.Config{Batches: 3, GroupSize: 6, TrustedGroupSize: 12, SplitFactor: 3, RetryAlternates: 1}},
		{"aggressive groups, 3 rt", gtest.Config{Batches: 3, GroupSize: 16, TrustedGroupSize: 32, SplitFactor: 4, RetryAlternates: 1}},
	}
	for _, s := range strategies {
		cfg := core.DefaultConfig()
		cfg.Verify = s.v
		t.Rows = append(t.Rows, costRow(s.name, msyncCosts(pairs, cfg)))
	}
	t.Notes = append(t.Notes,
		"paper: almost all benefit arrives with one or two verification roundtrips")
	return t
}

// bestConfig is the all-techniques setting used for Table 6.1/6.2.
func bestConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.ContMinBlock = 8
	cfg.Verify = gtest.Config{Batches: 3, GroupSize: 6, TrustedGroupSize: 12, SplitFactor: 3, RetryAlternates: 1}
	return cfg
}

// Table61 regenerates Table 6.1: best results with all techniques on gcc and
// emacs, one column per corpus (total KB).
func Table61(opts Options) *Table {
	t := &Table{
		Title:   "Table 6.1 — best results, all techniques (total KB)",
		Columns: []string{"gcc KB", "emacs KB"},
	}
	profiles := []corpus.SourceTreeProfile{
		corpus.GCCProfile(opts.Scale), corpus.EmacsProfile(opts.Scale),
	}
	methods := []struct {
		name string
		run  func(pairs []pair) stats.Costs
	}{
		{"full transfer (compressed)", fullCosts},
		{"rsync default(700)", func(p []pair) stats.Costs { return rsyncCosts(p, 700) }},
		{"rsync best-block", rsyncBestCosts},
		{"msync basic", func(p []pair) stats.Costs { return msyncCosts(p, core.BasicConfig()) }},
		{"msync all techniques", func(p []pair) stats.Costs { return msyncCosts(p, bestConfig()) }},
		{"cdc dedup (LBFS-style)", func(p []pair) stats.Costs { return cdcCosts(p, cdc.DefaultParams()) }},
		{"pubsig (zsync-style)", pubsigCosts},
		{"vcdiff (RFC 3284)", vcdiffCosts},
		{"delta bound (zdelta-sub)", deltaCosts},
	}
	rows := make([]Row, len(methods))
	for pi, prof := range profiles {
		v1, v2 := corpusPair(prof, opts.Seed)
		pairs, _, _ := changedPairs(v1, v2)
		for mi, m := range methods {
			c := m.run(pairs)
			if pi == 0 {
				rows[mi] = Row{Name: m.name}
			}
			rows[mi].Values = append(rows[mi].Values, stats.KB(c.Total()))
		}
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"paper shape: msync saves ~2-5x over rsync and lands within ~2x of the delta bound")
	return t
}

// Table62 regenerates Table 6.2: cost of updating the web collection for
// various update frequencies, using the real collection protocol (manifest
// fingerprints detect unchanged pages).
func Table62(opts Options) *Table {
	wc := corpus.NewWebCollection(corpus.DefaultWebProfile(opts.Scale), opts.Seed)
	t := &Table{
		Title:   "Table 6.2 — web collection update cost vs sync interval (KB per sync)",
		Columns: []string{"full KB", "rsync KB", "msync KB", "ms-basic KB", "delta KB", "changed"},
	}
	base := wc.Version(0)
	for _, days := range []int{1, 2, 5, 10} {
		newer := wc.Version(days)
		pairs, _, _ := changedPairs(base, newer)

		full := fullCosts(pairs)
		rs := rsyncCosts(pairs, 700)
		dl := deltaCosts(pairs)
		ms := collectionCosts(base, newer, bestConfig())
		msBasic := collectionCosts(base, newer, core.BasicConfig())

		t.Rows = append(t.Rows, Row{
			Name: fmt.Sprintf("sync every %d night(s)", days),
			Values: []float64{
				stats.KB(full.Total()), stats.KB(rs.Total()),
				stats.KB(ms.Total()), stats.KB(msBasic.Total()),
				stats.KB(dl.Total()),
				float64(len(pairs)),
			},
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d pages; msync columns use the full collection protocol incl. manifest overhead", wc.Pages()),
		"paper shape: msync ~2x better than rsync; simpler few-roundtrip settings stay close to optimal",
		"paper shape: a few MB suffice to maintain 10,000 pages over DSL")
	return t
}

// collectionCosts runs a real collection session over an in-memory pipe.
func collectionCosts(oldTree, newTree *corpus.Tree, cfg core.Config) stats.Costs {
	srv, err := collection.NewServer(newTree.Map(), cfg)
	if err != nil {
		panic(err)
	}
	a, b := transport.Pipe()
	done := make(chan *stats.Costs, 1)
	go func() {
		defer a.Close()
		costs, err := srv.Serve(a)
		if err != nil {
			panic(fmt.Sprintf("bench: collection server: %v", err))
		}
		done <- costs
	}()
	res, err := collection.NewClient(oldTree.Map()).Sync(b)
	b.Close()
	if err != nil {
		panic(fmt.Sprintf("bench: collection client: %v", err))
	}
	<-done
	return *res.Costs
}

// AblateCDC sweeps the content-defined-chunking baseline's average chunk
// size, showing where single-roundtrip chunk dedup lands relative to
// msync's multi-round protocol (extension; the LBFS/value-based-caching
// related-work line, paper §4).
func AblateCDC(opts Options) *Table {
	v1, v2 := corpusPair(corpus.GCCProfile(opts.Scale), opts.Seed)
	pairs, _, _ := changedPairs(v1, v2)
	t := &Table{
		Title:   "Ablation — CDC chunk-dedup baseline vs msync (gcc)",
		Columns: costColumns,
	}
	for _, avg := range []int{512, 1024, 2048, 4096} {
		p := cdc.Params{Min: avg / 4, Avg: avg, Max: avg * 8}
		t.Rows = append(t.Rows, costRow(fmt.Sprintf("cdc avg=%d", avg), cdcCosts(pairs, p)))
	}
	t.Rows = append(t.Rows, costRow("msync all-tech", msyncCosts(pairs, bestConfig())))
	t.Rows = append(t.Rows, costRow("rsync default(700)", rsyncCosts(pairs, 700)))
	t.Notes = append(t.Notes,
		"chunk dedup is one roundtrip but cannot exploit sub-chunk similarity;",
		"msync's recursion reaches much finer granularity for fewer bits")
	return t
}

// AblateManifest compares change-detection costs: the flat fingerprint
// manifest vs merkle-tree reconciliation, at varying change fractions
// (extension; the paper's related-work line on identifying changed files).
func AblateManifest(opts Options) *Table {
	t := &Table{
		Title:   "Ablation — change detection: flat manifest vs merkle tree",
		Columns: []string{"manifest KB", "tree KB", "changed", "files"},
	}
	nFiles := maxI(64, int(800*opts.Scale))
	rng := rand.New(rand.NewSource(opts.Seed))
	base := make(map[string][]byte, nFiles)
	for i := 0; i < nFiles; i++ {
		base[fmt.Sprintf("site/d%02d/f%05d.html", i%37, i)] = corpus.SourceText(rng, 400+rng.Intn(800))
	}
	for _, changed := range []int{1, 8, nFiles / 16, nFiles / 4} {
		newer := make(map[string][]byte, nFiles)
		for k, v := range base {
			newer[k] = v
		}
		i := 0
		for k := range newer {
			if i >= changed {
				break
			}
			newer[k] = corpus.SourceText(rng, 400+rng.Intn(800))
			i++
		}
		flat := collectionCostsMaps(base, newer, core.DefaultConfig(), false)
		tree := collectionCostsMaps(base, newer, core.DefaultConfig(), true)
		t.Rows = append(t.Rows, Row{
			Name: fmt.Sprintf("%d of %d files changed", changed, nFiles),
			Values: []float64{
				stats.KB(flat.PhaseTotal(stats.PhaseControl)),
				stats.KB(tree.PhaseTotal(stats.PhaseControl)),
				float64(changed), float64(nFiles),
			},
		})
	}
	t.Notes = append(t.Notes,
		"control-phase bytes only; the tree costs O(changed*log n), the manifest O(n)")
	return t
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// collectionCostsMaps runs a real session over a pipe from raw maps.
func collectionCostsMaps(oldFiles, newFiles map[string][]byte, cfg core.Config, tree bool) stats.Costs {
	srv, err := collection.NewServer(newFiles, cfg)
	if err != nil {
		panic(err)
	}
	a, b := transport.Pipe()
	go func() {
		defer a.Close()
		if _, err := srv.Serve(a); err != nil {
			panic(fmt.Sprintf("bench: collection server: %v", err))
		}
	}()
	cli := collection.NewClient(oldFiles)
	cli.TreeManifest = tree
	res, err := cli.Sync(b)
	b.Close()
	if err != nil {
		panic(fmt.Sprintf("bench: collection client: %v", err))
	}
	return *res.Costs
}

// AblateDecomposable isolates the decomposable-hash saving on map-phase
// server→client traffic (DESIGN.md ablation A1).
func AblateDecomposable(opts Options) *Table {
	v1, v2 := corpusPair(corpus.GCCProfile(opts.Scale), opts.Seed)
	pairs, _, _ := changedPairs(v1, v2)
	t := &Table{Title: "Ablation — decomposable hashes (gcc)", Columns: costColumns}
	for _, on := range []bool{true, false} {
		cfg := core.BasicConfig()
		cfg.Decomposable = on
		name := "decomposable on"
		if !on {
			name = "decomposable off"
		}
		t.Rows = append(t.Rows, costRow(name, msyncCosts(pairs, cfg)))
	}
	t.Notes = append(t.Notes, "paper: without decomposability, map-phase s2c roughly doubles")
	return t
}

// AblateLocal checks the paper's negative result for local hashes (A2).
func AblateLocal(opts Options) *Table {
	v1, v2 := corpusPair(corpus.GCCProfile(opts.Scale), opts.Seed)
	pairs, _, _ := changedPairs(v1, v2)
	t := &Table{Title: "Ablation — local hashes (gcc)", Columns: costColumns}
	for _, on := range []bool{false, true} {
		cfg := core.DefaultConfig()
		cfg.EnableLocal = on
		name := "local hashes off"
		if on {
			name = "local hashes on"
		}
		t.Rows = append(t.Rows, costRow(name, msyncCosts(pairs, cfg)))
	}
	t.Notes = append(t.Notes, "paper: local hashes gave no significant improvement")
	return t
}

// AblateHashBits sweeps the global-hash slack, trading false candidates
// against hash volume (A3).
func AblateHashBits(opts Options) *Table {
	v1, v2 := corpusPair(corpus.GCCProfile(opts.Scale), opts.Seed)
	pairs, _, _ := changedPairs(v1, v2)
	t := &Table{
		Title:   "Ablation — weak-hash slack bits (gcc)",
		Columns: []string{"total KB", "candidates", "false", "false%"},
	}
	for _, slack := range []uint{2, 4, 6, 8, 10} {
		cfg := core.DefaultConfig()
		cfg.SlackBits = slack
		c := msyncCosts(pairs, cfg)
		falsePct := 0.0
		if c.CandidatesFound > 0 {
			falsePct = 100 * float64(c.FalseCandidates) / float64(c.CandidatesFound)
		}
		t.Rows = append(t.Rows, Row{
			Name: fmt.Sprintf("slack=%d bits", slack),
			Values: []float64{stats.KB(c.Total()), float64(c.CandidatesFound),
				float64(c.FalseCandidates), falsePct},
		})
	}
	return t
}

// AblateRounds compares the single-roundtrip mode against the multi-round
// protocol (A4, paper §7).
func AblateRounds(opts Options) *Table {
	v1, v2 := corpusPair(corpus.GCCProfile(opts.Scale), opts.Seed)
	pairs, _, _ := changedPairs(v1, v2)
	t := &Table{Title: "Ablation — roundtrips vs bandwidth (gcc)", Columns: costColumns}
	for _, bs := range []int{256, 512, 1024} {
		t.Rows = append(t.Rows, costRow(fmt.Sprintf("one-shot b=%d", bs),
			msyncCosts(pairs, core.OneShotConfig(bs))))
	}
	t.Rows = append(t.Rows, costRow("multi-round basic", msyncCosts(pairs, core.BasicConfig())))
	t.Rows = append(t.Rows, costRow("multi-round all-tech", msyncCosts(pairs, bestConfig())))
	t.Notes = append(t.Notes, "paper §7: with 1-2 roundtrips it is hard to beat rsync by much")
	return t
}

// AblateTwoPhase evaluates the paper's §5.4 two-phase rounds: probes first,
// then globals omitting probed blocks and confirmed-sibling blocks.
func AblateTwoPhase(opts Options) *Table {
	v1, v2 := corpusPair(corpus.GCCProfile(opts.Scale), opts.Seed)
	pairs, _, _ := changedPairs(v1, v2)
	t := &Table{Title: "Ablation — two-phase rounds (gcc)", Columns: costColumns}
	for _, on := range []bool{false, true} {
		cfg := core.DefaultConfig()
		cfg.TwoPhaseRounds = on
		name := "single-phase rounds"
		if on {
			name = "two-phase rounds (§5.4)"
		}
		t.Rows = append(t.Rows, costRow(name, msyncCosts(pairs, cfg)))
	}
	t.Notes = append(t.Notes,
		"paper: first continuation hashes, then global hashes — moderate benefits",
		"fewer global hashes at the price of one extra roundtrip per round")
	return t
}
