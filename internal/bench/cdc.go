package bench

import (
	"encoding/json"
	"fmt"

	"msync/internal/collection"
	"msync/internal/core"
	"msync/internal/corpus"
	"msync/internal/stats"
	"msync/internal/transport"
)

// The bench-cdc matrix: halving vs CDC map construction over the adversarial
// boundary-shift corpora (internal/corpus/adversarial.go, DESIGN.md §16).
// Every arm runs a full collection session and is convergence-verified; the
// per-scenario winner is what advisor.Recommend's shift detection encodes.

// cdcScenario names one adversarial corpus and its generator.
type cdcScenario struct {
	name     string
	generate func(scale float64, seed int64) (v1, v2 *corpus.Tree)
}

// cdcScenarios are the matrix rows. logs-heavy and dbdump are the acceptance
// scenarios (CDC must beat halving on total wire bytes); vmimage and
// binrelease bound the mode's behavior on block-aligned and section-shifted
// binaries.
var cdcScenarios = []cdcScenario{
	{"logs-heavy", func(s float64, seed int64) (*corpus.Tree, *corpus.Tree) {
		return corpus.DefaultHeavyLogProfile(s).Generate(seed)
	}},
	{"dbdump", func(s float64, seed int64) (*corpus.Tree, *corpus.Tree) {
		return corpus.DefaultDBDumpProfile(s).Generate(seed)
	}},
	{"vmimage", func(s float64, seed int64) (*corpus.Tree, *corpus.Tree) {
		return corpus.DefaultVMImageProfile(s).Generate(seed)
	}},
	{"binrelease", func(s float64, seed int64) (*corpus.Tree, *corpus.Tree) {
		return corpus.DefaultBinaryReleaseProfile(s).Generate(seed)
	}},
}

// cdcArm is one (scenario, mode) measurement.
type cdcArm struct {
	Mode      string `json:"mode"` // halving | cdc
	WireBytes int64  `json:"wire_bytes"`
	Roundtrip int    `json:"roundtrips"`
	FilesCDC  int    `json:"files_cdc,omitempty"`
	CDCChunks int64  `json:"cdc_chunks,omitempty"`
	// Converged reports that the reconstructed collection matched version 2
	// byte for byte — checked for every arm, not sampled.
	Converged bool `json:"converged"`
}

// CDCScenarioReport is one matrix row: both arms plus the verdict.
type CDCScenarioReport struct {
	Scenario   string   `json:"scenario"`
	Files      int      `json:"files"`
	TotalBytes int      `json:"total_bytes"`
	Arms       []cdcArm `json:"arms"`
	// Winner is the mode with fewer total wire bytes.
	Winner string `json:"winner"`
	// CDCRatio is cdc wire bytes / halving wire bytes (< 1 means CDC won).
	CDCRatio float64 `json:"cdc_ratio"`
}

// CDCReport is the JSON artifact (BENCH_cdc.json) of the halving-vs-CDC
// map-construction matrix.
type CDCReport struct {
	Experiment string              `json:"experiment"`
	Scale      float64             `json:"scale"`
	Seed       int64               `json:"seed"`
	Scenarios  []CDCScenarioReport `json:"scenarios"`
	Note       string              `json:"note"`
}

// runCDCArm syncs v1 toward v2 over a pipe in the given mode and returns the
// measured arm. The convergence check compares the full reconstructed
// collection, so a mode that corrupted even one byte cannot win a row.
func runCDCArm(v1, v2 *corpus.Tree, mode core.MapMode) (cdcArm, error) {
	arm := cdcArm{Mode: mode.String()}
	srv, err := collection.NewServer(v2.Map(), core.DefaultConfig())
	if err != nil {
		return arm, err
	}
	cli := collection.NewClient(v1.Map())
	cli.MapMode = mode

	a, b := transport.Pipe()
	done := make(chan *stats.Costs, 1)
	errc := make(chan error, 1)
	go func() {
		defer a.Close()
		costs, err := srv.Serve(a)
		if err != nil {
			errc <- err
			return
		}
		done <- costs
	}()
	res, err := cli.Sync(b)
	b.Close()
	if err != nil {
		return arm, fmt.Errorf("bench: cdc client (%s): %w", mode, err)
	}
	select {
	case <-done:
	case err := <-errc:
		return arm, fmt.Errorf("bench: cdc server (%s): %w", mode, err)
	}

	arm.WireBytes = res.Costs.Total()
	arm.Roundtrip = res.Costs.Roundtrips
	arm.FilesCDC = res.Costs.FilesCDC
	arm.CDCChunks = res.Costs.CDCChunks
	arm.Converged = collection.VerifyAgainst(res.Files, v2.Map()) == nil
	return arm, nil
}

// measureCDC runs the full matrix.
func measureCDC(opts Options) (*CDCReport, error) {
	rep := &CDCReport{
		Experiment: "cdc.map",
		Scale:      opts.Scale,
		Seed:       opts.Seed,
		Note: "halving vs CDC map construction per adversarial scenario; wire bytes are whole-session " +
			"totals (both directions, framing included) and every arm is convergence-verified",
	}
	for _, sc := range cdcScenarios {
		v1, v2 := sc.generate(opts.Scale, opts.Seed)
		row := CDCScenarioReport{
			Scenario:   sc.name,
			Files:      len(v2.Files),
			TotalBytes: v2.TotalBytes(),
		}
		var halving, cdcRun cdcArm
		var err error
		if halving, err = runCDCArm(v1, v2, core.MapHalving); err != nil {
			return nil, err
		}
		if cdcRun, err = runCDCArm(v1, v2, core.MapCDC); err != nil {
			return nil, err
		}
		row.Arms = []cdcArm{halving, cdcRun}
		if halving.WireBytes > 0 {
			row.CDCRatio = float64(cdcRun.WireBytes) / float64(halving.WireBytes)
		}
		row.Winner = core.MapHalving.String()
		if cdcRun.WireBytes < halving.WireBytes {
			row.Winner = core.MapCDC.String()
		}
		if !halving.Converged || !cdcRun.Converged {
			return nil, fmt.Errorf("bench: cdc scenario %s: arm failed convergence (halving=%v cdc=%v)",
				sc.name, halving.Converged, cdcRun.Converged)
		}
		rep.Scenarios = append(rep.Scenarios, row)
	}
	return rep, nil
}

// CDCJSON runs the halving-vs-CDC matrix and renders BENCH_cdc.json.
func CDCJSON(opts Options) ([]byte, error) {
	rep, err := measureCDC(opts)
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// CDCMap is the table view of the matrix for the msbench sweep.
func CDCMap(opts Options) *Table {
	rep, err := measureCDC(opts)
	if err != nil {
		panic(fmt.Sprintf("bench: cdc map: %v", err))
	}
	t := &Table{
		Title:   "Extension — CDC map construction vs recursive halving (adversarial corpora)",
		Columns: []string{"halving KB", "cdc KB", "cdc/halving", "cdc chunks", "converged"},
	}
	for _, row := range rep.Scenarios {
		conv := 0.0
		if row.Arms[0].Converged && row.Arms[1].Converged {
			conv = 1
		}
		t.Rows = append(t.Rows, Row{
			Name: row.Scenario,
			Values: []float64{
				float64(row.Arms[0].WireBytes) / 1024,
				float64(row.Arms[1].WireBytes) / 1024,
				row.CDCRatio,
				float64(row.Arms[1].CDCChunks),
				conv,
			},
		})
	}
	t.Notes = append(t.Notes,
		"wire bytes are whole-session totals, both directions, framing included",
		"cdc/halving < 1 means content-defined boundaries beat the power-of-two grid")
	return t
}
