package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"msync/internal/collection"
	"msync/internal/core"
	"msync/internal/corpus"
	"msync/internal/stats"
	"msync/internal/transport"
)

// Reference shape of the multiplexing experiment at Scale 1.0: a wide
// collection of small files where per-session latency dominates — the
// workload stream multiplexing (and before it, the paper's shared-round
// amortization) is built for. Two thirds of the files carry light edits.
const (
	muxFileCount = 10_000
	muxFileBytes = 2 << 10
)

// muxWidths is the sweep of granted stream widths.
var muxWidths = []int{4, 16, 64}

// muxRTTs is the sweep of modeled link latencies.
var muxRTTs = []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}

// muxLinkBps is the modeled symmetric bandwidth (10 Mbit/s each way): fast
// enough that latency, not bytes, separates the arms.
const muxLinkBps = 1_250_000

// muxCorpus builds the experiment's tree pair: n small text files, one third
// unchanged, the rest carrying localized edit bursts.
func muxCorpus(opts Options) (v1, v2 map[string][]byte) {
	rng := rand.New(rand.NewSource(opts.Seed))
	n := int(float64(muxFileCount) * opts.Scale)
	if n < 24 {
		n = 24
	}
	em := corpus.EditModel{BurstsPer32KB: 4, BurstEdits: 3, EditSize: 40, BurstSpread: 200}
	v1 = make(map[string][]byte, n)
	v2 = make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("dir%03d/f%05d.txt", i%100, i)
		old := corpus.SourceText(rng, muxFileBytes+rng.Intn(muxFileBytes))
		v1[path] = old
		if i%3 == 0 {
			v2[path] = old
		} else {
			v2[path] = em.Apply(rng, old)
		}
	}
	return v1, v2
}

// runMuxSession runs one collection session at the given stream width (0 =
// legacy lockstep), verifies convergence, and returns the session costs
// (identical on both sides — asserted) and its in-process wall-clock.
func runMuxSession(serverTree, clientTree map[string][]byte, width int, cfg core.Config) (*stats.Costs, float64, error) {
	srv, err := collection.NewServer(serverTree, cfg)
	if err != nil {
		return nil, 0, err
	}
	srv.MuxStreams = width
	cli := collection.NewClient(clientTree)
	cli.MuxStreams = width

	start := time.Now()
	a, b := transport.Pipe()
	done := make(chan *stats.Costs, 1)
	errc := make(chan error, 1)
	go func() {
		defer a.Close()
		costs, err := srv.Serve(a)
		if err != nil {
			errc <- err
			return
		}
		done <- costs
	}()
	res, err := cli.Sync(b)
	b.Close()
	if err != nil {
		return nil, 0, fmt.Errorf("bench: mux client: %w", err)
	}
	var srvCosts *stats.Costs
	select {
	case srvCosts = <-done:
	case err := <-errc:
		return nil, 0, fmt.Errorf("bench: mux server: %w", err)
	}
	secs := time.Since(start).Seconds()
	if err := collection.VerifyAgainst(res.Files, serverTree); err != nil {
		return nil, 0, fmt.Errorf("bench: mux width %d did not converge: %w", width, err)
	}
	if res.Costs.Total() != srvCosts.Total() || res.Costs.Roundtrips != srvCosts.Roundtrips {
		return nil, 0, fmt.Errorf("bench: mux width %d: sides disagree on costs", width)
	}
	return srvCosts, secs, nil
}

// runPerFile models a tool without collection-level sessions: one full
// session per changed file, sequentially over the same link. Unchanged files
// are skipped entirely — a charitable baseline (a real per-file tool would
// pay a handshake for them too).
func runPerFile(serverTree, clientTree map[string][]byte, cfg core.Config) (*stats.Costs, float64, int, error) {
	paths := make([]string, 0, len(serverTree))
	for p, data := range serverTree {
		if old, ok := clientTree[p]; !ok || string(old) != string(data) {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	total := &stats.Costs{}
	start := time.Now()
	for _, p := range paths {
		clientFiles := map[string][]byte{}
		if old, ok := clientTree[p]; ok {
			clientFiles[p] = old
		}
		costs, _, err := runMuxSession(map[string][]byte{p: serverTree[p]}, clientFiles, 0, cfg)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("bench: per-file session %q: %w", p, err)
		}
		total.Merge(costs) // Merge sums the byte matrix, roundtrips and counters
	}
	return total, time.Since(start).Seconds(), len(paths), nil
}

// MuxLink is one modeled-link row of a MuxPoint: estimated wall-clock on a
// symmetric 10 Mbit/s link at the given RTT, with speedups against the two
// baselines.
type MuxLink struct {
	RTTMs int     `json:"rtt_ms"`
	Secs  float64 `json:"seconds"`
	// SpeedupVsPerFile compares against sequential per-file sessions (the
	// no-collection-protocol baseline); SpeedupVsLockstep against the legacy
	// shared-round session — the honest number for what multiplexing adds on
	// top of the paper's own amortization.
	SpeedupVsPerFile  float64 `json:"speedup_vs_per_file,omitempty"`
	SpeedupVsLockstep float64 `json:"speedup_vs_lockstep,omitempty"`
}

// MuxPoint is one arm's measurement in the multiplexing report.
type MuxPoint struct {
	// Arm is per_file, lockstep, or mux; Width is the granted stream width
	// for mux arms.
	Arm      string `json:"arm"`
	Width    int    `json:"width,omitempty"`
	Sessions int    `json:"sessions"`
	// CPUSecs is the arm's in-process wall-clock (no modeled link).
	CPUSecs    float64   `json:"cpu_seconds"`
	WireBytes  int64     `json:"wire_bytes"`
	Roundtrips int       `json:"roundtrips"`
	Converged  bool      `json:"converged"`
	Links      []MuxLink `json:"links"`
}

// MuxReport is the JSON artifact (BENCH_mux.json) of the multiplexing
// experiment: per-file sessions versus one lockstep session versus
// multiplexed sessions at several widths over a wide small-file corpus, with
// wall-clock modeled at 50–200 ms RTT.
type MuxReport struct {
	Experiment string     `json:"experiment"`
	Files      int        `json:"files"`
	Changed    int        `json:"changed"`
	TotalBytes int64      `json:"total_bytes"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	LinkBps    int        `json:"link_bytes_per_second"`
	Points     []MuxPoint `json:"points"`
	Note       string     `json:"note"`
}

// measureMux runs every arm once (the protocol is deterministic, so costs —
// the quantity the link model consumes — do not vary across reps) and models
// each on the RTT sweep.
func measureMux(opts Options) (*MuxReport, error) {
	v1, v2 := muxCorpus(opts)
	var total int64
	for _, data := range v2 {
		total += int64(len(data))
	}
	cfg := bestConfig()

	rep := &MuxReport{
		Experiment: "mux.pipeline",
		Files:      len(v2),
		TotalBytes: total,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		LinkBps:    muxLinkBps,
		Note: "wall-clock modeled as bytes/bandwidth + roundtrips*RTT on a symmetric " +
			"10 Mbit/s link; per_file runs one session per changed file sequentially " +
			"(unchanged files charitably skipped); every arm verified converged",
	}

	model := func(c *stats.Costs, baseline func(rtt time.Duration) (perFile, lockstep float64)) []MuxLink {
		links := make([]MuxLink, 0, len(muxRTTs))
		for _, rtt := range muxRTTs {
			l := stats.LinkModel{DownBps: muxLinkBps, UpBps: muxLinkBps, RTT: rtt}
			secs := l.Duration(c).Seconds()
			ml := MuxLink{RTTMs: int(rtt.Milliseconds()), Secs: secs}
			if baseline != nil && secs > 0 {
				pf, ls := baseline(rtt)
				if pf > 0 {
					ml.SpeedupVsPerFile = pf / secs
				}
				if ls > 0 {
					ml.SpeedupVsLockstep = ls / secs
				}
			}
			links = append(links, ml)
		}
		return links
	}

	pfCosts, pfSecs, changed, err := runPerFile(v2, v1, cfg)
	if err != nil {
		return nil, err
	}
	rep.Changed = changed
	rep.Points = append(rep.Points, MuxPoint{
		Arm: "per_file", Sessions: changed, CPUSecs: pfSecs,
		WireBytes: pfCosts.Total(), Roundtrips: pfCosts.Roundtrips,
		Converged: true, Links: model(pfCosts, nil),
	})

	lsCosts, lsSecs, err := runMuxSession(v2, v1, 0, cfg)
	if err != nil {
		return nil, err
	}
	baseline := func(rtt time.Duration) (float64, float64) {
		l := stats.LinkModel{DownBps: muxLinkBps, UpBps: muxLinkBps, RTT: rtt}
		return l.Duration(pfCosts).Seconds(), l.Duration(lsCosts).Seconds()
	}
	rep.Points = append(rep.Points, MuxPoint{
		Arm: "lockstep", Sessions: 1, CPUSecs: lsSecs,
		WireBytes: lsCosts.Total(), Roundtrips: lsCosts.Roundtrips,
		Converged: true, Links: model(lsCosts, func(rtt time.Duration) (float64, float64) {
			pf, _ := baseline(rtt)
			return pf, 0
		}),
	})

	for _, w := range muxWidths {
		costs, secs, err := runMuxSession(v2, v1, w, cfg)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, MuxPoint{
			Arm: "mux", Width: w, Sessions: 1, CPUSecs: secs,
			WireBytes: costs.Total(), Roundtrips: costs.Roundtrips,
			Converged: true, Links: model(costs, baseline),
		})
	}
	return rep, nil
}

// MuxJSON runs the multiplexing experiment and renders BENCH_mux.json.
func MuxJSON(opts Options) ([]byte, error) {
	rep, err := measureMux(opts)
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
