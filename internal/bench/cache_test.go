package bench

import "testing"

// TestMeasureCache runs the repeated-sync experiment at a small scale and
// checks its invariants: every mode produces byte-identical wire traffic,
// the warm run hashes nothing (stat-identity hits answer the whole
// manifest), and cold runs miss then populate.
func TestMeasureCache(t *testing.T) {
	rep, err := measureCache(Options{Scale: 0.13, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]CachePoint{}
	for _, p := range rep.Points {
		byMode[p.Mode] = p
	}
	for _, mode := range []string{"off", "cold", "warm"} {
		p, ok := byMode[mode]
		if !ok {
			t.Fatalf("missing mode %q", mode)
		}
		if !p.WireIdentical {
			t.Errorf("mode %q: wire differs from cache-off run", mode)
		}
	}
	if p := byMode["warm"]; p.BytesHashed != 0 || p.BlockHashes != 0 {
		t.Errorf("warm run hashed %d bytes / %d block hashes, want 0/0", p.BytesHashed, p.BlockHashes)
	}
	if p := byMode["warm"]; p.CacheMisses != 0 || p.CacheHits == 0 {
		t.Errorf("warm run: hits=%d misses=%d, want all hits", p.CacheHits, p.CacheMisses)
	}
	if p := byMode["cold"]; p.CacheMisses == 0 {
		t.Errorf("cold run: misses=%d, want > 0", p.CacheMisses)
	}
	if p := byMode["off"]; p.CacheHits != 0 || p.CacheMisses != 0 {
		t.Errorf("off run recorded cache activity: hits=%d misses=%d", p.CacheHits, p.CacheMisses)
	}
}
