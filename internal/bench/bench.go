// Package bench implements the experiment harness that regenerates every
// table and figure of the paper's evaluation (Section 6), shared by the
// msbench command and the repository's testing.B benchmarks.
//
// Each experiment returns a Table whose rows mirror the paper's artifact;
// see DESIGN.md §3 for the experiment index. Absolute numbers differ from
// the paper (synthetic corpora, our own delta coder — see the substitutions
// table), but the comparative shape is the reproduction target.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"msync/internal/cdc"
	"msync/internal/core"
	"msync/internal/corpus"
	"msync/internal/delta"
	"msync/internal/md4"
	"msync/internal/pubsig"
	"msync/internal/rsync"
	"msync/internal/stats"
	"msync/internal/vcdiff"
)

// Table is one experiment's result in the paper's row/column layout.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
	Notes   []string
}

// Row is one line of a result table.
type Row struct {
	Name   string
	Values []float64
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	fmt.Fprintf(w, "%-34s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(w, "%14s", c)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-34s", r.Name)
		for _, v := range r.Values {
			fmt.Fprintf(w, "%14.1f", v)
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as CSV (title and notes as comment lines), for
// downstream plotting.
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	fmt.Fprint(w, "name")
	for _, c := range t.Columns {
		fmt.Fprintf(w, ",%s", strings.ReplaceAll(c, ",", ";"))
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprint(w, strings.ReplaceAll(r.Name, ",", ";"))
		for _, v := range r.Values {
			fmt.Fprintf(w, ",%.3f", v)
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}

// Get returns the named row's first value (for assertions in tests).
func (t *Table) Get(name string) (float64, bool) {
	for _, r := range t.Rows {
		if r.Name == name {
			if len(r.Values) == 0 {
				return 0, false
			}
			return r.Values[0], true
		}
	}
	return 0, false
}

// pair is one old/new file pair from a corpus.
type pair struct {
	old, cur []byte
}

// changedPairs extracts the file pairs that actually differ between two
// versions (all methods are assumed to skip unchanged files via the 16-byte
// per-file fingerprint; its cost is accounted separately).
func changedPairs(v1, v2 *corpus.Tree) (pairs []pair, unchanged, fingerprinted int) {
	oldM := v1.Map()
	for _, f := range v2.Files {
		fingerprinted++
		old := oldM[f.Path]
		if old != nil && md4.Sum(old) == md4.Sum(f.Data) {
			unchanged++
			continue
		}
		pairs = append(pairs, pair{old, f.Data})
	}
	return pairs, unchanged, fingerprinted
}

// sumCosts runs fn for every pair in parallel and accumulates costs.
func sumCosts(pairs []pair, fn func(p pair) stats.Costs) stats.Costs {
	nw := runtime.GOMAXPROCS(0)
	if nw > len(pairs) {
		nw = len(pairs)
	}
	if nw < 1 {
		nw = 1
	}
	results := make([]stats.Costs, len(pairs))
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = fn(pairs[i])
			}
		}()
	}
	for i := range pairs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	var total stats.Costs
	maxRT := 0
	for i := range results {
		rt := results[i].Roundtrips
		results[i].Roundtrips = 0
		total.Merge(&results[i])
		if rt > maxRT {
			maxRT = rt
		}
	}
	// Files share roundtrips in the collection protocol; the session needs
	// as many as the deepest file.
	total.Roundtrips = maxRT
	return total
}

// msyncCosts sums synchronization costs for every changed pair.
func msyncCosts(pairs []pair, cfg core.Config) stats.Costs {
	return sumCosts(pairs, func(p pair) stats.Costs {
		res, err := core.SyncLocal(p.old, p.cur, cfg)
		if err != nil {
			panic(fmt.Sprintf("bench: sync failed: %v", err))
		}
		return res.Costs
	})
}

// rsyncCosts sums rsync baseline costs.
func rsyncCosts(pairs []pair, blockSize int) stats.Costs {
	return sumCosts(pairs, func(p pair) stats.Costs {
		r := rsync.Sync(p.old, p.cur, blockSize, rsync.DefaultStrongLen)
		var c stats.Costs
		c.Add(stats.C2S, stats.PhaseMap, r.C2S)
		c.Add(stats.S2C, stats.PhaseDelta, r.S2C)
		c.Roundtrips = 2
		return c
	})
}

// rsyncBestCosts sums the idealized per-file-optimal-block-size rsync.
func rsyncBestCosts(pairs []pair) stats.Costs {
	return sumCosts(pairs, func(p pair) stats.Costs {
		r, _ := rsync.SyncBest(p.old, p.cur, rsync.DefaultStrongLen)
		var c stats.Costs
		c.Add(stats.C2S, stats.PhaseMap, r.C2S)
		c.Add(stats.S2C, stats.PhaseDelta, r.S2C)
		c.Roundtrips = 2
		return c
	})
}

// deltaCosts sums the zdelta-substitute lower bound (both files local).
func deltaCosts(pairs []pair) stats.Costs {
	return sumCosts(pairs, func(p pair) stats.Costs {
		var c stats.Costs
		c.Add(stats.S2C, stats.PhaseDelta, delta.CompressedSize(p.old, p.cur))
		c.Roundtrips = 1
		return c
	})
}

// vcdiffCosts sums the RFC 3284 VCDIFF baseline (both files local).
func vcdiffCosts(pairs []pair) stats.Costs {
	return sumCosts(pairs, func(p pair) stats.Costs {
		var c stats.Costs
		c.Add(stats.S2C, stats.PhaseDelta, vcdiff.CompressedSize(p.old, p.cur))
		c.Roundtrips = 1
		return c
	})
}

// cdcCosts sums the LBFS-style content-defined-chunking dedup baseline.
func cdcCosts(pairs []pair, p cdc.Params) stats.Costs {
	return sumCosts(pairs, func(pr pair) stats.Costs {
		r := cdc.Sync(pr.old, pr.cur, p)
		var c stats.Costs
		c.Add(stats.C2S, stats.PhaseMap, r.C2S)
		c.Add(stats.S2C, stats.PhaseDelta, r.S2C)
		c.Roundtrips = 2
		return c
	})
}

// pubsigCosts sums the published-signature (zsync-style) baseline: the
// signature download plus the fetched ranges, all server→client.
func pubsigCosts(pairs []pair) stats.Costs {
	return sumCosts(pairs, func(pr pair) stats.Costs {
		_, down, err := pubsig.Sync(pr.old, pr.cur, pubsig.DefaultBlockSize)
		if err != nil {
			panic(fmt.Sprintf("bench: pubsig: %v", err))
		}
		var c stats.Costs
		c.Add(stats.S2C, stats.PhaseDelta, down)
		c.Roundtrips = 2 // signature fetch, then range fetches
		return c
	})
}

// fullCosts sums compressed full-transfer sizes.
func fullCosts(pairs []pair) stats.Costs {
	return sumCosts(pairs, func(p pair) stats.Costs {
		var c stats.Costs
		c.Add(stats.S2C, stats.PhaseFull, len(delta.Compress(p.cur)))
		c.Roundtrips = 1
		return c
	})
}

var (
	corpusMu    sync.Mutex
	corpusCache = map[string][2]*corpus.Tree{}
)

// corpusPair generates (and caches) a source-tree corpus.
func corpusPair(profile corpus.SourceTreeProfile, seed int64) (*corpus.Tree, *corpus.Tree) {
	key := fmt.Sprintf("%s-%d-%d", profile.Name, profile.Files, seed)
	corpusMu.Lock()
	defer corpusMu.Unlock()
	if c, ok := corpusCache[key]; ok {
		return c[0], c[1]
	}
	v1, v2 := profile.Generate(seed)
	corpusCache[key] = [2]*corpus.Tree{v1, v2}
	return v1, v2
}

// Options scales and seeds the experiments.
type Options struct {
	// Scale multiplies corpus sizes; 1.0 is a multi-MB run, tests use less.
	Scale float64
	Seed  int64
	// CacheMode selects the signature-cache condition for experiments that
	// support it (parallel.scan): "" or "off" (no signature), "cold" (a
	// fresh signature per run — levels memoized within the run only) or
	// "warm" (a precomputed signature shared across runs — near-zero block
	// hashing). Never changes the bytes on the wire.
	CacheMode string
}

// DefaultOptions is the full-scale configuration used by cmd/msbench.
func DefaultOptions() Options { return Options{Scale: 1.0, Seed: 42} }

// row builds a Row from costs in KB columns:
// s2c-map, c2s-map, delta, total, roundtrips.
func costRow(name string, c stats.Costs) Row {
	return Row{Name: name, Values: []float64{
		stats.KB(c.Bytes(stats.S2C, stats.PhaseMap)),
		stats.KB(c.Bytes(stats.C2S, stats.PhaseMap)),
		stats.KB(c.PhaseTotal(stats.PhaseDelta)),
		stats.KB(c.Total()),
		float64(c.Roundtrips),
	}}
}

var costColumns = []string{"map-s2c KB", "map-c2s KB", "delta KB", "total KB", "rtrips"}

// Experiments lists every experiment id known to Run.
func Experiments() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var registry = map[string]func(Options) *Table{
	"fig6.1":          Fig61,
	"fig6.2":          Fig62,
	"fig6.3":          Fig63,
	"fig6.4":          Fig64,
	"table6.1":        Table61,
	"table6.2":        Table62,
	"ablate.decomp":   AblateDecomposable,
	"ablate.local":    AblateLocal,
	"ablate.bits":     AblateHashBits,
	"ablate.rounds":   AblateRounds,
	"ablate.latency":  Latency,
	"ablate.manifest": AblateManifest,
	"ablate.cdc":      AblateCDC,
	"ablate.cpu":      CPU,
	"ablate.twophase": AblateTwoPhase,
	"parallel.scan":   ParallelScan,
	"cache.sync":      CacheSync,
	"cdc.map":         CDCMap,
}

// Run executes one experiment by id.
func Run(id string, opts Options) (*Table, error) {
	fn, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %s)",
			id, strings.Join(Experiments(), ", "))
	}
	return fn(opts), nil
}
