package bench

import "testing"

// TestManifestReport runs the manifest-scaling experiment at tiny scale:
// every arm must converge (measureManifest enforces it per run), the tree
// arms must pay less control traffic than the flat manifest at ~1% churn,
// the cached+speculative arm must beat the cold arm on descent rounds, and
// cross-file matching must collapse the rename corpus's content bytes.
func TestManifestReport(t *testing.T) {
	rep, err := measureManifest(Options{Scale: 0.005, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pts := map[string]*ManifestPoint{}
	for i := range rep.Points {
		p := &rep.Points[i]
		if !p.Converged {
			t.Fatalf("arm %s did not converge", p.Arm)
		}
		pts[p.Arm] = p
	}
	for _, arm := range []string{"flat", "tree-cold", "tree-cached", "rename-flat", "rename-tree", "rename-cross"} {
		if pts[arm] == nil {
			t.Fatalf("missing arm %s in report", arm)
		}
	}
	flat, cold, warm := pts["flat"], pts["tree-cold"], pts["tree-cached"]
	if cold.ControlBytes >= flat.ControlBytes {
		t.Fatalf("tree-cold control bytes %d not below flat %d at ~1%% churn",
			cold.ControlBytes, flat.ControlBytes)
	}
	if warm.ControlBytes >= flat.ControlBytes {
		t.Fatalf("tree-cached control bytes %d not below flat %d", warm.ControlBytes, flat.ControlBytes)
	}
	if warm.TreeRounds >= cold.TreeRounds {
		t.Fatalf("speculative descent paid %d rounds, plain descent %d", warm.TreeRounds, cold.TreeRounds)
	}
	if cold.TreeRounds == 0 || flat.TreeRounds != 0 {
		t.Fatalf("tree rounds misattributed: flat=%d cold=%d", flat.TreeRounds, cold.TreeRounds)
	}

	rflat, rcross := pts["rename-flat"], pts["rename-cross"]
	if rcross.FilesRenamed == 0 || rcross.RenameSaved == 0 {
		t.Fatalf("cross-file arm matched no renames: %+v", rcross)
	}
	if rcross.FilesRebased == 0 {
		t.Fatal("cross-file arm rebased no moved-and-edited files")
	}
	crossContent := rcross.FullBytes + rcross.DeltaBytes
	flatContent := rflat.FullBytes + rflat.DeltaBytes
	if crossContent*4 >= flatContent {
		t.Fatalf("cross-file content bytes %d not under a quarter of flat %d",
			crossContent, flatContent)
	}
	t.Logf("files=%d churn=%.1f%%: control flat=%d cold=%d (%.2fx) cached=%d (%.2fx); "+
		"rename content flat=%d cross=%d (renamed=%d rebased=%d saved=%d)",
		rep.Files, rep.ChangedPct, flat.ControlBytes, cold.ControlBytes, cold.ControlVsFlat,
		warm.ControlBytes, warm.ControlVsFlat, flatContent, crossContent,
		rcross.FilesRenamed, rcross.FilesRebased, rcross.RenameSaved)
}
