package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"msync/internal/core"
	"msync/internal/corpus"
	"msync/internal/md4"
	"msync/internal/obs"
	"msync/internal/pool"
	"msync/internal/sigcache"
)

// scanFileBytes is the reference file size for the scan-scaling experiment
// (at Scale 1.0): large enough that map construction is dominated by the
// client's rolling-hash scans over the old file.
const scanFileBytes = 8 << 20

// scanWorkerCounts is the sweep of the Workers knob.
var scanWorkerCounts = []int{1, 2, 4, 8}

// scanRun is one measured synchronization at a fixed worker count.
type scanRun struct {
	clientSecs  float64 // wall-clock inside client engine calls (map phase)
	totalSecs   float64 // wall-clock for the whole session
	wireBytes   int64   // map-phase + delta payload bytes
	blockHashes int64   // server-side block/probe hashes computed
	bytesHashed int64   // server-side bytes fed through hash functions
	transcript  []byte  // every frame, length-prefixed, in exchange order
}

// runScan drives both engines in process (the SyncLocal loop), timing the
// client's map-construction calls and recording the full frame transcript so
// runs at different worker counts can be compared byte for byte. sig, when
// non-nil, is attached to the server engine (the signature-cache condition);
// the transcript must not depend on it.
func runScan(fOld, fNew []byte, cfg core.Config, sig *sigcache.Sig) (*scanRun, error) {
	srv, err := core.NewServerFile(fNew, &cfg)
	if err != nil {
		return nil, err
	}
	srv.UseSignature(sig)
	cli, err := core.NewClientFile(fOld, len(fNew), &cfg)
	if err != nil {
		return nil, err
	}
	r := &scanRun{}
	var tr bytes.Buffer
	record := func(frame []byte) {
		r.wireBytes += int64(len(frame))
		var lenBuf [4]byte
		for i, n := 0, len(frame); i < 4; i, n = i+1, n>>8 {
			lenBuf[i] = byte(n)
		}
		tr.Write(lenBuf[:])
		tr.Write(frame)
	}

	start := time.Now()
	for srv.Active() {
		hashes := srv.EmitHashes()
		record(hashes)
		t0 := time.Now()
		if err := cli.AbsorbHashes(hashes); err != nil {
			return nil, err
		}
		reply := cli.EmitReply()
		r.clientSecs += time.Since(t0).Seconds()
		record(reply)
		more, err := srv.AbsorbReply(reply)
		if err != nil {
			return nil, err
		}
		for more {
			confirm := srv.EmitConfirm()
			record(confirm)
			t0 = time.Now()
			cliMore, err := cli.AbsorbConfirm(confirm)
			if err != nil {
				return nil, err
			}
			if !cliMore {
				return nil, fmt.Errorf("bench: engine desync in scan experiment")
			}
			batch := cli.EmitBatch()
			r.clientSecs += time.Since(t0).Seconds()
			record(batch)
			more, err = srv.AbsorbBatch(batch)
			if err != nil {
				return nil, err
			}
		}
	}
	dl := srv.EmitDelta()
	record(dl)
	if _, err := cli.ApplyDelta(dl); err != nil {
		return nil, err
	}
	r.totalSecs = time.Since(start).Seconds()
	r.blockHashes = srv.BlockHashesComputed
	r.bytesHashed = srv.BytesHashed
	r.transcript = tr.Bytes()
	return r, nil
}

// scanSig prepares the server-side signature for the sweep's cache mode:
// nil for "off"/"", a per-run fresh signature for "cold" (pass nil here and
// build per rep), or a fully precomputed one for "warm".
func scanSig(mode string, fNew []byte, cfg core.Config) (warm *sigcache.Sig, perRun func() *sigcache.Sig, err error) {
	switch mode {
	case "", "off":
		return nil, func() *sigcache.Sig { return nil }, nil
	case "cold":
		return nil, func() *sigcache.Sig {
			return sigcache.NewSig(int64(len(fNew)), md4.Sum(fNew))
		}, nil
	case "warm":
		warm, err = core.PrecomputeSignature(fNew, &cfg)
		if err != nil {
			return nil, nil, err
		}
		return warm, func() *sigcache.Sig { return warm }, nil
	default:
		return nil, nil, fmt.Errorf("bench: unknown cache mode %q (off, cold, warm)", mode)
	}
}

// scanPair builds the experiment's old/new file pair: multi-MB source text
// with localized edit bursts, so most of the old file survives and the
// client's scans dominate map construction.
func scanPair(opts Options) (old, cur []byte) {
	rng := rand.New(rand.NewSource(opts.Seed))
	n := int(float64(scanFileBytes) * opts.Scale)
	if n < 1<<16 {
		n = 1 << 16
	}
	old = corpus.SourceText(rng, n)
	em := corpus.EditModel{BurstsPer32KB: 1, BurstEdits: 3, EditSize: 60, BurstSpread: 400}
	return old, em.Apply(rng, old)
}

// ScanPoint is one worker count's measurement in the scan-scaling report.
type ScanPoint struct {
	Workers int `json:"workers"`
	// EffectiveWorkers is what the Workers knob resolved to after the
	// parallelism clamp (min(GOMAXPROCS, CPUs)); GOMAXPROCS records the
	// setting in force when this point was measured. A point whose requested
	// workers exceed the host's real parallelism reuses the serial
	// measurement (ReusedSerial) — the clamp makes the executions identical,
	// so re-timing them would only report scheduler noise as "speedup".
	EffectiveWorkers int  `json:"effective_workers"`
	GOMAXPROCS       int  `json:"gomaxprocs"`
	ReusedSerial     bool `json:"reused_serial_measurement,omitempty"`

	ClientMapSecs float64 `json:"client_map_seconds"`
	TotalSecs     float64 `json:"total_seconds"`
	// SpeedupVsSerial is serial client-map wall-clock divided by this run's.
	SpeedupVsSerial float64 `json:"client_map_speedup_vs_serial"`
	WireBytes       int64   `json:"wire_bytes"`
	// WireIdentical reports that every frame matched the Workers=1 run byte
	// for byte — the determinism invariant the parallel paths guarantee.
	WireIdentical bool `json:"wire_identical_to_serial"`
	// BlockHashes / BytesHashed count server-side hashing work; the cache
	// modes (Options.CacheMode) show up here, never in the wire columns.
	BlockHashes int64 `json:"block_hashes_computed"`
	BytesHashed int64 `json:"bytes_hashed"`
}

// ScanReport is the JSON artifact (BENCH_scan.json) of the scan-scaling
// experiment: client map-construction wall-clock per worker count on one
// large file, with the wire-determinism check. Speedup beyond 1.0 requires
// GOMAXPROCS > 1; the field records what the measuring host offered.
type ScanReport struct {
	Experiment string      `json:"experiment"`
	FileBytes  int         `json:"file_bytes"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	CacheMode  string      `json:"cache_mode"`
	Points     []ScanPoint `json:"points"`
	// Trace is the per-round span summary of one untimed serial run over the
	// same file pair: bytes each way, match candidates seen and confirmed per
	// map-construction round, then the delta transfer and session total.
	Trace []TraceSpan `json:"trace,omitempty"`
	Note  string      `json:"note"`
}

// measureScan runs the sweep behind both the table and the JSON report.
func measureScan(opts Options) (*ScanReport, error) {
	old, cur := scanPair(opts)
	cfg := bestConfig()

	mode := opts.CacheMode
	if mode == "" {
		mode = "off"
	}
	_, sigFor, err := scanSig(mode, cur, cfg)
	if err != nil {
		return nil, err
	}
	rep := &ScanReport{
		Experiment: "parallel.scan",
		FileBytes:  len(cur),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CacheMode:  mode,
		Note: "client_map_seconds is wall-clock inside client engine calls " +
			"(AbsorbHashes/EmitReply/AbsorbConfirm/EmitBatch); best of " +
			"3 runs per worker count after one warm-up; points whose workers " +
			"exceed the host's effective parallelism reuse the serial " +
			"measurement (see reused_serial_measurement)",
	}
	var serial *scanRun
	for _, w := range scanWorkerCounts {
		eff := pool.Workers(w)
		reused := w > 1 && eff == 1 && serial != nil
		var best *scanRun
		if reused {
			// The clamp resolves this point to the serial execution path;
			// reuse its measurement instead of re-timing identical work, so
			// `-workers N` is reported (and is) never worse than serial.
			best = serial
		} else {
			cfg.Workers = w
			for rep := 0; rep < 4; rep++ {
				r, err := runScan(old, cur, cfg, sigFor())
				if err != nil {
					return nil, err
				}
				if rep == 0 {
					continue // warm-up
				}
				if best == nil || r.clientSecs < best.clientSecs {
					best = r
				}
			}
		}
		if w == 1 {
			serial = best
		}
		p := ScanPoint{
			Workers:          w,
			EffectiveWorkers: eff,
			GOMAXPROCS:       runtime.GOMAXPROCS(0),
			ReusedSerial:     reused,
			ClientMapSecs:    best.clientSecs,
			TotalSecs:        best.totalSecs,
			WireBytes:        best.wireBytes,
			WireIdentical:    bytes.Equal(best.transcript, serial.transcript),
			BlockHashes:      best.blockHashes,
			BytesHashed:      best.bytesHashed,
		}
		if best.clientSecs > 0 {
			p.SpeedupVsSerial = serial.clientSecs / best.clientSecs
		}
		rep.Points = append(rep.Points, p)
	}
	// One untimed serial pass with the core tracer attached records the
	// session's per-round shape (every timed run above stays trace-free).
	cfg.Workers = 1
	ring := obs.NewRing(64)
	if _, err := core.SyncLocalTraced(context.Background(), old, cur, cfg, ring); err != nil {
		return nil, err
	}
	rep.Trace = summarizeTrace(ring.Events(), "core")
	return rep, nil
}

// ScanJSON runs the scan-scaling experiment and renders BENCH_scan.json.
func ScanJSON(opts Options) ([]byte, error) {
	rep, err := measureScan(opts)
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ParallelScan is the table view of the scan-scaling experiment for the
// msbench sweep: map-construction wall-clock against the Workers knob, with
// the wire-determinism bit (1 = byte-identical to the serial run).
func ParallelScan(opts Options) *Table {
	rep, err := measureScan(opts)
	if err != nil {
		panic(fmt.Sprintf("bench: scan scaling: %v", err))
	}
	t := &Table{
		Title:   "Extension — parallel map construction (single large file, client side)",
		Columns: []string{"map ms", "total ms", "speedup", "wire KB", "identical"},
	}
	for _, p := range rep.Points {
		ident := 0.0
		if p.WireIdentical {
			ident = 1
		}
		t.Rows = append(t.Rows, Row{
			Name: fmt.Sprintf("workers=%d", p.Workers),
			Values: []float64{
				p.ClientMapSecs * 1000,
				p.TotalSecs * 1000,
				p.SpeedupVsSerial,
				float64(p.WireBytes) / 1024,
				ident,
			},
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("file: %d bytes; GOMAXPROCS=%d (speedup needs >1 CPU)", rep.FileBytes, rep.GOMAXPROCS),
		"identical=1 means every frame matched the workers=1 transcript byte for byte")
	return t
}
