package bench

import (
	"encoding/json"
	"testing"
)

// TestPubFanout runs the fan-out experiment at reduced scale and checks the
// properties the full BENCH_pub.json report is meant to demonstrate.
func TestPubFanout(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-reader fan-out measurement")
	}
	out, err := PubJSON(Options{Scale: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var rep PubReport
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Arms) != 4 {
		t.Fatalf("got %d arms", len(rep.Arms))
	}
	byMode := map[string]PubArm{}
	for _, a := range rep.Arms {
		byMode[a.Mode] = a
		if !a.Converged {
			t.Errorf("%s: not converged", a.Mode)
		}
		if a.Readers != pubReaders {
			t.Errorf("%s: %d readers", a.Mode, a.Readers)
		}
	}

	// The interactive protocol hashes on the server for every reader; the
	// publish arms must cost the origin nothing per additional reader.
	ia := byMode["interactive"]
	if ia.ServerHashedFirst == 0 || ia.ServerHashedExtra == 0 {
		t.Errorf("interactive server hashing not accounted: %+v", ia)
	}
	for _, mode := range []string{"publish", "publish-cdn", "publish-delta"} {
		a := byMode[mode]
		if a.ServerHashedExtra != 0 {
			t.Errorf("%s: additional readers cost the server %d hashed bytes, want 0", mode, a.ServerHashedExtra)
		}
		if a.PublishHashed == 0 {
			t.Errorf("%s: publish step hashed nothing", mode)
		}
	}

	// The warm CDN arm must answer later readers almost entirely from cache:
	// per extra reader, only the mutable endpoints (/latest, and /since or
	// the manifest revalidation) may reach the origin.
	cdn := byMode["publish-cdn"]
	if cdn.OriginRequestsFirst == 0 {
		t.Error("cdn: first reader reached the origin zero times")
	}
	perExtra := float64(cdn.OriginRequestsExtra) / float64(pubReaders-1)
	if perExtra > 4 {
		t.Errorf("cdn: %.1f origin requests per extra reader, want mutable endpoints only", perExtra)
	}

	// The delta path must move less metadata than the full-manifest path.
	if d, p := byMode["publish-delta"], byMode["publish"]; d.DownBytesTotal >= p.DownBytesTotal {
		t.Errorf("delta arm downloaded %d >= full arm %d", d.DownBytesTotal, p.DownBytesTotal)
	}
}
