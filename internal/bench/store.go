package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"msync/internal/collection"
	"msync/internal/core"
	"msync/internal/corpus"
	"msync/internal/stats"
	"msync/internal/store"
	"msync/internal/transport"
)

// Reference shape of the versioned-store experiment at Scale 1.0: a wide
// collection of small files where per-file protocol overhead dominates, the
// workload the journal fast path is built for.
const (
	storeFileCount = 10_000
	storeFileBytes = 2 << 10
	storeVersions  = 6
)

// storeRun is one measured session against the versioned server.
type storeRun struct {
	secs   float64
	wire   int64
	client *stats.Costs // phase bytes, roundtrips, per-file outcomes
	server *stats.Costs // journal hit/miss counters live here
	files  map[string][]byte
}

// storeChurn derives the next version of tree: ~1% of files lightly edited,
// a few added, a few deleted. Selection is deterministic in rng.
func storeChurn(rng *rand.Rand, tree map[string][]byte, gen int) map[string][]byte {
	next := make(map[string][]byte, len(tree))
	for k, v := range tree {
		next[k] = v
	}
	keys := make([]string, 0, len(tree))
	for k := range tree {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pick := func(n int) []string {
		out := make([]string, 0, n)
		for i := 0; i < n && len(keys) > 0; i++ {
			j := rng.Intn(len(keys))
			out = append(out, keys[j])
			keys = append(keys[:j], keys[j+1:]...)
		}
		return out
	}
	em := corpus.EditModel{BurstsPer32KB: 4, BurstEdits: 4, EditSize: 40, BurstSpread: 200}
	edits := len(tree) / 100
	if edits < 1 {
		edits = 1
	}
	for _, k := range pick(edits) {
		next[k] = em.Apply(rng, next[k])
	}
	dels := len(tree) / 1000
	if dels < 1 {
		dels = 1
	}
	for _, k := range pick(dels) {
		delete(next, k)
	}
	adds := len(tree) / 500
	if adds < 1 {
		adds = 1
	}
	for i := 0; i < adds; i++ {
		p := fmt.Sprintf("gen%02d/new%04d.txt", gen, i)
		next[p] = corpus.SourceText(rng, storeFileBytes)
	}
	return next
}

// runStoreSync runs one session: a freshly built server over serverTree
// (wrapped with the version store when st is non-nil) against a client
// holding clientTree, optionally announcing base.
func runStoreSync(serverTree map[string][]byte, st *store.Store, clientTree map[string][]byte, announce bool, base uint64, cfg core.Config) (*storeRun, error) {
	start := time.Now()
	var src collection.Source = collection.MapSource(serverTree)
	if st != nil {
		src = collection.NewStoreSource(src, st)
	}
	srv, err := collection.NewServerSource(src, cfg)
	if err != nil {
		return nil, err
	}
	cli := collection.NewClientSource(collection.MapSource(clientTree))
	cli.AnnounceVersion = announce
	cli.BaseVersion = base

	a, b := transport.Pipe()
	sEnd := &recordEnd{ReadWriteCloser: a}
	cEnd := &recordEnd{ReadWriteCloser: b}
	done := make(chan *stats.Costs, 1)
	errc := make(chan error, 1)
	go func() {
		defer a.Close()
		costs, err := srv.Serve(sEnd)
		if err != nil {
			errc <- err
			return
		}
		done <- costs
	}()
	res, err := cli.Sync(cEnd)
	b.Close()
	if err != nil {
		return nil, fmt.Errorf("bench: store client: %w", err)
	}
	var srvCosts *stats.Costs
	select {
	case srvCosts = <-done:
	case err := <-errc:
		return nil, fmt.Errorf("bench: store server: %w", err)
	}

	r := &storeRun{
		secs:   time.Since(start).Seconds(),
		client: res.Costs,
		server: srvCosts,
		files:  res.Files,
	}
	r.wire = int64(len(sEnd.bytesWritten()) + len(cEnd.bytesWritten()))
	return r, nil
}

// StorePoint is one mode's measurement in the versioned-store report.
type StorePoint struct {
	// Mode is cold-full (empty client, no announcement), full (client at
	// BaseVersion content, full protocol) or journal (same client state,
	// announcing BaseVersion for the precomputed delta).
	Mode        string  `json:"mode"`
	BaseVersion uint64  `json:"base_version,omitempty"`
	Secs        float64 `json:"seconds"`
	WireBytes   int64   `json:"wire_bytes"`
	MapBytes    int64   `json:"map_bytes"`
	DeltaBytes  int64   `json:"delta_bytes"`
	FullBytes   int64   `json:"full_bytes"`
	Roundtrips  int     `json:"roundtrips"`

	FilesJournal   int   `json:"files_journal"`
	FilesSynced    int   `json:"files_synced"`
	FilesFull      int   `json:"files_full"`
	FilesUnchanged int   `json:"files_unchanged"`
	JournalHits    int64 `json:"journal_hits"`
	JournalMisses  int64 `json:"journal_misses"`

	// Converged reports that the client's result matched the server's
	// collection exactly — the journal path must change nothing but cost.
	Converged bool `json:"converged"`
	// SpeedupVsFull and WireVsFull compare a journal run against the full
	// run from the same base version (journal only).
	SpeedupVsFull float64 `json:"speedup_vs_full,omitempty"`
	WireVsFull    float64 `json:"wire_fraction_of_full,omitempty"`
}

// StoreReport is the JSON artifact (BENCH_store.json) of the versioned-store
// experiment: cold full sync versus journal-delta sync from one and five
// versions back on a wide small-file corpus.
type StoreReport struct {
	Experiment string       `json:"experiment"`
	Files      int          `json:"files"`
	FileBytes  int          `json:"file_bytes"`
	TotalBytes int64        `json:"total_bytes"`
	Versions   int          `json:"versions"`
	Points     []StorePoint `json:"points"`
	Note       string       `json:"note"`
}

// measureStore builds a version history v1..v6 with ~1% churn per step, then
// measures: a cold full sync from nothing, and — for clients holding v5
// (one back) and v1 (five back) — the full protocol versus the journal path.
func measureStore(opts Options) (*StoreReport, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	files := int(float64(storeFileCount) * opts.Scale)
	if files < 100 {
		files = 100
	}

	trees := make([]map[string][]byte, storeVersions+1) // 1-indexed by version
	base := make(map[string][]byte, files)
	var total int64
	for i := 0; i < files; i++ {
		data := corpus.SourceText(rng, storeFileBytes)
		base[fmt.Sprintf("dir%03d/f%05d.txt", i%100, i)] = data
		total += int64(len(data))
	}
	trees[1] = base
	for v := 2; v <= storeVersions; v++ {
		trees[v] = storeChurn(rng, trees[v-1], v)
	}

	storeDir, err := os.MkdirTemp("", "msync-bench-store-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(storeDir)
	st, err := store.Open(storeDir, store.Options{})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	for v := 1; v <= storeVersions; v++ {
		src := collection.NewStoreSource(collection.MapSource(trees[v]), st)
		got, err := src.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("bench: snapshot v%d: %w", v, err)
		}
		if got != uint64(v) {
			return nil, fmt.Errorf("bench: snapshot cut v%d, want v%d", got, v)
		}
	}

	cfg := bestConfig()
	current := trees[storeVersions]

	const reps = 3 // rep 0 is a warm-up
	best := func(clientTree map[string][]byte, announce bool, base uint64) (*storeRun, error) {
		var b *storeRun
		for rep := 0; rep < reps; rep++ {
			r, err := runStoreSync(current, st, clientTree, announce, base, cfg)
			if err != nil {
				return nil, err
			}
			if err := collection.VerifyAgainst(r.files, current); err != nil {
				return nil, fmt.Errorf("bench: store run did not converge: %w", err)
			}
			if rep == 0 {
				continue
			}
			if b == nil || r.secs < b.secs {
				b = r
			}
		}
		return b, nil
	}

	point := func(mode string, baseV uint64, r *storeRun) StorePoint {
		return StorePoint{
			Mode:           mode,
			BaseVersion:    baseV,
			Secs:           r.secs,
			WireBytes:      r.wire,
			MapBytes:       r.client.PhaseTotal(stats.PhaseMap),
			DeltaBytes:     r.client.PhaseTotal(stats.PhaseDelta),
			FullBytes:      r.client.PhaseTotal(stats.PhaseFull),
			Roundtrips:     r.client.Roundtrips,
			FilesJournal:   r.client.FilesJournal,
			FilesSynced:    r.client.FilesSynced,
			FilesFull:      r.client.FilesFull,
			FilesUnchanged: r.client.FilesUnchanged,
			JournalHits:    r.server.JournalHits,
			JournalMisses:  r.server.JournalMisses,
			Converged:      true, // enforced per rep in best()
		}
	}

	rep := &StoreReport{
		Experiment: "store.journal",
		Files:      files,
		FileBytes:  storeFileBytes,
		TotalBytes: total,
		Versions:   storeVersions,
		Note: "v1..v6 snapshots with ~1% churn per step; cold-full syncs from nothing, " +
			"full/journal pairs sync a client holding v5 (one back) and v1 (five back); " +
			"best of 2 after one warm-up; every run verified byte-identical to the live collection",
	}

	cold, err := best(nil, false, 0)
	if err != nil {
		return nil, err
	}
	rep.Points = append(rep.Points, point("cold-full", 0, cold))

	for _, baseV := range []uint64{storeVersions - 1, 1} { // v-1 and v-5
		full, err := best(trees[baseV], false, 0)
		if err != nil {
			return nil, err
		}
		jr, err := best(trees[baseV], true, baseV)
		if err != nil {
			return nil, err
		}
		if jr.server.JournalHits != 1 || jr.server.JournalMisses != 0 {
			return nil, fmt.Errorf("bench: journal from v%d: hits/misses %d/%d, want 1/0",
				baseV, jr.server.JournalHits, jr.server.JournalMisses)
		}
		rep.Points = append(rep.Points, point("full", baseV, full))
		jp := point("journal", baseV, jr)
		if jr.secs > 0 {
			jp.SpeedupVsFull = full.secs / jr.secs
		}
		if full.wire > 0 {
			jp.WireVsFull = float64(jr.wire) / float64(full.wire)
		}
		rep.Points = append(rep.Points, jp)
	}
	return rep, nil
}

// StoreJSON runs the versioned-store experiment and renders BENCH_store.json.
func StoreJSON(opts Options) ([]byte, error) {
	rep, err := measureStore(opts)
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
