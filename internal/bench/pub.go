package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"msync/internal/corpus"
	"msync/internal/dirio"
	"msync/internal/obs"
	"msync/internal/pubsig"
)

// Reference shape of the publish-mode fan-out experiment at Scale 1.0: a
// modest collection read by many clients, the regime where the interactive
// protocol's per-client server work dominates and published artifacts
// amortize it to zero.
const (
	pubFileCount = 400
	pubFileBytes = 8 << 10
	pubReaders   = 8
)

// PubArm is one serving mode's measurement in the fan-out report.
type PubArm struct {
	// Mode is interactive (one protocol session per reader), publish (REST
	// artifacts, cold readers), publish-cdn (same, behind a warm
	// immutable-respecting cache) or publish-delta (readers announce a base
	// version and ride /since).
	Mode    string  `json:"mode"`
	Readers int     `json:"readers"`
	Secs    float64 `json:"seconds"`

	// PublishHashed is the one-time cost of producing the artifacts (0 for
	// the interactive arm, which has no publish step).
	PublishHashed int64 `json:"publish_hashed_bytes"`
	// ServerHashedFirst and ServerHashedExtra split per-request server
	// hashing between the first reader and all later ones: the acceptance
	// criterion is ServerHashedExtra == 0 for every publish arm — an
	// additional reader costs the origin no computation.
	ServerHashedFirst int64 `json:"server_hashed_first_reader"`
	ServerHashedExtra int64 `json:"server_hashed_extra_readers"`

	DownBytesTotal     int64   `json:"down_bytes_total"`
	DownBytesPerReader float64 `json:"down_bytes_per_reader"`

	// OriginRequestsFirst/Extra count requests reaching the origin through
	// the CDN cache (cdn arm only): after the first reader warms the cache,
	// later readers should hit the origin only for the mutable endpoints.
	OriginRequestsFirst int64 `json:"origin_requests_first_reader,omitempty"`
	OriginRequestsExtra int64 `json:"origin_requests_extra_readers,omitempty"`

	// Converged reports that every reader's tree matched the served
	// collection byte-for-byte after its sync.
	Converged bool `json:"converged"`
}

// PubReport is the JSON artifact (BENCH_pub.json) of the fan-out experiment.
type PubReport struct {
	Experiment string   `json:"experiment"`
	Files      int      `json:"files"`
	FileBytes  int      `json:"file_bytes"`
	TotalBytes int64    `json:"total_bytes"`
	Readers    int      `json:"readers"`
	Arms       []PubArm `json:"arms"`
	Note       string   `json:"note"`
}

// cdnProxy is a minimal shared HTTP cache in front of an origin handler: it
// stores any successful response marked immutable (keyed by path + Range) and
// replays it without consulting the origin, modeling a CDN edge that honors
// the artifact cache-header contract. Mutable responses pass through.
type cdnProxy struct {
	origin http.Handler

	mu         sync.Mutex
	cache      map[string]*cachedResp
	originReqs int64
}

type cachedResp struct {
	status int
	header http.Header
	body   []byte
}

func newCDNProxy(origin http.Handler) *cdnProxy {
	return &cdnProxy{origin: origin, cache: make(map[string]*cachedResp)}
}

func (c *cdnProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Path + "\x00" + r.Header.Get("Range")
	c.mu.Lock()
	hit := c.cache[key]
	c.mu.Unlock()
	if hit == nil {
		rec := httptest.NewRecorder()
		c.origin.ServeHTTP(rec, r)
		c.mu.Lock()
		c.originReqs++
		c.mu.Unlock()
		hit = &cachedResp{status: rec.Code, header: rec.Header().Clone(), body: rec.Body.Bytes()}
		if hit.status < 300 && headerContains(hit.header.Get("Cache-Control"), "immutable") {
			c.mu.Lock()
			c.cache[key] = hit
			c.mu.Unlock()
		}
	}
	for k, vs := range hit.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(hit.status)
	w.Write(hit.body)
}

func (c *cdnProxy) requests() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.originReqs
}

func headerContains(header, directive string) bool {
	for len(header) > 0 {
		i := 0
		for i < len(header) && header[i] != ',' {
			i++
		}
		tok := header[:i]
		for len(tok) > 0 && (tok[0] == ' ' || tok[0] == '\t') {
			tok = tok[1:]
		}
		for len(tok) > 0 && (tok[len(tok)-1] == ' ' || tok[len(tok)-1] == '\t') {
			tok = tok[:len(tok)-1]
		}
		if tok == directive {
			return true
		}
		if i == len(header) {
			break
		}
		header = header[i+1:]
	}
	return false
}

// pubReaderTree derives reader i's local state: the previous published
// version plus a tiny personal edit, so no two readers ask for exactly the
// same work and the interactive arm cannot amortize across them. The delta
// arm must NOT use this: announcing a base version asserts the local tree is
// a faithful copy of it, and a divergent file absent from the delta would
// survive the sync.
func pubReaderTree(prev map[string][]byte, i int) map[string][]byte {
	rng := rand.New(rand.NewSource(int64(1000 + i)))
	em := corpus.EditModel{BurstsPer32KB: 1, BurstEdits: 2, EditSize: 20, BurstSpread: 100}
	keys := make([]string, 0, len(prev))
	for k := range prev {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	victim := keys[i%len(keys)]
	tree := make(map[string][]byte, len(prev))
	for k, v := range prev {
		if k == victim {
			tree[k] = em.Apply(rng, v)
		} else {
			tree[k] = v
		}
	}
	return tree
}

// measurePub builds two versions of a collection, then measures serving the
// newest to pubReaders clients under each mode.
func measurePub(opts Options) (*PubReport, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	files := int(float64(pubFileCount) * opts.Scale)
	if files < 20 {
		files = 20
	}

	v1 := make(map[string][]byte, files)
	var total int64
	for i := 0; i < files; i++ {
		data := corpus.SourceText(rng, pubFileBytes)
		v1[fmt.Sprintf("dir%02d/f%04d.txt", i%20, i)] = data
		total += int64(len(data))
	}
	v2 := storeChurn(rng, v1, 2)

	rep := &PubReport{
		Experiment: "pub.fanout",
		Files:      files,
		FileBytes:  pubFileBytes,
		TotalBytes: total,
		Readers:    pubReaders,
		Note: "v2 of a lightly-churned collection served to N readers holding (per-reader-varied) v1; " +
			"interactive runs one protocol session per reader, publish arms serve one set of " +
			"pre-hashed artifacts over HTTP; every reader verified byte-identical to the collection",
	}

	interactive, err := measurePubInteractive(v1, v2)
	if err != nil {
		return nil, err
	}
	rep.Arms = append(rep.Arms, *interactive)

	for _, arm := range []struct {
		mode  string
		cdn   bool
		delta bool
	}{
		{"publish", false, false},
		{"publish-cdn", true, false},
		{"publish-delta", false, true},
	} {
		a, err := measurePubArtifacts(v1, v2, arm.mode, arm.cdn, arm.delta)
		if err != nil {
			return nil, err
		}
		rep.Arms = append(rep.Arms, *a)
	}
	return rep, nil
}

// measurePubInteractive serves each reader with its own interactive protocol
// session: correct and tight on the wire, but the server hashes and matches
// for every single reader.
func measurePubInteractive(v1, v2 map[string][]byte) (*PubArm, error) {
	arm := &PubArm{Mode: "interactive", Readers: pubReaders, Converged: true}
	cfg := bestConfig()
	start := time.Now()
	for i := 0; i < pubReaders; i++ {
		r, err := runStoreSync(v2, nil, pubReaderTree(v1, i), false, 0, cfg)
		if err != nil {
			return nil, err
		}
		if err := verifyReaderFiles(r.files, v2); err != nil {
			return nil, fmt.Errorf("bench: interactive reader %d: %w", i, err)
		}
		hashed := r.server.BytesHashed
		if i == 0 {
			arm.ServerHashedFirst = hashed
		} else {
			arm.ServerHashedExtra += hashed
		}
		arm.DownBytesTotal += r.wire
	}
	arm.Secs = time.Since(start).Seconds()
	arm.DownBytesPerReader = float64(arm.DownBytesTotal) / pubReaders
	return arm, nil
}

// measurePubArtifacts publishes v1 and v2 once, then lets each reader
// reconcile an on-disk tree against the REST surface — optionally through a
// warm CDN-style cache, optionally announcing v1 for the /since delta path.
func measurePubArtifacts(v1, v2 map[string][]byte, mode string, cdn, delta bool) (*PubArm, error) {
	arm := &PubArm{Mode: mode, Readers: pubReaders, Converged: true}

	pubReg := obs.NewRegistry()
	store := pubsig.NewMemStore()
	p, err := pubsig.NewPublisher(store, pubsig.WithPublisherMetrics(pubReg))
	if err != nil {
		return nil, err
	}
	if _, _, err := p.Publish(v1); err != nil {
		return nil, err
	}
	if _, _, err := p.Publish(v2); err != nil {
		return nil, err
	}
	arm.PublishHashed = pubReg.Counter("pubsig_publish_bytes_hashed").Value()

	srvReg := obs.NewRegistry()
	h, err := pubsig.NewServer(store, pubsig.WithServerMetrics(srvReg))
	if err != nil {
		return nil, err
	}
	var handler http.Handler = h
	var proxy *cdnProxy
	if cdn {
		proxy = newCDNProxy(h)
		handler = proxy
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	hashedC := srvReg.Counter("pubsig_http_bytes_hashed")
	start := time.Now()
	for i := 0; i < pubReaders; i++ {
		root, err := os.MkdirTemp("", "msync-bench-pub-")
		if err != nil {
			return nil, err
		}
		local := pubReaderTree(v1, i)
		if delta {
			// Announcing base v1 asserts the tree IS v1.
			local = v1
		}
		if err := dirio.ApplyChanges(root, local, nil); err != nil {
			os.RemoveAll(root)
			return nil, err
		}
		sy := &pubsig.Syncer{Client: srv.Client(), BaseURL: srv.URL}
		if delta {
			sy.BaseVersion = 1
		}
		hashedBefore := hashedC.Value()
		reqsBefore := int64(0)
		if proxy != nil {
			reqsBefore = proxy.requests()
		}
		res, err := sy.Sync(context.Background(), root)
		if err != nil {
			os.RemoveAll(root)
			return nil, fmt.Errorf("bench: %s reader %d: %w", mode, i, err)
		}
		got, err := dirio.Load(root)
		os.RemoveAll(root)
		if err != nil {
			return nil, err
		}
		if err := verifyReaderFiles(got, v2); err != nil {
			return nil, fmt.Errorf("bench: %s reader %d: %w", mode, i, err)
		}
		hashed := hashedC.Value() - hashedBefore
		if i == 0 {
			arm.ServerHashedFirst = hashed
		} else {
			arm.ServerHashedExtra += hashed
		}
		if proxy != nil {
			reqs := proxy.requests() - reqsBefore
			if i == 0 {
				arm.OriginRequestsFirst = reqs
			} else {
				arm.OriginRequestsExtra += reqs
			}
		}
		arm.DownBytesTotal += res.BytesDown
	}
	arm.Secs = time.Since(start).Seconds()
	arm.DownBytesPerReader = float64(arm.DownBytesTotal) / pubReaders
	return arm, nil
}

// verifyReaderFiles checks byte-for-byte convergence of a reader's result
// against the served collection.
func verifyReaderFiles(got, want map[string][]byte) error {
	if len(got) != len(want) {
		return fmt.Errorf("reader holds %d files, collection has %d", len(got), len(want))
	}
	for k, v := range want {
		g, ok := got[k]
		if !ok {
			return fmt.Errorf("reader missing %q", k)
		}
		if len(g) != len(v) {
			return fmt.Errorf("reader file %q differs", k)
		}
		for i := range g {
			if g[i] != v[i] {
				return fmt.Errorf("reader file %q differs at byte %d", k, i)
			}
		}
	}
	return nil
}

// PubJSON runs the fan-out experiment and renders BENCH_pub.json.
func PubJSON(opts Options) ([]byte, error) {
	rep, err := measurePub(opts)
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
