package bench

import (
	"time"

	"msync/internal/cdc"
	"msync/internal/core"
	"msync/internal/corpus"
	"msync/internal/stats"
)

// CPU measures end-to-end processing throughput per method (both protocol
// sides in-process), in MB of raw current-version data per second. The
// paper (§6.2, §7) reports its prototype at "a few MB of raw data per
// second" without CPU tuning; this experiment records where this
// implementation stands.
func CPU(opts Options) *Table {
	v1, v2 := corpusPair(corpus.GCCProfile(opts.Scale), opts.Seed)
	pairs, _, _ := changedPairs(v1, v2)
	var rawBytes int64
	for _, p := range pairs {
		rawBytes += int64(len(p.cur))
	}

	t := &Table{
		Title:   "Extension — CPU throughput (gcc changed files, both sides in-process)",
		Columns: []string{"MB/s", "wire KB"},
	}
	methods := []struct {
		name string
		run  func() stats.Costs
	}{
		{"msync all-tech", func() stats.Costs { return msyncCosts(pairs, bestConfig()) }},
		{"msync basic", func() stats.Costs { return msyncCosts(pairs, core.BasicConfig()) }},
		{"rsync default(700)", func() stats.Costs { return rsyncCosts(pairs, 700) }},
		{"cdc dedup", func() stats.Costs { return cdcCosts(pairs, cdc.DefaultParams()) }},
		{"vcdiff", func() stats.Costs { return vcdiffCosts(pairs) }},
		{"delta (zdelta-sub)", func() stats.Costs { return deltaCosts(pairs) }},
	}
	for _, m := range methods {
		// One warm-up pass (index/cache effects), then a timed pass.
		m.run()
		start := time.Now()
		c := m.run()
		el := time.Since(start).Seconds()
		mbps := 0.0
		if el > 0 {
			mbps = float64(rawBytes) / (1 << 20) / el
		}
		t.Rows = append(t.Rows, Row{Name: m.name, Values: []float64{mbps, stats.KB(c.Total())}})
	}
	t.Notes = append(t.Notes,
		"throughput includes BOTH endpoints and all rounds; wall-clock, parallel across files",
		"paper: prototype ran at a few MB/s of raw data without CPU optimization")
	return t
}
