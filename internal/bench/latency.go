package bench

import (
	"time"

	"msync/internal/core"
	"msync/internal/corpus"
	"msync/internal/stats"
)

// Links used by the latency experiment: a DSL-class asymmetric link, a
// fast symmetric link, and a high-latency satellite-class link.
var links = []struct {
	name string
	l    stats.LinkModel
}{
	{"DSL 1M/256k 80ms", stats.LinkModel{DownBps: 125_000, UpBps: 32_000, RTT: 80 * time.Millisecond}},
	{"LAN 100M 2ms", stats.LinkModel{DownBps: 12_500_000, UpBps: 12_500_000, RTT: 2 * time.Millisecond}},
	{"SAT 10M 600ms", stats.LinkModel{DownBps: 1_250_000, UpBps: 1_250_000, RTT: 600 * time.Millisecond}},
}

// Latency regenerates the paper's §7 trade-off discussion as a table:
// estimated wall-clock sync time per method per link. Multi-round wins on
// slow links; on fast or high-latency links the roundtrips dominate and
// one-shot modes become competitive — the motivation for an adaptive tool.
func Latency(opts Options) *Table {
	v1, v2 := corpusPair(corpus.GCCProfile(opts.Scale), opts.Seed)
	pairs, _, _ := changedPairs(v1, v2)

	t := &Table{
		Title:   "Extension — estimated sync seconds by link (gcc)",
		Columns: []string{"bytes KB", "rtrips"},
	}
	for _, lk := range links {
		t.Columns = append(t.Columns, lk.name)
	}
	methods := []struct {
		name string
		c    stats.Costs
	}{
		{"msync all-tech", msyncCosts(pairs, bestConfig())},
		{"msync basic", msyncCosts(pairs, core.BasicConfig())},
		{"msync one-shot b=512", msyncCosts(pairs, core.OneShotConfig(512))},
		{"rsync default(700)", rsyncCosts(pairs, 700)},
	}
	for _, m := range methods {
		row := Row{Name: m.name, Values: []float64{
			stats.KB(m.c.Total()), float64(m.c.Roundtrips),
		}}
		for _, lk := range links {
			row.Values = append(row.Values, lk.l.Duration(&m.c).Seconds())
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper §7: multi-round pays off on slow links; with few roundtrips it is hard to beat rsync",
		"an adaptive tool would pick the round budget from the link characteristics")
	return t
}
