package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"msync/internal/collection"
	"msync/internal/core"
	"msync/internal/corpus"
	"msync/internal/stats"
	"msync/internal/transport"
)

// Reference shape of the manifest-scaling experiment at Scale 1.0: a very
// wide collection of tiny files with ~1% churn, where change-detection cost
// dominates the session — the workload tree manifests are built for.
const (
	manifestFileCount = 200_000
	manifestFileBytes = 224 // below the sync threshold: changed files go whole
)

// manifestRun is one measured session.
type manifestRun struct {
	secs   float64
	wire   int64
	client *stats.Costs
	server *stats.Costs
	files  map[string][]byte
}

// runManifestSync runs one session of cli against a server over serverTree.
// Passing a non-nil srv reuses a live server (warm manifest + tree caches);
// otherwise a fresh one is built (cold).
func runManifestSync(serverTree map[string][]byte, srv *collection.Server, cli *collection.Client, cfg core.Config) (*manifestRun, error) {
	start := time.Now()
	if srv == nil {
		var err error
		srv, err = collection.NewServer(serverTree, cfg)
		if err != nil {
			return nil, err
		}
	}
	a, b := transport.Pipe()
	sEnd := &recordEnd{ReadWriteCloser: a}
	cEnd := &recordEnd{ReadWriteCloser: b}
	done := make(chan *stats.Costs, 1)
	errc := make(chan error, 1)
	go func() {
		defer a.Close()
		costs, err := srv.Serve(sEnd)
		if err != nil {
			errc <- err
			return
		}
		done <- costs
	}()
	res, err := cli.Sync(cEnd)
	b.Close()
	if err != nil {
		return nil, fmt.Errorf("bench: manifest client: %w", err)
	}
	var srvCosts *stats.Costs
	select {
	case srvCosts = <-done:
	case err := <-errc:
		return nil, fmt.Errorf("bench: manifest server: %w", err)
	}
	r := &manifestRun{
		secs:   time.Since(start).Seconds(),
		client: res.Costs,
		server: srvCosts,
		files:  res.Files,
	}
	r.wire = int64(len(sEnd.bytesWritten()) + len(cEnd.bytesWritten()))
	return r, nil
}

// ManifestPoint is one arm's measurement in the manifest-scaling report.
type ManifestPoint struct {
	// Arm is flat (full fingerprint manifest), tree-cold (merkle descent,
	// cold caches), tree-cached (merkle descent, warm tree caches plus
	// speculative descent), rename-flat / rename-tree / rename-cross (the
	// pure-rename corpus without and with cross-file matching).
	Arm          string  `json:"arm"`
	Secs         float64 `json:"seconds"`
	WireBytes    int64   `json:"wire_bytes"`
	ControlBytes int64   `json:"control_bytes"`
	DeltaBytes   int64   `json:"delta_bytes"`
	FullBytes    int64   `json:"full_bytes"`
	Roundtrips   int     `json:"roundtrips"`
	TreeRounds   int     `json:"tree_rounds"`

	FilesUnchanged int   `json:"files_unchanged"`
	FilesFull      int   `json:"files_full"`
	FilesSynced    int   `json:"files_synced"`
	FilesRenamed   int   `json:"files_renamed"`
	FilesRebased   int   `json:"files_rebased"`
	RenameSaved    int64 `json:"rename_bytes_saved"`

	// Converged reports that the result matched the server's collection
	// exactly (enforced per run; a non-converged run fails the experiment).
	Converged bool `json:"converged"`
	// ControlVsFlat compares this arm's control bytes against the flat arm
	// on the same corpus (churn arms only).
	ControlVsFlat float64 `json:"control_fraction_of_flat,omitempty"`
}

// ManifestReport is the JSON artifact (BENCH_manifest.json) of the
// manifest-scaling experiment: flat manifest versus merkle-tree change
// detection (cold and cached+speculative) on a wide collection with ~1%
// churn, plus a pure-rename corpus without and with cross-file matching.
type ManifestReport struct {
	Experiment  string          `json:"experiment"`
	Files       int             `json:"files"`
	FileBytes   int             `json:"file_bytes"`
	TotalBytes  int64           `json:"total_bytes"`
	ChangedPct  float64         `json:"changed_pct"`
	RenameFiles int             `json:"rename_files"`
	Points      []ManifestPoint `json:"points"`
	Note        string          `json:"note"`
}

// manifestChurn derives the server's version: ~1% of files edited, a few
// added and deleted — the repeat-sync steady state.
func manifestChurn(rng *rand.Rand, tree map[string][]byte) (map[string][]byte, int) {
	next := make(map[string][]byte, len(tree))
	paths := make([]string, 0, len(tree))
	for k, v := range tree {
		next[k] = v
		paths = append(paths, k)
	}
	sort.Strings(paths)
	changed := 0
	em := corpus.EditModel{BurstsPer32KB: 4, BurstEdits: 3, EditSize: 30, BurstSpread: 100}
	for i, p := range paths {
		switch {
		case i%100 == 7: // ~1% edited
			next[p] = em.Apply(rng, next[p])
			changed++
		case i%1000 == 3: // ~0.1% deleted
			delete(next, p)
			changed++
		}
	}
	adds := len(paths) / 1000
	for i := 0; i < adds; i++ {
		next[fmt.Sprintf("churn/new%05d.txt", i)] = corpus.SourceText(rng, manifestFileBytes)
		changed++
	}
	return next, changed
}

// measureManifest runs the manifest-scaling experiment.
func measureManifest(opts Options) (*ManifestReport, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	files := int(float64(manifestFileCount) * opts.Scale)
	if files < 500 {
		files = 500
	}

	v1 := make(map[string][]byte, files)
	var total int64
	for i := 0; i < files; i++ {
		data := corpus.SourceText(rng, manifestFileBytes)
		v1[fmt.Sprintf("dir%03d/sub%02d/f%06d.txt", i%97, (i/97)%41, i)] = data
		total += int64(len(data))
	}
	v2, changed := manifestChurn(rng, v1)

	cfg := bestConfig()
	rep := &ManifestReport{
		Experiment: "manifest.scaling",
		Files:      files,
		FileBytes:  manifestFileBytes,
		TotalBytes: total,
		ChangedPct: 100 * float64(changed) / float64(files),
		Note: "flat manifest vs merkle tree (cold, and cached+speculative) at ~1% churn on a " +
			"wide tiny-file corpus, plus a rename-heavy corpus without and with cross-file " +
			"matching; every run verified byte-identical to the server's collection",
	}

	verify := func(r *manifestRun, want map[string][]byte) (*manifestRun, error) {
		if err := collection.VerifyAgainst(r.files, want); err != nil {
			return nil, fmt.Errorf("bench: manifest run did not converge: %w", err)
		}
		return r, nil
	}
	point := func(arm string, r *manifestRun) ManifestPoint {
		return ManifestPoint{
			Arm:            arm,
			Secs:           r.secs,
			WireBytes:      r.wire,
			ControlBytes:   r.client.PhaseTotal(stats.PhaseControl),
			DeltaBytes:     r.client.PhaseTotal(stats.PhaseDelta),
			FullBytes:      r.client.PhaseTotal(stats.PhaseFull),
			Roundtrips:     r.client.Roundtrips,
			TreeRounds:     r.client.TreeRounds,
			FilesUnchanged: r.client.FilesUnchanged,
			FilesFull:      r.client.FilesFull,
			FilesSynced:    r.client.FilesSynced,
			FilesRenamed:   r.client.FilesRenamed,
			FilesRebased:   r.client.FilesRebased,
			RenameSaved:    r.client.RenameBytesSaved,
			Converged:      true, // enforced by verify()
		}
	}

	// Arm 1: flat manifest.
	flatCli := collection.NewClient(v1)
	flat, err := runManifestSync(v2, nil, flatCli, cfg)
	if err != nil {
		return nil, err
	}
	if flat, err = verify(flat, v2); err != nil {
		return nil, err
	}
	flatPt := point("flat", flat)
	rep.Points = append(rep.Points, flatPt)

	// Arm 2: tree descent, everything cold.
	coldCli := collection.NewClient(v1)
	coldCli.TreeManifest = true
	cold, err := runManifestSync(v2, nil, coldCli, cfg)
	if err != nil {
		return nil, err
	}
	if cold, err = verify(cold, v2); err != nil {
		return nil, err
	}
	coldPt := point("tree-cold", cold)
	coldPt.ControlVsFlat = float64(coldPt.ControlBytes) / float64(flatPt.ControlBytes)
	rep.Points = append(rep.Points, coldPt)

	// Arm 3: tree descent with warm caches and speculative descent. The
	// same client and server instances first sync v1 against v1 (builds and
	// rebases the trees), then the measured session runs against v2.
	warmCli := collection.NewClient(v1)
	warmCli.TreeManifest = true
	warmCli.SpeculativeDescent = true
	warmSrv, err := collection.NewServer(v2, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := runManifestSync(nil, warmSrv, warmCli, cfg); err != nil {
		return nil, err // warm-up: builds both sides' trees
	}
	warm, err := runManifestSync(nil, warmSrv, warmCli, cfg)
	if err != nil {
		return nil, err
	}
	if warm, err = verify(warm, v2); err != nil {
		return nil, err
	}
	warmPt := point("tree-cached", warm)
	warmPt.ControlVsFlat = float64(warmPt.ControlBytes) / float64(flatPt.ControlBytes)
	rep.Points = append(rep.Points, warmPt)

	// Rename corpus: pure renames and moved-and-edited files. Floored so
	// tiny-scale runs still hold a meaningful population of each class.
	rs := opts.Scale * 4
	if rs < 0.5 {
		rs = 0.5
	}
	rp := corpus.DefaultRenameProfile(rs)
	r1, r2 := rp.Generate(opts.Seed + 1)
	rep.RenameFiles = len(r1.Files)
	for _, arm := range []struct {
		name  string
		tree  bool
		cross bool
	}{
		{"rename-flat", false, false},
		{"rename-tree", true, false},
		{"rename-cross", true, true},
	} {
		cli := collection.NewClient(r1.Map())
		cli.TreeManifest = arm.tree
		cli.SpeculativeDescent = arm.tree
		cli.CrossFileMatch = arm.cross
		r, err := runManifestSync(r2.Map(), nil, cli, cfg)
		if err != nil {
			return nil, err
		}
		if r, err = verify(r, r2.Map()); err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, point(arm.name, r))
	}
	return rep, nil
}

// ManifestJSON runs the manifest-scaling experiment and renders
// BENCH_manifest.json.
func ManifestJSON(opts Options) ([]byte, error) {
	rep, err := measureManifest(opts)
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
