package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyOpts keeps experiment corpora very small for the unit tests; the
// shape assertions below must hold even at this scale.
var tinyOpts = Options{Scale: 0.12, Seed: 42}

func runFor(t *testing.T, id string) *Table {
	t.Helper()
	table, err := Run(id, tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if table.Title == "" || len(table.Rows) == 0 || len(table.Columns) == 0 {
		t.Fatalf("%s: malformed table %+v", id, table)
	}
	for _, r := range table.Rows {
		if len(r.Values) != len(table.Columns) {
			t.Fatalf("%s: row %q has %d values for %d columns", id, r.Name, len(r.Values), len(table.Columns))
		}
	}
	return table
}

// total extracts the "total KB" column (index 3 in cost tables).
func total(t *testing.T, table *Table, name string) float64 {
	t.Helper()
	for _, r := range table.Rows {
		if r.Name == name {
			return r.Values[3]
		}
	}
	t.Fatalf("row %q not found in %q", name, table.Title)
	return 0
}

func TestAllExperimentsRun(t *testing.T) {
	for _, id := range Experiments() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			table := runFor(t, id)
			var buf bytes.Buffer
			table.Render(&buf)
			if !strings.Contains(buf.String(), table.Title) {
				t.Fatal("render lost the title")
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("fig9.9", tinyOpts); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestFig61Shape: the paper's core comparisons must hold — a reasonable
// msync setting beats rsync, and the delta bound beats everything.
func TestFig61Shape(t *testing.T) {
	table := runFor(t, "fig6.1")
	rsync := total(t, table, "rsync default(700)")
	best := 1e18
	for _, r := range table.Rows {
		if strings.HasPrefix(r.Name, "basic bmin=") && r.Values[3] < best {
			best = r.Values[3]
		}
	}
	deltaBound := total(t, table, "delta bound (zdelta-sub)")
	if best >= rsync {
		t.Fatalf("best msync %.1f not below rsync %.1f", best, rsync)
	}
	if deltaBound >= best {
		t.Fatalf("delta bound %.1f not below msync %.1f", deltaBound, best)
	}
	// The block-size sweep is U-shaped: the largest block size is worse
	// than the best choice.
	coarse := total(t, table, "basic bmin=1024")
	if coarse <= best {
		t.Fatalf("bmin=1024 (%.1f) should lose to the sweep best (%.1f)", coarse, best)
	}
}

// TestTable61Shape: ordering of methods on both corpora.
func TestTable61Shape(t *testing.T) {
	table := runFor(t, "table6.1")
	for col := 0; col < 2; col++ {
		get := func(name string) float64 {
			for _, r := range table.Rows {
				if r.Name == name {
					return r.Values[col]
				}
			}
			t.Fatalf("row %q missing", name)
			return 0
		}
		full := get("full transfer (compressed)")
		rsync := get("rsync default(700)")
		msyncAll := get("msync all techniques")
		deltaBound := get("delta bound (zdelta-sub)")
		if !(deltaBound < msyncAll && msyncAll < rsync && rsync < full) {
			t.Fatalf("col %d ordering violated: delta %.1f msync %.1f rsync %.1f full %.1f",
				col, deltaBound, msyncAll, rsync, full)
		}
	}
}

// TestAblateDecomposableShape: turning decomposability off must increase
// map-phase server→client traffic.
func TestAblateDecomposableShape(t *testing.T) {
	table := runFor(t, "ablate.decomp")
	var on, off float64
	for _, r := range table.Rows {
		switch r.Name {
		case "decomposable on":
			on = r.Values[0]
		case "decomposable off":
			off = r.Values[0]
		}
	}
	if on >= off {
		t.Fatalf("decomposable on (%.2f KB s2c) not below off (%.2f KB)", on, off)
	}
}

// TestAblateBitsShape: more slack bits, fewer false candidates.
func TestAblateBitsShape(t *testing.T) {
	table := runFor(t, "ablate.bits")
	first := table.Rows[0].Values[3]                // false% at slack=2
	last := table.Rows[len(table.Rows)-1].Values[3] // at slack=10
	if last >= first {
		t.Fatalf("false-candidate rate did not fall with slack: %.1f%% -> %.1f%%", first, last)
	}
}

// TestTable62Shape: costs grow with the sync interval and msync sits
// between rsync and the delta bound.
func TestTable62Shape(t *testing.T) {
	table := runFor(t, "table6.2")
	prev := 0.0
	for _, r := range table.Rows {
		full, rsync, msync, deltaB := r.Values[0], r.Values[1], r.Values[2], r.Values[4]
		if msync >= rsync || msync >= full {
			t.Fatalf("%s: msync %.1f should beat rsync %.1f and full %.1f", r.Name, msync, rsync, full)
		}
		if deltaB >= msync {
			t.Fatalf("%s: delta bound %.1f not below msync %.1f", r.Name, deltaB, msync)
		}
		if full < prev {
			t.Fatalf("full-transfer cost fell as the interval grew")
		}
		prev = full
	}
}

// TestLatencyShape: on the satellite link, one-shot must close most of the
// roundtrip-time gap against the all-technique setting.
func TestLatencyShape(t *testing.T) {
	table := runFor(t, "ablate.latency")
	var allTech, oneShot Row
	for _, r := range table.Rows {
		switch r.Name {
		case "msync all-tech":
			allTech = r
		case "msync one-shot b=512":
			oneShot = r
		}
	}
	// Column layout: bytes, rtrips, DSL, LAN, SAT. The structural trade-off:
	// one-shot spends more bytes but far fewer roundtrips, so it wins on the
	// high-latency link. (Whether multi-round wins on DSL depends on corpus
	// size relative to the RTT; asserted only at full scale in EXPERIMENTS.md.)
	if oneShot.Values[0] <= allTech.Values[0] {
		t.Fatalf("one-shot bytes (%.1f KB) should exceed all-tech (%.1f KB)",
			oneShot.Values[0], allTech.Values[0])
	}
	if oneShot.Values[1] >= allTech.Values[1] {
		t.Fatalf("one-shot roundtrips (%.0f) should be fewer than all-tech (%.0f)",
			oneShot.Values[1], allTech.Values[1])
	}
	satAll, satOne := allTech.Values[4], oneShot.Values[4]
	if satOne >= satAll {
		t.Fatalf("on SAT, one-shot (%.2fs) should beat multi-round (%.2fs)", satOne, satAll)
	}
}

func TestRenderCSV(t *testing.T) {
	table := &Table{
		Title:   "T, with comma",
		Columns: []string{"a KB", "b"},
		Rows:    []Row{{Name: "row, one", Values: []float64{1.5, 2}}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	table.RenderCSV(&buf)
	out := buf.String()
	for _, want := range []string{"# T, with comma\n", "name,a KB,b\n", "row; one,1.500,2.000\n", "# a note\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

// TestAblateManifestShape: tree detection must beat the flat manifest when
// few files changed.
func TestAblateManifestShape(t *testing.T) {
	table := runFor(t, "ablate.manifest")
	first := table.Rows[0] // fewest changes
	if first.Values[1] >= first.Values[0] {
		t.Fatalf("tree (%.1f KB) not below manifest (%.1f KB) at minimal change",
			first.Values[1], first.Values[0])
	}
}

// TestAblateCDCShape: msync must beat the chunk-dedup baseline at every
// chunk size (it exploits sub-chunk similarity).
func TestAblateCDCShape(t *testing.T) {
	table := runFor(t, "ablate.cdc")
	ms, ok := 0.0, false
	for _, r := range table.Rows {
		if r.Name == "msync all-tech" {
			ms, ok = r.Values[3], true
		}
	}
	if !ok {
		t.Fatal("msync row missing")
	}
	for _, r := range table.Rows {
		if strings.HasPrefix(r.Name, "cdc avg=") && r.Values[3] <= ms {
			t.Fatalf("%s (%.1f KB) beat msync (%.1f KB)", r.Name, r.Values[3], ms)
		}
	}
}

func TestTableGet(t *testing.T) {
	table := &Table{Rows: []Row{{Name: "a", Values: []float64{7}}}}
	if v, ok := table.Get("a"); !ok || v != 7 {
		t.Fatal("Get")
	}
	if _, ok := table.Get("missing"); ok {
		t.Fatal("missing row found")
	}
}
