package bench

import "msync/internal/obs"

// TraceSpan is one protocol-phase span carried into the BENCH JSON reports:
// the per-round shape of a session (frames, bytes each way, engine
// diagnostics) without the timestamps and session ids of the raw events.
type TraceSpan struct {
	Phase      string `json:"phase"`
	Round      int    `json:"round,omitempty"`
	Frames     int    `json:"frames,omitempty"`
	BytesUp    int64  `json:"bytes_up,omitempty"`
	BytesDown  int64  `json:"bytes_down,omitempty"`
	Candidates int64  `json:"candidates,omitempty"`
	Confirmed  int64  `json:"confirmed,omitempty"`
}

// summarizeTrace projects one side's events out of a ring tracer shared by a
// whole session, in emission order. The session summary span is included
// last, so a report shows rounds and their total together.
func summarizeTrace(events []obs.Event, side string) []TraceSpan {
	var spans []TraceSpan
	for _, e := range events {
		if e.Side != side {
			continue
		}
		spans = append(spans, TraceSpan{
			Phase:      e.Phase,
			Round:      e.Round,
			Frames:     e.Frames,
			BytesUp:    e.BytesUp,
			BytesDown:  e.BytesDown,
			Candidates: e.Candidates,
			Confirmed:  e.Confirmed,
		})
	}
	return spans
}
