package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"msync/internal/collection"
	"msync/internal/core"
	"msync/internal/corpus"
	"msync/internal/dirio"
	"msync/internal/obs"
	"msync/internal/sigcache"
	"msync/internal/stats"
	"msync/internal/transport"
)

// Reference shape of the repeated-sync experiment at Scale 1.0: a tree large
// enough that manifest hashing dominates an unchanged-tree session.
const (
	cacheFileBytes = 512 << 10
	cacheFileCount = 64
)

// cacheRun is one measured repeat synchronization of an unchanged tree.
type cacheRun struct {
	secs        float64 // source construction + whole session wall-clock
	bytesHashed int64   // both sides: manifest + block-level hashing
	blockHashes int64   // both sides: block/probe hashes computed
	cacheHits   int64
	cacheMisses int64
	mallocs     uint64 // heap allocations during the run (both sides)
	wireBytes   int64
	c2s, s2c    []byte      // raw byte streams, for cross-mode comparison
	events      []obs.Event // per-phase spans from both sides' session traces
}

// recordEnd wraps one pipe end, copying everything written through it (one
// direction of the session) so runs can be compared byte for byte.
type recordEnd struct {
	io.ReadWriteCloser
	mu  sync.Mutex
	buf bytes.Buffer
}

func (r *recordEnd) Write(p []byte) (int, error) {
	r.mu.Lock()
	r.buf.Write(p)
	r.mu.Unlock()
	return r.ReadWriteCloser.Write(p)
}

func (r *recordEnd) bytesWritten() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]byte(nil), r.buf.Bytes()...)
}

// runCacheSync opens both trees, builds their sources over the given caches
// (nil = uncached streaming) and runs one full session, measuring everything
// from tree open to session end — the cost a repeat CLI invocation pays.
func runCacheSync(serverDir, clientDir string, serverCache, clientCache *sigcache.Cache, cfg core.Config) (*cacheRun, error) {
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()

	sTree, werrs, err := dirio.OpenTree(serverDir)
	if err != nil || len(werrs) > 0 {
		return nil, fmt.Errorf("bench: open %s: %v (%d file errors)", serverDir, err, len(werrs))
	}
	cTree, werrs, err := dirio.OpenTree(clientDir)
	if err != nil || len(werrs) > 0 {
		return nil, fmt.Errorf("bench: open %s: %v (%d file errors)", clientDir, err, len(werrs))
	}
	srvSrc := collection.NewTreeSource(sTree, serverCache, collection.ConfigFingerprint(&cfg), false)
	cliSrc := collection.NewTreeSource(cTree, clientCache, 0, false)

	srv, err := collection.NewServerSource(srvSrc, cfg)
	if err != nil {
		return nil, err
	}
	cli := collection.NewClientSource(cliSrc)
	cli.LazyResult = true
	// Both sides share one ring so the report can show the session's
	// per-round span shape. Tracing never changes the bytes on the wire, and
	// its fixed per-phase cost is identical across the cache modes compared.
	ring := obs.NewRing(256)
	srv.Tracer = ring
	cli.Tracer = ring

	a, b := transport.Pipe()
	sEnd := &recordEnd{ReadWriteCloser: a}
	cEnd := &recordEnd{ReadWriteCloser: b}
	done := make(chan *stats.Costs, 1)
	errc := make(chan error, 1)
	go func() {
		defer a.Close()
		costs, err := srv.Serve(sEnd)
		if err != nil {
			errc <- err
			return
		}
		done <- costs
	}()
	res, err := cli.Sync(cEnd)
	b.Close()
	if err != nil {
		return nil, fmt.Errorf("bench: cache client: %w", err)
	}
	var srvCosts *stats.Costs
	select {
	case srvCosts = <-done:
	case err := <-errc:
		return nil, fmt.Errorf("bench: cache server: %w", err)
	}

	r := &cacheRun{secs: time.Since(start).Seconds()}
	runtime.ReadMemStats(&ms1)
	r.mallocs = ms1.Mallocs - ms0.Mallocs
	for _, c := range []*stats.Costs{srvCosts, res.Costs} {
		r.bytesHashed += c.BytesHashed
		r.blockHashes += c.BlockHashesComputed
		r.cacheHits += c.CacheHits
		r.cacheMisses += c.CacheMisses
	}
	r.s2c = sEnd.bytesWritten()
	r.c2s = cEnd.bytesWritten()
	r.wireBytes = int64(len(r.s2c) + len(r.c2s))
	r.events = ring.Events()
	return r, nil
}

// writeCacheTree materializes the experiment tree under dir.
func writeCacheTree(dir string, opts Options) (files, fileBytes int, total int64, err error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	files = int(float64(cacheFileCount) * opts.Scale)
	if files < 8 {
		files = 8
	}
	fileBytes = cacheFileBytes
	for i := 0; i < files; i++ {
		data := corpus.SourceText(rng, fileBytes)
		p := filepath.Join(dir, fmt.Sprintf("pkg%02d", i%8), fmt.Sprintf("file%03d.txt", i))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			return 0, 0, 0, err
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			return 0, 0, 0, err
		}
		total += int64(len(data))
	}
	return files, fileBytes, total, nil
}

// CachePoint is one mode's measurement in the repeated-sync report.
type CachePoint struct {
	Mode        string  `json:"mode"` // off | cold | warm
	Secs        float64 `json:"seconds"`
	BytesHashed int64   `json:"bytes_hashed"`
	BlockHashes int64   `json:"block_hashes_computed"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	Mallocs     uint64  `json:"mallocs"`
	WireBytes   int64   `json:"wire_bytes"`
	// WireIdentical reports that both directions' byte streams matched the
	// cache-off run exactly — the cache must never change the protocol.
	WireIdentical bool `json:"wire_identical_to_off"`
	// SpeedupVsCold is cold wall-clock divided by this mode's (warm only).
	SpeedupVsCold float64 `json:"speedup_vs_cold,omitempty"`
	// Trace is the client-side per-phase span summary of the measured run;
	// the summed span bytes reproduce the session's wire totals.
	Trace []TraceSpan `json:"trace,omitempty"`
}

// CacheReport is the JSON artifact (BENCH_cache.json) of the repeated-sync
// experiment: the second sync of an unchanged tree with the signature cache
// off, cold and warm.
type CacheReport struct {
	Experiment string       `json:"experiment"`
	Files      int          `json:"files"`
	FileBytes  int          `json:"file_bytes"`
	TotalBytes int64        `json:"total_bytes"`
	Points     []CachePoint `json:"points"`
	Note       string       `json:"note"`
}

// measureCache runs the off/cold/warm sweep behind the table and the JSON
// report. Every measured run opens the trees from scratch, so "warm" pays
// the stat calls and disk-cache loads a real repeat invocation would.
func measureCache(opts Options) (*CacheReport, error) {
	root, err := os.MkdirTemp("", "msync-bench-cache-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	serverDir := filepath.Join(root, "server")
	clientDir := filepath.Join(root, "client")
	files, fileBytes, total, err := writeCacheTree(serverDir, opts)
	if err != nil {
		return nil, err
	}
	// The client holds an identical copy: the repeat-sync scenario.
	if _, _, _, err := writeCacheTree(clientDir, opts); err != nil {
		return nil, err
	}
	cfg := bestConfig()

	const reps = 4 // first run of each mode is a warm-up for the OS page cache
	best := func(run func(rep int) (*cacheRun, error)) (*cacheRun, error) {
		var b *cacheRun
		for rep := 0; rep < reps; rep++ {
			r, err := run(rep)
			if err != nil {
				return nil, err
			}
			if rep == 0 {
				continue
			}
			if b == nil || r.secs < b.secs {
				b = r
			}
		}
		return b, nil
	}

	off, err := best(func(int) (*cacheRun, error) {
		return runCacheSync(serverDir, clientDir, nil, nil, cfg)
	})
	if err != nil {
		return nil, err
	}

	// Cold: every rep gets fresh, empty cache directories so each run pays
	// the full miss cost. Rep 0's directories double as the warm store.
	cacheDir := func(rep int, side string) string {
		return filepath.Join(root, fmt.Sprintf("cache-%d-%s", rep, side))
	}
	cold, err := best(func(rep int) (*cacheRun, error) {
		sc := sigcache.New(sigcache.Options{Dir: cacheDir(rep, "server")})
		cc := sigcache.New(sigcache.Options{Dir: cacheDir(rep, "client")})
		return runCacheSync(serverDir, clientDir, sc, cc, cfg)
	})
	if err != nil {
		return nil, err
	}

	// Warm: fresh Cache instances over rep 0's populated directories, so
	// hits come through the on-disk store the way a new process would see it.
	warm, err := best(func(int) (*cacheRun, error) {
		sc := sigcache.New(sigcache.Options{Dir: cacheDir(0, "server")})
		cc := sigcache.New(sigcache.Options{Dir: cacheDir(0, "client")})
		return runCacheSync(serverDir, clientDir, sc, cc, cfg)
	})
	if err != nil {
		return nil, err
	}

	rep := &CacheReport{
		Experiment: "cache.sync",
		Files:      files,
		FileBytes:  fileBytes,
		TotalBytes: total,
		Note: "repeat sync of an unchanged tree; seconds cover tree open + whole session, " +
			"best of 3 after one warm-up; warm mode must hash nothing and stay byte-identical on the wire",
	}
	for _, p := range []struct {
		mode string
		r    *cacheRun
	}{{"off", off}, {"cold", cold}, {"warm", warm}} {
		pt := CachePoint{
			Mode:          p.mode,
			Secs:          p.r.secs,
			BytesHashed:   p.r.bytesHashed,
			BlockHashes:   p.r.blockHashes,
			CacheHits:     p.r.cacheHits,
			CacheMisses:   p.r.cacheMisses,
			Mallocs:       p.r.mallocs,
			WireBytes:     p.r.wireBytes,
			WireIdentical: bytes.Equal(p.r.s2c, off.s2c) && bytes.Equal(p.r.c2s, off.c2s),
			Trace:         summarizeTrace(p.r.events, "client"),
		}
		if p.mode == "warm" && p.r.secs > 0 {
			pt.SpeedupVsCold = cold.secs / p.r.secs
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// CacheJSON runs the repeated-sync experiment and renders BENCH_cache.json.
func CacheJSON(opts Options) ([]byte, error) {
	rep, err := measureCache(opts)
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// CacheSync is the table view of the repeated-sync experiment for the
// msbench sweep: unchanged-tree repeat sync with the signature cache off,
// cold and warm.
func CacheSync(opts Options) *Table {
	rep, err := measureCache(opts)
	if err != nil {
		panic(fmt.Sprintf("bench: cache sync: %v", err))
	}
	t := &Table{
		Title:   "Extension — persistent signature cache (repeat sync, unchanged tree)",
		Columns: []string{"ms", "hashed MB", "blk hashes", "hits", "misses", "identical"},
	}
	for _, p := range rep.Points {
		ident := 0.0
		if p.WireIdentical {
			ident = 1
		}
		t.Rows = append(t.Rows, Row{
			Name: "cache=" + p.Mode,
			Values: []float64{
				p.Secs * 1000,
				float64(p.BytesHashed) / (1 << 20),
				float64(p.BlockHashes),
				float64(p.CacheHits),
				float64(p.CacheMisses),
				ident,
			},
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d files x %d KB; seconds cover tree open + session", rep.Files, rep.FileBytes>>10),
		"identical=1 means both directions matched the cache-off byte stream exactly")
	return t
}
