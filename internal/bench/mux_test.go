package bench

import "testing"

// TestMuxReport runs the multiplexing experiment at tiny scale: every arm
// must converge, the session arms must negotiate for real, and the modeled
// speedup of a wide multiplexed session over per-file sessions at 100 ms RTT
// must clear the 3x acceptance bar (the ratio is dominated by roundtrip
// counts, which scale with the file count in the per_file arm only, so the
// full-scale run clears it by far more).
func TestMuxReport(t *testing.T) {
	rep, err := measureMux(Options{Scale: 0.004, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Changed == 0 {
		t.Fatal("corpus has no changed files")
	}
	var perFile, lockstep, mux16 *MuxPoint
	for i := range rep.Points {
		p := &rep.Points[i]
		if !p.Converged {
			t.Fatalf("arm %s width %d did not converge", p.Arm, p.Width)
		}
		switch {
		case p.Arm == "per_file":
			perFile = p
		case p.Arm == "lockstep":
			lockstep = p
		case p.Arm == "mux" && p.Width == 16:
			mux16 = p
		}
	}
	if perFile == nil || lockstep == nil || mux16 == nil {
		t.Fatalf("missing arms in report: %+v", rep.Points)
	}
	if perFile.Roundtrips <= mux16.Roundtrips {
		t.Fatalf("per-file sessions paid %d roundtrips, mux %d — baseline implausible",
			perFile.Roundtrips, mux16.Roundtrips)
	}
	if mux16.Roundtrips > lockstep.Roundtrips {
		t.Fatalf("mux width 16 paid %d roundtrips, lockstep %d", mux16.Roundtrips, lockstep.Roundtrips)
	}
	for _, l := range mux16.Links {
		if l.RTTMs == 100 && l.SpeedupVsPerFile < 3 {
			t.Fatalf("speedup vs per-file at 100ms RTT = %.2f, want >= 3", l.SpeedupVsPerFile)
		}
	}
}
