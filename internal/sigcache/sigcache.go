// Package sigcache implements a persistent signature cache for repeated
// collection syncs: per-file whole-file fingerprints and per-round block-hash
// level tables, keyed by (path, size, mtime, ctime, engine config
// fingerprint) so any observable change to a file or to the hashing
// configuration invalidates its entry.
//
// The cache has an in-memory LRU front bounded by a byte budget and an
// optional on-disk store (see disk.go) so signatures survive process
// restarts. It is concurrency-safe: collection sessions running in parallel
// share one Cache and may share individual Sig values.
//
// Signatures are purely local acceleration state. They are never serialized
// into the protocol, and a cached hash always equals the hash the engine
// would have computed from the file bytes — so syncs are byte-identical on
// the wire whether the cache is enabled, disabled, cold, or warm. The one
// caveat is staleness: on platforms without a stat ctime, a file whose
// content changed while size and mtime were restored hits a stale entry
// (see Options.Paranoid); where ctime is reported it widens the key and
// catches exactly that rewrite.
package sigcache

import (
	"container/list"
	"sort"
	"sync"
	"sync/atomic"
)

// Key identifies one file's signature. Two files with equal keys are assumed
// to have equal content (the documented mtime-granularity staleness caveat).
type Key struct {
	// Path is the collection-relative slash path.
	Path string
	// Size is the file length in bytes.
	Size int64
	// MTime is the modification time in Unix nanoseconds.
	MTime int64
	// CTime is the inode change time in Unix nanoseconds, 0 on platforms
	// that don't report one. ctime cannot be restored from userspace, so it
	// catches content rewrites that put size and mtime back — the stale-hit
	// caveat then only remains where CTime is 0.
	CTime int64
	// Fingerprint identifies the engine configuration whose block schedule
	// the cached levels follow (0 when no engine config applies, e.g. on the
	// client, which caches only whole-file sums).
	Fingerprint uint64
}

// Sig is one file's cached signature: the whole-file MD4 sum plus lazily
// built block-hash level tables, one per schedule block size. A Sig may be
// shared by concurrent sessions; Level serializes builds per Sig.
type Sig struct {
	// Len is the file length the signature was computed over.
	Len int64
	// Sum is the whole-file MD4 fingerprint (the manifest entry sum).
	Sum [16]byte

	mu     sync.Mutex
	levels map[int][]uint64
	dirty  bool
}

// NewSig returns a signature holding the whole-file sum with no levels yet.
func NewSig(length int64, sum [16]byte) *Sig {
	return &Sig{Len: length, Sum: sum}
}

// Level returns the block-hash table for schedule block size b, building and
// memoizing it via build on first use. The build runs under the Sig's lock,
// so concurrent sessions needing the same level compute it once.
func (s *Sig) Level(b int, build func() []uint64) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.levels[b]; ok {
		return l
	}
	l := build()
	if s.levels == nil {
		s.levels = make(map[int][]uint64)
	}
	s.levels[b] = l
	s.dirty = true
	return l
}

// PeekLevel returns the memoized table for block size b, or nil.
func (s *Sig) PeekLevel(b int) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.levels[b]
}

// setLevel installs a table loaded from disk without marking the Sig dirty.
func (s *Sig) setLevel(b int, l []uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.levels == nil {
		s.levels = make(map[int][]uint64)
	}
	s.levels[b] = l
}

// snapshot returns the level tables in deterministic order plus the dirty
// flag, clearing it (the caller is about to persist the Sig).
func (s *Sig) snapshot(clearDirty bool) (blockSizes []int, tables [][]uint64, dirty bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dirty = s.dirty
	if clearDirty {
		s.dirty = false
	}
	for b := range s.levels {
		blockSizes = append(blockSizes, b)
	}
	sort.Ints(blockSizes)
	for _, b := range blockSizes {
		tables = append(tables, s.levels[b])
	}
	return blockSizes, tables, dirty
}

// cost estimates the memory footprint charged against the LRU budget.
func (s *Sig) cost(path string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := int64(len(path)) + 96 // struct, map and bookkeeping overhead
	for _, l := range s.levels {
		c += int64(len(l))*8 + 48
	}
	return c
}

// Stats are the cache's monotonic counters. Snapshot with Cache.Stats and
// subtract two snapshots to attribute activity to one session.
type Stats struct {
	// Hits counts lookups answered from memory or disk.
	Hits int64
	// Misses counts lookups that found nothing (including corrupt or
	// key-mismatched disk entries, and paranoid-mode rejections).
	Misses int64
	// Evictions counts entries dropped from memory to fit the budget.
	Evictions int64
	// DiskHits counts the subset of Hits served by promoting a disk entry.
	DiskHits int64
	// BadEntries counts disk entries discarded as corrupt or mismatched.
	BadEntries int64
	// Stores counts Put calls and dirty flushes.
	Stores int64
}

// Sub returns s - o, for per-session attribution.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Hits:       s.Hits - o.Hits,
		Misses:     s.Misses - o.Misses,
		Evictions:  s.Evictions - o.Evictions,
		DiskHits:   s.DiskHits - o.DiskHits,
		BadEntries: s.BadEntries - o.BadEntries,
		Stores:     s.Stores - o.Stores,
	}
}

// Options configures a Cache.
type Options struct {
	// Dir is the on-disk store directory ("" disables persistence). It is
	// created on first write.
	Dir string
	// MemBytes bounds the in-memory layer (<= 0 selects DefaultMemBytes).
	MemBytes int64
}

// DefaultMemBytes is the in-memory budget when Options.MemBytes is not set.
const DefaultMemBytes = 64 << 20

// Cache is the two-level signature cache. The zero value is not usable; use
// New.
type Cache struct {
	dir    string
	budget int64

	mu      sync.Mutex
	entries map[string]*list.Element // by Path
	lru     *list.List               // front = most recent
	used    int64

	hits, misses, evictions, diskHits, badEntries, stores atomic.Int64
}

// entry is one resident cache slot. A path maps to at most one entry; a Put
// or lookup under a different Key (size/mtime/fingerprint changed) replaces
// it, mirroring the one-file-per-path disk layout.
type entry struct {
	key  Key
	sig  *Sig
	cost int64
}

// New returns a Cache with the given options.
func New(opts Options) *Cache {
	budget := opts.MemBytes
	if budget <= 0 {
		budget = DefaultMemBytes
	}
	return &Cache{
		dir:     opts.Dir,
		budget:  budget,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// Dir reports the on-disk store directory ("" when persistence is off).
func (c *Cache) Dir() string { return c.dir }

// Get returns the signature for k, consulting memory then disk. A disk entry
// that is corrupt, truncated, from a different store version, or keyed
// differently is a miss, never an error.
//
// If verify is non-nil it is called on a candidate hit; returning false
// rejects the entry (paranoid re-verification), which is counted as a miss
// and evicts the stale entry.
func (c *Cache) Get(k Key, verify func(*Sig) bool) (*Sig, bool) {
	c.mu.Lock()
	if el, ok := c.entries[k.Path]; ok {
		e := el.Value.(*entry)
		if e.key == k {
			c.lru.MoveToFront(el)
			sig := e.sig
			c.mu.Unlock()
			if verify != nil && !verify(sig) {
				c.drop(k.Path)
				c.misses.Add(1)
				return nil, false
			}
			c.hits.Add(1)
			return sig, true
		}
		// Same path, different key: the file changed; the slot is stale.
		c.removeLocked(el)
	}
	c.mu.Unlock()

	if c.dir != "" {
		if sig, ok := c.loadDisk(k); ok {
			if verify != nil && !verify(sig) {
				c.removeDisk(k.Path)
				c.misses.Add(1)
				return nil, false
			}
			c.insert(k, sig)
			c.hits.Add(1)
			c.diskHits.Add(1)
			return sig, true
		}
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores the signature for k, replacing any entry for the same path, and
// writes it through to disk when persistence is on.
func (c *Cache) Put(k Key, sig *Sig) {
	c.insert(k, sig)
	c.stores.Add(1)
	if c.dir != "" {
		c.storeDisk(k, sig)
	}
}

// Flush persists every resident signature that gained levels since it was
// last written. Collection endpoints call it at session end so warm restarts
// find complete level tables on disk. A no-op without a disk store.
func (c *Cache) Flush() {
	if c.dir == "" {
		return
	}
	c.mu.Lock()
	var dirty []*entry
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if _, _, d := e.sig.snapshot(false); d {
			dirty = append(dirty, e)
		}
	}
	c.mu.Unlock()
	for _, e := range dirty {
		c.storeDisk(e.key, e.sig)
		c.stores.Add(1)
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Evictions:  c.evictions.Load(),
		DiskHits:   c.diskHits.Load(),
		BadEntries: c.badEntries.Load(),
		Stores:     c.stores.Load(),
	}
}

// Len reports the number of resident entries (for tests).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// insert makes sig resident under k and evicts LRU entries over budget.
func (c *Cache) insert(k Key, sig *Sig) {
	cost := sig.cost(k.Path)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k.Path]; ok {
		c.removeLocked(el)
	}
	el := c.lru.PushFront(&entry{key: k, sig: sig, cost: cost})
	c.entries[k.Path] = el
	c.used += cost
	for c.used > c.budget && c.lru.Len() > 1 {
		tail := c.lru.Back()
		c.removeLocked(tail)
		c.evictions.Add(1)
	}
}

// drop removes the resident entry for path, if any.
func (c *Cache) drop(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[path]; ok {
		c.removeLocked(el)
	}
}

// removeLocked unlinks el; c.mu must be held.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.entries, e.key.Path)
	c.used -= e.cost
}
