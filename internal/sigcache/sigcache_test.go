package sigcache

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"msync/internal/md4"
)

func key(path string) Key {
	return Key{Path: path, Size: 100, MTime: 1_700_000_000_000_000_000, Fingerprint: 7}
}

// sig builds a signature consistent with key(): the disk store rejects
// entries whose signature length disagrees with the key's file size, so the
// fixture pins Len to key().Size while the sum still varies with content.
func sig(content string) *Sig {
	return NewSig(key("").Size, md4.Sum([]byte(content)))
}

func TestGetPutAndKeyInvalidation(t *testing.T) {
	c := New(Options{})
	k := key("a/b.txt")
	s := sig("hello")
	c.Put(k, s)

	got, ok := c.Get(k, nil)
	if !ok || got != s {
		t.Fatal("exact-key lookup missed")
	}

	// Any key component change is a miss: size, mtime, fingerprint.
	for name, bad := range map[string]Key{
		"size":        {Path: k.Path, Size: k.Size + 1, MTime: k.MTime, Fingerprint: k.Fingerprint},
		"mtime":       {Path: k.Path, Size: k.Size, MTime: k.MTime + 1, Fingerprint: k.Fingerprint},
		"fingerprint": {Path: k.Path, Size: k.Size, MTime: k.MTime, Fingerprint: k.Fingerprint + 1},
	} {
		if _, ok := c.Get(bad, nil); ok {
			t.Fatalf("%s change still hit", name)
		}
		// The mismatched lookup dropped the stale slot; reinstall for the
		// next case.
		c.Put(k, s)
	}

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 {
		t.Fatalf("stats = %+v, want 1 hit / 3 misses", st)
	}
}

func TestStaleSlotReplacedByPut(t *testing.T) {
	c := New(Options{})
	k1 := key("f.txt")
	c.Put(k1, sig("v1"))

	k2 := k1
	k2.MTime++
	c.Put(k2, sig("v2"))
	if c.Len() != 1 {
		t.Fatalf("Len = %d, one path must own one slot", c.Len())
	}
	if _, ok := c.Get(k2, nil); !ok {
		t.Fatal("new key not resident after same-path Put")
	}
	// A lookup under the superseded key misses and — since the lookup key is
	// taken to reflect the file's current stat — drops the slot entirely.
	if _, ok := c.Get(k1, nil); ok {
		t.Fatal("old key still resident after same-path Put")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after stale lookup, want 0", c.Len())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Each level-free entry costs len(path)+96 = 97 bytes; a 200-byte budget
	// holds two.
	c := New(Options{MemBytes: 200})
	ka, kb, kc := key("a"), key("b"), key("c")
	c.Put(ka, sig("a"))
	c.Put(kb, sig("b"))
	if c.Len() != 2 {
		t.Fatalf("Len = %d before eviction", c.Len())
	}

	// Touch a so b becomes least-recently used, then overflow with c.
	if _, ok := c.Get(ka, nil); !ok {
		t.Fatal("a missing")
	}
	c.Put(kc, sig("c"))

	if _, ok := c.Get(kb, nil); ok {
		t.Fatal("least-recently-used entry survived eviction")
	}
	if _, ok := c.Get(ka, nil); !ok {
		t.Fatal("recently touched entry evicted")
	}
	if _, ok := c.Get(kc, nil); !ok {
		t.Fatal("newest entry evicted")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("Evictions = %d, want 1", ev)
	}
}

func TestLevelMemoized(t *testing.T) {
	s := sig("content")
	builds := 0
	build := func() []uint64 {
		builds++
		return []uint64{1, 2, 3}
	}
	l1 := s.Level(1024, build)
	l2 := s.Level(1024, build)
	if builds != 1 {
		t.Fatalf("level built %d times", builds)
	}
	if &l1[0] != &l2[0] {
		t.Fatal("memoized level not shared")
	}
	if got := s.PeekLevel(1024); got == nil || &got[0] != &l1[0] {
		t.Fatal("PeekLevel disagrees with Level")
	}
	if s.PeekLevel(2048) != nil {
		t.Fatal("PeekLevel invented a level")
	}
}

func TestDiskRoundTripAndFlush(t *testing.T) {
	dir := t.TempDir()
	k := key("pkg/file.txt")
	s := sig("persisted content")
	s.Level(512, func() []uint64 { return []uint64{10, 20, 30} })

	c1 := New(Options{Dir: dir})
	c1.Put(k, s) // write-through: the 512 level is on disk now

	// Levels added after Put reach disk via Flush.
	s.Level(256, func() []uint64 { return []uint64{40, 50} })
	c1.Flush()

	c2 := New(Options{Dir: dir})
	got, ok := c2.Get(k, nil)
	if !ok {
		t.Fatal("disk entry missed after restart")
	}
	if got.Len != s.Len || got.Sum != s.Sum {
		t.Fatal("whole-file signature corrupted by round trip")
	}
	for _, b := range []int{512, 256} {
		want := s.PeekLevel(b)
		have := got.PeekLevel(b)
		if len(have) != len(want) {
			t.Fatalf("level %d: %d hashes, want %d", b, len(have), len(want))
		}
		for i := range want {
			if have[i] != want[i] {
				t.Fatalf("level %d hash %d mismatch", b, i)
			}
		}
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want one disk-served hit", st)
	}
	// The promoted entry is now resident: a second Get must not touch disk.
	if _, ok := c2.Get(k, nil); !ok || c2.Stats().DiskHits != 1 {
		t.Fatal("promotion to memory failed")
	}
}

// entryFile returns the single .sig file in dir.
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "*.sig"))
	if err != nil || len(m) != 1 {
		t.Fatalf("store files = %v (err %v), want exactly one", m, err)
	}
	return m[0]
}

func TestDiskCorruptionIsMiss(t *testing.T) {
	dir := t.TempDir()
	k := key("x.txt")
	New(Options{Dir: dir}).Put(k, sig("data"))

	path := entryFile(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c := New(Options{Dir: dir})
	if _, ok := c.Get(k, nil); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	st := c.Stats()
	if st.BadEntries != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 bad entry / 1 miss", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not removed from the store")
	}
}

func TestDiskTruncationIsMiss(t *testing.T) {
	dir := t.TempDir()
	k := key("x.txt")
	New(Options{Dir: dir}).Put(k, sig("data"))

	path := entryFile(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(Options{Dir: dir})
	if _, ok := c.Get(k, nil); ok {
		t.Fatal("truncated entry served as a hit")
	}
	if c.Stats().BadEntries != 1 {
		t.Fatal("truncation not counted as a bad entry")
	}
}

func TestDiskVersionMismatchIsMiss(t *testing.T) {
	dir := t.TempDir()
	k := key("x.txt")
	New(Options{Dir: dir}).Put(k, sig("data"))

	// Rewrite the entry as a valid file of a future store version: bump the
	// version byte and recompute the trailing checksum, so only the version
	// check can reject it.
	path := entryFile(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := raw[:len(raw)-md4.Size]
	body[4] = diskVersion + 1
	check := md4.Sum(body)
	if err := os.WriteFile(path, append(body, check[:]...), 0o644); err != nil {
		t.Fatal(err)
	}

	c := New(Options{Dir: dir})
	if _, ok := c.Get(k, nil); ok {
		t.Fatal("future-version entry served as a hit")
	}
	if c.Stats().BadEntries != 1 {
		t.Fatal("version mismatch not counted as a bad entry")
	}
}

func TestDiskKeyMismatchIsMiss(t *testing.T) {
	// Every stat-visible change must invalidate the on-disk entry, down to a
	// single nanosecond of mtime: filesystems with nanosecond timestamps can
	// legally rewrite a file within the same second.
	for name, tweak := range map[string]func(*Key){
		"mtime-second":     func(k *Key) { k.MTime += int64(1e9) },
		"mtime-nanosecond": func(k *Key) { k.MTime++ },
		"size":             func(k *Key) { k.Size++ },
		"fingerprint":      func(k *Key) { k.Fingerprint++ },
	} {
		dir := t.TempDir()
		k := key("x.txt")
		New(Options{Dir: dir}).Put(k, sig("data"))

		changed := k
		tweak(&changed)
		c := New(Options{Dir: dir})
		if _, ok := c.Get(changed, nil); ok {
			t.Fatalf("%s: entry for the old key hit under the new key", name)
		}
		st := c.Stats()
		if st.BadEntries != 1 || st.Misses != 1 {
			t.Fatalf("%s: stats = %+v, want the stale entry discarded", name, st)
		}
	}
}

func TestDiskV1EntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	k := key("x.txt")
	New(Options{Dir: dir}).Put(k, sig("data"))

	// Rewrite the entry as a byte-valid version-1 file (v1 and v2 share the
	// layout; only the version byte and the decode rules differ) so exactly
	// the version check can reject it.
	path := entryFile(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := raw[:len(raw)-md4.Size]
	body[4] = 1
	check := md4.Sum(body)
	if err := os.WriteFile(path, append(body, check[:]...), 0o644); err != nil {
		t.Fatal(err)
	}

	c := New(Options{Dir: dir})
	if _, ok := c.Get(k, nil); ok {
		t.Fatal("version-1 entry served as a hit")
	}
	st := c.Stats()
	if st.BadEntries != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want the v1 entry discarded", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("v1 entry not removed from the store")
	}
}

func TestDiskSigLenMismatchIsMiss(t *testing.T) {
	dir := t.TempDir()
	k := key("x.txt")
	// An entry whose signature length disagrees with its own key's size is
	// internally inconsistent (e.g. the file changed between stat and read).
	inconsistent := NewSig(k.Size-1, md4.Sum([]byte("data")))
	New(Options{Dir: dir}).Put(k, inconsistent)

	c := New(Options{Dir: dir})
	if _, ok := c.Get(k, nil); ok {
		t.Fatal("entry with mismatched signature length served as a hit")
	}
	if c.Stats().BadEntries != 1 {
		t.Fatal("signature/size mismatch not counted as a bad entry")
	}
}

func TestVerifyRejectionEvicts(t *testing.T) {
	c := New(Options{})
	k := key("x.txt")
	c.Put(k, sig("data"))

	reject := func(*Sig) bool { return false }
	if _, ok := c.Get(k, reject); ok {
		t.Fatal("rejected entry still served")
	}
	if _, ok := c.Get(k, nil); ok {
		t.Fatal("rejected entry still resident")
	}
	st := c.Stats()
	if st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 2 misses / 0 hits", st)
	}
}

func TestDiskVerifyRejectionRemoves(t *testing.T) {
	dir := t.TempDir()
	k := key("x.txt")
	New(Options{Dir: dir}).Put(k, sig("data"))

	c := New(Options{Dir: dir})
	reject := func(*Sig) bool { return false }
	if _, ok := c.Get(k, reject); ok {
		t.Fatal("rejected disk entry still served")
	}
	if _, err := os.Stat(entryPathOf(dir, k.Path)); !os.IsNotExist(err) {
		t.Fatal("rejected disk entry not removed")
	}
}

// entryPathOf mirrors Cache.entryPath for assertions.
func entryPathOf(dir, path string) string {
	c := New(Options{Dir: dir})
	return c.entryPath(path)
}

func TestUnreadableDirIsJustAMiss(t *testing.T) {
	// A store directory that never materializes (or was deleted) must not
	// break lookups or writes.
	dir := filepath.Join(t.TempDir(), "never-created")
	c := New(Options{Dir: dir})
	if _, ok := c.Get(key("a"), nil); ok {
		t.Fatal("hit from a nonexistent store")
	}
	c.Put(key("a"), sig("x")) // creates the directory on first write
	c2 := New(Options{Dir: dir})
	if _, ok := c2.Get(key("a"), nil); !ok {
		t.Fatal("write-through did not create the store")
	}
}

func TestConcurrentUse(t *testing.T) {
	c := New(Options{Dir: t.TempDir(), MemBytes: 4 << 10})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var nameBuf [8]byte
				binary.LittleEndian.PutUint64(nameBuf[:], uint64(i%10))
				k := key(string(nameBuf[:]))
				if s, ok := c.Get(k, nil); ok {
					s.Level(1024, func() []uint64 { return []uint64{uint64(i)} })
					continue
				}
				s := sig("shared content")
				s.Level(512, func() []uint64 { return []uint64{uint64(g)} })
				c.Put(k, s)
			}
		}(g)
	}
	wg.Wait()
	c.Flush()
}
