// On-disk signature store: one file per collection path under Options.Dir,
// named by the hex MD4 of the path so arbitrary paths map to flat, safe
// filenames. Entries are versioned and checksummed; anything that fails to
// parse — wrong magic, future version, truncation, checksum mismatch, or a
// key that no longer matches — is treated as a cache miss and discarded,
// never surfaced as an error. Writes go through a temp file and rename so a
// crash cannot leave a torn entry.
package sigcache

import (
	"encoding/binary"
	"encoding/hex"
	"os"
	"path/filepath"

	"msync/internal/md4"
)

// diskMagic and diskVersion head every entry file. Bump diskVersion when the
// layout changes; old files then read as misses and are rewritten.
//
// Version history:
//
//	1: initial layout; the stored signature length was decoded but never
//	   cross-checked against the key's file size, so an entry whose key and
//	   signature disagreed could be served.
//	2: same byte layout, but decodeEntry requires the signature length to
//	   equal the key's size; the bump forces every v1 entry to read as a
//	   miss and be rewritten under the stricter rule.
//	3: the key gained the inode change time (ctime varint after the mtime),
//	   closing the restored-mtime stale hit on platforms that report one;
//	   v2 entries read as misses and are rewritten under the wider key.
var diskMagic = [4]byte{'M', 'S', 'I', 'G'}

const diskVersion = 3

// maxDiskEntry bounds how much of an entry file we are willing to read back,
// as corruption armor for the length fields inside.
const maxDiskEntry = 1 << 30

// entryPath returns the store filename for a collection path.
func (c *Cache) entryPath(path string) string {
	sum := md4.Sum([]byte(path))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+".sig")
}

// storeDisk persists (k, sig) via temp file + rename. Failures are silent:
// the store is an accelerator, and the worst outcome of a lost write is a
// future recomputation.
func (c *Cache) storeDisk(k Key, sig *Sig) {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	blockSizes, tables, _ := sig.snapshot(true)

	buf := make([]byte, 0, 64+len(k.Path))
	buf = append(buf, diskMagic[:]...)
	buf = append(buf, diskVersion)
	buf = binary.AppendUvarint(buf, uint64(len(k.Path)))
	buf = append(buf, k.Path...)
	buf = binary.AppendUvarint(buf, uint64(k.Size))
	buf = binary.AppendVarint(buf, k.MTime)
	buf = binary.AppendVarint(buf, k.CTime)
	buf = binary.LittleEndian.AppendUint64(buf, k.Fingerprint)
	buf = binary.AppendUvarint(buf, uint64(sig.Len))
	buf = append(buf, sig.Sum[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(blockSizes)))
	for i, b := range blockSizes {
		buf = binary.AppendUvarint(buf, uint64(b))
		buf = binary.AppendUvarint(buf, uint64(len(tables[i])))
		for _, h := range tables[i] {
			buf = binary.LittleEndian.AppendUint64(buf, h)
		}
	}
	check := md4.Sum(buf)
	buf = append(buf, check[:]...)

	final := c.entryPath(k.Path)
	tmp, err := os.CreateTemp(c.dir, ".sig-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
	}
}

// loadDisk reads and validates the entry for k. ok is false for any defect.
func (c *Cache) loadDisk(k Key) (sig *Sig, ok bool) {
	raw, err := os.ReadFile(c.entryPath(k.Path))
	if err != nil {
		return nil, false
	}
	sig, ok = decodeEntry(raw, k)
	if !ok {
		c.badEntries.Add(1)
		c.removeDisk(k.Path)
	}
	return sig, ok
}

// removeDisk best-effort deletes the entry for path.
func (c *Cache) removeDisk(path string) {
	os.Remove(c.entryPath(path))
}

// decodeEntry parses one entry file and checks it against the wanted key.
func decodeEntry(raw []byte, want Key) (*Sig, bool) {
	if len(raw) < len(diskMagic)+1+md4.Size || len(raw) > maxDiskEntry {
		return nil, false
	}
	body, tail := raw[:len(raw)-md4.Size], raw[len(raw)-md4.Size:]
	var check [md4.Size]byte
	copy(check[:], tail)
	if md4.Sum(body) != check {
		return nil, false
	}
	if [4]byte(body[:4]) != diskMagic || body[4] != diskVersion {
		return nil, false
	}
	d := decoder{b: body[5:]}

	pathLen := d.uvarint()
	path := d.raw(int(pathLen))
	size := d.uvarint()
	mtime := d.varint()
	ctime := d.varint()
	fp := d.u64()
	sigLen := d.uvarint()
	sumRaw := d.raw(md4.Size)
	if d.bad {
		return nil, false
	}
	got := Key{Path: string(path), Size: int64(size), MTime: mtime, CTime: ctime, Fingerprint: fp}
	if got != want {
		return nil, false
	}
	// The signature must have been computed over exactly the keyed content:
	// size (here) and mtime nanoseconds (in the Key comparison above) both
	// participate, so a same-second rewrite or a key/signature mismatch can
	// never serve a stale signature.
	if int64(sigLen) != want.Size {
		return nil, false
	}
	var sum [md4.Size]byte
	copy(sum[:], sumRaw)
	sig := NewSig(int64(sigLen), sum)

	nLevels := d.uvarint()
	if d.bad || nLevels > 64 {
		return nil, false
	}
	for i := uint64(0); i < nLevels; i++ {
		b := d.uvarint()
		count := d.uvarint()
		if d.bad || b == 0 || b > maxDiskEntry || count > uint64(len(d.b))/8+1 {
			return nil, false
		}
		table := make([]uint64, count)
		for j := range table {
			table[j] = d.u64()
		}
		if d.bad {
			return nil, false
		}
		sig.setLevel(int(b), table)
	}
	if d.bad || len(d.b) != 0 {
		return nil, false
	}
	return sig, true
}

// decoder is a minimal cursor with sticky failure, so decodeEntry can parse
// linearly and check once.
type decoder struct {
	b   []byte
	bad bool
}

func (d *decoder) uvarint() uint64 {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint() int64 {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) u64() uint64 {
	if len(d.b) < 8 {
		d.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *decoder) raw(n int) []byte {
	if n < 0 || len(d.b) < n {
		d.bad = true
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}
