package corpus

import (
	"bytes"
	"fmt"
	"math/rand"
)

// This file holds the adversarial corpus profiles: workloads built to stress
// map construction's boundary sensitivity. Append-heavy logs with rotation,
// database dumps whose every insert shifts the rest of the file, VM images
// with sector-level rewrites plus region shifts, and binary releases whose
// sections move between builds. These are the scenarios where fixed
// power-of-two block boundaries degrade and content-defined boundaries are
// expected to win (see DESIGN.md §16 and the bench-cdc matrix).

// HeavyLogProfile models aggressively-growing log files: big appends every
// cycle, and a fraction of files rotated (head bytes dropped), which shifts
// every surviving byte toward the front.
type HeavyLogProfile struct {
	Files    int
	MeanSize int
	// AppendFrac is the appended volume as a fraction of the old size.
	AppendFrac float64
	// RotateProb is the probability a file was rotated: its head RotateFrac
	// bytes (rounded to a line boundary) are gone in version 2.
	RotateProb, RotateFrac float64
}

// DefaultHeavyLogProfile returns the append-heavy log corpus at a scale.
func DefaultHeavyLogProfile(scale float64) HeavyLogProfile {
	return HeavyLogProfile{
		Files:      max(2, int(24*scale)),
		MeanSize:   96 * 1024,
		AppendFrac: 0.25,
		RotateProb: 0.25,
		RotateFrac: 0.15,
	}
}

// Generate produces the two versions of the heavy-log corpus.
func (p HeavyLogProfile) Generate(seed int64) (v1, v2 *Tree) {
	rng := rand.New(rand.NewSource(seed))
	v1, v2 = &Tree{}, &Tree{}
	for i := 0; i < p.Files; i++ {
		size := p.MeanSize/2 + rng.Intn(p.MeanSize)
		path := fmt.Sprintf("logs-heavy/app_%03d.log", i)
		var buf bytes.Buffer
		writeLogLines(rng, &buf, size)
		old := append([]byte(nil), buf.Bytes()...)
		v1.Files = append(v1.Files, File{path, old})

		cur := old
		if rng.Float64() < p.RotateProb {
			// Rotation: drop the head, snapped to the next newline so the
			// survivor still starts at a record boundary.
			cut := int(float64(len(cur)) * p.RotateFrac)
			if nl := bytes.IndexByte(cur[cut:], '\n'); nl >= 0 {
				cut += nl + 1
			}
			cur = cur[cut:]
		}
		var nb bytes.Buffer
		nb.Write(cur)
		writeLogLines(rng, &nb, nb.Len()+int(float64(size)*p.AppendFrac))
		v2.Files = append(v2.Files, File{path, append([]byte(nil), nb.Bytes()...)})
	}
	return v1, v2
}

// DBDumpProfile models logical database dumps: files of ordered fixed-shape
// records where version 2 has rows inserted, deleted and updated throughout.
// Every insertion or deletion shifts all subsequent bytes, so fixed block
// grids misalign pervasively while the record content itself barely changes.
// Tables dumped in key order also evolve at their edges: retention pruning
// (bulk DELETE of the oldest rows) drops the dump's head, and autoincrement
// inserts land at its tail — the dominant churn for event/history tables.
type DBDumpProfile struct {
	Files    int
	MeanSize int
	// Per-row probabilities for the version-2 derivation.
	InsertProb, DeleteProb, UpdateProb float64
	// PruneProb is the probability a table had its retention window advanced:
	// the oldest PruneFrac of its rows are gone in version 2.
	PruneProb, PruneFrac float64
	// AppendFrac is new-row volume appended at the tail (autoincrement keys),
	// as a fraction of the old size.
	AppendFrac float64
}

// DefaultDBDumpProfile returns the database-dump corpus at a scale. The
// defaults follow the event/history-table shape described above: retention
// pruning and autoincrement appends dominate, with a thin spread of in-place
// row churn through the body of each dump.
func DefaultDBDumpProfile(scale float64) DBDumpProfile {
	return DBDumpProfile{
		Files:      max(2, int(12*scale)),
		MeanSize:   192 * 1024,
		InsertProb: 0.012,
		DeleteProb: 0.006,
		UpdateProb: 0.004,
		PruneProb:  0.4,
		PruneFrac:  0.2,
		AppendFrac: 0.15,
	}
}

// dumpRow emits one INSERT-statement-shaped record for the given row id.
func dumpRow(rng *rand.Rand, buf *bytes.Buffer, table string, id int) {
	fmt.Fprintf(buf, "INSERT INTO %s VALUES (%d, '%s_%d', %d, %d, '%s');\n",
		table, id,
		srcWords[rng.Intn(len(srcWords))], rng.Intn(10000),
		rng.Intn(1<<30), rng.Intn(1<<16),
		srcWords[rng.Intn(len(srcWords))])
}

// Generate produces the two versions of the dump corpus.
func (p DBDumpProfile) Generate(seed int64) (v1, v2 *Tree) {
	rng := rand.New(rand.NewSource(seed))
	v1, v2 = &Tree{}, &Tree{}
	for i := 0; i < p.Files; i++ {
		size := p.MeanSize/2 + rng.Intn(p.MeanSize)
		table := fmt.Sprintf("t%02d", i)
		path := fmt.Sprintf("dbdump/table_%03d.sql", i)

		pruneBelow := 0
		if rng.Float64() < p.PruneProb {
			pruneBelow = int(float64(size) * p.PruneFrac)
		}
		var oldBuf, newBuf bytes.Buffer
		fmt.Fprintf(&oldBuf, "-- dump of %s\n", table)
		fmt.Fprintf(&newBuf, "-- dump of %s\n", table)
		id := 0
		for oldBuf.Len() < size {
			id += 1 + rng.Intn(3)
			var row bytes.Buffer
			dumpRow(rng, &row, table, id)
			oldBuf.Write(row.Bytes())
			if oldBuf.Len() < pruneBelow {
				continue // retention-pruned: oldest rows absent from v2
			}
			r := rng.Float64()
			switch {
			case r < p.DeleteProb:
				// row gone in v2
			case r < p.DeleteProb+p.UpdateProb:
				dumpRow(rng, &newBuf, table, id)
			default:
				newBuf.Write(row.Bytes())
			}
			if rng.Float64() < p.InsertProb {
				dumpRow(rng, &newBuf, table, id)
			}
		}
		for tail := newBuf.Len() + int(float64(size)*p.AppendFrac); newBuf.Len() < tail; {
			id += 1 + rng.Intn(3)
			dumpRow(rng, &newBuf, table, id)
		}
		v1.Files = append(v1.Files, File{path, append([]byte(nil), oldBuf.Bytes()...)})
		v2.Files = append(v2.Files, File{path, append([]byte(nil), newBuf.Bytes()...)})
	}
	return v1, v2
}

// VMImageProfile models disk images: few large, mostly incompressible files
// organized in filesystem-style blocks. Version 2 rewrites scattered blocks
// in place and inserts a region (a grown partition or appended qcow2
// cluster), shifting everything behind it.
type VMImageProfile struct {
	Files     int
	MeanSize  int
	BlockSize int
	// RewriteFrac of blocks change in place; InsertBlocks new blocks are
	// spliced in at a random aligned point.
	RewriteFrac  float64
	InsertBlocks int
}

// DefaultVMImageProfile returns the VM-image corpus at a scale.
func DefaultVMImageProfile(scale float64) VMImageProfile {
	return VMImageProfile{
		Files:        max(1, int(3*scale)),
		MeanSize:     1 << 20,
		BlockSize:    4096,
		RewriteFrac:  0.03,
		InsertBlocks: 4,
	}
}

// Generate produces the two versions of the VM-image corpus.
func (p VMImageProfile) Generate(seed int64) (v1, v2 *Tree) {
	rng := rand.New(rand.NewSource(seed))
	v1, v2 = &Tree{}, &Tree{}
	for i := 0; i < p.Files; i++ {
		blocks := (p.MeanSize/2 + rng.Intn(p.MeanSize)) / p.BlockSize
		path := fmt.Sprintf("vmimage/disk_%02d.img", i)
		old := RandomText(rng, blocks*p.BlockSize)
		v1.Files = append(v1.Files, File{path, old})

		cur := append([]byte(nil), old...)
		for b := 0; b < blocks; b++ {
			if rng.Float64() < p.RewriteFrac {
				copy(cur[b*p.BlockSize:], RandomText(rng, p.BlockSize))
			}
		}
		at := rng.Intn(blocks) * p.BlockSize
		ins := RandomText(rng, p.InsertBlocks*p.BlockSize)
		cur = append(cur[:at], append(ins, cur[at:]...)...)
		v2.Files = append(v2.Files, File{path, cur})
	}
	return v1, v2
}

// BinaryReleaseProfile models compiled release artifacts: medium binary
// files whose sections (code, data, symbol tables) survive a rebuild mostly
// intact but move, because an earlier section grew or shrank. A few files
// are new in version 2.
type BinaryReleaseProfile struct {
	Files       int
	MeanSize    int
	Sections    int
	NewFraction float64
	// SectionChangeProb is the chance a section's content is rebuilt;
	// unchanged sections shift by their predecessors' size deltas.
	SectionChangeProb float64
	// GrowthBytes bounds how much a rebuilt section grows or shrinks.
	GrowthBytes int
}

// DefaultBinaryReleaseProfile returns the binary-release corpus at a scale.
func DefaultBinaryReleaseProfile(scale float64) BinaryReleaseProfile {
	return BinaryReleaseProfile{
		Files:             max(2, int(16*scale)),
		MeanSize:          128 * 1024,
		Sections:          8,
		NewFraction:       0.06,
		SectionChangeProb: 0.3,
		GrowthBytes:       2048,
	}
}

// Generate produces the two versions of the binary-release corpus.
func (p BinaryReleaseProfile) Generate(seed int64) (v1, v2 *Tree) {
	rng := rand.New(rand.NewSource(seed))
	v1, v2 = &Tree{}, &Tree{}
	for i := 0; i < p.Files; i++ {
		size := p.MeanSize/2 + rng.Intn(p.MeanSize)
		path := fmt.Sprintf("binrelease/lib_%03d.so", i)
		secSize := size / p.Sections
		var oldBuf, newBuf bytes.Buffer
		for s := 0; s < p.Sections; s++ {
			sec := RandomText(rng, secSize/2+rng.Intn(secSize))
			oldBuf.Write(sec)
			if rng.Float64() < p.SectionChangeProb {
				delta := rng.Intn(2*p.GrowthBytes+1) - p.GrowthBytes
				newBuf.Write(RandomText(rng, max(64, len(sec)+delta)))
			} else {
				newBuf.Write(sec)
			}
		}
		v1.Files = append(v1.Files, File{path, append([]byte(nil), oldBuf.Bytes()...)})
		v2.Files = append(v2.Files, File{path, append([]byte(nil), newBuf.Bytes()...)})
	}
	nNew := int(float64(p.Files) * p.NewFraction)
	for i := 0; i < nNew; i++ {
		size := p.MeanSize/2 + rng.Intn(p.MeanSize)
		path := fmt.Sprintf("binrelease/new_%03d.so", i)
		v2.Files = append(v2.Files, File{path, RandomText(rng, size)})
	}
	return v1, v2
}
